// Command tracefiles demonstrates the on-disk trace workflow: generate a
// synthetic SPEC-like trace, write it to a compressed trace file, read it
// back, and verify the round trip — the path a user takes to plug real
// (e.g. converted ChampSim) traces into the simulator.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/internal/trace"
)

func main() {
	dir, err := os.MkdirTemp("", "pinte-traces-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const benchmark = "429.mcf"
	const instructions = 250_000
	spec, err := trace.SpecFor(benchmark)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, benchmark+".trc.gz")

	// Generate and persist.
	gen, err := trace.NewGenerator(spec, 42, 0)
	if err != nil {
		log.Fatal(err)
	}
	n, err := trace.WriteAll(path, trace.Limit(gen, instructions))
	if err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d records of %s to %s (%.1f KB, %.2f bytes/record)\n",
		n, benchmark, filepath.Base(path), float64(st.Size())/1024,
		float64(st.Size())/float64(n))

	// Read back and verify against a fresh generator.
	fr, err := trace.OpenFile(path)
	if err != nil {
		log.Fatal(err)
	}
	defer fr.Close()
	ref, err := trace.NewGenerator(spec, 42, 0)
	if err != nil {
		log.Fatal(err)
	}

	var got, want trace.Record
	var loads, stores, branches, dependent int
	for i := 0; ; i++ {
		err := fr.Next(&got)
		if err == io.EOF {
			if i != instructions {
				log.Fatalf("trace ended at %d records, want %d", i, instructions)
			}
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := ref.Next(&want); err != nil {
			log.Fatal(err)
		}
		if got != want {
			log.Fatalf("record %d differs after round trip:\n got %+v\nwant %+v", i, got, want)
		}
		loads += got.Loads()
		if got.Store != 0 {
			stores++
		}
		if got.IsBranch {
			branches++
		}
		if got.Dependent {
			dependent++
		}
	}
	fmt.Println("round trip verified: every record identical")
	fmt.Printf("mix: %d loads (%d dependent), %d stores, %d branches over %d instructions\n",
		loads, dependent, stores, branches, instructions)
}
