// Command quickstart demonstrates the PInTE public API: it runs one
// workload in isolation, then under PInTE-induced contention at a few
// injection probabilities, and prints how its headline metrics respond.
package main

import (
	"fmt"
	"log"

	"repro/pinte"
)

func main() {
	const workload = "450.soplex" // an LLC-bound, contention-sensitive preset

	// Baseline: the workload running alone.
	iso, err := pinte.Run(pinte.Experiment{Workload: workload, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s in isolation: IPC %.3f, LLC miss rate %.1f%%, AMAT %.1f cycles\n\n",
		workload, iso.IPC, 100*iso.MissRate, iso.AMAT)

	fmt.Println("P_Induce   contention   weighted IPC   miss rate    AMAT")
	for _, p := range []float64{0.01, 0.05, 0.20, 0.50, 0.90} {
		r, err := pinte.Run(pinte.Experiment{
			Workload: workload,
			Mode:     pinte.ModePInTE,
			PInduce:  p,
			Seed:     42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5.2f      %6.1f%%        %6.3f      %5.1f%%   %7.1f\n",
			p, 100*r.ContentionRate, r.WeightedIPC(iso.IPC), 100*r.MissRate, r.AMAT)
	}
}
