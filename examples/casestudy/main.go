// Command casestudy reproduces a slice of the paper's §VI question: does
// the best LLC replacement policy change as cache contention grows? It
// runs a small workload set under each policy at increasing P_Induce and
// reports the per-level winner and the share of statistical ties.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/pinte"
)

func main() {
	workloads := []string{"450.soplex", "433.milc", "471.omnetpp", "470.lbm"}
	policies := []string{"lru", "plru", "nmru", "rrip"}
	sweep := []float64{0.01, 0.1, 0.5, 0.9}

	fmt.Println("Best LLC replacement policy as contention grows")
	fmt.Println("P_Induce  winner  win%   ties(all within 1%)")
	for _, p := range sweep {
		wins := map[string]int{}
		ties := 0
		for _, w := range workloads {
			best, bestIPC := "", 0.0
			ipcs := make(map[string]float64, len(policies))
			for _, pol := range policies {
				r, err := pinte.Run(pinte.Experiment{
					Workload: w,
					Mode:     pinte.ModePInTE,
					PInduce:  p,
					Machine:  pinte.Machine{LLCPolicy: pol},
					Seed:     11,
				})
				if err != nil {
					log.Fatal(err)
				}
				ipcs[pol] = r.IPC
				if r.IPC > bestIPC {
					best, bestIPC = pol, r.IPC
				}
			}
			wins[best]++
			allClose := true
			for _, v := range ipcs {
				if math.Abs(bestIPC-v)/bestIPC > 0.01 {
					allClose = false
					break
				}
			}
			if allClose {
				ties++
			}
		}
		winner, n := "", 0
		for pol, c := range wins {
			if c > n {
				winner, n = pol, c
			}
		}
		fmt.Printf("  %4.2f    %-6s  %3.0f%%   %3.0f%%\n",
			p, winner, 100*float64(n)/float64(len(workloads)),
			100*float64(ties)/float64(len(workloads)))
	}
	fmt.Println("\npaper's finding: advantages measured in isolation wash out as")
	fmt.Println("contention rises — expect the tie share to grow with P_Induce.")
}
