// Command sensitivity reproduces a miniature of the paper's §V study: it
// sweeps P_Induce over a handful of benchmarks, builds contention curves
// (weighted IPC vs contention rate), and classifies each workload's
// cache-contention sensitivity at a 5% tolerable performance loss.
package main

import (
	"fmt"
	"log"

	"repro/pinte"
)

func main() {
	workloads := []string{
		"453.povray", // core-bound: expect "low"
		"450.soplex", // LLC-bound: expect sensitivity
		"470.lbm",    // streaming: sensitive to theft of its window
		"429.mcf",    // DRAM-bound: largely insensitive to LLC theft
	}
	sweep := []float64{0.01, 0.05, 0.1, 0.3, 0.5, 0.9}

	for _, w := range workloads {
		iso, err := pinte.Run(pinte.Experiment{Workload: w, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s (isolation IPC %.3f)\n", w, iso.IPC)
		fmt.Println("  P_Induce  contention  weighted IPC")
		var weighted []float64
		for _, p := range sweep {
			r, err := pinte.Run(pinte.Experiment{
				Workload: w, Mode: pinte.ModePInTE, PInduce: p, Seed: 7,
			})
			if err != nil {
				log.Fatal(err)
			}
			// Pair run-time samples with the isolation run's samples
			// (the paper's per-sample TPL comparison).
			n := len(r.Samples)
			if len(iso.Samples) < n {
				n = len(iso.Samples)
			}
			for i := 0; i < n; i++ {
				if iso.Samples[i].IPC > 0 {
					weighted = append(weighted, r.Samples[i].IPC/iso.Samples[i].IPC)
				}
			}
			fmt.Printf("    %5.2f     %5.1f%%      %.3f\n",
				p, 100*r.ContentionRate, r.WeightedIPC(iso.IPC))
		}
		class, scp := pinte.Sensitivity(weighted, 0)
		fmt.Printf("  => classification: %s sensitivity (SCP %.0f%%)\n\n", class, 100*scp)
	}
}
