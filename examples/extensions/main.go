// Command extensions demonstrates the two beyond-the-paper mechanisms
// this reproduction implements from the paper's own limitation analysis
// (§IV-E2b): PInTE only injects at the LLC, so DRAM-bound workloads
// under-respond, and it only triggers on LLC accesses, so core-bound
// workloads see nothing. The DRAM-contention injector and the
// access-independent module address each case.
package main

import (
	"fmt"
	"log"

	"repro/pinte"
)

func drop(r *pinte.Result, iso *pinte.Result) float64 {
	return 100 * (r.IPC - iso.IPC) / iso.IPC
}

func main() {
	// Case 1: a DRAM-bound pointer chaser (the paper's worst IPC-error
	// class, 429.mcf: −71.53% in Table II). LLC theft barely moves it;
	// a real co-runner also congests memory.
	const dramBound = "429.mcf"
	iso, err := pinte.Run(pinte.Experiment{Workload: dramBound, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	second, err := pinte.Run(pinte.Experiment{
		Workload: dramBound, Mode: pinte.ModeSecondTrace, Adversary: "470.lbm", Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	plain, err := pinte.Run(pinte.Experiment{
		Workload: dramBound, Mode: pinte.ModePInTE, PInduce: 0.5, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	extended, err := pinte.Run(pinte.Experiment{
		Workload: dramBound, Mode: pinte.ModePInTE, PInduce: 0.5, Seed: 5,
		Extensions: pinte.Extensions{
			DRAMContentionProb:    0.5,
			DRAMContentionPenalty: 200,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (DRAM-bound)\n", dramBound)
	fmt.Printf("  2nd-Trace co-run:       ΔIPC %+6.2f%%  (the behaviour to approximate)\n", drop(second, iso))
	fmt.Printf("  PInTE (LLC only):       ΔIPC %+6.2f%%  (under-responds: misses already go to DRAM)\n", drop(plain, iso))
	fmt.Printf("  PInTE + DRAM injection: ΔIPC %+6.2f%%  (off-chip pressure restored)\n\n", drop(extended, iso))

	// Case 2: a core-bound workload (paper's '*' class). Its LLC
	// accesses are so rare that access-coupled injection starves; the
	// independent module injects on a schedule instead.
	const coreBound = "456.hmmer"
	iso2, err := pinte.Run(pinte.Experiment{Workload: coreBound, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	coupled, err := pinte.Run(pinte.Experiment{
		Workload: coreBound, Mode: pinte.ModePInTE, PInduce: 0.9, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	independent, err := pinte.Run(pinte.Experiment{
		Workload: coreBound, Mode: pinte.ModePInTE, PInduce: 0.9, Seed: 5,
		Extensions: pinte.Extensions{IndependentPeriod: 64},
	})
	if err != nil {
		log.Fatal(err)
	}
	// For the '*' class the paper's complaint is distorted LLC-side
	// metrics (MR error), not IPC — hmmer's IPC barely moves either
	// way. What the independent module changes is whether injection
	// pressure reaches the workload's resident blocks at all.
	_ = iso2
	fmt.Printf("%s (core-bound)\n", coreBound)
	fmt.Printf("  PInTE access-coupled:   %6d induced thefts, LLC miss rate %5.1f%%\n",
		coupled.InducedThefts, 100*coupled.MissRate)
	fmt.Printf("  PInTE independent(64):  %6d induced thefts, LLC miss rate %5.1f%%\n",
		independent.InducedThefts, 100*independent.MissRate)
	fmt.Println("\nboth mechanisms are off by default; see internal/core/extensions.go")
}
