// Command partitioning demonstrates the contention-aware design loop the
// PInTE paper motivates: a cache-sensitive workload is victimised by a
// streaming co-runner; dynamic LLC partitioning (utility-based UCP, or
// the CASHT-style controller driven by the same theft counters PInTE
// analysis uses) restores most of its performance.
package main

import (
	"fmt"
	"log"

	"repro/pinte"
)

func main() {
	const victim = "450.soplex" // LLC-bound pointer chaser
	const aggressor = "470.lbm" // DRAM-bound streamer

	iso, err := pinte.Run(pinte.Experiment{Workload: victim, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim %s in isolation: IPC %.3f\n\n", victim, iso.IPC)
	fmt.Printf("co-running with %s:\n", aggressor)
	fmt.Println("LLC management    victim wIPC   victim contention")

	for _, ctrl := range []struct{ name, label string }{
		{"", "shared (none)"},
		{"ucp", "UCP"},
		{"theft", "theft-guided"},
	} {
		r, err := pinte.Run(pinte.Experiment{
			Workload:  victim,
			Mode:      pinte.ModeSecondTrace,
			Adversary: aggressor,
			Machine:   pinte.Machine{Partitioning: ctrl.name},
			Seed:      9,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s   %6.3f         %5.1f%%\n",
			ctrl.label, r.WeightedIPC(iso.IPC), 100*r.ContentionRate)
	}
	fmt.Println("\nUCP pays for shadow-tag monitors; the theft controller reuses the")
	fmt.Println("counters a PInTE-style contention analysis already maintains.")
}
