package telemetry

import "math"

// Audit compares a run's realized induction trigger rate against its
// configured P_Induce — the calibration check behind the paper's Fig 4
// flow: the engine's whole argument rests on triggers actually arriving
// at the configured probability.
type Audit struct {
	// Configured is the run's P_Induce; Accesses and Triggers are the
	// engine's ROI totals.
	Configured float64
	Accesses   uint64
	Triggers   uint64

	// Realized is Triggers/Accesses; Error is Realized - Configured.
	Realized float64
	Error    float64

	// StdErr is the binomial standard error sqrt(p(1-p)/n) at the
	// configured rate; Z is Error in standard-error units (0 whenever
	// StdErr is 0, i.e. at the endpoints or with no accesses).
	StdErr float64
	Z      float64

	// Intervals counts time-series intervals with at least one engine
	// access; MinIntervalRate and MaxIntervalRate bound their realized
	// rates, exposing drift a run-level mean would hide.
	Intervals       int
	MinIntervalRate float64
	MaxIntervalRate float64

	// Calibrated reports the audit verdict: the endpoints must be
	// exact (P_Induce = 0 never triggers, P_Induce = 1 always does)
	// and interior points must land within AuditZTolerance standard
	// errors of the configured probability.
	Calibrated bool
}

// AuditZTolerance is the acceptance band for interior P_Induce points,
// in binomial standard errors. 4.5σ keeps the false-alarm probability
// per audited run below 1e-5 while still catching a mis-wired RNG or a
// biased comparison within one short run.
const AuditZTolerance = 4.5

// NewAudit builds the calibration audit for one run. series may be nil
// when no interval time-series was collected; the run-level verdict
// does not depend on it.
func NewAudit(configured float64, accesses, triggers uint64, series *Series) Audit {
	a := Audit{Configured: configured, Accesses: accesses, Triggers: triggers}
	if accesses > 0 {
		a.Realized = float64(triggers) / float64(accesses)
		a.Error = a.Realized - configured
		a.StdErr = math.Sqrt(configured * (1 - configured) / float64(accesses))
	}
	if a.StdErr > 0 {
		a.Z = a.Error / a.StdErr
	}
	if series != nil {
		first := true
		for i := range series.Intervals {
			iv := &series.Intervals[i]
			if iv.EngineAccesses == 0 {
				continue
			}
			r := iv.TriggerRate()
			if first || r < a.MinIntervalRate {
				a.MinIntervalRate = r
			}
			if first || r > a.MaxIntervalRate {
				a.MaxIntervalRate = r
			}
			first = false
			a.Intervals++
		}
	}

	switch {
	case accesses == 0:
		a.Calibrated = triggers == 0
	case configured == 0:
		a.Calibrated = triggers == 0
	case configured == 1:
		a.Calibrated = triggers == accesses
	default:
		a.Calibrated = math.Abs(a.Z) <= AuditZTolerance
	}
	return a
}
