package telemetry

import (
	"math"
	"testing"
)

func TestAuditEndpoints(t *testing.T) {
	// P_Induce = 0 must be exact: a single stray trigger fails the
	// audit no matter how many accesses dilute it.
	if a := NewAudit(0, 1_000_000, 0, nil); !a.Calibrated {
		t.Errorf("p=0 with 0 triggers not calibrated: %+v", a)
	}
	if a := NewAudit(0, 1_000_000, 1, nil); a.Calibrated {
		t.Errorf("p=0 with 1 trigger reported calibrated: %+v", a)
	}
	// P_Induce = 1 symmetric.
	if a := NewAudit(1, 500, 500, nil); !a.Calibrated {
		t.Errorf("p=1 with all triggers not calibrated: %+v", a)
	}
	if a := NewAudit(1, 500, 499, nil); a.Calibrated {
		t.Errorf("p=1 with a missed trigger reported calibrated: %+v", a)
	}
	// No accesses: vacuously calibrated only when nothing triggered.
	if a := NewAudit(0.5, 0, 0, nil); !a.Calibrated {
		t.Errorf("access-free run not calibrated: %+v", a)
	}
}

func TestAuditInteriorTolerance(t *testing.T) {
	// 3000/10000 at p=0.3: dead on.
	a := NewAudit(0.3, 10_000, 3_000, nil)
	if !a.Calibrated || a.Realized != 0.3 || a.Error != 0 || a.Z != 0 {
		t.Fatalf("exact run misjudged: %+v", a)
	}
	wantSE := math.Sqrt(0.3 * 0.7 / 10_000)
	if math.Abs(a.StdErr-wantSE) > 1e-12 {
		t.Fatalf("StdErr = %v, want %v", a.StdErr, wantSE)
	}

	// Shift the count just inside, then just outside, the z band.
	inside := uint64(3_000 + int(4.0*wantSE*10_000))
	if a := NewAudit(0.3, 10_000, inside, nil); !a.Calibrated {
		t.Errorf("4.0σ deviation rejected: %+v", a)
	}
	outside := uint64(3_000 + int(6.0*wantSE*10_000))
	if a := NewAudit(0.3, 10_000, outside, nil); a.Calibrated {
		t.Errorf("6σ deviation accepted: %+v", a)
	}
}

func TestAuditIntervalBreakdown(t *testing.T) {
	s := &Series{Every: 100, Intervals: []Interval{
		{EngineAccesses: 100, EngineTriggers: 10},
		{EngineAccesses: 0, EngineTriggers: 0}, // access-free: excluded
		{EngineAccesses: 200, EngineTriggers: 60},
	}}
	a := NewAudit(0.25, 300, 70, s)
	if a.Intervals != 2 {
		t.Fatalf("Intervals = %d, want 2", a.Intervals)
	}
	if a.MinIntervalRate != 0.1 || a.MaxIntervalRate != 0.3 {
		t.Fatalf("interval rate bounds = [%v, %v], want [0.1, 0.3]",
			a.MinIntervalRate, a.MaxIntervalRate)
	}
}
