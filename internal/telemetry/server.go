package telemetry

import (
	"expvar"
	"sync"
	"sync/atomic"
	"time"
)

// ServerCounters is the process-wide tally of the campaign service
// (cmd/pinted, internal/server): what was admitted, what was refused
// and why, and every degraded-mode event the service survived. Served
// on the expvar page as "pinte.server" next to "pinte.degraded", so an
// operator can see at a glance whether the farm is admitting cleanly,
// shedding load, or refusing work.
type ServerCounters struct {
	// Submitted counts campaign submissions received; Admitted the
	// subset accepted into the scheduler.
	Submitted atomic.Int64
	Admitted  atomic.Int64
	// RefusedQuota counts submissions refused 429 over a tenant quota;
	// RefusedDraining counts submissions refused 503 during drain;
	// RefusedFault counts submissions refused because the admission
	// check itself failed (an injected or real service fault).
	RefusedQuota    atomic.Int64
	RefusedDraining atomic.Int64
	RefusedFault    atomic.Int64
	// DegradedAdmissions counts campaigns admitted under load shedding:
	// accepted, but with their fan-out groups capped to a smaller size
	// so the service degrades before it refuses work.
	DegradedAdmissions atomic.Int64
	// ActiveCampaigns is the live gauge of campaigns currently owned by
	// the scheduler (queued or running).
	ActiveCampaigns atomic.Int64
	// CampaignsDone / CampaignsFailed / CampaignsCanceled classify
	// finished campaigns.
	CampaignsDone     atomic.Int64
	CampaignsFailed   atomic.Int64
	CampaignsCanceled atomic.Int64
	// ResumedCampaigns counts campaigns reloaded from the durable store
	// on restart and resumed from their journals.
	ResumedCampaigns atomic.Int64
	// AutoCompactions counts journals compacted automatically after a
	// clean completion or on restart.
	AutoCompactions atomic.Int64
	// PoolShedTasks counts queued runs shed back to their campaigns
	// (reported as ErrCanceled, journaled work untouched) by a drain.
	PoolShedTasks atomic.Int64
	// StreamWriteErrors counts result-stream writes toward clients that
	// failed; the stream is aborted, the stored results are untouched
	// and a reconnect replays them.
	StreamWriteErrors atomic.Int64
	// ManifestErrors counts durable-manifest writes that failed (the
	// mutation is rolled back, the previous manifest stays in force).
	ManifestErrors atomic.Int64
	// Drains counts graceful drains started.
	Drains atomic.Int64
}

// Server is the process-wide instance the campaign service reports
// into.
var Server ServerCounters

// ServerSnapshot is one consistent-enough read of the counters.
func ServerSnapshot() map[string]int64 {
	return map[string]int64{
		"submitted":           Server.Submitted.Load(),
		"admitted":            Server.Admitted.Load(),
		"refused_quota":       Server.RefusedQuota.Load(),
		"refused_draining":    Server.RefusedDraining.Load(),
		"refused_fault":       Server.RefusedFault.Load(),
		"degraded_admissions": Server.DegradedAdmissions.Load(),
		"active_campaigns":    Server.ActiveCampaigns.Load(),
		"campaigns_done":      Server.CampaignsDone.Load(),
		"campaigns_failed":    Server.CampaignsFailed.Load(),
		"campaigns_canceled":  Server.CampaignsCanceled.Load(),
		"resumed_campaigns":   Server.ResumedCampaigns.Load(),
		"auto_compactions":    Server.AutoCompactions.Load(),
		"pool_shed_tasks":     Server.PoolShedTasks.Load(),
		"stream_write_errors": Server.StreamWriteErrors.Load(),
		"manifest_errors":     Server.ManifestErrors.Load(),
		"drains":              Server.Drains.Load(),
	}
}

func init() {
	expvar.Publish("pinte.server", expvar.Func(func() any {
		return ServerSnapshot()
	}))
}

// campaignRegistry maps campaign ID → live *Progress for every campaign
// the service currently owns. Unlike the process-wide "pinte.campaign"
// last-campaign-wins view the CLI tools publish, the registry serves
// every concurrent campaign side by side as "pinte.campaigns".
var campaignRegistry sync.Map

// RegisterCampaign exposes p as campaign id's live progress on the
// "pinte.campaigns" expvar map. A later registration under the same id
// replaces the earlier one.
func RegisterCampaign(id string, p *Progress) { campaignRegistry.Store(id, p) }

// UnregisterCampaign removes a finished campaign from the registry so
// a long-lived service's expvar page stays bounded.
func UnregisterCampaign(id string) { campaignRegistry.Delete(id) }

// CampaignProgress returns the live snapshot of a registered campaign.
func CampaignProgress(id string) (Snapshot, bool) {
	v, ok := campaignRegistry.Load(id)
	if !ok {
		return Snapshot{}, false
	}
	return v.(*Progress).Snapshot(time.Now()), true
}

func init() {
	expvar.Publish("pinte.campaigns", expvar.Func(func() any {
		now := time.Now()
		out := make(map[string]Snapshot)
		campaignRegistry.Range(func(k, v any) bool {
			out[k.(string)] = v.(*Progress).Snapshot(now)
			return true
		})
		return out
	}))
}
