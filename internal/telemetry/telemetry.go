// Package telemetry is the simulator's observability layer: interval
// time-series collected on the simulation hot path without allocating,
// a P_Induce calibration audit (realized vs configured trigger rate),
// and live campaign progress tracking for long sweeps.
//
// The package is a leaf: it never imports the simulator. Producers hand
// it plain counter snapshots (Counters) and it differentiates them into
// per-interval samples (Interval) inside buffers preallocated at
// construction, so enabling collection keeps the inner simulation loop
// at zero heap allocations.
package telemetry

// Counters is a point-in-time snapshot of the cumulative counters the
// collector differentiates into intervals. The producing loop fills one
// on the stack per sample boundary; the collector copies what it needs
// and never retains the argument.
type Counters struct {
	Instrs uint64
	Cycles uint64

	// Per-level demand misses for the observed core.
	L1DMisses uint64
	L2Misses  uint64
	LLCMisses uint64

	// LLCOccupancy is the number of LLC blocks the observed core holds.
	LLCOccupancy uint64

	// PInTE engine activity (zero when no engine is attached).
	EngineAccesses      uint64
	EngineTriggers      uint64
	EngineEvictBudget   uint64
	EnginePromotions    uint64
	EngineInvalidations uint64
}

// Interval is one collected sample: deltas (and derived rates) between
// two counter snapshots.
type Interval struct {
	// EndInstrs is the cumulative primary-core instruction count at the
	// interval's end; Instrs and Cycles are the interval's own widths.
	EndInstrs uint64
	Instrs    uint64
	Cycles    uint64

	IPC float64

	// Per-level misses per kilo-instruction over the interval.
	L1DMPKI float64
	L2MPKI  float64
	LLCMPKI float64

	// LLCOccupancyFrac is the observed core's share of LLC blocks at
	// the interval's end.
	LLCOccupancyFrac float64

	// PInTE engine activity over the interval.
	EngineAccesses      uint64
	EngineTriggers      uint64
	EngineEvictBudget   uint64
	EnginePromotions    uint64
	EngineInvalidations uint64
}

// TriggerRate returns the interval's realized induction rate (triggers
// per engine-observed LLC access), or 0 for an access-free interval.
func (iv Interval) TriggerRate() float64 {
	if iv.EngineAccesses == 0 {
		return 0
	}
	return float64(iv.EngineTriggers) / float64(iv.EngineAccesses)
}

// Series is a run's collected interval time-series.
type Series struct {
	// Every is the nominal sampling interval in instructions; a single
	// interval can span more when the producer's scheduling quantum
	// overshoots a boundary.
	Every     uint64
	Intervals []Interval
}

// TriggerTotals sums engine accesses and triggers across the series.
// With a tail flush (Collector.Tail) they equal the engine's own ROI
// totals, which is what the calibration audit cross-checks.
func (s *Series) TriggerTotals() (accesses, triggers uint64) {
	for i := range s.Intervals {
		accesses += s.Intervals[i].EngineAccesses
		triggers += s.Intervals[i].EngineTriggers
	}
	return accesses, triggers
}

// Collector accumulates a Series from counter snapshots. Construct it
// at the start of the measured region with the region's opening
// snapshot; the interval buffer is sized up front so steady-state
// Record calls never allocate.
type Collector struct {
	every     uint64
	capBlocks uint64
	nextAt    uint64
	prev      Counters
	// lastBase is the snapshot that opened the most recently appended
	// interval; when the preallocated buffer is full, record coalesces
	// the overflow into that interval instead of growing the slice.
	lastBase Counters
	series   Series
}

// NewCollector builds a collector sampling every `every` instructions
// across a region of roiInstrs, starting from snapshot start.
// llcCapacityBlocks converts occupancy counts into fractions; 0 leaves
// LLCOccupancyFrac at 0.
func NewCollector(every, roiInstrs, llcCapacityBlocks uint64, start Counters) *Collector {
	if every == 0 {
		every = 1
	}
	c := &Collector{every: every, capBlocks: llcCapacityBlocks, prev: start, lastBase: start}
	c.nextAt = start.Instrs + every
	// +2: one slot for a final partial boundary, one for the tail flush.
	c.series = Series{
		Every:     every,
		Intervals: make([]Interval, 0, roiInstrs/every+2),
	}
	return c
}

// NextAt returns the instruction count at which the next sample is due;
// the producer compares against it before building a Counters snapshot
// so the common no-sample path stays a single comparison.
func (c *Collector) NextAt() uint64 { return c.nextAt }

// Record closes the current interval at snapshot cur and schedules the
// next boundary. Callers gate on NextAt; calling early simply produces
// a short interval. If early calls outrun the buffer preallocated for
// roiInstrs/every boundaries, the newest samples coalesce into the last
// interval — totals stay exact and no allocation happens.
func (c *Collector) Record(cur Counters) {
	c.record(cur)
	c.nextAt = cur.Instrs + c.every
}

// Tail flushes the remainder since the last boundary as a final partial
// interval, so interval sums match the region's cumulative totals. A
// remainder with no retired instructions is dropped.
func (c *Collector) Tail(cur Counters) {
	if cur.Instrs > c.prev.Instrs {
		c.record(cur)
	}
}

func (c *Collector) record(cur Counters) {
	if ivs := c.series.Intervals; len(ivs) == cap(ivs) && len(ivs) > 0 {
		// Buffer full: drop the last interval and rebuild it spanning
		// from its own base to cur. Sums over the series stay exact;
		// only the tail's time resolution degrades.
		c.series.Intervals = ivs[:len(ivs)-1]
		c.prev = c.lastBase
	}
	p := c.prev
	iv := Interval{
		EndInstrs: cur.Instrs,
		Instrs:    cur.Instrs - p.Instrs,
		Cycles:    cur.Cycles - p.Cycles,

		EngineAccesses:      cur.EngineAccesses - p.EngineAccesses,
		EngineTriggers:      cur.EngineTriggers - p.EngineTriggers,
		EngineEvictBudget:   cur.EngineEvictBudget - p.EngineEvictBudget,
		EnginePromotions:    cur.EnginePromotions - p.EnginePromotions,
		EngineInvalidations: cur.EngineInvalidations - p.EngineInvalidations,
	}
	if iv.Cycles > 0 {
		iv.IPC = float64(iv.Instrs) / float64(iv.Cycles)
	}
	if ki := float64(iv.Instrs) / 1000; ki > 0 {
		iv.L1DMPKI = float64(cur.L1DMisses-p.L1DMisses) / ki
		iv.L2MPKI = float64(cur.L2Misses-p.L2Misses) / ki
		iv.LLCMPKI = float64(cur.LLCMisses-p.LLCMisses) / ki
	}
	if c.capBlocks > 0 {
		iv.LLCOccupancyFrac = float64(cur.LLCOccupancy) / float64(c.capBlocks)
	}
	c.series.Intervals = append(c.series.Intervals, iv)
	c.lastBase = p
	c.prev = cur
}

// Series returns the collected time-series. The collector keeps owning
// the backing array; call it once, after the region ends.
func (c *Collector) Series() *Series { return &c.series }
