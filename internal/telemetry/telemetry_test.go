package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestCollectorIntervals(t *testing.T) {
	start := Counters{Instrs: 1000, Cycles: 2000}
	c := NewCollector(100, 1000, 512, start)

	if got := c.NextAt(); got != 1100 {
		t.Fatalf("NextAt = %d, want 1100", got)
	}
	c.Record(Counters{
		Instrs: 1100, Cycles: 2200,
		L1DMisses: 10, L2Misses: 5, LLCMisses: 2,
		LLCOccupancy:   128,
		EngineAccesses: 40, EngineTriggers: 8, EngineEvictBudget: 30,
		EnginePromotions: 25, EngineInvalidations: 20,
	})
	c.Record(Counters{
		Instrs: 1250, Cycles: 2500,
		L1DMisses: 10, L2Misses: 5, LLCMisses: 2,
		LLCOccupancy:   256,
		EngineAccesses: 50, EngineTriggers: 8, EngineEvictBudget: 30,
		EnginePromotions: 25, EngineInvalidations: 20,
	})
	s := c.Series()
	if len(s.Intervals) != 2 {
		t.Fatalf("got %d intervals, want 2", len(s.Intervals))
	}

	iv := s.Intervals[0]
	if iv.EndInstrs != 1100 || iv.Instrs != 100 || iv.Cycles != 200 {
		t.Fatalf("interval 0 widths wrong: %+v", iv)
	}
	if iv.IPC != 0.5 {
		t.Fatalf("IPC = %v, want 0.5", iv.IPC)
	}
	if iv.L1DMPKI != 100 || iv.L2MPKI != 50 || iv.LLCMPKI != 20 {
		t.Fatalf("MPKI wrong: %+v", iv)
	}
	if iv.LLCOccupancyFrac != 0.25 {
		t.Fatalf("occupancy frac = %v, want 0.25", iv.LLCOccupancyFrac)
	}
	if iv.EngineTriggers != 8 || iv.EngineAccesses != 40 {
		t.Fatalf("engine deltas wrong: %+v", iv)
	}
	if got := iv.TriggerRate(); got != 0.2 {
		t.Fatalf("TriggerRate = %v, want 0.2", got)
	}

	// The second interval spans an overshoot (150 instrs) and must
	// difference against the first snapshot, not the start.
	iv = s.Intervals[1]
	if iv.Instrs != 150 || iv.L1DMPKI != 0 || iv.EngineAccesses != 10 || iv.EngineTriggers != 0 {
		t.Fatalf("interval 1 deltas wrong: %+v", iv)
	}

	acc, trig := s.TriggerTotals()
	if acc != 50 || trig != 8 {
		t.Fatalf("TriggerTotals = %d/%d, want 50/8", acc, trig)
	}
}

func TestCollectorTail(t *testing.T) {
	c := NewCollector(100, 300, 0, Counters{})
	c.Record(Counters{Instrs: 100, Cycles: 100})
	// No instructions since the boundary: Tail must record nothing.
	c.Tail(Counters{Instrs: 100, Cycles: 100})
	if got := len(c.Series().Intervals); got != 1 {
		t.Fatalf("empty tail recorded: %d intervals, want 1", got)
	}
	c.Tail(Counters{Instrs: 130, Cycles: 160, EngineAccesses: 3, EngineTriggers: 1})
	s := c.Series()
	if got := len(s.Intervals); got != 2 {
		t.Fatalf("tail not recorded: %d intervals, want 2", got)
	}
	if iv := s.Intervals[1]; iv.Instrs != 30 || iv.EngineTriggers != 1 {
		t.Fatalf("tail deltas wrong: %+v", iv)
	}
}

// TestCollectorRecordNoAllocs guards the zero-allocation contract: once
// constructed, steady-state sampling must not touch the heap, or the
// sim-loop AllocsPerRun guards would regress the moment telemetry is
// enabled.
func TestCollectorRecordNoAllocs(t *testing.T) {
	const every, n = 100, 50
	c := NewCollector(every, every*n, 512, Counters{})
	i := uint64(0)
	allocs := testing.AllocsPerRun(n-2, func() {
		i++
		c.Record(Counters{Instrs: i * every, Cycles: i * every * 2, EngineAccesses: i * 7})
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f times per sample, want 0", allocs)
	}
}

// TestCollectorRecordOverflowCoalesces pins the documented "calling
// early simply produces a short interval" contract against the buffer
// preallocation: Record calls arriving faster than the nominal rate
// must neither allocate (the zero-alloc contract) nor lose counts —
// the overflow coalesces into the final interval.
func TestCollectorRecordOverflowCoalesces(t *testing.T) {
	const every, roi = 100, 300 // capacity: 300/100+2 = 5 intervals
	start := Counters{Instrs: 1000}
	c := NewCollector(every, roi, 0, start)

	i := uint64(0)
	next := func() Counters {
		i++
		// Every call is "early": 10 instrs apart against a 100-instr
		// nominal interval, so 20 calls want 20 slots from a 5-cap buffer.
		return Counters{
			Instrs: start.Instrs + i*10, Cycles: i * 20,
			EngineAccesses: i * 3, EngineTriggers: i,
		}
	}
	var last Counters
	allocs := testing.AllocsPerRun(19, func() {
		last = next()
		c.Record(last)
	})
	if allocs != 0 {
		t.Fatalf("early Record allocates %.1f times per sample, want 0", allocs)
	}

	s := c.Series()
	if len(s.Intervals) > cap(s.Intervals) || cap(s.Intervals) != roi/every+2 {
		t.Fatalf("buffer grew: len %d cap %d, want cap %d", len(s.Intervals), cap(s.Intervals), roi/every+2)
	}
	var instrs uint64
	for _, iv := range s.Intervals {
		instrs += iv.Instrs
	}
	if want := last.Instrs - start.Instrs; instrs != want {
		t.Fatalf("interval instr sum = %d, want %d", instrs, want)
	}
	if end := s.Intervals[len(s.Intervals)-1].EndInstrs; end != last.Instrs {
		t.Fatalf("final EndInstrs = %d, want %d", end, last.Instrs)
	}
	if acc, trig := s.TriggerTotals(); acc != last.EngineAccesses || trig != last.EngineTriggers {
		t.Fatalf("TriggerTotals = %d/%d, want %d/%d", acc, trig, last.EngineAccesses, last.EngineTriggers)
	}
}

func TestProgressSnapshot(t *testing.T) {
	start := time.Unix(0, 0)
	p := NewProgress(10, start)
	p.FromJournal(2)
	for i := 0; i < 3; i++ {
		p.RunCompleted()
	}
	p.RunFailed()
	p.Retried()
	p.JournalError()

	s := p.Snapshot(start.Add(2 * time.Second))
	if s.Total != 10 || s.Completed != 3 || s.Failed != 1 || s.FromJournal != 2 {
		t.Fatalf("snapshot counters wrong: %+v", s)
	}
	if s.RunsPerSec != 2 { // 4 executed over 2s
		t.Fatalf("RunsPerSec = %v, want 2", s.RunsPerSec)
	}
	if s.ETA != 2*time.Second { // 4 remaining at 2 runs/s
		t.Fatalf("ETA = %v, want 2s", s.ETA)
	}
	if s.Done() {
		t.Fatal("campaign reported done with 4 runs outstanding")
	}

	for i := 0; i < 4; i++ {
		p.RunCompleted()
	}
	s = p.Snapshot(start.Add(4 * time.Second))
	if !s.Done() {
		t.Fatalf("campaign not done: %+v", s)
	}
	if s.ETA != 0 {
		t.Fatalf("done campaign has ETA %v", s.ETA)
	}
	line := s.String()
	for _, want := range []string{"9/10 done", "1 failed", "1 retried", "2 from journal", "1 journal write failures"} {
		if !strings.Contains(line, want) {
			t.Errorf("heartbeat %q missing %q", line, want)
		}
	}
}

// TestProgressSnapshotFreezesAfterDone pins the expvar-staleness fix:
// once every run is accounted for, later scrapes must report the final
// Elapsed and RunsPerSec instead of a growing wall clock and a decaying
// rate. Uses the real clock because completion is stamped internally.
func TestProgressSnapshotFreezesAfterDone(t *testing.T) {
	p := NewProgress(2, time.Now())
	p.RunCompleted()
	p.RunFailed()

	s1 := p.Snapshot(time.Now().Add(time.Hour))
	s2 := p.Snapshot(time.Now().Add(2 * time.Hour))
	if !s1.Done() || !s2.Done() {
		t.Fatalf("campaign not done: %+v / %+v", s1, s2)
	}
	if s1.Elapsed != s2.Elapsed {
		t.Fatalf("Elapsed drifted after done: %v then %v", s1.Elapsed, s2.Elapsed)
	}
	if s1.RunsPerSec != s2.RunsPerSec || s1.RunsPerSec <= 0 {
		t.Fatalf("RunsPerSec not frozen: %v then %v", s1.RunsPerSec, s2.RunsPerSec)
	}
	if s1.Elapsed > time.Minute {
		t.Fatalf("Elapsed %v not clamped to completion time", s1.Elapsed)
	}

	// A campaign still in flight must keep using the caller's clock.
	q := NewProgress(2, time.Now())
	q.RunCompleted()
	if a, b := q.Snapshot(time.Now().Add(time.Second)), q.Snapshot(time.Now().Add(2*time.Second)); a.Elapsed == b.Elapsed {
		t.Fatalf("in-flight Elapsed frozen at %v", a.Elapsed)
	}
}

func TestProgressPublishIdempotent(t *testing.T) {
	p1 := NewProgress(1, time.Now())
	p2 := NewProgress(2, time.Now())
	p1.Publish()
	p2.Publish() // must not panic on duplicate expvar registration
	if got := currentProgress.Load(); got != p2 {
		t.Fatal("latest published campaign did not win")
	}
}
