package telemetry

import (
	"expvar"
	"sync/atomic"
)

// StoreCounters is the process-wide tally of the cross-campaign result
// store (internal/store) plus the expt memo that sits above it, served
// as expvar "pinte.store" so one dashboard covers both caching layers:
// the in-process memo and the durable content-addressed store beneath
// it.
type StoreCounters struct {
	// Hits counts lookups served from the store; Misses counts lookups
	// that found nothing under the current simulator fingerprint.
	Hits   atomic.Int64
	Misses atomic.Int64
	// Puts counts results durably appended; PutErrors counts appends
	// that failed (the run still succeeded — the store degrades to
	// compute-without-cache, it never fails a run).
	Puts      atomic.Int64
	PutErrors atomic.Int64
	// ReadErrors counts hit read-backs that failed (I/O error or a
	// checksum mismatch); the entry is dropped from the index and the
	// lookup degrades to a miss.
	ReadErrors atomic.Int64
	// CorruptRecords counts mid-segment records dropped during an open
	// scan (bad JSON or a failed CRC), LoadJournal-style: the scan
	// continues and every intact record after them still loads.
	CorruptRecords atomic.Int64
	// TornTails counts benign final-record truncations (a crash
	// mid-append) trimmed away on open.
	TornTails atomic.Int64
	// StaleSkipped counts records seen at open whose simulator
	// fingerprint differs from the current build: kept on disk for
	// comparison, never indexed, never served.
	StaleSkipped atomic.Int64
	// Evictions / EvictedBytes tally byte-budget segment GC.
	Evictions    atomic.Int64
	EvictedBytes atomic.Int64
	// OpenErrors counts store opens that failed; the caller proceeds
	// without a cache.
	OpenErrors atomic.Int64
	// SingleFlightShared counts runs that blocked on another campaign's
	// in-flight computation of the same config and shared its result;
	// SingleFlightRetries counts waiters woken into their own attempt
	// by a failed or panicked leader.
	SingleFlightShared  atomic.Int64
	SingleFlightRetries atomic.Int64
	// MemoHits / MemoMisses are the expt in-process memo layer, folded
	// in here so the warm layer and the durable layer share a
	// dashboard.
	MemoHits   atomic.Int64
	MemoMisses atomic.Int64
}

// StoreC is the process-wide instance the store and the expt memo
// report into.
var StoreC StoreCounters

// storeGauges, when published, supplies the live size gauges (bytes,
// segments, entries) of the most recently opened store — the same
// last-one-wins pattern as the replay-cache view.
var storeGauges atomic.Pointer[func() map[string]int64]

// PublishStoreGauges exposes fn's gauges alongside the counters on the
// "pinte.store" expvar. The function must be safe to call from any
// goroutine at any time.
func PublishStoreGauges(fn func() map[string]int64) { storeGauges.Store(&fn) }

// StoreSnapshot is one consistent-enough read of the counters plus the
// published store gauges.
func StoreSnapshot() map[string]int64 {
	out := map[string]int64{
		"hits":                 StoreC.Hits.Load(),
		"misses":               StoreC.Misses.Load(),
		"puts":                 StoreC.Puts.Load(),
		"put_errors":           StoreC.PutErrors.Load(),
		"read_errors":          StoreC.ReadErrors.Load(),
		"corrupt_records":      StoreC.CorruptRecords.Load(),
		"torn_tails":           StoreC.TornTails.Load(),
		"stale_skipped":        StoreC.StaleSkipped.Load(),
		"evictions":            StoreC.Evictions.Load(),
		"evicted_bytes":        StoreC.EvictedBytes.Load(),
		"open_errors":          StoreC.OpenErrors.Load(),
		"singleflight_shared":  StoreC.SingleFlightShared.Load(),
		"singleflight_retries": StoreC.SingleFlightRetries.Load(),
		"memo_hits":            StoreC.MemoHits.Load(),
		"memo_misses":          StoreC.MemoMisses.Load(),
	}
	if fn := storeGauges.Load(); fn != nil {
		for k, v := range (*fn)() {
			out[k] = v
		}
	}
	return out
}

func init() {
	expvar.Publish("pinte.store", expvar.Func(func() any {
		return StoreSnapshot()
	}))
}
