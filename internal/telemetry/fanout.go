package telemetry

import (
	"expvar"
	"sync/atomic"
)

// FanoutCounters is the process-wide tally of the fan-out sweep
// executor (internal/runner + internal/sim): how many sweep groups were
// formed, how many points rode a shared decode, and how much decode
// work the sharing saved. Served on the expvar page as "pinte.fanout"
// so a campaign's operator can verify the one-decode invariant —
// DecodePasses should equal GroupsFormed, with PointsFanned −
// GroupsFormed passes saved.
type FanoutCounters struct {
	// GroupsFormed counts fan-out groups scheduled; PointsFanned counts
	// the sweep points they covered.
	GroupsFormed atomic.Int64
	PointsFanned atomic.Int64
	// DecodePasses counts trace decode passes spent by fan-out groups
	// (one per group); DecodePassesSaved counts the passes a sequential
	// sweep would have spent on the same points minus those.
	DecodePasses      atomic.Int64
	DecodePassesSaved atomic.Int64
	// FallbackPoints counts points that left the fan-out path for the
	// sequential per-run path (failed, stalled or aborted mid-group);
	// GroupAborts counts whole groups abandoned to the sequential path.
	FallbackPoints atomic.Int64
	GroupAborts    atomic.Int64
}

// Fanout is the process-wide instance the fan-out scheduler reports
// into.
var Fanout FanoutCounters

// FanoutSnapshot is one consistent-enough read of the counters.
func FanoutSnapshot() map[string]int64 {
	return map[string]int64{
		"groups_formed":       Fanout.GroupsFormed.Load(),
		"points_fanned":       Fanout.PointsFanned.Load(),
		"decode_passes":       Fanout.DecodePasses.Load(),
		"decode_passes_saved": Fanout.DecodePassesSaved.Load(),
		"fallback_points":     Fanout.FallbackPoints.Load(),
		"group_aborts":        Fanout.GroupAborts.Load(),
	}
}

func init() {
	expvar.Publish("pinte.fanout", expvar.Func(func() any {
		return FanoutSnapshot()
	}))
}
