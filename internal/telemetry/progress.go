package telemetry

import (
	"expvar"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Progress tracks a campaign's live state. All mutators are safe for
// concurrent use by worker goroutines; Snapshot is safe to call from a
// heartbeat ticker or an expvar scrape at any time.
type Progress struct {
	total int64
	start time.Time

	completed      atomic.Int64 // runs that finished and produced a result
	failed         atomic.Int64 // runs that exhausted their attempts
	retried        atomic.Int64 // retry attempts across all runs
	fromJournal    atomic.Int64 // runs satisfied from the resume journal
	journalSkipped atomic.Int64 // corrupt journal lines dropped on load
	journalErrors  atomic.Int64 // journal-only failures (result kept, append lost)

	// doneAt is set exactly once, when the campaign first accounts for
	// every run. Snapshot clamps its clock to it so Elapsed and
	// RunsPerSec freeze at their final values instead of drifting as a
	// finished campaign's expvar page keeps being scraped.
	doneAt atomic.Pointer[time.Time]
}

// NewProgress starts tracking a campaign of total runs beginning at
// start.
func NewProgress(total int, start time.Time) *Progress {
	p := &Progress{total: int64(total), start: start}
	p.noteDone() // a zero-run campaign is born finished
	return p
}

// noteDone freezes the completion timestamp the first time every run is
// accounted for. Called after every mutation that can finish the
// campaign; later calls are no-ops.
func (p *Progress) noteDone() {
	if p.doneAt.Load() != nil {
		return
	}
	if p.completed.Load()+p.failed.Load()+p.fromJournal.Load() >= p.total {
		now := time.Now()
		p.doneAt.CompareAndSwap(nil, &now)
	}
}

// RunCompleted records one successfully finished run.
func (p *Progress) RunCompleted() { p.completed.Add(1); p.noteDone() }

// RunFailed records one run that exhausted its attempts.
func (p *Progress) RunFailed() { p.failed.Add(1); p.noteDone() }

// Retried records one retry attempt.
func (p *Progress) Retried() { p.retried.Add(1) }

// FromJournal records n runs satisfied from the resume journal.
func (p *Progress) FromJournal(n int) { p.fromJournal.Add(int64(n)); p.noteDone() }

// JournalSkipped records n corrupt journal lines dropped during resume.
func (p *Progress) JournalSkipped(n int) { p.journalSkipped.Add(int64(n)) }

// JournalError records one journal-only failure: the run's result is
// kept but its checkpoint append was lost.
func (p *Progress) JournalError() { p.journalErrors.Add(1) }

// Snapshot is one consistent-enough view of a campaign (counters are
// read individually; a heartbeat may straddle an update by one run).
type Snapshot struct {
	Total          int64
	Completed      int64
	Failed         int64
	Retried        int64
	FromJournal    int64
	JournalSkipped int64
	JournalErrors  int64

	Elapsed    time.Duration
	RunsPerSec float64
	// ETA extrapolates the remaining executed runs at the observed
	// rate; it is negative-free and zero when nothing remains or no
	// rate is measurable yet.
	ETA time.Duration
}

// Snapshot captures the campaign state as of now. Once the campaign
// has finished, now is clamped to the completion instant so repeated
// scrapes of a finished campaign report its final Elapsed and
// RunsPerSec instead of a growing clock and a decaying rate.
func (p *Progress) Snapshot(now time.Time) Snapshot {
	if d := p.doneAt.Load(); d != nil && now.After(*d) {
		now = *d
	}
	s := Snapshot{
		Total:          p.total,
		Completed:      p.completed.Load(),
		Failed:         p.failed.Load(),
		Retried:        p.retried.Load(),
		FromJournal:    p.fromJournal.Load(),
		JournalSkipped: p.journalSkipped.Load(),
		JournalErrors:  p.journalErrors.Load(),
		Elapsed:        now.Sub(p.start),
	}
	executed := s.Completed + s.Failed
	if s.Elapsed > 0 && executed > 0 {
		s.RunsPerSec = float64(executed) / s.Elapsed.Seconds()
	}
	remaining := s.Total - s.FromJournal - executed
	if remaining > 0 && s.RunsPerSec > 0 {
		s.ETA = time.Duration(float64(remaining) / s.RunsPerSec * float64(time.Second))
	}
	return s
}

// Done reports whether every run is accounted for.
func (s Snapshot) Done() bool {
	return s.Completed+s.Failed+s.FromJournal >= s.Total
}

// String renders the snapshot as one heartbeat line.
func (s Snapshot) String() string {
	line := fmt.Sprintf("progress: %d/%d done, %d failed",
		s.Completed+s.FromJournal, s.Total, s.Failed)
	if s.Retried > 0 {
		line += fmt.Sprintf(", %d retried", s.Retried)
	}
	if s.FromJournal > 0 {
		line += fmt.Sprintf(", %d from journal", s.FromJournal)
	}
	if s.JournalErrors > 0 {
		line += fmt.Sprintf(", %d journal write failures", s.JournalErrors)
	}
	if s.RunsPerSec > 0 {
		line += fmt.Sprintf(", %.1f runs/s", s.RunsPerSec)
	}
	if s.ETA > 0 {
		line += fmt.Sprintf(", ETA %s", s.ETA.Round(time.Second))
	} else if s.Done() {
		line += fmt.Sprintf(", wall %s", s.Elapsed.Round(time.Millisecond))
	}
	return line
}

// currentProgress backs the process-wide expvar view: the most recently
// published campaign wins, which matches the one-campaign-per-process
// shape of the command-line tools.
var (
	currentProgress atomic.Pointer[Progress]
	publishOnce     sync.Once
)

// Publish exposes p as the process's live campaign on the expvar page
// (/debug/vars, key "pinte.campaign" — served over HTTP by the prof
// package's -debug endpoint). Idempotent; a later campaign's Publish
// replaces an earlier one's.
func (p *Progress) Publish() {
	currentProgress.Store(p)
	publishOnce.Do(func() {
		expvar.Publish("pinte.campaign", expvar.Func(func() any {
			cur := currentProgress.Load()
			if cur == nil {
				return nil
			}
			return cur.Snapshot(time.Now())
		}))
	})
}
