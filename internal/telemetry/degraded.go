package telemetry

import (
	"expvar"
	"sync/atomic"
)

// DegradationCounters is the process-wide tally of every degraded-mode
// event in the persistence and execution stack: cases where the system
// survived a fault by dropping to a slower or lossier path instead of
// corrupting state or wedging. Each counter pairs with one rung of the
// degradation ladder documented in DESIGN.md §10; all of them are served
// on the expvar page as "pinte.degraded" (the prof package's -debug
// endpoint), so a long campaign's operator can see at a glance whether
// results were produced cleanly or under degradation.
type DegradationCounters struct {
	// ReplayCorruptChunks counts recorded arena chunks whose checksum
	// failed verification; ReplayFallbacks counts replayers that
	// switched to live regeneration because of one.
	ReplayCorruptChunks atomic.Int64
	ReplayFallbacks     atomic.Int64
	// JournalLinesSkipped counts unusable journal lines dropped during a
	// resume scan; JournalCRCFailures is the subset dropped because the
	// line's checksum did not match its payload.
	JournalLinesSkipped atomic.Int64
	JournalCRCFailures  atomic.Int64
	// StalledRuns counts wedged workers the watchdog abandoned with a
	// typed ErrStalled instead of hanging the campaign.
	StalledRuns atomic.Int64
}

// Degraded is the process-wide instance every package reports into.
var Degraded DegradationCounters

// DegradedSnapshot is one consistent-enough read of the counters.
func DegradedSnapshot() map[string]int64 {
	return map[string]int64{
		"replay_corrupt_chunks": Degraded.ReplayCorruptChunks.Load(),
		"replay_fallbacks":      Degraded.ReplayFallbacks.Load(),
		"journal_lines_skipped": Degraded.JournalLinesSkipped.Load(),
		"journal_crc_failures":  Degraded.JournalCRCFailures.Load(),
		"stalled_runs":          Degraded.StalledRuns.Load(),
	}
}

func init() {
	expvar.Publish("pinte.degraded", expvar.Func(func() any {
		return DegradedSnapshot()
	}))
}
