package telemetry

import (
	"expvar"
	"sync"
	"sync/atomic"
)

// currentReplay backs the process-wide expvar view of the stream
// record/replay cache, mirroring the campaign-progress pattern: the
// most recently published cache wins, matching the one-cache-per-
// process shape of the command-line tools.
var (
	currentReplay     atomic.Pointer[func() any]
	replayPublishOnce sync.Once
)

// PublishReplay exposes snapshot as the live replay-cache view on the
// expvar page (/debug/vars, key "pinte.replay" — served over HTTP by
// the prof package's -debug endpoint). Idempotent; a later cache's
// publish replaces an earlier one's. The snapshot function must be safe
// to call from any goroutine at any time.
func PublishReplay(snapshot func() any) {
	currentReplay.Store(&snapshot)
	replayPublishOnce.Do(func() {
		expvar.Publish("pinte.replay", expvar.Func(func() any {
			cur := currentReplay.Load()
			if cur == nil {
				return nil
			}
			return (*cur)()
		}))
	})
}
