package telemetry

import (
	"expvar"
	"sync/atomic"
)

// PhaseCounters is the process-wide tally of phase-aware representative
// sampling (internal/phase + internal/sim + internal/runner): how many
// profiling pre-passes ran, how many sampling plans were built and with
// how many phases, and the instruction budget the sampled runs paid
// versus skipped. Served on the expvar page as "pinte.phase" so a
// campaign's operator can see the budget saved live —
// InstrsSkipped / (InstrsSimulated + InstrsSkipped) is the fraction of
// detailed simulation the phase model removed.
type PhaseCounters struct {
	// ProfileRuns counts telemetry-only profiling pre-passes executed;
	// ProfileFailures counts pre-passes that failed (their member runs
	// stay on the full-ROI path).
	ProfileRuns     atomic.Int64
	ProfileFailures atomic.Int64
	// PlansBuilt counts sampling plans produced by the clusterer and
	// PhasesFound the total phases across them.
	PlansBuilt  atomic.Int64
	PhasesFound atomic.Int64
	// SampledRuns counts runs executed in sampled mode;
	// SampledFallbacks counts sampled attempts that failed and were
	// re-run on the full-ROI path.
	SampledRuns      atomic.Int64
	SampledFallbacks atomic.Int64
	// IntervalsSimulated / IntervalsSkipped count profile intervals
	// covered by a representative window versus reconstructed from one.
	IntervalsSimulated atomic.Int64
	IntervalsSkipped   atomic.Int64
	// InstrsSimulated / InstrsSkipped count primary-core instructions
	// executed in detail (window warmup + windows) versus fast-forwarded.
	InstrsSimulated atomic.Int64
	InstrsSkipped   atomic.Int64
}

// Phase is the process-wide instance the sampling stack reports into.
var Phase PhaseCounters

// PhaseSnapshot is one consistent-enough read of the counters.
func PhaseSnapshot() map[string]int64 {
	return map[string]int64{
		"profile_runs":        Phase.ProfileRuns.Load(),
		"profile_failures":    Phase.ProfileFailures.Load(),
		"plans_built":         Phase.PlansBuilt.Load(),
		"phases_found":        Phase.PhasesFound.Load(),
		"sampled_runs":        Phase.SampledRuns.Load(),
		"sampled_fallbacks":   Phase.SampledFallbacks.Load(),
		"intervals_simulated": Phase.IntervalsSimulated.Load(),
		"intervals_skipped":   Phase.IntervalsSkipped.Load(),
		"instrs_simulated":    Phase.InstrsSimulated.Load(),
		"instrs_skipped":      Phase.InstrsSkipped.Load(),
	}
}

func init() {
	expvar.Publish("pinte.phase", expvar.Func(func() any {
		return PhaseSnapshot()
	}))
}
