package c2afe

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExtractFlatCurve(t *testing.T) {
	x := []float64{0, 0.2, 0.4, 0.6, 0.8}
	y := []float64{1, 1, 1, 1, 1}
	f := Extract(x, y)
	if f.Trend != 0 || f.Sensitivity != 0 {
		t.Errorf("flat curve features = %+v", f)
	}
}

func TestExtractDegradingCurve(t *testing.T) {
	x := []float64{0, 0.2, 0.4, 0.6, 0.8}
	y := []float64{1, 0.98, 0.9, 0.6, 0.4}
	f := Extract(x, y)
	if f.Trend >= 0 {
		t.Errorf("degrading curve has trend %v, want negative", f.Trend)
	}
	if math.Abs(f.Sensitivity-0.6) > 1e-12 {
		t.Errorf("sensitivity = %v, want 0.6", f.Sensitivity)
	}
	// The knee sits where the curve bends hardest: 0.4 or 0.6 here.
	if f.Knee != 0.4 && f.Knee != 0.6 {
		t.Errorf("knee = %v, want 0.4 or 0.6", f.Knee)
	}
}

func TestExtractShortCurves(t *testing.T) {
	if f := Extract([]float64{0.1}, []float64{1}); f != (Features{}) {
		t.Errorf("single-point curve features = %+v, want zero", f)
	}
	if f := Extract(nil, nil); f != (Features{}) {
		t.Errorf("empty curve features = %+v, want zero", f)
	}
}

func TestExtractMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Extract([]float64{1}, []float64{1, 2})
}

func TestSlopeKnownLine(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{5, 3, 1, -1}
	if s := slope(x, y); math.Abs(s+2) > 1e-12 {
		t.Errorf("slope = %v, want -2", s)
	}
}

func TestClassifyBoundaries(t *testing.T) {
	mk := func(sensitive, total int) []float64 {
		out := make([]float64, total)
		for i := range out {
			if i < sensitive {
				out[i] = 0.8 // 20% loss: sensitive at 5% TPL
			} else {
				out[i] = 1.0
			}
		}
		return out
	}
	cases := []struct {
		sensitive, total int
		want             Class
	}{
		{0, 20, LowSensitivity},
		{5, 20, LowSensitivity},    // exactly 25%
		{6, 20, MixedSensitivity},  // 30%
		{14, 20, MixedSensitivity}, // 70%
		{15, 20, HighSensitivity},  // exactly 75%
		{20, 20, HighSensitivity},
	}
	for _, c := range cases {
		got, scp := Classify(mk(c.sensitive, c.total), DefaultTPL)
		if got != c.want {
			t.Errorf("%d/%d sensitive: class %v, want %v", c.sensitive, c.total, got, c.want)
		}
		if want := float64(c.sensitive) / float64(c.total); math.Abs(scp-want) > 1e-12 {
			t.Errorf("%d/%d: SCP %v, want %v", c.sensitive, c.total, scp, want)
		}
	}
}

func TestClassifyGainsCountAsSensitive(t *testing.T) {
	// IPC gains beyond the TPL are still "changes in IPC".
	ws := []float64{1.2, 1.3, 1.25, 1.4}
	if got, _ := Classify(ws, DefaultTPL); got != HighSensitivity {
		t.Errorf("large gains classified %v, want high", got)
	}
}

func TestClassifyEmpty(t *testing.T) {
	if got, scp := Classify(nil, DefaultTPL); got != LowSensitivity || scp != 0 {
		t.Errorf("empty input: (%v, %v)", got, scp)
	}
}

func TestClassifySCPInRangeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		ws := make([]float64, len(raw))
		for i, r := range raw {
			ws[i] = float64(r) / 128
		}
		_, scp := Classify(ws, DefaultTPL)
		return scp >= 0 && scp <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassStrings(t *testing.T) {
	if LowSensitivity.String() != "low" || MixedSensitivity.String() != "mixed" ||
		HighSensitivity.String() != "high" {
		t.Error("class names do not match Fig 8 labels")
	}
}
