// Package c2afe implements the capacity/contention-curve annotation and
// feature extraction the paper borrows from C²AFE (Gomes & Hempstead,
// ISPASS 2020): summarising a performance curve into knee, trend and
// sensitivity features, plus the §V-B contention-sensitivity
// classification (high / low / mixed at a tolerable performance loss).
package c2afe

import (
	"fmt"
	"math"
)

// Features summarises one contention curve (x = contention rate, y =
// weighted IPC).
type Features struct {
	// Knee is the x position of maximum curvature — where performance
	// starts to fall away — found by maximum chord distance (Kneedle).
	Knee float64
	// Trend is the least-squares slope of y over x (weighted IPC per
	// unit contention rate; negative means performance degrades).
	Trend float64
	// Sensitivity is the maximum deviation of y from 1.0 (isolation).
	Sensitivity float64
}

// Extract computes curve features. It panics on mismatched lengths (a
// programming error); curves with fewer than 2 points return zero
// features.
func Extract(x, y []float64) Features {
	if len(x) != len(y) {
		panic(fmt.Sprintf("c2afe: curve length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) < 2 {
		return Features{}
	}
	var f Features
	f.Trend = slope(x, y)
	for _, v := range y {
		if d := math.Abs(1 - v); d > f.Sensitivity {
			f.Sensitivity = d
		}
	}
	f.Knee = knee(x, y)
	return f
}

func slope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// knee finds the x of maximum perpendicular distance from the chord
// joining the curve's endpoints.
func knee(x, y []float64) float64 {
	n := len(x)
	x0, y0 := x[0], y[0]
	x1, y1 := x[n-1], y[n-1]
	dx, dy := x1-x0, y1-y0
	norm := math.Hypot(dx, dy)
	if norm == 0 {
		return x0
	}
	best, bestD := x0, -1.0
	for i := 1; i < n-1; i++ {
		d := math.Abs(dy*x[i]-dx*y[i]+x1*y0-y1*x0) / norm
		if d > bestD {
			best, bestD = x[i], d
		}
	}
	if bestD < 0 {
		return x0
	}
	return best
}

// Class is the §V-B contention-sensitivity classification.
type Class int

const (
	// LowSensitivity: no more than 25% of samples exceed the TPL
	// (grey plot area in Fig 8).
	LowSensitivity Class = iota
	// MixedSensitivity: between the two extremes (white).
	MixedSensitivity
	// HighSensitivity: at least 75% of samples exceed the TPL (red
	// border).
	HighSensitivity
)

// String returns the class name used in Fig 8.
func (c Class) String() string {
	switch c {
	case LowSensitivity:
		return "low"
	case MixedSensitivity:
		return "mixed"
	case HighSensitivity:
		return "high"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// DefaultTPL is the paper's tolerable performance loss (§V-A evaluated
// 1%, 5% and 10%; 5% "yields reasonable sensitivity classification").
const DefaultTPL = 0.05

// Classify applies the §V-B rule to a set of weighted-IPC samples:
// a sample is "sensitive" when its IPC differs from isolation by more
// than tpl. It returns the class and the sensitive-curve population (SCP)
// as a fraction in [0, 1].
func Classify(weightedIPC []float64, tpl float64) (Class, float64) {
	if len(weightedIPC) == 0 {
		return LowSensitivity, 0
	}
	sensitive := 0
	for _, w := range weightedIPC {
		if math.Abs(1-w) > tpl {
			sensitive++
		}
	}
	scp := float64(sensitive) / float64(len(weightedIPC))
	switch {
	case scp >= 0.75:
		return HighSensitivity, scp
	case scp <= 0.25:
		return LowSensitivity, scp
	default:
		return MixedSensitivity, scp
	}
}
