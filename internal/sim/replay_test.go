package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/replay"
)

// TestReplayEquivalence locks the replay cache's core contract: a run
// whose instruction streams come from the record/replay cache must be
// byte-identical to a run that regenerates them — across all three
// contention modes, and whether the stream is being recorded (first
// use) or replayed (every later use).
func TestReplayEquivalence(t *testing.T) {
	for name, cfg := range goldenConfigs() {
		t.Run(name, func(t *testing.T) {
			direct, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := goldenBytes(t, direct)

			cache := replay.NewCache(256 << 20)
			for _, use := range []string{"recording", "replayed"} {
				c := cfg
				c.Streams = cache
				res, err := Run(c)
				if err != nil {
					t.Fatalf("%s run: %v", use, err)
				}
				if got := goldenBytes(t, res); !bytes.Equal(got, want) {
					t.Errorf("%s run diverged from the generated run; "+
						"replayed streams must be record-for-record identical", use)
				}
			}
			st := cache.Snapshot()
			if st.Misses == 0 || st.Hits == 0 {
				t.Fatalf("cache saw %d misses / %d hits; the second run "+
					"should have replayed the first run's streams", st.Misses, st.Hits)
			}
		})
	}
}

// TestReplayMatchesGoldens re-checks the committed goldens with the
// cache attached: the on-disk fixed-seed artifacts must not depend on
// whether streams were generated or replayed.
func TestReplayMatchesGoldens(t *testing.T) {
	cache := replay.NewCache(256 << 20)
	for name, cfg := range goldenConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.Streams = cache
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden_"+name+".json"))
			if err != nil {
				t.Fatalf("read golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(goldenBytes(t, res), want) {
				t.Errorf("cache-on result for %q diverged from the committed golden", name)
			}
		})
	}
}
