// Package sim drives complete simulations in the paper's three contexts
// of contention: Isolation (one core, no injection), PInTE (one core with
// the injection engine on the LLC), and SecondTrace (two cores sharing
// the LLC and DRAM — the multi-programmed baseline). It handles warm-up,
// the region of interest, periodic run-time sampling, and parallel
// experiment execution.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/branch"
	"repro/internal/cache"
	pinte "repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/partition"
	"repro/internal/phase"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Mode is the source of contention (Table I's three rows).
type Mode int

const (
	// Isolation runs the workload alone.
	Isolation Mode = iota
	// PInTE runs the workload alone with the injection engine attached
	// to the LLC.
	PInTE
	// SecondTrace co-runs an adversary workload on a second core.
	SecondTrace
)

// String returns the mode name used in reports.
func (m Mode) String() string {
	switch m {
	case Isolation:
		return "isolation"
	case PInTE:
		return "pinte"
	case SecondTrace:
		return "2nd-trace"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config describes one simulation.
type Config struct {
	Mode Mode

	// Workload names a preset (internal/trace); WorkloadSpec overrides
	// it with an ad-hoc spec when non-nil.
	Workload     string
	WorkloadSpec *trace.Spec

	// Adversary (SecondTrace only) names the co-runner preset;
	// AdversarySpec overrides it. Adversaries adds further co-runners
	// on additional cores — the paper's "more than two workloads ...
	// run concurrently" scenario; each gets a disjoint address space.
	Adversary     string
	AdversarySpec *trace.Spec
	Adversaries   []string

	// PInduce is the injection probability (PInTE only).
	PInduce float64

	// Hier configures the cache hierarchy; the zero value selects the
	// paper's default machine. Cores is set by the driver.
	Hier cache.HierarchyConfig
	// DRAM configures memory; nil selects dram.Default().
	DRAM *dram.Config
	// CPU configures core timing; MLP defaults to the workload spec's
	// hint when zero.
	CPU cpu.Config
	// Branch names the branch predictor; "" means hashed-perceptron.
	Branch string

	// LLCWayAllocation, when non-zero, restricts every core's LLC
	// fills to the first N ways (an Intel RDT-style capacity cap, as
	// in the paper's §V-D setup: 10MB of the Xeon's 11MB LLC for the
	// measured workloads). Remaining ways stay reserved.
	LLCWayAllocation int

	// Partitioning selects a dynamic LLC partitioning controller
	// ("ucp" or "theft", see internal/partition); "" disables it.
	// Mutually exclusive with LLCWayAllocation.
	Partitioning string
	// ReallocEvery is the partitioning epoch in primary-core
	// instructions; 0 means 50_000.
	ReallocEvery uint64

	// WarmupInstrs runs before statistics are reset; ROIInstrs is the
	// measured region; SampleEvery is the run-time sampling interval
	// (all counted in primary-core instructions). Zero values select
	// 200k / 1M / 50k — the paper's 500M / 500M / 10M at 1:500 scale.
	WarmupInstrs uint64
	ROIInstrs    uint64
	SampleEvery  uint64

	// TelemetryEvery, in primary-core instructions, collects the
	// interval time-series (internal/telemetry: IPC, per-level MPKI,
	// LLC occupancy, PInTE engine activity) every N instructions over
	// the region of interest; 0 disables collection. Collection is
	// observation-only — enabling it never changes simulation results —
	// and the field is omitted from JSON when zero so journal hashes
	// and golden outputs of telemetry-free configs are unaffected.
	TelemetryEvery uint64 `json:",omitempty"`

	// Streams, when non-nil, supplies the primary core's instruction
	// stream — typically a campaign-wide record/replay cache
	// (internal/replay) that records each workload stream once and
	// replays it read-only across all runs sharing it (every P_Induce
	// point of a sweep, every rerun and pairing). SecondTrace adversary
	// cores always regenerate: their consumed length is IPC-dependent
	// and unbounded, so caching them costs more than it returns. nil
	// regenerates every stream per run. Replayed streams are record-
	// for-record identical to generated ones, so results are byte-
	// identical either way; the field is runtime plumbing, not
	// configuration, and is excluded from JSON so journal config keys,
	// memo keys and golden outputs are unaffected.
	Streams trace.SourceProvider `json:"-"`

	// Sample, when non-nil, switches the run to phase-sampled execution:
	// only the plan's representative windows are simulated in detail
	// (each with its own short warmup) and full-ROI metrics are
	// extrapolated as the cluster-weighted sum, with error bounds
	// reported in Result.Sampled. Only SampleEligible configs may carry
	// a plan. Like Streams, the field is runtime plumbing stamped by the
	// orchestrator, not configuration: it is excluded from JSON so
	// journal config keys, memo keys and golden outputs are unaffected.
	Sample *phase.Plan `json:"-"`

	// Seed drives every random stream in the run (generators, engine,
	// randomised policies). Two runs with equal Config produce
	// identical results.
	Seed uint64
	// EngineSeed, when non-zero, seeds only the PInTE engine's random
	// stream, leaving the workload identical — the Fig 3 stability
	// study's rerun knob. Zero derives the engine seed from Seed.
	EngineSeed uint64

	// Extensions beyond the paper's core mechanism (§IV-E2b sketches
	// both; disabled when zero).

	// IndependentPeriod, in primary-core instructions, runs the PInTE
	// flow on a schedule decoupled from LLC accesses (PInTE mode
	// only); it addresses the core-bound workloads whose LLC accesses
	// are too rare to trigger access-coupled injection.
	IndependentPeriod uint64
	// DRAMContentionProb and DRAMContentionPenalty inject extra memory
	// latency (any mode), standing in for the off-chip contention a
	// real co-runner exerts beyond the LLC.
	DRAMContentionProb    float64
	DRAMContentionPenalty uint64
}

func (c Config) withDefaults() Config {
	if c.WarmupInstrs == 0 {
		c.WarmupInstrs = 200_000
	}
	if c.ROIInstrs == 0 {
		c.ROIInstrs = 1_000_000
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 50_000
	}
	if c.Branch == "" {
		c.Branch = "hashed-perceptron"
	}
	// Merge unset hierarchy levels with the paper's default machine:
	// any level with a zero size takes the default geometry, and a
	// policy override on a defaulted level is preserved.
	hc := cache.DefaultConfig(1)
	hc.Inclusion = c.Hier.Inclusion
	hc.Prefetch = c.Hier.Prefetch
	hc.Seed = c.Hier.Seed
	for _, lvl := range []struct {
		dst *cache.LevelConfig
		src cache.LevelConfig
	}{
		{&hc.L1I, c.Hier.L1I}, {&hc.L1D, c.Hier.L1D},
		{&hc.L2, c.Hier.L2}, {&hc.LLC, c.Hier.LLC},
	} {
		if lvl.src.SizeBytes != 0 {
			*lvl.dst = lvl.src
		} else if lvl.src.Policy != "" {
			lvl.dst.Policy = lvl.src.Policy
		}
	}
	c.Hier = hc
	return c
}

// Normalized returns the configuration with every defaulted field
// resolved. Two configs with equal Normalized values produce identical
// results, so it is the canonical form for memo keys and journal
// hashes.
func (c Config) Normalized() Config { return c.withDefaults() }

// Validate checks the configuration for contradictions the simulator
// would otherwise hit mid-run (or silently mis-model). Defaults are
// applied first, so a zero value passes. Every rejection wraps
// ErrBadConfig.
func (c Config) Validate() error {
	return c.withDefaults().validateDefaulted()
}

// validateDefaulted assumes withDefaults has run.
func (c Config) validateDefaulted() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadConfig, fmt.Sprintf(format, args...))
	}
	if c.Mode < Isolation || c.Mode > SecondTrace {
		return bad("unknown mode %d", int(c.Mode))
	}
	if math.IsNaN(c.PInduce) || c.PInduce < 0 || c.PInduce > 1 {
		return bad("PInduce %v outside [0,1]", c.PInduce)
	}
	if math.IsNaN(c.DRAMContentionProb) || c.DRAMContentionProb < 0 || c.DRAMContentionProb > 1 {
		return bad("DRAMContentionProb %v outside [0,1]", c.DRAMContentionProb)
	}
	if c.LLCWayAllocation < 0 {
		return bad("negative LLCWayAllocation %d", c.LLCWayAllocation)
	}
	if ways := c.Hier.LLC.Ways; ways > 0 && c.LLCWayAllocation > ways {
		return bad("LLC way allocation %d exceeds %d ways", c.LLCWayAllocation, ways)
	}
	if c.Partitioning != "" && c.LLCWayAllocation > 0 {
		return bad("Partitioning and LLCWayAllocation are mutually exclusive")
	}
	if c.Mode == SecondTrace && c.Adversary == "" && c.AdversarySpec == nil {
		return bad("SecondTrace mode requires an adversary")
	}
	if c.Mode != SecondTrace && (c.Adversary != "" || len(c.Adversaries) > 0) {
		return bad("adversaries set outside SecondTrace mode")
	}
	return nil
}

// Sample is one run-time measurement interval for the primary core (the
// paper samples every 10M instructions).
type Sample struct {
	Instrs uint64 // cumulative primary-core instructions at interval end
	IPC    float64
	// MissRate is the primary core's LLC miss ratio over the interval.
	MissRate float64
	AMAT     float64
	// InterferenceRate is thefts experienced per LLC access over the
	// interval; TheftRate is thefts caused (mock thefts under PInTE).
	InterferenceRate float64
	TheftRate        float64
	// OccupancyFrac is the fraction of LLC blocks the primary core
	// holds at the interval's end.
	OccupancyFrac float64
}

// Result is the outcome of one simulation.
type Result struct {
	Config Config

	// Aggregates over the region of interest, primary core.
	Instrs         uint64
	Cycles         uint64
	IPC            float64
	MissRate       float64 // LLC
	AMAT           float64
	ContentionRate float64 // thefts experienced per LLC access
	BranchAccuracy float64

	// L2MPKI and LLCMPKI are misses per kilo-instruction (Fig 6b).
	L2MPKI  float64
	LLCMPKI float64

	// LLCWritebackFillShare is the fraction of LLC fills that arrived
	// via writeback (the Fig 6b "L2 spill" signature).
	LLCWritebackFillShare float64

	// ReuseHist is the primary core's LLC hit-position histogram.
	ReuseHist []uint64

	// OccupancyFrac is the mean sampled LLC occupancy share.
	OccupancyFrac float64

	Samples []Sample

	// Telemetry carries the interval time-series when
	// Config.TelemetryEvery is non-zero; omitted from JSON otherwise.
	Telemetry *telemetry.Series `json:",omitempty"`

	// Sampled carries the phase-sampling budget and error bounds when
	// the run executed under a Config.Sample plan; nil (and omitted
	// from JSON) for full-ROI runs.
	Sampled *SampleStats `json:",omitempty"`

	// Engine carries PInTE engine statistics (PInTE mode only).
	Engine *pinte.Stats
	// DRAMInjection carries memory-side injection statistics when the
	// DRAM contention extension is enabled.
	DRAMInjection *pinte.DRAMContentionStats
	// IndependentTicks counts access-independent injection rounds when
	// that extension is enabled.
	IndependentTicks uint64
	// Partition holds the final per-core LLC way masks when a
	// partitioning controller ran.
	Partition []uint64

	// Prefetch effectiveness (Fig 11 row 3 inputs).
	PrefetchIssued   uint64
	PrefetchUseful   uint64
	PrefetchFromDRAM uint64
	// L1DMissRate / L2MissRate for case-study secondary metrics.
	L1DMissRate float64
	L2MissRate  float64

	WallTime time.Duration
}

// WeightedIPC returns r.IPC normalised by an isolation IPC.
func (r *Result) WeightedIPC(isolationIPC float64) float64 {
	if isolationIPC == 0 {
		return 0
	}
	return r.IPC / isolationIPC
}

// specFor resolves a workload selection.
func specFor(name string, override *trace.Spec) (trace.Spec, error) {
	if override != nil {
		return *override, nil
	}
	return trace.SpecFor(name)
}

// adversaryBase offsets the second core's address space so co-runners
// never share data blocks (distinct physical footprints).
const adversaryBase = 1 << 42

// Run executes one simulation to completion.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// ctxError maps a done context onto the error taxonomy: a per-run
// deadline becomes ErrTimeout, everything else ErrCanceled.
func ctxError(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return ErrTimeout
	}
	return ErrCanceled
}

// RunSafe is RunContext with panic isolation: a panicking simulation is
// recovered into a *PanicError (wrapping ErrPanic) with the goroutine
// stack attached, instead of crashing the process. Batch drivers use it
// so one broken run cannot kill a campaign.
func RunSafe(ctx context.Context, cfg Config) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return RunContext(ctx, cfg)
}

// RunContext executes one simulation under ctx: a context deadline
// bounds the run's wall-clock time (ErrTimeout) and cancellation stops
// it between scheduling quanta (ErrCanceled). The configuration is
// validated up front (ErrBadConfig).
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validateDefaulted(); err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, ctxError(ctx)
	}
	if cfg.Sample != nil {
		if !SampleEligible(cfg) {
			return nil, fmt.Errorf("%w: config is not sample-eligible but carries a sampling plan", ErrBadConfig)
		}
		return runSampled(ctx, cfg)
	}
	start := time.Now()

	spec, err := specFor(cfg.Workload, cfg.WorkloadSpec)
	if err != nil {
		return nil, err
	}

	dcfg := dram.Default()
	if cfg.DRAM != nil {
		dcfg = *cfg.DRAM
	}
	mem, err := dram.New(dcfg)
	if err != nil {
		return nil, err
	}
	var hierMem cache.Memory = mem
	var dramInj *pinte.DRAMContention
	if cfg.DRAMContentionProb > 0 {
		dramInj, err = pinte.NewDRAMContention(pinte.DRAMContentionParams{
			Probability:   cfg.DRAMContentionProb,
			PenaltyCycles: cfg.DRAMContentionPenalty,
			Seed:          cfg.Seed + 11,
		}, mem)
		if err != nil {
			return nil, err
		}
		hierMem = dramInj
	}

	cores := 1
	if cfg.Mode == SecondTrace {
		cores = 2 + len(cfg.Adversaries)
	}
	hcfg := cfg.Hier
	hcfg.Cores = cores
	hcfg.Seed = cfg.Seed
	hier, err := cache.NewHierarchy(hcfg, hierMem)
	if err != nil {
		return nil, err
	}
	var ctrl partition.Controller
	if cfg.Partitioning != "" {
		ctrl, err = partition.New(cfg.Partitioning, cores)
		if err != nil {
			return nil, err
		}
		ctrl.Attach(hier.LLC())
	}
	if n := cfg.LLCWayAllocation; n > 0 {
		if n > hier.LLC().Ways() {
			return nil, fmt.Errorf("%w: LLC way allocation %d exceeds %d ways",
				ErrBadConfig, n, hier.LLC().Ways())
		}
		mask := uint64(1)<<uint(n) - 1
		for core := 0; core < cores; core++ {
			if err := hier.LLC().SetWayPartition(core, mask); err != nil {
				return nil, err
			}
		}
	}

	// streams resolves each core's instruction source: the replay cache
	// when one is attached, a fresh generator otherwise.
	streams := cfg.Streams
	if streams == nil {
		streams = trace.Generate{}
	}

	cpuCfg := cfg.CPU
	if cpuCfg.MLP == 0 {
		cpuCfg.MLP = spec.MLP
	}
	gen0, err := streams.Source(spec, cfg.Seed+1, 0)
	if err == nil {
		err = fault.Err(fault.SiteSimSource)
	}
	if err != nil {
		return nil, err
	}
	if fault.Enabled() {
		// Chaos mode interposes on the primary stream so trace.read
		// faults surface through the core's error path mid-run. Never
		// wrapped in production: Enabled() is false there, keeping the
		// hot call edge devirtualised.
		gen0 = &faultSource{src: gen0}
	}
	bp0, err := branch.New(cfg.Branch)
	if err != nil {
		return nil, err
	}
	core0 := cpu.NewCore(0, cpuCfg, gen0, hier, bp0)
	sys := cpu.NewSystem(core0)
	sys.RestartFinished = true

	var engine *pinte.Engine
	var ticker *pinte.Ticker
	switch cfg.Mode {
	case PInTE:
		eseed := cfg.EngineSeed
		if eseed == 0 {
			eseed = cfg.Seed + 7
		}
		engine, err = pinte.NewEngine(pinte.Params{PInduce: cfg.PInduce, Seed: eseed})
		if err != nil {
			return nil, err
		}
		if cfg.IndependentPeriod > 0 {
			// Extension: the flow runs on a schedule instead of on
			// LLC accesses.
			ticker, err = pinte.NewTicker(engine, hier.LLC())
			if err != nil {
				return nil, err
			}
		} else {
			hier.LLC().SetInjector(engine)
		}
		hier.LLC().SetWritebackSink(func(addr uint64) {
			mem.Access(core0.Cycles, addr, true)
		})
	case SecondTrace:
		names := append([]string{cfg.Adversary}, cfg.Adversaries...)
		for i, name := range names {
			var override *trace.Spec
			if i == 0 {
				override = cfg.AdversarySpec
			}
			aspec, err := specFor(name, override)
			if err != nil {
				return nil, err
			}
			// Adversary streams always come from a fresh generator,
			// never the replay cache: an adversary core consumes
			// records until the primary finishes, so its stream length
			// scales with the slowest pairing's cycle count rather
			// than the configured ROI — recording such unbounded
			// streams costs more arena memory and pack work than
			// their replay returns.
			gen, err := trace.Generate{}.Source(aspec, cfg.Seed+2+uint64(i),
				adversaryBase*uint64(i+1))
			if err != nil {
				return nil, err
			}
			advCPU := cfg.CPU
			advCPU.MLP = aspec.MLP
			bp, err := branch.New(cfg.Branch)
			if err != nil {
				return nil, err
			}
			sys.Cores = append(sys.Cores, cpu.NewCore(1+i, advCPU, gen, hier, bp))
		}
	}

	// tick advances the access-independent injection schedule, when
	// enabled, to the primary core's current instruction count, and
	// runs partitioning epochs.
	nextTick := cfg.IndependentPeriod
	reallocEvery := cfg.ReallocEvery
	if reallocEvery == 0 {
		reallocEvery = 50_000
	}
	nextRealloc := reallocEvery
	tick := func() {
		if ticker != nil {
			for core0.Instrs >= nextTick {
				ticker.Tick()
				nextTick += cfg.IndependentPeriod
			}
		}
		if ctrl != nil {
			for core0.Instrs >= nextRealloc {
				for i, mask := range ctrl.Reallocate(hier.LLC()) {
					if err := hier.LLC().SetWayPartition(i, mask); err != nil {
						panic(err) // masks are constructed in-range
					}
				}
				nextRealloc += reallocEvery
			}
		}
	}

	// interrupted is polled between scheduling quanta; it records the
	// taxonomy error for a done context so the stop callback can halt
	// the system loop.
	var stopErr error
	interrupted := func() bool {
		select {
		case <-ctx.Done():
			stopErr = ctxError(ctx)
			return true
		default:
			return false
		}
	}

	// Warm-up: event counters reset; clocks keep running (they are
	// physical time shared with the DRAM bank timestamps).
	if cfg.WarmupInstrs > 0 {
		err = sys.Run(func(*cpu.Core) bool {
			tick()
			return interrupted() || core0.Instrs >= cfg.WarmupInstrs
		})
		if err != nil {
			return nil, err
		}
		if stopErr != nil {
			return nil, stopErr
		}
		hier.ResetStats()
		for _, c := range sys.Cores {
			c.ResetStats()
		}
		mem.Stats = dram.Stats{}
		if engine != nil {
			engine.ResetStats()
		}
		if dramInj != nil {
			dramInj.ResetStats()
		}
	}
	roiStartInstrs, roiStartCycles := core0.Instrs, core0.Cycles
	roiEnd := roiStartInstrs + cfg.ROIInstrs

	// Region of interest with periodic sampling. The telemetry
	// collector, when enabled, rides the same loop: its interval buffer
	// is preallocated here so steady-state collection stays off the
	// heap, and it only observes counters, never the machine state.
	res := &Result{Config: cfg}
	sampler := newSampler(cfg, &core0.Instrs, &core0.Cycles, hier)
	var col *telemetry.Collector
	if cfg.TelemetryEvery > 0 {
		col = telemetry.NewCollector(cfg.TelemetryEvery, cfg.ROIInstrs,
			hier.LLC().CapacityBlocks(), telemetrySnap(core0, hier, engine))
	}
	err = sys.Run(func(*cpu.Core) bool {
		tick()
		sampler.maybeSample(&res.Samples)
		if col != nil && core0.Instrs >= col.NextAt() {
			col.Record(telemetrySnap(core0, hier, engine))
		}
		return interrupted() || core0.Instrs >= roiEnd
	})
	if err != nil {
		return nil, err
	}
	if stopErr != nil {
		return nil, stopErr
	}
	sampler.maybeSample(&res.Samples)
	if col != nil {
		// Flush the partial tail so interval sums equal the ROI totals
		// (the P_Induce audit cross-checks them against engine stats).
		col.Tail(telemetrySnap(core0, hier, engine))
		res.Telemetry = col.Series()
	}

	fillResult(res, core0, hier, engine, roiStartInstrs, roiStartCycles)
	if dramInj != nil {
		st := dramInj.Stats
		res.DRAMInjection = &st
	}
	if ticker != nil {
		res.IndependentTicks = ticker.Ticks
	}
	if ctrl != nil {
		for core := 0; core < hier.Cores(); core++ {
			res.Partition = append(res.Partition, hier.LLC().WayPartition(core))
		}
	}
	res.WallTime = time.Since(start)
	return res, nil
}

// telemetrySnap captures the cumulative counters the telemetry
// collector differentiates. It builds the snapshot on the caller's
// stack — no allocation on the sampling path.
func telemetrySnap(core *cpu.Core, hier *cache.Hierarchy, engine *pinte.Engine) telemetry.Counters {
	c := telemetry.Counters{
		Instrs:       core.Instrs,
		Cycles:       core.Cycles,
		L1DMisses:    hier.L1D(0).Stats.Misses[0],
		L2Misses:     hier.L2(0).Stats.Misses[0],
		LLCMisses:    hier.LLC().Stats.Misses[0],
		LLCOccupancy: hier.LLC().Stats.Occupancy[0],
	}
	if engine != nil {
		c.EngineAccesses = engine.Stats.Accesses
		c.EngineTriggers = engine.Stats.Triggers
		c.EngineEvictBudget = engine.Stats.EvictBudget
		c.EnginePromotions = engine.Stats.Promotions
		c.EngineInvalidations = engine.Stats.Invalidations
	}
	return c
}

func fillResult(res *Result, core0 *cpu.Core, hier *cache.Hierarchy, engine *pinte.Engine, instrs0, cycles0 uint64) {
	fillResultParts(res, core0.Instrs-instrs0, core0.Cycles-cycles0,
		&core0.Stats, hier, hier, engine)
}

// fillResultParts computes the ROI aggregates from their raw inputs. The
// private-level metrics (L1/L2 miss rates and MPKI) come from front, the
// below-L2 metrics (LLC, AMAT, fill mix) from below: the sequential path
// passes the same hierarchy twice, while a fan-out follower pairs the
// group's shared front hierarchy with its own private LLC + memory.
func fillResultParts(res *Result, instrs, cycles uint64, cst *cpu.Stats, front, below *cache.Hierarchy, engine *pinte.Engine) {
	llc := below.LLC().Stats
	res.Instrs = instrs
	res.Cycles = cycles
	if res.Cycles > 0 {
		res.IPC = float64(res.Instrs) / float64(res.Cycles)
	}
	res.MissRate = llc.MissRateCore(0)
	res.AMAT = below.AMAT(0)
	res.ContentionRate = llc.ContentionRate(0)
	res.BranchAccuracy = cst.BranchAccuracy()
	ki := float64(res.Instrs) / 1000
	if ki > 0 {
		res.L2MPKI = float64(front.L2(0).Stats.Misses[0]) / ki
		res.LLCMPKI = float64(llc.Misses[0]) / ki
	}
	fills := below.Stats.LLCDemandFills + below.Stats.LLCWritebackFills
	if fills > 0 {
		res.LLCWritebackFillShare = float64(below.Stats.LLCWritebackFills) / float64(fills)
	}
	res.ReuseHist = append([]uint64(nil), llc.ReuseHistCore[0]...)
	if n := len(res.Samples); n > 0 {
		var s float64
		for _, smp := range res.Samples {
			s += smp.OccupancyFrac
		}
		res.OccupancyFrac = s / float64(n)
	}
	if engine != nil {
		st := engine.Stats
		res.Engine = &st
	}
	res.PrefetchIssued = front.Stats.PrefetchIssued
	res.PrefetchFromDRAM = front.Stats.PrefetchFromDRAM
	res.PrefetchUseful = below.LLC().Stats.PrefetchUseful +
		front.L1D(0).Stats.PrefetchUseful + front.L2(0).Stats.PrefetchUseful
	res.L1DMissRate = front.L1D(0).Stats.MissRateCore(0)
	res.L2MissRate = front.L2(0).Stats.MissRateCore(0)
}

// sampler computes interval deltas of cumulative counters. It reads the
// primary core's clocks through pointers so the fan-out executor, whose
// followers keep their counts in plain locals rather than a cpu.Core,
// can drive the identical sampling code.
type sampler struct {
	cfg    Config
	instrs *uint64
	cycles *uint64
	hier   *cache.Hierarchy

	nextAt uint64
	prev   snapshot
}

type snapshot struct {
	instrs, cycles     uint64
	llcAcc, llcMiss    uint64
	theftsExp, theftsC uint64
	mock               uint64
	dataAcc, dataLat   uint64
}

func newSampler(cfg Config, instrs, cycles *uint64, hier *cache.Hierarchy) *sampler {
	s := &sampler{cfg: cfg, instrs: instrs, cycles: cycles, hier: hier}
	s.prev = s.snap()
	s.nextAt = *instrs + cfg.SampleEvery
	return s
}

func (s *sampler) snap() snapshot {
	llc := s.hier.LLC().Stats
	return snapshot{
		instrs:    *s.instrs,
		cycles:    *s.cycles,
		llcAcc:    llc.Accesses[0],
		llcMiss:   llc.Misses[0],
		theftsExp: llc.TheftsExperienced[0],
		theftsC:   llc.TheftsCaused[0],
		mock:      llc.MockThefts[0],
		dataAcc:   s.hier.Stats.DemandDataAccesses[0],
		dataLat:   s.hier.Stats.DemandDataLatency[0],
	}
}

// maybeSample appends interval samples for every boundary the primary
// core has crossed since the last call.
func (s *sampler) maybeSample(out *[]Sample) {
	if *s.instrs < s.nextAt {
		return
	}
	cur := s.snap()
	p := s.prev
	smp := Sample{Instrs: cur.instrs}
	if dc := cur.cycles - p.cycles; dc > 0 {
		smp.IPC = float64(cur.instrs-p.instrs) / float64(dc)
	}
	if da := cur.llcAcc - p.llcAcc; da > 0 {
		smp.MissRate = float64(cur.llcMiss-p.llcMiss) / float64(da)
		smp.InterferenceRate = float64(cur.theftsExp-p.theftsExp) / float64(da)
		smp.TheftRate = float64(cur.theftsC-p.theftsC+cur.mock-p.mock) / float64(da)
	}
	if dd := cur.dataAcc - p.dataAcc; dd > 0 {
		smp.AMAT = float64(cur.dataLat-p.dataLat) / float64(dd)
	}
	llc := s.hier.LLC()
	smp.OccupancyFrac = float64(llc.Stats.Occupancy[0]) / float64(llc.CapacityBlocks())
	*out = append(*out, smp)
	s.prev = cur
	s.nextAt = cur.instrs + s.cfg.SampleEvery
}

// RunMany executes configs in parallel across workers goroutines
// (GOMAXPROCS when workers <= 0) and returns results in input order.
// Failures are isolated per run: every config executes (a panicking run
// is recovered into a *PanicError rather than crashing the process),
// results holds the successes (nil at failed indexes), and the returned
// error joins one *RunFailure per failed config — callers emit what
// completed and report the rest. For per-run deadlines, retries and
// crash-safe journaling use internal/runner.
func RunMany(cfgs []Config, workers int) ([]*Result, error) {
	return RunManyContext(context.Background(), cfgs, workers)
}

// RunManyContext is RunMany under a context: cancellation stops
// scheduling new work, interrupts in-flight runs, and marks every
// not-yet-finished config with ErrCanceled.
func RunManyContext(ctx context.Context, cfgs []Config, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]*Result, len(cfgs))
	failures := make([]error, len(cfgs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r, err := RunSafe(ctx, cfgs[i])
				if err != nil {
					failures[i] = &RunFailure{Index: i, Config: cfgs[i], Err: err}
					continue
				}
				results[i] = r
			}
		}()
	}
	sent := len(cfgs)
	for i := range cfgs {
		select {
		case idx <- i:
		case <-ctx.Done():
			sent = i
		}
		if sent != len(cfgs) {
			break
		}
	}
	close(idx)
	wg.Wait()
	for i := sent; i < len(cfgs); i++ {
		failures[i] = &RunFailure{Index: i, Config: cfgs[i], Err: ErrCanceled}
	}
	return results, errors.Join(failures...)
}
