package sim

// Fan-out sweep execution: run every point of a sweep group that shares
// a (workload, seed) primary stream against ONE decode of that stream.
//
// Two executors implement it, picked per group:
//
//   - The digest executor covers the common sweep shape — single-core
//     Isolation/PInTE points on a non-inclusive, prefetcher-free
//     hierarchy. Under that shape the whole front end (trace decode,
//     branch prediction, L1I/L1D/L2) evolves identically across points:
//     nothing below the L2 feeds back into it, so one capture-mode pass
//     (cache.FrontCapture) runs it once and records the sparse stream of
//     below-L2 work. Followers replay just that stream against their own
//     private LLC + memory + engine through the production descend and
//     writeback code, pricing instructions with the same arithmetic as
//     cpu.Core. This shares ~85% of a run's work, not just the decode.
//
//   - The lockstep executor covers everything else the group key admits
//     (SecondTrace points, inclusive hierarchies, prefetchers, telemetry
//     collection, partitioning): each point is a full RunContext whose
//     primary stream is one read-only view of a shared decode
//     (replay.Fan). Only the decode is shared, but that is still one
//     pass instead of N.
//
// Both decode each batch exactly once; replay.Fan's barrier keeps every
// consumer within one batch of the decode head so views stay valid.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/branch"
	"repro/internal/cache"
	pinte "repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/replay"
	"repro/internal/trace"
)

// fanQuantum mirrors the system scheduler's quantum: the follower polls
// sampling and stop conditions at the same instruction boundaries as a
// sequential run, so record consumption and sample placement match.
const fanQuantum = uint64(cpu.DefaultQuantum)

// errFanAborted reports a follower whose shared front ended before it.
var errFanAborted = errors.New("sim: fan-out front ended before its followers")

// FanPoint is one sweep point's outcome from RunFanGroup: exactly one
// of Res and Err is non-nil.
type FanPoint struct {
	Res *Result
	Err error
}

// FanGroupKey returns the grouping key for fan-out scheduling. Two
// configs with equal keys consume byte-identical primary record streams
// at identical scheduling boundaries — primary consumption depends only
// on the workload spec, Seed, and the quantum-aligned Warmup/ROI window,
// never on what happens below the L2 or on co-runners — so they can
// share one decode. The key is the normalized config with exactly the
// consumption-neutral per-point fields cleared.
func FanGroupKey(cfg Config) (string, error) {
	n := cfg.Normalized()
	n.Mode = Isolation
	n.PInduce = 0
	n.EngineSeed = 0
	n.Adversary = ""
	n.AdversarySpec = nil
	n.Adversaries = nil
	n.IndependentPeriod = 0
	n.DRAMContentionProb = 0
	n.DRAMContentionPenalty = 0
	n.Partitioning = ""
	n.ReallocEvery = 0
	n.LLCWayAllocation = 0
	n.TelemetryEvery = 0
	b, err := json.Marshal(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// fanDigestEligible reports whether a (defaulted) config can ride the
// digest executor: the front end must be point-invariant, which the
// capture mode's preconditions (non-inclusive, prefetcher-free) plus a
// single-core mode guarantee, and nothing outside the captured stream
// may observe the run (telemetry reads private-level counters the
// follower does not carry).
func fanDigestEligible(cfg Config) bool {
	if cfg.Mode != Isolation && cfg.Mode != PInTE {
		return false
	}
	if cfg.Hier.Inclusion != cache.NonInclusive {
		return false
	}
	if pf := cfg.Hier.Prefetch; pf != "" && pf != "000" {
		return false
	}
	if cfg.Partitioning != "" || cfg.LLCWayAllocation != 0 {
		return false
	}
	if cfg.IndependentPeriod != 0 || cfg.DRAMContentionProb != 0 {
		return false
	}
	return cfg.TelemetryEvery == 0
}

// RunFanGroup executes a fan-out group: every config must carry the
// same FanGroupKey (the scheduler in internal/runner groups by it).
// The group's primary stream is decoded once and shared. Points fail
// independently — a panicking or faulted point surfaces in its own
// FanPoint while siblings complete. When ctx ends the group aborts;
// points still wedged grace later (a chaos hang) are abandoned with
// ErrStalled, mirroring the sequential stall watchdog. grace <= 0 waits
// indefinitely, like a disabled watchdog.
func RunFanGroup(ctx context.Context, cfgs []Config, grace time.Duration) []FanPoint {
	pts := make([]FanPoint, len(cfgs))
	if len(cfgs) == 0 {
		return pts
	}
	norm := make([]Config, len(cfgs))
	var key0 string
	digest := true
	for i, c := range cfgs {
		n := c.withDefaults()
		if err := n.validateDefaulted(); err != nil {
			return failAll(pts, err)
		}
		k, err := FanGroupKey(c)
		if err != nil {
			return failAll(pts, err)
		}
		if i == 0 {
			key0 = k
		} else if k != key0 {
			return failAll(pts, fmt.Errorf("%w: fan group mixes stream-incompatible configs", ErrBadConfig))
		}
		if !fanDigestEligible(n) {
			digest = false
		}
		norm[i] = n
	}
	start := time.Now()
	spec, err := specFor(norm[0].Workload, norm[0].WorkloadSpec)
	if err != nil {
		return failAll(pts, err)
	}
	streams := norm[0].Streams
	if streams == nil {
		streams = trace.Generate{}
	}
	if digest {
		runFanDigest(ctx, norm, spec, streams, grace, start, pts)
	} else {
		runFanLockstep(ctx, norm, spec, streams, grace, start, pts)
	}
	return pts
}

func failAll(pts []FanPoint, err error) []FanPoint {
	for i := range pts {
		pts[i] = FanPoint{Err: err}
	}
	return pts
}

// fanDone carries one point's outcome to the collector.
type fanDone struct {
	i   int
	res *Result
	err error
}

// collectFan gathers point outcomes. When ctx ends it aborts the fan so
// barrier-parked points unwind with the context's taxonomy error, then
// abandons any point still silent after grace.
func collectFan(ctx context.Context, fan *replay.Fan, ch <-chan fanDone, grace time.Duration, pts []FanPoint) {
	finished := make([]bool, len(pts))
	got := 0
	recv := func(d fanDone) {
		pts[d.i] = FanPoint{Res: d.res, Err: d.err}
		finished[d.i] = true
		got++
	}
	for got < len(pts) {
		select {
		case d := <-ch:
			recv(d)
			continue
		case <-ctx.Done():
		}
		break
	}
	if got == len(pts) {
		return
	}
	fan.Abort(ctxError(ctx))
	var deadline <-chan time.Time
	if grace > 0 {
		t := time.NewTimer(grace)
		defer t.Stop()
		deadline = t.C
	}
	for got < len(pts) {
		select {
		case d := <-ch:
			recv(d)
		case <-deadline:
			// Chaos hang: the point's goroutine never reports. Abandon it
			// exactly as the sequential stall watchdog abandons a wedged
			// run; the leaked goroutine's reader view stays valid (the fan
			// switches decode buffers once its reader is detached).
			for i := range pts {
				if !finished[i] {
					pts[i] = FanPoint{Err: ErrStalled}
					finished[i] = true
					got++
				}
			}
		}
	}
}

// fanWorkerChaos mirrors the sequential worker's chaos injection sites
// at fan-point granularity, so `make chaos` exercises a panicking, slow
// or hung point inside a live group.
func fanWorkerChaos() {
	if !fault.Enabled() {
		return
	}
	if fault.Fires(fault.SiteWorkerPanic) {
		panic(fmt.Sprintf("%v at %s (fan-out)", fault.ErrInjected, fault.SiteWorkerPanic))
	}
	if d := fault.Delay(fault.SiteWorkerSlow); d > 0 {
		time.Sleep(d)
	}
	if fault.Fires(fault.SiteWorkerHang) {
		fault.Hang()
	}
}

// ---------------------------------------------------------------------
// Lockstep executor
// ---------------------------------------------------------------------

// fanProvider routes a RunContext's primary-stream request to the
// point's shared fan view and delegates everything else (nothing in
// practice: adversary cores always build fresh generators).
type fanProvider struct {
	reader *replay.FanReader
	under  trace.SourceProvider
	fp     string
	seed   uint64
}

func (p *fanProvider) Source(spec trace.Spec, seed, base uint64) (trace.Source, error) {
	if base == 0 && seed == p.seed && spec.Fingerprint() == p.fp {
		return p.reader, nil
	}
	return p.under.Source(spec, seed, base)
}

// runFanLockstep runs each point as a full simulation over a shared
// decode. Per-point chaos sites (sim.source, trace.read) fire inside
// each point's own RunContext, exactly as they do sequentially.
func runFanLockstep(ctx context.Context, norm []Config, spec trace.Spec, streams trace.SourceProvider, grace time.Duration, start time.Time, pts []FanPoint) {
	seed := norm[0].Seed + 1
	src, err := streams.Source(spec, seed, 0)
	if err != nil {
		failAll(pts, err)
		return
	}
	fresh := func() (trace.Source, error) { return streams.Source(spec, seed, 0) }
	fan := replay.NewFan(src, len(norm), 0, fresh)
	fp := spec.Fingerprint()
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan fanDone, len(norm))
	for i := range norm {
		rd := fan.Reader(i)
		cfg := norm[i]
		cfg.Streams = &fanProvider{reader: rd, under: streams, fp: fp, seed: seed}
		go func(i int, cfg Config) {
			defer rd.Detach()
			res, err := func() (res *Result, err error) {
				defer func() {
					if r := recover(); r != nil {
						res, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
					}
				}()
				fanWorkerChaos()
				return RunSafe(gctx, cfg)
			}()
			ch <- fanDone{i: i, res: res, err: err}
		}(i, cfg)
	}
	collectFan(ctx, fan, ch, grace, pts)
	_ = start
}

// ---------------------------------------------------------------------
// Digest executor
// ---------------------------------------------------------------------

// fanDigest is one decoded batch's front-end digest: the below-L2
// accesses (with their L2 writeback victims) and the mispredicted
// branches, both keyed by absolute instruction index. Double-buffered by
// the front; the barrier guarantees a buffer is idle before reuse.
type fanDigest struct {
	events []cache.FrontEvent
	wbs    []uint64
	misp   []uint64
	err    error
}

// mispTap wraps the front's branch predictor and records the instruction
// index of every mispredict, so followers replay outcomes without
// running a predictor of their own.
type mispTap struct {
	inner  branch.Predictor
	instrs *uint64
	misp   *[]uint64
	pred   bool
}

func (t *mispTap) Name() string { return t.inner.Name() }

func (t *mispTap) Predict(pc uint64) bool {
	t.pred = t.inner.Predict(pc)
	return t.pred
}

func (t *mispTap) Update(pc uint64, taken bool) {
	t.inner.Update(pc, taken)
	if t.pred != taken {
		*t.misp = append(*t.misp, *t.instrs)
	}
}

// fanFront is the digest executor's shared front end.
type fanFront struct {
	feed  *replay.FanReader
	cap   *cache.FrontCapture
	misp  []uint64
	hier  *cache.Hierarchy // exposed to followers after the final digest
	bufs  [2]fanDigest
	cur   int
	chans []chan *fanDigest
	alive []atomic.Bool
	begun bool
}

// publish seals the digest accumulated over the current batch, hands it
// to every live follower, and re-arms accumulation in the other buffer.
// The barrier makes the swap safe: by the time the front obtains batch
// g+1, every follower has finished batch g, hence digest g-1's buffer is
// idle. Sends cannot block — a follower that consumed digest g-1 has
// drained its channel (capacity 2 absorbs the one racing send a dying
// follower may still receive).
func (fr *fanFront) publish(err error) {
	if !fr.begun {
		// First call: no batch has been consumed yet, nothing to seal.
		fr.begun = true
		fr.rearm()
		return
	}
	d := &fr.bufs[fr.cur]
	d.events = fr.cap.Events
	d.wbs = fr.cap.WBAddrs
	d.misp = fr.misp
	d.err = err
	for i := range fr.chans {
		if fr.alive[i].Load() {
			fr.chans[i] <- d
		}
	}
	fr.cur ^= 1
	fr.rearm()
}

func (fr *fanFront) rearm() {
	d := &fr.bufs[fr.cur]
	fr.cap.Events = d.events[:0]
	fr.cap.WBAddrs = d.wbs[:0]
	fr.misp = d.misp[:0]
}

// frontFeed is the front core's trace reader: it seals and publishes the
// previous batch's digest before blocking on the barrier for the next
// one — the order matters, since followers must hold digest g to finish
// batch g and reach the barrier for g+1. It deliberately does not
// implement trace.Rewinder: the primary streams are unbounded, so a
// rewind request means the stream broke and the front must stop.
type frontFeed struct {
	fr *fanFront
}

func (f *frontFeed) NextSlice() ([]trace.Record, error) {
	f.fr.publish(nil)
	return f.fr.feed.NextSlice()
}

func (f *frontFeed) Next(rec *trace.Record) error { return f.fr.feed.Next(rec) }

// run executes the capture pass: a real core against a capture-mode
// hierarchy, mirroring RunContext's warm-up/ROI structure exactly so the
// front consumes the same quantum-aligned record count as a sequential
// run of any group member.
func (fr *fanFront) run(cfg Config, cpuCfg cpu.Config) error {
	hcfg := cfg.Hier
	hcfg.Cores = 1
	hcfg.Seed = cfg.Seed
	hier, err := cache.NewHierarchy(hcfg, noMem{})
	if err != nil {
		return err
	}
	bp, err := branch.New(cfg.Branch)
	if err != nil {
		return err
	}
	tap := &mispTap{inner: bp, misp: &fr.misp}
	core := cpu.NewCore(0, cpuCfg, &frontFeed{fr: fr}, hier, tap)
	tap.instrs = &core.Instrs
	if err := hier.SetFrontCapture(fr.cap, &core.Instrs); err != nil {
		return err
	}
	fr.hier = hier
	sys := cpu.NewSystem(core)
	sys.RestartFinished = true
	if cfg.WarmupInstrs > 0 {
		err := sys.Run(func(*cpu.Core) bool { return core.Instrs >= cfg.WarmupInstrs })
		if err != nil {
			return err
		}
		if core.Instrs < cfg.WarmupInstrs {
			return io.ErrUnexpectedEOF
		}
		hier.ResetStats()
		core.ResetStats()
	}
	roiEnd := core.Instrs + cfg.ROIInstrs
	if err := sys.Run(func(*cpu.Core) bool { return core.Instrs >= roiEnd }); err != nil {
		return err
	}
	if core.Instrs < roiEnd {
		return io.ErrUnexpectedEOF
	}
	return nil
}

// noMem backs the capture-mode hierarchy: capture stops every access at
// the L2 boundary, so a memory touch means the mode's preconditions were
// violated — fail loudly rather than corrupt the equivalence.
type noMem struct{}

func (noMem) Access(now, addr uint64, isWrite bool) uint64 {
	panic("sim: capture-mode hierarchy touched memory")
}

// runFanDigest runs the digest executor: one front capture pass feeding
// len(norm) followers.
func runFanDigest(ctx context.Context, norm []Config, spec trace.Spec, streams trace.SourceProvider, grace time.Duration, start time.Time, pts []FanPoint) {
	n := len(norm)
	seed := norm[0].Seed + 1
	src, err := streams.Source(spec, seed, 0)
	if err == nil {
		err = fault.Err(fault.SiteSimSource)
	}
	if err != nil {
		failAll(pts, err)
		return
	}
	if fault.Enabled() {
		// The front drives the group's only decode, so the per-run
		// trace.read site interposes on the shared stream: a fired fault
		// fails the whole group, which then retries sequentially.
		src = &faultSource{src: src}
	}
	fresh := func() (trace.Source, error) { return streams.Source(spec, seed, 0) }
	fan := replay.NewFan(src, n+1, 0, fresh)

	cpuCfg := norm[0].CPU
	if cpuCfg.MLP == 0 {
		cpuCfg.MLP = spec.MLP
	}

	fr := &fanFront{feed: fan.Reader(0), cap: &cache.FrontCapture{}}
	fr.chans = make([]chan *fanDigest, n)
	fr.alive = make([]atomic.Bool, n)
	for i := 0; i < n; i++ {
		fr.chans[i] = make(chan *fanDigest, 2)
		fr.alive[i].Store(true)
	}

	go func() {
		var ferr error
		defer func() {
			if r := recover(); r != nil {
				ferr = &PanicError{Value: r, Stack: debug.Stack()}
			}
			if ferr != nil {
				// Unwedge followers parked at the barrier, then flush the
				// error marker for followers parked at a digest receive.
				fan.Abort(ferr)
			}
			fr.publish(ferr)
			fr.feed.Detach()
			for _, ch := range fr.chans {
				close(ch)
			}
		}()
		ferr = fr.run(norm[0], cpuCfg)
	}()

	ch := make(chan fanDone, n)
	for i := range norm {
		go func(i int) {
			res, err := runFanFollower(norm[i], cpuCfg, fr, fan.Reader(i+1), fr.chans[i], &fr.alive[i], start)
			ch <- fanDone{i: i, res: res, err: err}
		}(i)
	}
	collectFan(ctx, fan, ch, grace, pts)
}

// fanFollower is one point's private state in the digest executor: the
// point-dependent machine (LLC, DRAM, engine) plus the cpu.Core timing
// arithmetic replayed over digests.
type fanFollower struct {
	cfg    Config
	hier   *cache.Hierarchy
	mem    *dram.DRAM
	engine *pinte.Engine

	instrs   uint64
	cycles   uint64
	widthAcc int
	stats    cpu.Stats
	samples  []Sample
	smp      *sampler

	l1iLat, l1dLat, l2Lat uint64
	width                 int
	penalty               uint64
	mlp                   uint64
	mlpShift              int

	inROI                bool
	roiEnd               uint64
	roiStartI, roiStartC uint64
}

// runFanFollower builds and drives one follower to completion.
func runFanFollower(cfg Config, cpuCfg cpu.Config, fr *fanFront, rd *replay.FanReader, dig <-chan *fanDigest, alive *atomic.Bool, start time.Time) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
		alive.Store(false)
		rd.Detach()
	}()
	fanWorkerChaos()

	dcfg := dram.Default()
	if cfg.DRAM != nil {
		dcfg = *cfg.DRAM
	}
	mem, err := dram.New(dcfg)
	if err != nil {
		return nil, err
	}
	hcfg := cfg.Hier
	hcfg.Cores = 1
	hcfg.Seed = cfg.Seed
	hier, err := cache.NewHierarchy(hcfg, mem)
	if err != nil {
		return nil, err
	}
	st := &fanFollower{cfg: cfg, hier: hier, mem: mem}
	var engine *pinte.Engine
	if cfg.Mode == PInTE {
		eseed := cfg.EngineSeed
		if eseed == 0 {
			eseed = cfg.Seed + 7
		}
		engine, err = pinte.NewEngine(pinte.Params{PInduce: cfg.PInduce, Seed: eseed})
		if err != nil {
			return nil, err
		}
		hier.LLC().SetInjector(engine)
		hier.LLC().SetWritebackSink(func(addr uint64) {
			mem.Access(st.cycles, addr, true)
		})
	}
	st.engine = engine

	rc := cpuCfg.Resolved()
	st.width = rc.Width
	st.penalty = rc.MispredictPenalty
	st.mlp = uint64(rc.MLP)
	st.mlpShift = -1
	if mlp := rc.MLP; mlp&(mlp-1) == 0 {
		st.mlpShift = bits.TrailingZeros(uint(mlp))
	}
	st.l1iLat = hier.L1I(0).HitLatency()
	st.l1dLat = hier.L1D(0).HitLatency()
	st.l2Lat = hier.L2(0).HitLatency()

	if cfg.WarmupInstrs == 0 {
		st.enterROI()
	}

	for {
		view, verr := rd.NextSlice()
		if verr != nil {
			return nil, verr
		}
		d, ok := <-dig
		if !ok {
			return nil, errFanAborted
		}
		if d.err != nil {
			return nil, d.err
		}
		done, berr := st.runBatch(view, d)
		if berr != nil {
			return nil, berr
		}
		if done {
			break
		}
	}
	st.smp.maybeSample(&st.samples)

	res = &Result{Config: cfg, Samples: st.samples}
	fillResultParts(res, st.instrs-st.roiStartI, st.cycles-st.roiStartC,
		&st.stats, fr.hier, hier, engine)
	res.WallTime = time.Since(start)
	return res, nil
}

// enterROI mirrors RunContext's end-of-warm-up transition: reset event
// counters (clocks keep running), pin the ROI window, arm the sampler.
func (st *fanFollower) enterROI() {
	st.hier.ResetStats()
	st.stats = cpu.Stats{}
	st.mem.Stats = dram.Stats{}
	if st.engine != nil {
		st.engine.ResetStats()
	}
	st.roiStartI, st.roiStartC = st.instrs, st.cycles
	st.roiEnd = st.instrs + st.cfg.ROIInstrs
	st.smp = newSampler(st.cfg, &st.instrs, &st.cycles, st.hier)
	st.inROI = true
}

// runBatch prices one decoded batch against its digest. The arithmetic
// is cpu.Core.retire/loadStall verbatim, with the front-end outcomes
// (which accesses left the L1, their L2 victims, which branches
// mispredicted) read from the digest instead of recomputed. Event
// matching is cursor-order: the front emits events in issue order
// (ifetch, loads, store) stamped with the instruction index.
func (st *fanFollower) runBatch(view []trace.Record, d *fanDigest) (bool, error) {
	ev, wbs, misp := d.events, d.wbs, d.misp
	evPos, wbPos, mispPos := 0, 0, 0
	for k := range view {
		rec := &view[k]
		i := st.instrs

		// Instruction fetch: an event means the fetch left the L1I; its
		// latency beyond the L1I hit stalls the front end.
		if evPos < len(ev) && ev[evPos].Instr == i && ev[evPos].Kind == cache.Ifetch {
			e := &ev[evPos]
			evPos++
			il := st.l1iLat + st.l2Lat
			if e.Descend {
				il += st.hier.DescendLLC(0, e.Addr, st.cycles+il)
			}
			for j := uint8(0); j < e.WBs; j++ {
				st.hier.WritebackToLLC(0, wbs[wbPos])
				wbPos++
			}
			if il > st.l1iLat {
				st.cycles += il - st.l1iLat
			}
		}

		// Issue-width throughput.
		st.widthAcc++
		if st.widthAcc >= st.width {
			st.widthAcc = 0
			st.cycles++
		}

		if rec.IsBranch {
			st.stats.Branches++
			if mispPos < len(misp) && misp[mispPos] == i {
				mispPos++
				st.stats.Mispredicts++
				st.cycles += st.penalty
			}
		}

		if rec.Load0 != 0 {
			st.stats.Loads++
			evPos, wbPos = st.load(rec.Load0, rec.Dependent, i, ev, evPos, wbs, wbPos)
		}
		if rec.Load1 != 0 {
			st.stats.Loads++
			evPos, wbPos = st.load(rec.Load1, false, i, ev, evPos, wbs, wbPos)
		}

		if rec.Store != 0 {
			st.stats.Stores++
			lat := st.l1dLat
			if evPos < len(ev) && ev[evPos].Instr == i && ev[evPos].Kind == cache.StoreAccess {
				e := &ev[evPos]
				evPos++
				lat = st.l1dLat + st.l2Lat
				if e.Descend {
					lat += st.hier.DescendLLC(0, e.Addr, st.cycles+lat)
				}
				for j := uint8(0); j < e.WBs; j++ {
					st.hier.WritebackToLLC(0, wbs[wbPos])
					wbPos++
				}
			}
			// Stores retire through the write buffer: latency feeds the
			// AMAT inputs, no retirement stall.
			st.hier.Stats.DemandDataAccesses[0]++
			st.hier.Stats.DemandDataLatency[0] += lat
		}

		st.instrs++
		if st.instrs%fanQuantum == 0 {
			if !st.inROI {
				if st.instrs >= st.cfg.WarmupInstrs {
					st.enterROI()
				}
			} else {
				st.smp.maybeSample(&st.samples)
				if st.instrs >= st.roiEnd {
					return true, nil
				}
			}
		}
	}
	if evPos != len(ev) || wbPos != len(wbs) || mispPos != len(misp) {
		return false, fmt.Errorf("sim: fan digest mismatch (events %d/%d, writebacks %d/%d, mispredicts %d/%d)",
			evPos, len(ev), wbPos, len(wbs), mispPos, len(misp))
	}
	return false, nil
}

// load prices one demand load: cpu.Core.loadStall with the hierarchy
// outcome read from the digest. Loads with no event settled at the L1D
// hit latency (plain hit or repeat-hit fast path — both price and count
// identically).
func (st *fanFollower) load(addr uint64, dependent bool, i uint64, ev []cache.FrontEvent, evPos int, wbs []uint64, wbPos int) (int, int) {
	lat := st.l1dLat
	if evPos < len(ev) && ev[evPos].Instr == i && ev[evPos].Kind == cache.Load && ev[evPos].Addr == addr {
		e := &ev[evPos]
		evPos++
		lat = st.l1dLat + st.l2Lat
		if e.Descend {
			lat += st.hier.DescendLLC(0, addr, st.cycles+lat)
		}
		for j := uint8(0); j < e.WBs; j++ {
			st.hier.WritebackToLLC(0, wbs[wbPos])
			wbPos++
		}
	}
	st.hier.Stats.DemandDataAccesses[0]++
	st.hier.Stats.DemandDataLatency[0] += lat
	if lat > st.l1dLat {
		stall := lat - st.l1dLat
		if !dependent {
			if st.mlpShift >= 0 {
				stall >>= uint(st.mlpShift)
			} else {
				stall /= st.mlp
			}
		}
		st.cycles += stall
		st.stats.LoadStall += stall
	}
	return evPos, wbPos
}
