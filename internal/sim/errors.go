package sim

import (
	"errors"
	"fmt"
)

// Error taxonomy for the execution stack. Every failure surfaced by
// Run/RunMany and the internal/runner orchestrator wraps one of these
// sentinels, so callers can classify failures with errors.Is and decide
// whether a retry can help (ErrPanic, ErrTimeout, ErrStalled) or not
// (ErrBadConfig, ErrCanceled).
var (
	// ErrBadConfig marks a configuration rejected by Validate before
	// any simulation work started. Never retryable.
	ErrBadConfig = errors.New("sim: invalid configuration")
	// ErrTimeout marks a run that exceeded its per-run wall-clock
	// deadline (context.DeadlineExceeded on the run's context).
	ErrTimeout = errors.New("sim: run exceeded its deadline")
	// ErrPanic marks a run whose simulation goroutine panicked; the
	// panic was recovered so the rest of the campaign survives.
	ErrPanic = errors.New("sim: run panicked")
	// ErrCanceled marks a run stopped by whole-campaign cancellation
	// (SIGINT/SIGTERM or an explicit context cancel).
	ErrCanceled = errors.New("sim: run canceled")
	// ErrStalled marks a run whose worker ignored its expired context for
	// longer than the orchestrator's stall grace: the watchdog abandoned
	// the wedged goroutine and surfaced this instead of hanging the
	// campaign. Retryable — a wedge can be seed-dependent.
	ErrStalled = errors.New("sim: run stalled past its deadline")
)

// PanicError carries the recovered panic value and goroutine stack of a
// crashed run. It wraps ErrPanic.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%v: %v", ErrPanic, e.Value)
}

// Unwrap makes errors.Is(err, ErrPanic) true.
func (e *PanicError) Unwrap() error { return ErrPanic }

// RunFailure identifies which configuration of a batch failed and why.
// RunMany joins one RunFailure per failed config into its returned
// error; extract them with errors.As or a type switch over
// errors.Join's tree.
type RunFailure struct {
	Index  int
	Config Config
	Err    error
}

func (f *RunFailure) Error() string {
	return fmt.Sprintf("config %d (%s %s): %v", f.Index, f.Config.Mode, f.Config.Workload, f.Err)
}

func (f *RunFailure) Unwrap() error { return f.Err }

// Retryable reports whether a failed run might succeed on a retry with
// a perturbed seed: panics, timeouts and stalls can be seed-dependent,
// while bad configs and cancellations cannot.
func Retryable(err error) bool {
	return errors.Is(err, ErrPanic) || errors.Is(err, ErrTimeout) || errors.Is(err, ErrStalled)
}
