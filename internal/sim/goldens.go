package sim

import "encoding/json"

// GoldenConfigs is the fixed-seed configuration matrix the golden suite
// pins down: one run per contention mode, small enough to stay fast but
// long enough to exercise warm-up, sampling, eviction, theft accounting,
// the PInTE engine and the DRAM model. The golden determinism test locks
// these byte-for-byte against internal/sim/testdata; the result store's
// integrity gate (pintetrace store-verify) replays the same matrix live
// to prove a store's cached bytes still match what the simulator
// produces today.
func GoldenConfigs() map[string]Config {
	return map[string]Config{
		"isolation": {
			Workload:     "450.soplex",
			WarmupInstrs: 20_000,
			ROIInstrs:    60_000,
			SampleEvery:  20_000,
			Seed:         1,
		},
		"pinte": {
			Mode:         PInTE,
			Workload:     "450.soplex",
			PInduce:      0.3,
			WarmupInstrs: 20_000,
			ROIInstrs:    60_000,
			SampleEvery:  20_000,
			Seed:         1,
		},
		"second-trace": {
			Mode:         SecondTrace,
			Workload:     "433.milc",
			Adversary:    "470.lbm",
			WarmupInstrs: 20_000,
			ROIInstrs:    60_000,
			SampleEvery:  20_000,
			Seed:         7,
		},
		"pinte-random-workload": {
			Mode:         PInTE,
			Workload:     "429.mcf",
			PInduce:      0.7,
			WarmupInstrs: 10_000,
			ROIInstrs:    40_000,
			SampleEvery:  20_000,
			Seed:         3,
		},
	}
}

// GoldenBytes serialises a Result deterministically: WallTime is the one
// field that legitimately varies between runs, so it is zeroed. The
// output matches the golden files under internal/sim/testdata.
func GoldenBytes(res *Result) ([]byte, error) {
	r := *res
	r.WallTime = 0
	b, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
