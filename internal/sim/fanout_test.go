package sim

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/trace"
)

// resultJSON canonicalises a result for byte-equality comparison:
// WallTime is the only field allowed to differ between a sequential run
// and its fan-out twin.
func resultJSON(t *testing.T, r *Result) string {
	t.Helper()
	c := *r
	c.WallTime = 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// checkFanEquivalence runs cfgs sequentially and as one fan group and
// requires byte-identical results point by point.
func checkFanEquivalence(t *testing.T, cfgs []Config) {
	t.Helper()
	pts := RunFanGroup(context.Background(), cfgs, 0)
	if len(pts) != len(cfgs) {
		t.Fatalf("got %d points for %d configs", len(pts), len(cfgs))
	}
	for i, cfg := range cfgs {
		if pts[i].Err != nil {
			t.Fatalf("point %d: fan error: %v", i, pts[i].Err)
		}
		seq, err := Run(cfg)
		if err != nil {
			t.Fatalf("point %d: sequential error: %v", i, err)
		}
		if got, want := resultJSON(t, pts[i].Res), resultJSON(t, seq); got != want {
			t.Errorf("point %d (%s mode=%v P=%v): fan result differs from sequential\nfan: %s\nseq: %s",
				i, cfg.Workload, cfg.Mode, cfg.PInduce, got, want)
		}
	}
}

// TestFanoutDigestEquivalence drives the digest executor (capture-mode
// front + followers) across a P_Induce sweep and checks byte-identity
// against sequential runs, per workload archetype.
func TestFanoutDigestEquivalence(t *testing.T) {
	for _, wl := range []string{"453.povray", "433.milc", "450.soplex"} {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			cfgs := []Config{
				tiny(Config{Workload: wl}),
				tiny(Config{Workload: wl, Mode: PInTE, PInduce: 0.05}),
				tiny(Config{Workload: wl, Mode: PInTE, PInduce: 0.5}),
				tiny(Config{Workload: wl, Mode: PInTE, PInduce: 0.05, EngineSeed: 99}),
			}
			checkFanEquivalence(t, cfgs)
		})
	}
}

// TestFanoutDigestNoWarmup covers the warm-up-free edge (the ROI starts
// at instruction zero; the follower arms its sampler at entry).
func TestFanoutDigestNoWarmup(t *testing.T) {
	mk := func(p float64) Config {
		cfg := Config{Workload: "470.lbm", WarmupInstrs: 1, ROIInstrs: 50_000, SampleEvery: 10_000, Seed: 3}
		if p > 0 {
			cfg.Mode, cfg.PInduce = PInTE, p
		}
		return cfg
	}
	// WarmupInstrs cannot be zero post-defaulting; 1 quantises to the
	// first boundary, the smallest representable warm-up.
	checkFanEquivalence(t, []Config{mk(0), mk(0.3)})
}

// TestFanoutLockstepEquivalence forces the lockstep executor with
// points the digest gate rejects (SecondTrace, telemetry collection)
// and checks they still match their sequential runs over a shared
// decode.
func TestFanoutLockstepEquivalence(t *testing.T) {
	cfgs := []Config{
		tiny(Config{Workload: "433.milc"}),
		tiny(Config{Workload: "433.milc", Mode: SecondTrace, Adversary: "470.lbm"}),
		tiny(Config{Workload: "433.milc", Mode: PInTE, PInduce: 0.3, TelemetryEvery: 20_000}),
	}
	checkFanEquivalence(t, cfgs)
}

// TestFanoutGroupKey checks the grouping invariant: per-point knobs
// (mode, P_Induce, engine seed, adversaries, extensions) share a key;
// stream-shaping knobs (workload, seed, window) split it.
func TestFanoutGroupKey(t *testing.T) {
	base := tiny(Config{Workload: "453.povray"})
	key := func(c Config) string {
		k, err := FanGroupKey(c)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	same := []Config{
		tiny(Config{Workload: "453.povray", Mode: PInTE, PInduce: 0.7}),
		tiny(Config{Workload: "453.povray", Mode: PInTE, PInduce: 0.1, EngineSeed: 42}),
		tiny(Config{Workload: "453.povray", Mode: SecondTrace, Adversary: "470.lbm"}),
		tiny(Config{Workload: "453.povray", Mode: PInTE, PInduce: 0.1, TelemetryEvery: 5_000}),
	}
	for i, c := range same {
		if key(c) != key(base) {
			t.Errorf("config %d should share the base group key", i)
		}
	}
	diff := []Config{
		tiny(Config{Workload: "470.lbm"}),
		func() Config { c := tiny(Config{Workload: "453.povray"}); c.Seed = 2; return c }(),
		func() Config { c := tiny(Config{Workload: "453.povray"}); c.ROIInstrs = 40_000; return c }(),
	}
	for i, c := range diff {
		if key(c) == key(base) {
			t.Errorf("config %d should not share the base group key", i)
		}
	}
}

// TestFanoutMixedKeysRejected checks the defensive gate: a group whose
// members cannot share a stream fails every point instead of silently
// desynchronising.
func TestFanoutMixedKeysRejected(t *testing.T) {
	pts := RunFanGroup(context.Background(), []Config{
		tiny(Config{Workload: "453.povray"}),
		tiny(Config{Workload: "470.lbm"}),
	}, 0)
	for i, p := range pts {
		if !errors.Is(p.Err, ErrBadConfig) {
			t.Errorf("point %d: err = %v, want ErrBadConfig", i, p.Err)
		}
	}
}

// TestFanoutCancellation checks a cancelled group aborts promptly and
// every point surfaces the taxonomy error.
func TestFanoutCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := []Config{
		tiny(Config{Workload: "453.povray"}),
		tiny(Config{Workload: "453.povray", Mode: PInTE, PInduce: 0.5}),
	}
	done := make(chan []FanPoint, 1)
	go func() { done <- RunFanGroup(ctx, cfgs, time.Second) }()
	select {
	case pts := <-done:
		for i, p := range pts {
			if p.Err == nil {
				t.Errorf("point %d: completed despite cancelled context", i)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("fan group did not abort after cancellation")
	}
}

// TestFanoutReplayBacked runs the digest executor over a replay-cache
// provider, the production configuration, via a recording source.
func TestFanoutReplayBacked(t *testing.T) {
	cfgs := []Config{
		tiny(Config{Workload: "453.povray"}),
		tiny(Config{Workload: "453.povray", Mode: PInTE, PInduce: 0.25}),
	}
	// trace.Generate is the default provider; the replay-backed variant
	// lives in the runner tests (internal/replay would be an import
	// cycle here if it imported sim; it does not, but the runner is the
	// layer that wires the cache in production).
	for i := range cfgs {
		cfgs[i].Streams = trace.Generate{}
	}
	checkFanEquivalence(t, cfgs)
}
