package sim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/sim -run TestGoldenDeterminism -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenConfigs and goldenBytes live in goldens.go (exported) so the
// result store's integrity gate, pintetrace store-verify, replays the
// identical matrix against the identical serialisation.
func goldenConfigs() map[string]Config { return GoldenConfigs() }

func goldenBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := GoldenBytes(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return b
}

// TestGoldenDeterminism locks fixed-seed simulation output byte-for-byte.
// It protects two invariants at once: (1) hot-path optimisations must not
// change simulation semantics, and (2) the resume journal's SHA-256
// config keying (internal/runner) stays meaningful, because a journaled
// result recalled under the same config must equal a fresh run.
func TestGoldenDeterminism(t *testing.T) {
	for name, cfg := range goldenConfigs() {
		t.Run(name, func(t *testing.T) {
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := goldenBytes(t, res)

			path := filepath.Join("testdata", "golden_"+name+".json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("result for %q diverged from golden %s\n"+
					"fixed-seed output must be byte-identical; if the change is an "+
					"intentional RNG-stream or model change, regenerate with -update "+
					"and document it in DESIGN.md", name, path)
			}
		})
	}
}

// TestGoldenRerunStability double-checks that two in-process runs of the
// same config are byte-identical (no hidden global state), independent of
// the on-disk goldens.
func TestGoldenRerunStability(t *testing.T) {
	cfg := goldenConfigs()["pinte"]
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(goldenBytes(t, a), goldenBytes(t, b)) {
		t.Fatal("two runs of an identical config diverged")
	}
}
