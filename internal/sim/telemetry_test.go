package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// TestGoldenDeterminismTelemetryNeutral enforces the observation-only
// contract: running the golden configs WITH telemetry collection
// enabled must produce byte-identical simulation output. Only the
// telemetry payload itself (and the config knob that requested it) may
// differ from the on-disk goldens; every simulated counter, sample and
// engine statistic has to match bit for bit, proving the collector
// never perturbs the machine or any RNG stream.
func TestGoldenDeterminismTelemetryNeutral(t *testing.T) {
	for name, cfg := range goldenConfigs() {
		t.Run(name, func(t *testing.T) {
			tcfg := cfg
			tcfg.TelemetryEvery = 10_000
			res, err := Run(tcfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Telemetry == nil || len(res.Telemetry.Intervals) == 0 {
				t.Fatal("telemetry enabled but no intervals collected")
			}
			if res.Telemetry.Every != 10_000 {
				t.Fatalf("series interval %d, want 10000", res.Telemetry.Every)
			}

			// Strip the telemetry-only fields; the remainder must equal
			// the telemetry-free golden byte for byte.
			res.Telemetry = nil
			res.Config.TelemetryEvery = 0
			got := goldenBytes(t, res)
			want, err := os.ReadFile(filepath.Join("testdata", "golden_"+name+".json"))
			if err != nil {
				t.Fatalf("read golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("enabling telemetry changed simulation output for %q; "+
					"collection must be observation-only", name)
			}
		})
	}
}

// TestTelemetryIntervalSums checks the collector's accounting closes:
// with the tail flush, interval sums equal the run's ROI totals.
func TestTelemetryIntervalSums(t *testing.T) {
	cfg := goldenConfigs()["pinte"]
	cfg.TelemetryEvery = 7_000 // deliberately misaligned with the ROI
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc, trig := res.Telemetry.TriggerTotals()
	if acc != res.Engine.Accesses || trig != res.Engine.Triggers {
		t.Fatalf("interval sums %d/%d diverge from engine totals %d/%d",
			acc, trig, res.Engine.Accesses, res.Engine.Triggers)
	}
	var instrs uint64
	for _, iv := range res.Telemetry.Intervals {
		instrs += iv.Instrs
	}
	if instrs != res.Instrs {
		t.Fatalf("interval instruction sum %d != ROI instructions %d", instrs, res.Instrs)
	}
}

// TestRealizedTriggerRateTracksPInduce is the statistical calibration
// regression test: across a seed set and a P_Induce grid, the realized
// trigger rate measured by the telemetry counters must land within a
// binomial-confidence tolerance of the configured probability, with
// both endpoints exact — the P_Induce = 0 rows must show zero triggers
// and the P_Induce = 1 rows a trigger on every access.
func TestRealizedTriggerRateTracksPInduce(t *testing.T) {
	grid := []float64{0, 0.05, 0.3, 0.7, 1}
	seeds := []uint64{1, 2, 3}
	for _, p := range grid {
		for _, seed := range seeds {
			res, err := Run(Config{
				Mode:           PInTE,
				Workload:       "433.milc", // LLC-bound: plenty of engine accesses
				PInduce:        p,
				WarmupInstrs:   20_000,
				ROIInstrs:      150_000,
				SampleEvery:    150_000,
				TelemetryEvery: 15_000,
				Seed:           seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			acc, trig := res.Telemetry.TriggerTotals()
			if acc == 0 {
				t.Fatalf("p=%v seed=%d: no engine accesses observed", p, seed)
			}
			aud := telemetry.NewAudit(p, acc, trig, res.Telemetry)
			if !aud.Calibrated {
				t.Errorf("p=%v seed=%d: realized %.5f over %d accesses (z=%.2f) outside tolerance",
					p, seed, aud.Realized, acc, aud.Z)
			}
			switch p {
			case 0:
				if trig != 0 {
					t.Errorf("p=0 seed=%d: %d triggers, want exactly 0", seed, trig)
				}
			case 1:
				if trig != acc {
					t.Errorf("p=1 seed=%d: %d triggers over %d accesses, want all", seed, trig, acc)
				}
			}
		}
	}
}
