package sim

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/branch"
	"repro/internal/cache"
	pinte "repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/phase"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// SampleStats reports how a phase-sampled run spent its budget and how
// far its extrapolation is warranted to stray from a full-ROI run.
type SampleStats struct {
	// Phases and Windows describe the plan; Intervals is the profiled
	// series length the plan was clustered from.
	Phases    int `json:"phases"`
	Windows   int `json:"windows"`
	Intervals int `json:"intervals"`
	// InstrsSimulated is the detailed budget paid (window warmups +
	// windows); InstrsSkipped the fast-forwarded remainder.
	InstrsSimulated uint64 `json:"instrs_simulated"`
	InstrsSkipped   uint64 `json:"instrs_skipped"`
	// Bounds are the plan's per-metric self-consistency error bounds
	// (see phase.Bounds).
	Bounds phase.Bounds `json:"bounds"`
	// TriggerRateBound widens the plan's trigger-rate bound by the
	// binomial sampling noise of the windows actually measured (the
	// same 4.5σ half-width the telemetry audit uses), so the realized
	// P_Induce of a sampled run carries an honest tolerance.
	TriggerRateBound float64 `json:"trigger_rate_bound"`
}

// SampleEligible reports whether cfg can execute in phase-sampled mode.
// Sampling drives a single primary core through skip/window cycles, so
// multi-core modes are out; features with their own instruction-count
// schedules (partitioning epochs, independent injection, telemetry
// collection) or probabilistic memory-side state (DRAM contention) are
// excluded because skipping would silently decouple their clocks.
func SampleEligible(cfg Config) bool {
	c := cfg.withDefaults()
	if c.Mode != Isolation && c.Mode != PInTE {
		return false
	}
	return c.Partitioning == "" && c.LLCWayAllocation == 0 &&
		c.IndependentPeriod == 0 && c.DRAMContentionProb == 0 &&
		c.TelemetryEvery == 0
}

// winSnap is one point-in-time capture of every counter the sampled
// extrapolation differentiates across a window.
type winSnap struct {
	instrs, cycles uint64
	core           cpu.Stats

	l1dAcc, l1dMiss uint64
	l2Acc, l2Miss   uint64
	llcAcc, llcMiss uint64
	theftsExp       uint64
	dataAcc         uint64
	dataLat         uint64
	demFills        uint64
	wbFills         uint64
	pfIssued        uint64
	pfFromDRAM      uint64
	pfUseful        uint64
	engine          pinte.Stats
	occ             uint64
}

func snapWindow(core *cpu.Core, hier *cache.Hierarchy, engine *pinte.Engine) winSnap {
	llc := &hier.LLC().Stats
	s := winSnap{
		instrs:     core.Instrs,
		cycles:     core.Cycles,
		core:       core.Stats,
		l1dAcc:     hier.L1D(0).Stats.Accesses[0],
		l1dMiss:    hier.L1D(0).Stats.Misses[0],
		l2Acc:      hier.L2(0).Stats.Accesses[0],
		l2Miss:     hier.L2(0).Stats.Misses[0],
		llcAcc:     llc.Accesses[0],
		llcMiss:    llc.Misses[0],
		theftsExp:  llc.TheftsExperienced[0],
		dataAcc:    hier.Stats.DemandDataAccesses[0],
		dataLat:    hier.Stats.DemandDataLatency[0],
		demFills:   hier.Stats.LLCDemandFills,
		wbFills:    hier.Stats.LLCWritebackFills,
		pfIssued:   hier.Stats.PrefetchIssued,
		pfFromDRAM: hier.Stats.PrefetchFromDRAM,
		pfUseful: llc.PrefetchUseful + hier.L1D(0).Stats.PrefetchUseful +
			hier.L2(0).Stats.PrefetchUseful,
		occ: llc.Occupancy[0],
	}
	if engine != nil {
		s.engine = engine.Stats
	}
	return s
}

// extAcc accumulates cluster-weighted window deltas in float64 — the
// extrapolated full-ROI totals.
type extAcc struct {
	instrs, cycles   float64
	branches, misp   float64
	l1dAcc, l1dMiss  float64
	l2Acc, l2Miss    float64
	llcAcc, llcMiss  float64
	theftsExp        float64
	dataAcc, dataLat float64
	demFills         float64
	wbFills          float64
	pfIssued         float64
	pfFromDRAM       float64
	pfUseful         float64
	engAcc, engTrig  float64
	engBudget        float64
	engProm, engInv  float64
	occWeighted      float64 // cover-weighted end-of-window occupancy frac

	// rawEngAcc/rawEngTrig are the unscaled measured engine events, the
	// binomial n behind the trigger-rate noise bound.
	rawEngAcc, rawEngTrig uint64
}

func (e *extAcc) add(a, b winSnap, scale, coverFrac float64, capBlocks uint64) {
	e.instrs += float64(b.instrs-a.instrs) * scale
	e.cycles += float64(b.cycles-a.cycles) * scale
	e.branches += float64(b.core.Branches-a.core.Branches) * scale
	e.misp += float64(b.core.Mispredicts-a.core.Mispredicts) * scale
	e.l1dAcc += float64(b.l1dAcc-a.l1dAcc) * scale
	e.l1dMiss += float64(b.l1dMiss-a.l1dMiss) * scale
	e.l2Acc += float64(b.l2Acc-a.l2Acc) * scale
	e.l2Miss += float64(b.l2Miss-a.l2Miss) * scale
	e.llcAcc += float64(b.llcAcc-a.llcAcc) * scale
	e.llcMiss += float64(b.llcMiss-a.llcMiss) * scale
	e.theftsExp += float64(b.theftsExp-a.theftsExp) * scale
	e.dataAcc += float64(b.dataAcc-a.dataAcc) * scale
	e.dataLat += float64(b.dataLat-a.dataLat) * scale
	e.demFills += float64(b.demFills-a.demFills) * scale
	e.wbFills += float64(b.wbFills-a.wbFills) * scale
	e.pfIssued += float64(b.pfIssued-a.pfIssued) * scale
	e.pfFromDRAM += float64(b.pfFromDRAM-a.pfFromDRAM) * scale
	e.pfUseful += float64(b.pfUseful-a.pfUseful) * scale
	e.engAcc += float64(b.engine.Accesses-a.engine.Accesses) * scale
	e.engTrig += float64(b.engine.Triggers-a.engine.Triggers) * scale
	e.engBudget += float64(b.engine.EvictBudget-a.engine.EvictBudget) * scale
	e.engProm += float64(b.engine.Promotions-a.engine.Promotions) * scale
	e.engInv += float64(b.engine.Invalidations-a.engine.Invalidations) * scale
	e.rawEngAcc += b.engine.Accesses - a.engine.Accesses
	e.rawEngTrig += b.engine.Triggers - a.engine.Triggers
	if capBlocks > 0 {
		e.occWeighted += coverFrac * float64(b.occ) / float64(capBlocks)
	}
}

func round(f float64) uint64 {
	if f <= 0 {
		return 0
	}
	return uint64(f + 0.5)
}

// runSampled executes cfg in phase-sampled mode: it fast-forwards the
// instruction stream between the plan's representative windows,
// simulates each window in detail after a short cache/predictor warmup,
// and extrapolates full-ROI metrics as the cluster-weighted sum of the
// window deltas. The machine is set up exactly as RunContext's
// single-core path (same seeds, same component wiring), so a plan whose
// one window spans the whole ROI reproduces the full run byte for byte
// — the equivalence TestSampledFullWindowMatchesRun enforces.
//
// The config's own WarmupInstrs region is not simulated: each window
// carries its own detailed warmup (plan.WarmupInstrs), which is what
// makes the ≥5× budget cut possible. Window state is therefore only
// warm over that run-in — the standard SimPoint-style approximation the
// plan's error bounds account for.
func runSampled(ctx context.Context, cfg Config) (*Result, error) {
	start := time.Now()
	plan := cfg.Sample

	spec, err := specFor(cfg.Workload, cfg.WorkloadSpec)
	if err != nil {
		return nil, err
	}
	dcfg := dram.Default()
	if cfg.DRAM != nil {
		dcfg = *cfg.DRAM
	}
	mem, err := dram.New(dcfg)
	if err != nil {
		return nil, err
	}
	hcfg := cfg.Hier
	hcfg.Cores = 1
	hcfg.Seed = cfg.Seed
	hier, err := cache.NewHierarchy(hcfg, mem)
	if err != nil {
		return nil, err
	}
	streams := cfg.Streams
	if streams == nil {
		streams = trace.Generate{}
	}
	cpuCfg := cfg.CPU
	if cpuCfg.MLP == 0 {
		cpuCfg.MLP = spec.MLP
	}
	gen0, err := streams.Source(spec, cfg.Seed+1, 0)
	if err == nil {
		err = fault.Err(fault.SiteSimSource)
	}
	if err != nil {
		return nil, err
	}
	var src trace.Reader = gen0
	if fault.Enabled() {
		src = &faultSource{src: gen0}
	}
	bp0, err := branch.New(cfg.Branch)
	if err != nil {
		return nil, err
	}
	core0 := cpu.NewCore(0, cpuCfg, src, hier, bp0)
	sys := cpu.NewSystem(core0)
	sys.RestartFinished = true

	var engine *pinte.Engine
	if cfg.Mode == PInTE {
		eseed := cfg.EngineSeed
		if eseed == 0 {
			eseed = cfg.Seed + 7
		}
		engine, err = pinte.NewEngine(pinte.Params{PInduce: cfg.PInduce, Seed: eseed})
		if err != nil {
			return nil, err
		}
		hier.LLC().SetInjector(engine)
		hier.LLC().SetWritebackSink(func(addr uint64) {
			mem.Access(core0.Cycles, addr, true)
		})
	}

	var stopErr error
	interrupted := func() bool {
		select {
		case <-ctx.Done():
			stopErr = ctxError(ctx)
			return true
		default:
			return false
		}
	}

	// skipped tracks records fast-forwarded past without simulation;
	// core0.Instrs + skipped is the absolute stream position. Windows
	// are ROI-relative, and the profiled ROI began after the config's
	// warmup, so window w starts at stream position WarmupInstrs+w.Start.
	var skipped uint64
	pos := func() uint64 { return core0.Instrs + skipped }
	runTo := func(target uint64) error {
		if pos() >= target {
			return nil
		}
		if err := sys.Run(func(*cpu.Core) bool {
			return interrupted() || core0.Instrs+skipped >= target
		}); err != nil {
			return err
		}
		return stopErr
	}

	var ext extAcc
	capBlocks := hier.LLC().CapacityBlocks()
	totalCover := plan.TotalCover()
	var simInstrs uint64
	for _, w := range plan.Windows {
		width := w.End - w.Start
		if width == 0 || w.CoverInstrs == 0 {
			continue
		}
		absStart := cfg.WarmupInstrs + w.Start
		warmStart := absStart
		if plan.WarmupInstrs < warmStart {
			warmStart = absStart - plan.WarmupInstrs
		} else {
			warmStart = 0
		}
		if warmStart > pos() {
			n := warmStart - pos()
			got := core0.SkipInstrs(n)
			skipped += got
			if got < n {
				if err := core0.Err(); err != nil {
					return nil, err
				}
				return nil, fmt.Errorf("sim: trace ended %d records into a %d-record seek", got, n)
			}
		}
		preWarm := core0.Instrs
		if err := runTo(absStart); err != nil {
			return nil, err
		}
		a := snapWindow(core0, hier, engine)
		if err := runTo(pos() + width); err != nil {
			return nil, err
		}
		b := snapWindow(core0, hier, engine)
		simInstrs += core0.Instrs - preWarm
		scale := float64(w.CoverInstrs) / float64(b.instrs-a.instrs)
		coverFrac := float64(w.CoverInstrs) / float64(totalCover)
		ext.add(a, b, scale, coverFrac, capBlocks)
	}
	if ext.instrs == 0 {
		return nil, fmt.Errorf("%w: sampling plan has no usable windows", ErrBadConfig)
	}

	res := &Result{Config: cfg}
	res.Instrs = round(ext.instrs)
	res.Cycles = round(ext.cycles)
	if ext.cycles > 0 {
		res.IPC = ext.instrs / ext.cycles
	}
	if ext.llcAcc > 0 {
		res.MissRate = ext.llcMiss / ext.llcAcc
		res.ContentionRate = ext.theftsExp / ext.llcAcc
	}
	if ext.dataAcc > 0 {
		res.AMAT = ext.dataLat / ext.dataAcc
	}
	res.BranchAccuracy = 1
	if ext.branches > 0 {
		res.BranchAccuracy = 1 - ext.misp/ext.branches
	}
	if ki := ext.instrs / 1000; ki > 0 {
		res.L2MPKI = ext.l2Miss / ki
		res.LLCMPKI = ext.llcMiss / ki
	}
	if fills := ext.demFills + ext.wbFills; fills > 0 {
		res.LLCWritebackFillShare = ext.wbFills / fills
	}
	if ext.l1dAcc > 0 {
		res.L1DMissRate = ext.l1dMiss / ext.l1dAcc
	}
	if ext.l2Acc > 0 {
		res.L2MissRate = ext.l2Miss / ext.l2Acc
	}
	res.OccupancyFrac = ext.occWeighted
	res.PrefetchIssued = round(ext.pfIssued)
	res.PrefetchFromDRAM = round(ext.pfFromDRAM)
	res.PrefetchUseful = round(ext.pfUseful)
	if engine != nil {
		res.Engine = &pinte.Stats{
			Accesses:      round(ext.engAcc),
			Triggers:      round(ext.engTrig),
			EvictBudget:   round(ext.engBudget),
			Promotions:    round(ext.engProm),
			Invalidations: round(ext.engInv),
		}
	}

	st := &SampleStats{
		Phases:          plan.Phases,
		Windows:         len(plan.Windows),
		Intervals:       plan.Intervals,
		InstrsSimulated: simInstrs,
		InstrsSkipped:   skipped,
		Bounds:          plan.Bounds,
	}
	st.TriggerRateBound = plan.Bounds.TriggerRateAbs
	if ext.rawEngAcc > 0 {
		p := float64(ext.rawEngTrig) / float64(ext.rawEngAcc)
		st.TriggerRateBound += 4.5 * math.Sqrt(p*(1-p)/float64(ext.rawEngAcc))
	}
	res.Sampled = st

	telemetry.Phase.SampledRuns.Add(1)
	telemetry.Phase.InstrsSimulated.Add(int64(simInstrs))
	telemetry.Phase.InstrsSkipped.Add(int64(skipped))
	if plan.Every > 0 {
		covered := int64(len(plan.Windows))
		telemetry.Phase.IntervalsSimulated.Add(covered)
		telemetry.Phase.IntervalsSkipped.Add(int64(plan.Intervals) - covered)
	}

	res.WallTime = time.Since(start)
	return res, nil
}
