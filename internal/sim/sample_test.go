package sim

import (
	"math"
	"testing"

	"repro/internal/phase"
	"repro/internal/replay"
)

// fullWindowPlan is a sampling plan whose single window spans the
// entire ROI with the config's own warmup: the sampled executor then
// simulates every instruction a full run would.
func fullWindowPlan(cfg Config) *phase.Plan {
	cfg = cfg.Normalized()
	return &phase.Plan{
		Every:        cfg.ROIInstrs,
		Phases:       1,
		Intervals:    1,
		WarmupInstrs: cfg.WarmupInstrs,
		Windows: []phase.Window{{
			Start: 0, End: cfg.ROIInstrs, Phase: 0, CoverInstrs: cfg.ROIInstrs,
		}},
	}
}

// TestSampledFullWindowMatchesRun is the sampled executor's anchor: a
// plan covering the whole ROI must reproduce the full run exactly —
// same stream position, same quantum stepping, same counters — proving
// the window machinery adds no distortion of its own. Budgets are
// multiples of the scheduling quantum so neither run overshoots a
// boundary.
func TestSampledFullWindowMatchesRun(t *testing.T) {
	for _, mode := range []Mode{Isolation, PInTE} {
		cfg := Config{
			Mode: mode, Workload: "403.gcc", PInduce: 0.1,
			WarmupInstrs: 64_000, ROIInstrs: 256_000, Seed: 5,
		}
		if mode == Isolation {
			cfg.PInduce = 0
		}
		full, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		scfg := cfg
		scfg.Sample = fullWindowPlan(cfg)
		sampled, err := Run(scfg)
		if err != nil {
			t.Fatal(err)
		}
		if sampled.Sampled == nil {
			t.Fatal("sampled run missing SampleStats")
		}
		if sampled.Instrs != full.Instrs || sampled.Cycles != full.Cycles {
			t.Fatalf("%v: instrs/cycles %d/%d, full run %d/%d",
				mode, sampled.Instrs, sampled.Cycles, full.Instrs, full.Cycles)
		}
		type pair struct {
			name      string
			got, want float64
		}
		pairs := []pair{
			{"IPC", sampled.IPC, full.IPC},
			{"MissRate", sampled.MissRate, full.MissRate},
			{"AMAT", sampled.AMAT, full.AMAT},
			{"ContentionRate", sampled.ContentionRate, full.ContentionRate},
			{"BranchAccuracy", sampled.BranchAccuracy, full.BranchAccuracy},
			{"L2MPKI", sampled.L2MPKI, full.L2MPKI},
			{"LLCMPKI", sampled.LLCMPKI, full.LLCMPKI},
			{"L1DMissRate", sampled.L1DMissRate, full.L1DMissRate},
			{"L2MissRate", sampled.L2MissRate, full.L2MissRate},
			{"WritebackShare", sampled.LLCWritebackFillShare, full.LLCWritebackFillShare},
		}
		for _, p := range pairs {
			if p.got != p.want {
				t.Errorf("%v %s = %v, full run %v", mode, p.name, p.got, p.want)
			}
		}
		if mode == PInTE {
			if sampled.Engine == nil || full.Engine == nil {
				t.Fatalf("%v: missing engine stats", mode)
			}
			if sampled.Engine.Accesses != full.Engine.Accesses ||
				sampled.Engine.Triggers != full.Engine.Triggers {
				t.Errorf("%v engine = %d/%d, full %d/%d", mode,
					sampled.Engine.Accesses, sampled.Engine.Triggers,
					full.Engine.Accesses, full.Engine.Triggers)
			}
		}
		if sampled.Sampled.InstrsSkipped != 0 {
			t.Errorf("%v: full-window plan skipped %d instrs", mode, sampled.Sampled.InstrsSkipped)
		}
	}
}

// profileAndPlan runs a telemetry-only profile of cfg and clusters it.
func profileAndPlan(t *testing.T, cfg Config, every uint64) *phase.Plan {
	t.Helper()
	pcfg := cfg.Normalized()
	pcfg.Mode = Isolation
	pcfg.PInduce = 0
	pcfg.TelemetryEvery = every
	res, err := Run(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := phase.Analyze(res.Telemetry, phase.Options{}, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestSampledPhasedWorkloadAccuracy is the in-package accuracy check
// behind the make sample-check gate: on a genuinely phased preset
// (403.gcc alternates two region-weight mixtures every 200k instrs), a
// clustered plan must cut the detailed-instruction budget at least 5×
// while keeping IPC and LLC MPKI within the stated bounds of the
// full-ROI run.
func TestSampledPhasedWorkloadAccuracy(t *testing.T) {
	cache := replay.NewCache(0)
	cfg := Config{
		Mode: PInTE, Workload: "403.gcc", PInduce: 0.2,
		WarmupInstrs: 128_000, ROIInstrs: 1_024_000, Seed: 9,
		Streams: cache,
	}
	plan := profileAndPlan(t, cfg, 32_000)
	if plan.Phases < 2 {
		t.Fatalf("phased preset clustered into %d phase(s)", plan.Phases)
	}

	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.Sample = plan
	sampled, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}

	st := sampled.Sampled
	budget := cfg.WarmupInstrs + cfg.ROIInstrs
	if st.InstrsSimulated*5 > budget {
		t.Errorf("sampled run simulated %d of %d instrs — less than 5x savings", st.InstrsSimulated, budget)
	}
	// The gate bounds: the plan's self-consistency bound plus a fixed
	// allowance for cross-run state approximation (window-local warmup
	// versus fully warm caches).
	ipcErr := math.Abs(sampled.IPC-full.IPC) / full.IPC
	if limit := plan.Bounds.IPCRel + 0.10; ipcErr > limit {
		t.Errorf("IPC error %.4f exceeds %.4f (sampled %.4f vs full %.4f)",
			ipcErr, limit, sampled.IPC, full.IPC)
	}
	mpkiErr := math.Abs(sampled.LLCMPKI-full.LLCMPKI) / full.LLCMPKI
	if limit := plan.Bounds.LLCMPKIRel + 0.20; mpkiErr > limit {
		t.Errorf("LLC MPKI error %.4f exceeds %.4f (sampled %.4f vs full %.4f)",
			mpkiErr, limit, sampled.LLCMPKI, full.LLCMPKI)
	}
	trigErr := math.Abs(sampled.Engine.TriggerRate() - full.Engine.TriggerRate())
	if limit := st.TriggerRateBound + 0.02; trigErr > limit {
		t.Errorf("trigger-rate error %.5f exceeds %.5f", trigErr, limit)
	}
}

func TestSampleEligible(t *testing.T) {
	ok := Config{Mode: PInTE, Workload: "403.gcc", PInduce: 0.1}
	if !SampleEligible(ok) {
		t.Fatal("plain PInTE config not eligible")
	}
	cases := map[string]Config{
		"second-trace": {Mode: SecondTrace, Workload: "403.gcc", Adversary: "470.lbm"},
		"partitioning": {Mode: PInTE, Workload: "403.gcc", Partitioning: "ucp"},
		"way-alloc":    {Mode: PInTE, Workload: "403.gcc", LLCWayAllocation: 4},
		"indep-period": {Mode: PInTE, Workload: "403.gcc", IndependentPeriod: 1000},
		"dram-conten":  {Mode: PInTE, Workload: "403.gcc", DRAMContentionProb: 0.1},
		"telemetry-on": {Mode: PInTE, Workload: "403.gcc", TelemetryEvery: 1000},
	}
	for name, cfg := range cases {
		if SampleEligible(cfg) {
			t.Errorf("%s config wrongly eligible", name)
		}
	}
	bad := ok
	bad.Partitioning = "ucp"
	bad.Sample = &phase.Plan{Windows: []phase.Window{{End: 1, CoverInstrs: 1}}}
	if _, err := Run(bad); err == nil {
		t.Fatal("ineligible config with a plan must be rejected")
	}
}
