package sim

import (
	"repro/internal/fault"
	"repro/internal/trace"
)

// faultSource interposes the trace.read injection site on a core's
// instruction stream. It exists only in chaos mode — RunContext wraps
// the primary source with it solely when injection is enabled — so
// production keeps the devirtualised hot call edge and the 0-alloc
// read path untouched.
type faultSource struct {
	src trace.Source
}

func (f *faultSource) Next(rec *trace.Record) error {
	if err := fault.Err(fault.SiteTraceRead); err != nil {
		return err
	}
	return f.src.Next(rec)
}

func (f *faultSource) NextBatch(recs []trace.Record) (int, error) {
	if err := fault.Err(fault.SiteTraceRead); err != nil {
		// BatchReader's contract: an error returns with n == 0.
		return 0, err
	}
	return f.src.NextBatch(recs)
}

func (f *faultSource) Rewind() { f.src.Rewind() }
