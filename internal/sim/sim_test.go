package sim

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/trace"
)

// tiny returns fast budgets for unit tests.
func tiny(cfg Config) Config {
	cfg.WarmupInstrs = 30_000
	cfg.ROIInstrs = 80_000
	cfg.SampleEvery = 10_000
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunIsolationBasics(t *testing.T) {
	r := run(t, tiny(Config{Workload: "450.soplex"}))
	if r.Instrs != 80_000 && r.Instrs < 80_000 {
		t.Fatalf("ROI instrs = %d, want ≥ 80000", r.Instrs)
	}
	if r.IPC <= 0 || r.IPC > 4 {
		t.Fatalf("IPC = %v out of plausible range", r.IPC)
	}
	if r.AMAT < 4 {
		t.Fatalf("AMAT = %v below L1 latency", r.AMAT)
	}
	if r.ContentionRate != 0 {
		t.Fatalf("isolation run has contention rate %v", r.ContentionRate)
	}
	if len(r.Samples) < 5 {
		t.Fatalf("got %d samples, want ≥5", len(r.Samples))
	}
	if r.Engine != nil {
		t.Fatal("isolation run carries engine stats")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := tiny(Config{Workload: "433.milc", Mode: PInTE, PInduce: 0.3})
	a := run(t, cfg)
	b := run(t, cfg)
	if a.IPC != b.IPC || a.MissRate != b.MissRate || a.ContentionRate != b.ContentionRate {
		t.Fatalf("identical configs diverged: %+v vs %+v", a.IPC, b.IPC)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestRunPInTEInducesContention(t *testing.T) {
	iso := run(t, tiny(Config{Workload: "433.milc"}))
	con := run(t, tiny(Config{Workload: "433.milc", Mode: PInTE, PInduce: 0.5}))
	if con.ContentionRate <= 0.05 {
		t.Fatalf("contention rate %v too low at PInduce 0.5", con.ContentionRate)
	}
	if con.IPC >= iso.IPC {
		t.Fatalf("PInTE contention did not hurt an LLC-bound workload: %v vs %v",
			con.IPC, iso.IPC)
	}
	if con.Engine == nil || con.Engine.Triggers == 0 {
		t.Fatal("engine stats missing or idle")
	}
	if con.MissRate <= iso.MissRate {
		t.Fatalf("miss rate did not rise under theft: %v vs %v", con.MissRate, iso.MissRate)
	}
}

func TestRunEngineSeedVariesOnlyInjection(t *testing.T) {
	base := tiny(Config{Workload: "433.milc", Mode: PInTE, PInduce: 0.3})
	a := run(t, base)
	base.EngineSeed = 999
	b := run(t, base)
	// Same workload stream: instruction counts identical; metrics move
	// only a little (Fig 3's stability claim).
	if a.Instrs != b.Instrs {
		t.Fatalf("instruction counts differ: %d vs %d", a.Instrs, b.Instrs)
	}
	if a.ContentionRate == 0 || b.ContentionRate == 0 {
		t.Fatal("no contention induced")
	}
	if rel := math.Abs(a.IPC-b.IPC) / a.IPC; rel > 0.10 {
		t.Fatalf("engine reseed moved IPC by %.1f%%, expected stability", 100*rel)
	}
}

func TestRunSecondTrace(t *testing.T) {
	iso := run(t, tiny(Config{Workload: "433.milc"}))
	st := run(t, tiny(Config{Workload: "433.milc", Mode: SecondTrace, Adversary: "470.lbm"}))
	if st.ContentionRate == 0 {
		t.Fatal("no thefts from an aggressive streaming adversary")
	}
	if st.IPC >= iso.IPC {
		t.Fatalf("co-run IPC %v not below isolation %v", st.IPC, iso.IPC)
	}
}

func TestRunSecondTraceRequiresAdversary(t *testing.T) {
	_, err := Run(tiny(Config{Workload: "433.milc", Mode: SecondTrace}))
	if err == nil {
		t.Fatal("missing adversary accepted")
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(tiny(Config{Workload: "999.bogus"})); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunCoreBoundInsensitive(t *testing.T) {
	iso := run(t, tiny(Config{Workload: "453.povray"}))
	con := run(t, tiny(Config{Workload: "453.povray", Mode: PInTE, PInduce: 0.9}))
	if rel := math.Abs(con.IPC-iso.IPC) / iso.IPC; rel > 0.05 {
		t.Fatalf("core-bound workload moved %.1f%% under PInTE", 100*rel)
	}
}

func TestRunSamplesConsistentWithAggregates(t *testing.T) {
	r := run(t, tiny(Config{Workload: "450.soplex", Mode: PInTE, PInduce: 0.3}))
	var ipcSum float64
	for _, s := range r.Samples {
		ipcSum += s.IPC
	}
	mean := ipcSum / float64(len(r.Samples))
	if math.Abs(mean-r.IPC)/r.IPC > 0.35 {
		t.Fatalf("mean sample IPC %v far from aggregate %v", mean, r.IPC)
	}
}

func TestRunOccupancyFracBounded(t *testing.T) {
	r := run(t, tiny(Config{Workload: "470.lbm"}))
	if r.OccupancyFrac < 0 || r.OccupancyFrac > 1 {
		t.Fatalf("occupancy fraction %v outside [0,1]", r.OccupancyFrac)
	}
	for _, s := range r.Samples {
		if s.OccupancyFrac < 0 || s.OccupancyFrac > 1 {
			t.Fatalf("sample occupancy %v outside [0,1]", s.OccupancyFrac)
		}
	}
}

func TestRunReuseHistogramPopulated(t *testing.T) {
	r := run(t, tiny(Config{Workload: "450.soplex"}))
	var total uint64
	for _, v := range r.ReuseHist {
		total += v
	}
	if total == 0 {
		t.Fatal("LLC-bound workload produced an empty reuse histogram")
	}
	if len(r.ReuseHist) != 16 {
		t.Fatalf("reuse histogram has %d buckets, want 16 (LLC ways)", len(r.ReuseHist))
	}
}

func TestRunManyMatchesRun(t *testing.T) {
	cfgs := []Config{
		tiny(Config{Workload: "453.povray"}),
		tiny(Config{Workload: "433.milc", Mode: PInTE, PInduce: 0.2}),
		tiny(Config{Workload: "470.lbm"}),
	}
	batch, err := RunMany(cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		solo := run(t, cfg)
		if batch[i].IPC != solo.IPC {
			t.Errorf("cfg %d: parallel result %v != solo %v", i, batch[i].IPC, solo.IPC)
		}
	}
}

func TestRunManyPropagatesError(t *testing.T) {
	cfgs := []Config{
		tiny(Config{Workload: "453.povray"}),
		tiny(Config{Workload: "999.bogus"}),
	}
	if _, err := RunMany(cfgs, 2); err == nil {
		t.Fatal("error not propagated from batch")
	}
}

func TestValidateRejectsContradictions(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"pinduce above 1", func(c *Config) { c.Mode = PInTE; c.PInduce = 1.5 }},
		{"pinduce negative", func(c *Config) { c.Mode = PInTE; c.PInduce = -0.1 }},
		{"pinduce NaN", func(c *Config) { c.Mode = PInTE; c.PInduce = math.NaN() }},
		{"negative way allocation", func(c *Config) { c.LLCWayAllocation = -3 }},
		{"allocation beyond ways", func(c *Config) { c.LLCWayAllocation = 17 }},
		{"partitioning with allocation", func(c *Config) {
			c.Mode = SecondTrace
			c.Adversary = "470.lbm"
			c.Partitioning = "ucp"
			c.LLCWayAllocation = 4
		}},
		{"second-trace without adversary", func(c *Config) { c.Mode = SecondTrace }},
		{"adversary outside second-trace", func(c *Config) { c.Adversary = "470.lbm" }},
		{"dram contention prob above 1", func(c *Config) { c.DRAMContentionProb = 1.2 }},
		{"unknown mode", func(c *Config) { c.Mode = Mode(42) }},
	}
	for _, tc := range cases {
		cfg := Config{Workload: "433.milc"}
		tc.mut(&cfg)
		err := cfg.Validate()
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: Validate = %v, want ErrBadConfig", tc.name, err)
		}
		if _, err := Run(tiny(cfg)); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: Run = %v, want ErrBadConfig", tc.name, err)
		}
	}
	if err := (Config{Workload: "433.milc"}).Validate(); err != nil {
		t.Errorf("zero-value config rejected: %v", err)
	}
}

func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, tiny(Config{Workload: "433.milc"}))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled context: err = %v, want ErrCanceled", err)
	}
}

func TestRunContextDeadline(t *testing.T) {
	cfg := tiny(Config{Workload: "433.milc"})
	cfg.ROIInstrs = 500_000_000
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, cfg)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("deadline overrun: err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation not prompt: run stopped after %s", elapsed)
	}
}

func TestRunSafeRecoversPanic(t *testing.T) {
	// A handcrafted nil-spec panic path cannot be reached through the
	// validated API, so drive RunSafe's recovery directly.
	res, err := func() (*Result, error) {
		return RunSafe(context.Background(), Config{
			Workload:     "adhoc",
			WorkloadSpec: &trace.Spec{Name: "empty"}, // no regions: generator refuses
		})
	}()
	if err == nil && res == nil {
		t.Fatal("no result and no error")
	}
	// Whether this spec errors or panics, the process must survive and
	// any panic must carry the taxonomy sentinel.
	if err != nil && errors.Is(err, ErrPanic) {
		var pe *PanicError
		if !errors.As(err, &pe) || len(pe.Stack) == 0 {
			t.Fatalf("panic recovered without stack: %v", err)
		}
	}
}

func TestRunManyIsolatesFailures(t *testing.T) {
	cfgs := []Config{
		tiny(Config{Workload: "453.povray"}),
		tiny(Config{Workload: "999.bogus"}),
		tiny(Config{Workload: "433.milc", Mode: PInTE, PInduce: 1.7}), // invalid
		tiny(Config{Workload: "470.lbm"}),
	}
	results, err := RunMany(cfgs, 2)
	if err == nil {
		t.Fatal("failures not reported")
	}
	if results[0] == nil || results[3] == nil {
		t.Fatal("healthy configs lost alongside failing ones")
	}
	if results[1] != nil || results[2] != nil {
		t.Fatal("failing configs produced results")
	}
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("taxonomy lost in joined error: %v", err)
	}
	var rf *RunFailure
	if !errors.As(err, &rf) {
		t.Fatalf("no structured RunFailure in %v", err)
	}
}

func TestRunManyContextCanceledMarksRemainder(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := []Config{
		tiny(Config{Workload: "453.povray"}),
		tiny(Config{Workload: "433.milc"}),
	}
	results, err := RunManyContext(ctx, cfgs, 1)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	for i, r := range results {
		if r != nil {
			t.Fatalf("canceled campaign produced result %d", i)
		}
	}
}

func TestModeString(t *testing.T) {
	if Isolation.String() != "isolation" || PInTE.String() != "pinte" ||
		SecondTrace.String() != "2nd-trace" {
		t.Error("mode names changed; reports depend on them")
	}
}

func TestRunCustomMachineKnobs(t *testing.T) {
	cfg := tiny(Config{Workload: "433.milc", Mode: PInTE, PInduce: 0.3})
	cfg.Hier.LLC.Policy = "rrip"
	cfg.Hier.Prefetch = "NNI"
	cfg.Branch = "gshare"
	r := run(t, cfg)
	if r.PrefetchIssued == 0 {
		t.Fatal("NNI config issued no prefetches")
	}
	if r.ContentionRate == 0 {
		t.Fatal("PInTE inert under RRIP")
	}
}

func TestRunDRAMContentionExtension(t *testing.T) {
	base := tiny(Config{Workload: "429.mcf", Mode: PInTE, PInduce: 0.3})
	plain := run(t, base)
	base.DRAMContentionProb = 0.5
	base.DRAMContentionPenalty = 200
	ext := run(t, base)
	if ext.DRAMInjection == nil || ext.DRAMInjection.Injections == 0 {
		t.Fatal("DRAM injection stats missing")
	}
	if ext.IPC >= plain.IPC {
		t.Fatalf("DRAM contention did not slow a DRAM-bound workload: %v vs %v",
			ext.IPC, plain.IPC)
	}
	if ext.AMAT <= plain.AMAT {
		t.Fatalf("AMAT did not rise under DRAM contention: %v vs %v", ext.AMAT, plain.AMAT)
	}
}

func TestRunIndependentPeriodExtension(t *testing.T) {
	base := tiny(Config{Workload: "450.soplex", Mode: PInTE, PInduce: 0.8})
	base.IndependentPeriod = 32
	r := run(t, base)
	if r.IndependentTicks == 0 {
		t.Fatal("ticker never ran")
	}
	if r.ContentionRate == 0 {
		t.Fatal("scheduled injection induced no thefts on an LLC-resident workload")
	}
	if r.Engine == nil || r.Engine.Invalidations == 0 {
		t.Fatal("engine idle in independent mode")
	}
}

func TestRunExtensionsDisabledByDefault(t *testing.T) {
	r := run(t, tiny(Config{Workload: "433.milc", Mode: PInTE, PInduce: 0.3}))
	if r.DRAMInjection != nil || r.IndependentTicks != 0 {
		t.Fatal("extensions active without being configured")
	}
}

func TestLLCCapacityEffect(t *testing.T) {
	// A 512KB random working set: resident in a 4MB LLC, thrashing in
	// a 256KB one. Uses an ad-hoc spec so the reuse distance fits the
	// unit-test instruction budget.
	spec := &trace.Spec{
		Name:    "capacity-probe",
		MemFrac: 0.4,
		Regions: []trace.Region{
			{SizeBytes: 512 << 10, Weight: 1, Pattern: trace.Random},
		},
		MLP: 2,
	}
	runWith := func(llcBytes int) *Result {
		cfg := Config{
			WorkloadSpec: spec,
			Workload:     "adhoc",
			WarmupInstrs: 150_000,
			ROIInstrs:    150_000,
			SampleEvery:  150_000,
			Seed:         1,
		}
		cfg.Hier.LLC = cache.LevelConfig{SizeBytes: llcBytes, Ways: 16, HitLatency: 30}
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	big := runWith(4 << 20)
	small := runWith(256 << 10)
	if small.MissRate <= big.MissRate {
		t.Fatalf("256KB LLC miss rate %v not above 4MB %v", small.MissRate, big.MissRate)
	}
	if small.IPC >= big.IPC {
		t.Fatalf("256KB LLC IPC %v not below 4MB %v", small.IPC, big.IPC)
	}
}

func TestWayAllocationCapsOccupancy(t *testing.T) {
	cfg := tiny(Config{Workload: "433.milc"})
	cfg.LLCWayAllocation = 4 // of 16 ways
	r := run(t, cfg)
	// The workload may hold at most 4/16 of the LLC.
	if r.OccupancyFrac > 0.26 {
		t.Fatalf("occupancy %v exceeds the 25%% way allocation", r.OccupancyFrac)
	}
	full := run(t, tiny(Config{Workload: "433.milc"}))
	if r.MissRate <= full.MissRate {
		t.Fatalf("capped allocation miss rate %v not above unrestricted %v",
			r.MissRate, full.MissRate)
	}
	bad := tiny(Config{Workload: "433.milc"})
	bad.LLCWayAllocation = 17
	if _, err := Run(bad); err == nil {
		t.Fatal("allocation beyond associativity accepted")
	}
}

func TestSecondTraceExtraAdversaries(t *testing.T) {
	one := run(t, tiny(Config{Workload: "433.milc", Mode: SecondTrace, Adversary: "470.lbm"}))
	three := run(t, tiny(Config{
		Workload:    "433.milc",
		Mode:        SecondTrace,
		Adversary:   "470.lbm",
		Adversaries: []string{"450.soplex", "619.lbm"},
	}))
	if three.ContentionRate <= one.ContentionRate {
		t.Fatalf("extra adversaries did not raise contention: %v vs %v",
			three.ContentionRate, one.ContentionRate)
	}
}

func TestPartitioningControllers(t *testing.T) {
	// A contention-sensitive workload co-running with a streamer: both
	// controllers must produce valid covering partitions, and the
	// victim's contention rate must drop versus the shared baseline
	// (partitioned fills cannot steal across cores).
	base := tiny(Config{Workload: "450.soplex", Mode: SecondTrace, Adversary: "470.lbm"})
	base.WarmupInstrs = 60_000
	base.ROIInstrs = 150_000
	shared := run(t, base)
	for _, ctrl := range []string{"ucp", "theft"} {
		cfg := base
		cfg.Partitioning = ctrl
		cfg.ReallocEvery = 20_000
		r := run(t, cfg)
		if len(r.Partition) != 2 {
			t.Fatalf("%s: partition masks missing: %v", ctrl, r.Partition)
		}
		var union uint64
		for core, m := range r.Partition {
			if m == 0 {
				t.Fatalf("%s: core %d has an empty mask", ctrl, core)
			}
			if union&m != 0 {
				t.Fatalf("%s: overlapping masks %v", ctrl, r.Partition)
			}
			union |= m
		}
		if r.ContentionRate >= shared.ContentionRate {
			t.Errorf("%s: victim contention %v not below shared %v",
				ctrl, r.ContentionRate, shared.ContentionRate)
		}
	}
}

func TestPartitioningExclusiveWithAllocation(t *testing.T) {
	cfg := tiny(Config{Workload: "433.milc", Mode: SecondTrace, Adversary: "470.lbm"})
	cfg.Partitioning = "ucp"
	cfg.LLCWayAllocation = 8
	if _, err := Run(cfg); err == nil {
		t.Fatal("partitioning combined with a static allocation accepted")
	}
}

func TestPartitioningUnknownController(t *testing.T) {
	cfg := tiny(Config{Workload: "433.milc", Mode: SecondTrace, Adversary: "470.lbm"})
	cfg.Partitioning = "static"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown controller accepted")
	}
}
