// Package report renders experiment outputs as aligned text tables and
// CSV, the two formats the reproduction's tools emit.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one rendered artifact (a paper table or the data behind a
// figure).
type Table struct {
	ID      string // experiment id, e.g. "table2"
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are printed after the table body.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from values formatted with Cell.
func (t *Table) AddRowf(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = Cell(v)
	}
	t.Rows = append(t.Rows, row)
}

// Cell formats a single value for table output: floats get four
// significant decimals, everything else uses its default formatting.
func Cell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.4g", x)
	case float32:
		return fmt.Sprintf("%.4g", x)
	case string:
		return x
	default:
		return fmt.Sprint(v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", pad))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		// strings.Builder never errors; keep the signature honest.
		panic(err)
	}
	return b.String()
}

// WriteCSV writes the table (columns then rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// RenderAll renders a sequence of tables.
func RenderAll(w io.Writer, tables []*Table) error {
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}
