package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		ID:      "t1",
		Title:   "Sample",
		Columns: []string{"name", "value"},
	}
	t.AddRow("alpha", "1")
	t.AddRowf("beta", 2.5)
	t.AddRowf("gamma", 1234567)
	t.Notes = append(t.Notes, "a note")
	return t
}

func TestRenderAligned(t *testing.T) {
	out := sample().String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[0], "t1: Sample") {
		t.Errorf("missing title line: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("missing header: %q", lines[1])
	}
	if !strings.Contains(out, "note: a note") {
		t.Error("missing note")
	}
	// All body rows start at the same column for the value field.
	var starts []int
	for _, l := range lines[3:6] {
		starts = append(starts, strings.IndexAny(l, "0123456789"))
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] != starts[0] {
			t.Errorf("misaligned columns: %v in %q", starts, out)
		}
	}
}

func TestCellFormats(t *testing.T) {
	if got := Cell(0.123456); got != "0.1235" {
		t.Errorf("Cell(float) = %q", got)
	}
	if got := Cell("x"); got != "x" {
		t.Errorf("Cell(string) = %q", got)
	}
	if got := Cell(42); got != "42" {
		t.Errorf("Cell(int) = %q", got)
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // header + 3 rows
		t.Fatalf("CSV has %d records, want 4", len(recs))
	}
	if recs[0][0] != "name" || recs[1][0] != "alpha" {
		t.Errorf("CSV content wrong: %v", recs)
	}
}

func TestRenderAllAndEmptyTable(t *testing.T) {
	var buf bytes.Buffer
	empty := &Table{ID: "e", Columns: []string{"c"}}
	if err := RenderAll(&buf, []*Table{sample(), empty}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "t1") {
		t.Error("first table missing")
	}
}

func TestRowsShorterThanColumns(t *testing.T) {
	tbl := &Table{ID: "s", Columns: []string{"a", "b", "c"}}
	tbl.AddRow("only")
	// Must not panic.
	_ = tbl.String()
}
