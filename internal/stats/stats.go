// Package stats implements the measurement machinery of the PInTE paper:
// weighted IPC (Eq 1), normalized standard deviation (Eq 3), relative
// error (Eq 4), Kullback–Leibler divergence in bits (Eq 5), reuse and
// metric histograms, five-number (boxplot) summaries, and contention rate
// grouping (CRG, §III-E).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// WeightedIPC is Eq 1: IPC under contention over IPC in isolation.
func WeightedIPC(contention, isolation float64) float64 {
	if isolation == 0 {
		return 0
	}
	return contention / isolation
}

// RelativeError is Eq 4: 100 × (reference − approx) / approx, where the
// paper's reference is the 2nd-Trace measurement and the approximation is
// PInTE. Positive means PInTE underestimates.
func RelativeError(reference, approx float64) float64 {
	if approx == 0 {
		if reference == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * (reference - approx) / approx
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// NormStdDev is Eq 3: standard deviation normalized to the mean (the Fig
// 3 stability metric). It returns 0 when the mean is 0.
func NormStdDev(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / math.Abs(m)
}

// KLOptions controls divergence computation.
type KLOptions struct {
	// Epsilon is the smoothing mass given to empty buckets so that the
	// divergence stays finite (the standard additive smoothing used
	// when comparing empirical histograms); 0 means 1e-6.
	Epsilon float64
}

// KLDivergenceBits is Eq 5: D_KL(p‖q) in log-base-2 (bits). p and q are
// histograms (not necessarily normalised) over the same buckets; both are
// smoothed with opts.Epsilon and normalised internally. It panics if the
// lengths differ, which is a programming error.
func KLDivergenceBits(p, q []float64, opts KLOptions) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("stats: KL histogram length mismatch %d vs %d", len(p), len(q)))
	}
	if len(p) == 0 {
		return 0
	}
	eps := opts.Epsilon
	if eps == 0 {
		eps = 1e-6
	}
	var sp, sq float64
	for i := range p {
		sp += p[i] + eps
		sq += q[i] + eps
	}
	var d float64
	for i := range p {
		pi := (p[i] + eps) / sp
		qi := (q[i] + eps) / sq
		d += pi * math.Log2(pi/qi)
	}
	if d < 0 {
		// Floating-point jitter on identical inputs.
		d = 0
	}
	return d
}

// U64ToF64 converts a counter histogram to float64 buckets.
func U64ToF64(h []uint64) []float64 {
	out := make([]float64, len(h))
	for i, v := range h {
		out[i] = float64(v)
	}
	return out
}

// Summary is a five-number boxplot summary plus the mean.
type Summary struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Summarize computes a Summary of xs. The zero Summary is returned for
// empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		Min:    s[0],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   Mean(s),
		N:      len(s),
	}
}

// quantile interpolates the q-quantile of sorted xs.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g n=%d",
		s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean, s.N)
}
