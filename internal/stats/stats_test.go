package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedIPC(t *testing.T) {
	if got := WeightedIPC(0.5, 1.0); got != 0.5 {
		t.Errorf("WeightedIPC = %v, want 0.5", got)
	}
	if got := WeightedIPC(1.0, 0); got != 0 {
		t.Errorf("WeightedIPC with zero isolation = %v, want 0", got)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-10) > 1e-12 {
		t.Errorf("RelativeError = %v, want 10", got)
	}
	if got := RelativeError(90, 100); math.Abs(got+10) > 1e-12 {
		t.Errorf("RelativeError = %v, want -10", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Errorf("RelativeError(0,0) = %v, want 0", got)
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelativeError(1,0) = %v, want +Inf", got)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs not zero")
	}
}

func TestNormStdDev(t *testing.T) {
	xs := []float64{10, 10, 10}
	if NormStdDev(xs) != 0 {
		t.Error("constant series has nonzero normalized std-dev")
	}
	a := NormStdDev([]float64{9, 10, 11})
	b := NormStdDev([]float64{90, 100, 110})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("normalization not scale-invariant: %v vs %v", a, b)
	}
	if NormStdDev([]float64{-1, 0, 1}) != 0 {
		t.Error("zero-mean series should return 0")
	}
}

func TestKLIdenticalIsZero(t *testing.T) {
	p := []float64{1, 2, 3, 4, 0, 5}
	if d := KLDivergenceBits(p, p, KLOptions{}); d != 0 {
		t.Errorf("KL(p,p) = %v, want 0", d)
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	f := func(pa, pb, pc, qa, qb, qc uint16) bool {
		p := []float64{float64(pa), float64(pb), float64(pc)}
		q := []float64{float64(qa), float64(qb), float64(qc)}
		return KLDivergenceBits(p, q, KLOptions{}) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKLAsymmetricAndFiniteOnZeros(t *testing.T) {
	p := []float64{100, 0, 0}
	q := []float64{1, 1, 98}
	d1 := KLDivergenceBits(p, q, KLOptions{})
	d2 := KLDivergenceBits(q, p, KLOptions{})
	if math.IsInf(d1, 0) || math.IsInf(d2, 0) {
		t.Fatal("smoothed KL returned infinity")
	}
	if d1 == d2 {
		t.Error("KL should be asymmetric on these inputs")
	}
	if d1 < 1 {
		t.Errorf("very different distributions yield tiny divergence %v", d1)
	}
}

func TestKLKnownValue(t *testing.T) {
	// Uniform vs point mass over 2 buckets: D(p‖q) with p=(1,0),
	// q=(0.5,0.5) is 1 bit (up to smoothing).
	p := []float64{1, 0}
	q := []float64{0.5, 0.5}
	d := KLDivergenceBits(p, q, KLOptions{Epsilon: 1e-12})
	if math.Abs(d-1) > 1e-3 {
		t.Errorf("KL = %v bits, want ≈1", d)
	}
}

func TestKLLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	KLDivergenceBits([]float64{1}, []float64{1, 2}, KLOptions{})
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 || s.N != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %v/%v, want 2/4", s.Q1, s.Q3)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary not zero")
	}
	one := Summarize([]float64{7})
	if one.Min != 7 || one.Max != 7 || one.Median != 7 {
		t.Errorf("single-element summary = %+v", one)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestU64ToF64(t *testing.T) {
	got := U64ToF64([]uint64{1, 2, 3})
	if len(got) != 3 || got[2] != 3 {
		t.Errorf("U64ToF64 = %v", got)
	}
}
