package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCRGGroupDefault(t *testing.T) {
	crg := DefaultCRG()
	cases := []struct {
		rate float64
		want int
	}{
		{0, 0}, {0.04, 0}, {0.051, 1}, {0.10, 1}, {0.149, 1},
		{0.151, 2}, {0.96, 10}, {1.0, 10},
	}
	for _, c := range cases {
		if got := crg.Group(c.rate); got != c.want {
			t.Errorf("Group(%v) = %d, want %d", c.rate, got, c.want)
		}
	}
}

func TestCRGCenterInverseProperty(t *testing.T) {
	for _, crg := range Criteria() {
		f := func(raw uint16) bool {
			rate := float64(raw%1001) / 1000
			g := crg.Group(rate)
			// The group's centre must be within half-width of rate.
			return math.Abs(crg.Center(g)-rate) <= crg.HalfWidth+1e-12
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("half-width %v: %v", crg.HalfWidth, err)
		}
	}
}

func TestCRGGroupsCount(t *testing.T) {
	if g := DefaultCRG().Groups(); g != 11 {
		t.Errorf("±5%% criterion has %d groups, want 11 (0%%,10%%,…,100%%)", g)
	}
}

func TestCRGCoverage(t *testing.T) {
	crg := DefaultCRG()
	ref := []float64{0.02, 0.11, 0.52, 0.93}
	approx := []float64{0.04, 0.48}
	// Groups present in approx: 0 and 5; ref groups: 0,1,5,9 → 2 of 4.
	if cov := crg.Coverage(ref, approx); cov != 0.5 {
		t.Errorf("coverage = %v, want 0.5", cov)
	}
	if cov := crg.Coverage(nil, approx); cov != 0 {
		t.Error("empty reference should yield 0")
	}
	if cov := crg.Coverage(ref, ref); cov != 1 {
		t.Error("self coverage should be 1")
	}
}

func TestGroupMeans(t *testing.T) {
	crg := DefaultCRG()
	xs := []float64{0.01, 0.03, 0.52, 0.48}
	ys := []float64{1.0, 0.9, 0.5, 0.7}
	centers, means := crg.GroupMeans(xs, ys)
	if len(centers) != 2 {
		t.Fatalf("got %d groups, want 2", len(centers))
	}
	if centers[0] != 0 || math.Abs(means[0]-0.95) > 1e-12 {
		t.Errorf("group 0: (%v, %v), want (0, 0.95)", centers[0], means[0])
	}
	if centers[1] != 0.5 || math.Abs(means[1]-0.6) > 1e-12 {
		t.Errorf("group 5: (%v, %v), want (0.5, 0.6)", centers[1], means[1])
	}
}

func TestGroupMeansMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	DefaultCRG().GroupMeans([]float64{1}, []float64{1, 2})
}

func TestCriteriaMatchPaper(t *testing.T) {
	cs := Criteria()
	want := []float64{0.025, 0.05, 0.10}
	if len(cs) != len(want) {
		t.Fatalf("got %d criteria, want %d", len(cs), len(want))
	}
	for i := range cs {
		if cs[i].HalfWidth != want[i] {
			t.Errorf("criterion %d half-width %v, want %v", i, cs[i].HalfWidth, want[i])
		}
	}
}
