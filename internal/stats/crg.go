package stats

import "math"

// Contention rate grouping (CRG, §III-E): experiments are compared across
// "like" contention rates by rounding each observed rate to the nearest
// group centre. The paper's default groups rates into ±5% sub-ranges by
// rounding to the nearest 10%; §IV-E4 also evaluates ±2.5% and ±10%
// criteria (Fig 7).

// CRG is one grouping criterion.
type CRG struct {
	// HalfWidth is the half-width of each group in rate units (0.05
	// reproduces the paper's ±5% default). Group centres are spaced
	// 2×HalfWidth apart starting at 0.
	HalfWidth float64
}

// DefaultCRG is the paper's ±5% criterion.
func DefaultCRG() CRG { return CRG{HalfWidth: 0.05} }

// Criteria returns the three criteria of Fig 7: ±2.5%, ±5%, ±10%.
func Criteria() []CRG {
	return []CRG{{HalfWidth: 0.025}, {HalfWidth: 0.05}, {HalfWidth: 0.10}}
}

// Group returns the group index for a contention rate in [0, 1].
func (c CRG) Group(rate float64) int {
	w := 2 * c.HalfWidth
	if w <= 0 {
		panic("stats: CRG half-width must be positive")
	}
	g := int(math.Round(rate / w))
	if g < 0 {
		g = 0
	}
	return g
}

// Center returns the contention rate at the centre of group g.
func (c CRG) Center(g int) float64 { return float64(g) * 2 * c.HalfWidth }

// Groups returns the number of groups covering rates in [0, 1].
func (c CRG) Groups() int { return c.Group(1.0) + 1 }

// Coverage reports what fraction of reference rates have at least one
// approx rate in the same group — Fig 7b's "experiments covered".
func (c CRG) Coverage(reference, approx []float64) float64 {
	if len(reference) == 0 {
		return 0
	}
	have := make(map[int]bool, len(approx))
	for _, r := range approx {
		have[c.Group(r)] = true
	}
	n := 0
	for _, r := range reference {
		if have[c.Group(r)] {
			n++
		}
	}
	return float64(n) / float64(len(reference))
}

// GroupMeans averages ys by the CRG group of the corresponding xs and
// returns (group centres, means) sorted by centre — the construction of
// the paper's contention curves.
func (c CRG) GroupMeans(xs, ys []float64) (centers, means []float64) {
	if len(xs) != len(ys) {
		panic("stats: GroupMeans length mismatch")
	}
	sum := map[int]float64{}
	cnt := map[int]int{}
	for i, x := range xs {
		g := c.Group(x)
		sum[g] += ys[i]
		cnt[g]++
	}
	for g := 0; g <= c.Group(1.0); g++ {
		if cnt[g] == 0 {
			continue
		}
		centers = append(centers, c.Center(g))
		means = append(means, sum[g]/float64(cnt[g]))
	}
	return centers, means
}
