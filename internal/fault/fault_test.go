package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// arm enables injection for one test and guarantees cleanup, so a
// failing test never leaves the package armed for its neighbours.
func arm(t *testing.T, seed uint64) {
	t.Helper()
	Enable(seed)
	t.Cleanup(Disable)
}

func TestDisabledNeverFiresAndAllocatesNothing(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("freshly disabled framework reports enabled")
	}
	if Fires(SiteJournalAppend) || Err(SiteJournalAppend) != nil || Delay(SiteWorkerSlow) != 0 {
		t.Fatal("disabled framework injected")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if Fires(SiteJournalAppend) {
			t.Error("fired while disabled")
		}
		if Err(SiteReplaySource) != nil {
			t.Error("errored while disabled")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled site checks allocated %.1f times per run, want 0", allocs)
	}
}

func TestUnconfiguredSiteNeverFires(t *testing.T) {
	arm(t, 1)
	for i := 0; i < 100; i++ {
		if Fires("never.configured") {
			t.Fatal("unconfigured site fired")
		}
	}
}

// TestDeterministicAcrossRuns is the reproducibility contract: the same
// seed replays the same per-site fire pattern.
func TestDeterministicAcrossRuns(t *testing.T) {
	pattern := func(seed uint64) []bool {
		Enable(seed)
		defer Disable()
		Set(SiteJournalAppend, Spec{Prob: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = Fires(SiteJournalAppend)
		}
		return out
	}
	a, b, c := pattern(42), pattern(42), pattern(43)
	same, diff := true, false
	for i := range a {
		same = same && a[i] == b[i]
		diff = diff || a[i] != c[i]
	}
	if !same {
		t.Fatal("same seed produced different fire patterns")
	}
	if !diff {
		t.Fatal("different seeds produced identical 200-draw patterns")
	}
}

func TestProbEndpoints(t *testing.T) {
	arm(t, 7)
	Set("p0", Spec{Prob: 0})
	Set("p1", Spec{Prob: 1})
	for i := 0; i < 500; i++ {
		if Fires("p0") {
			t.Fatal("Prob=0 fired")
		}
		if !Fires("p1") {
			t.Fatal("Prob=1 did not fire")
		}
	}
}

func TestEveryAfterLimitSchedule(t *testing.T) {
	arm(t, 3)
	// Skip 2 hits, then fire every 3rd eligible hit, at most twice.
	Set("sched", Spec{Every: 3, After: 2, Limit: 2})
	var fired []int
	for i := 1; i <= 12; i++ {
		if Fires("sched") {
			fired = append(fired, i)
		}
	}
	// Eligible hits are 3,4,5,...; every 3rd starting at the first
	// eligible → hits 3 and 6; the limit stops a third fire at hit 9.
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 6 {
		t.Fatalf("schedule fired at %v, want [3 6]", fired)
	}
	st := Snapshot()["sched"]
	if st.Hits != 12 || st.Fires != 2 {
		t.Fatalf("stats = %+v, want 12 hits / 2 fires", st)
	}
}

func TestErrWrapsSentinel(t *testing.T) {
	arm(t, 1)
	Set(SiteReplaySource, Spec{Every: 1})
	err := Err(SiteReplaySource)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error %v does not wrap ErrInjected", err)
	}
}

func TestDelayOnlyWhenFiring(t *testing.T) {
	arm(t, 1)
	Set(SiteWorkerSlow, Spec{Every: 2, Delay: 5 * time.Millisecond})
	var delays []time.Duration
	for i := 0; i < 4; i++ {
		delays = append(delays, Delay(SiteWorkerSlow))
	}
	want := []time.Duration{5 * time.Millisecond, 0, 5 * time.Millisecond, 0}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delays = %v, want %v", delays, want)
		}
	}
}

// TestHangReleasedByDisable pins the watchdog test shape: a hung worker
// blocks past any context, and Disable is the only release.
func TestHangReleasedByDisable(t *testing.T) {
	Enable(1)
	done := make(chan struct{})
	go func() {
		Hang()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Hang returned while enabled")
	case <-time.After(10 * time.Millisecond):
	}
	Disable()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Disable did not release Hang")
	}
}

func TestParseAndApply(t *testing.T) {
	seed, specs, err := Parse("seed=42; journal.append:p=0.25,limit=3 ;worker.slow:delay=50ms,every=2,after=1")
	if err != nil {
		t.Fatal(err)
	}
	if seed != 42 {
		t.Fatalf("seed = %d, want 42", seed)
	}
	ja := specs["journal.append"]
	if ja.Prob != 0.25 || ja.Limit != 3 {
		t.Fatalf("journal.append spec = %+v", ja)
	}
	ws := specs["worker.slow"]
	if ws.Delay != 50*time.Millisecond || ws.Every != 2 || ws.After != 1 {
		t.Fatalf("worker.slow spec = %+v", ws)
	}

	for _, bad := range []string{
		"seed=x", "nosite", "s:k", "s:p=2", "s:delay=zzz", "s:what=1",
	} {
		if _, _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted a malformed spec", bad)
		}
	}

	if err := Apply(""); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("empty Apply armed injection")
	}
	if err := Apply("worker.panic:every=1"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(Disable)
	if !Enabled() || !Fires(SiteWorkerPanic) {
		t.Fatal("Apply did not arm the parsed site")
	}
}

// TestConcurrentFires exercises the locking under -race: many goroutines
// hammering one site must keep exact hit/fire accounting.
func TestConcurrentFires(t *testing.T) {
	arm(t, 9)
	Set("conc", Spec{Every: 2})
	const workers, per = 8, 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				Fires("conc")
				Fires("other.unconfigured")
			}
		}()
	}
	wg.Wait()
	st := Snapshot()["conc"]
	if st.Hits != workers*per || st.Fires != workers*per/2 {
		t.Fatalf("stats = %+v, want %d hits / %d fires", st, workers*per, workers*per/2)
	}
}
