package fault

import "flag"

// FlagUsage is the -chaos help text shared by the binaries.
const FlagUsage = "arm deterministic fault injection (dev), e.g. " +
	`"seed=42;journal.append:p=0.01;worker.panic:every=7;worker.slow:p=0.5,delay=50ms"`

// Flag registers the -chaos development flag on fs (the default flag set
// when fs is nil) and returns the string it fills; pass the value to
// Apply after flag parsing.
func Flag(fs *flag.FlagSet) *string {
	if fs == nil {
		fs = flag.CommandLine
	}
	return fs.String("chaos", "", FlagUsage)
}
