// Package fault is a deterministic fault-injection framework for the
// persistence and execution stack. Production code marks each place a
// real-world failure can strike — a journal append, a replay-arena
// decode, a worker execution — with a named site check; the chaos test
// suite (and the binaries' -chaos flag) arms sites with seeded trigger
// schedules and asserts the system degrades instead of corrupting.
//
// The framework is built around three properties:
//
//   - Zero overhead when disabled. Every injection check starts with one
//     atomic load of a package-level flag; with injection off (the only
//     state production ever runs in) a site costs a predicted branch and
//     allocates nothing, so the hot-path 0-allocs guards and golden
//     determinism tests hold with the sites compiled in.
//
//   - Deterministic when enabled. Each site draws from its own splitmix64
//     stream seeded by (global seed, site name), so a given seed replays
//     the same per-site fire pattern run after run — a failing chaos run
//     reproduces from its seed.
//
//   - Declarative schedules. A Spec arms a site with a per-hit
//     probability, a fire-every-Nth cadence, a warm-up skip and a total
//     fire budget, covering both "rare random bit rot" and "fail exactly
//     the third append" shapes without test-specific plumbing.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Site names threaded through the stack. A site string is free-form —
// these constants just keep call sites and tests in one vocabulary.
const (
	// Journal (internal/runner): durable-store faults.
	SiteJournalOpen          = "journal.open"           // open/create of the journal file fails
	SiteJournalAppend        = "journal.append"         // append fails before any byte is written
	SiteJournalAppendPartial = "journal.append.partial" // append dies mid-line (simulated crash)
	SiteJournalCompactWrite  = "journal.compact.write"  // compaction temp-file write fails
	SiteJournalCompactRename = "journal.compact.rename" // compaction atomic rename fails

	// Replay cache (internal/replay): arena and pool faults.
	SiteReplaySource  = "replay.source"  // stream acquisition fails (generator build)
	SiteReplayCorrupt = "replay.corrupt" // a sealed arena chunk rots after its checksum
	SiteReplayEvict   = "replay.evict"   // forced eviction pressure on arena growth

	// Trace sources (internal/sim): stream plumbing faults.
	SiteSimSource = "sim.source" // primary-core source acquisition fails
	SiteTraceRead = "trace.read" // a source read fails mid-run

	// Worker execution (internal/runner): wedged and dying workers.
	SiteWorkerPanic = "worker.panic" // the run panics
	SiteWorkerHang  = "worker.hang"  // the run blocks, ignoring its context
	SiteWorkerSlow  = "worker.slow"  // the run stalls for Spec.Delay first

	// Result store (internal/store): content-addressed cache faults.
	// All three degrade to compute-without-cache, never a failed run.
	SiteStoreOpen   = "store.open"   // store open/segment scan fails
	SiteStoreAppend = "store.append" // a result append fails
	SiteStoreRead   = "store.read"   // a hit read-back fails

	// Campaign service (internal/server): service-layer faults.
	SiteServerAdmit       = "server.admit"        // the admission check dies before reaching a verdict
	SiteServerStreamWrite = "server.stream.write" // a result-stream write toward a client fails
	SiteServerManifest    = "server.manifest"     // the durable manifest write fails
)

// ErrInjected is the sentinel every injected error wraps; chaos tests
// classify failures with errors.Is(err, fault.ErrInjected).
var ErrInjected = errors.New("fault: injected failure")

// Spec arms one site. The zero value never fires.
type Spec struct {
	// Prob fires each eligible hit with this probability (0..1).
	// Ignored when Every is set.
	Prob float64
	// Every fires deterministically on every Nth eligible hit (1 = every
	// hit). Takes precedence over Prob.
	Every uint64
	// After skips the first N hits before any can fire.
	After uint64
	// Limit caps total fires; 0 means unlimited.
	Limit uint64
	// Delay is the stall duration for sites that sleep (worker.slow).
	Delay time.Duration
}

// SiteStats is one site's lifetime counters since Enable.
type SiteStats struct {
	Hits  uint64 // times the site was reached while enabled
	Fires uint64 // times it actually injected
}

type point struct {
	mu    sync.Mutex
	spec  Spec
	rng   uint64
	hits  uint64
	fires uint64
}

var (
	enabled atomic.Bool

	mu     sync.RWMutex
	seed   uint64
	points map[string]*point
	// hang blocks Hang callers until Disable closes it, so a chaos test
	// can wedge workers and still release them during cleanup.
	hang chan struct{}
)

// Enabled reports whether injection is armed. This is the fast path every
// site check takes first; keep call sites shaped as
// `if fault.Enabled() && ...` or use Fires/Err directly.
func Enabled() bool { return enabled.Load() }

// Enable arms injection with the given determinism seed. Sites configured
// before or after Enable both take effect; counters reset.
func Enable(s uint64) {
	mu.Lock()
	seed = s
	points = make(map[string]*point)
	hang = make(chan struct{})
	mu.Unlock()
	enabled.Store(true)
}

// Disable disarms every site, releases any goroutine blocked in Hang and
// clears all configuration. Safe to call when already disabled.
func Disable() {
	enabled.Store(false)
	mu.Lock()
	if hang != nil {
		close(hang)
		hang = nil
	}
	points = nil
	mu.Unlock()
}

// Set arms site with spec (replacing any previous spec and counters for
// that site). Call after Enable; a Set while disabled is dropped.
func Set(site string, spec Spec) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		return
	}
	points[site] = &point{spec: spec, rng: splitmix(seed ^ fnv64(site))}
}

// fnv64 hashes a site name (FNV-1a) so each site gets an independent
// deterministic stream from one global seed.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix advances a splitmix64 state and returns the mixed output.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Fires reports whether site injects on this hit. With injection
// disabled it is one atomic load; unconfigured sites never fire.
func Fires(site string) bool {
	if !enabled.Load() {
		return false
	}
	mu.RLock()
	p := points[site]
	mu.RUnlock()
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hits++
	if p.hits <= p.spec.After {
		return false
	}
	if p.spec.Limit > 0 && p.fires >= p.spec.Limit {
		return false
	}
	fire := false
	if p.spec.Every > 0 {
		fire = (p.hits-p.spec.After-1)%p.spec.Every == 0
	} else if p.spec.Prob > 0 {
		p.rng = splitmix(p.rng)
		// Top 53 bits → uniform [0,1); strict < so Prob=0 never fires
		// and Prob=1 always does.
		fire = float64(p.rng>>11)/(1<<53) < p.spec.Prob
	}
	if fire {
		p.fires++
	}
	return fire
}

// Err returns an injected error wrapping ErrInjected when site fires,
// nil otherwise. The standard shape for error-path sites:
//
//	if err := fault.Err(fault.SiteJournalOpen); err != nil { return err }
func Err(site string) error {
	if !enabled.Load() {
		return nil
	}
	if Fires(site) {
		return fmt.Errorf("%w at %s", ErrInjected, site)
	}
	return nil
}

// Delay returns the site's configured stall duration when it fires, 0
// otherwise.
func Delay(site string) time.Duration {
	if !enabled.Load() {
		return 0
	}
	mu.RLock()
	p := points[site]
	mu.RUnlock()
	if p == nil || p.spec.Delay <= 0 {
		return 0
	}
	if Fires(site) {
		return p.spec.Delay
	}
	return 0
}

// Hang blocks the caller until Disable, deliberately ignoring every
// context — the shape of a truly wedged worker (deadlock, blocked
// syscall) that only a watchdog can convert into a typed failure.
func Hang() {
	mu.RLock()
	ch := hang
	mu.RUnlock()
	if ch != nil {
		<-ch
	}
}

// Snapshot returns per-site counters since Enable, keyed by site name.
func Snapshot() map[string]SiteStats {
	mu.RLock()
	defer mu.RUnlock()
	out := make(map[string]SiteStats, len(points))
	for name, p := range points {
		p.mu.Lock()
		out[name] = SiteStats{Hits: p.hits, Fires: p.fires}
		p.mu.Unlock()
	}
	return out
}

// Summary renders a snapshot as one sorted log line.
func Summary() string {
	snap := Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("fault injection:")
	if len(names) == 0 {
		b.WriteString(" no sites armed")
	}
	for _, n := range names {
		s := snap[n]
		fmt.Fprintf(&b, " %s=%d/%d", n, s.Fires, s.Hits)
	}
	return b.String()
}

// Parse decodes a -chaos specification of the form
//
//	seed=42;journal.append:p=0.01;worker.panic:every=7,after=3,limit=1;worker.slow:delay=50ms,p=1
//
// into a seed and per-site Specs. The seed clause is optional (default
// 1). Returns an error naming the first malformed clause.
func Parse(s string) (uint64, map[string]Spec, error) {
	specs := make(map[string]Spec)
	var sd uint64 = 1
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			sd = n
			continue
		}
		site, opts, ok := strings.Cut(clause, ":")
		if !ok || site == "" {
			return 0, nil, fmt.Errorf("fault: clause %q is not site:k=v[,k=v...]", clause)
		}
		var spec Spec
		for _, kv := range strings.Split(opts, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return 0, nil, fmt.Errorf("fault: option %q in %q is not k=v", kv, clause)
			}
			var err error
			switch k {
			case "p", "prob":
				spec.Prob, err = strconv.ParseFloat(v, 64)
				if err == nil && (spec.Prob < 0 || spec.Prob > 1) {
					err = fmt.Errorf("probability %v outside [0,1]", spec.Prob)
				}
			case "every":
				spec.Every, err = strconv.ParseUint(v, 10, 64)
			case "after":
				spec.After, err = strconv.ParseUint(v, 10, 64)
			case "limit":
				spec.Limit, err = strconv.ParseUint(v, 10, 64)
			case "delay":
				spec.Delay, err = time.ParseDuration(v)
			default:
				err = fmt.Errorf("unknown option %q", k)
			}
			if err != nil {
				return 0, nil, fmt.Errorf("fault: site %s: %v", site, err)
			}
		}
		specs[site] = spec
	}
	return sd, specs, nil
}

// Apply parses spec and, when it names any site, enables injection with
// the parsed seed and arms every site. An empty spec is a no-op, so
// binaries can call Apply(*chaosFlag) unconditionally.
func Apply(spec string) error {
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	sd, specs, err := Parse(spec)
	if err != nil {
		return err
	}
	Enable(sd)
	for site, s := range specs {
		Set(site, s)
	}
	return nil
}
