package rng

import (
	"math/rand/v2"
	"testing"
)

// TestMatchesStdlib locks stream equivalence with math/rand/v2: every
// method must produce the exact sequence the stdlib produces from the
// same seed, including under arbitrary interleavings of draw kinds.
// The simulator's fixed-seed reproducibility guarantee rests on this.
func TestMatchesStdlib(t *testing.T) {
	seeds := [][2]uint64{
		{0, 0}, {1, 0x9e3779b97f4a7c15}, {42, 7}, {^uint64(0), 1 << 63},
	}
	for _, s := range seeds {
		p := New(s[0], s[1])
		std := rand.New(rand.NewPCG(s[0], s[1]))
		for i := 0; i < 4096; i++ {
			switch i % 5 {
			case 0:
				if g, w := p.Uint64(), std.Uint64(); g != w {
					t.Fatalf("seed %v draw %d: Uint64 = %d, stdlib %d", s, i, g, w)
				}
			case 1:
				if g, w := p.Float64(), std.Float64(); g != w {
					t.Fatalf("seed %v draw %d: Float64 = %v, stdlib %v", s, i, g, w)
				}
			case 2:
				// Mix power-of-two and general bounds, small and large.
				n := []int{2, 3, 8, 28, 100, 1 << 20, 1<<31 + 1}[i%7]
				if g, w := p.IntN(n), std.IntN(n); g != w {
					t.Fatalf("seed %v draw %d: IntN(%d) = %d, stdlib %d", s, i, n, g, w)
				}
			case 3:
				n := []int64{5, 64, 1000003, 1 << 40, 1<<62 + 3}[i%5]
				if g, w := p.Int64N(n), std.Int64N(n); g != w {
					t.Fatalf("seed %v draw %d: Int64N(%d) = %d, stdlib %d", s, i, n, g, w)
				}
			case 4:
				n := []uint64{1, 7, 1 << 33, ^uint64(0)}[i%4]
				if g, w := p.Uint64N(n), std.Uint64N(n); g != w {
					t.Fatalf("seed %v draw %d: Uint64N(%d) = %d, stdlib %d", s, i, n, g, w)
				}
			}
		}
	}
}

func TestSeedResets(t *testing.T) {
	p := New(3, 5)
	first := []uint64{p.Uint64(), p.Uint64(), p.Uint64()}
	p.Seed(3, 5)
	for i, w := range first {
		if g := p.Uint64(); g != w {
			t.Fatalf("draw %d after Seed: got %d, want %d", i, g, w)
		}
	}
}

func TestPanics(t *testing.T) {
	p := New(1, 2)
	for name, f := range map[string]func(){
		"IntN(0)":    func() { p.IntN(0) },
		"Int64N(-1)": func() { p.Int64N(-1) },
		"Uint64N(0)": func() { p.Uint64N(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkFloat64(b *testing.B) {
	p := New(1, 2)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.Float64()
	}
	_ = sink
}

func BenchmarkStdlibFloat64(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 2))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
