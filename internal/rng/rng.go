// Package rng provides an allocation-free, inlinable PCG-DXSM generator
// that reproduces math/rand/v2's output streams bit for bit.
//
// The simulator draws one or more uniforms per simulated instruction
// (trace decisions, the PInTE trigger, randomised replacement), which
// made the rand.Rand → Source interface indirection one of the hottest
// edges in the CPU profile. This package flattens that edge: PCG is a
// concrete struct whose methods the compiler can inline into the trace
// generator's and engine's hot loops, while every algorithm (the DXSM
// output permutation, the Lemire reduction for IntN, the 53-bit Float64)
// is copied from math/rand/v2 so that seeds produce *identical* random
// streams. TestMatchesStdlib locks that equivalence down; the golden
// determinism test in internal/sim depends on it.
//
// One deliberate difference: math/rand/v2 routes small bounds through
// 32-bit math on 32-bit platforms (same output sequence, per its own
// comments). This package always uses the 64-bit path, so streams are
// identical across platforms by construction.
package rng

import "math/bits"

// PCG is a PCG-DXSM generator with 128 bits of state, stream-compatible
// with math/rand/v2.PCG. The zero value is equivalent to New(0, 0).
// It is not safe for concurrent use.
type PCG struct {
	hi uint64
	lo uint64
}

// New returns a PCG seeded like math/rand/v2's NewPCG(seed1, seed2).
func New(seed1, seed2 uint64) *PCG {
	return &PCG{hi: seed1, lo: seed2}
}

// Seed resets the generator to New(seed1, seed2)'s state.
func (p *PCG) Seed(seed1, seed2 uint64) {
	p.hi = seed1
	p.lo = seed2
}

// next advances the 128-bit LCG state (constants from math/rand/v2).
func (p *PCG) next() (hi, lo uint64) {
	const (
		mulHi = 2549297995355413924
		mulLo = 4865540595714422341
		incHi = 6364136223846793005
		incLo = 1442695040888963407
	)
	hi, lo = bits.Mul64(p.lo, mulLo)
	hi += p.hi*mulLo + p.lo*mulHi
	lo, c := bits.Add64(lo, incLo, 0)
	hi, _ = bits.Add64(hi, incHi, c)
	p.lo = lo
	p.hi = hi
	return hi, lo
}

// Uint64 returns a uniformly distributed uint64 (DXSM output function).
func (p *PCG) Uint64() uint64 {
	hi, lo := p.next()
	const cheapMul = 0xda942042e4dd58b5
	hi ^= hi >> 32
	hi *= cheapMul
	hi ^= hi >> 48
	hi *= lo | 1
	return hi
}

// Float64 returns a uniform in [0, 1) with 53 bits of precision.
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()<<11>>11) / (1 << 53)
}

// Uint64N returns a uniform in [0, n). It panics if n == 0.
func (p *PCG) Uint64N(n uint64) uint64 {
	if n == 0 {
		panic("invalid argument to Uint64N")
	}
	return p.uint64n(n)
}

// uint64n is math/rand/v2's Lemire reduction with near-never rejection.
func (p *PCG) uint64n(n uint64) uint64 {
	if n&(n-1) == 0 { // power of two: mask
		return p.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(p.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(p.Uint64(), n)
		}
	}
	return hi
}

// Int64N returns a uniform in [0, n). It panics if n <= 0.
func (p *PCG) Int64N(n int64) int64 {
	if n <= 0 {
		panic("invalid argument to Int64N")
	}
	return int64(p.uint64n(uint64(n)))
}

// IntN returns a uniform in [0, n). It panics if n <= 0.
func (p *PCG) IntN(n int) int {
	if n <= 0 {
		panic("invalid argument to IntN")
	}
	return int(p.uint64n(uint64(n)))
}
