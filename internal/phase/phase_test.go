package phase

import (
	"encoding/json"
	"errors"
	"math"
	"testing"

	"repro/internal/telemetry"
)

// twoPhaseSeries builds a synthetic alternating series: blocks of
// cache-friendly intervals (high IPC, low MPKI) interleaved with
// cache-hostile ones, with mild deterministic jitter so clusters are
// tight but not degenerate.
func twoPhaseSeries(n int) *telemetry.Series {
	const every = 10_000
	s := &telemetry.Series{Every: every}
	for i := 0; i < n; i++ {
		jit := float64(i%3) * 0.01
		iv := telemetry.Interval{
			EndInstrs: uint64(i+1) * every,
			Instrs:    every,
		}
		if (i/4)%2 == 0 { // phase A: compute-bound
			iv.IPC = 1.5 + jit
			iv.L1DMPKI, iv.L2MPKI, iv.LLCMPKI = 2, 1, 0.2+jit
			iv.LLCOccupancyFrac = 0.1
			iv.EngineAccesses, iv.EngineTriggers = 100, 1
		} else { // phase B: memory-bound
			iv.IPC = 0.4 + jit
			iv.L1DMPKI, iv.L2MPKI, iv.LLCMPKI = 40, 25, 12+jit
			iv.LLCOccupancyFrac = 0.6
			iv.EngineAccesses, iv.EngineTriggers = 2000, 180
		}
		iv.Cycles = uint64(float64(iv.Instrs) / iv.IPC)
		s.Intervals = append(s.Intervals, iv)
	}
	return s
}

func TestAnalyzeTwoPhases(t *testing.T) {
	s := twoPhaseSeries(40)
	plan, err := Analyze(s, Options{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Phases != 2 {
		t.Fatalf("found %d phases, want 2 (%s)", plan.Phases, plan)
	}
	if len(plan.Windows) != 2 {
		t.Fatalf("got %d windows, want 2", len(plan.Windows))
	}
	if got, want := plan.TotalCover(), uint64(40*10_000); got != want {
		t.Fatalf("TotalCover = %d, want %d (every interval assigned)", got, want)
	}
	// Both phases carry half the mass in this construction.
	for _, w := range plan.Windows {
		if w.CoverInstrs != 20*10_000 {
			t.Fatalf("window %+v cover, want 200000", w)
		}
		if w.End-w.Start != 10_000 {
			t.Fatalf("window %+v width, want one interval", w)
		}
	}
	if plan.Windows[0].Start >= plan.Windows[1].Start {
		t.Fatalf("windows not sorted: %+v", plan.Windows)
	}
	if plan.WarmupInstrs != 10_000 {
		t.Fatalf("default warmup = %d, want one interval", plan.WarmupInstrs)
	}

	// Sampling budget: 2 windows + warmup vs 400k profiled instrs.
	if plan.SimInstrs() != 2*(10_000+10_000) {
		t.Fatalf("SimInstrs = %d", plan.SimInstrs())
	}

	// Self-consistency: the cluster-weighted representative IPC must
	// reconstruct the series mean within the plan's own stated bound.
	var repIPC, meanIPC float64
	for _, w := range plan.Windows {
		idx := int(w.Start / s.Every)
		repIPC += float64(w.CoverInstrs) / float64(plan.TotalCover()) * s.Intervals[idx].IPC
	}
	for i := range s.Intervals {
		meanIPC += s.Intervals[i].IPC
	}
	meanIPC /= float64(len(s.Intervals))
	if rel := math.Abs(repIPC-meanIPC) / meanIPC; rel > plan.Bounds.IPCRel+1e-9 {
		t.Fatalf("extrapolated IPC off by %.4f, stated bound %.4f", rel, plan.Bounds.IPCRel)
	}
	// The jitter is ±0.02 around means ~1 apart: bounds must be tight.
	if plan.Bounds.IPCRel > 0.05 || plan.Bounds.TriggerRateAbs > 0.02 {
		t.Fatalf("bounds too loose for tight clusters: %+v", plan.Bounds)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	s := twoPhaseSeries(40)
	a, err := Analyze(s, Options{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(twoPhaseSeries(40), Options{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("same seed produced different plans:\n%s\n%s", aj, bj)
	}
}

func TestAnalyzeUniformSeriesOnePhase(t *testing.T) {
	s := &telemetry.Series{Every: 1000}
	for i := 0; i < 20; i++ {
		s.Intervals = append(s.Intervals, telemetry.Interval{
			EndInstrs: uint64(i+1) * 1000, Instrs: 1000, Cycles: 2000, IPC: 0.5, LLCMPKI: 3,
		})
	}
	plan, err := Analyze(s, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Phases != 1 || len(plan.Windows) != 1 {
		t.Fatalf("uniform series: %d phases, %d windows, want 1/1", plan.Phases, len(plan.Windows))
	}
	if plan.Bounds.IPCRel != 0 || plan.Bounds.TriggerRateAbs != 0 {
		t.Fatalf("identical intervals must give zero bounds: %+v", plan.Bounds)
	}
}

func TestAnalyzeTooShort(t *testing.T) {
	if _, err := Analyze(twoPhaseSeries(5), Options{}, 1); !errors.Is(err, ErrTooShort) {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
	if _, err := Analyze(nil, Options{}, 1); !errors.Is(err, ErrTooShort) {
		t.Fatalf("nil series err = %v, want ErrTooShort", err)
	}
}

// TestAnalyzeMaxPhasesCap keeps the plan small even when the series is
// genuinely diverse: a staircase of distinct levels must be capped at
// MaxPhases with every interval still covered by some phase.
func TestAnalyzeMaxPhasesCap(t *testing.T) {
	s := &telemetry.Series{Every: 1000}
	for i := 0; i < 32; i++ {
		s.Intervals = append(s.Intervals, telemetry.Interval{
			EndInstrs: uint64(i+1) * 1000, Instrs: 1000, Cycles: 1000,
			IPC: float64(i), LLCMPKI: float64(32 - i),
		})
	}
	plan, err := Analyze(s, Options{MaxPhases: 3}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Phases > 3 {
		t.Fatalf("phases = %d, want <= 3", plan.Phases)
	}
	if plan.TotalCover() != 32*1000 {
		t.Fatalf("cover = %d, want full series", plan.TotalCover())
	}
}
