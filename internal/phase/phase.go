// Package phase turns a run's telemetry interval series into an
// execution-phase model and a representative sampling plan.
//
// The approach is SimPoint-style interval clustering, but — following
// Bueno et al. (Improving the Representativeness of Simulation
// Intervals for the Cache Memory System) — the feature vector is built
// from cache-behaviour signals the telemetry collector already gathers
// (IPC, per-level MPKI, LLC occupancy share, engine trigger rate)
// instead of basic-block vectors. Intervals are z-normalized, reduced
// with a small power-iteration PCA, clustered with seeded k-means
// (k-means++ init, elbow selection), and each cluster elects the member
// interval closest to its centroid as the phase's representative
// simulation window. Full-ROI metrics are then extrapolated as the
// cluster-weighted sum over representatives, and the plan carries
// per-metric self-consistency error bounds computed from within-cluster
// dispersion.
//
// Everything is deterministic: the same series, options, and seed
// produce the same plan, byte for byte, like every other seeded
// component in this repository.
package phase

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/telemetry"
)

// ErrTooShort reports a series with too few intervals to cluster;
// callers fall back to full-ROI simulation.
var ErrTooShort = errors.New("phase: too few telemetry intervals to cluster")

// featureDim is the per-interval feature vector width: IPC, L1D MPKI,
// L2 MPKI, LLC MPKI, LLC occupancy fraction, engine trigger rate.
const featureDim = 6

// Options tunes the clusterer. The zero value selects the defaults
// noted on each field.
type Options struct {
	// MaxPhases caps the number of clusters (default 6).
	MaxPhases int
	// Components is the PCA dimensionality the intervals are reduced to
	// before clustering (default 3, capped at the feature width).
	Components int
	// MinIntervals is the shortest series worth clustering; anything
	// shorter returns ErrTooShort (default 8).
	MinIntervals int
	// ElbowGain is the k-selection threshold: growing k by one must
	// reduce within-cluster variance by at least this fraction of the
	// total variance, or the smaller k wins (default 0.12).
	ElbowGain float64
	// WindowWarmupInstrs is the detailed-warmup run-in simulated before
	// each representative window to refill caches and the branch
	// predictor after a skip (default: one interval width).
	WindowWarmupInstrs uint64
}

func (o Options) withDefaults() Options {
	if o.MaxPhases <= 0 {
		o.MaxPhases = 6
	}
	if o.Components <= 0 {
		o.Components = 3
	}
	if o.Components > featureDim {
		o.Components = featureDim
	}
	if o.MinIntervals <= 0 {
		o.MinIntervals = 8
	}
	if o.ElbowGain <= 0 {
		o.ElbowGain = 0.12
	}
	return o
}

// Window is one representative simulation window, in ROI-relative
// instruction offsets ([Start, End) with Start counted from the first
// profiled instruction).
type Window struct {
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Phase is the cluster this window represents.
	Phase int `json:"phase"`
	// CoverInstrs is the total instruction mass of the phase; the
	// window's measured deltas are scaled by CoverInstrs/(End-Start)
	// during extrapolation.
	CoverInstrs uint64 `json:"cover_instrs"`
}

// Bounds are per-metric self-consistency error bounds: the
// cluster-weighted worst within-cluster deviation from each
// representative, i.e. the largest error the extrapolation could make
// if every member behaved like its phase's worst outlier. IPC and
// LLC MPKI bounds are relative to the series mean; the trigger-rate
// bound is absolute (the audited quantity is itself a probability).
type Bounds struct {
	IPCRel         float64 `json:"ipc_rel"`
	LLCMPKIRel     float64 `json:"llc_mpki_rel"`
	TriggerRateAbs float64 `json:"trigger_rate_abs"`
}

// Plan is a phase model plus the sampling schedule derived from it.
type Plan struct {
	// Every is the profiled series' nominal interval width.
	Every uint64 `json:"every"`
	// Phases is the selected cluster count; Intervals the series length.
	Phases    int `json:"phases"`
	Intervals int `json:"intervals"`
	// WarmupInstrs is the per-window detailed warmup.
	WarmupInstrs uint64 `json:"warmup_instrs"`
	// Windows holds one representative window per phase, sorted by
	// Start so a sampled run visits them in a single forward pass.
	Windows []Window `json:"windows"`
	Bounds  Bounds   `json:"bounds"`
}

// TotalCover sums the instruction mass the plan's windows represent.
func (p *Plan) TotalCover() uint64 {
	var n uint64
	for _, w := range p.Windows {
		n += w.CoverInstrs
	}
	return n
}

// SimInstrs is the detailed-simulation budget a sampled run pays:
// per-window warmup plus the windows themselves.
func (p *Plan) SimInstrs() uint64 {
	var n uint64
	for _, w := range p.Windows {
		n += p.WarmupInstrs + (w.End - w.Start)
	}
	return n
}

func (p *Plan) String() string {
	return fmt.Sprintf("phase plan: %d phases over %d intervals, %d windows, %d/%d instrs detailed (bounds: IPC ±%.1f%%, LLC MPKI ±%.1f%%, trigger rate ±%.4f)",
		p.Phases, p.Intervals, len(p.Windows), p.SimInstrs(), p.TotalCover(),
		p.Bounds.IPCRel*100, p.Bounds.LLCMPKIRel*100, p.Bounds.TriggerRateAbs)
}

// interval is the clusterer's working view of one telemetry interval.
type interval struct {
	start, end uint64 // ROI-relative
	feat       [featureDim]float64
	proj       []float64 // PCA projection
	cluster    int
}

// Analyze clusters the series into phases and returns a sampling plan.
// seed makes the (k-means++ and PCA initialisation) randomness
// deterministic; pass the run config's seed so plans are reproducible
// alongside everything else.
func Analyze(s *telemetry.Series, opt Options, seed uint64) (*Plan, error) {
	opt = opt.withDefaults()
	if s == nil || len(s.Intervals) < opt.MinIntervals {
		n := 0
		if s != nil {
			n = len(s.Intervals)
		}
		return nil, fmt.Errorf("%w: %d intervals, need %d", ErrTooShort, n, opt.MinIntervals)
	}

	// The series records absolute instruction counts; windows are
	// ROI-relative so the executor can reuse them from a different
	// stream position.
	roiBase := s.Intervals[0].EndInstrs - s.Intervals[0].Instrs
	ivs := make([]interval, 0, len(s.Intervals))
	for i := range s.Intervals {
		iv := &s.Intervals[i]
		if iv.Instrs == 0 {
			continue // degenerate double-boundary sample; nothing to represent
		}
		ivs = append(ivs, interval{
			start: iv.EndInstrs - iv.Instrs - roiBase,
			end:   iv.EndInstrs - roiBase,
			feat: [featureDim]float64{
				iv.IPC, iv.L1DMPKI, iv.L2MPKI, iv.LLCMPKI,
				iv.LLCOccupancyFrac, iv.TriggerRate(),
			},
		})
	}
	if len(ivs) < opt.MinIntervals {
		return nil, fmt.Errorf("%w: %d non-empty intervals, need %d", ErrTooShort, len(ivs), opt.MinIntervals)
	}

	normalize(ivs)
	pcg := rng.New(seed, 0x9e3779b97f4a7c15)
	project(ivs, opt.Components, pcg)
	k := selectK(ivs, opt, pcg)
	assign := kmeans(ivs, k, pcg)

	plan := &Plan{
		Every:        s.Every,
		Phases:       k,
		Intervals:    len(ivs),
		WarmupInstrs: opt.WindowWarmupInstrs,
	}
	if plan.WarmupInstrs == 0 {
		plan.WarmupInstrs = s.Every
	}

	for c := 0; c < k; c++ {
		rep, cover := representative(ivs, assign, c)
		if rep < 0 {
			continue // empty cluster (k-means reseeding keeps these rare)
		}
		plan.Windows = append(plan.Windows, Window{
			Start:       ivs[rep].start,
			End:         ivs[rep].end,
			Phase:       c,
			CoverInstrs: cover,
		})
	}
	sort.Slice(plan.Windows, func(i, j int) bool { return plan.Windows[i].Start < plan.Windows[j].Start })
	plan.Bounds = bounds(s, ivs, assign, plan)
	return plan, nil
}

// normalize z-scores each feature dimension in place. A zero-variance
// dimension collapses to an all-zero column, dropping out of every
// distance computation.
func normalize(ivs []interval) {
	n := float64(len(ivs))
	for d := 0; d < featureDim; d++ {
		var mean float64
		for i := range ivs {
			mean += ivs[i].feat[d]
		}
		mean /= n
		var varsum float64
		for i := range ivs {
			dv := ivs[i].feat[d] - mean
			varsum += dv * dv
		}
		std := math.Sqrt(varsum / n)
		for i := range ivs {
			if std > 1e-12 {
				ivs[i].feat[d] = (ivs[i].feat[d] - mean) / std
			} else {
				ivs[i].feat[d] = 0
			}
		}
	}
}

// project reduces the normalized features to the top `comps` principal
// components via power iteration with deflation on the (at most 6×6)
// covariance matrix — exact eigensolvers are overkill at this size and
// the stdlib has none.
func project(ivs []interval, comps int, pcg *rng.PCG) {
	n := float64(len(ivs))
	var cov [featureDim][featureDim]float64
	for i := range ivs {
		for a := 0; a < featureDim; a++ {
			for b := a; b < featureDim; b++ {
				cov[a][b] += ivs[i].feat[a] * ivs[i].feat[b]
			}
		}
	}
	var trace float64
	for a := 0; a < featureDim; a++ {
		for b := a; b < featureDim; b++ {
			cov[a][b] /= n
			cov[b][a] = cov[a][b]
		}
		trace += cov[a][a]
	}

	var basis [][featureDim]float64
	for c := 0; c < comps; c++ {
		v, lam := powerIterate(&cov, pcg)
		// Stop early when the residual variance is numerically gone;
		// further components would be noise directions.
		if lam < 1e-9*trace || lam <= 0 {
			break
		}
		basis = append(basis, v)
		for a := 0; a < featureDim; a++ {
			for b := 0; b < featureDim; b++ {
				cov[a][b] -= lam * v[a] * v[b]
			}
		}
	}
	if len(basis) == 0 {
		// Constant features: every interval projects to the origin and
		// k-means will find a single phase, which is correct.
		basis = append(basis, [featureDim]float64{1})
	}
	for i := range ivs {
		p := make([]float64, len(basis))
		for c, v := range basis {
			var dot float64
			for d := 0; d < featureDim; d++ {
				dot += ivs[i].feat[d] * v[d]
			}
			p[c] = dot
		}
		ivs[i].proj = p
	}
}

// powerIterate returns the dominant eigenvector/value of cov.
func powerIterate(cov *[featureDim][featureDim]float64, pcg *rng.PCG) ([featureDim]float64, float64) {
	var v [featureDim]float64
	for d := range v {
		v[d] = pcg.Float64()*2 - 1
	}
	normVec(&v)
	var lam float64
	for it := 0; it < 200; it++ {
		var w [featureDim]float64
		for a := 0; a < featureDim; a++ {
			for b := 0; b < featureDim; b++ {
				w[a] += cov[a][b] * v[b]
			}
		}
		next := normVec(&w)
		var drift float64
		for d := range v {
			drift += (w[d] - v[d]) * (w[d] - v[d])
		}
		v = w
		lam = next
		if drift < 1e-18 {
			break
		}
	}
	return v, lam
}

func normVec(v *[featureDim]float64) float64 {
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm > 0 {
		for d := range v {
			v[d] /= norm
		}
	}
	return norm
}

// selectK picks the cluster count by the elbow rule: the smallest k
// whose successor fails to cut within-cluster variance by
// opt.ElbowGain of the total, capped at MaxPhases (and at the interval
// count).
func selectK(ivs []interval, opt Options, pcg *rng.PCG) int {
	maxK := opt.MaxPhases
	if maxK > len(ivs) {
		maxK = len(ivs)
	}
	prev := wcss(ivs, kmeans(ivs, 1, pcg))
	total := prev
	if total <= 1e-12 {
		return 1 // all intervals identical in feature space
	}
	for k := 2; k <= maxK; k++ {
		cur := wcss(ivs, kmeans(ivs, k, pcg))
		if (prev-cur)/total < opt.ElbowGain {
			return k - 1
		}
		prev = cur
	}
	return maxK
}

// kmeans runs seeded k-means++ followed by Lloyd iterations and
// returns the per-interval cluster assignment.
func kmeans(ivs []interval, k int, pcg *rng.PCG) []int {
	dim := len(ivs[0].proj)
	cents := make([][]float64, k)

	// k-means++: first centroid uniform, the rest D²-weighted.
	first := int(pcg.Uint64N(uint64(len(ivs))))
	cents[0] = append([]float64(nil), ivs[first].proj...)
	d2 := make([]float64, len(ivs))
	for c := 1; c < k; c++ {
		var sum float64
		for i := range ivs {
			best := math.Inf(1)
			for _, ct := range cents[:c] {
				if d := dist2(ivs[i].proj, ct); d < best {
					best = d
				}
			}
			d2[i] = best
			sum += best
		}
		pick := first
		if sum > 0 {
			r := pcg.Float64() * sum
			for i := range d2 {
				r -= d2[i]
				if r <= 0 {
					pick = i
					break
				}
			}
		} else {
			pick = int(pcg.Uint64N(uint64(len(ivs))))
		}
		cents[c] = append([]float64(nil), ivs[pick].proj...)
	}

	assign := make([]int, len(ivs))
	counts := make([]int, k)
	for it := 0; it < 64; it++ {
		changed := false
		for i := range ivs {
			best, bestD := 0, math.Inf(1)
			for c := range cents {
				if d := dist2(ivs[i].proj, cents[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || it == 0 {
				changed = changed || assign[i] != best
				assign[i] = best
			}
		}
		if it > 0 && !changed {
			break
		}
		for c := range cents {
			for d := 0; d < dim; d++ {
				cents[c][d] = 0
			}
			counts[c] = 0
		}
		for i := range ivs {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				cents[c][d] += ivs[i].proj[d]
			}
		}
		for c := range cents {
			if counts[c] == 0 {
				// Empty cluster: reseed it on the point farthest from
				// its assigned centroid so k stays honest.
				far, farD := 0, -1.0
				for i := range ivs {
					if d := dist2(ivs[i].proj, cents[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(cents[c], ivs[far].proj)
				continue
			}
			for d := 0; d < dim; d++ {
				cents[c][d] /= float64(counts[c])
			}
		}
	}
	return assign
}

func dist2(a, b []float64) float64 {
	var s float64
	for d := range a {
		dv := a[d] - b[d]
		s += dv * dv
	}
	return s
}

// wcss is the within-cluster sum of squares for an assignment.
func wcss(ivs []interval, assign []int) float64 {
	k := 0
	for _, c := range assign {
		if c >= k {
			k = c + 1
		}
	}
	dim := len(ivs[0].proj)
	cents := make([][]float64, k)
	counts := make([]int, k)
	for c := range cents {
		cents[c] = make([]float64, dim)
	}
	for i := range ivs {
		c := assign[i]
		counts[c]++
		for d := 0; d < dim; d++ {
			cents[c][d] += ivs[i].proj[d]
		}
	}
	for c := range cents {
		if counts[c] == 0 {
			continue
		}
		for d := 0; d < dim; d++ {
			cents[c][d] /= float64(counts[c])
		}
	}
	var s float64
	for i := range ivs {
		s += dist2(ivs[i].proj, cents[assign[i]])
	}
	return s
}

// representative elects cluster c's member closest to its centroid and
// returns it with the cluster's total instruction mass.
func representative(ivs []interval, assign []int, c int) (int, uint64) {
	dim := len(ivs[0].proj)
	cent := make([]float64, dim)
	var cover uint64
	n := 0
	for i := range ivs {
		if assign[i] != c {
			continue
		}
		n++
		cover += ivs[i].end - ivs[i].start
		for d := 0; d < dim; d++ {
			cent[d] += ivs[i].proj[d]
		}
	}
	if n == 0 {
		return -1, 0
	}
	for d := 0; d < dim; d++ {
		cent[d] /= float64(n)
	}
	best, bestD := -1, math.Inf(1)
	for i := range ivs {
		if assign[i] != c {
			continue
		}
		if d := dist2(ivs[i].proj, cent); d < bestD {
			best, bestD = i, d
		}
	}
	return best, cover
}

// bounds computes the plan's per-metric self-consistency error bounds:
// for each phase, the worst absolute deviation of any member from the
// representative, combined coverage-weighted across phases. This is an
// upper bound on the error of extrapolating the profile series itself
// from its representatives; applying it across sweep points carries
// the usual SimPoint assumption that phase structure is shared.
func bounds(s *telemetry.Series, ivs []interval, assign []int, plan *Plan) Bounds {
	repOf := make(map[int]int) // phase -> ivs index of representative
	for _, w := range plan.Windows {
		for i := range ivs {
			if assign[i] == w.Phase && ivs[i].start == w.Start && ivs[i].end == w.End {
				repOf[w.Phase] = i
				break
			}
		}
	}
	// Recover the raw (unnormalized) metric values by interval order:
	// ivs was built from s.Intervals skipping zero-width entries.
	raw := make([][3]float64, 0, len(ivs))
	var meanIPC, meanMPKI float64
	for i := range s.Intervals {
		iv := &s.Intervals[i]
		if iv.Instrs == 0 {
			continue
		}
		raw = append(raw, [3]float64{iv.IPC, iv.LLCMPKI, iv.TriggerRate()})
		meanIPC += iv.IPC
		meanMPKI += iv.LLCMPKI
	}
	meanIPC /= float64(len(raw))
	meanMPKI /= float64(len(raw))

	total := plan.TotalCover()
	if total == 0 {
		return Bounds{}
	}
	var b Bounds
	for _, w := range plan.Windows {
		ri, ok := repOf[w.Phase]
		if !ok {
			continue
		}
		var devIPC, devMPKI, devTrig float64
		for i := range ivs {
			if assign[i] != w.Phase {
				continue
			}
			if d := math.Abs(raw[i][0] - raw[ri][0]); d > devIPC {
				devIPC = d
			}
			if d := math.Abs(raw[i][1] - raw[ri][1]); d > devMPKI {
				devMPKI = d
			}
			if d := math.Abs(raw[i][2] - raw[ri][2]); d > devTrig {
				devTrig = d
			}
		}
		wf := float64(w.CoverInstrs) / float64(total)
		b.IPCRel += wf * devIPC
		b.LLCMPKIRel += wf * devMPKI
		b.TriggerRateAbs += wf * devTrig
	}
	if meanIPC > 0 {
		b.IPCRel /= meanIPC
	}
	if meanMPKI > 0 {
		b.LLCMPKIRel /= meanMPKI
	}
	return b
}
