package branch

import (
	"math/rand/v2"
	"testing"
)

func TestNewUnknown(t *testing.T) {
	if _, err := New("tage"); err == nil {
		t.Fatal("unknown predictor accepted")
	}
}

func TestNamesConstructible(t *testing.T) {
	for _, n := range Names() {
		p := MustNew(n)
		if p.Name() != n {
			t.Errorf("%q reports name %q", n, p.Name())
		}
	}
}

// accuracy trains p on a branch stream produced by gen and returns the
// fraction predicted correctly over the second half (post warm-up).
func accuracy(p Predictor, n int, gen func(i int, history uint64) (pc uint64, taken bool)) float64 {
	var history uint64
	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		pc, taken := gen(i, history)
		pred := p.Predict(pc)
		p.Update(pc, taken)
		if i >= n/2 {
			counted++
			if pred == taken {
				correct++
			}
		}
		history = history<<1 | b2u(taken)
	}
	return float64(correct) / float64(counted)
}

func TestAllLearnStronglyBiasedBranch(t *testing.T) {
	for _, n := range Names() {
		p := MustNew(n)
		acc := accuracy(p, 10_000, func(i int, _ uint64) (uint64, bool) {
			return 0x400000 + uint64(i%16)*4, true
		})
		if acc < 0.99 {
			t.Errorf("%s: accuracy %.3f on always-taken branches", n, acc)
		}
	}
}

func TestAllLearnLoopExits(t *testing.T) {
	// Taken 7 of 8 times: simple counters reach ~7/8; history-based
	// predictors can learn the exit exactly.
	for _, n := range Names() {
		p := MustNew(n)
		acc := accuracy(p, 20_000, func(i int, _ uint64) (uint64, bool) {
			return 0x400100, i%8 != 7
		})
		if acc < 0.8 {
			t.Errorf("%s: accuracy %.3f on a loop branch", n, acc)
		}
	}
}

func TestHistoryPredictorsBeatBimodalOnCorrelation(t *testing.T) {
	// A period-6 direction pattern with no overall bias a 2-bit counter
	// can exploit, but perfectly determined by recent history.
	pattern := []bool{true, true, false, true, false, false}
	gen := func(i int, _ uint64) (uint64, bool) {
		return 0x400200, pattern[i%len(pattern)]
	}
	scores := map[string]float64{}
	for _, n := range Names() {
		scores[n] = accuracy(MustNew(n), 30_000, gen)
	}
	for _, n := range []string{"gshare", "perceptron", "hashed-perceptron"} {
		if scores[n] < scores["bimodal"]+0.05 {
			t.Errorf("%s (%.3f) does not beat bimodal (%.3f) on correlated branches",
				n, scores[n], scores["bimodal"])
		}
	}
}

func TestPredictorsOnRandomStreamStayNearHalf(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range Names() {
		p := MustNew(n)
		acc := accuracy(p, 20_000, func(i int, _ uint64) (uint64, bool) {
			return 0x400300 + uint64(rng.IntN(64))*4, rng.IntN(2) == 0
		})
		if acc < 0.4 || acc > 0.6 {
			t.Errorf("%s: accuracy %.3f on random branches, want ≈0.5", n, acc)
		}
	}
}

func TestAliasingDoesNotCrash(t *testing.T) {
	// Hammer each predictor with thousands of distinct PCs to exercise
	// table index wrapping and weight saturation.
	rng := rand.New(rand.NewPCG(2, 2))
	for _, n := range Names() {
		p := MustNew(n)
		for i := 0; i < 100_000; i++ {
			pc := rng.Uint64()
			pred := p.Predict(pc)
			p.Update(pc, rng.IntN(2) == 0)
			_ = pred
		}
	}
}

func TestSaturate2Bounds(t *testing.T) {
	c := int8(0)
	for i := 0; i < 10; i++ {
		c = saturate2(c, true)
	}
	if c != 1 {
		t.Fatalf("counter saturated at %d, want 1", c)
	}
	for i := 0; i < 10; i++ {
		c = saturate2(c, false)
	}
	if c != -2 {
		t.Fatalf("counter saturated at %d, want -2", c)
	}
}

func TestPerceptronWeightsSaturate(t *testing.T) {
	p := NewPerceptron(4, 8)
	for i := 0; i < 100_000; i++ {
		p.Predict(0x1234)
		p.Update(0x1234, true)
	}
	for _, w := range p.weights {
		for _, v := range w {
			if v > 127 || v < -127 {
				t.Fatalf("weight %d escaped saturation bounds", v)
			}
		}
	}
}
