// Package branch implements the four branch predictors the PInTE case
// study evaluates: bimodal, GShare, perceptron and hashed perceptron.
package branch

import "fmt"

// Predictor guesses conditional branch directions. Predict returns the
// guess for pc; Update trains with the resolved outcome. Implementations
// keep their own history registers.
type Predictor interface {
	Name() string
	Predict(pc uint64) bool
	Update(pc uint64, taken bool)
}

// Names lists the available predictors in the paper's order.
func Names() []string {
	return []string{"bimodal", "gshare", "perceptron", "hashed-perceptron"}
}

// New builds a predictor by name.
func New(name string) (Predictor, error) {
	switch name {
	case "bimodal":
		return NewBimodal(14), nil
	case "gshare":
		return NewGShare(16), nil
	case "perceptron":
		return NewPerceptron(10, 24), nil
	case "hashed-perceptron":
		return NewHashedPerceptron(), nil
	}
	return nil, fmt.Errorf("branch: unknown predictor %q", name)
}

// MustNew is New that panics on unknown names.
func MustNew(name string) Predictor {
	p, err := New(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Bimodal is a table of 2-bit saturating counters indexed by PC.
type Bimodal struct {
	counters []int8
	mask     uint64
}

// NewBimodal builds a bimodal predictor with 2^bits counters.
func NewBimodal(bits uint) *Bimodal {
	n := 1 << bits
	return &Bimodal{counters: make([]int8, n), mask: uint64(n - 1)}
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

func (b *Bimodal) idx(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.counters[b.idx(pc)] >= 0 }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	c := &b.counters[b.idx(pc)]
	*c = saturate2(*c, taken)
}

// saturate2 updates a 2-bit counter stored in [-2, 1].
func saturate2(c int8, taken bool) int8 {
	if taken {
		if c < 1 {
			c++
		}
	} else if c > -2 {
		c--
	}
	return c
}

// GShare XORs a global history register with the PC to index a table of
// 2-bit counters.
type GShare struct {
	counters []int8
	mask     uint64
	history  uint64
	histBits uint
}

// NewGShare builds a GShare predictor with 2^bits counters and bits of
// global history.
func NewGShare(bits uint) *GShare {
	n := 1 << bits
	return &GShare{counters: make([]int8, n), mask: uint64(n - 1), histBits: bits}
}

// Name implements Predictor.
func (g *GShare) Name() string { return "gshare" }

func (g *GShare) idx(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *GShare) Predict(pc uint64) bool { return g.counters[g.idx(pc)] >= 0 }

// Update implements Predictor.
func (g *GShare) Update(pc uint64, taken bool) {
	c := &g.counters[g.idx(pc)]
	*c = saturate2(*c, taken)
	g.history = (g.history<<1 | b2u(taken)) & g.mask
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Perceptron is Jiménez & Lin's perceptron predictor: one weight vector
// per PC hash, dot-producted with the global history.
type Perceptron struct {
	weights  [][]int16 // [entry][histLen+1], index 0 is the bias
	history  []int8    // +1 taken, -1 not taken
	mask     uint64
	histLen  int
	theta    int32
	lastSum  int32
	lastPred bool
}

// NewPerceptron builds a perceptron predictor with 2^indexBits entries
// and histLen bits of history.
func NewPerceptron(indexBits uint, histLen int) *Perceptron {
	n := 1 << indexBits
	w := make([][]int16, n)
	for i := range w {
		w[i] = make([]int16, histLen+1)
	}
	return &Perceptron{
		weights: w,
		history: make([]int8, histLen),
		mask:    uint64(n - 1),
		histLen: histLen,
		// The classic threshold heuristic from the HPCA'01 paper.
		theta: int32(1.93*float64(histLen) + 14),
	}
}

// Name implements Predictor.
func (p *Perceptron) Name() string { return "perceptron" }

func (p *Perceptron) idx(pc uint64) uint64 { return (pc >> 2) & p.mask }

// Predict implements Predictor.
func (p *Perceptron) Predict(pc uint64) bool {
	w := p.weights[p.idx(pc)]
	sum := int32(w[0])
	for i := 0; i < p.histLen; i++ {
		sum += int32(w[i+1]) * int32(p.history[i])
	}
	p.lastSum = sum
	p.lastPred = sum >= 0
	return p.lastPred
}

// Update implements Predictor. It must be called after Predict for the
// same branch (the simulator's per-instruction flow guarantees this).
func (p *Perceptron) Update(pc uint64, taken bool) {
	t := int32(-1)
	if taken {
		t = 1
	}
	if p.lastPred != taken || abs32(p.lastSum) <= p.theta {
		w := p.weights[p.idx(pc)]
		w[0] = satW(w[0], t)
		for i := 0; i < p.histLen; i++ {
			w[i+1] = satW(w[i+1], t*int32(p.history[i]))
		}
	}
	copy(p.history[1:], p.history[:p.histLen-1])
	if taken {
		p.history[0] = 1
	} else {
		p.history[0] = -1
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func satW(w int16, delta int32) int16 {
	v := int32(w) + delta
	const lim = 127
	if v > lim {
		v = lim
	}
	if v < -lim {
		v = -lim
	}
	return int16(v)
}

// HashedPerceptron sums small weight tables indexed by hashes of the PC
// with geometric history lengths — the organisation used by production
// predictors and by ChampSim's "hashed perceptron" baseline.
type HashedPerceptron struct {
	// tables holds the per-history-length weight tables flattened into
	// one slice (table t occupies tables[t<<indexBits:(t+1)<<indexBits]):
	// the predict/update loops then walk a single backing array instead
	// of chasing one slice header per table.
	tables   []int16
	lens     []int
	history  uint64 // packed global history, newest bit 0
	mask     uint64
	theta    int32
	lastSum  int32
	lastPred bool
	lastIdx  []uint64 // flat indices into tables
}

const hpIndexBits = 12

// NewHashedPerceptron builds the default 8-table configuration with
// history lengths 0..64.
func NewHashedPerceptron() *HashedPerceptron {
	lens := []int{0, 2, 4, 8, 16, 24, 32, 64}
	n := 1 << hpIndexBits
	return &HashedPerceptron{
		tables:  make([]int16, len(lens)*n),
		lens:    lens,
		mask:    uint64(n - 1),
		theta:   int32(1.93*float64(len(lens)) + 14),
		lastIdx: make([]uint64, len(lens)),
	}
}

// Name implements Predictor.
func (h *HashedPerceptron) Name() string { return "hashed-perceptron" }

func (h *HashedPerceptron) indexFor(pc uint64, t int) uint64 {
	hl := h.lens[t]
	hist := h.history
	if hl < 64 {
		hist &= 1<<uint(hl) - 1
	}
	x := pc>>2 ^ hist*0x9e3779b97f4a7c15 ^ uint64(t)<<57
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x & h.mask
}

// Predict implements Predictor.
func (h *HashedPerceptron) Predict(pc uint64) bool {
	sum := int32(0)
	for t := range h.lens {
		idx := uint64(t)<<hpIndexBits | h.indexFor(pc, t)
		h.lastIdx[t] = idx
		sum += int32(h.tables[idx])
	}
	h.lastSum = sum
	h.lastPred = sum >= 0
	return h.lastPred
}

// Update implements Predictor; call after Predict for the same branch.
func (h *HashedPerceptron) Update(pc uint64, taken bool) {
	if h.lastPred != taken || abs32(h.lastSum) <= h.theta {
		delta := int32(-1)
		if taken {
			delta = 1
		}
		for _, idx := range h.lastIdx {
			w := &h.tables[idx]
			*w = satW(*w, delta)
		}
	}
	h.history = h.history<<1 | b2u(taken)
}
