// Package prefetch implements the hardware prefetchers the PInTE case
// study permutes: next-line prefetching (available at L1 and L2) and an
// IP-stride prefetcher (L2). Configurations are named with the paper's
// three-character string over {L1I, L1D, L2}: "000", "NN0", "NNN", "NNI".
package prefetch

import "fmt"

// Prefetcher observes demand accesses at one cache level and proposes
// prefetch addresses. Implementations append candidate block-aligned
// addresses to out and return the extended slice.
type Prefetcher interface {
	Name() string
	OnAccess(pc, addr uint64, miss bool, out []uint64) []uint64
}

// None is the absent prefetcher.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// OnAccess implements Prefetcher.
func (None) OnAccess(pc, addr uint64, miss bool, out []uint64) []uint64 { return out }

// NextLine prefetches the next sequential block on every demand miss and
// every first-touch of a prefetched block.
type NextLine struct {
	// Degree is how many sequential blocks to prefetch; 0 means 1.
	Degree int
}

// Name implements Prefetcher.
func (p *NextLine) Name() string { return "next-line" }

// OnAccess implements Prefetcher.
func (p *NextLine) OnAccess(pc, addr uint64, miss bool, out []uint64) []uint64 {
	if !miss {
		return out
	}
	deg := p.Degree
	if deg == 0 {
		deg = 1
	}
	blk := addr &^ uint64(63)
	for i := 1; i <= deg; i++ {
		out = append(out, blk+uint64(i)*64)
	}
	return out
}

// IPStride tracks per-PC strides and prefetches ahead once a stride has
// been confirmed twice (the classic confidence-2 stride table).
type IPStride struct {
	// Entries is the table size (power of two); 0 means 1024.
	Entries int
	// Degree is how many strides ahead to prefetch; 0 means 2.
	Degree int

	table []ipEntry
}

type ipEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     int8
}

// Name implements Prefetcher.
func (p *IPStride) Name() string { return "ip-stride" }

func (p *IPStride) init() {
	if p.table != nil {
		return
	}
	n := p.Entries
	if n == 0 {
		n = 1024
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("prefetch: IPStride entries %d not a power of two", n))
	}
	p.table = make([]ipEntry, n)
}

// OnAccess implements Prefetcher.
func (p *IPStride) OnAccess(pc, addr uint64, miss bool, out []uint64) []uint64 {
	p.init()
	e := &p.table[(pc>>2)&uint64(len(p.table)-1)]
	if e.pc != pc {
		*e = ipEntry{pc: pc, lastAddr: addr}
		return out
	}
	stride := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	if stride == 0 {
		return out
	}
	if stride == e.stride {
		if e.conf < 2 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
		return out
	}
	if e.conf < 2 {
		return out
	}
	deg := p.Degree
	if deg == 0 {
		deg = 2
	}
	next := int64(addr)
	for i := 0; i < deg; i++ {
		next += stride
		if next <= 0 {
			break
		}
		out = append(out, uint64(next)&^uint64(63))
	}
	return out
}

// Config names a prefetcher permutation using the paper's L1I/L1D/L2
// string: '0' = none, 'N' = next line, 'I' = IP stride.
type Config struct {
	Code string // "000", "NN0", "NNN", "NNI"
}

// Configs lists the four permutations the case study evaluates.
func Configs() []string { return []string{"000", "NN0", "NNN", "NNI"} }

// Build returns fresh prefetcher instances for the L1I, L1D and L2
// positions of code.
func Build(code string) (l1i, l1d, l2 Prefetcher, err error) {
	if len(code) != 3 {
		return nil, nil, nil, fmt.Errorf("prefetch: config %q must have 3 characters", code)
	}
	mk := func(c byte) (Prefetcher, error) {
		switch c {
		case '0':
			return None{}, nil
		case 'N':
			return &NextLine{}, nil
		case 'I':
			return &IPStride{}, nil
		}
		return nil, fmt.Errorf("prefetch: unknown prefetcher code %q", string(c))
	}
	if l1i, err = mk(code[0]); err != nil {
		return nil, nil, nil, err
	}
	if l1d, err = mk(code[1]); err != nil {
		return nil, nil, nil, err
	}
	if l2, err = mk(code[2]); err != nil {
		return nil, nil, nil, err
	}
	return l1i, l1d, l2, nil
}
