package prefetch

import "testing"

func TestNextLineOnMissOnly(t *testing.T) {
	p := &NextLine{}
	if out := p.OnAccess(0x40, 0x1000, false, nil); len(out) != 0 {
		t.Fatalf("next-line prefetched on a hit: %v", out)
	}
	out := p.OnAccess(0x40, 0x1000, true, nil)
	if len(out) != 1 || out[0] != 0x1040 {
		t.Fatalf("next-line candidates = %#v, want [0x1040]", out)
	}
}

func TestNextLineDegree(t *testing.T) {
	p := &NextLine{Degree: 3}
	out := p.OnAccess(0x40, 0x2008, true, nil)
	want := []uint64{0x2040, 0x2080, 0x20c0}
	if len(out) != len(want) {
		t.Fatalf("got %d candidates, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("candidate %d = %#x, want %#x", i, out[i], want[i])
		}
	}
}

func TestIPStrideNeedsConfidence(t *testing.T) {
	p := &IPStride{}
	pc := uint64(0x400)
	// First access: allocate entry. Second: stride observed, conf 0.
	// Third: conf 1. Fourth: conf 2 → prefetch.
	addrs := []uint64{0x1000, 0x1100, 0x1200, 0x1300}
	var out []uint64
	for i, a := range addrs {
		out = p.OnAccess(pc, a, true, nil)
		if i < 3 && len(out) != 0 {
			t.Fatalf("prefetched at access %d before confidence: %v", i, out)
		}
	}
	if len(out) != 2 {
		t.Fatalf("confident stride issued %d candidates, want 2", len(out))
	}
	if out[0] != 0x1400 || out[1] != 0x1500 {
		t.Fatalf("candidates = %#v, want [0x1400 0x1500]", out)
	}
}

func TestIPStrideResetsOnStrideChange(t *testing.T) {
	p := &IPStride{}
	pc := uint64(0x404)
	for _, a := range []uint64{0x1000, 0x1100, 0x1200, 0x1300} {
		p.OnAccess(pc, a, true, nil)
	}
	// Break the stride: confidence must reset.
	if out := p.OnAccess(pc, 0x9000, true, nil); len(out) != 0 {
		t.Fatalf("prefetched across a stride break: %v", out)
	}
	if out := p.OnAccess(pc, 0x9100, true, nil); len(out) != 0 {
		t.Fatal("prefetched with conf 0 after reset")
	}
}

func TestIPStrideNegativeStride(t *testing.T) {
	p := &IPStride{}
	pc := uint64(0x408)
	var out []uint64
	for _, a := range []uint64{0x5000, 0x4f00, 0x4e00, 0x4d00} {
		out = p.OnAccess(pc, a, true, nil)
	}
	if len(out) == 0 {
		t.Fatal("negative stride never prefetched")
	}
	if out[0] != 0x4c00&^uint64(63) {
		t.Fatalf("candidate = %#x, want %#x", out[0], uint64(0x4c00))
	}
}

func TestIPStrideDistinctPCs(t *testing.T) {
	p := &IPStride{}
	// Interleaved streams from two PCs must train independently.
	var outA, outB []uint64
	for i := 0; i < 4; i++ {
		outA = p.OnAccess(0x500, uint64(0x10000+i*0x80), true, nil)
		outB = p.OnAccess(0x600, uint64(0x20000+i*0x40), true, nil)
	}
	if len(outA) == 0 || len(outB) == 0 {
		t.Fatalf("interleaved streams not learned: %v / %v", outA, outB)
	}
}

func TestBuildConfigs(t *testing.T) {
	for _, code := range Configs() {
		l1i, l1d, l2, err := Build(code)
		if err != nil {
			t.Fatalf("%s: %v", code, err)
		}
		for i, p := range []Prefetcher{l1i, l1d, l2} {
			if p == nil {
				t.Fatalf("%s: position %d nil", code, i)
			}
		}
	}
	if _, _, _, err := Build("N"); err == nil {
		t.Error("short config accepted")
	}
	if _, _, _, err := Build("XXX"); err == nil {
		t.Error("unknown prefetcher code accepted")
	}
	// Spot-check wiring: NNI puts IP-stride at L2.
	_, _, l2, err := Build("NNI")
	if err != nil {
		t.Fatal(err)
	}
	if l2.Name() != "ip-stride" {
		t.Errorf("NNI L2 prefetcher = %s, want ip-stride", l2.Name())
	}
}

func TestNoneIsInert(t *testing.T) {
	var p None
	if out := p.OnAccess(0x40, 0x1000, true, nil); len(out) != 0 {
		t.Fatal("None prefetched")
	}
}
