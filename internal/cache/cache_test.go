package cache

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/replacement"
)

func smallCache(t *testing.T, cores int) *Cache {
	t.Helper()
	return MustNew(Config{
		Name:      "test",
		SizeBytes: 8 * 4 * BlockBytes, // 8 sets × 4 ways
		Ways:      4,
		Cores:     cores,
	})
}

func TestNewRejectsBadGeometry(t *testing.T) {
	bad := []Config{
		{Name: "zero", SizeBytes: 0, Ways: 4},
		{Name: "negways", SizeBytes: 4096, Ways: -1},
		{Name: "indivisible", SizeBytes: 5 * BlockBytes, Ways: 4},
		{Name: "nonpow2sets", SizeBytes: 3 * 4 * BlockBytes, Ways: 4},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", cfg.Name)
		}
	}
}

func TestLookupMissThenFillHits(t *testing.T) {
	c := smallCache(t, 1)
	addr := uint64(0x12340)
	if c.Lookup(addr, 0, false) {
		t.Fatal("hit on empty cache")
	}
	c.Fill(addr, 0, false, false)
	if !c.Lookup(addr, 0, false) {
		t.Fatal("miss after fill")
	}
	// Same block, different byte offset.
	if !c.Lookup(addr+63-(addr%64), 0, false) {
		t.Fatal("miss within the same block")
	}
	if c.Stats.Accesses[0] != 3 || c.Stats.Hits[0] != 2 || c.Stats.Misses[0] != 1 {
		t.Fatalf("stats = %d/%d/%d, want 3/2/1",
			c.Stats.Accesses[0], c.Stats.Hits[0], c.Stats.Misses[0])
	}
}

func TestWriteSetsDirtyAndWritebackCounted(t *testing.T) {
	c := smallCache(t, 1)
	// Fill one set completely with writes, then overflow it.
	base := uint64(0) // set 0
	setStride := uint64(8 * BlockBytes)
	for i := 0; i < 4; i++ {
		a := base + uint64(i)*setStride
		c.Lookup(a, 0, true)
		c.Fill(a, 0, true, false)
	}
	v := c.Fill(base+4*setStride, 0, false, false)
	if !v.Valid || !v.Dirty {
		t.Fatalf("victim = %+v, want valid dirty", v)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestTheftAccounting(t *testing.T) {
	c := smallCache(t, 2)
	setStride := uint64(8 * BlockBytes)
	// Core 0 fills set 0 fully; core 1 inserts one block there.
	for i := 0; i < 4; i++ {
		c.Fill(uint64(i)*setStride, 0, false, false)
	}
	v := c.Fill(4*setStride, 1, false, false)
	if !v.Theft {
		t.Fatal("inter-core eviction not flagged as theft")
	}
	if c.Stats.TheftsCaused[1] != 1 {
		t.Errorf("core1 thefts caused = %d, want 1", c.Stats.TheftsCaused[1])
	}
	if c.Stats.TheftsExperienced[0] != 1 {
		t.Errorf("core0 thefts experienced = %d, want 1", c.Stats.TheftsExperienced[0])
	}
	// Core 0 evicting its own block is not a theft.
	c.Fill(5*setStride, 0, false, false)
	if c.Stats.TheftsCaused[0] != 0 && c.Stats.TheftsExperienced[1] == 0 {
		t.Error("self-eviction miscounted as theft")
	}
}

// TestTheftConservation: thefts caused must equal thefts experienced in
// total (the CASHT bookkeeping identity), and occupancy must match the
// number of valid blocks.
func TestTheftConservationProperty(t *testing.T) {
	f := func(seed uint64, opsRaw []uint16) bool {
		c := MustNew(Config{
			Name:      "prop",
			SizeBytes: 8 * 4 * BlockBytes,
			Ways:      4,
			Cores:     2,
		})
		rng := rand.New(rand.NewPCG(seed, 1))
		for range opsRaw {
			addr := uint64(rng.IntN(64)) * BlockBytes
			core := rng.IntN(2)
			if !c.Lookup(addr, core, rng.IntN(4) == 0) {
				c.Fill(addr, core, false, false)
			}
		}
		var caused, experienced, occ uint64
		for i := 0; i < 2; i++ {
			caused += c.Stats.TheftsCaused[i]
			experienced += c.Stats.TheftsExperienced[i]
			occ += c.Stats.Occupancy[i]
		}
		return caused == experienced && occ == c.OccupiedBlocks() && occ <= c.CapacityBlocks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestNoDuplicateTags: a block address is never resident twice.
func TestNoDuplicateTagsProperty(t *testing.T) {
	c := smallCache(t, 1)
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 50_000; i++ {
		addr := uint64(rng.IntN(128)) * BlockBytes
		if !c.Lookup(addr, 0, false) {
			c.Fill(addr, 0, false, false)
		}
		if i%997 == 0 {
			// Count residency by probing: a hit after InvalidateAddr
			// would prove duplication.
			if c.Probe(addr) {
				c.InvalidateAddr(addr)
				if c.Probe(addr) {
					t.Fatalf("address %#x resident twice", addr)
				}
				c.Fill(addr, 0, false, false)
			}
		}
	}
}

func TestInvalidateAddr(t *testing.T) {
	c := smallCache(t, 1)
	addr := uint64(0x4000)
	c.Lookup(addr, 0, true)
	c.Fill(addr, 0, true, false)
	found, dirty := c.InvalidateAddr(addr)
	if !found || !dirty {
		t.Fatalf("InvalidateAddr = (%v, %v), want (true, true)", found, dirty)
	}
	if c.Probe(addr) {
		t.Fatal("block still present after invalidation")
	}
	if found, _ := c.InvalidateAddr(addr); found {
		t.Fatal("double invalidation reported found")
	}
	if c.Stats.Occupancy[0] != 0 {
		t.Fatalf("occupancy = %d, want 0", c.Stats.Occupancy[0])
	}
}

func TestExtractMovesDirtyBitWithoutWriteback(t *testing.T) {
	c := smallCache(t, 1)
	addr := uint64(0x8000)
	c.Fill(addr, 0, true, false)
	wb := c.Stats.Writebacks
	dirty, found := c.Extract(addr)
	if !found || !dirty {
		t.Fatalf("Extract = (%v, %v), want (true, true)", dirty, found)
	}
	if c.Stats.Writebacks != wb {
		t.Fatal("Extract counted a writeback")
	}
	if c.Probe(addr) {
		t.Fatal("block still present after extract")
	}
}

func TestPrefetchUsefulAccounting(t *testing.T) {
	c := smallCache(t, 1)
	addr := uint64(0xA000)
	c.Fill(addr, 0, false, true)
	if c.Stats.PrefetchFills != 1 {
		t.Fatalf("prefetch fills = %d, want 1", c.Stats.PrefetchFills)
	}
	c.Lookup(addr, 0, false)
	if c.Stats.PrefetchUseful != 1 {
		t.Fatalf("prefetch useful = %d, want 1", c.Stats.PrefetchUseful)
	}
	// Second hit must not double-count.
	c.Lookup(addr, 0, false)
	if c.Stats.PrefetchUseful != 1 {
		t.Fatal("prefetch usefulness double-counted")
	}
}

func TestReuseHistogramRecordsPositions(t *testing.T) {
	c := smallCache(t, 1)
	setStride := uint64(8 * BlockBytes)
	for i := 0; i < 4; i++ {
		c.Fill(uint64(i)*setStride, 0, false, false)
	}
	// Immediately re-touch the most recent block: position 0.
	c.Lookup(3*setStride, 0, false)
	if c.Stats.ReuseHist[0] != 1 {
		t.Fatalf("reuse hist = %v, want hit at position 0", c.Stats.ReuseHist)
	}
	// Touch the LRU block: position ways-1.
	c.Lookup(0, 0, false)
	if c.Stats.ReuseHist[3] != 1 {
		t.Fatalf("reuse hist = %v, want hit at position 3", c.Stats.ReuseHist)
	}
}

func TestSysInvalidateMechanics(t *testing.T) {
	c := smallCache(t, 1)
	addr := uint64(0x1000)
	c.Lookup(addr, 0, true)
	c.Fill(addr, 0, true, false)
	set := int((addr / BlockBytes) % 8)

	var wrote []uint64
	c.SetWritebackSink(func(a uint64) { wrote = append(wrote, a) })
	way := -1
	for w := 0; w < 4; w++ {
		if c.BlockValid(set, w) {
			way = w
			break
		}
	}
	if way < 0 {
		t.Fatal("no valid way found")
	}
	c.SysInvalidate(set, way)
	if c.Stats.InducedThefts[0] != 1 || c.Stats.TheftsExperienced[0] != 1 {
		t.Fatalf("induced theft not recorded: %+v", c.Stats)
	}
	if len(wrote) != 1 || wrote[0] != addr&^uint64(63) {
		t.Fatalf("dirty writeback sink got %v, want block of %#x", wrote, addr)
	}
	// Re-invalidating an empty slot is a no-op.
	c.SysInvalidate(set, way)
	if c.Stats.InducedThefts[0] != 1 {
		t.Fatal("SysInvalidate on invalid slot counted a theft")
	}
	// Next fill records a mock theft.
	c.Fill(addr, 0, false, false)
	if c.Stats.MockThefts[0] != 1 {
		t.Fatalf("mock thefts = %d, want 1", c.Stats.MockThefts[0])
	}
}

func TestResetStatsPreservesContents(t *testing.T) {
	c := smallCache(t, 2)
	addrs := []uint64{0x0, 0x4040, 0x8080}
	for i, a := range addrs {
		c.Fill(a, i%2, false, false)
	}
	c.ResetStats()
	for _, a := range addrs {
		if !c.Probe(a) {
			t.Fatalf("block %#x lost across ResetStats", a)
		}
	}
	if c.Stats.Occupancy[0]+c.Stats.Occupancy[1] != 3 {
		t.Fatalf("occupancy not rebuilt: %v", c.Stats.Occupancy)
	}
	if c.Stats.Accesses[0] != 0 {
		t.Fatal("access counters survived reset")
	}
}

func TestFillWithEachPolicy(t *testing.T) {
	for _, pol := range replacement.Names() {
		c := MustNew(Config{
			Name:      pol,
			SizeBytes: 4 * 4 * BlockBytes,
			Ways:      4,
			Policy:    replacement.MustNew(pol, 5),
			Cores:     1,
		})
		rng := rand.New(rand.NewPCG(6, 6))
		for i := 0; i < 20_000; i++ {
			addr := uint64(rng.IntN(256)) * BlockBytes
			if !c.Lookup(addr, 0, rng.IntN(5) == 0) {
				c.Fill(addr, 0, false, false)
			}
		}
		if c.OccupiedBlocks() != c.CapacityBlocks() {
			t.Errorf("%s: cache not full after heavy traffic: %d/%d",
				pol, c.OccupiedBlocks(), c.CapacityBlocks())
		}
	}
}

func TestFillExistingBlockUpdatesDirty(t *testing.T) {
	c := smallCache(t, 1)
	addr := uint64(0x2000)
	c.Fill(addr, 0, false, false)
	v := c.Fill(addr, 0, true, false) // writeback allocation over resident copy
	if v.Valid {
		t.Fatal("refill of resident block reported a victim")
	}
	// Evicting it now must count a writeback.
	c.InvalidateAddr(addr)
	// (dirty travels through InvalidateAddr's return, checked elsewhere)
}
