package cache

import "fmt"

// Way partitioning (Intel RDT / CAT style). A per-core way mask restricts
// which ways a core's fills may allocate into; hits are unrestricted, as
// on real hardware. The paper's §V-D real-system study uses RDT to cap
// the measured workloads at 10MB of the Xeon's 11MB LLC, and Eq 6
// measures occupancy against that cap; partitioning support makes the
// same cap expressible in the model (and enables C²AFE-style capacity
// curves).

// SetWayPartition restricts core's fills to the ways set in mask (bit w =
// way w). A zero mask removes the restriction. It returns an error if a
// mask bit exceeds the associativity or core is out of range.
func (c *Cache) SetWayPartition(core int, mask uint64) error {
	if core < 0 || core >= c.cfg.Cores {
		return fmt.Errorf("cache %s: partition core %d out of range", c.cfg.Name, core)
	}
	if mask>>uint(c.ways) != 0 {
		return fmt.Errorf("cache %s: partition mask %#x exceeds %d ways", c.cfg.Name, mask, c.ways)
	}
	if c.partition == nil {
		c.partition = make([]uint64, c.cfg.Cores)
	}
	c.partition[core] = mask
	return nil
}

// WayPartition returns core's current fill mask (0 = unrestricted).
func (c *Cache) WayPartition(core int) uint64 {
	if c.partition == nil {
		return 0
	}
	return c.partition[core]
}

// fillMask returns the effective way mask for a fill by core.
func (c *Cache) fillMask(core int) uint64 {
	full := uint64(1)<<uint(c.ways) - 1
	if c.partition == nil || core >= len(c.partition) || c.partition[core] == 0 {
		return full
	}
	return c.partition[core] & full
}

// victimWithin picks the eviction candidate among the masked ways: the
// way deepest in the replacement stack (for LRU this is exactly the LRU
// block of the partition; for the other policies it is their natural
// stack-depth approximation).
func (c *Cache) victimWithin(set int, mask uint64) int {
	best, bestPos := -1, -1
	for w := 0; w < c.ways; w++ {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		if pos := c.policy.HitPosition(set, w); pos > bestPos {
			best, bestPos = w, pos
		}
	}
	return best
}
