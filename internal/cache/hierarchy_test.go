package cache

import (
	"math/rand/v2"
	"testing"
)

// flatMemory is a fixed-latency Memory for hierarchy tests.
type flatMemory struct {
	latency uint64
	reads   int
	writes  int
}

func (m *flatMemory) Access(now, addr uint64, isWrite bool) uint64 {
	if isWrite {
		m.writes++
	} else {
		m.reads++
	}
	return m.latency
}

func tinyHierCfg(cores int, incl Inclusion) HierarchyConfig {
	return HierarchyConfig{
		Cores:     cores,
		L1I:       LevelConfig{SizeBytes: 1 << 10, Ways: 2, HitLatency: 4},
		L1D:       LevelConfig{SizeBytes: 1 << 10, Ways: 2, HitLatency: 4},
		L2:        LevelConfig{SizeBytes: 4 << 10, Ways: 4, HitLatency: 10},
		LLC:       LevelConfig{SizeBytes: 16 << 10, Ways: 8, HitLatency: 30},
		Inclusion: incl,
	}
}

func TestHierarchyLatencyLadder(t *testing.T) {
	mem := &flatMemory{latency: 160}
	h := MustNewHierarchy(tinyHierCfg(1, NonInclusive), mem)
	addr := uint64(0x100000)

	// Cold miss: L1 + L2 + LLC + DRAM.
	lat := h.Access(0, 0x40, addr, Load, 0)
	if want := uint64(4 + 10 + 30 + 160); lat != want {
		t.Fatalf("cold miss latency = %d, want %d", lat, want)
	}
	// Now resident everywhere: L1 hit.
	if lat := h.Access(0, 0x40, addr, Load, 10); lat != 4 {
		t.Fatalf("L1 hit latency = %d, want 4", lat)
	}
	// Evict from L1 by filling its set, then re-access: L2 hit.
	setStride := uint64((1 << 10) / 2) // l1 sets × block = 512
	for i := 1; i <= 2; i++ {
		h.Access(0, 0x40, addr+uint64(i)*setStride, Load, 20)
	}
	if lat := h.Access(0, 0x40, addr, Load, 30); lat != 14 {
		t.Fatalf("L2 hit latency = %d, want 14", lat)
	}
}

func TestHierarchyWritebackReachesMemory(t *testing.T) {
	mem := &flatMemory{latency: 100}
	h := MustNewHierarchy(tinyHierCfg(1, NonInclusive), mem)
	// Write a large footprint so dirty lines cascade out of the LLC.
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 20_000; i++ {
		addr := uint64(rng.IntN(4096)) * BlockBytes
		h.Access(0, 0x40, addr, StoreAccess, uint64(i))
	}
	if mem.writes == 0 {
		t.Fatal("no dirty LLC evictions reached memory")
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	mem := &flatMemory{latency: 100}
	cfg := tinyHierCfg(1, Inclusive)
	// LLC as small as L2 so LLC evictions hit blocks resident above.
	cfg.LLC = LevelConfig{SizeBytes: 4 << 10, Ways: 4, HitLatency: 30}
	h := MustNewHierarchy(cfg, mem)

	probeResident := func() (resident int) {
		for set := 0; set < h.L2(0).Sets(); set++ {
			for way := 0; way < h.L2(0).Ways(); way++ {
				if h.L2(0).BlockValid(set, way) {
					resident++
				}
			}
		}
		return resident
	}
	rng := rand.New(rand.NewPCG(8, 8))
	for i := 0; i < 30_000; i++ {
		addr := uint64(rng.IntN(1024)) * BlockBytes
		h.Access(0, 0x40, addr, Load, uint64(i))
		if i%1000 == 0 {
			// Inclusion invariant: every valid L2 block is in the LLC.
			for set := 0; set < h.L2(0).Sets(); set++ {
				for way := 0; way < h.L2(0).Ways(); way++ {
					if !h.L2(0).BlockValid(set, way) {
						continue
					}
				}
			}
		}
	}
	_ = probeResident
	// Directly verify the invariant block-by-block via probing a
	// recently evicted LLC address: after the run, sample addresses
	// resident in L2 must be resident in LLC.
	violations := 0
	for a := uint64(0); a < 1024*BlockBytes; a += BlockBytes {
		if h.L2(0).Probe(a) && !h.LLC().Probe(a) {
			violations++
		}
	}
	if violations > 0 {
		t.Fatalf("%d blocks in L2 but not in inclusive LLC", violations)
	}
}

func TestExclusiveLLCDisjointFromL2(t *testing.T) {
	mem := &flatMemory{latency: 100}
	h := MustNewHierarchy(tinyHierCfg(1, Exclusive), mem)
	rng := rand.New(rand.NewPCG(12, 12))
	for i := 0; i < 30_000; i++ {
		addr := uint64(rng.IntN(1024)) * BlockBytes
		h.Access(0, 0x40, addr, Load, uint64(i))
	}
	overlaps := 0
	for a := uint64(0); a < 1024*BlockBytes; a += BlockBytes {
		if h.L2(0).Probe(a) && h.LLC().Probe(a) {
			overlaps++
		}
	}
	if overlaps > 0 {
		t.Fatalf("%d blocks resident in both L2 and exclusive LLC", overlaps)
	}
	// The exclusive LLC must still hold something (L2 victims).
	if h.LLC().OccupiedBlocks() == 0 {
		t.Fatal("exclusive LLC never filled by L2 victims")
	}
}

func TestExclusiveDirtyDataSurvivesRoundTrip(t *testing.T) {
	mem := &flatMemory{latency: 100}
	h := MustNewHierarchy(tinyHierCfg(1, Exclusive), mem)
	dirty := uint64(0x200000)
	h.Access(0, 0x40, dirty, StoreAccess, 0)
	// Push the dirty block out of L1 and L2 into the LLC.
	rng := rand.New(rand.NewPCG(14, 14))
	for i := 0; i < 5000; i++ {
		h.Access(0, 0x40, uint64(rng.IntN(256))*BlockBytes, Load, uint64(i))
	}
	if !h.LLC().Probe(dirty) {
		t.Skip("dirty block already written back; pattern did not route it via LLC")
	}
	// Re-access: block moves back up; eventually its eviction must
	// write to memory exactly once overall (dirty bit preserved).
	wb := mem.writes
	h.Access(0, 0x40, dirty, Load, 6000)
	if h.LLC().Probe(dirty) {
		t.Fatal("exclusive LLC kept a copy after promoting the block")
	}
	for i := 0; i < 5000; i++ {
		h.Access(0, 0x40, uint64(rng.IntN(256))*BlockBytes+1<<20, Load, uint64(7000+i))
	}
	if mem.writes == wb {
		t.Fatal("dirty block lost: no memory write after final eviction")
	}
}

func TestAMATAccumulatesOnlyDataAccesses(t *testing.T) {
	mem := &flatMemory{latency: 100}
	h := MustNewHierarchy(tinyHierCfg(1, NonInclusive), mem)
	h.Access(0, 0x40, 0x40, Ifetch, 0)
	if h.Stats.DemandDataAccesses[0] != 0 {
		t.Fatal("instruction fetch counted as data access")
	}
	h.Access(0, 0x40, 0x300000, Load, 0)
	if h.Stats.DemandDataAccesses[0] != 1 {
		t.Fatal("load not counted")
	}
	if amat := h.AMAT(0); amat != 144 {
		t.Fatalf("AMAT = %v, want 144 (cold miss: 4+10+30+100)", amat)
	}
}

func TestPrefetchNextLineFillsAhead(t *testing.T) {
	mem := &flatMemory{latency: 100}
	cfg := tinyHierCfg(1, NonInclusive)
	cfg.Prefetch = "0N0" // L1D next-line only
	h := MustNewHierarchy(cfg, mem)
	addr := uint64(0x400000)
	h.Access(0, 0x40, addr, Load, 0) // miss → prefetch addr+64
	if h.Stats.PrefetchIssued == 0 {
		t.Fatal("next-line prefetcher idle on miss")
	}
	if !h.L1D(0).Probe(addr + 64) {
		t.Fatal("next block not prefetched into L1D")
	}
	// The prefetched access must now be an L1 hit.
	if lat := h.Access(0, 0x44, addr+64, Load, 10); lat != 4 {
		t.Fatalf("prefetched block latency = %d, want 4", lat)
	}
}

func TestPrefetchConfigsRun(t *testing.T) {
	for _, code := range []string{"000", "NN0", "NNN", "NNI"} {
		mem := &flatMemory{latency: 100}
		cfg := tinyHierCfg(1, NonInclusive)
		cfg.Prefetch = code
		h := MustNewHierarchy(cfg, mem)
		for i := 0; i < 5000; i++ {
			h.Access(0, 0x40, uint64(i)*BlockBytes, Load, uint64(i))
		}
		if code != "000" && h.Stats.PrefetchIssued == 0 {
			t.Errorf("%s: no prefetches issued on a streaming pattern", code)
		}
		if code == "000" && h.Stats.PrefetchIssued != 0 {
			t.Errorf("000: issued %d prefetches", h.Stats.PrefetchIssued)
		}
	}
}

func TestSharedLLCTheftsBetweenCores(t *testing.T) {
	mem := &flatMemory{latency: 100}
	h := MustNewHierarchy(tinyHierCfg(2, NonInclusive), mem)
	rng := rand.New(rand.NewPCG(16, 16))
	// Two cores with disjoint address spaces thrash the shared LLC.
	for i := 0; i < 40_000; i++ {
		core := i % 2
		base := uint64(core) << 30
		addr := base + uint64(rng.IntN(1024))*BlockBytes
		h.Access(core, 0x40, addr, Load, uint64(i))
	}
	llc := h.LLC().Stats
	if llc.TheftsCaused[0]+llc.TheftsCaused[1] == 0 {
		t.Fatal("no thefts recorded between competing cores")
	}
	if llc.TheftsCaused[0]+llc.TheftsCaused[1] !=
		llc.TheftsExperienced[0]+llc.TheftsExperienced[1] {
		t.Fatal("theft conservation violated in shared LLC")
	}
}

func TestHierarchyResetStats(t *testing.T) {
	mem := &flatMemory{latency: 100}
	h := MustNewHierarchy(tinyHierCfg(2, NonInclusive), mem)
	for i := 0; i < 1000; i++ {
		h.Access(i%2, 0x40, uint64(i)*BlockBytes, Load, uint64(i))
	}
	h.ResetStats()
	if h.Stats.DemandDataAccesses[0] != 0 || h.LLC().Stats.Accesses[0] != 0 {
		t.Fatal("stats survived reset")
	}
	if h.LLC().OccupiedBlocks() == 0 {
		t.Fatal("cache contents lost on stats reset")
	}
}
