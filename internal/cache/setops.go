package cache

// Injector is the hook the PInTE engine implements. The LLC calls it
// after every demand access (hit or miss), handing over the accessed set
// and the accessing core, mirroring the paper's integration point: PInTE
// "integrates into the last level cache [and] uses existing function
// calls (block update, promotion, eviction)".
type Injector interface {
	OnLLCAccess(c *Cache, set, core int)
}

// The methods below are the system-side ("Sys" in Fig 2b) operations the
// injector uses. They bypass demand-access statistics: the system is not
// a workload.

// BlockValid reports whether (set, way) holds valid data.
func (c *Cache) BlockValid(set, way int) bool {
	return c.blocks[set*c.ways+way].Valid
}

// BlockDirty reports whether (set, way) is dirty.
func (c *Cache) BlockDirty(set, way int) bool {
	return c.blocks[set*c.ways+way].Dirty
}

// BlockOwner returns the core that inserted (set, way).
func (c *Cache) BlockOwner(set, way int) int {
	return int(c.blocks[set*c.ways+way].Owner)
}

// AtStackEnd reports whether (set, way) sits at the eviction end of the
// replacement stack (PInTE BLOCK-SELECT).
func (c *Cache) AtStackEnd(set, way int) bool {
	return c.policy.AtStackEnd(set, way)
}

// PromoteBlock moves (set, way) to the most-recently-used end of the
// stack as if the system had inserted a block there (PInTE PROMOTE).
func (c *Cache) PromoteBlock(set, way int) {
	c.bustMemo(set)
	c.policy.Promote(set, way)
}

// SysInvalidate invalidates (set, way) on behalf of the PInTE engine
// (PInTE INVALIDATE): the displaced data counts as an induced theft
// against its owner, dirty contents are handed to the writeback sink, and
// the slot is marked so the next fill records a mock theft.
func (c *Cache) SysInvalidate(set, way int) {
	b := &c.blocks[set*c.ways+way]
	if !b.Valid {
		return
	}
	owner := int(b.Owner)
	c.Stats.InducedThefts[owner]++
	c.Stats.TheftsExperienced[owner]++
	if b.Dirty {
		c.Stats.Writebacks++
		if c.wbSink != nil {
			c.wbSink(c.blockAddr(set, c.tags[set*c.ways+way]))
		}
	}
	c.Stats.Occupancy[owner]--
	b.Valid = false
	b.Dirty = false
	b.SysInvalid = true
	c.tags[set*c.ways+way] = noTag
	c.freeCnt[set]++
	c.bustMemo(set)
	c.policy.OnInvalidate(set, way)
}

// SetWritebackSink registers the function that receives dirty blocks the
// PInTE engine displaces (typically a DRAM write). Pass nil to drop them.
func (c *Cache) SetWritebackSink(sink func(addr uint64)) { c.wbSink = sink }

// SetAccessObserver registers a function invoked on every demand access
// (after hit/miss resolution, before the injector). Utility monitors
// (UMON shadow tags) use it to sample the access stream without
// disturbing cache state. Pass nil to detach.
func (c *Cache) SetAccessObserver(obs func(addr uint64, core int, hit bool)) {
	c.observer = obs
	c.gen++
}
