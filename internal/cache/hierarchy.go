package cache

import (
	"fmt"

	"repro/internal/prefetch"
	"repro/internal/replacement"
)

// Inclusion selects how the LLC maintains copies relative to the private
// levels (§III-C b of the paper).
type Inclusion int

const (
	// NonInclusive fills every level on a miss but never enforces
	// subset or disjointness (the paper's Skylake default).
	NonInclusive Inclusion = iota
	// Inclusive enforces LLC ⊇ L1 ∪ L2 by back-invalidating private
	// copies when an LLC block is evicted.
	Inclusive
	// Exclusive keeps LLC ∩ L2 = ∅: the LLC is a victim cache filled
	// by L2 evictions; LLC hits move the block up and vacate the slot.
	Exclusive
)

// String returns the paper's short code for the inclusion mode.
func (i Inclusion) String() string {
	switch i {
	case NonInclusive:
		return "no"
	case Inclusive:
		return "in"
	case Exclusive:
		return "ex"
	}
	return fmt.Sprintf("Inclusion(%d)", int(i))
}

// ParseInclusion converts the paper's code ("no", "in", "ex") to an
// Inclusion.
func ParseInclusion(s string) (Inclusion, error) {
	switch s {
	case "no":
		return NonInclusive, nil
	case "in":
		return Inclusive, nil
	case "ex":
		return Exclusive, nil
	}
	return 0, fmt.Errorf("cache: unknown inclusion policy %q", s)
}

// AccessKind distinguishes the demand access types entering the
// hierarchy.
type AccessKind int

const (
	// Load is a demand data read.
	Load AccessKind = iota
	// StoreAccess is a demand data write (write-allocate).
	StoreAccess
	// Ifetch is an instruction fetch through the L1I.
	Ifetch
)

// LevelConfig configures one cache level.
type LevelConfig struct {
	SizeBytes int
	Ways      int
	// HitLatency is the incremental latency of reaching this level
	// beyond the previous one; a hit's total latency is the sum of
	// increments along the path.
	HitLatency uint64
	// Policy is the replacement policy name; "" means LRU.
	Policy string
}

func (lc LevelConfig) build(name string, cores int, seed uint64) (*Cache, error) {
	polName := lc.Policy
	if polName == "" {
		polName = "lru"
	}
	pol, err := replacement.New(polName, seed)
	if err != nil {
		return nil, err
	}
	return New(Config{
		Name:       name,
		SizeBytes:  lc.SizeBytes,
		Ways:       lc.Ways,
		HitLatency: lc.HitLatency,
		Policy:     pol,
		Cores:      cores,
	})
}

// Memory is the backing store below the LLC.
type Memory interface {
	// Access services a request starting at time now and returns its
	// latency in cycles.
	Access(now, addr uint64, isWrite bool) uint64
}

// HierarchyConfig configures the full cache hierarchy.
type HierarchyConfig struct {
	Cores     int
	L1I       LevelConfig
	L1D       LevelConfig
	L2        LevelConfig
	LLC       LevelConfig
	Inclusion Inclusion
	// Prefetch is the paper's 3-character permutation string over
	// {L1I, L1D, L2}; "" means "000" (no prefetching).
	Prefetch string
	// Seed feeds randomised replacement policies.
	Seed uint64
}

// DefaultConfig returns the paper's §III-A machine: 32KB L1s, 512KB L2,
// 4MB 16-way LLC, non-inclusive, no prefetching.
func DefaultConfig(cores int) HierarchyConfig {
	return HierarchyConfig{
		Cores: cores,
		L1I:   LevelConfig{SizeBytes: 32 << 10, Ways: 8, HitLatency: 4},
		L1D:   LevelConfig{SizeBytes: 32 << 10, Ways: 8, HitLatency: 4},
		L2:    LevelConfig{SizeBytes: 512 << 10, Ways: 8, HitLatency: 10},
		LLC:   LevelConfig{SizeBytes: 4 << 20, Ways: 16, HitLatency: 30},
	}
}

// HierarchyStats aggregates cross-level counters.
type HierarchyStats struct {
	// DemandDataAccesses / DemandDataLatency accumulate per-core AMAT
	// inputs over demand loads and stores entering the L1D.
	DemandDataAccesses []uint64
	DemandDataLatency  []uint64

	// LLCDemandFills and LLCWritebackFills split LLC insertions by
	// origin; a writeback-dominated mix marks the "L2 spill" workloads
	// of Fig 6b.
	LLCDemandFills    uint64
	LLCWritebackFills uint64

	// PrefetchIssued and PrefetchFromDRAM track prefetch traffic;
	// their ratio to useful prefetches feeds the Fig 11 prefetch row.
	PrefetchIssued   uint64
	PrefetchFromDRAM uint64
}

// Hierarchy is one multi-core cache hierarchy: private L1I/L1D/L2 per
// core, one shared LLC, one shared Memory.
type Hierarchy struct {
	cfg   HierarchyConfig
	cores int
	l1i   []*Cache
	l1d   []*Cache
	l2    []*Cache
	llc   *Cache
	mem   Memory
	incl  Inclusion

	pfL1I []prefetch.Prefetcher
	pfL1D []prefetch.Prefetcher
	pfL2  []prefetch.Prefetcher
	pfBuf []uint64

	// exclDirty carries the dirty bit of a block extracted from an
	// exclusive LLC up to the L2 fill that follows it.
	exclDirty bool

	// capture, when non-nil, puts the hierarchy in front-capture mode
	// (see front.go): demand accesses stop at the L2 boundary and the
	// below-L2 work is recorded for fan-out followers to replay.
	capture *FrontCapture

	Stats HierarchyStats
}

// NewHierarchy builds a hierarchy over mem.
func NewHierarchy(cfg HierarchyConfig, mem Memory) (*Hierarchy, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if mem == nil {
		return nil, fmt.Errorf("cache: hierarchy requires a memory")
	}
	h := &Hierarchy{cfg: cfg, cores: cfg.Cores, mem: mem, incl: cfg.Inclusion}
	code := cfg.Prefetch
	if code == "" {
		code = "000"
	}
	for core := 0; core < cfg.Cores; core++ {
		seed := cfg.Seed + uint64(core)*0x5deece66d
		l1i, err := cfg.L1I.build(fmt.Sprintf("L1I%d", core), cfg.Cores, seed)
		if err != nil {
			return nil, err
		}
		l1d, err := cfg.L1D.build(fmt.Sprintf("L1D%d", core), cfg.Cores, seed+1)
		if err != nil {
			return nil, err
		}
		l2, err := cfg.L2.build(fmt.Sprintf("L2_%d", core), cfg.Cores, seed+2)
		if err != nil {
			return nil, err
		}
		// Only the LLC's reuse histogram is ever reported; skipping the
		// per-hit stack-position walk on the private levels keeps their
		// hit path to a plain replacement-state touch.
		l1i.SkipReuseHist()
		l1d.SkipReuseHist()
		l2.SkipReuseHist()
		h.l1i = append(h.l1i, l1i)
		h.l1d = append(h.l1d, l1d)
		h.l2 = append(h.l2, l2)

		pi, pd, p2, err := prefetch.Build(code)
		if err != nil {
			return nil, err
		}
		// Absent prefetchers are stored as nil so the access path can
		// skip the training call entirely instead of dispatching into a
		// no-op on every reference.
		h.pfL1I = append(h.pfL1I, elideNone(pi))
		h.pfL1D = append(h.pfL1D, elideNone(pd))
		h.pfL2 = append(h.pfL2, elideNone(p2))
	}
	llc, err := cfg.LLC.build("LLC", cfg.Cores, cfg.Seed+0xc0ffee)
	if err != nil {
		return nil, err
	}
	h.llc = llc
	h.Stats.DemandDataAccesses = make([]uint64, cfg.Cores)
	h.Stats.DemandDataLatency = make([]uint64, cfg.Cores)
	return h, nil
}

// elideNone maps the no-op prefetcher to nil.
func elideNone(p prefetch.Prefetcher) prefetch.Prefetcher {
	if _, ok := p.(prefetch.None); ok {
		return nil
	}
	return p
}

// IfetchFastOK reports whether core's instruction-fetch path is
// hit-neutral right now: a repeat fetch of a still-resident block has no
// effect beyond the L1I's own counters — no observer, no injector, and no
// prefetcher that trains on hits (NextLine only acts on misses). The core
// front end checks this before arming its fetch-block fast path; any
// later observer/injector attachment bumps the L1I's generation and
// forces the check to rerun.
func (h *Hierarchy) IfetchFastOK(core int) bool {
	if !h.l1i[core].passive() {
		return false
	}
	switch h.pfL1I[core].(type) {
	case nil, *prefetch.NextLine:
		return true
	}
	return false
}

// DataFastOK reports whether core's L1D repeat-hit fast path (FastData)
// is permitted: no L1D prefetcher that trains on hits may be attached.
// The prefetcher set is fixed at construction, so the result is stable
// for the hierarchy's lifetime (unlike IfetchFastOK, no generation check
// is needed — FastData itself verifies the memo before acting).
func (h *Hierarchy) DataFastOK(core int) bool {
	switch h.pfL1D[core].(type) {
	case nil, *prefetch.NextLine:
		return true
	}
	return false
}

// FastData attempts the L1D repeat-hit fast path for a demand load or
// store: when the access repeats the set's memoised hit, the full hit
// accounting (cache counters, observer/injector, AMAT inputs) runs at
// the L1D hit latency — which implies zero retirement stall — and
// FastData reports true. Callers must check DataFastOK once up front.
func (h *Hierarchy) FastData(core int, addr uint64, isWrite bool) bool {
	l1 := h.l1d[core]
	if !l1.TryRepeatHit(addr, core, isWrite) {
		return false
	}
	h.Stats.DemandDataAccesses[core]++
	h.Stats.DemandDataLatency[core] += l1.cfg.HitLatency
	return true
}

// MustNewHierarchy is NewHierarchy that panics on configuration errors.
func MustNewHierarchy(cfg HierarchyConfig, mem Memory) *Hierarchy {
	h, err := NewHierarchy(cfg, mem)
	if err != nil {
		panic(err)
	}
	return h
}

// LLC returns the shared last-level cache (the PInTE attachment point).
func (h *Hierarchy) LLC() *Cache { return h.llc }

// L1D returns core's private L1 data cache.
func (h *Hierarchy) L1D(core int) *Cache { return h.l1d[core] }

// L1I returns core's private L1 instruction cache.
func (h *Hierarchy) L1I(core int) *Cache { return h.l1i[core] }

// L2 returns core's private L2 cache.
func (h *Hierarchy) L2(core int) *Cache { return h.l2[core] }

// Cores returns the number of cores the hierarchy serves.
func (h *Hierarchy) Cores() int { return h.cores }

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// AMAT returns core's average demand data access time in cycles.
func (h *Hierarchy) AMAT(core int) float64 {
	n := h.Stats.DemandDataAccesses[core]
	if n == 0 {
		return 0
	}
	return float64(h.Stats.DemandDataLatency[core]) / float64(n)
}

// Access performs a demand access for core starting at time now and
// returns its latency. pc is the requesting instruction's address
// (consumed by prefetcher training).
func (h *Hierarchy) Access(core int, pc, addr uint64, kind AccessKind, now uint64) uint64 {
	l1 := h.l1d[core]
	pf := h.pfL1D[core]
	isWrite := kind == StoreAccess
	if kind == Ifetch {
		l1 = h.l1i[core]
		pf = h.pfL1I[core]
	}
	lat := l1.HitLatency()
	hit := l1.Lookup(addr, core, isWrite)
	if !hit {
		if h.capture != nil {
			h.capture.openEvent(addr, kind)
		}
		lat += h.fromL2(core, pc, addr, now+lat)
		h.fillL1(core, l1, addr, isWrite)
		if h.capture != nil {
			h.capture.closeEvent()
		}
	}
	if pf != nil {
		h.runPrefetch(core, 1, pf, pc, addr, !hit, now)
	}
	if kind != Ifetch {
		h.Stats.DemandDataAccesses[core]++
		h.Stats.DemandDataLatency[core] += lat
	}
	return lat
}

// fromL2 continues a demand miss below the L1.
func (h *Hierarchy) fromL2(core int, pc, addr uint64, now uint64) uint64 {
	l2 := h.l2[core]
	lat := l2.HitLatency()
	hit := l2.Lookup(addr, core, false)
	if !hit {
		lat += h.fromLLC(core, addr, now+lat)
		h.fillL2(core, addr, false)
	}
	if pf := h.pfL2[core]; pf != nil {
		h.runPrefetch(core, 2, pf, pc, addr, !hit, now)
	}
	return lat
}

// fromLLC continues a demand miss below the L2. The PInTE injector, when
// attached, runs inside llc.Lookup on both hits and misses.
func (h *Hierarchy) fromLLC(core int, addr uint64, now uint64) uint64 {
	if h.capture != nil {
		// Capture mode: the LLC (and everything below) is per-point
		// state a follower replays via DescendLLC; record the descent
		// and return a latency nobody reads (the front's clock is not a
		// point's clock).
		h.capture.markDescend()
		return h.llc.HitLatency()
	}
	lat := h.llc.HitLatency()
	if h.llc.Lookup(addr, core, false) {
		if h.incl == Exclusive {
			// The block moves up to the private levels; its dirty
			// state travels with it (restored by fillL2).
			if dirty, ok := h.llc.Extract(addr); ok && dirty {
				h.exclDirty = true
			}
		}
		return lat
	}
	lat += h.mem.Access(now+lat, addr, false)
	if h.incl != Exclusive {
		h.Stats.LLCDemandFills++
		v := h.llc.Fill(addr, core, false, false)
		h.handleLLCVictim(v, now)
	}
	return lat
}

// fillL1 inserts addr into core's L1, pushing dirty victims into L2.
func (h *Hierarchy) fillL1(core int, l1 *Cache, addr uint64, dirty bool) {
	v := l1.Fill(addr, core, dirty, false)
	if v.Valid && v.Dirty {
		h.fillL2(core, v.Addr, true)
	}
}

// fillL2 inserts addr into core's L2 (dirty for writeback allocations),
// pushing victims toward the LLC per the inclusion mode.
func (h *Hierarchy) fillL2(core int, addr uint64, dirty bool) {
	if h.exclDirty {
		dirty = true
		h.exclDirty = false
	}
	v := h.l2[core].Fill(addr, core, dirty, false)
	if !v.Valid {
		return
	}
	switch h.incl {
	case Exclusive:
		// Victim cache: every L2 eviction allocates in the LLC.
		h.Stats.LLCWritebackFills++
		lv := h.llc.Fill(v.Addr, core, v.Dirty, false)
		h.handleLLCVictim(lv, 0)
	default:
		// Inclusive / non-inclusive: only dirty victims travel down.
		if v.Dirty {
			if h.capture != nil {
				h.capture.addWriteback(v.Addr)
				return
			}
			h.Stats.LLCWritebackFills++
			lv := h.llc.Fill(v.Addr, core, true, false)
			h.handleLLCVictim(lv, 0)
		}
	}
}

// handleLLCVictim writes dirty LLC victims to memory and, in inclusive
// mode, back-invalidates the owner's private copies.
func (h *Hierarchy) handleLLCVictim(v Victim, now uint64) {
	if !v.Valid {
		return
	}
	dirty := v.Dirty
	if h.incl == Inclusive {
		owner := v.Owner
		if owner >= 0 && owner < h.cores {
			if _, d := h.l1i[owner].InvalidateAddr(v.Addr); d {
				dirty = true
			}
			if _, d := h.l1d[owner].InvalidateAddr(v.Addr); d {
				dirty = true
			}
			if _, d := h.l2[owner].InvalidateAddr(v.Addr); d {
				dirty = true
			}
		}
	}
	if dirty {
		h.mem.Access(now, v.Addr, true)
	}
}

// runPrefetch trains the prefetcher at level (1 = L1, 2 = L2) and issues
// its candidates. Prefetch fills propagate block state without charging
// demand latency; fetches that reach DRAM occupy real bank time.
func (h *Hierarchy) runPrefetch(core, level int, pf prefetch.Prefetcher, pc, addr uint64, miss bool, now uint64) {
	h.pfBuf = pf.OnAccess(pc, addr, miss, h.pfBuf[:0])
	for _, a := range h.pfBuf {
		h.issuePrefetch(core, level, a, now)
	}
}

func (h *Hierarchy) issuePrefetch(core, level int, addr uint64, now uint64) {
	h.Stats.PrefetchIssued++
	var top *Cache
	if level == 1 {
		top = h.l1d[core]
	} else {
		top = h.l2[core]
	}
	if top.Probe(addr) {
		return
	}
	// Locate the data below the issuing level.
	inL2 := level == 1 && h.l2[core].Probe(addr)
	inLLC := !inL2 && h.llc.Probe(addr)
	if !inL2 && !inLLC {
		h.Stats.PrefetchFromDRAM++
		h.mem.Access(now, addr, false)
		if h.incl != Exclusive {
			v := h.llc.Fill(addr, core, false, true)
			h.handleLLCVictim(v, now)
		}
	}
	if level == 1 {
		v := h.l1d[core].Fill(addr, core, false, true)
		if v.Valid && v.Dirty {
			h.fillL2(core, v.Addr, true)
		}
		return
	}
	h.fillL2Prefetch(core, addr)
}

// fillL2Prefetch inserts a prefetched block into L2 without promoting it
// to L1.
func (h *Hierarchy) fillL2Prefetch(core int, addr uint64) {
	v := h.l2[core].Fill(addr, core, false, true)
	if !v.Valid {
		return
	}
	switch h.incl {
	case Exclusive:
		lv := h.llc.Fill(v.Addr, core, v.Dirty, false)
		h.handleLLCVictim(lv, 0)
	default:
		if v.Dirty {
			lv := h.llc.Fill(v.Addr, core, true, false)
			h.handleLLCVictim(lv, 0)
		}
	}
}

// ResetStats zeroes statistics at every level while preserving cache
// contents (end-of-warm-up semantics).
func (h *Hierarchy) ResetStats() {
	for core := 0; core < h.cores; core++ {
		h.l1i[core].ResetStats()
		h.l1d[core].ResetStats()
		h.l2[core].ResetStats()
	}
	h.llc.ResetStats()
	h.Stats = HierarchyStats{
		DemandDataAccesses: make([]uint64, h.cores),
		DemandDataLatency:  make([]uint64, h.cores),
	}
}
