// Package cache models the set-associative write-back caches and the
// three-level hierarchy (private L1I/L1D/L2, shared LLC) the PInTE paper
// simulates, including the ownership ("theft") accounting from CASHT that
// PInTE builds on, the inclusive / exclusive / non-inclusive LLC modes of
// the case study, and the injection hook the PInTE engine attaches to.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/replacement"
)

// BlockBytes is the cache block (line) size used throughout the model.
const BlockBytes = 64

// Block is one cache line's metadata. The block's tag lives in the
// cache's parallel tags array (the way-scan path), not here, keeping the
// per-line metadata to a handful of bytes.
type Block struct {
	Valid bool
	Dirty bool
	// Prefetched is set on prefetch fills and cleared on the first
	// demand hit (at which point the prefetch counts as useful).
	Prefetched bool
	// SysInvalid marks a slot whose contents were invalidated by the
	// PInTE engine; the next fill into it is a "mock theft" (Fig 2b).
	SysInvalid bool
	// Owner is the id of the core that inserted the block.
	Owner int8
}

// Victim describes a block displaced by a fill or invalidation.
type Victim struct {
	Addr  uint64 // block-aligned byte address
	Owner int
	Valid bool
	Dirty bool
	// Theft reports that the eviction displaced valid data inserted by
	// a different core (an inter-core eviction).
	Theft bool
}

// Config describes one cache's geometry.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	HitLatency uint64
	// Policy orders blocks for replacement; nil selects LRU.
	Policy replacement.Policy
	// Cores sizes the per-core statistics arrays; 0 means 1.
	Cores int
}

// Stats aggregates one cache's counters. Per-core slices are indexed by
// core id.
type Stats struct {
	Accesses   []uint64 // demand accesses (loads, stores, code fetches)
	Hits       []uint64
	Misses     []uint64
	Writebacks uint64 // dirty evictions passed to the next level

	// Theft accounting (shared caches).
	TheftsCaused      []uint64 // this core evicted another core's data
	TheftsExperienced []uint64 // this core's data was evicted by another
	// InducedThefts counts PInTE invalidations of this core's valid
	// data; they are also included in TheftsExperienced.
	InducedThefts []uint64
	// MockThefts counts demand fills that landed on a slot the PInTE
	// engine had invalidated (the system "pretending" its data was
	// evicted, Fig 2b).
	MockThefts []uint64

	// ReuseHist counts demand hits by replacement-stack position
	// (index 0 = MRU end). Shared across cores; per-core reuse is
	// tracked by ReuseHistCore.
	ReuseHist     []uint64
	ReuseHistCore [][]uint64

	// Occupancy is the current number of valid blocks owned per core.
	Occupancy []uint64

	// Prefetch effectiveness.
	PrefetchFills  uint64
	PrefetchUseful uint64
}

func newStats(cores, ways int) Stats {
	// All counters share one backing array: the hot-path increments
	// (access, hit, reuse position) then touch a handful of adjacent
	// cache lines instead of ten scattered allocations.
	backing := make([]uint64, 8*cores+ways+cores*ways)
	mk := func() []uint64 {
		s := backing[:cores:cores]
		backing = backing[cores:]
		return s
	}
	s := Stats{
		Accesses:          mk(),
		Hits:              mk(),
		Misses:            mk(),
		TheftsCaused:      mk(),
		TheftsExperienced: mk(),
		InducedThefts:     mk(),
		MockThefts:        mk(),
		Occupancy:         mk(),
	}
	s.ReuseHist = backing[:ways:ways]
	backing = backing[ways:]
	s.ReuseHistCore = make([][]uint64, cores)
	for i := range s.ReuseHistCore {
		s.ReuseHistCore[i] = backing[:ways:ways]
		backing = backing[ways:]
	}
	return s
}

// MissRate returns total misses / total accesses across cores.
func (s *Stats) MissRate() float64 {
	var a, m uint64
	for i := range s.Accesses {
		a += s.Accesses[i]
		m += s.Misses[i]
	}
	if a == 0 {
		return 0
	}
	return float64(m) / float64(a)
}

// MissRateCore returns core's miss ratio: 0 when core made no accesses or
// is outside the configured core range.
func (s *Stats) MissRateCore(core int) float64 {
	if core < 0 || core >= len(s.Accesses) || s.Accesses[core] == 0 {
		return 0
	}
	return float64(s.Misses[core]) / float64(s.Accesses[core])
}

// ContentionRate returns core's thefts experienced per demand access —
// the paper's contention/interference rate for the LLC. It is 0 when core
// made no accesses or is outside the configured core range.
func (s *Stats) ContentionRate(core int) float64 {
	if core < 0 || core >= len(s.Accesses) || s.Accesses[core] == 0 {
		return 0
	}
	return float64(s.TheftsExperienced[core]) / float64(s.Accesses[core])
}

// noTag is the tag-array value for an invalid way and the memo value for
// "no memoised hit". Real tags cannot collide with it: a tag is a block
// address shifted right by 6 + setBits bits, so it occupies at most 58
// bits.
const noTag = ^uint64(0)

// Cache is a single set-associative write-back cache.
type Cache struct {
	cfg      Config
	sets     int
	ways     int
	setBits  uint
	blocks   []Block
	policy   replacement.Policy
	Stats    Stats
	injector Injector          // LLC only; may be nil
	wbSink   func(addr uint64) // receives PInTE-displaced dirty blocks
	// tags mirrors blocks: tags[i] is blocks[i].Tag when the block is
	// valid and noTag otherwise, so the way-lookup scan touches 8 bytes
	// per way instead of a whole Block and needs no Valid check.
	tags []uint64
	// memoTag/memoWay/memoPos memoise, per set, the block of the set's
	// most recent demand hit so that repeat hits — the dominant access
	// pattern on the L1s — skip the way scan and the replacement-policy
	// calls. memoTag[set] is noTag when nothing is memoised; memoPos is
	// the cached HitPosition (-1 = not yet computed). Any mutation of a
	// set (fill, invalidation, extraction, system-side promotion) busts
	// its memo.
	memoTag []uint64
	memoWay []int32
	memoPos []int32
	// posTouch is non-nil when the policy supports the fused
	// HitPosition+OnHit call (one dynamic dispatch on the hit path
	// instead of two).
	posTouch interface{ HitPositionTouch(set, way int) int }
	// gen counts mutations of the block population (fills, evictions,
	// invalidations, extractions) and observer/injector attachment, so
	// callers can cheaply detect "nothing changed since I last looked"
	// (the core front end's fetch-block cache relies on it).
	gen uint64
	// Miss memo: a demand miss records the set, tag, first free way and
	// generation, so the demand fill that follows immediately can skip
	// re-proving absence and re-scanning for a free way. Any cache
	// mutation in between (e.g. an injector invalidation or an
	// inclusive back-invalidation) bumps gen and voids the memo.
	missSet  int
	missTag  uint64
	missFree int32
	missGen  uint64
	// lru holds the policy devirtualised when it is the default LRU, so
	// the hottest policy calls compile to direct (inlinable) calls.
	lru *replacement.LRU
	// freeCnt[set] is the number of invalid ways in set. Once a set has
	// filled up it stays full (evictions are immediately followed by
	// inserts), so the lookup scan can drop its free-way tracking — one
	// compare per way instead of two — for the whole steady state.
	freeCnt []int32
	// noReuse disables reuse-position (hit-position) tracking; set via
	// SkipReuseHist on caches whose histograms nothing consumes.
	noReuse bool
	// partition holds per-core fill way-masks (0 = unrestricted); see
	// SetWayPartition.
	partition []uint64
	// observer, when set, sees every demand access (see
	// SetAccessObserver).
	observer func(addr uint64, core int, hit bool)
}

// New builds a cache from cfg. It returns an error on impossible
// geometry (non-power-of-two set count, size not divisible by ways).
func New(cfg Config) (*Cache, error) {
	if cfg.Cores == 0 {
		cfg.Cores = 1
	}
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("cache %s: ways and size must be positive", cfg.Name)
	}
	blocksTotal := cfg.SizeBytes / BlockBytes
	if blocksTotal%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache %s: size %d not divisible into %d ways of %dB blocks",
			cfg.Name, cfg.SizeBytes, cfg.Ways, BlockBytes)
	}
	sets := blocksTotal / cfg.Ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d is not a power of two", cfg.Name, sets)
	}
	pol := cfg.Policy
	if pol == nil {
		pol = replacement.NewLRU()
	}
	pol.Reset(sets, cfg.Ways)
	c := &Cache{
		cfg:     cfg,
		sets:    sets,
		ways:    cfg.Ways,
		setBits: uint(bits.TrailingZeros(uint(sets))),
		blocks:  make([]Block, sets*cfg.Ways),
		tags:    make([]uint64, sets*cfg.Ways),
		memoTag: make([]uint64, sets),
		memoWay: make([]int32, sets),
		memoPos: make([]int32, sets),
		freeCnt: make([]int32, sets),
		policy:  pol,
		Stats:   newStats(cfg.Cores, cfg.Ways),
	}
	for i := range c.tags {
		c.tags[i] = noTag
	}
	for i := range c.freeCnt {
		c.freeCnt[i] = int32(cfg.Ways)
	}
	for i := range c.memoTag {
		c.memoTag[i] = noTag
	}
	c.posTouch, _ = pol.(interface{ HitPositionTouch(set, way int) int })
	c.lru, _ = pol.(*replacement.LRU)
	c.missTag = noTag
	return c, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// HitLatency returns the configured hit latency in cycles.
func (c *Cache) HitLatency() uint64 { return c.cfg.HitLatency }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Policy returns the replacement policy instance.
func (c *Cache) Policy() replacement.Policy { return c.policy }

// SetInjector attaches a PInTE injector; pass nil to detach.
func (c *Cache) SetInjector(inj Injector) {
	c.injector = inj
	c.gen++
}

// Gen returns the cache's mutation generation (see the field comment).
func (c *Cache) Gen() uint64 { return c.gen }

// SkipReuseHist disables reuse-position tracking for this cache: hits
// still update replacement state but no longer pay the per-hit stack-
// position walk, and ReuseHist/ReuseHistCore stay zero. The hierarchy
// applies it to the private levels, whose histograms nothing consumes —
// only the LLC's reuse histogram is reported (Fig 5/6).
func (c *Cache) SkipReuseHist() { c.noReuse = true }

// passive reports that no observer or injector watches demand accesses.
func (c *Cache) passive() bool { return c.observer == nil && c.injector == nil }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	blk := addr / BlockBytes
	return int(blk & uint64(c.sets-1)), blk >> c.setBits
}

func (c *Cache) findWay(set int, tag uint64) int {
	base := set * c.ways
	for w, t := range c.tags[base : base+c.ways] {
		if t == tag {
			return w
		}
	}
	return -1
}

// bustMemo forgets set's repeat-hit memo and advances the mutation
// generation; every caller is a block-population or stack mutation.
func (c *Cache) bustMemo(set int) {
	c.memoTag[set] = noTag
	c.gen++
}

// Lookup performs a demand access by core. On a hit the block's
// replacement state is updated, reuse position recorded, dirty bit set
// for writes, and the PInTE injector (if attached) runs afterwards.
// Misses also run the injector: the paper's flow triggers on every LLC
// access.
func (c *Cache) Lookup(addr uint64, core int, isWrite bool) bool {
	set, tag := c.index(addr)
	c.Stats.Accesses[core]++
	if c.memoTag[set] == tag {
		c.repeatHit(addr, set, core, isWrite)
		return true
	}
	base := set * c.ways
	w, free := -1, -1
	if c.freeCnt[set] == 0 {
		// Full set (the steady state): tight match-only scan.
		for i, t := range c.tags[base : base+c.ways] {
			if t == tag {
				w = i
				break
			}
		}
	} else {
		// Fused scan: way match for the hit path, first free way for
		// the miss memo consumed by the demand fill after a miss.
		for i, t := range c.tags[base : base+c.ways] {
			if t == tag {
				w = i
				break
			}
			if free < 0 && t == noTag {
				free = i
			}
		}
	}
	hit := w >= 0
	if hit {
		b := &c.blocks[base+w]
		if c.noReuse {
			if c.lru != nil {
				c.lru.OnHit(set, w)
			} else {
				c.policy.OnHit(set, w)
			}
		} else {
			var pos int
			if c.lru != nil {
				pos = c.lru.HitPositionTouch(set, w)
			} else if c.posTouch != nil {
				pos = c.posTouch.HitPositionTouch(set, w)
			} else {
				pos = c.policy.HitPosition(set, w)
				c.policy.OnHit(set, w)
			}
			c.Stats.ReuseHist[pos]++
			c.Stats.ReuseHistCore[core][pos]++
		}
		c.Stats.Hits[core]++
		if b.Prefetched {
			b.Prefetched = false
			c.Stats.PrefetchUseful++
		}
		if isWrite {
			b.Dirty = true
		}
		c.memoTag[set] = tag
		c.memoWay[set] = int32(w)
		c.memoPos[set] = -1
	} else {
		c.Stats.Misses[core]++
		c.missSet, c.missTag, c.missFree, c.missGen = set, tag, int32(free), c.gen
	}
	if c.observer != nil {
		c.observer(addr, core, hit)
	}
	if c.injector != nil {
		c.injector.OnLLCAccess(c, set, core)
	}
	return hit
}

// TryRepeatHit attempts the repeat-hit fast path directly: when addr
// matches the set's memoised hit it performs the full demand-hit
// accounting (including observer and injector) and reports true; on a
// memo mismatch it does nothing and the caller falls back to Lookup.
func (c *Cache) TryRepeatHit(addr uint64, core int, isWrite bool) bool {
	set, tag := c.index(addr)
	if c.memoTag[set] != tag {
		return false
	}
	c.Stats.Accesses[core]++
	c.repeatHit(addr, set, core, isWrite)
	return true
}

// repeatHit services a demand hit on the same block as the set's previous
// demand hit with no intervening mutation of the set (every fill,
// invalidation, extraction and system-side promotion busts the memo).
// The replacement-policy calls are skipped, which is observation-
// equivalent for every shipped policy: the memo block already received
// OnHit when the memo was established, a second OnHit on the set's most
// recently touched way is idempotent for pLRU, nMRU and RRIP, and for
// timestamp LRU it changes only the block's absolute age — victim choice
// and stack positions compare ages within the set, and the memo block is
// already the set's youngest. HitPosition on the unchanged set state is
// deterministic, so it is computed once and cached. The Prefetched bit
// needs no check: the slow-path hit that established the memo cleared it.
func (c *Cache) repeatHit(addr uint64, set, core int, isWrite bool) {
	if !c.noReuse {
		pos := int(c.memoPos[set])
		if pos < 0 {
			if c.lru != nil {
				pos = c.lru.HitPosition(set, int(c.memoWay[set]))
			} else {
				pos = c.policy.HitPosition(set, int(c.memoWay[set]))
			}
			c.memoPos[set] = int32(pos)
		}
		c.Stats.ReuseHist[pos]++
		c.Stats.ReuseHistCore[core][pos]++
	}
	c.Stats.Hits[core]++
	if isWrite {
		c.blocks[set*c.ways+int(c.memoWay[set])].Dirty = true
	}
	if c.observer != nil {
		c.observer(addr, core, true)
	}
	if c.injector != nil {
		c.injector.OnLLCAccess(c, set, core)
	}
}

// Probe reports whether addr is present without disturbing any state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	return c.findWay(set, tag) >= 0
}

// Fill inserts addr for core, evicting if necessary, and returns the
// victim (Valid=false when an empty or system-invalidated way absorbed
// the fill). dirty seeds the block's dirty bit (writeback allocations);
// prefetched marks prefetch fills.
func (c *Cache) Fill(addr uint64, core int, dirty, prefetched bool) Victim {
	set, tag := c.index(addr)
	base := set * c.ways
	if c.partition == nil {
		free := -1
		if tag == c.missTag && set == c.missSet && c.gen == c.missGen {
			// The lookup that missed already proved absence and found
			// the first free way; nothing has mutated since.
			free = int(c.missFree)
		} else {
			// One fused scan doubles as the presence check and the
			// first-free-way search.
			for w, t := range c.tags[base : base+c.ways] {
				if t == tag {
					// Already present (races between prefetch and
					// demand paths, or a writeback allocating over an
					// existing copy): update flags.
					if dirty {
						c.blocks[base+w].Dirty = true
					}
					return Victim{}
				}
				if free < 0 && t == noTag {
					free = w
				}
			}
		}
		var victim Victim
		way := free
		if way < 0 {
			if c.lru != nil {
				way = c.lru.Victim(set)
			} else {
				way = c.policy.Victim(set)
			}
			victim = c.evict(set, way, core)
		}
		c.insert(set, way, tag, core, dirty, prefetched)
		return victim
	}
	// Partitioned: fills are restricted to the core's way mask.
	if w := c.findWay(set, tag); w >= 0 {
		if dirty {
			c.blocks[base+w].Dirty = true
		}
		return Victim{}
	}
	mask := c.fillMask(core)
	full := uint64(1)<<uint(c.ways) - 1
	way := -1
	for w := 0; w < c.ways; w++ {
		if mask&(1<<uint(w)) != 0 && c.tags[base+w] == noTag {
			way = w
			break
		}
	}
	var victim Victim
	if way < 0 {
		if mask == full {
			way = c.policy.Victim(set)
		} else {
			way = c.victimWithin(set, mask)
		}
		victim = c.evict(set, way, core)
	}
	c.insert(set, way, tag, core, dirty, prefetched)
	return victim
}

// insert writes a new block into (set, way), which must be invalid.
func (c *Cache) insert(set, way int, tag uint64, core int, dirty, prefetched bool) {
	b := &c.blocks[set*c.ways+way]
	if b.SysInvalid {
		// The PInTE engine hollowed this slot out; inserting on it is
		// the "mock theft" of Fig 2b: the workload behaves as if an
		// adversary's block had been here.
		c.Stats.MockThefts[core]++
		b.SysInvalid = false
	}
	*b = Block{Valid: true, Dirty: dirty, Prefetched: prefetched, Owner: int8(core)}
	c.tags[set*c.ways+way] = tag
	c.freeCnt[set]--
	c.bustMemo(set)
	c.Stats.Occupancy[core]++
	if prefetched {
		c.Stats.PrefetchFills++
	}
	if c.lru != nil {
		c.lru.OnFill(set, way)
	} else {
		c.policy.OnFill(set, way)
	}
}

// evict removes the valid block at (set, way) on behalf of requester and
// returns its description, recording theft accounting.
func (c *Cache) evict(set, way, requester int) Victim {
	b := &c.blocks[set*c.ways+way]
	v := Victim{
		Addr:  c.blockAddr(set, c.tags[set*c.ways+way]),
		Owner: int(b.Owner),
		Valid: true,
		Dirty: b.Dirty,
	}
	if int(b.Owner) != requester {
		v.Theft = true
		c.Stats.TheftsCaused[requester]++
		c.Stats.TheftsExperienced[b.Owner]++
	}
	if b.Dirty {
		c.Stats.Writebacks++
	}
	c.Stats.Occupancy[b.Owner]--
	b.Valid = false
	b.Dirty = false
	c.tags[set*c.ways+way] = noTag
	c.freeCnt[set]++
	if c.lru == nil { // LRU.OnInvalidate is a documented no-op
		c.policy.OnInvalidate(set, way)
	}
	return v
}

func (c *Cache) blockAddr(set int, tag uint64) uint64 {
	return (tag<<c.setBits | uint64(set)) * BlockBytes
}

// InvalidateAddr removes addr if present (back-invalidation for inclusive
// hierarchies) and reports whether it was found and whether it was dirty.
func (c *Cache) InvalidateAddr(addr uint64) (found, dirty bool) {
	set, tag := c.index(addr)
	w := c.findWay(set, tag)
	if w < 0 {
		return false, false
	}
	b := &c.blocks[set*c.ways+w]
	dirty = b.Dirty
	c.Stats.Occupancy[b.Owner]--
	b.Valid = false
	b.Dirty = false
	c.tags[set*c.ways+w] = noTag
	c.freeCnt[set]++
	c.bustMemo(set)
	c.policy.OnInvalidate(set, w)
	return true, dirty
}

// Extract removes addr for an exclusive-hierarchy upward move: the block
// leaves this cache without being treated as an eviction (no theft, no
// writeback; the dirty bit travels with the returned value).
func (c *Cache) Extract(addr uint64) (dirty, found bool) {
	set, tag := c.index(addr)
	w := c.findWay(set, tag)
	if w < 0 {
		return false, false
	}
	b := &c.blocks[set*c.ways+w]
	dirty = b.Dirty
	c.Stats.Occupancy[b.Owner]--
	b.Valid = false
	b.Dirty = false
	c.tags[set*c.ways+w] = noTag
	c.freeCnt[set]++
	c.bustMemo(set)
	c.policy.OnInvalidate(set, w)
	return dirty, true
}

// OccupiedBlocks returns the total number of valid blocks.
func (c *Cache) OccupiedBlocks() uint64 {
	var n uint64
	for i := range c.Stats.Occupancy {
		n += c.Stats.Occupancy[i]
	}
	return n
}

// CapacityBlocks returns the total number of block frames.
func (c *Cache) CapacityBlocks() uint64 { return uint64(c.sets * c.ways) }

// ResetStats zeroes all statistics counters while preserving cache
// contents and replacement state, then reconstructs the occupancy counts
// from the live blocks. Simulation drivers call it at the end of warm-up.
func (c *Cache) ResetStats() {
	c.Stats = newStats(c.cfg.Cores, c.ways)
	for i := range c.blocks {
		if c.blocks[i].Valid {
			c.Stats.Occupancy[c.blocks[i].Owner]++
		}
	}
}
