// Package cache models the set-associative write-back caches and the
// three-level hierarchy (private L1I/L1D/L2, shared LLC) the PInTE paper
// simulates, including the ownership ("theft") accounting from CASHT that
// PInTE builds on, the inclusive / exclusive / non-inclusive LLC modes of
// the case study, and the injection hook the PInTE engine attaches to.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/replacement"
)

// BlockBytes is the cache block (line) size used throughout the model.
const BlockBytes = 64

// Block is one cache line's metadata.
type Block struct {
	Tag   uint64
	Valid bool
	Dirty bool
	// Prefetched is set on prefetch fills and cleared on the first
	// demand hit (at which point the prefetch counts as useful).
	Prefetched bool
	// SysInvalid marks a slot whose contents were invalidated by the
	// PInTE engine; the next fill into it is a "mock theft" (Fig 2b).
	SysInvalid bool
	// Owner is the id of the core that inserted the block.
	Owner int8
}

// Victim describes a block displaced by a fill or invalidation.
type Victim struct {
	Addr  uint64 // block-aligned byte address
	Owner int
	Valid bool
	Dirty bool
	// Theft reports that the eviction displaced valid data inserted by
	// a different core (an inter-core eviction).
	Theft bool
}

// Config describes one cache's geometry.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	HitLatency uint64
	// Policy orders blocks for replacement; nil selects LRU.
	Policy replacement.Policy
	// Cores sizes the per-core statistics arrays; 0 means 1.
	Cores int
}

// Stats aggregates one cache's counters. Per-core slices are indexed by
// core id.
type Stats struct {
	Accesses   []uint64 // demand accesses (loads, stores, code fetches)
	Hits       []uint64
	Misses     []uint64
	Writebacks uint64 // dirty evictions passed to the next level

	// Theft accounting (shared caches).
	TheftsCaused      []uint64 // this core evicted another core's data
	TheftsExperienced []uint64 // this core's data was evicted by another
	// InducedThefts counts PInTE invalidations of this core's valid
	// data; they are also included in TheftsExperienced.
	InducedThefts []uint64
	// MockThefts counts demand fills that landed on a slot the PInTE
	// engine had invalidated (the system "pretending" its data was
	// evicted, Fig 2b).
	MockThefts []uint64

	// ReuseHist counts demand hits by replacement-stack position
	// (index 0 = MRU end). Shared across cores; per-core reuse is
	// tracked by ReuseHistCore.
	ReuseHist     []uint64
	ReuseHistCore [][]uint64

	// Occupancy is the current number of valid blocks owned per core.
	Occupancy []uint64

	// Prefetch effectiveness.
	PrefetchFills  uint64
	PrefetchUseful uint64
}

func newStats(cores, ways int) Stats {
	mk := func() []uint64 { return make([]uint64, cores) }
	hc := make([][]uint64, cores)
	for i := range hc {
		hc[i] = make([]uint64, ways)
	}
	return Stats{
		Accesses:          mk(),
		Hits:              mk(),
		Misses:            mk(),
		TheftsCaused:      mk(),
		TheftsExperienced: mk(),
		InducedThefts:     mk(),
		MockThefts:        mk(),
		ReuseHist:         make([]uint64, ways),
		ReuseHistCore:     hc,
		Occupancy:         mk(),
	}
}

// MissRate returns total misses / total accesses across cores.
func (s *Stats) MissRate() float64 {
	var a, m uint64
	for i := range s.Accesses {
		a += s.Accesses[i]
		m += s.Misses[i]
	}
	if a == 0 {
		return 0
	}
	return float64(m) / float64(a)
}

// MissRateCore returns core's miss ratio.
func (s *Stats) MissRateCore(core int) float64 {
	if s.Accesses[core] == 0 {
		return 0
	}
	return float64(s.Misses[core]) / float64(s.Accesses[core])
}

// ContentionRate returns core's thefts experienced per demand access —
// the paper's contention/interference rate for the LLC.
func (s *Stats) ContentionRate(core int) float64 {
	if s.Accesses[core] == 0 {
		return 0
	}
	return float64(s.TheftsExperienced[core]) / float64(s.Accesses[core])
}

// Cache is a single set-associative write-back cache.
type Cache struct {
	cfg      Config
	sets     int
	ways     int
	setBits  uint
	blocks   []Block
	policy   replacement.Policy
	Stats    Stats
	injector Injector          // LLC only; may be nil
	wbSink   func(addr uint64) // receives PInTE-displaced dirty blocks
	// partition holds per-core fill way-masks (0 = unrestricted); see
	// SetWayPartition.
	partition []uint64
	// observer, when set, sees every demand access (see
	// SetAccessObserver).
	observer func(addr uint64, core int, hit bool)
}

// New builds a cache from cfg. It returns an error on impossible
// geometry (non-power-of-two set count, size not divisible by ways).
func New(cfg Config) (*Cache, error) {
	if cfg.Cores == 0 {
		cfg.Cores = 1
	}
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("cache %s: ways and size must be positive", cfg.Name)
	}
	blocksTotal := cfg.SizeBytes / BlockBytes
	if blocksTotal%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache %s: size %d not divisible into %d ways of %dB blocks",
			cfg.Name, cfg.SizeBytes, cfg.Ways, BlockBytes)
	}
	sets := blocksTotal / cfg.Ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d is not a power of two", cfg.Name, sets)
	}
	pol := cfg.Policy
	if pol == nil {
		pol = replacement.NewLRU()
	}
	pol.Reset(sets, cfg.Ways)
	c := &Cache{
		cfg:     cfg,
		sets:    sets,
		ways:    cfg.Ways,
		setBits: uint(bits.TrailingZeros(uint(sets))),
		blocks:  make([]Block, sets*cfg.Ways),
		policy:  pol,
		Stats:   newStats(cfg.Cores, cfg.Ways),
	}
	return c, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// HitLatency returns the configured hit latency in cycles.
func (c *Cache) HitLatency() uint64 { return c.cfg.HitLatency }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Policy returns the replacement policy instance.
func (c *Cache) Policy() replacement.Policy { return c.policy }

// SetInjector attaches a PInTE injector; pass nil to detach.
func (c *Cache) SetInjector(inj Injector) { c.injector = inj }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	blk := addr / BlockBytes
	return int(blk & uint64(c.sets-1)), blk >> c.setBits
}

func (c *Cache) findWay(set int, tag uint64) int {
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		b := &c.blocks[base+w]
		if b.Valid && b.Tag == tag {
			return w
		}
	}
	return -1
}

// Lookup performs a demand access by core. On a hit the block's
// replacement state is updated, reuse position recorded, dirty bit set
// for writes, and the PInTE injector (if attached) runs afterwards.
// Misses also run the injector: the paper's flow triggers on every LLC
// access.
func (c *Cache) Lookup(addr uint64, core int, isWrite bool) bool {
	set, tag := c.index(addr)
	c.Stats.Accesses[core]++
	w := c.findWay(set, tag)
	hit := w >= 0
	if hit {
		b := &c.blocks[set*c.ways+w]
		pos := c.policy.HitPosition(set, w)
		c.Stats.ReuseHist[pos]++
		c.Stats.ReuseHistCore[core][pos]++
		c.Stats.Hits[core]++
		if b.Prefetched {
			b.Prefetched = false
			c.Stats.PrefetchUseful++
		}
		if isWrite {
			b.Dirty = true
		}
		c.policy.OnHit(set, w)
	} else {
		c.Stats.Misses[core]++
	}
	if c.observer != nil {
		c.observer(addr, core, hit)
	}
	if c.injector != nil {
		c.injector.OnLLCAccess(c, set, core)
	}
	return hit
}

// Probe reports whether addr is present without disturbing any state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	return c.findWay(set, tag) >= 0
}

// Fill inserts addr for core, evicting if necessary, and returns the
// victim (Valid=false when an empty or system-invalidated way absorbed
// the fill). dirty seeds the block's dirty bit (writeback allocations);
// prefetched marks prefetch fills.
func (c *Cache) Fill(addr uint64, core int, dirty, prefetched bool) Victim {
	set, tag := c.index(addr)
	if w := c.findWay(set, tag); w >= 0 {
		// Already present (races between prefetch and demand paths, or
		// a writeback allocating over an existing copy): update flags.
		b := &c.blocks[set*c.ways+w]
		if dirty {
			b.Dirty = true
		}
		return Victim{}
	}
	base := set * c.ways
	mask := c.fillMask(core)
	full := uint64(1)<<uint(c.ways) - 1
	way := -1
	for w := 0; w < c.ways; w++ {
		if mask&(1<<uint(w)) != 0 && !c.blocks[base+w].Valid {
			way = w
			break
		}
	}
	var victim Victim
	if way < 0 {
		if mask == full {
			way = c.policy.Victim(set)
		} else {
			way = c.victimWithin(set, mask)
		}
		victim = c.evict(set, way, core)
	}
	b := &c.blocks[base+way]
	if b.SysInvalid {
		// The PInTE engine hollowed this slot out; inserting on it is
		// the "mock theft" of Fig 2b: the workload behaves as if an
		// adversary's block had been here.
		c.Stats.MockThefts[core]++
		b.SysInvalid = false
	}
	*b = Block{Tag: tag, Valid: true, Dirty: dirty, Prefetched: prefetched, Owner: int8(core)}
	c.Stats.Occupancy[core]++
	if prefetched {
		c.Stats.PrefetchFills++
	}
	c.policy.OnFill(set, way)
	return victim
}

// evict removes the valid block at (set, way) on behalf of requester and
// returns its description, recording theft accounting.
func (c *Cache) evict(set, way, requester int) Victim {
	b := &c.blocks[set*c.ways+way]
	v := Victim{
		Addr:  c.blockAddr(set, b.Tag),
		Owner: int(b.Owner),
		Valid: true,
		Dirty: b.Dirty,
	}
	if int(b.Owner) != requester {
		v.Theft = true
		c.Stats.TheftsCaused[requester]++
		c.Stats.TheftsExperienced[b.Owner]++
	}
	if b.Dirty {
		c.Stats.Writebacks++
	}
	c.Stats.Occupancy[b.Owner]--
	b.Valid = false
	b.Dirty = false
	c.policy.OnInvalidate(set, way)
	return v
}

func (c *Cache) blockAddr(set int, tag uint64) uint64 {
	return (tag<<c.setBits | uint64(set)) * BlockBytes
}

// InvalidateAddr removes addr if present (back-invalidation for inclusive
// hierarchies) and reports whether it was found and whether it was dirty.
func (c *Cache) InvalidateAddr(addr uint64) (found, dirty bool) {
	set, tag := c.index(addr)
	w := c.findWay(set, tag)
	if w < 0 {
		return false, false
	}
	b := &c.blocks[set*c.ways+w]
	dirty = b.Dirty
	c.Stats.Occupancy[b.Owner]--
	b.Valid = false
	b.Dirty = false
	c.policy.OnInvalidate(set, w)
	return true, dirty
}

// Extract removes addr for an exclusive-hierarchy upward move: the block
// leaves this cache without being treated as an eviction (no theft, no
// writeback; the dirty bit travels with the returned value).
func (c *Cache) Extract(addr uint64) (dirty, found bool) {
	set, tag := c.index(addr)
	w := c.findWay(set, tag)
	if w < 0 {
		return false, false
	}
	b := &c.blocks[set*c.ways+w]
	dirty = b.Dirty
	c.Stats.Occupancy[b.Owner]--
	b.Valid = false
	b.Dirty = false
	c.policy.OnInvalidate(set, w)
	return dirty, true
}

// OccupiedBlocks returns the total number of valid blocks.
func (c *Cache) OccupiedBlocks() uint64 {
	var n uint64
	for i := range c.Stats.Occupancy {
		n += c.Stats.Occupancy[i]
	}
	return n
}

// CapacityBlocks returns the total number of block frames.
func (c *Cache) CapacityBlocks() uint64 { return uint64(c.sets * c.ways) }

// ResetStats zeroes all statistics counters while preserving cache
// contents and replacement state, then reconstructs the occupancy counts
// from the live blocks. Simulation drivers call it at the end of warm-up.
func (c *Cache) ResetStats() {
	c.Stats = newStats(c.cfg.Cores, c.ways)
	for i := range c.blocks {
		if c.blocks[i].Valid {
			c.Stats.Occupancy[c.blocks[i].Owner]++
		}
	}
}
