package cache

import (
	"testing"
)

// newBenchLLC builds the paper's LLC geometry (4MB, 16-way) for two
// cores, pre-filled so lookups exercise steady-state full sets.
func newBenchLLC(tb testing.TB) *Cache {
	tb.Helper()
	c := MustNew(Config{
		Name: "LLC", SizeBytes: 4 << 20, Ways: 16, HitLatency: 30, Cores: 2,
	})
	// Fill every frame: sets*ways distinct blocks.
	for i := 0; i < c.Sets()*c.Ways(); i++ {
		c.Fill(uint64(i)*BlockBytes, i%2, false, false)
	}
	return c
}

// BenchmarkLLCLookup measures the demand-lookup fast path on a full LLC:
// a hit-heavy stream with periodic repeat hits (the memo path) and
// misses (the scan + miss-memo path). This is the innermost call of
// every simulated memory access.
func BenchmarkLLCLookup(b *testing.B) {
	c := newBenchLLC(b)
	resident := uint64(c.Sets()*c.Ways()) * BlockBytes
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i) * BlockBytes
		c.Lookup(addr%resident, 0, false) // hit
		c.Lookup(addr%resident, 0, false) // repeat hit (memo path)
		c.Lookup(resident+addr, 0, false) // miss
	}
}

// BenchmarkLLCLookupFill measures the full miss-then-fill sequence the
// hierarchy performs on every demand miss, including eviction.
func BenchmarkLLCLookupFill(b *testing.B) {
	c := newBenchLLC(b)
	resident := uint64(c.Sets()*c.Ways()) * BlockBytes
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := resident + uint64(i)*BlockBytes
		if c.Lookup(addr, 0, false) {
			b.Fatal("unexpected hit")
		}
		c.Fill(addr, 0, false, false)
	}
}

// TestLookupFillNoAllocs guards the allocation-free hot path: steady-
// state demand lookups and fills must not allocate — any regression here
// multiplies across hundreds of millions of simulated accesses.
func TestLookupFillNoAllocs(t *testing.T) {
	c := newBenchLLC(t)
	resident := uint64(c.Sets()*c.Ways()) * BlockBytes
	var i uint64
	allocs := testing.AllocsPerRun(200, func() {
		addr := i * BlockBytes
		c.Lookup(addr%resident, 0, false) // hit
		c.Lookup(addr%resident, 0, true)  // repeat hit (write)
		miss := resident + addr
		c.Lookup(miss, 1, false) // miss
		c.Fill(miss, 1, false, false)
		i++
	})
	if allocs != 0 {
		t.Fatalf("lookup/fill hot path allocates %.1f times per access group, want 0", allocs)
	}
}

// TestStatsRatesGuardZeroAndRange pins the rate accessors' edge
// behaviour: no accesses or an out-of-range core must yield 0, never NaN
// or a panic (sweep reports serialise these values straight to JSON).
func TestStatsRatesGuardZeroAndRange(t *testing.T) {
	fresh := func() *Cache {
		return MustNew(Config{Name: "t", SizeBytes: 1 << 10, Ways: 2, HitLatency: 1, Cores: 2})
	}
	cases := []struct {
		name string
		prep func(*Cache)
		rate func(*Cache) float64
		want float64
	}{
		{"MissRate/no-accesses", func(*Cache) {}, func(c *Cache) float64 { return c.Stats.MissRate() }, 0},
		{"MissRateCore/no-accesses", func(*Cache) {}, func(c *Cache) float64 { return c.Stats.MissRateCore(0) }, 0},
		{"MissRateCore/negative-core", func(*Cache) {}, func(c *Cache) float64 { return c.Stats.MissRateCore(-1) }, 0},
		{"MissRateCore/core-past-range", func(*Cache) {}, func(c *Cache) float64 { return c.Stats.MissRateCore(7) }, 0},
		{"ContentionRate/no-accesses", func(*Cache) {}, func(c *Cache) float64 { return c.Stats.ContentionRate(1) }, 0},
		{"ContentionRate/negative-core", func(*Cache) {}, func(c *Cache) float64 { return c.Stats.ContentionRate(-3) }, 0},
		{"ContentionRate/core-past-range", func(*Cache) {}, func(c *Cache) float64 { return c.Stats.ContentionRate(2) }, 0},
		{
			"MissRateCore/idle-core-while-other-active",
			func(c *Cache) { c.Lookup(0, 0, false) },
			func(c *Cache) float64 { return c.Stats.MissRateCore(1) },
			0,
		},
		{
			"MissRate/all-misses",
			func(c *Cache) { c.Lookup(0, 0, false); c.Lookup(1<<20, 1, false) },
			func(c *Cache) float64 { return c.Stats.MissRate() },
			1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := fresh()
			tc.prep(c)
			got := tc.rate(c)
			if got != tc.want {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			if got != got {
				t.Fatal("rate returned NaN")
			}
		})
	}
}
