package cache

import "fmt"

// Front capture: the cache-side half of the fan-out sweep executor
// (internal/sim). Under a non-inclusive hierarchy with no prefetchers,
// the private levels (L1I, L1D, L2) and everything above them evolve
// identically across every P_Induce point of a sweep group: replacement
// in those levels depends only on the access order, fills happen on
// every miss regardless of where the data came from, and nothing below
// the L2 feeds back into them. Only the LLC (where the PInTE injector
// lives), the DRAM timing and the cycle accounting differ per point.
//
// A capture-mode hierarchy exploits that: it runs the front end once,
// stops every demand access at the L2 boundary, and records the sparse
// stream of accesses that would have gone below — each with its retiring
// instruction index, whether it descends to the LLC (L2 miss) and which
// dirty L2 victims it pushed down. Follower simulations then replay
// just that stream against their own private LLC + memory via
// DescendLLC / WritebackToLLC, reusing the exact production code for
// the levels that differ.

// FrontEvent is one demand access that left a core's L1 during a
// capture pass: the part of the access the front end cannot price
// point-independently.
type FrontEvent struct {
	// Instr is the core's retiring-instruction index when the access
	// issued (Instrs increments after retirement, so this equals the
	// zero-based index of the triggering trace record).
	Instr uint64
	// Addr is the accessed data or fetch address.
	Addr uint64
	// Kind is the demand access type (Load, StoreAccess, Ifetch).
	Kind AccessKind
	// Descend marks an L2 miss: the follower must run the below-L2 leg
	// (DescendLLC) to learn the access's latency.
	Descend bool
	// WBs counts the dirty L2 victims this access pushed toward the
	// LLC, in order, drawn from the capture's writeback address queue
	// (WritebackToLLC per address, after the descend).
	WBs uint8
}

// FrontCapture accumulates the events and writeback addresses of a
// capture pass. The executor swaps the backing slices out per batch;
// Reset rearms them.
type FrontCapture struct {
	Events  []FrontEvent
	WBAddrs []uint64

	instrs *uint64
	cur    FrontEvent
}

// Reset clears the captured streams, retaining capacity.
func (c *FrontCapture) Reset() {
	c.Events = c.Events[:0]
	c.WBAddrs = c.WBAddrs[:0]
}

func (c *FrontCapture) openEvent(addr uint64, kind AccessKind) {
	c.cur = FrontEvent{Instr: *c.instrs, Addr: addr, Kind: kind}
}

func (c *FrontCapture) markDescend() { c.cur.Descend = true }

func (c *FrontCapture) addWriteback(addr uint64) {
	c.cur.WBs++
	c.WBAddrs = append(c.WBAddrs, addr)
}

func (c *FrontCapture) closeEvent() { c.Events = append(c.Events, c.cur) }

// SetFrontCapture switches the hierarchy into capture mode: every
// demand access that misses a core's L1 is recorded into cap instead of
// descending past the L2, and the LLC and memory are never touched.
// instrs must point at the driving core's instruction counter (read at
// event-open time to stamp each event with its trace record index).
//
// Capture mode is only sound when the levels above the LLC cannot be
// influenced by it: the hierarchy must be non-inclusive (no
// back-invalidation, no exclusive dirty-bit coupling) and prefetcher-
// free (prefetchers probe and fill the LLC). Anything else is rejected.
func (h *Hierarchy) SetFrontCapture(cap *FrontCapture, instrs *uint64) error {
	if h.incl != NonInclusive {
		return fmt.Errorf("cache: front capture requires a non-inclusive hierarchy, have %v", h.incl)
	}
	for core := 0; core < h.cores; core++ {
		if h.pfL1I[core] != nil || h.pfL1D[core] != nil || h.pfL2[core] != nil {
			return fmt.Errorf("cache: front capture requires a prefetcher-free hierarchy")
		}
	}
	cap.instrs = instrs
	h.capture = cap
	return nil
}

// DescendLLC runs the below-L2 leg of a demand access — LLC lookup
// (where the PInTE injector fires, on hits and misses alike), the
// memory access and LLC fill on a miss, and dirty-victim writeback —
// and returns its latency. It is exactly the leg a capture-mode front
// skipped: now must be the issuing core's cycle count plus the L1 and
// L2 hit latencies, matching what the in-line access path would pass.
func (h *Hierarchy) DescendLLC(core int, addr, now uint64) uint64 {
	return h.fromLLC(core, addr, now)
}

// WritebackToLLC replays one dirty L2 victim's writeback fill into the
// LLC — the non-inclusive half of fillL2 a capture-mode front recorded
// instead of performing.
func (h *Hierarchy) WritebackToLLC(core int, addr uint64) {
	h.Stats.LLCWritebackFills++
	lv := h.llc.Fill(addr, core, true, false)
	h.handleLLCVictim(lv, 0)
}
