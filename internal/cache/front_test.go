package cache

import (
	"math/rand/v2"
	"testing"
)

// deadMemory fails the test on any access: a capture-mode hierarchy
// must never reach below the L2.
type deadMemory struct{ t *testing.T }

func (m *deadMemory) Access(now, addr uint64, isWrite bool) uint64 {
	m.t.Errorf("capture-mode hierarchy touched memory (addr %#x write=%v)", addr, isWrite)
	return 0
}

// frontAccess is one step of the synthetic workload shared by the
// capture tests: a mix of fetches, loads and stores over a footprint
// larger than the L2 so descends and dirty L2 victims both occur.
type frontAccess struct {
	pc   uint64
	addr uint64
	kind AccessKind
}

func frontWorkload(n int) []frontAccess {
	rng := rand.New(rand.NewPCG(9, 9))
	accs := make([]frontAccess, 0, n)
	for i := 0; i < n; i++ {
		a := frontAccess{pc: 0x400000 + uint64(rng.IntN(256))*BlockBytes}
		switch rng.IntN(4) {
		case 0:
			a.kind = Ifetch
			a.addr = a.pc
		case 1:
			a.kind = StoreAccess
			a.addr = uint64(rng.IntN(1024)) * BlockBytes
		default:
			a.kind = Load
			a.addr = uint64(rng.IntN(1024)) * BlockBytes
		}
		accs = append(accs, a)
	}
	return accs
}

// TestFrontCaptureMatchesInline drives the same access sequence through
// an in-line hierarchy and a capture-mode one, then replays the captured
// below-L2 stream into a third. The private levels must evolve
// identically in both passes, the capture pass must never touch LLC or
// memory, and the replayed LLC + memory must end up exactly where the
// in-line run's did — that three-way agreement is what makes the
// fan-out digest executor sound.
func TestFrontCaptureMatchesInline(t *testing.T) {
	cfg := tinyHierCfg(1, NonInclusive)
	accs := frontWorkload(30_000)

	mem := &flatMemory{latency: 160}
	inline := MustNewHierarchy(cfg, mem)
	for i, a := range accs {
		inline.Access(0, a.pc, a.addr, a.kind, uint64(i))
	}

	front := MustNewHierarchy(cfg, &deadMemory{t: t})
	var cap FrontCapture
	var instrs uint64
	if err := front.SetFrontCapture(&cap, &instrs); err != nil {
		t.Fatal(err)
	}
	for i, a := range accs {
		instrs = uint64(i)
		front.Access(0, a.pc, a.addr, a.kind, uint64(i))
	}

	// Private levels saw the same hits and misses in both passes.
	for _, lv := range []struct {
		name          string
		inline, front *Cache
	}{
		{"L1I", inline.L1I(0), front.L1I(0)},
		{"L1D", inline.L1D(0), front.L1D(0)},
		{"L2", inline.L2(0), front.L2(0)},
	} {
		if lv.inline.Stats.Hits[0] != lv.front.Stats.Hits[0] ||
			lv.inline.Stats.Misses[0] != lv.front.Stats.Misses[0] {
			t.Errorf("%s diverged: inline %d/%d hits/misses, capture %d/%d",
				lv.name, lv.inline.Stats.Hits[0], lv.inline.Stats.Misses[0],
				lv.front.Stats.Hits[0], lv.front.Stats.Misses[0])
		}
	}
	if front.Stats.LLCDemandFills != 0 || front.Stats.LLCWritebackFills != 0 ||
		front.LLC().Stats.Hits[0] != 0 || front.LLC().Stats.Misses[0] != 0 {
		t.Errorf("capture pass touched the LLC: %+v", front.Stats)
	}

	// The event stream itself: stamps are the retiring-instruction
	// indices (non-decreasing, in range), descends mark exactly the
	// in-line run's L2 misses, and the writeback queue is fully owned.
	var descends, wbSum uint64
	last := uint64(0)
	for _, ev := range cap.Events {
		if ev.Instr < last || ev.Instr >= uint64(len(accs)) {
			t.Fatalf("event stamp %d out of order (prev %d, total %d)", ev.Instr, last, len(accs))
		}
		last = ev.Instr
		if ev.Descend {
			descends++
		}
		wbSum += uint64(ev.WBs)
	}
	if want := inline.L2(0).Stats.Misses[0]; descends != want {
		t.Errorf("captured %d descends, in-line L2 saw %d misses", descends, want)
	}
	if wbSum != uint64(len(cap.WBAddrs)) {
		t.Errorf("event WB counts sum to %d but %d addresses were queued", wbSum, len(cap.WBAddrs))
	}

	// Replaying the stream reproduces the in-line LLC and memory.
	rmem := &flatMemory{latency: 160}
	replay := MustNewHierarchy(cfg, rmem)
	wb := 0
	for _, ev := range cap.Events {
		if ev.Descend {
			replay.DescendLLC(0, ev.Addr, ev.Instr)
		}
		for k := uint8(0); k < ev.WBs; k++ {
			replay.WritebackToLLC(0, cap.WBAddrs[wb])
			wb++
		}
	}
	if wb != len(cap.WBAddrs) {
		t.Fatalf("replay consumed %d of %d writebacks", wb, len(cap.WBAddrs))
	}
	if a, b := replay.LLC().Stats, inline.LLC().Stats; a.Hits[0] != b.Hits[0] || a.Misses[0] != b.Misses[0] {
		t.Errorf("replayed LLC diverged: %d/%d hits/misses, in-line %d/%d",
			a.Hits[0], a.Misses[0], b.Hits[0], b.Misses[0])
	}
	if replay.Stats.LLCDemandFills != inline.Stats.LLCDemandFills ||
		replay.Stats.LLCWritebackFills != inline.Stats.LLCWritebackFills {
		t.Errorf("replayed fills diverged: demand %d/%d, writeback %d/%d",
			replay.Stats.LLCDemandFills, inline.Stats.LLCDemandFills,
			replay.Stats.LLCWritebackFills, inline.Stats.LLCWritebackFills)
	}
	if rmem.reads != mem.reads || rmem.writes != mem.writes {
		t.Errorf("replayed memory traffic diverged: %d/%d reads, %d/%d writes",
			rmem.reads, mem.reads, rmem.writes, mem.writes)
	}
}

// TestFrontCaptureRejectsUnsupported checks the soundness gate:
// inclusion modes with below-L2 feedback into the private levels and
// prefetcher-equipped hierarchies cannot be captured.
func TestFrontCaptureRejectsUnsupported(t *testing.T) {
	var cap FrontCapture
	var instrs uint64
	for _, tc := range []struct {
		name string
		cfg  HierarchyConfig
	}{
		{"inclusive", tinyHierCfg(1, Inclusive)},
		{"exclusive", tinyHierCfg(1, Exclusive)},
	} {
		h := MustNewHierarchy(tc.cfg, &flatMemory{latency: 100})
		if err := h.SetFrontCapture(&cap, &instrs); err == nil {
			t.Errorf("%s hierarchy accepted front capture", tc.name)
		}
	}
	cfg := tinyHierCfg(1, NonInclusive)
	cfg.Prefetch = "0NN"
	h := MustNewHierarchy(cfg, &flatMemory{latency: 100})
	if err := h.SetFrontCapture(&cap, &instrs); err == nil {
		t.Error("prefetcher-equipped hierarchy accepted front capture")
	}
}
