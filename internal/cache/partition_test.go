package cache

import (
	"math/rand/v2"
	"testing"
)

func TestSetWayPartitionValidation(t *testing.T) {
	c := smallCache(t, 2)
	if err := c.SetWayPartition(0, 1<<5); err == nil {
		t.Error("mask beyond associativity accepted")
	}
	if err := c.SetWayPartition(5, 0b0011); err == nil {
		t.Error("core out of range accepted")
	}
	if err := c.SetWayPartition(0, 0b0011); err != nil {
		t.Fatal(err)
	}
	if got := c.WayPartition(0); got != 0b0011 {
		t.Fatalf("mask = %#b", got)
	}
	if got := c.WayPartition(1); got != 0 {
		t.Fatalf("unpartitioned core mask = %#b, want 0", got)
	}
}

func TestPartitionedFillsStayInMask(t *testing.T) {
	c := smallCache(t, 2) // 8 sets × 4 ways
	if err := c.SetWayPartition(0, 0b0011); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 20_000; i++ {
		addr := uint64(rng.IntN(512)) * BlockBytes
		if !c.Lookup(addr, 0, false) {
			c.Fill(addr, 0, false, false)
		}
	}
	// Core 0 may only occupy ways 0 and 1 of each set: at most
	// 2 blocks × 8 sets.
	if occ := c.Stats.Occupancy[0]; occ > 16 {
		t.Fatalf("partitioned core occupies %d blocks, cap is 16", occ)
	}
	for set := 0; set < c.Sets(); set++ {
		for w := 2; w < 4; w++ {
			if c.BlockValid(set, w) && c.BlockOwner(set, w) == 0 {
				t.Fatalf("core 0 block found outside its partition: set %d way %d", set, w)
			}
		}
	}
}

func TestPartitionIsolatesCores(t *testing.T) {
	c := smallCache(t, 2)
	if err := c.SetWayPartition(0, 0b0011); err != nil {
		t.Fatal(err)
	}
	if err := c.SetWayPartition(1, 0b1100); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 40_000; i++ {
		core := i % 2
		addr := uint64(core)<<30 + uint64(rng.IntN(512))*BlockBytes
		if !c.Lookup(addr, core, false) {
			c.Fill(addr, core, false, false)
		}
	}
	// Disjoint partitions: no inter-core evictions at all.
	if c.Stats.TheftsCaused[0]+c.Stats.TheftsCaused[1] != 0 {
		t.Fatalf("thefts across disjoint partitions: %v", c.Stats.TheftsCaused)
	}
}

func TestPartitionVictimIsStackDeepest(t *testing.T) {
	c := smallCache(t, 1)
	if err := c.SetWayPartition(0, 0b0111); err != nil {
		t.Fatal(err)
	}
	setStride := uint64(8 * BlockBytes)
	// Fill ways 0..2 of set 0 (partition size 3).
	for i := 0; i < 3; i++ {
		c.Fill(uint64(i)*setStride, 0, false, false)
	}
	// Touch block 0 so block 1 becomes the partition's LRU.
	c.Lookup(0, 0, false)
	v := c.Fill(3*setStride, 0, false, false)
	if !v.Valid || v.Addr != setStride {
		t.Fatalf("victim = %+v, want the partition's LRU block %#x", v, setStride)
	}
}

func TestPartitionHitsOutsideMaskStillHit(t *testing.T) {
	c := smallCache(t, 2)
	// Core 1 fills a block in way space core 0 cannot allocate into.
	addr := uint64(0x7000)
	c.Fill(addr, 1, false, false)
	if err := c.SetWayPartition(0, 0b0001); err != nil {
		t.Fatal(err)
	}
	// Core 0 can still hit it (hits are unrestricted, as with RDT).
	if !c.Lookup(addr, 0, false) {
		t.Fatal("partitioned core missed a resident block")
	}
}

func TestPartitionZeroMaskUnrestricts(t *testing.T) {
	c := smallCache(t, 1)
	if err := c.SetWayPartition(0, 0b0001); err != nil {
		t.Fatal(err)
	}
	if err := c.SetWayPartition(0, 0); err != nil {
		t.Fatal(err)
	}
	setStride := uint64(8 * BlockBytes)
	for i := 0; i < 4; i++ {
		c.Fill(uint64(i)*setStride, 0, false, false)
	}
	if occ := c.Stats.Occupancy[0]; occ != 4 {
		t.Fatalf("occupancy %d after unrestricting, want 4", occ)
	}
}
