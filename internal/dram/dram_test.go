package dram

import (
	"testing"
	"testing/quick"
)

func TestNewRejectsBadConfig(t *testing.T) {
	bad := Default()
	bad.Channels = 3
	if _, err := New(bad); err == nil {
		t.Error("non-power-of-two channels accepted")
	}
	bad = Default()
	bad.BanksPerRank = 3 // ranks 2 × banks 3 = 6 per channel
	if _, err := New(bad); err == nil {
		t.Error("non-power-of-two banks per channel accepted")
	}
	bad = Default()
	bad.Channels = 0
	if _, err := New(bad); err == nil {
		t.Error("zero banks accepted")
	}
}

// sameBankStride is the smallest address stride that returns to the same
// channel and bank under the Default geometry: channels × ranks × banks ×
// block = 2 × 2 × 8 × 64 bytes.
const sameBankStride = 2 * 2 * 8 * 64

func TestRowBufferHitFasterThanMiss(t *testing.T) {
	d := MustNew(Default())
	addr := uint64(0x1000)
	first := d.Access(0, addr, false)
	// Same bank, same 8KB row, far enough apart that the bank is idle.
	second := d.Access(100_000, addr+sameBankStride, false)
	if second >= first {
		t.Fatalf("row hit (%d) not faster than row miss (%d)", second, first)
	}
	cfg := Default()
	if first != cfg.RowMissLatency || second != cfg.RowHitLatency {
		t.Fatalf("latencies %d/%d, want %d/%d", first, second,
			cfg.RowMissLatency, cfg.RowHitLatency)
	}
	if d.Stats.RowHits != 1 || d.Stats.RowMisses != 1 {
		t.Fatalf("row stats %d/%d, want 1/1", d.Stats.RowHits, d.Stats.RowMisses)
	}
}

func TestBankQueueingDelaysBackToBack(t *testing.T) {
	d := MustNew(Default())
	addr := uint64(0x2000)
	d.Access(0, addr, false)
	// Immediate second access to the same bank queues behind it.
	lat := d.Access(1, addr+sameBankStride, false)
	if lat <= Default().RowHitLatency {
		t.Fatalf("back-to-back access latency %d shows no queueing", lat)
	}
	if d.Stats.QueueCycles == 0 {
		t.Fatal("queue cycles not recorded")
	}
}

func TestChannelInterleavingAvoidsQueueing(t *testing.T) {
	d := MustNew(Default())
	// Consecutive blocks go to different channels: no bank conflict.
	l1 := d.Access(0, 0, false)
	l2 := d.Access(1, 64, false)
	if l2 > l1 {
		t.Fatalf("adjacent blocks should interleave channels: %d then %d", l1, l2)
	}
}

func TestWritesCountedSeparately(t *testing.T) {
	d := MustNew(Default())
	d.Access(0, 0x40, true)
	d.Access(10_000, 0x40, false)
	if d.Stats.Writes != 1 || d.Stats.Reads != 1 {
		t.Fatalf("reads/writes = %d/%d, want 1/1", d.Stats.Reads, d.Stats.Writes)
	}
	// Writes must not pollute the read-latency average.
	if d.Stats.AvgReadLatency() != float64(Default().RowHitLatency) {
		t.Fatalf("avg read latency %v polluted by write", d.Stats.AvgReadLatency())
	}
}

func TestHalvedHasFewerResources(t *testing.T) {
	def, hal := Default(), Halved()
	if hal.Channels >= def.Channels {
		t.Error("halved config does not reduce channels")
	}
	if hal.BanksPerRank >= def.BanksPerRank {
		t.Error("halved config does not reduce banks")
	}
	if hal.RowBytes >= def.RowBytes {
		t.Error("halved config does not reduce row buffer")
	}
}

func TestHalvedCongestsFaster(t *testing.T) {
	latTotal := func(cfg Config) uint64 {
		d := MustNew(cfg)
		var total uint64
		for i := 0; i < 1000; i++ {
			total += d.Access(uint64(i), uint64(i)*64, false)
		}
		return total
	}
	if latTotal(Halved()) <= latTotal(Default()) {
		t.Fatal("halved DRAM not slower under a burst")
	}
}

// TestLatencyMonotonicProperty: latency is always at least the row-hit
// service time and queueing never makes time go backwards.
func TestLatencyBoundsProperty(t *testing.T) {
	cfg := Default()
	d := MustNew(cfg)
	now := uint64(0)
	f := func(stepRaw uint16, addrRaw uint32) bool {
		now += uint64(stepRaw)
		lat := d.Access(now, uint64(addrRaw)*8, false)
		return lat >= cfg.RowHitLatency && lat < cfg.RowMissLatency+1_000_000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRowHitRate(t *testing.T) {
	d := MustNew(Default())
	// A pure stream within one row (after the first activation per bank).
	for i := 0; i < 64; i++ {
		d.Access(uint64(i*1000), uint64(i)*64, false)
	}
	if hr := d.Stats.RowHitRate(); hr < 0.5 {
		t.Fatalf("streaming row hit rate %v too low", hr)
	}
}
