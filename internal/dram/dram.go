// Package dram models main memory with channels, ranks, banks, open-row
// (row-buffer) state and bank busy-time queueing. In 2nd-Trace mode both
// cores share one DRAM instance, so bank conflicts and queueing delays
// produce the off-chip contention component that PInTE deliberately does
// not model (§IV-B) — keeping that distinction measurable.
package dram

import "fmt"

// Config describes the memory system. All times are in core cycles.
type Config struct {
	Channels     int // power of two
	RanksPerChan int
	BanksPerRank int // power of two per rank
	RowBytes     int // row-buffer size

	RowHitLatency  uint64 // ACT already done: CAS + transfer + controller
	RowMissLatency uint64 // PRE + ACT + CAS + transfer + controller
	// BankBusyHit/Miss is how long the bank stays unavailable after an
	// access starts; back-to-back requests to one bank queue behind it.
	BankBusyHit  uint64
	BankBusyMiss uint64
}

// Default returns the paper-inspired configuration: 8GB over 2 channels
// (§III-A), with latencies that put an idle row miss at ~200 core cycles.
func Default() Config {
	return Config{
		Channels:       2,
		RanksPerChan:   2,
		BanksPerRank:   8,
		RowBytes:       8 << 10,
		RowHitLatency:  110,
		RowMissLatency: 210,
		BankBusyHit:    24,
		BankBusyMiss:   48,
	}
}

// Halved returns Default with key resources halved (channels, banks, row
// buffer) — the Fig 10 proxy-system trick the paper uses to "facilitate
// contention off-chip that PInTE does not model".
func Halved() Config {
	c := Default()
	c.Channels = 1
	c.BanksPerRank = 4
	c.RowBytes /= 2
	c.BankBusyHit *= 2
	c.BankBusyMiss *= 2
	return c
}

// Stats counts memory traffic and timing.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64
	TotalLatency uint64 // sum of read latencies (queue + service)
	QueueCycles  uint64 // sum of time spent waiting for a busy bank
}

// AvgReadLatency returns mean read latency in cycles.
func (s *Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Reads)
}

// RowHitRate returns row-buffer hits over all accesses.
func (s *Stats) RowHitRate() float64 {
	t := s.RowHits + s.RowMisses
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}

type bank struct {
	openRow   int64
	busyUntil uint64
}

// DRAM is a shared memory instance. It is not safe for concurrent use;
// the multi-core driver interleaves cores onto it deterministically.
type DRAM struct {
	cfg   Config
	banks []bank
	Stats Stats

	chanMask uint64
	bankMask uint64
	chanBits uint
	bankBits uint
	rowShift uint
}

// New builds a DRAM model; it returns an error for non-power-of-two
// channel or bank counts.
func New(cfg Config) (*DRAM, error) {
	nb := cfg.Channels * cfg.RanksPerChan * cfg.BanksPerRank
	if nb <= 0 {
		return nil, fmt.Errorf("dram: no banks configured")
	}
	if cfg.Channels&(cfg.Channels-1) != 0 {
		return nil, fmt.Errorf("dram: channels must be a power of two, got %d", cfg.Channels)
	}
	bpc := cfg.RanksPerChan * cfg.BanksPerRank
	if bpc&(bpc-1) != 0 {
		return nil, fmt.Errorf("dram: banks per channel must be a power of two, got %d", bpc)
	}
	d := &DRAM{cfg: cfg, banks: make([]bank, nb)}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	d.chanMask = uint64(cfg.Channels - 1)
	d.chanBits = log2u(cfg.Channels)
	d.bankMask = uint64(bpc - 1)
	d.bankBits = log2u(bpc)
	d.rowShift = log2u(cfg.RowBytes)
	return d, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *DRAM {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

func log2u(v int) uint {
	n := uint(0)
	for 1<<n < v {
		n++
	}
	return n
}

// Access services one memory request starting at core time now and
// returns its total latency (queueing included). Consecutive blocks
// interleave across channels, then banks; a block's row is its address
// divided by the row size, so streams enjoy row-buffer hits.
func (d *DRAM) Access(now, addr uint64, isWrite bool) uint64 {
	blk := addr / 64
	ch := blk & d.chanMask
	bk := (blk >> d.chanBits) & d.bankMask
	b := &d.banks[ch*(d.bankMask+1)+bk]
	row := int64(addr >> d.rowShift)

	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	queue := start - now

	var service, busy uint64
	if b.openRow == row {
		service, busy = d.cfg.RowHitLatency, d.cfg.BankBusyHit
		d.Stats.RowHits++
	} else {
		service, busy = d.cfg.RowMissLatency, d.cfg.BankBusyMiss
		d.Stats.RowMisses++
		b.openRow = row
	}
	b.busyUntil = start + busy

	lat := queue + service
	if isWrite {
		d.Stats.Writes++
		return lat
	}
	d.Stats.Reads++
	d.Stats.TotalLatency += lat
	d.Stats.QueueCycles += queue
	return lat
}
