package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartWritesProfiles arms every file-backed profiler and checks the
// happy path leaves non-empty artifacts behind.
func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	o := &Options{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	stop, err := o.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{o.CPUProfile, o.MemProfile, o.Trace} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s missing: %v", p, err)
		} else if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestStartBadPathFailsCleanly checks an uncreatable profile path
// surfaces an error from Start (not a silent no-op) and arms nothing.
func TestStartBadPathFailsCleanly(t *testing.T) {
	o := &Options{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")}
	if _, err := o.Start(); err == nil {
		t.Fatal("Start succeeded with an uncreatable cpuprofile path")
	}
}

// TestMemProfileErrorRemovesPartialFile checks a heap-profile write to
// an uncreatable path errors at stop time without leaving debris.
func TestMemProfileErrorRemovesPartialFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof")
	o := &Options{MemProfile: path}
	stop, err := o.Start()
	if err != nil {
		t.Fatal(err) // memprofile defers file work to stop
	}
	if err := stop(); err == nil {
		t.Fatal("stop succeeded with an uncreatable memprofile path")
	}
	if _, err := os.Stat(path); err == nil {
		t.Fatalf("partial profile left behind at %s", path)
	}
}
