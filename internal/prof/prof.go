// Package prof wires the standard Go profilers into a command line.
//
// The simulator binaries expose the same flags (-cpuprofile,
// -memprofile, -trace, -debug); Flags registers them and Start arms
// whichever were set, returning a stop function the caller defers. The
// profile outputs load directly into `go tool pprof` / `go tool trace`,
// which is how the hot-path numbers in DESIGN.md were gathered; -debug
// serves the live expvar page (including the campaign progress
// published by internal/runner via internal/telemetry) and the pprof
// HTTP endpoints for poking at a run while it is still going.
package prof

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"

	_ "expvar"         // registers /debug/vars on the default mux
	_ "net/http/pprof" // registers /debug/pprof on the default mux
)

// Options names the profile outputs. Empty fields are disabled.
type Options struct {
	CPUProfile string // pprof CPU profile path
	MemProfile string // pprof heap profile path (written at stop)
	Trace      string // runtime execution trace path
	// DebugAddr, when non-empty, serves the process debug endpoints —
	// /debug/vars (expvar, including the "pinte.campaign" live progress
	// snapshot) and /debug/pprof — on this address for the lifetime of
	// the run.
	DebugAddr string
}

// Flags registers -cpuprofile, -memprofile, -trace and -debug on fs
// (the default flag set when fs is nil) and returns the Options they
// fill.
func Flags(fs *flag.FlagSet) *Options {
	if fs == nil {
		fs = flag.CommandLine
	}
	o := &Options{}
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&o.MemProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	fs.StringVar(&o.Trace, "trace", "", "write a runtime execution trace to this file")
	fs.StringVar(&o.DebugAddr, "debug", "",
		"serve /debug/vars (live campaign progress) and /debug/pprof on this address, e.g. localhost:6060")
	return o
}

// Start arms the requested profilers. The returned stop function
// flushes and closes every output; call it exactly once, after the
// workload finishes (defer is fine). A nil receiver or an all-empty
// Options yields a no-op stop.
func (o *Options) Start() (stop func() error, err error) {
	if o == nil {
		return func() error { return nil }, nil
	}
	var stops []func() error
	// fail unwinds every profiler armed so far; unwind errors join the
	// original so nothing is silently dropped.
	fail := func(err error) (func() error, error) {
		for i := len(stops) - 1; i >= 0; i-- {
			err = errors.Join(err, stops[i]())
		}
		return nil, err
	}
	// closeProfile finalises one output file: a failed close means the
	// profile on disk is truncated or unflushed, so the partial file is
	// removed rather than left to confuse a later pprof invocation.
	closeProfile := func(kind string, f *os.File) error {
		if err := f.Close(); err != nil {
			os.Remove(f.Name())
			return fmt.Errorf("%s: closing %s: %w", kind, f.Name(), err)
		}
		return nil
	}

	if o.DebugAddr != "" {
		// Listen synchronously so a bad address fails the command up
		// front; serve in the background until stop.
		ln, err := net.Listen("tcp", o.DebugAddr)
		if err != nil {
			return fail(fmt.Errorf("debug endpoint: %w", err))
		}
		srv := &http.Server{Handler: http.DefaultServeMux}
		go srv.Serve(ln) //nolint:errcheck // closed by stop below
		stops = append(stops, func() error {
			return srv.Close()
		})
	}
	if o.CPUProfile != "" {
		f, err := os.Create(o.CPUProfile)
		if err != nil {
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			os.Remove(f.Name())
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return closeProfile("cpuprofile", f)
		})
	}
	if o.Trace != "" {
		f, err := os.Create(o.Trace)
		if err != nil {
			return fail(fmt.Errorf("trace: %w", err))
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			os.Remove(f.Name())
			return fail(fmt.Errorf("trace: %w", err))
		}
		stops = append(stops, func() error {
			trace.Stop()
			return closeProfile("trace", f)
		})
	}
	if o.MemProfile != "" {
		path := o.MemProfile
		stops = append(stops, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				os.Remove(path)
				return fmt.Errorf("memprofile: %w", err)
			}
			return closeProfile("memprofile", f)
		})
	}

	return func() error {
		var errs []error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}, nil
}
