package expt

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

// fig7Metrics are the five run-time metrics whose dynamic similarity the
// paper quantifies (Fig 7a).
var fig7Metrics = []string{"IPC", "MR", "AMAT", "InterfRate", "TheftRate"}

func sampleMetric(s sim.Sample, metric int) float64 {
	switch metric {
	case 0:
		return s.IPC
	case 1:
		return s.MissRate
	case 2:
		return s.AMAT
	case 3:
		return s.InterferenceRate
	case 4:
		return s.TheftRate
	}
	panic(fmt.Sprintf("expt: unknown fig7 metric %d", metric))
}

// Fig7Result reproduces Figure 7: (a) KL divergence between run-time
// metric series under 2nd-Trace (p) and PInTE (q) contention, summarised
// per metric for each CRG criterion; (b) the fraction of 2nd-Trace
// experiments each criterion finds a PInTE match for, plus the
// experiment-count ratio.
type Fig7Result struct {
	// KL[criterion][metric] summarises the matched-pair divergences.
	KL [][]stats.Summary
	// Coverage[criterion] is the matched fraction of 2nd-Trace
	// experiments (paper: ~92% within ±5%).
	Coverage []float64
	// ExperimentRatio is the §IV-E4 count ratio at full scale (7.79×).
	ExperimentRatio float64
}

// seriesKL treats two equal-length metric series as distributions over
// sample indices (Eq 5 with samples as x).
func seriesKL(second, pin []sim.Sample, metric int) float64 {
	n := len(second)
	if len(pin) < n {
		n = len(pin)
	}
	if n == 0 {
		return 0
	}
	p := make([]float64, n)
	q := make([]float64, n)
	for i := 0; i < n; i++ {
		p[i] = sampleMetric(second[i], metric)
		q[i] = sampleMetric(pin[i], metric)
	}
	return stats.KLDivergenceBits(p, q, stats.KLOptions{})
}

// Fig7 computes run-time divergence and CRG coverage.
func Fig7(r *Runner) (*Fig7Result, []*report.Table, error) {
	pairs, err := r.PairsAll()
	if err != nil {
		return nil, nil, err
	}
	sweep, err := r.SweepAll()
	if err != nil {
		return nil, nil, err
	}

	criteria := stats.Criteria()
	res := &Fig7Result{
		KL:       make([][]stats.Summary, len(criteria)),
		Coverage: make([]float64, len(criteria)),
	}
	const traces = 188.0
	res.ExperimentRatio = (traces * (traces - 1) / 2) / (12 * traces)

	for ci, crg := range criteria {
		perMetric := make([][]float64, len(fig7Metrics))
		var matchedTotal, secondTotal int
		for _, w := range r.Scale.Workloads {
			matched := matchByCRG(crg, pairs[w], sweep[w])
			matchedTotal += len(matched)
			secondTotal += len(pairs[w])
			for _, m := range matched {
				for mi := range fig7Metrics {
					perMetric[mi] = append(perMetric[mi],
						seriesKL(m[0].Samples, m[1].Samples, mi))
				}
			}
		}
		res.KL[ci] = make([]stats.Summary, len(fig7Metrics))
		for mi := range fig7Metrics {
			res.KL[ci][mi] = stats.Summarize(perMetric[mi])
		}
		if secondTotal > 0 {
			res.Coverage[ci] = float64(matchedTotal) / float64(secondTotal)
		}
	}

	ta := &report.Table{
		ID:      "fig7a",
		Title:   "KL divergence of run-time metric series, 2nd-Trace vs PInTE (bits)",
		Columns: []string{"CRG", "Metric", "Median", "Q1", "Q3", "Max"},
	}
	for ci, crg := range criteria {
		for mi, m := range fig7Metrics {
			s := res.KL[ci][mi]
			ta.AddRowf(fmt.Sprintf("±%.1f%%", 100*crg.HalfWidth), m,
				s.Median, s.Q1, s.Q3, s.Max)
		}
	}
	ta.Notes = append(ta.Notes,
		"paper: IPC/MR/AMAT series are <<1 bit apart; interference & theft rates run higher by design")

	tb := &report.Table{
		ID:      "fig7b",
		Title:   "CRG coverage of 2nd-Trace experiments by PInTE",
		Columns: []string{"CRG", "Coverage"},
	}
	for ci, crg := range criteria {
		tb.AddRowf(fmt.Sprintf("±%.1f%%", 100*crg.HalfWidth),
			fmt.Sprintf("%.0f%%", 100*res.Coverage[ci]))
	}
	tb.Notes = append(tb.Notes,
		fmt.Sprintf("full-scale experiment-count ratio: %.2fx fewer experiments (paper 7.79x, ~92%% coverage at ±5%%)",
			res.ExperimentRatio))
	return res, []*report.Table{ta, tb}, nil
}
