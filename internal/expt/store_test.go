package expt

import (
	"testing"

	"repro/internal/store"
	"repro/internal/telemetry"
)

// TestMemoCountersFoldIntoStoreExpvar: the expt memo's hit/miss traffic
// is visible on the shared "pinte.store" dashboard.
func TestMemoCountersFoldIntoStoreExpvar(t *testing.T) {
	r := NewRunner(micro())
	cfg := r.Pinte("453.povray", 0.1)
	cfg.WarmupInstrs, cfg.ROIInstrs, cfg.SampleEvery = 20_000, 50_000, 10_000

	before := telemetry.StoreSnapshot()
	if _, err := r.Get(cfg); err != nil {
		t.Fatal(err)
	}
	mid := telemetry.StoreSnapshot()
	if d := mid["memo_misses"] - before["memo_misses"]; d != 1 {
		t.Fatalf("memo_misses delta = %d, want 1", d)
	}
	if _, err := r.Get(cfg); err != nil {
		t.Fatal(err)
	}
	after := telemetry.StoreSnapshot()
	if d := after["memo_hits"] - mid["memo_hits"]; d != 1 {
		t.Fatalf("memo_hits delta = %d, want 1", d)
	}
	if d := after["memo_misses"] - mid["memo_misses"]; d != 0 {
		t.Fatalf("memo hit also counted a miss: delta %d", d)
	}
}

// TestRunnerStoreSurvivesRestart: with a Store configured, a fresh
// Runner (cold memo, as after a process restart) satisfies a repeated
// experiment from the durable layer without executing.
func TestRunnerStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Options{Dir: dir, Fingerprint: "sim-test"})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(micro())
	r.Store = st
	cfg := r.Pinte("453.povray", 0.1)
	cfg.WarmupInstrs, cfg.ROIInstrs, cfg.SampleEvery = 20_000, 50_000, 10_000
	first, err := r.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := store.Open(store.Options{Dir: dir, Fingerprint: "sim-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r2 := NewRunner(micro())
	r2.Store = st2
	before := telemetry.StoreSnapshot()
	second, err := r2.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := telemetry.StoreSnapshot()
	if d := after["hits"] - before["hits"]; d != 1 {
		t.Fatalf("store hits delta = %d, want 1 (cold memo, warm store)", d)
	}
	if first.IPC != second.IPC || first.Instrs != second.Instrs {
		t.Fatalf("restarted runner diverged: %v vs %v", first.IPC, second.IPC)
	}
}
