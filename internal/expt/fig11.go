package expt

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig11Dimension names one case-study row.
type Fig11Dimension int

const (
	// DimReplacement compares LLC replacement policies.
	DimReplacement Fig11Dimension = iota
	// DimInclusion compares LLC inclusion modes.
	DimInclusion
	// DimPrefetch compares prefetcher permutations.
	DimPrefetch
	// DimBranch compares branch predictors.
	DimBranch
)

// String returns the row name.
func (d Fig11Dimension) String() string {
	switch d {
	case DimReplacement:
		return "replacement"
	case DimInclusion:
		return "inclusion"
	case DimPrefetch:
		return "prefetching"
	case DimBranch:
		return "branch-prediction"
	}
	return fmt.Sprintf("Fig11Dimension(%d)", int(d))
}

// fig11Options lists each dimension's options in the paper's order.
func fig11Options(d Fig11Dimension) []string {
	switch d {
	case DimReplacement:
		return []string{"lru", "plru", "nmru", "rrip"}
	case DimInclusion:
		return []string{"in", "ex", "no"}
	case DimPrefetch:
		return []string{"000", "NN0", "NNN", "NNI"}
	case DimBranch:
		return []string{"bimodal", "gshare", "perceptron", "hashed-perceptron"}
	}
	return nil
}

// Fig11Cell aggregates one (dimension, option, P_Induce) point.
type Fig11Cell struct {
	Option string
	// WinShare is the fraction of workloads for which this option had
	// the best IPC at this contention level.
	WinShare float64
	// Primary / Secondary are the paper's per-row comparison metrics
	// averaged over workloads (see Fig11's doc comment).
	Primary   float64
	Secondary float64
}

// Fig11Config is one contention level of one dimension.
type Fig11Config struct {
	PInduce float64
	Cells   []Fig11Cell
	// TieShare is the fraction of workloads where all options landed
	// within 1% of the best (the paper's "statistical tie").
	TieShare float64
	// MultiGoodShare is the fraction where at least two options are
	// within 1% of the best (more than one good solution).
	MultiGoodShare float64
}

// Fig11Row is one case-study dimension across the sweep.
type Fig11Row struct {
	Dimension Fig11Dimension
	Configs   []Fig11Config
}

// Fig11Result reproduces Figure 11: the best design choice as contention
// grows, for replacement, inclusion, prefetching and branch prediction.
// Primary metrics per row: LLC miss rate, LLC miss rate (vs L2 miss rate
// secondary), prefetcher DRAM-miss share, branch accuracy. Secondary:
// interference rate, L2 miss rate, L1D miss rate, tie share.
type Fig11Result struct {
	Rows []Fig11Row
}

// fig11Cfg builds the simulator configuration for one option.
func fig11Cfg(r *Runner, d Fig11Dimension, opt, w string, p float64) (sim.Config, error) {
	cfg := r.base(sim.Config{Mode: sim.PInTE, Workload: w, PInduce: p})
	switch d {
	case DimReplacement:
		cfg.Hier.LLC.Policy = opt
	case DimInclusion:
		incl, err := cache.ParseInclusion(opt)
		if err != nil {
			return cfg, err
		}
		cfg.Hier.Inclusion = incl
	case DimPrefetch:
		cfg.Hier.Prefetch = opt
	case DimBranch:
		cfg.Branch = opt
	}
	return cfg, nil
}

func primaryMetric(d Fig11Dimension, res *sim.Result) float64 {
	switch d {
	case DimReplacement, DimInclusion:
		return res.MissRate
	case DimPrefetch:
		if res.PrefetchIssued == 0 {
			return 0
		}
		return float64(res.PrefetchFromDRAM) / float64(res.PrefetchIssued)
	case DimBranch:
		return res.BranchAccuracy
	}
	return 0
}

func secondaryMetric(d Fig11Dimension, res *sim.Result) float64 {
	switch d {
	case DimReplacement:
		return res.ContentionRate
	case DimInclusion:
		return res.L2MissRate
	case DimPrefetch:
		return res.L1DMissRate
	case DimBranch:
		return res.ContentionRate
	}
	return 0
}

// Fig11 runs the full case study at r's scale.
func Fig11(r *Runner) (*Fig11Result, []*report.Table, error) {
	res := &Fig11Result{}
	var tables []*report.Table
	dims := []Fig11Dimension{DimReplacement, DimInclusion, DimPrefetch, DimBranch}
	for _, d := range dims {
		opts := fig11Options(d)
		row := Fig11Row{Dimension: d}

		// Batch all runs for the dimension up front.
		var cfgs []sim.Config
		for _, p := range r.Scale.Sweep {
			for _, w := range r.Scale.Workloads {
				for _, opt := range opts {
					cfg, err := fig11Cfg(r, d, opt, w, p)
					if err != nil {
						return nil, nil, err
					}
					cfgs = append(cfgs, cfg)
				}
			}
		}
		all, err := r.GetAll(cfgs)
		if err != nil {
			return nil, nil, err
		}

		i := 0
		for _, p := range r.Scale.Sweep {
			fc := Fig11Config{PInduce: p}
			wins := make([]int, len(opts))
			prim := make([][]float64, len(opts))
			sec := make([][]float64, len(opts))
			ties, multi := 0, 0
			for range r.Scale.Workloads {
				ipcs := make([]float64, len(opts))
				for oi := range opts {
					resu := all[i]
					i++
					ipcs[oi] = resu.IPC
					prim[oi] = append(prim[oi], primaryMetric(d, resu))
					sec[oi] = append(sec[oi], secondaryMetric(d, resu))
				}
				best, bestIPC := 0, ipcs[0]
				for oi, v := range ipcs {
					if v > bestIPC {
						best, bestIPC = oi, v
					}
				}
				wins[best]++
				within := 0
				for _, v := range ipcs {
					if bestIPC == 0 || math.Abs(bestIPC-v)/bestIPC <= 0.01 {
						within++
					}
				}
				if within == len(opts) {
					ties++
				}
				if within >= 2 {
					multi++
				}
			}
			nw := float64(len(r.Scale.Workloads))
			for oi, opt := range opts {
				fc.Cells = append(fc.Cells, Fig11Cell{
					Option:    opt,
					WinShare:  float64(wins[oi]) / nw,
					Primary:   stats.Mean(prim[oi]),
					Secondary: stats.Mean(sec[oi]),
				})
			}
			fc.TieShare = float64(ties) / nw
			fc.MultiGoodShare = float64(multi) / nw
			row.Configs = append(row.Configs, fc)
		}
		res.Rows = append(res.Rows, row)

		tbl := &report.Table{
			ID:      "fig11-" + d.String(),
			Title:   fmt.Sprintf("Case study row: %s under growing contention", d),
			Columns: []string{"P_Induce", "option", "win%", "primary", "secondary", "tie%", "multi-good%"},
		}
		for _, fc := range row.Configs {
			for _, c := range fc.Cells {
				tbl.AddRowf(fc.PInduce, c.Option, 100*c.WinShare,
					c.Primary, c.Secondary, 100*fc.TieShare, 100*fc.MultiGoodShare)
			}
		}
		tbl.Notes = append(tbl.Notes, fig11Note(d))
		tables = append(tables, tbl)
	}
	return res, tables, nil
}

func fig11Note(d Fig11Dimension) string {
	switch d {
	case DimReplacement:
		return "paper: pLRU leads at low contention, nMRU mid-range, LRU at extremes; >=50% statistical ties"
	case DimInclusion:
		return "paper: exclusive wins at low contention, inclusive at high; advantages shrink with contention"
	case DimPrefetch:
		return "paper: NNI favoured; prefetcher advantages persist despite contention"
	case DimBranch:
		return "paper: perceptron holds steady and grows past 70% contention; ties shrink as miss criticality rises"
	}
	return ""
}
