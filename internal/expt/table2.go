package expt

import (
	"math"

	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Table2Row is one benchmark's average relative error between PInTE and
// 2nd-Trace results matched by contention rate group.
type Table2Row struct {
	Benchmark string
	Suite     string
	AMAT      float64
	MR        float64
	IPC       float64
	// Matched is how many 2nd-Trace experiments found a same-group
	// PInTE partner.
	Matched int
	// Annotations from the paper's Table II key.
	HighAMATIPC bool // underline: DRAM dependency beyond LLC
	HighMR      bool // '*': core-bound
	HighIPC     bool // '+': LLC-bound
}

// Table2Result reproduces Table II.
type Table2Result struct {
	Rows []Table2Row
	// Avg2006 / Avg2017 / AvgAll are the suite averages the paper
	// reports (its "All" row: AMAT 1.43, MR 1.29, IPC −8.46).
	Avg2006 [3]float64
	Avg2017 [3]float64
	AvgAll  [3]float64
}

// matchByCRG pairs each 2nd-Trace result with the PInTE result whose
// contention rate falls in the same CRG group (closest rate on ties);
// unmatched results are dropped, mirroring §III-E.
func matchByCRG(crg stats.CRG, second, pin []*sim.Result) [][2]*sim.Result {
	var out [][2]*sim.Result
	for _, s := range second {
		g := crg.Group(s.ContentionRate)
		var best *sim.Result
		bestD := math.Inf(1)
		for _, p := range pin {
			if crg.Group(p.ContentionRate) != g {
				continue
			}
			if d := math.Abs(p.ContentionRate - s.ContentionRate); d < bestD {
				best, bestD = p, d
			}
		}
		if best != nil {
			out = append(out, [2]*sim.Result{s, best})
		}
	}
	return out
}

// Table2 computes CRG-matched average relative error (Eq 4) in AMAT, MR
// and IPC per benchmark.
func Table2(r *Runner) (*Table2Result, *report.Table, error) {
	pairs, err := r.PairsAll()
	if err != nil {
		return nil, nil, err
	}
	sweep, err := r.SweepAll()
	if err != nil {
		return nil, nil, err
	}

	crg := stats.DefaultCRG()
	res := &Table2Result{}
	var sums = map[string][4]float64{} // suite → {amat, mr, ipc, n}
	for _, w := range r.Scale.Workloads {
		matched := matchByCRG(crg, pairs[w], sweep[w])
		row := Table2Row{Benchmark: w}
		preset, err := trace.Lookup(w)
		if err == nil {
			row.Suite = preset.Spec.Suite
			row.HighAMATIPC = preset.HighAMATIPCError
			row.HighMR = preset.HighMRError
			row.HighIPC = preset.HighIPCError
		}
		if len(matched) > 0 {
			var amat, mr, ipc float64
			for _, m := range matched {
				second, pin := m[0], m[1]
				amat += clampErr(stats.RelativeError(second.AMAT, pin.AMAT))
				mr += clampErr(stats.RelativeError(second.MissRate, pin.MissRate))
				ipc += clampErr(stats.RelativeError(second.IPC, pin.IPC))
			}
			n := float64(len(matched))
			row.AMAT, row.MR, row.IPC = amat/n, mr/n, ipc/n
			row.Matched = len(matched)
			acc := sums[row.Suite]
			acc[0] += row.AMAT
			acc[1] += row.MR
			acc[2] += row.IPC
			acc[3]++
			sums[row.Suite] = acc
			all := sums["all"]
			all[0] += row.AMAT
			all[1] += row.MR
			all[2] += row.IPC
			all[3]++
			sums["all"] = all
		}
		res.Rows = append(res.Rows, row)
	}
	avg := func(key string) [3]float64 {
		a := sums[key]
		if a[3] == 0 {
			return [3]float64{}
		}
		return [3]float64{a[0] / a[3], a[1] / a[3], a[2] / a[3]}
	}
	res.Avg2006 = avg("SPEC2006")
	res.Avg2017 = avg("SPEC2017")
	res.AvgAll = avg("all")

	tbl := &report.Table{
		ID:      "table2",
		Title:   "Average relative error in high-level metrics, PInTE vs 2nd-Trace (CRG ±5%)",
		Columns: []string{"Benchmark", "AMAT%", "MR%", "IPC%", "#matched", "key"},
	}
	for _, row := range res.Rows {
		key := ""
		if row.HighAMATIPC {
			key += "_" // paper underline
		}
		if row.HighMR {
			key += "*"
		}
		if row.HighIPC {
			key += "+"
		}
		tbl.AddRowf(row.Benchmark, row.AMAT, row.MR, row.IPC, row.Matched, key)
	}
	tbl.AddRowf("AVG SPEC2006", res.Avg2006[0], res.Avg2006[1], res.Avg2006[2], "", "")
	tbl.AddRowf("AVG SPEC2017", res.Avg2017[0], res.Avg2017[1], res.Avg2017[2], "", "")
	tbl.AddRowf("AVG All", res.AvgAll[0], res.AvgAll[1], res.AvgAll[2], "", "")
	tbl.Notes = append(tbl.Notes,
		"Eq 4: 100×(2ndTrace − PInTE)/PInTE; positive = PInTE underestimates",
		"paper All-row: AMAT 1.43, MR 1.29, IPC −8.46; key: _ DRAM-bound, * core-bound, + LLC-bound",
	)
	return res, tbl, nil
}

// clampErr bounds pathological relative errors (near-zero denominators on
// core-bound LLC metrics) so a single degenerate match cannot dominate a
// benchmark average.
func clampErr(e float64) float64 {
	const lim = 200
	if math.IsInf(e, 0) || math.IsNaN(e) {
		return 0
	}
	if e > lim {
		return lim
	}
	if e < -lim {
		return -lim
	}
	return e
}
