package expt

import (
	"fmt"

	"repro/internal/c2afe"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig8Workload is one benchmark's sensitivity analysis.
type Fig8Workload struct {
	Benchmark string

	// PInTECurve / SecondCurve are (contention rate group centre,
	// mean weighted IPC) series.
	PInTEX, PInTEY   []float64
	SecondX, SecondY []float64

	// Classification at 5% TPL from each contention source's run-time
	// samples, with sensitive-curve population.
	PInTEClass  c2afe.Class
	SecondClass c2afe.Class
	PInTESCP    float64
	SecondSCP   float64

	// Disagree marks classification mismatch (the paper's blue dotted
	// borders); PaperClass and PaperDisagree carry the paper's own
	// labels for comparison.
	Disagree      bool
	PaperClass    string
	PaperDisagree bool

	// Features summarises the PInTE contention curve (C²AFE).
	Features c2afe.Features
}

// Fig8Result reproduces Figure 8 and the §V-B characterisation headline.
type Fig8Result struct {
	Workloads []Fig8Workload
	// ShareHigh/Low/Mixed are the class shares under PInTE
	// classification (paper: 12% / 57% / 16%, remainder disagreements).
	ShareHigh, ShareLow, ShareMixed float64
}

// weightedSamples converts run-time IPC samples to weighted IPC by
// pairing each contention interval with the same interval of the
// isolation run — §V-B compares "instruction samples … from isolation
// IPC", and interval pairing cancels the workload's own phase noise.
func weightedSamples(results []*sim.Result, iso *sim.Result) []float64 {
	var out []float64
	for _, r := range results {
		n := len(r.Samples)
		if len(iso.Samples) < n {
			n = len(iso.Samples)
		}
		for i := 0; i < n; i++ {
			out = append(out, stats.WeightedIPC(r.Samples[i].IPC, iso.Samples[i].IPC))
		}
	}
	return out
}

// curve builds a CRG-grouped contention curve from results.
func curve(results []*sim.Result, isoIPC float64) (xs, ys []float64) {
	var rx, ry []float64
	for _, r := range results {
		rx = append(rx, r.ContentionRate)
		ry = append(ry, stats.WeightedIPC(r.IPC, isoIPC))
	}
	return stats.DefaultCRG().GroupMeans(rx, ry)
}

// Fig8 builds contention-sensitivity curves and classifications.
func Fig8(r *Runner) (*Fig8Result, *report.Table, error) {
	iso, err := r.IsolationAll()
	if err != nil {
		return nil, nil, err
	}
	pairs, err := r.PairsAll()
	if err != nil {
		return nil, nil, err
	}
	sweep, err := r.SweepAll()
	if err != nil {
		return nil, nil, err
	}

	res := &Fig8Result{}
	counts := map[c2afe.Class]int{}
	for _, w := range r.Scale.Workloads {
		isoIPC := iso[w].IPC
		fw := Fig8Workload{Benchmark: w}
		fw.PInTEX, fw.PInTEY = curve(sweep[w], isoIPC)
		fw.SecondX, fw.SecondY = curve(pairs[w], isoIPC)
		fw.PInTEClass, fw.PInTESCP = c2afe.Classify(weightedSamples(sweep[w], iso[w]), c2afe.DefaultTPL)
		fw.SecondClass, fw.SecondSCP = c2afe.Classify(weightedSamples(pairs[w], iso[w]), c2afe.DefaultTPL)
		fw.Disagree = fw.PInTEClass != fw.SecondClass
		if p, err := trace.Lookup(w); err == nil {
			fw.PaperClass = p.Sensitivity
			fw.PaperDisagree = p.Disagreement
		}
		fw.Features = c2afe.Extract(fw.PInTEX, fw.PInTEY)
		counts[fw.PInTEClass]++
		res.Workloads = append(res.Workloads, fw)
	}
	n := float64(len(res.Workloads))
	if n > 0 {
		res.ShareHigh = float64(counts[c2afe.HighSensitivity]) / n
		res.ShareLow = float64(counts[c2afe.LowSensitivity]) / n
		res.ShareMixed = float64(counts[c2afe.MixedSensitivity]) / n
	}

	tbl := &report.Table{
		ID:    "fig8",
		Title: "Contention sensitivity curves and classification (5% TPL)",
		Columns: []string{"Benchmark", "PInTE class", "SCP%", "2nd class", "SCP%",
			"disagree", "paper class", "knee", "trend"},
	}
	for _, fw := range res.Workloads {
		dis := ""
		if fw.Disagree {
			dis = "yes"
		}
		tbl.AddRowf(fw.Benchmark, fw.PInTEClass.String(), 100*fw.PInTESCP,
			fw.SecondClass.String(), 100*fw.SecondSCP, dis, fw.PaperClass,
			fw.Features.Knee, fw.Features.Trend)
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("class shares under PInTE: high %.0f%%, low %.0f%%, mixed %.0f%% (paper: 12/57/16)",
			100*res.ShareHigh, 100*res.ShareLow, 100*res.ShareMixed),
	)
	return res, tbl, nil
}
