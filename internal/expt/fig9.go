package expt

import (
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig9Row is one benchmark's AMAT distribution under each contention
// source.
type Fig9Row struct {
	Benchmark string
	Isolation float64
	Second    stats.Summary
	PInTE     stats.Summary
}

// Fig9Result reproduces Figure 9: per-10M-sample AMAT distributions under
// 2nd-Trace vs PInTE contention (boxplot summaries here).
type Fig9Result struct {
	Rows []Fig9Row
}

func amatSamples(results []*sim.Result) []float64 {
	var out []float64
	for _, r := range results {
		for _, s := range r.Samples {
			out = append(out, s.AMAT)
		}
	}
	return out
}

// Fig9 summarises sampled AMAT per benchmark and mode.
func Fig9(r *Runner) (*Fig9Result, *report.Table, error) {
	iso, err := r.IsolationAll()
	if err != nil {
		return nil, nil, err
	}
	pairs, err := r.PairsAll()
	if err != nil {
		return nil, nil, err
	}
	sweep, err := r.SweepAll()
	if err != nil {
		return nil, nil, err
	}

	res := &Fig9Result{}
	tbl := &report.Table{
		ID:    "fig9",
		Title: "AMAT under contention: 2nd-Trace vs PInTE (cycles, sampled)",
		Columns: []string{"Benchmark", "iso", "2nd med", "2nd q1", "2nd q3", "2nd max",
			"PInTE med", "PInTE q1", "PInTE q3", "PInTE max"},
	}
	for _, w := range r.Scale.Workloads {
		row := Fig9Row{
			Benchmark: w,
			Isolation: iso[w].AMAT,
			Second:    stats.Summarize(amatSamples(pairs[w])),
			PInTE:     stats.Summarize(amatSamples(sweep[w])),
		}
		res.Rows = append(res.Rows, row)
		tbl.AddRowf(w, row.Isolation,
			row.Second.Median, row.Second.Q1, row.Second.Q3, row.Second.Max,
			row.PInTE.Median, row.PInTE.Q1, row.PInTE.Q3, row.PInTE.Max)
	}
	tbl.Notes = append(tbl.Notes,
		"paper: PInTE induces AMAT similar to trace sharing except DRAM-bound outliers (429.mcf, 602.gcc)")
	return res, tbl, nil
}
