package expt

import (
	"repro/internal/report"
	"repro/internal/sim"
)

// PartitioningRow compares one (victim, aggressor) pairing under a
// shared LLC versus each dynamic partitioning controller.
type PartitioningRow struct {
	Victim    string
	Aggressor string
	// Weighted IPC of the victim (vs isolation) per configuration.
	Shared float64
	UCP    float64
	Theft  float64
	// Victim contention rates per configuration.
	SharedCR float64
	UCPCR    float64
	TheftCR  float64
}

// PartitioningResult evaluates the contention-aware designs the paper
// frames PInTE as enabling (§VII-d): does partitioning protect sensitive
// workloads from cache theft, and does the cheap theft-counter controller
// track UCP?
type PartitioningResult struct {
	Rows []PartitioningRow
}

// Partitioning runs victim/aggressor co-runs under shared, UCP and
// theft-guided LLCs. Victims are the scale's LLC-bound workloads;
// aggressors its DRAM-streaming ones.
func Partitioning(r *Runner) (*PartitioningResult, *report.Table, error) {
	iso, err := r.IsolationAll()
	if err != nil {
		return nil, nil, err
	}
	var victims, aggressors []string
	for _, w := range r.Scale.Workloads {
		switch classOf(w) {
		case "llc-bound":
			victims = append(victims, w)
		case "dram-bound":
			aggressors = append(aggressors, w)
		}
	}
	if len(victims) == 0 || len(aggressors) == 0 {
		// Fall back to a fixed pairing so the experiment always runs.
		victims = []string{"450.soplex"}
		aggressors = []string{"470.lbm"}
		for _, w := range victims {
			if _, ok := iso[w]; !ok {
				isoRes, err := r.Get(r.Iso(w))
				if err != nil {
					return nil, nil, err
				}
				iso[w] = isoRes
			}
		}
	}

	res := &PartitioningResult{}
	tbl := &report.Table{
		ID:    "partitioning",
		Title: "Dynamic LLC partitioning under contention: victim weighted IPC",
		Columns: []string{"Victim", "Aggressor", "shared wIPC", "UCP wIPC", "theft wIPC",
			"shared CR%", "UCP CR%", "theft CR%"},
	}

	mk := func(v, a, ctrl string) (*sim.Result, error) {
		cfg := r.base(sim.Config{Mode: sim.SecondTrace, Workload: v, Adversary: a})
		cfg.Partitioning = ctrl
		return r.Get(cfg)
	}
	for _, v := range victims {
		isoRes, ok := iso[v]
		if !ok {
			isoRes, err = r.Get(r.Iso(v))
			if err != nil {
				return nil, nil, err
			}
		}
		for _, a := range aggressors {
			shared, err := mk(v, a, "")
			if err != nil {
				return nil, nil, err
			}
			ucp, err := mk(v, a, "ucp")
			if err != nil {
				return nil, nil, err
			}
			theft, err := mk(v, a, "theft")
			if err != nil {
				return nil, nil, err
			}
			row := PartitioningRow{
				Victim:    v,
				Aggressor: a,
				Shared:    shared.WeightedIPC(isoRes.IPC),
				UCP:       ucp.WeightedIPC(isoRes.IPC),
				Theft:     theft.WeightedIPC(isoRes.IPC),
				SharedCR:  shared.ContentionRate,
				UCPCR:     ucp.ContentionRate,
				TheftCR:   theft.ContentionRate,
			}
			res.Rows = append(res.Rows, row)
			tbl.AddRowf(v, a, row.Shared, row.UCP, row.Theft,
				100*row.SharedCR, 100*row.UCPCR, 100*row.TheftCR)
		}
	}
	tbl.Notes = append(tbl.Notes,
		"partitioned fills cannot cross cores, so victim contention collapses; UCP spends shadow tags, the theft controller spends only the counters PInTE-style analysis already needs (CASHT's cost argument)",
	)
	return res, tbl, nil
}
