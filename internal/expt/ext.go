package expt

import (
	"fmt"
	"math"

	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ExtRow compares contention sources for one workload: 2nd-Trace (the
// reference), plain PInTE, and PInTE with an extension enabled.
type ExtRow struct {
	Benchmark string
	Class     string
	// IPC drops relative to isolation, in percent (more negative =
	// more contention effect).
	Drop2nd      float64
	DropPInTE    float64
	DropExtended float64
	// GapClosed is how much of the (2nd-Trace − PInTE) shortfall the
	// extension recovers, in [≈0, ≈1]; negative means it overshoots in
	// the wrong direction.
	GapClosed float64
}

// ExtResult evaluates the §IV-E2b future-work extensions: DRAM-side
// contention injection for the paper's DRAM-bound disagreement cases, and
// the access-independent module for core-bound cases. The paper predicts
// both close specific error classes; this experiment measures that.
type ExtResult struct {
	DRAMRows        []ExtRow
	IndependentRows []ExtRow
}

// extDrop computes the percent IPC drop of res vs iso.
func extDrop(res, iso *sim.Result) float64 {
	if iso.IPC == 0 {
		return 0
	}
	return 100 * (res.IPC - iso.IPC) / iso.IPC
}

func gapClosed(drop2nd, dropPlain, dropExt float64) float64 {
	gap := drop2nd - dropPlain
	if math.Abs(gap) < 1e-9 {
		return 0
	}
	return (dropExt - dropPlain) / gap
}

// Extensions runs the comparison. DRAM-bound candidates come from the
// scale's workload list filtered to the paper's disagreement set plus
// streaming classes; core-bound candidates from the '*' class.
func Extensions(r *Runner) (*ExtResult, []*report.Table, error) {
	iso, err := r.IsolationAll()
	if err != nil {
		return nil, nil, err
	}
	pairs, err := r.PairsAll()
	if err != nil {
		return nil, nil, err
	}

	res := &ExtResult{}
	const pInduce = 0.5

	// worstPair returns the pairing with the largest IPC drop — the
	// contention level the plain engine fails to reach.
	worstPair := func(w string) *sim.Result {
		var worst *sim.Result
		for _, pr := range pairs[w] {
			if worst == nil || pr.IPC < worst.IPC {
				worst = pr
			}
		}
		return worst
	}

	for _, w := range r.Scale.Workloads {
		secondWorst := worstPair(w)
		if secondWorst == nil {
			continue
		}
		plain, err := r.Get(r.Pinte(w, pInduce))
		if err != nil {
			return nil, nil, err
		}

		// DRAM extension.
		dcfg := r.Pinte(w, pInduce)
		dcfg.DRAMContentionProb = 0.5
		dcfg.DRAMContentionPenalty = 200
		dres, err := r.Get(dcfg)
		if err != nil {
			return nil, nil, err
		}
		row := ExtRow{
			Benchmark:    w,
			Class:        classOf(w),
			Drop2nd:      extDrop(secondWorst, iso[w]),
			DropPInTE:    extDrop(plain, iso[w]),
			DropExtended: extDrop(dres, iso[w]),
		}
		row.GapClosed = gapClosed(row.Drop2nd, row.DropPInTE, row.DropExtended)
		res.DRAMRows = append(res.DRAMRows, row)

		// Independent-module extension: injections every 64
		// instructions regardless of LLC traffic.
		icfg := r.Pinte(w, pInduce)
		icfg.IndependentPeriod = 64
		ires, err := r.Get(icfg)
		if err != nil {
			return nil, nil, err
		}
		irow := ExtRow{
			Benchmark:    w,
			Class:        classOf(w),
			Drop2nd:      row.Drop2nd,
			DropPInTE:    row.DropPInTE,
			DropExtended: extDrop(ires, iso[w]),
		}
		irow.GapClosed = gapClosed(irow.Drop2nd, irow.DropPInTE, irow.DropExtended)
		res.IndependentRows = append(res.IndependentRows, irow)
	}

	mkTable := func(id, title string, rows []ExtRow) *report.Table {
		t := &report.Table{
			ID:      id,
			Title:   title,
			Columns: []string{"Benchmark", "class", "ΔIPC% 2nd", "ΔIPC% PInTE", "ΔIPC% ext", "gap closed"},
		}
		for _, row := range rows {
			t.AddRowf(row.Benchmark, row.Class, row.Drop2nd, row.DropPInTE,
				row.DropExtended, fmt.Sprintf("%.0f%%", 100*row.GapClosed))
		}
		return t
	}
	td := mkTable("ext-dram", "Extension: DRAM contention injection vs worst 2nd-Trace pairing", res.DRAMRows)
	td.Notes = append(td.Notes,
		"§IV-E2b: DRAM-bound benchmarks under-respond to LLC-only injection; added memory latency should close the gap for them and barely move core-bound rows")
	ti := mkTable("ext-independent", "Extension: access-independent injection (period 64 instrs)", res.IndependentRows)
	ti.Notes = append(ti.Notes,
		"§IV-E2b: core-bound benchmarks rarely reach the LLC, so access-coupled injection starves; scheduled injection reaches their few resident blocks")
	return res, []*report.Table{td, ti}, nil
}

func classOf(w string) string {
	p, err := trace.Lookup(w)
	if err != nil {
		return "?"
	}
	return p.Spec.Class.String()
}
