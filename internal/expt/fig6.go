package expt

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/report"
	"repro/internal/stats"
)

// Fig6Result reproduces Figure 6: (a) per-benchmark reuse KL divergence
// with random-distribution calibration bounds, and (b) the root-cause
// comparison of the highest- and lowest-KL workloads (L2/LLC MPKI and the
// writeback share of LLC fills — the "L2 spill" signature).
type Fig6Result struct {
	// KL maps benchmark → mean reuse KL divergence (bits).
	KL map[string]float64
	// MeanKL is the cross-benchmark mean (paper: 0.84 bits).
	MeanKL float64
	// Bound99/95/90 are the random-calibration thresholds: N% of
	// randomly generated histograms have KL above the bound (paper:
	// 0.23 / 0.35 / 0.44).
	Bound99, Bound95, Bound90 float64
	// Within99/95/90 are the fraction of workloads at or below each
	// bound (paper: 36% / 48% / 55%).
	Within99, Within95, Within90 float64

	// RootCause rows: benchmark, KL, L2MPKI, LLCMPKI, writeback share.
	RootCause []Fig6RootCause
}

// Fig6RootCause is one row of the Fig 6b analysis.
type Fig6RootCause struct {
	Benchmark      string
	KLBits         float64
	L2MPKI         float64
	LLCMPKI        float64
	WritebackShare float64
	Group          string // "high-KL" or "low-KL"
}

// randomKLBounds draws synthetic histograms with uniformly random bucket
// masses and returns the 1st/5th/10th percentiles of their KL against the
// reference histograms — the calibration the paper uses to define its
// 99/95/90% benchmarks.
func randomKLBounds(refs [][]float64, draws int, seed uint64) (b99, b95, b90 float64) {
	rng := rand.New(rand.NewPCG(seed, 0x2545f4914f6cdd1d))
	var kls []float64
	for _, ref := range refs {
		if len(ref) == 0 {
			continue
		}
		for d := 0; d < draws; d++ {
			randHist := make([]float64, len(ref))
			for i := range randHist {
				randHist[i] = rng.Float64()
			}
			kls = append(kls, stats.KLDivergenceBits(randHist, ref, stats.KLOptions{}))
		}
	}
	if len(kls) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(kls)
	pick := func(q float64) float64 {
		i := int(q * float64(len(kls)-1))
		return kls[i]
	}
	return pick(0.01), pick(0.05), pick(0.10)
}

// Fig6 computes the reuse-KL distribution, calibration bounds and
// root-cause rows. It returns two tables: the per-benchmark KL list
// (Fig 6a) and the root-cause comparison (Fig 6b).
func Fig6(r *Runner) (*Fig6Result, []*report.Table, error) {
	kls, rep, err := benchReuseKL(r)
	if err != nil {
		return nil, nil, err
	}
	if len(kls) == 0 {
		return nil, nil, fmt.Errorf("expt: fig6 found no CRG-matched pairs")
	}
	res := &Fig6Result{KL: kls}
	var refs [][]float64
	var sum float64
	for w, k := range kls {
		sum += k
		refs = append(refs, stats.U64ToF64(rep[w][0].ReuseHist))
	}
	res.MeanKL = sum / float64(len(kls))
	res.Bound99, res.Bound95, res.Bound90 = randomKLBounds(refs, 100, r.Scale.Seed)

	within := func(bound float64) float64 {
		n := 0
		for _, k := range kls {
			if k <= bound {
				n++
			}
		}
		return float64(n) / float64(len(kls))
	}
	res.Within99 = within(res.Bound99)
	res.Within95 = within(res.Bound95)
	res.Within90 = within(res.Bound90)

	// Root cause: rank by KL, take up to 3 from each extreme.
	type wk struct {
		w  string
		kl float64
	}
	var ranked []wk
	for w, k := range kls {
		ranked = append(ranked, wk{w, k})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].kl < ranked[j].kl })
	take := len(ranked) / 2
	if take > 3 {
		take = 3
	}
	if take == 0 && len(ranked) > 0 {
		// Degenerate tiny scales: report the single workload as the
		// high-KL exemplar rather than nothing.
		take = 0
		m := rep[ranked[0].w]
		res.RootCause = append(res.RootCause, Fig6RootCause{
			Benchmark:      ranked[0].w,
			KLBits:         ranked[0].kl,
			L2MPKI:         m[0].L2MPKI,
			LLCMPKI:        m[0].LLCMPKI,
			WritebackShare: m[0].LLCWritebackFillShare,
			Group:          "high-KL",
		})
	}
	addRC := func(e wk, group string) {
		m := rep[e.w]
		second := m[0]
		res.RootCause = append(res.RootCause, Fig6RootCause{
			Benchmark:      e.w,
			KLBits:         e.kl,
			L2MPKI:         second.L2MPKI,
			LLCMPKI:        second.LLCMPKI,
			WritebackShare: second.LLCWritebackFillShare,
			Group:          group,
		})
	}
	for i := 0; i < take; i++ {
		addRC(ranked[i], "low-KL")
	}
	for i := len(ranked) - take; i < len(ranked); i++ {
		addRC(ranked[i], "high-KL")
	}

	tbl := &report.Table{
		ID:      "fig6",
		Title:   "Reuse KL divergence per benchmark with random-calibration bounds",
		Columns: []string{"Benchmark", "KL (bits)"},
	}
	var names []string
	for w := range kls {
		names = append(names, w)
	}
	sort.Strings(names)
	for _, w := range names {
		tbl.AddRowf(w, kls[w])
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("mean KL %.3f bits (paper 0.84)", res.MeanKL),
		fmt.Sprintf("bounds 99/95/90%%: %.3f / %.3f / %.3f (paper 0.23 / 0.35 / 0.44)",
			res.Bound99, res.Bound95, res.Bound90),
		fmt.Sprintf("workloads within bounds: %.0f%% / %.0f%% / %.0f%% (paper 36/48/55)",
			100*res.Within99, 100*res.Within95, 100*res.Within90),
	)
	rc := &report.Table{
		ID:      "fig6b",
		Title:   "Root cause: cache behaviour of highest- vs lowest-KL workloads",
		Columns: []string{"Group", "Benchmark", "KL", "L2 MPKI", "LLC MPKI", "WB fill share"},
	}
	for _, row := range res.RootCause {
		rc.AddRowf(row.Group, row.Benchmark, row.KLBits, row.L2MPKI, row.LLCMPKI, row.WritebackShare)
	}
	rc.Notes = append(rc.Notes,
		"paper: high KL correlates with LLC traffic dominated by L2 write-back spills (core-bound)")
	return res, []*report.Table{tbl, rc}, nil
}
