package expt

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/replay"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// replayBudget bounds the per-runner stream cache. The full 49-workload
// scale records 49 primary streams of a few MiB each at paper scale, so
// 1 GiB comfortably holds a complete campaign while still bounding a
// pathological spec set.
const replayBudget = 1 << 30

// Runner executes simulations for the experiment generators, memoizing
// results so experiments that share runs (the PInTE sweep feeds Table II,
// Fig 6, Fig 7, Fig 8 and Fig 9) pay for them once. Batches go through
// the fault-tolerant orchestrator (internal/runner), so one crashing
// simulation surfaces as a structured error instead of killing the
// process, and cancelling the runner's context (SIGINT in pintereport)
// stops a campaign between runs. Safe for concurrent use.
//
// Runs additionally share a stream record/replay cache: every config
// that reuses a (workload, seed) pair — all twelve P_Induce points of a
// sweep, every rerun of the stability study, every co-run of the same
// adversary — replays one recorded instruction stream instead of
// re-executing the synthetic generator. Replayed results are
// byte-identical to generated ones, so memoized values are unaffected.
type Runner struct {
	Scale Scale
	// Streams is the campaign-wide record/replay cache handed to every
	// run; set it to nil to regenerate streams per run.
	Streams trace.SourceProvider
	// Store, when non-nil, is the durable cross-campaign result store:
	// the in-process memo becomes a warm layer over it — memo misses
	// consult (and batch completions populate) the store through the
	// orchestrator, so a repeated experiment costs nothing even across
	// process restarts. Memo traffic is folded into the same expvar
	// ("pinte.store") as the store's own counters.
	Store *store.Store

	ctx  context.Context
	mu   sync.Mutex
	memo map[string]*sim.Result
}

// NewRunner builds a runner for scale.
func NewRunner(s Scale) *Runner {
	return &Runner{
		Scale:   s,
		Streams: replay.NewCache(replayBudget),
		ctx:     context.Background(),
		memo:    make(map[string]*sim.Result),
	}
}

// WithContext returns the runner bound to ctx: cancellation aborts any
// in-flight batch with sim.ErrCanceled. The memo is shared with the
// receiver.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ctx = ctx
	return r
}

// key serialises the configuration fields the experiments vary. Ad-hoc
// specs (WorkloadSpec overrides) are keyed by their contents — a stable
// fingerprint of the normalized encoding — never by pointer identity:
// two distinct specs allocated at a reused address must not collide,
// and two equal specs should share a memo slot.
func (r *Runner) key(cfg sim.Config) string {
	dram := "default"
	if cfg.DRAM != nil {
		dram = fmt.Sprintf("%+v", *cfg.DRAM)
	}
	ad := ""
	if cfg.WorkloadSpec != nil || cfg.AdversarySpec != nil {
		ad = "|adhoc:" + specKey(cfg.WorkloadSpec) + "/" + specKey(cfg.AdversarySpec)
	}
	return fmt.Sprintf("m%d|w%s|a%s+%v|p%.6f|s%d.%d|%d/%d/%d.%d|b%s|h%+v|d%s|x%d.%.4f.%d.%d|pt%s.%d%s",
		cfg.Mode, cfg.Workload, cfg.Adversary, cfg.Adversaries, cfg.PInduce, cfg.Seed, cfg.EngineSeed,
		cfg.WarmupInstrs, cfg.ROIInstrs, cfg.SampleEvery, cfg.TelemetryEvery,
		cfg.Branch, cfg.Hier, dram,
		cfg.IndependentPeriod, cfg.DRAMContentionProb, cfg.DRAMContentionPenalty,
		cfg.LLCWayAllocation, cfg.Partitioning, cfg.ReallocEvery, ad)
}

// specKey fingerprints an optional ad-hoc spec for memo keying.
func specKey(s *trace.Spec) string {
	if s == nil {
		return "-"
	}
	return s.Fingerprint()
}

// base stamps the scale's budgets onto cfg.
func (r *Runner) base(cfg sim.Config) sim.Config {
	if cfg.WarmupInstrs == 0 {
		cfg.WarmupInstrs = r.Scale.Warmup
	}
	if cfg.ROIInstrs == 0 {
		cfg.ROIInstrs = r.Scale.ROI
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = r.Scale.SampleEvery
	}
	if cfg.Seed == 0 {
		cfg.Seed = r.Scale.Seed
	}
	return cfg
}

// Iso returns the isolation configuration for workload w.
func (r *Runner) Iso(w string) sim.Config {
	return r.base(sim.Config{Mode: sim.Isolation, Workload: w})
}

// Pinte returns the PInTE configuration for workload w at p.
func (r *Runner) Pinte(w string, p float64) sim.Config {
	return r.base(sim.Config{Mode: sim.PInTE, Workload: w, PInduce: p})
}

// PinteSeeded is Pinte with an explicit engine seed: the workload stream
// stays identical and only the injection events move (the Fig 3 rerun
// study).
func (r *Runner) PinteSeeded(w string, p float64, engineSeed uint64) sim.Config {
	cfg := r.Pinte(w, p)
	cfg.EngineSeed = engineSeed
	return cfg
}

// Second returns the 2nd-Trace configuration co-running w with adv.
func (r *Runner) Second(w, adv string) sim.Config {
	return r.base(sim.Config{Mode: sim.SecondTrace, Workload: w, Adversary: adv})
}

// Get runs (or recalls) one configuration.
func (r *Runner) Get(cfg sim.Config) (*sim.Result, error) {
	res, err := r.GetAll([]sim.Config{cfg})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// GetAll runs (or recalls) a batch, executing missing configurations in
// parallel, and returns results in input order.
func (r *Runner) GetAll(cfgs []sim.Config) ([]*sim.Result, error) {
	keys := make([]string, len(cfgs))
	var missing []sim.Config
	var missingIdx []int
	r.mu.Lock()
	seen := make(map[string]bool)
	for i, cfg := range cfgs {
		k := r.key(cfg)
		keys[i] = k
		if r.memo[k] != nil {
			telemetry.StoreC.MemoHits.Add(1)
			continue
		}
		telemetry.StoreC.MemoMisses.Add(1)
		if !seen[k] {
			seen[k] = true
			missing = append(missing, cfg)
			missingIdx = append(missingIdx, i)
		}
	}
	r.mu.Unlock()

	if len(missing) > 0 {
		r.mu.Lock()
		ctx := r.ctx
		r.mu.Unlock()
		// Fan-out is always on for experiment batches: a sweep's points
		// share one decode pass, results are byte-identical, and any
		// in-group failure falls back to the per-run path below.
		orc := runner.New(runner.Options{Workers: r.Scale.Workers, Streams: r.Streams, Fanout: true, Store: r.Store})
		out, err := orc.RunAll(ctx, missing)
		if err != nil {
			return nil, err
		}
		// Memoize the successes even when some runs failed, so a
		// retried experiment only pays for the missing work.
		r.mu.Lock()
		for j, res := range out.Results {
			if res != nil {
				r.memo[keys[missingIdx[j]]] = res
			}
		}
		r.mu.Unlock()
		if err := out.Err(); err != nil {
			return nil, err
		}
	}

	out := make([]*sim.Result, len(cfgs))
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, k := range keys {
		res := r.memo[k]
		if res == nil {
			return nil, fmt.Errorf("expt: missing result for %s", k)
		}
		out[i] = res
	}
	return out, nil
}

// IsolationAll returns isolation results for every scale workload,
// indexed by name.
func (r *Runner) IsolationAll() (map[string]*sim.Result, error) {
	cfgs := make([]sim.Config, len(r.Scale.Workloads))
	for i, w := range r.Scale.Workloads {
		cfgs[i] = r.Iso(w)
	}
	res, err := r.GetAll(cfgs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*sim.Result, len(res))
	for i, w := range r.Scale.Workloads {
		out[w] = res[i]
	}
	return out, nil
}

// SweepAll returns PInTE results for every (workload, P_Induce) pair in
// the scale, keyed by workload.
func (r *Runner) SweepAll() (map[string][]*sim.Result, error) {
	var cfgs []sim.Config
	for _, w := range r.Scale.Workloads {
		for _, p := range r.Scale.Sweep {
			cfgs = append(cfgs, r.Pinte(w, p))
		}
	}
	res, err := r.GetAll(cfgs)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]*sim.Result, len(r.Scale.Workloads))
	i := 0
	for _, w := range r.Scale.Workloads {
		out[w] = res[i : i+len(r.Scale.Sweep)]
		i += len(r.Scale.Sweep)
	}
	return out, nil
}

// PairsAll returns 2nd-Trace results for every workload against its
// scale-assigned adversaries, keyed by workload.
func (r *Runner) PairsAll() (map[string][]*sim.Result, error) {
	var cfgs []sim.Config
	counts := make([]int, len(r.Scale.Workloads))
	for i, w := range r.Scale.Workloads {
		advs := r.Scale.Adversaries(w)
		counts[i] = len(advs)
		for _, a := range advs {
			cfgs = append(cfgs, r.Second(w, a))
		}
	}
	res, err := r.GetAll(cfgs)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]*sim.Result, len(r.Scale.Workloads))
	i := 0
	for k, w := range r.Scale.Workloads {
		out[w] = res[i : i+counts[k]]
		i += counts[k]
	}
	return out, nil
}
