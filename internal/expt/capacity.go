package expt

import (
	"fmt"

	"repro/internal/c2afe"
	"repro/internal/report"
	"repro/internal/sim"
)

// CapacityCurve is one workload's performance as a function of its LLC
// way allocation — the capacity curves C²AFE (the paper's curve-feature
// tool, §V-A) was built to annotate. Contention steals capacity, so a
// workload's capacity curve predicts its contention curve: the same knee
// that appears when ways are taken away appears when thefts remove blocks.
type CapacityCurve struct {
	Benchmark string
	// Ways[i] of the LLC allocated; WeightedIPC[i] relative to the
	// full-allocation run.
	Ways        []int
	WeightedIPC []float64
	MissRate    []float64
	Features    c2afe.Features
}

// CapacityResult holds capacity curves for the scale's workloads.
type CapacityResult struct {
	Curves []CapacityCurve
}

// Capacity sweeps LLC way allocations in isolation and extracts C²AFE
// features from the resulting curves.
func Capacity(r *Runner) (*CapacityResult, *report.Table, error) {
	ways := []int{1, 2, 4, 8, 12, 16}
	res := &CapacityResult{}
	tbl := &report.Table{
		ID:      "capacity",
		Title:   "Capacity curves: weighted IPC vs LLC way allocation (C²AFE features)",
		Columns: []string{"Benchmark", "alloc ways", "weighted IPC", "LLC miss rate", "knee", "trend", "sensitivity"},
	}

	for _, w := range r.Scale.Workloads {
		var cfgs []sim.Config
		for _, n := range ways {
			cfg := r.Iso(w)
			cfg.LLCWayAllocation = n
			cfgs = append(cfgs, cfg)
		}
		runs, err := r.GetAll(cfgs)
		if err != nil {
			return nil, nil, err
		}
		fullIPC := runs[len(runs)-1].IPC
		curve := CapacityCurve{Benchmark: w}
		var xs []float64
		for i, n := range ways {
			wipc := 0.0
			if fullIPC > 0 {
				wipc = runs[i].IPC / fullIPC
			}
			curve.Ways = append(curve.Ways, n)
			curve.WeightedIPC = append(curve.WeightedIPC, wipc)
			curve.MissRate = append(curve.MissRate, runs[i].MissRate)
			xs = append(xs, float64(n)/16)
		}
		curve.Features = c2afe.Extract(xs, curve.WeightedIPC)
		res.Curves = append(res.Curves, curve)

		for i, n := range ways {
			knee, trend, sens := "", "", ""
			if i == 0 {
				knee = fmt.Sprintf("%.2f", curve.Features.Knee)
				trend = fmt.Sprintf("%.3f", curve.Features.Trend)
				sens = fmt.Sprintf("%.3f", curve.Features.Sensitivity)
			}
			tbl.AddRowf(w, n, curve.WeightedIPC[i], curve.MissRate[i], knee, trend, sens)
		}
	}
	tbl.Notes = append(tbl.Notes,
		"capacity loss and theft-induced loss are two views of the same resource: a steep capacity knee predicts contention sensitivity",
	)
	return res, tbl, nil
}
