package expt

import (
	"fmt"

	"repro/internal/cache"
	pinte "repro/internal/core"
	"repro/internal/report"
)

// Fig2Result reproduces Figure 2's mechanics demonstration on a single
// 4-way set: (a) real contention — two cores interleave and inter-core
// evictions (thefts) occur; (b) induced contention — one core runs alone
// while the system invalidates-and-promotes, and the workload experiences
// equivalent theft evictions plus a mock theft when it fills the hollowed
// slot.
type Fig2Result struct {
	// Real-contention side (a).
	RealTheftsCore1Experienced uint64
	RealTheftsCore2Caused      uint64

	// System-induced side (b).
	InducedThefts uint64
	MockThefts    uint64

	// Log records the narrated event sequence.
	Log []string
}

// fig2Set builds a single-set 4-way cache (4 ways × 64B = one 256B set).
func fig2Set(cores int) *cache.Cache {
	return cache.MustNew(cache.Config{
		Name:      "demo",
		SizeBytes: 4 * cache.BlockBytes,
		Ways:      4,
		Cores:     cores,
	})
}

// access performs a demand access with fill-on-miss, as the hierarchy
// would.
func access(c *cache.Cache, addr uint64, core int) bool {
	hit := c.Lookup(addr, core, false)
	if !hit {
		c.Fill(addr, core, false, false)
	}
	return hit
}

// Fig2 runs the walkthrough. It is deterministic.
func Fig2() (*Fig2Result, *report.Table, error) {
	res := &Fig2Result{}
	logf := func(format string, args ...interface{}) {
		res.Log = append(res.Log, fmt.Sprintf(format, args...))
	}

	// Addresses A..F map to the same set of a 1-set cache regardless of
	// block address.
	addr := func(i int) uint64 { return uint64(i) * cache.BlockBytes }

	// (a) Real contention: core 1 (green) has A,B,C,D resident; core 2
	// (gray) storms in with X,Y,Z, evicting core 1's LRU data; core 1
	// then refetches and steals back.
	a := fig2Set(2)
	for i := 1; i <= 4; i++ {
		access(a, addr(i), 0)
	}
	logf("(a) core1 fills the 4-way set with A,B,C,D")
	for i := 5; i <= 7; i++ {
		access(a, addr(i), 1)
	}
	logf("(a) core2 inserts X,Y,Z: evicts core1's LRU blocks -> %d thefts against core1",
		a.Stats.TheftsExperienced[0])
	access(a, addr(4), 0) // core1 re-touches its surviving block D (hit)
	access(a, addr(1), 0) // then refetches A: the LRU victim is core2's X
	logf("(a) core1 touches D then refetches A: evicts core2 data -> core1 causes %d theft",
		a.Stats.TheftsCaused[0])
	res.RealTheftsCore1Experienced = a.Stats.TheftsExperienced[0]
	res.RealTheftsCore2Caused = a.Stats.TheftsCaused[1]

	// (b) System-induced: core 1 runs alone; the PInTE engine (PInduce
	// = 1, so it triggers on the next access) promotes-and-invalidates
	// at the stack end; core 1's next miss fills the hollowed slot — a
	// mock theft.
	b := fig2Set(1)
	for i := 1; i <= 4; i++ {
		access(b, addr(i), 0)
	}
	logf("(b) core1 fills the 4-way set with A,B,C,D; system attaches PInTE with P_Induce=1")
	eng := pinte.MustNewEngine(pinte.Params{PInduce: 1, Seed: 3})
	eng.Trace = func(ev pinte.Event) {
		if ev.State == pinte.StateInvalidate || ev.State == pinte.StatePromote {
			logf("(b) PInTE %s set=%d way=%d", ev.State, ev.Set, ev.Way)
		}
	}
	b.SetInjector(eng)
	// One access triggers the engine (PInduce=1 always passes
	// GEN-PROBABILITY; the eviction budget may still draw 0, so access
	// until at least one invalidation lands).
	next := 5
	for b.Stats.InducedThefts[0] == 0 {
		access(b, addr(next), 0)
		next++
	}
	logf("(b) system invalidated %d valid block(s): induced thefts against core1",
		b.Stats.InducedThefts[0])
	b.SetInjector(nil)
	access(b, addr(next), 0)
	logf("(b) core1's fills land on system-invalidated slots -> %d mock theft(s) so far",
		b.Stats.MockThefts[0])
	res.InducedThefts = b.Stats.InducedThefts[0]
	res.MockThefts = b.Stats.MockThefts[0]

	tbl := &report.Table{
		ID:      "fig2",
		Title:   "Real vs induced block theft mechanics (4-way set walkthrough)",
		Columns: []string{"Event"},
	}
	for _, line := range res.Log {
		tbl.AddRow(line)
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("real: core1 experienced %d thefts; induced: %d induced thefts + %d mock thefts",
			res.RealTheftsCore1Experienced, res.InducedThefts, res.MockThefts),
	)
	return res, tbl, nil
}
