package expt

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// micro returns the smallest scale that still exercises every experiment
// code path: 3 workloads across the behavioural corners, 2-point sweep.
func micro() Scale {
	return Scale{
		Warmup:                 70_000,
		ROI:                    200_000,
		SampleEvery:            25_000,
		Workloads:              []string{"453.povray", "450.soplex", "470.lbm"},
		AdversariesPerWorkload: 1,
		Sweep:                  []float64{0.05, 0.5},
		Reruns:                 2,
		Seed:                   1,
	}
}

func TestScaleByName(t *testing.T) {
	for _, n := range []string{"tiny", "small", "full"} {
		s, err := ByName(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if len(s.Workloads) == 0 || len(s.Sweep) == 0 {
			t.Errorf("%s: empty scale", n)
		}
	}
	if _, err := ByName("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
	if got := len(Full().Workloads); got != 49 {
		t.Errorf("full scale has %d workloads, want 49", got)
	}
	if got := len(Full().Sweep); got != 12 {
		t.Errorf("full scale sweep has %d points, want 12", got)
	}
}

func TestAdversariesRotation(t *testing.T) {
	s := micro()
	s.AdversariesPerWorkload = 2
	for _, w := range s.Workloads {
		advs := s.Adversaries(w)
		if len(advs) != 2 {
			t.Fatalf("%s: %d adversaries, want 2", w, len(advs))
		}
		for _, a := range advs {
			if a == w {
				t.Fatalf("%s paired with itself", w)
			}
		}
	}
	// Different primaries get different adversary sets (rotation).
	a0 := s.Adversaries(s.Workloads[0])
	a1 := s.Adversaries(s.Workloads[1])
	if a0[0] == a1[0] && a0[1] == a1[1] {
		t.Error("rotation not spreading adversaries")
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(micro())
	cfg := r.Iso("453.povray")
	a, err := r.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical config not memoized (distinct pointers)")
	}
	// A different PInduce is a different key.
	c, err := r.Get(r.Pinte("453.povray", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct configs shared a memo entry")
	}
}

// TestMemoKeyAdHocSpecByContent is the regression test for the ad-hoc
// spec memo-key bug: keys used to embed the spec's pointer
// (fmt.Sprintf("%p", ...)), so mutating a spec in place silently
// recalled the stale result, while rebuilding an identical spec at a new
// address missed the memo. Keys must follow spec content, not identity.
func TestMemoKeyAdHocSpecByContent(t *testing.T) {
	r := NewRunner(micro())
	spec := trace.MustLookup("453.povray").Spec
	cfg := r.Iso("453.povray")
	cfg.WorkloadSpec = &spec

	before := r.key(cfg)
	spec.MemFrac += 0.01 // mutate through the same pointer
	if after := r.key(cfg); after == before {
		t.Fatal("memo key ignored an in-place spec mutation (pointer keying)")
	}

	// Equal content at distinct addresses must share one memo slot.
	clone := spec
	cfg2 := cfg
	cfg2.WorkloadSpec = &clone
	if r.key(cfg) != r.key(cfg2) {
		t.Fatal("identical ad-hoc specs at different addresses keyed differently")
	}
	a, err := r.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Get(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical ad-hoc specs did not share a memo entry")
	}
}

func TestRunnerGetAllOrder(t *testing.T) {
	r := NewRunner(micro())
	cfgs := []sim.Config{
		r.Iso("450.soplex"),
		r.Iso("453.povray"),
		r.Iso("450.soplex"), // duplicate
	}
	res, err := r.GetAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != res[2] {
		t.Fatal("duplicate configs returned different results")
	}
	if res[0] == res[1] {
		t.Fatal("different configs returned the same result")
	}
}

func TestRegistryCoversDesignIndex(t *testing.T) {
	want := []string{"table1", "table2", "fig1", "fig2", "fig3", "fig5",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig2Deterministic(t *testing.T) {
	a, _, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if a.RealTheftsCore1Experienced != b.RealTheftsCore1Experienced ||
		a.InducedThefts != b.InducedThefts || a.MockThefts != b.MockThefts {
		t.Fatal("fig2 walkthrough not deterministic")
	}
	if a.RealTheftsCore1Experienced == 0 {
		t.Error("no real thefts in walkthrough")
	}
	if a.InducedThefts == 0 || a.MockThefts == 0 {
		t.Error("no induced/mock thefts in walkthrough")
	}
}

func TestFig1ShapeMatchesPaper(t *testing.T) {
	r := NewRunner(micro())
	res, tbl, err := Fig1(r)
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || len(tbl.Rows) != 10 {
		t.Fatal("fig1 table malformed")
	}
	var secondTotal, pinTotal int
	for b := 0; b < 10; b++ {
		secondTotal += res.SecondTrace[b]
		pinTotal += res.PInTE[b]
	}
	if secondTotal == 0 || pinTotal == 0 {
		t.Fatal("fig1 counted no experiments")
	}
}

func TestTable2Produces(t *testing.T) {
	r := NewRunner(micro())
	res, tbl, err := Table2(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	if !strings.Contains(tbl.String(), "AVG All") {
		t.Error("missing All average row")
	}
	// At least one workload must have found a CRG match.
	matched := 0
	for _, row := range res.Rows {
		matched += row.Matched
	}
	if matched == 0 {
		t.Error("no CRG matches at micro scale")
	}
}

func TestClampErr(t *testing.T) {
	if clampErr(1e9) != 200 || clampErr(-1e9) != -200 {
		t.Error("clamp bounds wrong")
	}
	if clampErr(5) != 5 {
		t.Error("clamp distorted a normal value")
	}
}

func TestFig8Classification(t *testing.T) {
	r := NewRunner(micro())
	res, _, err := Fig8(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != 3 {
		t.Fatalf("got %d workloads", len(res.Workloads))
	}
	byName := map[string]Fig8Workload{}
	for _, fw := range res.Workloads {
		byName[fw.Benchmark] = fw
	}
	// The core-bound workload must not classify as highly sensitive.
	if povray := byName["453.povray"]; povray.PInTEClass.String() == "high" {
		t.Errorf("povray classified high sensitivity (SCP %.0f%%)", 100*povray.PInTESCP)
	}
	// The LLC-bound pointer-chaser must show sensitivity.
	if soplex := byName["450.soplex"]; soplex.PInTESCP == 0 {
		t.Error("soplex shows zero sensitivity")
	}
}

func TestFig9ReportsAllBenchmarks(t *testing.T) {
	r := NewRunner(micro())
	res, _, err := Fig9(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Isolation <= 0 {
			t.Errorf("%s: zero isolation AMAT", row.Benchmark)
		}
		if row.PInTE.N == 0 || row.Second.N == 0 {
			t.Errorf("%s: empty AMAT summaries", row.Benchmark)
		}
	}
}

func TestRandomKLBoundsOrdering(t *testing.T) {
	refs := [][]float64{{10, 5, 2, 1, 0, 0, 0, 0}}
	b99, b95, b90 := randomKLBounds(refs, 200, 7)
	if !(b99 <= b95 && b95 <= b90) {
		t.Fatalf("percentile bounds out of order: %v %v %v", b99, b95, b90)
	}
	if b99 <= 0 {
		t.Fatal("calibration bound not positive")
	}
}

func TestSampleMetricPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown metric index accepted")
		}
	}()
	sampleMetric(sim.Sample{}, 99)
}
