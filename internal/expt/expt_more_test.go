package expt

import (
	"strings"
	"testing"
)

func TestFig3Stability(t *testing.T) {
	s := micro()
	s.Reruns = 3
	r := NewRunner(s)
	res, tbl, err := Fig3(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerBenchmarkIPC) != len(s.Workloads) {
		t.Fatalf("per-benchmark entries: %d", len(res.PerBenchmarkIPC))
	}
	// The paper's claim at our scale: tiny normalized deviations.
	for w, v := range res.PerBenchmarkIPC {
		if v > 0.05 {
			t.Errorf("%s: IPC instability %v across engine seeds", w, v)
		}
	}
	if res.MaxMR > 0.2 {
		t.Errorf("MR instability %v", res.MaxMR)
	}
	if tbl == nil || len(tbl.Rows) != len(s.Workloads)+len(s.Sweep) {
		t.Error("fig3 table row count wrong")
	}
}

// reuseScale widens micro with an extra LLC-bound workload, a denser
// sweep and two adversaries so CRG matching finds reuse-rich pairs.
func reuseScale() Scale {
	s := micro()
	s.Workloads = []string{"453.povray", "450.soplex", "433.milc", "470.lbm"}
	s.Sweep = []float64{0.02, 0.1, 0.3, 0.6, 0.9}
	s.AdversariesPerWorkload = 2
	return s
}

func TestFig5AlignmentOrdering(t *testing.T) {
	r := NewRunner(reuseScale())
	res, _, err := Fig5(r)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Good.KLBits <= res.Medium.KLBits && res.Medium.KLBits <= res.Worst.KLBits) {
		t.Fatalf("case ordering broken: %v / %v / %v",
			res.Good.KLBits, res.Medium.KLBits, res.Worst.KLBits)
	}
	// Selected cases must have usable histograms.
	var sum float64
	for _, v := range res.Good.SecondHist {
		sum += v
	}
	if sum == 0 {
		t.Fatal("good case has an empty histogram")
	}
}

func TestFig6BoundsAndRootCause(t *testing.T) {
	r := NewRunner(reuseScale())
	res, tables, err := Fig6(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig6 returned %d tables, want 2", len(tables))
	}
	if !(res.Bound99 <= res.Bound95 && res.Bound95 <= res.Bound90) {
		t.Fatalf("bounds out of order: %v %v %v", res.Bound99, res.Bound95, res.Bound90)
	}
	if res.MeanKL < 0 {
		t.Fatal("negative mean KL")
	}
	if len(res.RootCause) == 0 {
		t.Fatal("no root-cause rows")
	}
	// Root-cause shape: the lowest-KL group should carry at least as
	// much LLC traffic as the highest (core-bound → high KL).
	var lowMPKI, highMPKI float64
	var nl, nh int
	for _, rc := range res.RootCause {
		if rc.Group == "low-KL" {
			lowMPKI += rc.LLCMPKI
			nl++
		} else {
			highMPKI += rc.LLCMPKI
			nh++
		}
	}
	if nl == 0 || nh == 0 {
		t.Fatal("root cause missing a group")
	}
}

func TestFig7CoverageMonotonic(t *testing.T) {
	r := NewRunner(micro())
	res, tables, err := Fig7(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig7 returned %d tables", len(tables))
	}
	// Wider CRG criteria can only cover more.
	if !(res.Coverage[0] <= res.Coverage[1]+1e-9 && res.Coverage[1] <= res.Coverage[2]+1e-9) {
		t.Fatalf("coverage not monotonic in criterion width: %v", res.Coverage)
	}
	if res.ExperimentRatio < 7.7 || res.ExperimentRatio > 7.9 {
		t.Fatalf("experiment ratio %v, want the paper's 7.79", res.ExperimentRatio)
	}
	for ci := range res.KL {
		for mi, s := range res.KL[ci] {
			if s.Min < 0 {
				t.Fatalf("negative KL for criterion %d metric %d", ci, mi)
			}
		}
	}
}

func TestFig10Proxy(t *testing.T) {
	s := micro()
	s.Sweep = []float64{0.1, 0.9}
	r := NewRunner(s)
	res, tbl, err := Fig10(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Benchmarks) != len(fig10Benchmarks) {
		t.Fatalf("got %d benchmarks", len(res.Benchmarks))
	}
	for _, fb := range res.Benchmarks {
		if len(fb.Proxy) != len(fig10Benchmarks)-1 {
			t.Errorf("%s: %d proxy points", fb.Benchmark, len(fb.Proxy))
		}
		if len(fb.PInTE) != len(s.Sweep) {
			t.Errorf("%s: %d pinte points", fb.Benchmark, len(fb.PInTE))
		}
		for _, pt := range fb.Proxy {
			// Eq 6 under a 10-of-11-way cap: occupancy change is
			// bounded below by −100%.
			if pt.X < -100.001 {
				t.Errorf("%s: occupancy change %v below -100%%", fb.Benchmark, pt.X)
			}
		}
	}
	if tbl == nil || len(tbl.Rows) == 0 {
		t.Fatal("empty fig10 table")
	}
}

func TestFig11CaseStudy(t *testing.T) {
	s := micro()
	s.Workloads = []string{"450.soplex", "470.lbm"}
	s.Sweep = []float64{0.05, 0.9}
	r := NewRunner(s)
	res, tables, err := Fig11(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || len(tables) != 4 {
		t.Fatalf("rows/tables = %d/%d, want 4/4", len(res.Rows), len(tables))
	}
	for _, row := range res.Rows {
		opts := fig11Options(row.Dimension)
		for _, fc := range row.Configs {
			if len(fc.Cells) != len(opts) {
				t.Fatalf("%s: %d cells for %d options", row.Dimension, len(fc.Cells), len(opts))
			}
			var winSum float64
			for _, cell := range fc.Cells {
				winSum += cell.WinShare
			}
			// Win shares sum to 1 (every workload has a winner).
			if winSum < 0.99 || winSum > 1.01 {
				t.Fatalf("%s p=%v: win shares sum to %v", row.Dimension, fc.PInduce, winSum)
			}
			if fc.TieShare < 0 || fc.TieShare > 1 || fc.MultiGoodShare < fc.TieShare {
				t.Fatalf("%s: tie accounting inconsistent: %v/%v",
					row.Dimension, fc.TieShare, fc.MultiGoodShare)
			}
		}
	}
}

func TestExtensionsExperiment(t *testing.T) {
	r := NewRunner(micro())
	res, tables, err := Extensions(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables", len(tables))
	}
	if len(res.DRAMRows) != len(r.Scale.Workloads) {
		t.Fatalf("dram rows = %d", len(res.DRAMRows))
	}
	// The DRAM extension must deepen the IPC drop for the LLC/DRAM
	// bound workloads (soplex, lbm in the micro set).
	for _, row := range res.DRAMRows {
		if row.Benchmark == "453.povray" {
			continue // core-bound: little memory traffic to inflate
		}
		if row.DropExtended >= row.DropPInTE {
			t.Errorf("%s: DRAM extension did not deepen the drop (%v vs %v)",
				row.Benchmark, row.DropExtended, row.DropPInTE)
		}
	}
}

func TestCapacityCurves(t *testing.T) {
	r := NewRunner(micro())
	res, tbl, err := Capacity(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != len(r.Scale.Workloads) {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	for _, c := range res.Curves {
		if len(c.Ways) != len(c.WeightedIPC) {
			t.Fatalf("%s: ragged curve", c.Benchmark)
		}
		// Weighted IPC at full allocation is 1 by construction.
		last := c.WeightedIPC[len(c.WeightedIPC)-1]
		if last < 0.999 || last > 1.001 {
			t.Errorf("%s: full-allocation weighted IPC %v", c.Benchmark, last)
		}
		// More capacity never hurts much: the curve should be roughly
		// non-decreasing (allow small simulator noise).
		for i := 1; i < len(c.WeightedIPC); i++ {
			if c.WeightedIPC[i] < c.WeightedIPC[i-1]-0.05 {
				t.Errorf("%s: capacity curve dips at %d ways: %v",
					c.Benchmark, c.Ways[i], c.WeightedIPC)
			}
		}
	}
	if !strings.Contains(tbl.String(), "capacity") {
		t.Error("table id missing")
	}
}

func TestPartitioningExperiment(t *testing.T) {
	s := micro()
	s.Workloads = []string{"450.soplex", "470.lbm"} // one victim, one aggressor
	r := NewRunner(s)
	res, tbl, err := Partitioning(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no partitioning rows")
	}
	for _, row := range res.Rows {
		if row.UCPCR >= row.SharedCR {
			t.Errorf("%s vs %s: UCP contention %v not below shared %v",
				row.Victim, row.Aggressor, row.UCPCR, row.SharedCR)
		}
		if row.TheftCR >= row.SharedCR {
			t.Errorf("%s vs %s: theft-guided contention %v not below shared %v",
				row.Victim, row.Aggressor, row.TheftCR, row.SharedCR)
		}
	}
	if tbl == nil || len(tbl.Rows) != len(res.Rows) {
		t.Fatal("table mismatch")
	}
}
