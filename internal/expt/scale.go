// Package expt regenerates every table and figure of the PInTE paper's
// evaluation from the bundled simulator: Table I (simulation cost), Fig 1
// (contention-rate coverage), Fig 2 (theft mechanics walkthrough), Fig 3
// (stability), Table II (relative error), Fig 5/6 (reuse KL divergence),
// Fig 7 (run-time KL and CRG coverage), Fig 8 (sensitivity curves and
// classification), Fig 9 (AMAT distributions), Fig 10 (real-system
// proxy), and Fig 11 (architecture case study).
//
// Each experiment has a generator function returning both a typed result
// (asserted by tests) and report tables (rendered by cmd/pintereport and
// recorded in EXPERIMENTS.md).
package expt

import (
	"fmt"

	"repro/internal/trace"
)

// Scale bounds an experiment's cost. The paper's full study (188 traces ×
// 1B instructions) is scaled down; ratios between warm-up, region of
// interest and sample interval are preserved (500M:500M:10M ≈ 1:1:1/50).
type Scale struct {
	// Warmup, ROI and SampleEvery are per-run instruction budgets.
	Warmup, ROI, SampleEvery uint64
	// Workloads is the benchmark subset exercised.
	Workloads []string
	// AdversariesPerWorkload bounds 2nd-Trace pairings per workload.
	AdversariesPerWorkload int
	// Sweep is the P_Induce configuration set.
	Sweep []float64
	// Reruns is the per-configuration repeat count (Fig 3).
	Reruns int
	// Workers bounds parallel simulations; 0 means GOMAXPROCS.
	Workers int
	// Seed is the base seed for all derived runs.
	Seed uint64
}

// Tiny returns a unit-test scale: 6 workloads (one per behavioural
// corner), short regions. Experiment shapes remain observable; absolute
// numbers are noisy.
func Tiny() Scale {
	return Scale{
		Warmup:      50_000,
		ROI:         150_000,
		SampleEvery: 15_000,
		Workloads: []string{
			"453.povray", // core-bound
			"456.hmmer",  // core-bound with L2 spills ('*')
			"450.soplex", // LLC-bound pointer chase ('+')
			"433.milc",   // LLC-bound random
			"470.lbm",    // DRAM-bound streaming
			"429.mcf",    // DRAM-bound pointer chase (disagreement)
		},
		AdversariesPerWorkload: 2,
		Sweep:                  []float64{0.01, 0.10, 0.50, 0.90},
		Reruns:                 4,
		Seed:                   1,
	}
}

// Small returns the default benchmark scale: a 12-workload cross-section
// covering every class and both suites, a 6-point sweep, 3 adversaries.
func Small() Scale {
	return Scale{
		Warmup:      100_000,
		ROI:         400_000,
		SampleEvery: 40_000,
		Workloads: []string{
			"400.perlbench", "453.povray", "456.hmmer", "641.leela",
			"450.soplex", "471.omnetpp", "433.milc", "605.mcf",
			"470.lbm", "619.lbm", "429.mcf", "403.gcc",
		},
		AdversariesPerWorkload: 3,
		Sweep:                  []float64{0.01, 0.05, 0.10, 0.30, 0.50, 0.90},
		Reruns:                 8,
		Seed:                   1,
	}
}

// Full returns the complete reproduction: all 49 presets, the 12-point
// sweep, 8 adversaries per workload, 25 reruns for the stability study.
func Full() Scale {
	return Scale{
		Warmup:                 200_000,
		ROI:                    1_000_000,
		SampleEvery:            50_000,
		Workloads:              trace.Names(),
		AdversariesPerWorkload: 8,
		Sweep: []float64{0.005, 0.01, 0.025, 0.05, 0.075, 0.10,
			0.20, 0.30, 0.50, 0.70, 0.90, 1.0},
		Reruns: 25,
		Seed:   1,
	}
}

// ByName resolves a scale name used by command-line tools.
func ByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny(), nil
	case "small":
		return Small(), nil
	case "full":
		return Full(), nil
	}
	return Scale{}, fmt.Errorf("expt: unknown scale %q (want tiny, small or full)", name)
}

// Adversaries returns the co-runner list for workload w: a deterministic
// rotation over the scale's workload set, excluding w itself, bounded by
// AdversariesPerWorkload. Rotating (rather than taking a fixed prefix)
// spreads adversary classes across primaries the way the paper's
// all-pairs study does.
func (s Scale) Adversaries(w string) []string {
	var out []string
	start := 0
	for i, name := range s.Workloads {
		if name == w {
			start = i + 1
			break
		}
	}
	n := len(s.Workloads)
	for k := 0; k < n && len(out) < s.AdversariesPerWorkload; k++ {
		cand := s.Workloads[(start+k)%n]
		if cand == w {
			continue
		}
		out = append(out, cand)
	}
	return out
}
