package expt

import "testing"

// TestPInduceAudit runs the calibration audit at micro scale and
// asserts the contract pintereport's audit table depends on: every
// point is calibrated, the P_Induce = 0 rows have exactly zero
// triggers, and the table carries one row per (workload, point) pair
// including the prepended zero endpoint.
func TestPInduceAudit(t *testing.T) {
	r := NewRunner(micro())
	res, tbl, err := PInduceAudit(r)
	if err != nil {
		t.Fatal(err)
	}
	points := auditPoints(r.Scale)
	if want := len(r.Scale.Workloads) * len(points); len(res.Rows) != want {
		t.Fatalf("%d rows, want %d", len(res.Rows), want)
	}
	if points[0] != 0 {
		t.Fatalf("audit points %v missing the prepended 0 endpoint", points)
	}
	if tbl == nil || len(tbl.Rows) != len(res.Rows) {
		t.Fatal("report table rows diverge from typed rows")
	}
	// A core-bound workload can legitimately produce zero engine
	// accesses at micro scale; the grid as a whole must not.
	var sawTraffic bool
	for _, row := range res.Rows {
		a := row.Audit
		if a.Accesses > 0 {
			sawTraffic = true
		}
		if row.PInduce == 0 && a.Triggers != 0 {
			t.Errorf("%s p=0: %d triggers, want exactly 0", row.Workload, a.Triggers)
		}
		if !a.Calibrated {
			t.Errorf("%s p=%v: realized %.5f over %d accesses (z=%.2f) outside tolerance",
				row.Workload, row.PInduce, a.Realized, a.Accesses, a.Z)
		}
	}
	if !sawTraffic {
		t.Error("no audit row saw any engine accesses")
	}
	if !res.AllCalibrated {
		t.Error("AllCalibrated is false despite per-row checks")
	}
}
