package expt

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Table1Row is one source-of-contention row of Table I.
type Table1Row struct {
	Source   string
	Sims     int
	AvgSec   float64
	StdSec   float64
	MaxSec   float64
	MinSec   float64
	TotalSec float64
}

// Table1Result reproduces Table I: simulation run-times and experiment
// sizes for the three contention sources, measured on this simulator.
type Table1Result struct {
	Rows [3]Table1Row

	// AvgTimeRatio2nd is avg(2nd-Trace)/avg(None) — the paper reports
	// 2.4×. TotalTimeRatio2nd is total(2nd-Trace)/total(None) at the
	// executed experiment counts.
	AvgTimeRatio2nd   float64
	AvgTimeRatioPInTE float64

	// FullScaleExperimentRatio is the §IV-E4 arithmetic at 188 traces:
	// all-pairs 2nd-Trace experiments over 12-configuration PInTE
	// experiments (the paper's 7.79×).
	FullScaleExperimentRatio float64
}

func times(results []*sim.Result) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.WallTime.Seconds()
	}
	return out
}

func summarizeTimes(source string, results []*sim.Result) Table1Row {
	ts := times(results)
	s := stats.Summarize(ts)
	var total float64
	for _, t := range ts {
		total += t
	}
	return Table1Row{
		Source:   source,
		Sims:     len(ts),
		AvgSec:   s.Mean,
		StdSec:   stats.StdDev(ts),
		MaxSec:   s.Max,
		MinSec:   s.Min,
		TotalSec: total,
	}
}

// Table1 measures Table I on the bundled simulator at r's scale.
func Table1(r *Runner) (*Table1Result, *report.Table, error) {
	iso, err := r.IsolationAll()
	if err != nil {
		return nil, nil, err
	}
	pairs, err := r.PairsAll()
	if err != nil {
		return nil, nil, err
	}
	sweep, err := r.SweepAll()
	if err != nil {
		return nil, nil, err
	}

	var isoR, pairR, pinR []*sim.Result
	for _, w := range r.Scale.Workloads {
		isoR = append(isoR, iso[w])
		pairR = append(pairR, pairs[w]...)
		pinR = append(pinR, sweep[w]...)
	}

	res := &Table1Result{}
	res.Rows[0] = summarizeTimes("None", isoR)
	res.Rows[1] = summarizeTimes("2nd-Trace", pairR)
	res.Rows[2] = summarizeTimes("PInTE", pinR)
	if res.Rows[0].AvgSec > 0 {
		res.AvgTimeRatio2nd = res.Rows[1].AvgSec / res.Rows[0].AvgSec
		res.AvgTimeRatioPInTE = res.Rows[2].AvgSec / res.Rows[0].AvgSec
	}
	const traces = 188.0
	res.FullScaleExperimentRatio = (traces * (traces - 1) / 2) / (12 * traces)

	tbl := &report.Table{
		ID:      "table1",
		Title:   "Simulation run-times and experiment sizes (wall clock, this simulator)",
		Columns: []string{"Source", "#Sims", "Avg(s)", "StdDev(s)", "Max(s)", "Min(s)", "Total(s)"},
	}
	for _, row := range res.Rows {
		tbl.AddRowf(row.Source, row.Sims, row.AvgSec, row.StdSec, row.MaxSec, row.MinSec, row.TotalSec)
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("avg-time ratios vs isolation: 2nd-Trace %.2fx (paper 2.4x), PInTE %.2fx (paper 1.12x)",
			res.AvgTimeRatio2nd, res.AvgTimeRatioPInTE),
		fmt.Sprintf("full-scale experiment-count ratio (188 traces, all pairs vs 12-config sweep): %.2fx (paper 7.79x)",
			res.FullScaleExperimentRatio),
		fmt.Sprintf("wall times measured %s on this host; shapes, not absolute hours, are the target", time.Now().Format("2006-01-02")),
	)
	return res, tbl, nil
}
