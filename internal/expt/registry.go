package expt

import (
	"fmt"
	"sort"

	"repro/internal/report"
)

// Generator regenerates one paper artifact at the runner's scale.
type Generator func(*Runner) ([]*report.Table, error)

// registry maps experiment ids to generators. Ids match DESIGN.md's
// per-experiment index.
var registry = map[string]Generator{
	"table1": func(r *Runner) ([]*report.Table, error) {
		_, t, err := Table1(r)
		return one(t), err
	},
	"fig1": func(r *Runner) ([]*report.Table, error) {
		_, t, err := Fig1(r)
		return one(t), err
	},
	"fig2": func(r *Runner) ([]*report.Table, error) {
		_, t, err := Fig2()
		return one(t), err
	},
	"fig3": func(r *Runner) ([]*report.Table, error) {
		_, t, err := Fig3(r)
		return one(t), err
	},
	"table2": func(r *Runner) ([]*report.Table, error) {
		_, t, err := Table2(r)
		return one(t), err
	},
	"fig5": func(r *Runner) ([]*report.Table, error) {
		_, t, err := Fig5(r)
		return one(t), err
	},
	"fig6": func(r *Runner) ([]*report.Table, error) {
		_, ts, err := Fig6(r)
		return ts, err
	},
	"fig7": func(r *Runner) ([]*report.Table, error) {
		_, ts, err := Fig7(r)
		return ts, err
	},
	"fig8": func(r *Runner) ([]*report.Table, error) {
		_, t, err := Fig8(r)
		return one(t), err
	},
	"fig9": func(r *Runner) ([]*report.Table, error) {
		_, t, err := Fig9(r)
		return one(t), err
	},
	"fig10": func(r *Runner) ([]*report.Table, error) {
		_, t, err := Fig10(r)
		return one(t), err
	},
	"fig11": func(r *Runner) ([]*report.Table, error) {
		_, ts, err := Fig11(r)
		return ts, err
	},
	// ext is not a paper artifact: it measures the §IV-E2b future-work
	// mechanisms this reproduction implements.
	"ext": func(r *Runner) ([]*report.Table, error) {
		_, ts, err := Extensions(r)
		return ts, err
	},
	// capacity is not a paper artifact: C²AFE-style capacity curves
	// via RDT-like way allocation, complementing the Fig 8 contention
	// curves.
	"capacity": func(r *Runner) ([]*report.Table, error) {
		_, t, err := Capacity(r)
		return one(t), err
	},
	// audit is not a paper artifact: it cross-checks the engine's
	// realized trigger rate against the configured P_Induce at every
	// sweep point (plus the p=0 endpoint) using the telemetry counters.
	"audit": func(r *Runner) ([]*report.Table, error) {
		_, t, err := PInduceAudit(r)
		return one(t), err
	},
	// partitioning is not a paper artifact: it evaluates the
	// contention-aware designs (§VII-d) — UCP vs CASHT-style
	// theft-guided LLC partitioning — on this substrate.
	"partitioning": func(r *Runner) ([]*report.Table, error) {
		_, t, err := Partitioning(r)
		return one(t), err
	},
}

func one(t *report.Table) []*report.Table {
	if t == nil {
		return nil
	}
	return []*report.Table{t}
}

// IDs lists registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup resolves an experiment id.
func Lookup(id string) (Generator, error) {
	g, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("expt: unknown experiment %q (have %v)", id, IDs())
	}
	return g, nil
}

// RunExperiment resolves and runs one experiment.
func RunExperiment(id string, r *Runner) ([]*report.Table, error) {
	g, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return g(r)
}
