package expt

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// AuditRow is one (workload, P_Induce) point of the calibration audit:
// the realized trigger rate the engine actually rolled, judged against
// the configured probability with a binomial tolerance.
type AuditRow struct {
	Workload string
	PInduce  float64
	Audit    telemetry.Audit
}

// AuditResult is the full calibration audit across the scale's
// workloads and sweep points (with P_Induce = 0 prepended so the
// never-inject endpoint is always checked).
type AuditResult struct {
	Rows []AuditRow
	// AllCalibrated is true when every point passed its tolerance —
	// endpoints exactly, interior points within AuditZTolerance
	// standard errors.
	AllCalibrated bool
}

// auditPoints returns the sweep grid with the P_Induce = 0 endpoint
// prepended (unless the scale already sweeps it).
func auditPoints(s Scale) []float64 {
	points := []float64{0}
	for _, p := range s.Sweep {
		if p != 0 {
			points = append(points, p)
		}
	}
	return points
}

// PInduceAudit verifies the engine's induction probability end to end:
// for every scale workload and sweep point it runs the simulator with
// telemetry enabled and compares the realized trigger rate (triggers
// per engine access, from the telemetry counters) to the configured
// P_Induce. The P_Induce = 0 rows must show exactly zero triggers —
// the regression the strict trigger comparison guards — and interior
// points must land within the binomial tolerance.
func PInduceAudit(r *Runner) (*AuditResult, *report.Table, error) {
	points := auditPoints(r.Scale)
	var cfgs []sim.Config
	for _, w := range r.Scale.Workloads {
		for _, p := range points {
			cfg := r.Pinte(w, p)
			cfg.TelemetryEvery = r.Scale.SampleEvery
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := r.GetAll(cfgs)
	if err != nil {
		return nil, nil, err
	}

	res := &AuditResult{AllCalibrated: true}
	tbl := &report.Table{
		ID:    "audit",
		Title: "P_Induce calibration audit: realized vs configured trigger rate",
		Columns: []string{"Benchmark", "P_Induce", "accesses", "triggers",
			"realized", "err", "z", "intvl min", "intvl max", "verdict"},
	}
	i := 0
	for _, w := range r.Scale.Workloads {
		for _, p := range points {
			out := results[i]
			i++
			var acc, trig uint64
			if out.Engine != nil {
				acc, trig = out.Engine.Accesses, out.Engine.Triggers
			}
			aud := telemetry.NewAudit(p, acc, trig, out.Telemetry)
			res.Rows = append(res.Rows, AuditRow{Workload: w, PInduce: p, Audit: aud})
			if !aud.Calibrated {
				res.AllCalibrated = false
			}
			verdict := "ok"
			if !aud.Calibrated {
				verdict = "MISCALIBRATED"
			}
			tbl.AddRow(w,
				fmt.Sprintf("%.3f", p),
				fmt.Sprintf("%d", acc),
				fmt.Sprintf("%d", trig),
				fmt.Sprintf("%.5f", aud.Realized),
				fmt.Sprintf("%+.5f", aud.Error),
				fmt.Sprintf("%+.2f", aud.Z),
				fmt.Sprintf("%.4f", aud.MinIntervalRate),
				fmt.Sprintf("%.4f", aud.MaxIntervalRate),
				verdict)
		}
	}
	return res, tbl, nil
}
