package expt

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/report"
	"repro/internal/sim"
)

// fig10Benchmarks are the six SPEC 17 benchmarks of Figure 10.
var fig10Benchmarks = []string{
	"600.perlbench", "602.gcc", "619.lbm", "620.omnetpp", "627.cam4", "648.exchange2",
}

// fig10AllocFrac is the RDT allocation of §V-D: 10MB of the 11MB LLC.
const fig10AllocFrac = 10.0 / 11.0

// Fig10Point is one sampled (x, %ΔIPC) observation.
type Fig10Point struct {
	X        float64 // change-in-occupancy % (proxy) or interference rate (PInTE)
	DeltaIPC float64 // percent change vs the lowest-contention case
}

// Fig10Bench is one benchmark's comparison.
type Fig10Bench struct {
	Benchmark string
	// Proxy ("real system" substitute) points: pair co-runs on the
	// Xeon-like machine, x = Eq 6 change in occupancy.
	Proxy []Fig10Point
	// PInTE points on the same machine, x = interference rate.
	PInTE []Fig10Point
	// MaxLossProxy / MaxLossPInTE summarise each side's worst %ΔIPC.
	MaxLossProxy, MaxLossPInTE float64
}

// Fig10Result reproduces Figure 10's real-system comparison. The paper
// runs SPEC 17 Rate pairs on an Intel Xeon Silver 4110 (11MB LLC, RDT
// capped at 10MB) and compares against PInTE on a ChampSim model of the
// server with halved DRAM resources. Without the hardware, both sides run
// on the Xeon-like simulator configuration: the proxy side uses real
// co-run contention and the Eq 6 occupancy metric (all the paper can
// measure on hardware), the PInTE side uses induced contention and
// interference rate.
type Fig10Result struct {
	Benchmarks []Fig10Bench
}

// fig10Machine is the Xeon Silver 4110 stand-in: 11MB 11-way LLC and
// halved DRAM resources (§V-D).
func fig10Machine(cores int) (cache.HierarchyConfig, dram.Config) {
	h := cache.DefaultConfig(cores)
	h.LLC = cache.LevelConfig{SizeBytes: 11 << 20, Ways: 11, HitLatency: 30}
	return h, dram.Halved()
}

// Fig10 runs the comparison at r's scale budgets.
func Fig10(r *Runner) (*Fig10Result, *report.Table, error) {
	res := &Fig10Result{}
	hier1, dcfg := fig10Machine(1)
	hier2, _ := fig10Machine(2)

	// The paper caps the measured workloads at 10 of the Xeon's 11MB
	// via Intel RDT; the model expresses the same cap as a 10-of-11
	// way allocation.
	const allocWays = 10
	mkIso := func(w string) sim.Config {
		cfg := r.base(sim.Config{Mode: sim.Isolation, Workload: w})
		cfg.Hier, cfg.DRAM = hier1, &dcfg
		cfg.LLCWayAllocation = allocWays
		return cfg
	}
	mkPair := func(w, adv string) sim.Config {
		cfg := r.base(sim.Config{Mode: sim.SecondTrace, Workload: w, Adversary: adv})
		cfg.Hier, cfg.DRAM = hier2, &dcfg
		cfg.LLCWayAllocation = allocWays
		return cfg
	}
	mkPinte := func(w string, p float64) sim.Config {
		cfg := r.base(sim.Config{Mode: sim.PInTE, Workload: w, PInduce: p})
		cfg.Hier, cfg.DRAM = hier1, &dcfg
		cfg.LLCWayAllocation = allocWays
		return cfg
	}

	tbl := &report.Table{
		ID:    "fig10",
		Title: "Real-system proxy vs PInTE on the Xeon-like machine (%ΔIPC)",
		Columns: []string{"Benchmark", "side", "x (occupancyΔ% | interf rate)",
			"ΔIPC%"},
	}
	for _, w := range fig10Benchmarks {
		iso, err := r.Get(mkIso(w))
		if err != nil {
			return nil, nil, err
		}
		fb := Fig10Bench{Benchmark: w}

		// Proxy side: co-run with every other Fig 10 benchmark.
		var baseIPC float64
		var proxyRes []*sim.Result
		for _, adv := range fig10Benchmarks {
			if adv == w {
				continue
			}
			pr, err := r.Get(mkPair(w, adv))
			if err != nil {
				return nil, nil, err
			}
			proxyRes = append(proxyRes, pr)
		}
		// The lowest-contention case anchors ΔIPC (the paper's dotted
		// lines reference the lowest contention run).
		baseIPC = iso.IPC
		for _, pr := range proxyRes {
			occ := 100 * (pr.OccupancyFrac/fig10AllocFrac - 1)
			d := 100 * (pr.IPC - baseIPC) / baseIPC
			fb.Proxy = append(fb.Proxy, Fig10Point{X: occ, DeltaIPC: d})
			if d < fb.MaxLossProxy {
				fb.MaxLossProxy = d
			}
		}

		// PInTE side across the sweep.
		for _, p := range r.Scale.Sweep {
			pr, err := r.Get(mkPinte(w, p))
			if err != nil {
				return nil, nil, err
			}
			d := 100 * (pr.IPC - baseIPC) / baseIPC
			fb.PInTE = append(fb.PInTE, Fig10Point{X: pr.ContentionRate, DeltaIPC: d})
			if d < fb.MaxLossPInTE {
				fb.MaxLossPInTE = d
			}
		}
		res.Benchmarks = append(res.Benchmarks, fb)

		for _, pt := range fb.Proxy {
			tbl.AddRowf(w, "proxy", pt.X, pt.DeltaIPC)
		}
		for _, pt := range fb.PInTE {
			tbl.AddRowf(w, "pinte", pt.X, pt.DeltaIPC)
		}
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("machine: 11MB 11-way LLC, halved DRAM; Eq 6 allocation cap %.0f%% of LLC", 100*fig10AllocFrac),
		"paper: lbm/cam4 lose more under PInTE (controlled contention + dearer DRAM); perlbench/gcc within a few percent; exchange2 insensitive",
	)
	return res, tbl, nil
}
