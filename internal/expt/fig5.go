package expt

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig5Case is one reuse-histogram alignment case.
type Fig5Case struct {
	Benchmark string
	KLBits    float64
	// SecondHist and PInTEHist are the normalised reuse (hit-position)
	// histograms being compared.
	SecondHist []float64
	PInTEHist  []float64
}

// Fig5Result reproduces Figure 5: reuse-distance histograms under PInTE
// vs 2nd-Trace contention for three alignment cases (good / medium /
// worst), quantified with KL divergence. Cases are selected from the
// scale's workloads by observed KL rank, mirroring the paper's choice of
// gromacs / fotonik3d_s / imagick_s.
type Fig5Result struct {
	Good, Medium, Worst Fig5Case
}

// reuseKL returns the KL divergence (bits) between a 2nd-Trace result's
// reuse histogram (observed, p) and its CRG-matched PInTE partner's
// (reference, q), per §IV-E3.
func reuseKL(second, pin *sim.Result) float64 {
	return stats.KLDivergenceBits(
		stats.U64ToF64(second.ReuseHist),
		stats.U64ToF64(pin.ReuseHist),
		stats.KLOptions{},
	)
}

func normalize(h []uint64) []float64 {
	out := stats.U64ToF64(h)
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum == 0 {
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// benchReuseKL computes each workload's mean reuse KL over CRG-matched
// (2nd-Trace, PInTE) pairs, plus one representative pair per workload.
func benchReuseKL(r *Runner) (map[string]float64, map[string][2]*sim.Result, error) {
	pairs, err := r.PairsAll()
	if err != nil {
		return nil, nil, err
	}
	sweep, err := r.SweepAll()
	if err != nil {
		return nil, nil, err
	}
	crg := stats.DefaultCRG()
	kls := make(map[string]float64)
	rep := make(map[string][2]*sim.Result)
	for _, w := range r.Scale.Workloads {
		matched := matchByCRG(crg, pairs[w], sweep[w])
		if len(matched) == 0 {
			continue
		}
		var sum float64
		for _, m := range matched {
			sum += reuseKL(m[0], m[1])
		}
		kls[w] = sum / float64(len(matched))
		rep[w] = matched[0]
	}
	return kls, rep, nil
}

// Fig5 selects the best-, median- and worst-aligned workloads by reuse
// KL and reports their histograms.
func Fig5(r *Runner) (*Fig5Result, *report.Table, error) {
	kls, rep, err := benchReuseKL(r)
	if err != nil {
		return nil, nil, err
	}
	if len(kls) == 0 {
		return nil, nil, fmt.Errorf("expt: fig5 found no CRG-matched pairs")
	}
	// Rank workloads by KL, skipping those whose reuse histograms are
	// too thin to compare (core-bound workloads with almost no LLC
	// hits yield degenerate zero-KL "matches").
	type wk struct {
		w  string
		kl float64
	}
	var ranked []wk
	for w, k := range kls {
		var hits uint64
		for _, v := range rep[w][0].ReuseHist {
			hits += v
		}
		if hits < 50 {
			continue
		}
		ranked = append(ranked, wk{w, k})
	}
	if len(ranked) == 0 {
		return nil, nil, fmt.Errorf("expt: fig5 found no workloads with usable reuse histograms")
	}
	for i := 0; i < len(ranked); i++ {
		for j := i + 1; j < len(ranked); j++ {
			if ranked[j].kl < ranked[i].kl {
				ranked[i], ranked[j] = ranked[j], ranked[i]
			}
		}
	}
	mk := func(e wk) Fig5Case {
		m := rep[e.w]
		return Fig5Case{
			Benchmark:  e.w,
			KLBits:     e.kl,
			SecondHist: normalize(m[0].ReuseHist),
			PInTEHist:  normalize(m[1].ReuseHist),
		}
	}
	res := &Fig5Result{
		Good:   mk(ranked[0]),
		Medium: mk(ranked[len(ranked)/2]),
		Worst:  mk(ranked[len(ranked)-1]),
	}

	tbl := &report.Table{
		ID:      "fig5",
		Title:   "Reuse histograms under PInTE vs 2nd-Trace: alignment cases",
		Columns: []string{"Case", "Benchmark", "KL (bits)", "hist(2nd-Trace)", "hist(PInTE)"},
	}
	histStr := func(h []float64) string {
		s := ""
		for i, v := range h {
			if i > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.2f", v)
		}
		return s
	}
	for _, c := range []struct {
		name string
		c    Fig5Case
	}{{"good", res.Good}, {"medium", res.Medium}, {"worst", res.Worst}} {
		tbl.AddRowf(c.name, c.c.Benchmark, c.c.KLBits,
			histStr(c.c.SecondHist), histStr(c.c.PInTEHist))
	}
	tbl.Notes = append(tbl.Notes,
		"histogram buckets are LLC hit stack positions (0 = MRU end)",
		"paper's cases: gromacs (good), fotonik3d_s (~20x good), imagick_s (>200x good)",
	)
	return res, tbl, nil
}
