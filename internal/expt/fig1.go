package expt

import (
	"fmt"

	"repro/internal/report"
)

// Fig1Result reproduces Figure 1: the distribution of observed contention
// rates (thefts experienced per LLC access) under 2nd-Trace pairings
// versus the PInTE sweep. The paper's claim: trace pairs over-represent
// low contention, while PInTE covers the range uniformly.
type Fig1Result struct {
	// Buckets are deciles of contention rate [0-10%), [10-20%) … [90-100%].
	SecondTrace [10]int
	PInTE       [10]int

	// LowShare2nd / LowSharePInTE are the fraction of experiments in
	// the lowest decile for each source.
	LowShare2nd   float64
	LowSharePInTE float64
}

func bucketize(rates []float64, buckets *[10]int) {
	for _, r := range rates {
		b := int(r * 10)
		if b > 9 {
			b = 9
		}
		if b < 0 {
			b = 0
		}
		buckets[b]++
	}
}

// Fig1 computes the contention-rate coverage comparison.
func Fig1(r *Runner) (*Fig1Result, *report.Table, error) {
	pairs, err := r.PairsAll()
	if err != nil {
		return nil, nil, err
	}
	sweep, err := r.SweepAll()
	if err != nil {
		return nil, nil, err
	}

	var second, pin []float64
	for _, w := range r.Scale.Workloads {
		for _, res := range pairs[w] {
			second = append(second, res.ContentionRate)
		}
		for _, res := range sweep[w] {
			pin = append(pin, res.ContentionRate)
		}
	}

	res := &Fig1Result{}
	bucketize(second, &res.SecondTrace)
	bucketize(pin, &res.PInTE)
	if len(second) > 0 {
		res.LowShare2nd = float64(res.SecondTrace[0]) / float64(len(second))
	}
	if len(pin) > 0 {
		res.LowSharePInTE = float64(res.PInTE[0]) / float64(len(pin))
	}

	tbl := &report.Table{
		ID:      "fig1",
		Title:   "Contention rate coverage: 2nd-Trace vs PInTE (experiments per decile)",
		Columns: []string{"Rate bucket", "2nd-Trace", "PInTE"},
	}
	for b := 0; b < 10; b++ {
		tbl.AddRowf(fmt.Sprintf("%d-%d%%", b*10, (b+1)*10),
			res.SecondTrace[b], res.PInTE[b])
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("share of experiments below 10%% contention: 2nd-Trace %.0f%%, PInTE %.0f%%",
			100*res.LowShare2nd, 100*res.LowSharePInTE),
		"paper's Fig 1: trace sharing skews toward low contention; the PInTE sweep spreads across the range",
	)
	return res, tbl, nil
}
