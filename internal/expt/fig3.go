package expt

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig3Result reproduces Figure 3's stability analysis: PInTE is rerun
// with fresh engine seeds for each (workload, P_Induce) configuration and
// the normalized standard deviation (Eq 3) of miss rate and IPC is
// reported per benchmark and per configuration.
type Fig3Result struct {
	// PerBenchmark maps workload → median normalized std-dev across
	// its P_Induce configurations.
	PerBenchmarkMR  map[string]float64
	PerBenchmarkIPC map[string]float64
	// PerConfig maps sweep index → median normalized std-dev across
	// workloads.
	PerConfigMR  []float64
	PerConfigIPC []float64
	// MaxMR / MaxIPC are the worst normalized std-devs observed (the
	// paper reports <0.00125 and <0.011 medians per config).
	MaxMR, MaxIPC float64
}

// Fig3 runs the stability study: Scale.Reruns seeds per configuration.
func Fig3(r *Runner) (*Fig3Result, *report.Table, error) {
	s := r.Scale
	var cfgs []sim.Config
	for _, w := range s.Workloads {
		for _, p := range s.Sweep {
			for k := 0; k < s.Reruns; k++ {
				cfgs = append(cfgs, r.PinteSeeded(w, p, s.Seed+uint64(1000+k*17)))
			}
		}
	}
	results, err := r.GetAll(cfgs)
	if err != nil {
		return nil, nil, err
	}

	res := &Fig3Result{
		PerBenchmarkMR:  make(map[string]float64),
		PerBenchmarkIPC: make(map[string]float64),
		PerConfigMR:     make([]float64, len(s.Sweep)),
		PerConfigIPC:    make([]float64, len(s.Sweep)),
	}
	// normMR[w][pi] = normalized std-dev across reruns.
	perConfigMR := make([][]float64, len(s.Sweep))
	perConfigIPC := make([][]float64, len(s.Sweep))
	i := 0
	for _, w := range s.Workloads {
		var benchMR, benchIPC []float64
		for pi := range s.Sweep {
			var mrs, ipcs []float64
			for k := 0; k < s.Reruns; k++ {
				mrs = append(mrs, results[i].MissRate)
				ipcs = append(ipcs, results[i].IPC)
				i++
			}
			nmr := stats.NormStdDev(mrs)
			nipc := stats.NormStdDev(ipcs)
			benchMR = append(benchMR, nmr)
			benchIPC = append(benchIPC, nipc)
			perConfigMR[pi] = append(perConfigMR[pi], nmr)
			perConfigIPC[pi] = append(perConfigIPC[pi], nipc)
			if nmr > res.MaxMR {
				res.MaxMR = nmr
			}
			if nipc > res.MaxIPC {
				res.MaxIPC = nipc
			}
		}
		res.PerBenchmarkMR[w] = stats.Summarize(benchMR).Median
		res.PerBenchmarkIPC[w] = stats.Summarize(benchIPC).Median
	}
	for pi := range s.Sweep {
		res.PerConfigMR[pi] = stats.Summarize(perConfigMR[pi]).Median
		res.PerConfigIPC[pi] = stats.Summarize(perConfigIPC[pi]).Median
	}

	tbl := &report.Table{
		ID:      "fig3",
		Title:   fmt.Sprintf("PInTE stability: normalized std-dev over %d reruns (median)", s.Reruns),
		Columns: []string{"Benchmark", "MR nstd (med)", "IPC nstd (med)"},
	}
	for _, w := range s.Workloads {
		tbl.AddRowf(w, res.PerBenchmarkMR[w], res.PerBenchmarkIPC[w])
	}
	for pi, p := range s.Sweep {
		tbl.AddRowf(fmt.Sprintf("P_Induce=%.3f", p), res.PerConfigMR[pi], res.PerConfigIPC[pi])
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("worst observed: MR %.5f, IPC %.5f (paper: per-config medians <0.00125 and <0.011)",
			res.MaxMR, res.MaxIPC),
		"low variation means one PInTE simulation per configuration suffices",
	)
	return res, tbl, nil
}
