package runner

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// fanoutDelta runs f and returns how much each fan-out counter moved.
func fanoutDelta(f func()) map[string]int64 {
	before := telemetry.FanoutSnapshot()
	f()
	after := telemetry.FanoutSnapshot()
	d := make(map[string]int64, len(after))
	for k, v := range after {
		d[k] = v - before[k]
	}
	return d
}

// TestFanoutRunAllEquivalence is the campaign-level determinism gate for
// the fan-out scheduler: a sweep run with Fanout on must produce results
// indistinguishable from the per-run pool, while actually sharing one
// decode per (workload, seed) group.
func TestFanoutRunAllEquivalence(t *testing.T) {
	var cfgs []sim.Config
	for _, wl := range []string{"453.povray", "450.soplex"} {
		for _, p := range []float64{0.05, 0.3, 0.7} {
			cfgs = append(cfgs, tinyCfg(wl, p))
		}
	}
	seq, err := New(Options{Workers: 2}).RunAll(context.Background(), cfgs)
	if err != nil || len(seq.Failures) != 0 {
		t.Fatalf("sequential campaign: err=%v failures=%v", err, seq.Failures)
	}
	var fan *Outcome
	d := fanoutDelta(func() {
		fan, err = New(Options{Workers: 2, Fanout: true}).RunAll(context.Background(), cfgs)
	})
	if err != nil || len(fan.Failures) != 0 {
		t.Fatalf("fan-out campaign: err=%v failures=%v", err, fan.Failures)
	}
	for i := range cfgs {
		if fingerprint(fan.Results[i]) != fingerprint(seq.Results[i]) {
			t.Errorf("config %d: fan-out result differs from sequential", i)
		}
	}
	if d["groups_formed"] != 2 || d["points_fanned"] != 6 {
		t.Errorf("groups=%d points=%d, want 2 groups over 6 points", d["groups_formed"], d["points_fanned"])
	}
	if d["decode_passes"] != 2 || d["decode_passes_saved"] != 4 {
		t.Errorf("decode passes=%d saved=%d, want 2 and 4 (one decode per group)",
			d["decode_passes"], d["decode_passes_saved"])
	}
	if fan.Ran != len(cfgs) {
		t.Errorf("Ran = %d, want %d", fan.Ran, len(cfgs))
	}
}

// TestFanoutSingletonBypass checks points with no stream-mates skip the
// fan phase entirely and run on the per-run pool.
func TestFanoutSingletonBypass(t *testing.T) {
	cfgs := []sim.Config{tinyCfg("433.milc", 0.1), tinyCfg("470.lbm", 0.2)}
	var out *Outcome
	var err error
	d := fanoutDelta(func() {
		out, err = New(Options{Workers: 2, Fanout: true}).RunAll(context.Background(), cfgs)
	})
	if err != nil || len(out.Failures) != 0 {
		t.Fatalf("campaign: err=%v failures=%v", err, out.Failures)
	}
	if out.Results[0] == nil || out.Results[1] == nil {
		t.Fatal("singleton configs lost")
	}
	if d["groups_formed"] != 0 || d["points_fanned"] != 0 {
		t.Errorf("singletons were fanned: %v", d)
	}
}

// TestFanoutResumePartialGroupBypass checks a group partially satisfied
// by the resume journal is not fanned: the remaining members run on the
// per-run path, and the campaign's results still match an uninterrupted
// sequential one.
func TestFanoutResumePartialGroupBypass(t *testing.T) {
	cfgs := []sim.Config{
		tinyCfg("453.povray", 0.05),
		tinyCfg("453.povray", 0.3),
		tinyCfg("453.povray", 0.7),
	}
	seq, err := New(Options{Workers: 1}).RunAll(context.Background(), cfgs)
	if err != nil || len(seq.Failures) != 0 {
		t.Fatalf("reference campaign: err=%v failures=%v", err, seq.Failures)
	}

	journal := filepath.Join(t.TempDir(), "resume.journal")
	head, err := New(Options{Workers: 1, Journal: journal}).RunAll(context.Background(), cfgs[:1])
	if err != nil || len(head.Failures) != 0 {
		t.Fatalf("head campaign: err=%v failures=%v", err, head.Failures)
	}

	var out *Outcome
	d := fanoutDelta(func() {
		out, err = New(Options{Workers: 1, Fanout: true, Journal: journal}).RunAll(context.Background(), cfgs)
	})
	if err != nil || len(out.Failures) != 0 {
		t.Fatalf("resumed campaign: err=%v failures=%v", err, out.Failures)
	}
	if out.FromJournal != 1 {
		t.Fatalf("FromJournal = %d, want 1", out.FromJournal)
	}
	if d["groups_formed"] != 0 {
		t.Errorf("partial resume group was fanned: %v", d)
	}
	for i := range cfgs {
		if fingerprint(out.Results[i]) != fingerprint(seq.Results[i]) {
			t.Errorf("config %d: resumed result differs from reference", i)
		}
	}
}

// TestChaosFanoutWorkerPanic arms the worker panic site against a live
// fan-out group: exactly one point dies inside the group while its
// siblings complete, the dead point falls back to the per-run pool, and
// — with the fault armed for that attempt too — surfaces as a typed
// ErrPanic RunError rather than poisoning the group.
func TestChaosFanoutWorkerPanic(t *testing.T) {
	cfgs := []sim.Config{
		tinyCfg("453.povray", 0.05),
		tinyCfg("453.povray", 0.3),
		tinyCfg("453.povray", 0.7),
	}
	ref, err := New(Options{Workers: 1}).RunAll(context.Background(), cfgs)
	if err != nil || len(ref.Failures) != 0 {
		t.Fatalf("reference campaign: err=%v failures=%v", err, ref.Failures)
	}

	// The three followers are hits 1-3 of the panic site and the lone
	// fallback's sequential attempt is hit 4, so after=2 kills exactly
	// one point inside the group (hit 3) and then its per-run retry
	// (hit 4) — the typed failure must survive both layers.
	if err := fault.Apply("seed=1;worker.panic:every=1,after=2,limit=2"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	var out *Outcome
	d := fanoutDelta(func() {
		out, err = New(Options{Workers: 1, Fanout: true}).RunAll(context.Background(), cfgs)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly one (the panicking point)", out.Failures)
	}
	f := out.Failures[0]
	if !errors.Is(f.Err, sim.ErrPanic) {
		t.Fatalf("failure is untyped: %v", f.Err)
	}
	for i := range cfgs {
		if i == f.Index {
			if out.Results[i] != nil {
				t.Errorf("panicked point %d also has a result", i)
			}
			continue
		}
		if out.Results[i] == nil || fingerprint(out.Results[i]) != fingerprint(ref.Results[i]) {
			t.Errorf("sibling %d lost or diverged after an in-group panic", i)
		}
	}
	if d["fallback_points"] != 1 {
		t.Errorf("fallback_points moved by %d, want 1", d["fallback_points"])
	}
	if d["group_aborts"] != 0 {
		t.Errorf("group_aborts moved by %d, want 0 (siblings completed)", d["group_aborts"])
	}
}

// TestChaosFanoutWorkerHang wedges one follower before it reaches the
// barrier: the whole group stalls, the deadline aborts it, the stall
// watchdog abandons the wedged point, and every point retries cleanly on
// the per-run pool (where the consumed fault no longer fires).
func TestChaosFanoutWorkerHang(t *testing.T) {
	cfgs := []sim.Config{
		tinyCfg("453.povray", 0.05),
		tinyCfg("453.povray", 0.3),
		tinyCfg("453.povray", 0.7),
	}
	ref, err := New(Options{Workers: 1}).RunAll(context.Background(), cfgs)
	if err != nil || len(ref.Failures) != 0 {
		t.Fatalf("reference campaign: err=%v failures=%v", err, ref.Failures)
	}

	if err := fault.Apply("seed=1;worker.hang:every=1,limit=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	var out *Outcome
	d := fanoutDelta(func() {
		out, err = New(Options{
			Workers: 1, Fanout: true,
			Timeout: 200 * time.Millisecond, StallGrace: 200 * time.Millisecond,
		}).RunAll(context.Background(), cfgs)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Failures) != 0 {
		t.Fatalf("failures after clean fallback: %v", out.Failures)
	}
	for i := range cfgs {
		if out.Results[i] == nil || fingerprint(out.Results[i]) != fingerprint(ref.Results[i]) {
			t.Errorf("config %d lost or diverged after a group hang", i)
		}
	}
	if d["group_aborts"] != 1 {
		t.Errorf("group_aborts moved by %d, want 1", d["group_aborts"])
	}
	if d["fallback_points"] != int64(len(cfgs)) {
		t.Errorf("fallback_points moved by %d, want %d", d["fallback_points"], len(cfgs))
	}
}

// TestFanoutFallbackReentersBackoffLadder is the regression test for
// the fallback retry policy: a point that fails inside a fan-out group
// must NOT retry immediately on the per-run path — it re-enters the
// normal backoff ladder at rung 1 (measured on the fake clock), keeps
// its original seed for the fallback attempt, and still produces a
// result byte-identical to a sequential campaign.
func TestFanoutFallbackReentersBackoffLadder(t *testing.T) {
	cfgs := []sim.Config{
		tinyCfg("453.povray", 0.05),
		tinyCfg("453.povray", 0.3),
		tinyCfg("453.povray", 0.7),
	}
	ref, err := New(Options{Workers: 1}).RunAll(context.Background(), cfgs)
	if err != nil || len(ref.Failures) != 0 {
		t.Fatalf("reference campaign: err=%v failures=%v", err, ref.Failures)
	}

	// The three followers are hits 1-3 of the panic site; after=2 with
	// limit=1 kills exactly one point inside the group and nothing
	// afterwards, so the fallback's own attempt succeeds.
	if err := fault.Apply("seed=1;worker.panic:every=1,after=2,limit=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()

	base := 50 * time.Millisecond
	var slept []time.Duration
	o := New(Options{Workers: 1, Fanout: true, Retries: 2, Backoff: base})
	o.sleep = func(ctx context.Context, d time.Duration) { slept = append(slept, d) }
	out, err := o.RunAll(context.Background(), cfgs)
	if err != nil || len(out.Failures) != 0 {
		t.Fatalf("fan-out campaign: err=%v failures=%v", err, out.Failures)
	}
	for i := range cfgs {
		if out.Results[i] == nil || fingerprint(out.Results[i]) != fingerprint(ref.Results[i]) {
			t.Errorf("config %d lost or diverged through the fallback path", i)
		}
	}
	if len(slept) != 1 {
		t.Fatalf("fallback slept %d times (%v), want exactly 1 backoff pause", len(slept), slept)
	}
	if want := backoffDelay(base, 0, 1, cfgs[0].Seed); slept[0] != want {
		t.Errorf("fallback slept %v, want the ladder's rung-1 delay %v", slept[0], want)
	}
}

// TestFanoutMaxGroupSplit checks FanMaxGroup (the service's
// load-shedding knob) splits an oversized group into capped chunks and
// leaves a leftover singleton to the per-run path, without changing any
// result.
func TestFanoutMaxGroupSplit(t *testing.T) {
	var cfgs []sim.Config
	for _, p := range []float64{0.05, 0.1, 0.3, 0.5, 0.7} {
		cfgs = append(cfgs, tinyCfg("453.povray", p))
	}
	ref, err := New(Options{Workers: 1}).RunAll(context.Background(), cfgs)
	if err != nil || len(ref.Failures) != 0 {
		t.Fatalf("reference campaign: err=%v failures=%v", err, ref.Failures)
	}
	var out *Outcome
	d := fanoutDelta(func() {
		out, err = New(Options{Workers: 1, Fanout: true, FanMaxGroup: 2}).RunAll(context.Background(), cfgs)
	})
	if err != nil || len(out.Failures) != 0 {
		t.Fatalf("capped campaign: err=%v failures=%v", err, out.Failures)
	}
	if d["groups_formed"] != 2 || d["points_fanned"] != 4 {
		t.Errorf("groups=%d points=%d, want 2 capped groups over 4 points (singleton per-run)",
			d["groups_formed"], d["points_fanned"])
	}
	for i := range cfgs {
		if out.Results[i] == nil || fingerprint(out.Results[i]) != fingerprint(ref.Results[i]) {
			t.Errorf("config %d diverged under a capped fan group", i)
		}
	}
}
