package runner

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// drainOrder holds a 1-worker pool's only worker on a gate task while
// submit queues the real tasks, then releases the gate and waits for
// everything to finish — so dispatch order is decided by the scheduler,
// not by submission racing the worker.
func drainOrder(t *testing.T, p *Pool, submit func(wg *sync.WaitGroup)) {
	t.Helper()
	gate := make(chan struct{})
	started := make(chan struct{})
	gq := p.NewQueue("gate", 1)
	defer gq.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	gq.Submit(func(shed bool) {
		defer wg.Done()
		if !shed {
			close(started)
			<-gate
		}
	})
	<-started
	submit(&wg)
	close(gate)
	wg.Wait()
}

// TestPoolFairInterleave checks stride scheduling alternates two
// equal-weight queues run-for-run instead of draining the
// first-submitted queue to completion.
func TestPoolFairInterleave(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	var mu sync.Mutex
	var order []string
	qa := p.NewQueue("tenant-a", 1)
	qb := p.NewQueue("tenant-b", 1)
	defer qa.Close()
	defer qb.Close()

	drainOrder(t, p, func(wg *sync.WaitGroup) {
		for i := 0; i < 4; i++ {
			wg.Add(2)
			qa.Submit(func(shed bool) {
				defer wg.Done()
				mu.Lock()
				order = append(order, "a")
				mu.Unlock()
			})
			qb.Submit(func(shed bool) {
				defer wg.Done()
				mu.Lock()
				order = append(order, "b")
				mu.Unlock()
			})
		}
	})

	if len(order) != 8 {
		t.Fatalf("executed %d tasks, want 8", len(order))
	}
	// Equal weights → strict alternation (ties break by queue age).
	for i, l := range order {
		want := "a"
		if i%2 == 1 {
			want = "b"
		}
		if l != want {
			t.Fatalf("dispatch order %v: position %d is %q, want %q", order, i, l, want)
		}
	}
}

// TestPoolWeightedShares checks a weight-3 queue receives about three
// dispatches for each dispatch of a weight-1 competitor.
func TestPoolWeightedShares(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	var mu sync.Mutex
	var order []string
	qa := p.NewQueue("tenant-a", 3)
	qb := p.NewQueue("tenant-b", 1)
	defer qa.Close()
	defer qb.Close()

	drainOrder(t, p, func(wg *sync.WaitGroup) {
		for i := 0; i < 9; i++ {
			wg.Add(1)
			qa.Submit(func(shed bool) {
				defer wg.Done()
				mu.Lock()
				order = append(order, "a")
				mu.Unlock()
			})
		}
		for i := 0; i < 3; i++ {
			wg.Add(1)
			qb.Submit(func(shed bool) {
				defer wg.Done()
				mu.Lock()
				order = append(order, "b")
				mu.Unlock()
			})
		}
	})

	a := 0
	for _, l := range order[:8] {
		if l == "a" {
			a++
		}
	}
	if a < 5 || a > 7 {
		t.Fatalf("weight-3 queue got %d of the first 8 dispatches (%v), want ~6", a, order)
	}
}

// TestPoolTenantCap checks a tenant's concurrent runs never exceed its
// cap even with free workers available, and that other tenants use the
// spare capacity.
func TestPoolTenantCap(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	p.SetTenantCap("capped", 1)

	var cur, max, other atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	qa := p.NewQueue("capped", 1)
	qb := p.NewQueue("free", 1)
	defer qa.Close()
	defer qb.Close()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		qa.Submit(func(shed bool) {
			defer wg.Done()
			if shed {
				return
			}
			if c := cur.Add(1); c > max.Load() {
				max.Store(c)
			}
			<-release
			cur.Add(-1)
		})
	}
	wg.Add(1)
	qb.Submit(func(shed bool) {
		defer wg.Done()
		if !shed {
			other.Add(1)
		}
	})

	// The uncapped tenant's task must complete while the capped tenant
	// holds exactly one worker.
	deadline := time.After(5 * time.Second)
	for other.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("uncapped tenant starved behind a capped tenant")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	wg.Wait()
	if max.Load() != 1 {
		t.Fatalf("capped tenant reached %d concurrent runs, cap is 1", max.Load())
	}
}

// TestPoolDrain checks the drain contract: the in-flight task finishes,
// every queued task is shed exactly once with shed=true, Drain returns
// only after the pool is idle, and later Submits shed immediately.
func TestPoolDrain(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	q := p.NewQueue("t", 1)
	defer q.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	var inflightDone, shedCount atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	q.Submit(func(shed bool) {
		defer wg.Done()
		close(started)
		<-release
		inflightDone.Add(1)
	})
	<-started
	for i := 0; i < 3; i++ {
		wg.Add(1)
		q.Submit(func(shed bool) {
			defer wg.Done()
			if shed {
				shedCount.Add(1)
			}
		})
	}

	drained := make(chan error, 1)
	go func() { drained <- p.Drain(context.Background()) }()
	// Shedding is synchronous inside Drain, before the idle wait.
	deadline := time.After(5 * time.Second)
	for shedCount.Load() != 3 {
		select {
		case <-deadline:
			t.Fatalf("queued tasks shed %d times, want 3", shedCount.Load())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v while a task was still in flight", err)
	default:
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	if inflightDone.Load() != 1 {
		t.Fatal("in-flight task did not finish during drain")
	}

	shedNow := false
	q.Submit(func(shed bool) { shedNow = shed })
	if !shedNow {
		t.Fatal("Submit after Drain was not shed synchronously")
	}
}

// TestPoolDrainDeadline checks a Drain bounded by an expired context
// returns the context error instead of waiting for a wedged task.
func TestPoolDrainDeadline(t *testing.T) {
	p := NewPool(1)
	defer func() {
		go p.Close() // the wedged task never returns; don't block cleanup
	}()
	q := p.NewQueue("t", 1)
	started := make(chan struct{})
	q.Submit(func(shed bool) {
		close(started)
		select {} // wedged forever
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); err == nil {
		t.Fatal("Drain returned nil despite a wedged in-flight task")
	}
}

// TestPoolQueueCloseSheds checks closing a queue sheds its queued tasks.
func TestPoolQueueCloseSheds(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	gate := make(chan struct{})
	gq := p.NewQueue("gate", 1)
	var gw sync.WaitGroup
	gw.Add(1)
	gq.Submit(func(shed bool) { defer gw.Done(); <-gate })

	q := p.NewQueue("t", 1)
	var shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		q.Submit(func(s bool) {
			defer wg.Done()
			if s {
				shed.Add(1)
			}
		})
	}
	q.Close()
	wg.Wait()
	if shed.Load() != 2 {
		t.Fatalf("queue close shed %d tasks, want 2", shed.Load())
	}
	close(gate)
	gw.Wait()
	gq.Close()
}
