package runner

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Fan-out phase: before the per-run worker pool starts, the orchestrator
// groups pending configs that share a primary record stream
// (sim.FanGroupKey) and runs each group through sim.RunFanGroup — one
// trace decode feeding every point. Points that fail inside a group
// (chaos panic, stall, abort) fall back to the sequential pool, where
// the normal retry/backoff policy applies; the fan-out phase itself
// never consumes retry budget.
//
// Groups run one at a time: the fan barrier keeps a group's points
// within one decoded batch of each other, so a group's concurrency
// costs one simulator's private state per extra point rather than a
// full worker, and running groups serially keeps the campaign's peak
// footprint at one decode buffer regardless of Options.Workers.
//
// A group is only fanned when every member is actually pending. A
// resumed campaign whose journal already covers part of a group leaves
// a partial group whose remaining points run on the per-run path: the
// journal was written by per-run attempts, and a resume should finish
// the way it started rather than switch execution strategy mid-sweep.

// fanGroups partitions the pending indices into fan-out groups and the
// indices that stay on the sequential path. cfgs' indices are grouped
// by FanGroupKey over all keyed configs; a group is returned only when
// it has at least two members, all of them pending.
func fanGroups(cfgs []sim.Config, keys []string, pending []int, resumed func(int) bool) (groups [][]int, rest []int) {
	pend := make(map[int]bool, len(pending))
	for _, i := range pending {
		pend[i] = true
	}
	byKey := make(map[string][]int)
	var order []string
	for i, cfg := range cfgs {
		if keys[i] == "" {
			continue // unhashable: already failed up front
		}
		k, err := sim.FanGroupKey(cfg)
		if err != nil {
			continue // the sequential path will surface the same error
		}
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], i)
	}
	grouped := make(map[int]bool)
	for _, k := range order {
		g := byKey[k]
		if len(g) < 2 {
			continue
		}
		whole := true
		for _, i := range g {
			if !pend[i] || resumed(i) {
				whole = false
				break
			}
		}
		if !whole {
			continue
		}
		groups = append(groups, g)
		for _, i := range g {
			grouped[i] = true
		}
	}
	for _, i := range pending {
		if !grouped[i] {
			rest = append(rest, i)
		}
	}
	return groups, rest
}

// runFanPhase executes the fan-out groups and returns the indices still
// pending for the sequential pool (non-grouped points plus fallbacks).
func (o *Orchestrator) runFanPhase(ctx context.Context, cfgs []sim.Config, keys []string,
	pending []int, out *Outcome, prog *telemetry.Progress, journal *Journal) []int {

	groups, rest := fanGroups(cfgs, keys, pending, func(i int) bool {
		return out.Results[i] != nil
	})
	for gi, g := range groups {
		if ctx.Err() != nil {
			// Cancelled mid-phase: the remaining groups' points drain
			// through the sequential pool's cancellation accounting.
			rest = append(rest, g...)
			continue
		}
		gcfgs := make([]sim.Config, len(g))
		for j, i := range g {
			c := cfgs[i]
			if c.Streams == nil {
				c.Streams = o.opts.Streams
			}
			gcfgs[j] = c
		}
		gctx := ctx
		cancel := func() {}
		if o.opts.Timeout > 0 {
			// The group shares one budget: a point's deadline is not
			// meaningful in lockstep, so the group gets the sum.
			gctx, cancel = context.WithTimeout(ctx, o.opts.Timeout*time.Duration(len(g)))
		}
		telemetry.Fanout.GroupsFormed.Add(1)
		telemetry.Fanout.PointsFanned.Add(int64(len(g)))
		telemetry.Fanout.DecodePasses.Add(1)
		telemetry.Fanout.DecodePassesSaved.Add(int64(len(g) - 1))
		pts := sim.RunFanGroup(gctx, gcfgs, o.opts.StallGrace)
		cancel()

		failed := 0
		for j, pt := range pts {
			i := g[j]
			if pt.Err != nil {
				failed++
				telemetry.Fanout.FallbackPoints.Add(1)
				o.logf("fan-out group %d: point %d (%s %s p=%g) fell back to sequential: %v",
					gi, i, cfgs[i].Mode, cfgs[i].Workload, cfgs[i].PInduce, pt.Err)
				rest = append(rest, i)
				continue
			}
			out.Results[i] = pt.Res
			out.Ran++
			prog.RunCompleted()
			if journal != nil {
				if err := journal.Append(keys[i], pt.Res); err != nil {
					prog.JournalError()
					out.Failures = append(out.Failures, &RunError{
						Index: i, Config: cfgs[i], Key: keys[i],
						Attempts: 1, JournalOnly: true,
						Err: fmt.Errorf("journaling result: %w", err),
					})
				}
			}
		}
		if failed == len(g) {
			telemetry.Fanout.GroupAborts.Add(1)
		}
	}
	sort.Ints(rest)
	return rest
}
