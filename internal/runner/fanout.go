package runner

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Fan-out phase: before the per-run execution starts, the orchestrator
// groups pending configs that share a primary record stream
// (sim.FanGroupKey) and runs each group through sim.RunFanGroup — one
// trace decode feeding every point. Points that fail inside a group
// (chaos panic, stall, abort) fall back to the per-run path carrying
// one prior attempt, so they re-enter the normal retry/backoff ladder
// at the next rung instead of retrying immediately; the fan-out phase
// itself never consumes per-run retry budget.
//
// With no shared pool, groups run one at a time: the fan barrier keeps
// a group's points within one decoded batch of each other, so a group's
// concurrency costs one simulator's private state per extra point
// rather than a full worker, and running groups serially keeps the
// campaign's peak footprint at one decode buffer regardless of
// Options.Workers. On a shared pool (the campaign service), each group
// is one weighted-queue task — one worker slot per group — so
// concurrent campaigns' groups interleave under fair scheduling and a
// draining pool sheds not-yet-started groups back to the journal-pending
// state while in-flight groups finish and checkpoint.
//
// A group is only fanned when every member is actually pending. A
// resumed campaign whose journal already covers part of a group leaves
// a partial group whose remaining points run on the per-run path: the
// journal was written by per-run attempts, and a resume should finish
// the way it started rather than switch execution strategy mid-sweep.

// fanGroups partitions the pending indices into fan-out groups and the
// indices that stay on the sequential path. cfgs' indices are grouped
// by FanGroupKey over all keyed configs; a group is returned only when
// it has at least two members, all of them pending. maxGroup >= 2 caps
// group size (load shedding): oversized groups are split into chunks of
// at most maxGroup points, and a leftover singleton rides the per-run
// path.
func fanGroups(cfgs []sim.Config, keys []string, pending []int, maxGroup int, resumed func(int) bool) (groups [][]int, rest []int) {
	pend := make(map[int]bool, len(pending))
	for _, i := range pending {
		pend[i] = true
	}
	byKey := make(map[string][]int)
	var order []string
	for i, cfg := range cfgs {
		if keys[i] == "" {
			continue // unhashable: already failed up front
		}
		k, err := sim.FanGroupKey(cfg)
		if err != nil {
			continue // the sequential path will surface the same error
		}
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], i)
	}
	grouped := make(map[int]bool)
	for _, k := range order {
		g := byKey[k]
		if len(g) < 2 {
			continue
		}
		whole := true
		for _, i := range g {
			if !pend[i] || resumed(i) {
				whole = false
				break
			}
		}
		if !whole {
			continue
		}
		for len(g) >= 2 {
			n := len(g)
			if maxGroup >= 2 && n > maxGroup {
				n = maxGroup
			}
			if n < 2 {
				break
			}
			chunk := g[:n]
			g = g[n:]
			groups = append(groups, chunk)
			for _, i := range chunk {
				grouped[i] = true
			}
		}
	}
	for _, i := range pending {
		if !grouped[i] {
			rest = append(rest, i)
		}
	}
	return groups, rest
}

// runFanPhase executes the fan-out groups — serially when q is nil, as
// one shared-pool task per group otherwise — and returns the indices
// still pending for the per-run path (non-grouped points plus
// fallbacks, plus whole groups shed by a draining pool).
func (o *Orchestrator) runFanPhase(ctx context.Context, cfgs []sim.Config, keys []string,
	pending []int, prior []int, out *Outcome, mu *sync.Mutex,
	prog *telemetry.Progress, journal *Journal, q *Queue) []int {

	groups, rest := fanGroups(cfgs, keys, pending, o.opts.FanMaxGroup, func(i int) bool {
		return out.Results[i] != nil
	})
	if q == nil {
		for gi, g := range groups {
			if ctx.Err() != nil {
				// Cancelled mid-phase: the remaining groups' points drain
				// through the per-run path's cancellation accounting.
				rest = append(rest, g...)
				continue
			}
			rest = append(rest, o.runFanGroup(ctx, gi, g, cfgs, keys, prior, out, mu, prog, journal)...)
		}
	} else {
		var rmu sync.Mutex
		var wg sync.WaitGroup
		for gi, g := range groups {
			gi, g := gi, g
			wg.Add(1)
			q.Submit(func(shed bool) {
				defer wg.Done()
				if shed || ctx.Err() != nil {
					// A shed or cancelled group never attempted its
					// points: they re-enter the per-run path at rung 0,
					// where drain/cancel accounting applies.
					rmu.Lock()
					rest = append(rest, g...)
					rmu.Unlock()
					return
				}
				fb := o.runFanGroup(ctx, gi, g, cfgs, keys, prior, out, mu, prog, journal)
				if len(fb) > 0 {
					rmu.Lock()
					rest = append(rest, fb...)
					rmu.Unlock()
				}
			})
		}
		wg.Wait()
	}
	sort.Ints(rest)
	return rest
}

// runFanGroup executes one fan-out group and returns the indices that
// must drain through the per-run path: points that failed in-group
// (carrying one prior attempt so the per-run executor re-enters the
// backoff ladder instead of retrying immediately) plus points another
// campaign is computing right now (no prior attempt — the per-run path
// collapses them onto that computation via the store's single-flight).
func (o *Orchestrator) runFanGroup(ctx context.Context, gi int, g []int, cfgs []sim.Config, keys []string,
	prior []int, out *Outcome, mu *sync.Mutex, prog *telemetry.Progress, journal *Journal) (fallback []int) {

	run := g
	published := make(map[string]*sim.Result)
	if st := o.opts.Store; st != nil {
		// The admission-time store check may be stale by the time this
		// group is scheduled: re-check each point, then claim the rest in
		// one sweep so concurrent campaigns running the same configs wait
		// for this group instead of re-decoding and re-simulating it.
		run = nil
		var claimKeys []string
		for _, i := range g {
			if res, ok := st.Lookup(keys[i]); ok {
				mu.Lock()
				out.Results[i] = res
				out.FromStore++
				mu.Unlock()
				prog.RunCompleted()
				if o.opts.OnResult != nil {
					o.opts.OnResult(i, keys[i], res, false)
				}
				o.journalOne(journal, i, 0, cfgs, keys, res, out, mu, prog)
				continue
			}
			run = append(run, i)
			claimKeys = append(claimKeys, keys[i])
		}
		claimed, finish := st.BeginFlights(claimKeys)
		// The deferred finish releases waiters even when the group
		// panics; points the group never published wake into their own
		// attempts.
		defer func() { finish(published) }()
		kept := run[:0]
		for _, i := range run {
			if claimed[keys[i]] {
				kept = append(kept, i)
			} else {
				fallback = append(fallback, i)
			}
		}
		run = kept
		if len(run) == 0 {
			return fallback
		}
	}

	gcfgs := make([]sim.Config, len(run))
	for j, i := range run {
		c := cfgs[i]
		if c.Streams == nil {
			c.Streams = o.opts.Streams
		}
		gcfgs[j] = c
	}
	gctx := ctx
	cancel := func() {}
	if o.opts.Timeout > 0 {
		// The group shares one budget: a point's deadline is not
		// meaningful in lockstep, so the group gets the sum.
		gctx, cancel = context.WithTimeout(ctx, o.opts.Timeout*time.Duration(len(run)))
	}
	telemetry.Fanout.GroupsFormed.Add(1)
	telemetry.Fanout.PointsFanned.Add(int64(len(run)))
	telemetry.Fanout.DecodePasses.Add(1)
	telemetry.Fanout.DecodePassesSaved.Add(int64(len(run) - 1))
	pts := sim.RunFanGroup(gctx, gcfgs, o.opts.StallGrace)
	cancel()

	failed := 0
	for j, pt := range pts {
		i := run[j]
		if pt.Err != nil {
			failed++
			telemetry.Fanout.FallbackPoints.Add(1)
			o.logf("fan-out group %d: point %d (%s %s p=%g) fell back to sequential: %v",
				gi, i, cfgs[i].Mode, cfgs[i].Workload, cfgs[i].PInduce, pt.Err)
			// Each index belongs to exactly one group, so prior[i] is
			// written by exactly one goroutine.
			prior[i]++
			fallback = append(fallback, i)
			continue
		}
		mu.Lock()
		out.Results[i] = pt.Res
		out.Ran++
		mu.Unlock()
		prog.RunCompleted()
		if o.opts.OnResult != nil {
			o.opts.OnResult(i, keys[i], pt.Res, false)
		}
		if journal != nil {
			if err := journal.Append(keys[i], pt.Res); err != nil {
				prog.JournalError()
				mu.Lock()
				out.Failures = append(out.Failures, &RunError{
					Index: i, Config: cfgs[i], Key: keys[i],
					Attempts: 1, JournalOnly: true,
					Err: fmt.Errorf("journaling result: %w", err),
				})
				mu.Unlock()
			}
		}
		// Fan-group points are full-fidelity — persist them for every
		// future campaign, after the journal append, and publish them to
		// any concurrent campaigns waiting on this group's flights.
		if o.opts.Store != nil {
			published[keys[i]] = pt.Res
			if err := o.opts.Store.Put(keys[i], pt.Res); err != nil {
				o.logf("store: caching fan-out result of run %d failed (campaign unaffected): %v", i, err)
			}
		}
	}
	if failed == len(run) {
		telemetry.Fanout.GroupAborts.Add(1)
	}
	return fallback
}
