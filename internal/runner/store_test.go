package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func openStore(t *testing.T, dir, fp string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Fingerprint: fp})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func resultBytes(t *testing.T, res *sim.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestStoreWarmRestartByteIdentical is the tentpole property at the
// orchestrator level: a campaign rerun against the same store directory
// in a fresh "process" (new Store, new Orchestrator) executes nothing
// and returns byte-identical results.
func TestStoreWarmRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cfgs := []sim.Config{
		tinyCfg("433.milc", 0.1),
		tinyCfg("433.milc", 0.5),
		tinyCfg("470.lbm", 0.3),
	}

	st := openStore(t, dir, "sim-test")
	o := New(Options{Workers: 2, Store: st})
	cold, err := o.RunAll(context.Background(), cfgs)
	if err != nil || cold.Err() != nil {
		t.Fatalf("cold pass: %v / %v", err, cold.Err())
	}
	if cold.Ran != len(cfgs) || cold.FromStore != 0 {
		t.Fatalf("cold pass Ran=%d FromStore=%d, want %d/0", cold.Ran, cold.FromStore, len(cfgs))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, "sim-test")
	o2 := New(Options{Workers: 2, Store: st2})
	warm, err := o2.RunAll(context.Background(), cfgs)
	if err != nil || warm.Err() != nil {
		t.Fatalf("warm pass: %v / %v", err, warm.Err())
	}
	if warm.Ran != 0 || warm.FromStore != len(cfgs) {
		t.Fatalf("warm pass Ran=%d FromStore=%d, want 0/%d", warm.Ran, warm.FromStore, len(cfgs))
	}
	for i := range cfgs {
		if got, want := resultBytes(t, warm.Results[i]), resultBytes(t, cold.Results[i]); got != want {
			t.Fatalf("result %d not byte-identical across warm restart:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestStoreFingerprintBumpForcesRecompute simulates a simulator change:
// a store reopened under a new fingerprint serves zero stale hits and
// the campaign recomputes everything; reverting finds the old records.
func TestStoreFingerprintBumpForcesRecompute(t *testing.T) {
	dir := t.TempDir()
	cfgs := []sim.Config{tinyCfg("433.milc", 0.1), tinyCfg("470.lbm", 0.3)}

	st := openStore(t, dir, "sim-v1")
	o := New(Options{Workers: 2, Store: st})
	if out, err := o.RunAll(context.Background(), cfgs); err != nil || out.Err() != nil {
		t.Fatalf("v1 pass: %v / %v", err, out.Err())
	}
	st.Close()

	before := telemetry.StoreSnapshot()
	st2 := openStore(t, dir, "sim-v2")
	o2 := New(Options{Workers: 2, Store: st2})
	out, err := o2.RunAll(context.Background(), cfgs)
	if err != nil || out.Err() != nil {
		t.Fatalf("v2 pass: %v / %v", err, out.Err())
	}
	if out.Ran != len(cfgs) || out.FromStore != 0 {
		t.Fatalf("v2 pass Ran=%d FromStore=%d, want %d/0 (full recompute)", out.Ran, out.FromStore, len(cfgs))
	}
	after := telemetry.StoreSnapshot()
	if hits := after["hits"] - before["hits"]; hits != 0 {
		t.Fatalf("%d stale hits served across a fingerprint bump", hits)
	}
	if stale := after["stale_skipped"] - before["stale_skipped"]; stale != int64(len(cfgs)) {
		t.Fatalf("stale_skipped delta = %d, want %d", stale, len(cfgs))
	}
	st2.Close()

	st3 := openStore(t, dir, "sim-v1")
	o3 := New(Options{Workers: 2, Store: st3})
	out3, err := o3.RunAll(context.Background(), cfgs)
	if err != nil || out3.Err() != nil {
		t.Fatalf("revert pass: %v / %v", err, out3.Err())
	}
	if out3.FromStore != len(cfgs) {
		t.Fatalf("revert pass FromStore=%d, want %d (old records intact)", out3.FromStore, len(cfgs))
	}
}

// TestStoreFaultsDegradeToComputeWithoutCache arms every store fault
// site at once; the campaign must still fully succeed — the store
// degrades, the runs do not.
func TestStoreFaultsDegradeToComputeWithoutCache(t *testing.T) {
	fault.Enable(11)
	defer fault.Disable()
	fault.Set(fault.SiteStoreAppend, fault.Spec{Every: 1})
	fault.Set(fault.SiteStoreRead, fault.Spec{Every: 1})

	dir := t.TempDir()
	st := openStore(t, dir, "sim-test")
	var computes atomic.Int32
	o := New(Options{Workers: 2, Store: st})
	o.run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		computes.Add(1)
		return &sim.Result{Config: cfg, IPC: 1}, nil
	}
	cfgs := []sim.Config{tinyCfg("a", 0.1), tinyCfg("b", 0.2)}
	before := telemetry.StoreSnapshot()
	out, err := o.RunAll(context.Background(), cfgs)
	if err != nil || out.Err() != nil {
		t.Fatalf("store faults failed the campaign: %v / %v", err, out.Err())
	}
	if out.Ran != 2 || computes.Load() != 2 {
		t.Fatalf("Ran=%d computes=%d, want 2/2", out.Ran, computes.Load())
	}
	after := telemetry.StoreSnapshot()
	if d := after["put_errors"] - before["put_errors"]; d != 2 {
		t.Fatalf("put_errors delta = %d, want 2 (typed, counted, non-fatal)", d)
	}

	// Same campaign with reads faulted against a populated store: every
	// hit degrades to a counted miss and recomputes.
	fault.Disable()
	st2 := openStore(t, t.TempDir(), "sim-test")
	o2 := New(Options{Workers: 1, Store: st2})
	o2.run = o.run
	if out, err := o2.RunAll(context.Background(), cfgs); err != nil || out.Err() != nil {
		t.Fatalf("populate: %v / %v", err, out.Err())
	}
	fault.Enable(11)
	fault.Set(fault.SiteStoreRead, fault.Spec{Every: 1})
	computes.Store(0)
	before = telemetry.StoreSnapshot()
	out2, err := o2.RunAll(context.Background(), cfgs)
	if err != nil || out2.Err() != nil {
		t.Fatalf("read faults failed the campaign: %v / %v", err, out2.Err())
	}
	if computes.Load() != 2 || out2.Ran != 2 {
		t.Fatalf("faulted reads did not recompute: computes=%d Ran=%d", computes.Load(), out2.Ran)
	}
	after = telemetry.StoreSnapshot()
	if d := after["read_errors"] - before["read_errors"]; d < 2 {
		t.Fatalf("read_errors delta = %d, want >= 2", d)
	}
}

// waitParkedOnFlight polls the process's goroutine dump until some
// goroutine is select-blocked inside store.(*Store).Do — a single-flight
// waiter parked on another campaign's computation. (The computing
// leader sits in Do too, but chan-receive-blocked inside its compute
// closure, so requiring the select state isolates the waiter.)
func waitParkedOnFlight(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	buf := make([]byte, 1<<20)
	for time.Now().Before(deadline) {
		n := runtime.Stack(buf, true)
		for _, g := range bytes.Split(buf[:n], []byte("\n\n")) {
			if bytes.Contains(g, []byte("[select]")) && bytes.Contains(g, []byte("store.(*Store).Do")) {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no single-flight waiter parked within 10s")
}

// TestStoreSingleFlightCollapsesAcrossCampaigns runs two orchestrators
// (two campaigns, as two pinted tenants would be) against one store
// with identical configs: the second campaign's runs collapse onto the
// first's in-flight computations at admission — its own run function is
// never called — and both campaigns finish with the same results.
func TestStoreSingleFlightCollapsesAcrossCampaigns(t *testing.T) {
	st := openStore(t, t.TempDir(), "sim-test")
	cfgs := []sim.Config{tinyCfg("433.milc", 0.1)}

	var computes atomic.Int32
	block := make(chan struct{})
	oA := New(Options{Workers: 1, Store: st})
	oA.run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		computes.Add(1)
		<-block
		return &sim.Result{Config: cfg, IPC: 3}, nil
	}
	oB := New(Options{Workers: 1, Store: st})
	oB.run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		t.Error("duplicate campaign computed instead of collapsing")
		return &sim.Result{Config: cfg, IPC: 3}, nil
	}

	var wg sync.WaitGroup
	var outA, outB *Outcome
	wg.Add(1)
	go func() {
		defer wg.Done()
		outA, _ = oA.RunAll(context.Background(), cfgs)
	}()
	// A's leader is inside its compute before B is even started, so B's
	// admission-time InFlight check sees the flight.
	for computes.Load() == 0 {
		runtime.Gosched()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		outB, _ = oB.RunAll(context.Background(), cfgs)
	}()
	waitParkedOnFlight(t)
	close(block)
	wg.Wait()

	if computes.Load() != 1 {
		t.Fatalf("config computed %d times across two campaigns, want 1", computes.Load())
	}
	if outA.Err() != nil || outB.Err() != nil {
		t.Fatalf("outcomes: A=%v B=%v", outA.Err(), outB.Err())
	}
	if outA.Ran != 1 || outB.Ran != 0 || outB.FromStore != 1 {
		t.Fatalf("A Ran=%d, B Ran=%d FromStore=%d; want 1, 0/1", outA.Ran, outB.Ran, outB.FromStore)
	}
	if a, b := resultBytes(t, outA.Results[0]), resultBytes(t, outB.Results[0]); a != b {
		t.Fatalf("campaigns diverged:\nA %s\nB %s", a, b)
	}
}

// TestStoreSkipsSampledResults: a sampled (approximated) result must
// never be shared through the store — a second campaign with sampling
// off recomputes at full fidelity.
func TestStoreSkipsSampledResults(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, "sim-test")
	cfg := tinyCfg("433.milc", 0.1)
	cfg.ROIInstrs = 200_000 // enough windows for a plan to form

	o := New(Options{Workers: 1, Store: st, Sample: true})
	out, err := o.RunAll(context.Background(), []sim.Config{cfg})
	if err != nil || out.Err() != nil {
		t.Fatalf("sampled pass: %v / %v", err, out.Err())
	}
	st.Close()

	st2 := openStore(t, dir, "sim-test")
	o2 := New(Options{Workers: 1, Store: st2})
	out2, err := o2.RunAll(context.Background(), []sim.Config{cfg})
	if err != nil || out2.Err() != nil {
		t.Fatalf("full pass: %v / %v", err, out2.Err())
	}
	if out.Results[0].Sampled != nil && out2.FromStore != 0 {
		t.Fatalf("sampled result was served from the store (FromStore=%d)", out2.FromStore)
	}
	if out2.Results[0].Sampled != nil {
		t.Fatal("full-fidelity pass returned a sampled result")
	}
}
