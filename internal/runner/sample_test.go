package runner

import (
	"context"
	"testing"

	"repro/internal/fault"
	"repro/internal/phase"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// phaseDelta runs f and returns how much each phase-sampling counter
// moved.
func phaseDelta(f func()) map[string]int64 {
	before := telemetry.PhaseSnapshot()
	f()
	after := telemetry.PhaseSnapshot()
	d := make(map[string]int64, len(after))
	for k, v := range after {
		d[k] = v - before[k]
	}
	return d
}

// phasedSweep is the sample-check campaign: an isolation baseline plus a
// 12-point P_Induce sweep over 403.gcc, whose preset alternates two
// region-weight mixtures every 200k instructions — a genuinely phased
// workload the clusterer must find at least two phases in.
func phasedSweep() []sim.Config {
	points := []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	cfgs := []sim.Config{{
		Workload: "403.gcc", WarmupInstrs: 128_000, ROIInstrs: 1_024_000, Seed: 9,
	}}
	for _, p := range points {
		cfgs = append(cfgs, sim.Config{
			Mode: sim.PInTE, Workload: "403.gcc", PInduce: p,
			WarmupInstrs: 128_000, ROIInstrs: 1_024_000, Seed: 9,
		})
	}
	return cfgs
}

// TestSampleCampaignSavings is the campaign half of the make
// sample-check gate: a sampled 12-point sweep must pay one shared
// profile plus per-run window budgets that together come in at least 5x
// under the full-ROI instruction budget, while every run completes and
// carries its extrapolation error bounds.
func TestSampleCampaignSavings(t *testing.T) {
	cfgs := phasedSweep()
	var out *Outcome
	var err error
	d := phaseDelta(func() {
		out, err = New(Options{
			Workers: 4, Sample: true, Streams: replay.NewCache(0),
		}).RunAll(context.Background(), cfgs)
	})
	if err != nil || len(out.Failures) != 0 {
		t.Fatalf("sampled campaign: err=%v failures=%v", err, out.Failures)
	}
	if d["profile_runs"] != 1 || d["plans_built"] != 1 {
		t.Fatalf("profiles=%d plans=%d, want one shared profile and plan",
			d["profile_runs"], d["plans_built"])
	}
	if d["phases_found"] < 2 {
		t.Errorf("phased preset clustered into %d phase(s)", d["phases_found"])
	}
	if d["sampled_runs"] != int64(len(cfgs)) || d["sampled_fallbacks"] != 0 {
		t.Errorf("sampled_runs=%d fallbacks=%d, want %d and 0",
			d["sampled_runs"], d["sampled_fallbacks"], len(cfgs))
	}

	// Budget accounting: the sampled campaign pays the one full-detail
	// profile (warmup + ROI) plus each run's window budget; a full-ROI
	// campaign would pay warmup + ROI for every config.
	var fullBudget, sampledCost uint64
	sampledCost = cfgs[0].WarmupInstrs + cfgs[0].ROIInstrs // the shared profile
	for i, cfg := range cfgs {
		fullBudget += cfg.WarmupInstrs + cfg.ROIInstrs
		res := out.Results[i]
		if res == nil {
			t.Fatalf("config %d lost", i)
		}
		if res.Sampled == nil {
			t.Fatalf("config %d has no SampleStats", i)
		}
		if res.Sampled.Phases < 2 {
			t.Errorf("config %d sampled with %d phase(s)", i, res.Sampled.Phases)
		}
		sampledCost += res.Sampled.InstrsSimulated
	}
	if sampledCost*5 > fullBudget {
		t.Errorf("sampled campaign simulated %d of %d instrs — less than 5x savings",
			sampledCost, fullBudget)
	}
	t.Logf("sampled campaign: %d of %d instrs simulated (%.1fx savings)",
		sampledCost, fullBudget, float64(fullBudget)/float64(sampledCost))
}

// TestSampleIneligibleStaysFull checks configs the sampler cannot serve
// (here: one collecting telemetry) run the full-ROI path inside a
// sampled campaign, untouched and with their telemetry intact.
func TestSampleIneligibleStaysFull(t *testing.T) {
	full := tinyCfg("470.lbm", 0.3)
	full.TelemetryEvery = 10_000
	cfgs := []sim.Config{tinyCfg("470.lbm", 0.3), full}
	ref, err := sim.Run(full)
	if err != nil {
		t.Fatal(err)
	}
	out, err := New(Options{Workers: 2, Sample: true}).RunAll(context.Background(), cfgs)
	if err != nil || len(out.Failures) != 0 {
		t.Fatalf("campaign: err=%v failures=%v", err, out.Failures)
	}
	if out.Results[0].Sampled == nil {
		t.Error("eligible config was not sampled")
	}
	got := out.Results[1]
	if got.Sampled != nil {
		t.Error("telemetry-collecting config was sampled")
	}
	if got.Telemetry == nil || fingerprint(got) != fingerprint(ref) {
		t.Error("ineligible config's full-ROI result diverged from a plain run")
	}
}

// TestChaosSampledPlanFallsBackToFullRun hands the executor a poisoned
// plan (no usable windows): the sampled attempt must fail, strip the
// plan without consuming retry budget, and the same-seed full-ROI rerun
// must deliver the exact unsampled result.
func TestChaosSampledPlanFallsBackToFullRun(t *testing.T) {
	cfg := tinyCfg("433.milc", 0.2)
	ref, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := New(Options{Workers: 1}) // Retries: 0 — the fallback must be free
	o.plans = []*phase.Plan{{
		Phases: 1, Intervals: 1,
		Windows: []phase.Window{{Start: 0, End: 0, CoverInstrs: 0}},
	}}
	var out *Outcome
	d := phaseDelta(func() {
		out, err = o.RunAll(context.Background(), []sim.Config{cfg})
	})
	if err != nil || len(out.Failures) != 0 {
		t.Fatalf("campaign: err=%v failures=%v", err, out.Failures)
	}
	if d["sampled_fallbacks"] != 1 {
		t.Errorf("sampled_fallbacks moved by %d, want 1", d["sampled_fallbacks"])
	}
	if out.Results[0] == nil || out.Results[0].Sampled != nil {
		t.Fatal("fallback result missing or still sampled")
	}
	if fingerprint(out.Results[0]) != fingerprint(ref) {
		t.Error("fallback result diverged from a plain full-ROI run")
	}
}

// TestChaosSampledCorruptChunkFailover rots a sealed replay chunk under
// a sampled campaign: the replayer's generator failover is bit-identical,
// so every sampled result must match a fault-free sampled campaign —
// degraded and counted, never wrong.
func TestChaosSampledCorruptChunkFailover(t *testing.T) {
	cfgs := phasedSweep()[:4] // baseline + three points: enough to share one recorded stream
	clean, err := New(Options{
		Workers: 1, Sample: true, Streams: replay.NewCache(0),
	}).RunAll(context.Background(), cfgs)
	if err != nil || len(clean.Failures) != 0 {
		t.Fatalf("clean campaign: err=%v failures=%v", err, clean.Failures)
	}

	fault.Enable(1)
	fault.Set(fault.SiteReplayCorrupt, fault.Spec{Every: 1, After: 1, Limit: 1})
	defer fault.Disable()
	corruptBefore := telemetry.Degraded.ReplayCorruptChunks.Load()
	out, err := New(Options{
		Workers: 1, Sample: true, Streams: replay.NewCache(0),
	}).RunAll(context.Background(), cfgs)
	if err != nil || len(out.Failures) != 0 {
		t.Fatalf("chaos campaign: err=%v failures=%v", err, out.Failures)
	}
	if got := telemetry.Degraded.ReplayCorruptChunks.Load() - corruptBefore; got < 1 {
		t.Fatalf("corrupt-chunk counter moved by %d, want >= 1 (fault never fired)", got)
	}
	for i := range cfgs {
		if out.Results[i] == nil || fingerprint(out.Results[i]) != fingerprint(clean.Results[i]) {
			t.Errorf("config %d: sampled result diverged after corrupt-chunk failover", i)
		}
	}
}
