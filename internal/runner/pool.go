package runner

import (
	"context"
	"math"
	"runtime"
	"sync"

	"repro/internal/telemetry"
)

// Pool is the campaign service's shared bounded worker pool: one fixed
// set of workers executing runs from many concurrent campaigns. Each
// campaign owns a Queue; dispatch is stride scheduling over the queues —
// every dispatch charges the chosen queue 1/weight of virtual time and
// the queue with the least accumulated virtual time goes next — so a
// 500-run campaign and a 5-run campaign of equal weight alternate
// run-for-run instead of the big one starving the small one. Per-tenant
// concurrency caps bound how many workers any one tenant can hold at
// once regardless of how many campaigns it has queued.
//
// Draining a pool implements the service's graceful-shutdown contract:
// in-flight tasks finish (and get journaled by their campaigns), queued
// tasks are shed back to their campaigns synchronously (reported as
// canceled, so the campaign's journal keeps them pending for the next
// restart's resume), and no new task starts.
type Pool struct {
	mu   sync.Mutex
	cond *sync.Cond

	queues        []*Queue
	tenantCap     map[string]int
	tenantRunning map[string]int
	running       int
	vtime         float64
	seq           int

	draining bool
	closed   bool
	workers  int
	wg       sync.WaitGroup
}

// NewPool starts a pool with the given worker count (<= 0 means
// GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers:       workers,
		tenantCap:     make(map[string]int),
		tenantRunning: make(map[string]int),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Workers reports the pool's fixed worker count.
func (p *Pool) Workers() int { return p.workers }

// SetTenantCap bounds how many of the pool's workers tenant may occupy
// at once; 0 removes the cap. A tenant at its cap keeps its queues
// parked — other tenants' work proceeds — until one of its runs
// finishes.
func (p *Pool) SetTenantCap(tenant string, cap int) {
	p.mu.Lock()
	if cap > 0 {
		p.tenantCap[tenant] = cap
	} else {
		delete(p.tenantCap, tenant)
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Queue is one campaign's submission lane into the pool.
type Queue struct {
	pool   *Pool
	tenant string
	stride float64
	pass   float64
	seq    int
	tasks  []func(shed bool)
	closed bool
}

// strideScale keeps strides comfortably above float rounding for any
// sane weight.
const strideScale = 1 << 16

// NewQueue registers a campaign's queue under a tenant with a fair-share
// weight (minimum 1): a weight-2 queue receives twice the dispatch rate
// of a weight-1 queue under contention.
func (p *Pool) NewQueue(tenant string, weight int) *Queue {
	if weight < 1 {
		weight = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	q := &Queue{
		pool:   p,
		tenant: tenant,
		stride: strideScale / float64(weight),
		pass:   p.vtime,
		seq:    p.seq,
	}
	p.seq++
	p.queues = append(p.queues, q)
	return q
}

// Submit enqueues one task. The pool calls task(false) from a worker
// when dispatched; a task shed before dispatch — pool draining or
// closed, queue closed — is called synchronously as task(true) so the
// submitter's accounting always completes exactly once per task.
func (q *Queue) Submit(task func(shed bool)) {
	p := q.pool
	p.mu.Lock()
	if p.draining || p.closed || q.closed {
		p.mu.Unlock()
		telemetry.Server.PoolShedTasks.Add(1)
		task(true)
		return
	}
	if len(q.tasks) == 0 && q.pass < p.vtime {
		// An idle queue rejoins at the current virtual time: its stale
		// low pass must not let it monopolize the workers to "catch up"
		// on time it spent with nothing to run.
		q.pass = p.vtime
	}
	q.tasks = append(q.tasks, task)
	p.mu.Unlock()
	p.cond.Signal()
}

// Close deregisters the queue; tasks still queued are shed. Idempotent.
func (q *Queue) Close() {
	p := q.pool
	p.mu.Lock()
	if q.closed {
		p.mu.Unlock()
		return
	}
	q.closed = true
	shed := q.tasks
	q.tasks = nil
	for i, qq := range p.queues {
		if qq == q {
			p.queues = append(p.queues[:i], p.queues[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	for _, t := range shed {
		telemetry.Server.PoolShedTasks.Add(1)
		t(true)
	}
}

// pickLocked returns the dispatchable queue with the least virtual
// time, or nil when every queue is empty or capped. Ties break toward
// the oldest queue for determinism.
func (p *Pool) pickLocked() *Queue {
	var best *Queue
	for _, q := range p.queues {
		if len(q.tasks) == 0 {
			continue
		}
		if cap, ok := p.tenantCap[q.tenant]; ok && p.tenantRunning[q.tenant] >= cap {
			continue
		}
		if best == nil || q.pass < best.pass || (q.pass == best.pass && q.seq < best.seq) {
			best = q
		}
	}
	return best
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		var q *Queue
		for {
			if p.closed {
				p.mu.Unlock()
				return
			}
			if !p.draining {
				q = p.pickLocked()
			}
			if q != nil {
				break
			}
			p.cond.Wait()
		}
		task := q.tasks[0]
		q.tasks = q.tasks[1:]
		p.vtime = math.Max(p.vtime, q.pass)
		q.pass += q.stride
		p.tenantRunning[q.tenant]++
		p.running++
		p.mu.Unlock()

		task(false)

		p.mu.Lock()
		p.tenantRunning[q.tenant]--
		p.running--
		p.mu.Unlock()
		p.cond.Broadcast()
	}
}

// Running reports how many tasks are executing right now.
func (p *Pool) Running() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running
}

// Queued reports how many submitted tasks await dispatch across every
// queue.
func (p *Pool) Queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, q := range p.queues {
		n += len(q.tasks)
	}
	return n
}

// Drain stops dispatching, sheds every queued task back to its
// campaign, and waits for the in-flight tasks to finish — or for ctx to
// end, whichever is first. After Drain every Submit sheds immediately;
// the pool cannot be un-drained. Returns ctx's error when the wait was
// cut short.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
	}
	var shed []func(bool)
	for _, q := range p.queues {
		shed = append(shed, q.tasks...)
		q.tasks = nil
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	for _, t := range shed {
		telemetry.Server.PoolShedTasks.Add(1)
		t(true)
	}

	done := make(chan struct{})
	go func() {
		p.mu.Lock()
		for p.running > 0 && !p.closed {
			p.cond.Wait()
		}
		p.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains the queues (shedding anything still queued), stops every
// worker after its current task, and waits for them to exit.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	var shed []func(bool)
	for _, q := range p.queues {
		shed = append(shed, q.tasks...)
		q.tasks = nil
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	for _, t := range shed {
		telemetry.Server.PoolShedTasks.Add(1)
		t(true)
	}
	p.wg.Wait()
}
