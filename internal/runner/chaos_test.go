package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// fakeRun returns a deterministic run function whose result is a pure
// function of the config, counting invocations — the journal and resume
// machinery under test cannot tell it from a real simulation.
func fakeRun(calls *atomic.Int64) func(context.Context, sim.Config) (*sim.Result, error) {
	return func(_ context.Context, cfg sim.Config) (*sim.Result, error) {
		if calls != nil {
			calls.Add(1)
		}
		return &sim.Result{
			Config: cfg,
			IPC:    0.5 + cfg.PInduce,
			Instrs: cfg.ROIInstrs,
		}, nil
	}
}

// TestChaosCrashRecoveryProperty is the randomized crash-recovery
// property test: a campaign's journal is cut at fuzzed byte offsets —
// simulating a kill at any instant of an append — and every resume must
// (a) produce results identical to the uninterrupted campaign, (b)
// re-execute exactly the runs whose journal lines the cut destroyed, and
// (c) leave a journal that loads completely and cleanly.
func TestChaosCrashRecoveryProperty(t *testing.T) {
	cfgs := make([]sim.Config, 6)
	for i := range cfgs {
		cfgs[i] = tinyCfg("433.milc", 0.05*float64(i+1))
	}
	keys := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		k, err := ConfigKey(cfg)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}

	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.journal")
	o := New(Options{Workers: 2, Journal: golden})
	o.run = fakeRun(nil)
	out, err := o.RunAll(context.Background(), cfgs)
	if err != nil || len(out.Failures) != 0 {
		t.Fatalf("golden campaign: err=%v failures=%v", err, out.Failures)
	}
	ref := make([]string, len(cfgs))
	for i, r := range out.Results {
		ref[i] = fingerprint(r)
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 16; iter++ {
		cut := 1 + rng.Intn(len(data)-1)
		path := filepath.Join(dir, fmt.Sprintf("cut%d.journal", iter))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		intact := int64(bytes.Count(data[:cut], []byte{'\n'}))

		var calls atomic.Int64
		o := New(Options{Workers: 2, Journal: path})
		o.run = fakeRun(&calls)
		out, err := o.RunAll(context.Background(), cfgs)
		if err != nil {
			t.Fatalf("cut=%d: resume failed: %v", cut, err)
		}
		if len(out.Failures) != 0 {
			t.Fatalf("cut=%d: resume reported failures: %v", cut, out.Failures)
		}
		for i, r := range out.Results {
			if fingerprint(r) != ref[i] {
				t.Fatalf("cut=%d: result %d diverged after resume", cut, i)
			}
		}
		if want := int64(len(cfgs)) - intact; calls.Load() != want {
			t.Fatalf("cut=%d: resume re-ran %d runs, want %d (journal had %d intact lines)",
				cut, calls.Load(), want, intact)
		}
		// The resumed journal must be whole: every key present, correct,
		// and not one line skipped as corrupt.
		done, st, err := LoadJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Skipped != 0 || st.TruncatedTail {
			t.Fatalf("cut=%d: journal dirty after resume: %+v", cut, st)
		}
		for i, k := range keys {
			if done[k] == nil || fingerprint(done[k]) != ref[i] {
				t.Fatalf("cut=%d: journaled result %d missing or wrong after resume", cut, i)
			}
		}
	}
}

// TestChaosInjectionMatrix arms every injection site in turn against a
// real two-config campaign and asserts the blanket invariant: each
// config either produced a result identical to the fault-free reference
// or failed with a clean typed error — never a silently wrong result.
func TestChaosInjectionMatrix(t *testing.T) {
	cfgs := []sim.Config{tinyCfg("433.milc", 0.1), tinyCfg("450.soplex", 0.3)}
	refO := New(Options{Workers: 2})
	refOut, err := refO.RunAll(context.Background(), cfgs)
	if err != nil || len(refOut.Failures) != 0 {
		t.Fatalf("reference campaign: err=%v failures=%v", err, refOut.Failures)
	}
	ref := make([]string, len(cfgs))
	for i, r := range refOut.Results {
		ref[i] = fingerprint(r)
	}

	typed := func(err error) bool {
		return errors.Is(err, fault.ErrInjected) ||
			errors.Is(err, sim.ErrPanic) || errors.Is(err, sim.ErrTimeout) ||
			errors.Is(err, sim.ErrStalled) || errors.Is(err, sim.ErrBadConfig) ||
			errors.Is(err, sim.ErrCanceled)
	}

	cases := []struct {
		name            string
		spec            string
		journal, cache  bool
		timeout, grace  time.Duration
		wantCampaignErr bool
	}{
		{name: "journal-open", spec: "journal.open:every=1,limit=1", journal: true, wantCampaignErr: true},
		{name: "journal-append", spec: "journal.append:every=1,limit=1", journal: true},
		{name: "journal-append-partial", spec: "journal.append.partial:every=1,limit=1", journal: true},
		{name: "replay-source", spec: "replay.source:every=1,limit=1", cache: true},
		{name: "replay-corrupt", spec: "replay.corrupt:every=1,limit=1", cache: true},
		{name: "replay-evict", spec: "replay.evict:every=2", cache: true},
		{name: "sim-source", spec: "sim.source:every=1,limit=1"},
		{name: "trace-read", spec: "trace.read:every=3,limit=1"},
		{name: "worker-panic", spec: "worker.panic:every=1,limit=1"},
		{name: "worker-slow", spec: "worker.slow:p=1,delay=1s,limit=1", timeout: 250 * time.Millisecond},
		{name: "worker-hang", spec: "worker.hang:every=1,limit=1", timeout: 100 * time.Millisecond, grace: 100 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := fault.Apply("seed=1;" + tc.spec); err != nil {
				t.Fatal(err)
			}
			defer fault.Disable()
			opts := Options{Workers: 2, Timeout: tc.timeout, StallGrace: tc.grace}
			if tc.journal {
				opts.Journal = filepath.Join(t.TempDir(), "m.journal")
			}
			if tc.cache {
				opts.Streams = replay.NewCache(64 << 20)
			}
			out, err := New(opts).RunAll(context.Background(), cfgs)
			if tc.wantCampaignErr {
				if !errors.Is(err, fault.ErrInjected) {
					t.Fatalf("campaign error = %v, want fault.ErrInjected", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("campaign-level error: %v", err)
			}
			for i := range cfgs {
				if r := out.Results[i]; r != nil {
					if fingerprint(r) != ref[i] {
						t.Errorf("config %d produced a result that differs from the fault-free reference", i)
					}
					continue
				}
				found := false
				for _, f := range out.Failures {
					if f.Index == i && !f.JournalOnly {
						found = true
					}
				}
				if !found {
					t.Errorf("config %d has neither a result nor a failure", i)
				}
			}
			for _, f := range out.Failures {
				if !typed(f.Err) {
					t.Errorf("failure for config %d is untyped: %v", f.Index, f.Err)
				}
			}
		})
	}
}

// TestWatchdogConvertsHangToStalled checks the stuck-run watchdog
// abandons a worker that ignores its expired context, surfaces a
// retryable sim.ErrStalled, counts it, and lets a retry succeed.
func TestWatchdogConvertsHangToStalled(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var attempts atomic.Int64
	before := telemetry.Degraded.StalledRuns.Load()

	o := New(Options{
		Workers: 1, Timeout: 30 * time.Millisecond,
		StallGrace: 30 * time.Millisecond, Retries: 1,
	})
	o.run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		if attempts.Add(1) == 1 {
			<-release // wedged: ignores ctx entirely
		}
		return &sim.Result{Config: cfg, IPC: 1}, nil
	}
	out, err := o.RunAll(context.Background(), []sim.Config{tinyCfg("w", 0.1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Failures) != 0 || out.Results[0] == nil {
		t.Fatalf("retry after stall did not recover: failures=%v", out.Failures)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2 (stall, then retry)", got)
	}
	if d := telemetry.Degraded.StalledRuns.Load() - before; d != 1 {
		t.Fatalf("StalledRuns advanced by %d, want 1", d)
	}

	// Without retries the stall must surface as a typed failure.
	release2 := make(chan struct{})
	defer close(release2)
	o2 := New(Options{Workers: 1, Timeout: 20 * time.Millisecond, StallGrace: 20 * time.Millisecond})
	o2.run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		<-release2
		return nil, nil
	}
	out2, err := o2.RunAll(context.Background(), []sim.Config{tinyCfg("w", 0.1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out2.Failures) != 1 || !errors.Is(out2.Failures[0].Err, sim.ErrStalled) {
		t.Fatalf("failures = %v, want one sim.ErrStalled", out2.Failures)
	}
}

// TestBackoffDelayShape pins the backoff curve: exponential doubling
// from the base, capped, with jitter inside ±25% and deterministic for a
// given (seed, attempt).
func TestBackoffDelayShape(t *testing.T) {
	const base, max = 100 * time.Millisecond, 400 * time.Millisecond
	for attempt := 1; attempt <= 6; attempt++ {
		ideal := base << (attempt - 1)
		if ideal > max {
			ideal = max
		}
		d := backoffDelay(base, max, attempt, 42)
		lo := time.Duration(float64(ideal) * 0.75)
		hi := time.Duration(float64(ideal) * 1.25)
		if d < lo || d > hi {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo, hi)
		}
		if d2 := backoffDelay(base, max, attempt, 42); d2 != d {
			t.Errorf("attempt %d: backoff not deterministic: %v != %v", attempt, d, d2)
		}
	}
	if backoffDelay(0, 0, 3, 1) != 0 {
		t.Error("zero base must disable backoff")
	}
	if backoffDelay(base, max, 0, 1) != 0 {
		t.Error("attempt 0 must not back off")
	}
	// Overflow guard: an absurd attempt count stays at the cap.
	if d := backoffDelay(base, max, 500, 9); d <= 0 || d > time.Duration(float64(max)*1.25) {
		t.Errorf("attempt 500: delay %v escaped the cap", d)
	}
}

// TestBackoffUsesFakeClock drives the retry loop against a recording
// sleep hook: the orchestrator must pause before every retry, with the
// exact deterministic delays backoffDelay prescribes, and never sleep
// before the first attempt.
func TestBackoffUsesFakeClock(t *testing.T) {
	cfg := tinyCfg("w", 0.1)
	run := 0
	var slept []time.Duration
	o := New(Options{Workers: 1, Retries: 3, Backoff: 50 * time.Millisecond})
	o.sleep = func(ctx context.Context, d time.Duration) { slept = append(slept, d) }
	o.run = func(ctx context.Context, c sim.Config) (*sim.Result, error) {
		run++
		if run <= 3 {
			return nil, fmt.Errorf("flaky: %w", sim.ErrTimeout)
		}
		return &sim.Result{Config: c, IPC: 1}, nil
	}
	out, err := o.RunAll(context.Background(), []sim.Config{cfg})
	if err != nil || len(out.Failures) != 0 {
		t.Fatalf("campaign: err=%v failures=%v", err, out.Failures)
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3 (one per retry)", len(slept))
	}
	for i, d := range slept {
		want := backoffDelay(50*time.Millisecond, 0, i+1, cfg.Seed)
		if d != want {
			t.Errorf("retry %d slept %v, want %v", i+1, d, want)
		}
	}
}

// TestResumeAfterCompactEquality checks compaction preserves resume
// semantics exactly: after compacting, a re-run recalls every result
// from the journal without executing anything, and the results match.
func TestResumeAfterCompactEquality(t *testing.T) {
	cfgs := []sim.Config{tinyCfg("w", 0.1), tinyCfg("w", 0.2), tinyCfg("w", 0.3)}
	path := filepath.Join(t.TempDir(), "c.journal")
	o := New(Options{Workers: 2, Journal: path})
	o.run = fakeRun(nil)
	out, err := o.RunAll(context.Background(), cfgs)
	if err != nil || len(out.Failures) != 0 {
		t.Fatalf("campaign: err=%v failures=%v", err, out.Failures)
	}
	ref := make([]string, len(cfgs))
	for i, r := range out.Results {
		ref[i] = fingerprint(r)
	}

	st, err := CompactJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != len(cfgs) {
		t.Fatalf("compacted %d entries, want %d", st.Entries, len(cfgs))
	}
	// Compaction is deterministic: compacting a compact file is a no-op
	// byte for byte.
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompactJournal(path); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("compacting an already-compact journal changed its bytes")
	}

	var calls atomic.Int64
	o2 := New(Options{Workers: 2, Journal: path})
	o2.run = fakeRun(&calls)
	out2, err := o2.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatalf("resume after compact re-ran %d runs, want 0", calls.Load())
	}
	if out2.FromJournal != len(cfgs) {
		t.Fatalf("FromJournal = %d, want %d", out2.FromJournal, len(cfgs))
	}
	for i, r := range out2.Results {
		if fingerprint(r) != ref[i] {
			t.Fatalf("result %d diverged across compaction", i)
		}
	}
}

// TestCompactUnderCorruption checks compaction drops damaged lines with
// honest accounting and the rewritten journal is fully clean.
func TestCompactUnderCorruption(t *testing.T) {
	cfgs := []sim.Config{tinyCfg("w", 0.1), tinyCfg("w", 0.2), tinyCfg("w", 0.3)}
	path := filepath.Join(t.TempDir(), "c.journal")
	o := New(Options{Workers: 1, Journal: path})
	o.run = fakeRun(nil)
	if _, err := o.RunAll(context.Background(), cfgs); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte in the middle line: its CRC must catch it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte{'\n'})
	mid := lines[1]
	mid[len(mid)/2] ^= 0x40
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := CompactJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Load.Skipped != 1 || st.Load.CRCFailed != 1 {
		t.Fatalf("compact load stats = %+v, want 1 skipped / 1 CRC-failed", st.Load)
	}
	if st.Entries != len(cfgs)-1 {
		t.Fatalf("compacted %d entries, want %d", st.Entries, len(cfgs)-1)
	}
	done, lst, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if lst.Skipped != 0 || len(done) != len(cfgs)-1 {
		t.Fatalf("compacted journal reloads dirty: %+v, %d entries", lst, len(done))
	}
}

// TestCompactInjectedFailureIsAtomic checks an injected failure at
// either compaction site leaves the original journal byte-identical and
// no temp debris on disk.
func TestCompactInjectedFailureIsAtomic(t *testing.T) {
	for _, site := range []string{fault.SiteJournalCompactWrite, fault.SiteJournalCompactRename} {
		t.Run(site, func(t *testing.T) {
			cfgs := []sim.Config{tinyCfg("w", 0.1), tinyCfg("w", 0.2)}
			dir := t.TempDir()
			path := filepath.Join(dir, "c.journal")
			o := New(Options{Workers: 1, Journal: path})
			o.run = fakeRun(nil)
			if _, err := o.RunAll(context.Background(), cfgs); err != nil {
				t.Fatal(err)
			}
			before, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			fault.Enable(1)
			fault.Set(site, fault.Spec{Every: 1, Limit: 1})
			defer fault.Disable()
			if _, err := CompactJournal(path); !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("compact error = %v, want fault.ErrInjected", err)
			}
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(before, after) {
				t.Fatal("failed compaction modified the journal")
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(ents) != 1 {
				t.Fatalf("temp debris left behind: %v", ents)
			}

			// The budget fired; the retried compaction must succeed.
			if _, err := CompactJournal(path); err != nil {
				t.Fatalf("compaction after injected failure: %v", err)
			}
		})
	}
}
