package runner

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

// FuzzLoadJournal throws arbitrary bytes at the journal loader. The
// invariants are blanket: LoadJournal never panics, never errors on
// plain (non-IO-failing) input, and its accounting never goes negative —
// whatever garbage a damaged disk serves, resume degrades to re-running
// work, not to crashing or miscounting.
func FuzzLoadJournal(f *testing.F) {
	// Seed corpus: a real journal line, legacy bare JSON, classic
	// corruption shapes, and framing edge cases.
	o := New(Options{Workers: 1, Journal: filepath.Join(f.TempDir(), "seed.journal")})
	o.run = fakeRun(nil)
	if _, err := o.RunAll(context.Background(), []sim.Config{tinyCfg("w", 0.25)}); err != nil {
		f.Fatal(err)
	}
	real, err := os.ReadFile(o.opts.Journal)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(real)                                // intact checksummed entry
	f.Add(real[:len(real)/2])                  // torn mid-append
	f.Add([]byte(`{"key":"k","result":null}`)) // legacy line, nil result
	f.Add([]byte(`{"key":"k","result":{"Config":{},"IPC":1}}`))
	f.Add([]byte("!deadbeef {\"key\":\"k\"}\n")) // CRC mismatch
	f.Add([]byte("!zzzzzzzz {}\n"))              // malformed hex
	f.Add([]byte("!00"))                         // frame shorter than prefix
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0x00, '\n', '{'})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		done, st, err := LoadJournal(path)
		if err != nil {
			t.Fatalf("LoadJournal errored on plain input: %v", err)
		}
		if st.Entries != len(done) {
			t.Fatalf("Entries=%d but %d results loaded", st.Entries, len(done))
		}
		if st.Skipped < 0 || st.CRCFailed < 0 || st.CRCFailed > st.Skipped {
			t.Fatalf("impossible accounting: %+v", st)
		}
		// Whatever loaded must survive a compact → reload round trip with
		// nothing further dropped.
		if _, err := CompactJournal(path); err != nil {
			t.Fatalf("CompactJournal: %v", err)
		}
		again, st2, err := LoadJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if st2.Skipped != 0 || len(again) != len(done) {
			t.Fatalf("compact lost entries: before %d, after %d (%+v)", len(done), len(again), st2)
		}
	})
}
