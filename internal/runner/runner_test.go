package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/replay"
	"repro/internal/sim"
)

// tinyCfg returns a fast PInTE config for integration tests.
func tinyCfg(workload string, p float64) sim.Config {
	return sim.Config{
		Mode: sim.PInTE, Workload: workload, PInduce: p,
		WarmupInstrs: 20_000, ROIInstrs: 50_000, SampleEvery: 10_000, Seed: 1,
	}
}

// fingerprint reduces a result to its deterministic observable fields —
// exactly what the CSV emitters format — so equal fingerprints imply
// byte-identical CSV output.
func fingerprint(r *sim.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v|%v|%v|%v|%v|%v|%d",
		r.IPC, r.MissRate, r.AMAT, r.ContentionRate, r.OccupancyFrac,
		r.LLCMPKI, r.Instrs)
	for _, s := range r.Samples {
		fmt.Fprintf(&b, ";%v,%v,%v", s.IPC, s.MissRate, s.OccupancyFrac)
	}
	return b.String()
}

func TestPanicBecomesRunError(t *testing.T) {
	o := New(Options{Workers: 2})
	o.run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		if cfg.Workload == "boom" {
			panic("simulated crash")
		}
		return &sim.Result{Config: cfg, IPC: 1}, nil
	}
	cfgs := []sim.Config{
		tinyCfg("fine-a", 0.1),
		{Mode: sim.PInTE, Workload: "boom", PInduce: 0.5, Seed: 9},
		tinyCfg("fine-b", 0.2),
	}
	out, err := o.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Results[0] == nil || out.Results[2] == nil {
		t.Fatal("healthy runs lost alongside the crashing one")
	}
	if out.Results[1] != nil {
		t.Fatal("crashed run produced a result")
	}
	if len(out.Failures) != 1 {
		t.Fatalf("got %d failures, want 1: %v", len(out.Failures), out.Failures)
	}
	f := out.Failures[0]
	if f.Index != 1 || !errors.Is(f.Err, sim.ErrPanic) {
		t.Fatalf("failure misclassified: %+v", f)
	}
	if !strings.Contains(f.Stack, "runner") || f.Stack == "" {
		t.Fatalf("panic stack not captured: %q", f.Stack)
	}
	if f.Config.Seed != 9 {
		t.Fatalf("failure reports perturbed config, want original: %+v", f.Config)
	}
	if out.Err() == nil || !errors.Is(out.Err(), sim.ErrPanic) {
		t.Fatalf("Outcome.Err does not surface the panic: %v", out.Err())
	}
}

func TestRetryPerturbsSeed(t *testing.T) {
	var calls atomic.Int32
	o := New(Options{Workers: 1, Retries: 2})
	o.run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		calls.Add(1)
		if cfg.Seed == 7 { // original seed deterministically crashes
			panic("bad seed")
		}
		return &sim.Result{Config: cfg, IPC: 2}, nil
	}
	cfg := tinyCfg("w", 0.1)
	cfg.Seed = 7
	out, err := o.RunAll(context.Background(), []sim.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Failures) != 0 {
		t.Fatalf("retry did not rescue the run: %v", out.Failures)
	}
	if calls.Load() != 2 {
		t.Fatalf("got %d attempts, want 2 (crash, then perturbed success)", calls.Load())
	}
	got := out.Results[0].Config.Seed
	if got == 7 || got != PerturbSeed(7, 1) {
		t.Fatalf("retry seed = %d, want PerturbSeed(7,1) = %d", got, PerturbSeed(7, 1))
	}
}

func TestRetryBoundedAndNonRetryableSkipsRetry(t *testing.T) {
	var calls atomic.Int32
	o := New(Options{Workers: 1, Retries: 2})
	o.run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		calls.Add(1)
		panic("always crashes")
	}
	out, _ := o.RunAll(context.Background(), []sim.Config{tinyCfg("w", 0.1)})
	if len(out.Failures) != 1 || out.Failures[0].Attempts != 3 {
		t.Fatalf("want 3 bounded attempts, got %+v", out.Failures)
	}
	if calls.Load() != 3 {
		t.Fatalf("run called %d times, want 3", calls.Load())
	}

	calls.Store(0)
	o.run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		calls.Add(1)
		return nil, fmt.Errorf("%w: broken", sim.ErrBadConfig)
	}
	out, _ = o.RunAll(context.Background(), []sim.Config{tinyCfg("w", 0.1)})
	if calls.Load() != 1 {
		t.Fatalf("non-retryable error retried %d times", calls.Load())
	}
	if !errors.Is(out.Failures[0].Err, sim.ErrBadConfig) {
		t.Fatalf("taxonomy lost: %v", out.Failures[0].Err)
	}
}

func TestCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := New(Options{Workers: 2})
	cfgs := []sim.Config{tinyCfg("433.milc", 0.1), tinyCfg("470.lbm", 0.2)}
	out, err := o.RunAll(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ran != 0 {
		t.Fatalf("canceled campaign still ran %d configs", out.Ran)
	}
	if len(out.Failures) != len(cfgs) {
		t.Fatalf("got %d failures, want %d", len(out.Failures), len(cfgs))
	}
	for _, f := range out.Failures {
		if !errors.Is(f.Err, sim.ErrCanceled) {
			t.Fatalf("failure not classified as canceled: %v", f.Err)
		}
	}
}

func TestCancelMidCampaignStopsScheduling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	o := New(Options{Workers: 1})
	o.run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		if started.Add(1) == 2 {
			cancel() // campaign is killed while run 2 is in flight
			<-ctx.Done()
			return nil, sim.ErrCanceled
		}
		return &sim.Result{Config: cfg, IPC: 1}, nil
	}
	cfgs := make([]sim.Config, 6)
	for i := range cfgs {
		cfgs[i] = tinyCfg(fmt.Sprintf("w%d", i), 0.1)
	}
	out, err := o.RunAll(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if started.Load() > 3 {
		t.Fatalf("scheduling continued after cancel: %d runs started", started.Load())
	}
	if out.Results[0] == nil {
		t.Fatal("completed result dropped on cancellation")
	}
	canceled := 0
	for _, f := range out.Failures {
		if errors.Is(f.Err, sim.ErrCanceled) {
			canceled++
		}
	}
	if canceled < 4 {
		t.Fatalf("unstarted runs not reported as canceled: %v", out.Failures)
	}
}

func TestRealRunTimeout(t *testing.T) {
	cfg := tinyCfg("433.milc", 0.3)
	cfg.ROIInstrs = 500_000_000 // far beyond the deadline
	o := New(Options{Workers: 1, Timeout: 15 * time.Millisecond})
	out, err := o.RunAll(context.Background(), []sim.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Failures) != 1 || !errors.Is(out.Failures[0].Err, sim.ErrTimeout) {
		t.Fatalf("deadline overrun not classified as timeout: %+v", out.Failures)
	}
}

func TestConfigKeyNormalizationAndSensitivity(t *testing.T) {
	implicit := sim.Config{Workload: "433.milc"}
	explicit := sim.Config{
		Workload: "433.milc", WarmupInstrs: 200_000, ROIInstrs: 1_000_000,
		SampleEvery: 50_000, Branch: "hashed-perceptron",
	}
	a, err := ConfigKey(implicit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConfigKey(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("defaulted and explicit configs hash differently")
	}
	changed := implicit
	changed.PInduce = 0.25
	changed.Mode = sim.PInTE
	c, err := ConfigKey(changed)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct configs collide")
	}
}

// TestConfigKeyIgnoresStreams pins the replay cache's journal contract:
// attaching a stream source changes how records are produced, never
// what they are, so it must not change the resume key — a sweep
// journaled without the cache resumes cleanly with it, and vice versa.
func TestConfigKeyIgnoresStreams(t *testing.T) {
	plain := sim.Config{Workload: "433.milc", Mode: sim.PInTE, PInduce: 0.25}
	a, err := ConfigKey(plain)
	if err != nil {
		t.Fatal(err)
	}
	cached := plain
	cached.Streams = replay.NewCache(64 << 20)
	b, err := ConfigKey(cached)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("attaching a replay cache changed the journal config key")
	}
}

func TestLoadJournalToleratesTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.journal")
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		cfg := tinyCfg(fmt.Sprintf("w%d", i), 0.1)
		key, err := ConfigKey(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(key, &sim.Result{Config: cfg, IPC: float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a half-written final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"abc","result":{"IPC":3.`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	done, st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("got %d intact entries, want 2", len(done))
	}
	if !st.TruncatedTail || st.Skipped != 0 || st.Entries != 2 {
		t.Fatalf("truncated tail misclassified: %+v", st)
	}
}

// TestLoadJournalSkipsMidFileCorruption is the counterpart regression:
// a corrupt line in the MIDDLE of the journal (bit rot, a concurrent
// writer, hand editing) previously ended the scan and silently
// discarded every intact entry after it, forcing a resume to redo —
// and double-append — completed work. The scan must instead skip the
// damaged line, count it, and keep every later entry.
func TestLoadJournalSkipsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.journal")
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 3)
	for i := 0; i < 3; i++ {
		cfg := tinyCfg(fmt.Sprintf("w%d", i), 0.1)
		keys[i], err = ConfigKey(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(keys[i], &sim.Result{Config: cfg, IPC: float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the middle line in place.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(raw, []byte("\n"))
	lines[1] = []byte(`{"key":"mid","result":{"IPC":2.#corrupt#`)
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	done, st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("got %d intact entries, want 2 (corruption must not end the scan)", len(done))
	}
	for _, k := range []string{keys[0], keys[2]} {
		if done[k] == nil {
			t.Fatalf("intact entry %s lost", k)
		}
	}
	if st.Skipped != 1 || st.TruncatedTail {
		t.Fatalf("mid-file corruption misclassified: %+v", st)
	}
}

// TestJournalOnlyFailure pins the journal-append failure semantics: the
// simulation succeeded, so its result must stay in Results, the failure
// must carry the REAL attempt count (not a hardcoded 1) and be marked
// journal-only, and HardFailures must stay empty so exit-code logic
// doesn't report a completed campaign as failed.
func TestJournalOnlyFailure(t *testing.T) {
	dir := t.TempDir()
	o := New(Options{Journal: filepath.Join(dir, "j.journal"), Retries: 2})
	calls := 0
	o.run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		calls++
		if calls == 1 {
			panic("transient") // consume one retry so Attempts ends at 2
		}
		// NaN is not JSON-marshalable, so the journal append of this
		// otherwise-successful result is guaranteed to fail.
		return &sim.Result{Config: cfg, IPC: math.NaN()}, nil
	}
	out, err := o.RunAll(context.Background(), []sim.Config{tinyCfg("433.milc", 0.1)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Results[0] == nil {
		t.Fatal("successful run's result was dropped on journal failure")
	}
	if len(out.Failures) != 1 {
		t.Fatalf("got %d failures, want 1", len(out.Failures))
	}
	f := out.Failures[0]
	if !f.JournalOnly {
		t.Fatalf("journal failure not marked JournalOnly: %v", f)
	}
	if f.Attempts != 2 {
		t.Fatalf("Attempts = %d, want the real count 2", f.Attempts)
	}
	if !strings.Contains(f.Error(), "journal-only") {
		t.Fatalf("failure message hides journal-only nature: %v", f)
	}
	if hard := out.HardFailures(); len(hard) != 0 {
		t.Fatalf("journal-only failure leaked into HardFailures: %v", hard)
	}
	if jf := out.JournalFailures(); len(jf) != 1 {
		t.Fatalf("JournalFailures = %d, want 1", len(jf))
	}
}

// TestProgressHeartbeat checks the live campaign telemetry: with a
// heartbeat period set, RunAll emits progress lines through Logf and
// always closes with a final complete snapshot.
func TestProgressHeartbeat(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	o := New(Options{
		Workers:  2,
		Progress: 5 * time.Millisecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	o.run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		time.Sleep(10 * time.Millisecond)
		return &sim.Result{Config: cfg}, nil
	}
	cfgs := []sim.Config{
		tinyCfg("433.milc", 0.1), tinyCfg("433.milc", 0.2),
		tinyCfg("433.milc", 0.3), tinyCfg("433.milc", 0.4),
	}
	out, err := o.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Err() != nil {
		t.Fatal(out.Err())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) == 0 {
		t.Fatal("no heartbeat lines emitted")
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, "progress: 4/4 done, 0 failed") {
		t.Fatalf("final heartbeat %q does not report the drained campaign", last)
	}
}

// TestResumeProducesIdenticalResults is the acceptance scenario: a
// campaign that dies mid-flight (here: half the runs panic) is resumed
// from its journal, re-runs only the missing configs, and the merged
// results match an uninterrupted campaign exactly.
func TestResumeProducesIdenticalResults(t *testing.T) {
	cfgs := []sim.Config{
		tinyCfg("433.milc", 0),
		tinyCfg("433.milc", 0.2),
		tinyCfg("470.lbm", 0.2),
		tinyCfg("450.soplex", 0.4),
	}

	// Uninterrupted reference campaign.
	ref, err := New(Options{Workers: 2}).RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Err() != nil {
		t.Fatal(ref.Err())
	}

	// First attempt: runs 2 and 3 crash, 0 and 1 complete and journal.
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.journal")
	crashy := New(Options{Workers: 1, Journal: journal})
	crashy.run = func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		if cfg.Workload != "433.milc" {
			panic("mid-campaign failure")
		}
		return sim.RunContext(ctx, cfg)
	}
	first, err := crashy.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Failures) != 2 || first.Ran != 4 {
		t.Fatalf("injected failures misbehaved: ran=%d failures=%v", first.Ran, first.Failures)
	}

	// Resume: only the two missing configs run; the journaled pair is
	// reused verbatim.
	resumed, err := New(Options{Workers: 2, Journal: journal}).RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Err() != nil {
		t.Fatal(resumed.Err())
	}
	if resumed.FromJournal != 2 || resumed.Ran != 2 {
		t.Fatalf("resume re-ran journaled work: fromJournal=%d ran=%d",
			resumed.FromJournal, resumed.Ran)
	}
	for i := range cfgs {
		if fingerprint(resumed.Results[i]) != fingerprint(ref.Results[i]) {
			t.Fatalf("config %d: resumed result diverges from uninterrupted run\nresumed: %s\nref:     %s",
				i, fingerprint(resumed.Results[i]), fingerprint(ref.Results[i]))
		}
	}

	// A second resume finds everything journaled and runs nothing.
	third, err := New(Options{Workers: 2, Journal: journal}).RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if third.Ran != 0 || third.FromJournal != 4 {
		t.Fatalf("fully journaled campaign still ran %d configs", third.Ran)
	}
}
