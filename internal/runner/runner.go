// Package runner is the fault-tolerant campaign orchestrator for large
// simulation batches (the paper's 49 workloads × 12 P_Induce points plus
// baselines). It layers four guarantees over internal/sim:
//
//   - cancellation: one context covers the whole campaign; SIGINT or an
//     explicit cancel stops scheduling, interrupts in-flight runs, and
//     surfaces every unfinished config as an ErrCanceled failure.
//   - isolation: a run that panics or fails is captured as a typed
//     *RunError (config, cause, stack, wall time, attempt count) and the
//     rest of the campaign keeps going.
//   - retry: runs that die for seed-dependent reasons (panic, timeout)
//     are retried up to Options.Retries times with a deterministically
//     perturbed seed.
//   - resume: each completed result is appended to a JSONL journal keyed
//     by a deterministic config hash; rerunning the same campaign with
//     the same journal skips everything already completed, so a crashed
//     or interrupted sweep loses no finished work.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/phase"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Options tunes an Orchestrator. The zero value runs with GOMAXPROCS
// workers, no per-run deadline, no retries and no journal — equivalent
// to sim.RunManyContext plus structured failures.
type Options struct {
	// Workers caps concurrent simulations; <= 0 means GOMAXPROCS.
	Workers int
	// Timeout bounds each run's wall-clock time; 0 disables it. A run
	// over budget fails with ErrTimeout (and may be retried).
	Timeout time.Duration
	// Retries is how many additional attempts a retryable failure
	// (panic, timeout, stall) gets. Each retry perturbs the config seed
	// with PerturbSeed so a deterministically crashing run can escape.
	Retries int
	// Backoff, when positive, is the base delay inserted before retry
	// attempt n: Backoff << (n-1), capped at BackoffMax, with a
	// deterministic ±25% jitter derived from the config seed and attempt
	// number so resumed campaigns pause identically while concurrent
	// retries still decorrelate. 0 retries immediately (the previous
	// behaviour).
	Backoff time.Duration
	// BackoffMax caps the exponential backoff; 0 means 16×Backoff.
	BackoffMax time.Duration
	// StallGrace arms the stuck-run watchdog: a run whose context has
	// expired gets this much longer to return on its own before the
	// orchestrator abandons the wedged goroutine and fails the attempt
	// with sim.ErrStalled (retryable, counted in expvar). 0 disables the
	// watchdog — a run that ignores its context then blocks its worker
	// forever. The watchdog only triggers on an expired context, so a
	// hang under neither Timeout nor cancellation is undetectable.
	StallGrace time.Duration
	// Journal, when non-empty, is the path of the JSONL checkpoint
	// file. Existing entries are loaded first and their configs are
	// skipped; every newly completed result is appended and flushed.
	Journal string
	// Logf receives progress and failure lines (log.Printf-shaped);
	// nil means silent.
	Logf func(format string, args ...any)
	// Progress, when positive, emits a live heartbeat snapshot
	// (completed/failed/retried runs, runs/sec, ETA, journal state)
	// through Logf on this period. Independent of the period, every
	// campaign publishes its progress on expvar ("pinte.campaign",
	// served by the prof package's -debug endpoint).
	Progress time.Duration
	// Streams, when non-nil, is stamped onto every config that does not
	// already carry a stream provider: the campaign's record/replay
	// cache (internal/replay). All workers then share each workload's
	// recorded stream — it is recorded by whichever run needs it first
	// and replayed read-only by the rest. Results are byte-identical
	// with or without it (the provider is excluded from config hashing).
	Streams trace.SourceProvider
	// Fanout enables one-decode sweep fan-out: pending configs that
	// share a primary record stream (sim.FanGroupKey) are grouped and
	// each group runs against a single trace decode (sim.RunFanGroup)
	// before the per-run worker pool starts. Results are byte-identical
	// to the sequential path; points that fail inside a group fall back
	// to it, where the normal retry policy applies. Partial groups from
	// a resumed journal and singleton groups always run per-run.
	Fanout bool
	// FanMaxGroup caps a fan-out group's size; oversized groups are
	// split into chunks of at most this many points. The campaign
	// service sets it on campaigns admitted under load shedding — a
	// smaller group costs more decode passes but a smaller peak
	// footprint — before refusing work outright. 0 means unlimited;
	// values below 2 are treated as unlimited (a 1-point "group" is
	// just the per-run path).
	FanMaxGroup int
	// Sample enables phase-aware representative sampling: before the
	// per-run pool starts, every distinct sample-eligible
	// (workload, budgets, seed) projection among the pending configs
	// gets one telemetry-only Isolation profile, the profile is
	// clustered into a phase.Plan (internal/phase), and each member run
	// then simulates only the plan's representative windows, reporting
	// extrapolated metrics with error bounds in Result.Sampled. Configs
	// that are not sample-eligible, members of a failed profile, and
	// sampled attempts that fail at run time all fall back to the
	// full-ROI path. Mutually exclusive with Fanout (fan groups run the
	// full simulator in lockstep); sampling wins when both are set.
	// Sampled results are approximations: do not mix Sample on and off
	// across resumes of the same journal.
	Sample bool
	// Pool, when non-nil, executes the campaign on a shared
	// multi-campaign worker pool instead of workers owned by this
	// orchestrator: every run (and every fan-out group) becomes one
	// task on a weighted queue tagged Tenant/Weight, so concurrent
	// campaigns interleave under stride fair scheduling and per-tenant
	// concurrency caps. Workers is ignored in pool mode. Tasks shed by
	// a draining pool are recorded as ErrCanceled, leaving them pending
	// in the journal for the next resume.
	Pool *Pool
	// Tenant tags the campaign's pool queue for per-tenant caps;
	// Weight is its fair-share weight (minimum 1). Both are ignored
	// without Pool.
	Tenant string
	Weight int
	// CampaignID, when non-empty, registers the campaign's live
	// progress in the telemetry campaign registry (expvar
	// "pinte.campaigns") instead of the process-wide last-campaign-wins
	// "pinte.campaign" slot. The service unregisters it when the
	// campaign is finalized.
	CampaignID string
	// OnResult observes every completed result: resumed journal entries
	// first (fromJournal=true, in input order), then live completions
	// as they happen. Called without internal locks held; must be safe
	// for concurrent use.
	OnResult func(index int, key string, res *sim.Result, fromJournal bool)
	// Store, when non-nil, is the cross-campaign content-addressed
	// result store (internal/store): pending configs already stored
	// under the current simulator fingerprint are satisfied without
	// running, configs another campaign is computing right now are
	// collapsed onto that computation via single-flight (no pool worker
	// burned on a duplicate), and every full-fidelity completion is
	// appended after its journal entry. Sampled runs bypass the store
	// in both directions — approximations are never shared. Store
	// failures degrade to compute-without-cache; they never fail a run.
	Store *store.Store
}

// RunError describes one failed run of a campaign.
type RunError struct {
	// Index is the config's position in the RunAll input.
	Index int
	// Config is the original (unperturbed) configuration.
	Config sim.Config
	// Key is the config's journal hash.
	Key string
	// Err is the final attempt's failure, wrapping one of the sim
	// taxonomy sentinels (ErrBadConfig, ErrTimeout, ErrPanic,
	// ErrCanceled).
	Err error
	// Stack is the recovered goroutine stack when Err wraps ErrPanic.
	Stack string
	// WallTime spans all attempts; Attempts counts them.
	WallTime time.Duration
	Attempts int
	// JournalOnly marks a failure where the simulation itself
	// succeeded — its result is present in Outcome.Results — but the
	// checkpoint append to the resume journal was lost. Callers should
	// treat these as warnings about journal completeness, not as
	// failed runs.
	JournalOnly bool
}

func (e *RunError) Error() string {
	kind := "run"
	if e.JournalOnly {
		kind = "journal-only failure for run"
	}
	return fmt.Sprintf("%s %d (%s %s p=%g seed=%d): %v [attempts=%d wall=%s]",
		kind, e.Index, e.Config.Mode, e.Config.Workload, e.Config.PInduce,
		e.Config.Seed, e.Err, e.Attempts, e.WallTime.Round(time.Millisecond))
}

func (e *RunError) Unwrap() error { return e.Err }

// Outcome is what a campaign produced: successes in input order (nil
// where a run failed), plus the structured failure list.
type Outcome struct {
	// Results is parallel to the RunAll input; failed or canceled
	// configs leave a nil slot.
	Results []*sim.Result
	// Failures holds one RunError per failed config, ordered by Index.
	Failures []*RunError
	// FromJournal counts configs satisfied from the resume journal
	// without running; FromStore counts configs satisfied from the
	// cross-campaign result store (a prior hit or a shared in-flight
	// computation); Ran counts configs actually executed.
	FromJournal int
	FromStore   int
	Ran         int
}

// Err joins the failures into one error, or returns nil for a fully
// successful campaign.
func (o *Outcome) Err() error {
	if len(o.Failures) == 0 {
		return nil
	}
	errs := make([]error, len(o.Failures))
	for i, f := range o.Failures {
		errs[i] = f
	}
	return errors.Join(errs...)
}

// HardFailures returns the failures whose runs actually produced no
// result, excluding journal-only failures (result kept, checkpoint
// lost). Exit-code logic should key off this list: a campaign whose
// every run completed is not a failed campaign just because a journal
// write was.
func (o *Outcome) HardFailures() []*RunError {
	var hard []*RunError
	for _, f := range o.Failures {
		if !f.JournalOnly {
			hard = append(hard, f)
		}
	}
	return hard
}

// JournalFailures returns the journal-only failures.
func (o *Outcome) JournalFailures() []*RunError {
	var jf []*RunError
	for _, f := range o.Failures {
		if f.JournalOnly {
			jf = append(jf, f)
		}
	}
	return jf
}

// Orchestrator executes campaigns under one Options set. Safe for use
// by a single campaign at a time.
type Orchestrator struct {
	opts Options
	// run executes one attempt; tests substitute it to inject panics
	// and hangs. nil means sim.RunContext. Panics are recovered by the
	// orchestrator regardless of the function used.
	run func(ctx context.Context, cfg sim.Config) (*sim.Result, error)
	// sleep waits out a backoff delay; tests substitute a fake clock.
	// nil means a context-aware real sleep.
	sleep func(ctx context.Context, d time.Duration)
	// plans, built by runSamplePhase, is parallel to the RunAll input:
	// a non-nil slot switches that config's attempts to phase-sampled
	// execution (stripped again on a sampled failure's fallback).
	plans []*phase.Plan
}

// New builds an orchestrator.
func New(opts Options) *Orchestrator { return &Orchestrator{opts: opts} }

func (o *Orchestrator) logf(format string, args ...any) {
	if o.opts.Logf != nil {
		o.opts.Logf(format, args...)
	}
}

// PerturbSeed derives the seed for retry attempt n (n >= 1) of a run
// whose original seed is seed. The perturbation is deterministic —
// resuming a campaign retries a crashing config through the same seed
// sequence — and attempt 0 always preserves the original seed, so
// successful runs stay bit-identical to an unorchestrated sim.Run.
func PerturbSeed(seed uint64, attempt int) uint64 {
	if attempt == 0 {
		return seed
	}
	// Golden-ratio odd multiplier: distinct, well-mixed seeds per
	// attempt without colliding with neighbouring campaign seeds.
	return seed ^ uint64(attempt)*0x9e3779b97f4a7c15
}

// backoffDelay computes the pause before retry attempt n (n >= 1) of a
// run with the given original seed: base << (n-1), capped at max (or
// 16×base when max is 0), with a deterministic ±25% jitter so a resumed
// campaign replays the same pauses while concurrent retries of
// different configs decorrelate instead of thundering together.
func backoffDelay(base, max time.Duration, attempt int, seed uint64) time.Duration {
	if base <= 0 || attempt < 1 {
		return 0
	}
	if max <= 0 {
		max = 16 * base
	}
	d := base
	// Shift step-wise against the cap so a large attempt count can
	// never overflow the duration into a negative sleep.
	for i := 1; i < attempt && d < max; i++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	// splitmix64 of (seed, attempt) → uniform [0,1) → factor in
	// [0.75, 1.25).
	x := seed ^ uint64(attempt)*0x9e3779b97f4a7c15
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	frac := float64(x>>11) / (1 << 53)
	return time.Duration(float64(d) * (0.75 + 0.5*frac))
}

// ctxSleep is the default backoff sleep: d elapses or ctx ends,
// whichever is first.
func ctxSleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// RunAll executes cfgs under ctx and never aborts on a per-run failure:
// it always returns an Outcome covering every config. The error return
// is reserved for campaign-level faults (an unreadable or unwritable
// journal); per-run failures — including cancellation — are reported in
// Outcome.Failures so callers can emit completed rows and exit non-zero.
func (o *Orchestrator) RunAll(ctx context.Context, cfgs []sim.Config) (*Outcome, error) {
	out := &Outcome{Results: make([]*sim.Result, len(cfgs))}

	keys := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		k, err := ConfigKey(cfg)
		if err != nil {
			out.Failures = append(out.Failures, &RunError{
				Index: i, Config: cfg, Attempts: 0,
				Err: fmt.Errorf("%w: unhashable: %v", sim.ErrBadConfig, err),
			})
			continue
		}
		keys[i] = k
	}

	prog := telemetry.NewProgress(len(cfgs), time.Now())
	if o.opts.CampaignID != "" {
		telemetry.RegisterCampaign(o.opts.CampaignID, prog)
	} else {
		prog.Publish()
	}
	for range out.Failures {
		prog.RunFailed() // unhashable configs counted up front
	}

	var journal *Journal
	if o.opts.Journal != "" {
		var done map[string]*sim.Result
		var jst LoadStats
		var err error
		journal, done, jst, err = OpenJournal(o.opts.Journal)
		if err != nil {
			return nil, err
		}
		defer journal.Close()
		for i := range cfgs {
			if res, ok := done[keys[i]]; ok && keys[i] != "" {
				out.Results[i] = res
				out.FromJournal++
			}
		}
		prog.FromJournal(out.FromJournal)
		prog.JournalSkipped(jst.Skipped)
		if out.FromJournal > 0 || jst.Skipped > 0 {
			line := fmt.Sprintf("resume: %d of %d runs already journaled in %s",
				out.FromJournal, len(cfgs), o.opts.Journal)
			if jst.Skipped > 0 {
				line += fmt.Sprintf(" (%d corrupt journal lines skipped; their runs re-execute)", jst.Skipped)
			}
			if jst.TruncatedTail {
				line += " (truncated final line from an interrupted append dropped)"
			}
			o.logf("%s", line)
		}
	}

	if o.opts.OnResult != nil {
		for i := range cfgs {
			if out.Results[i] != nil {
				o.opts.OnResult(i, keys[i], out.Results[i], true)
			}
		}
	}

	var pending []int
	for i := range cfgs {
		if out.Results[i] == nil && keys[i] != "" {
			pending = append(pending, i)
		}
	}

	// prior[i] counts failed fan-out in-group attempts for config i, so
	// a point that dies inside a group re-enters the per-run
	// retry/backoff ladder at the next rung instead of retrying
	// immediately.
	prior := make([]int, len(cfgs))

	// Heartbeats: a ticker goroutine snapshots the live progress and
	// pushes one line per period through Logf, plus a final line when
	// the campaign drains.
	var heartbeatDone chan struct{}
	if o.opts.Progress > 0 && o.opts.Logf != nil {
		heartbeatDone = make(chan struct{})
		go func() {
			t := time.NewTicker(o.opts.Progress)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					o.logf("%s", prog.Snapshot(time.Now()))
				case <-heartbeatDone:
					return
				}
			}
		}()
	}

	var mu sync.Mutex
	var q *Queue
	if o.opts.Pool != nil {
		q = o.opts.Pool.NewQueue(o.opts.Tenant, o.opts.Weight)
		defer q.Close()
	}

	// Store phase: before any scheduling, satisfy pending configs from
	// the cross-campaign result store, and pull configs another campaign
	// is computing right now out of the scheduling paths entirely — each
	// becomes a watcher (launched below, after the phase planners have
	// run) that blocks on the in-flight computation instead of burning a
	// pool worker on a duplicate. Running this before the sample/fan
	// phases keeps already-answered configs out of profile and decode
	// work.
	var watcherIdx []int
	if st := o.opts.Store; st != nil {
		rest := pending[:0]
		hits := 0
		for _, i := range pending {
			if res, ok := st.Get(keys[i]); ok {
				mu.Lock()
				out.Results[i] = res
				out.FromStore++
				mu.Unlock()
				hits++
				prog.RunCompleted()
				if o.opts.OnResult != nil {
					o.opts.OnResult(i, keys[i], res, false)
				}
				o.journalOne(journal, i, 0, cfgs, keys, res, out, &mu, prog)
				continue
			}
			if st.InFlight(keys[i]) {
				watcherIdx = append(watcherIdx, i)
				continue
			}
			rest = append(rest, i)
		}
		pending = rest
		if hits > 0 || len(watcherIdx) > 0 {
			o.logf("store: %d of %d pending runs served from %s (%d more in flight elsewhere)",
				hits, hits+len(watcherIdx)+len(pending), st.FingerprintID(), len(watcherIdx))
		}
	}

	if o.opts.Sample && o.run == nil {
		// Sample phase: profile, cluster and stamp sampling plans (see
		// sample.go). Test harnesses that substitute o.run bypass it —
		// a profile runs the real simulator, not the injected stand-in.
		if o.opts.Fanout {
			o.logf("sampling and fan-out both requested; sampling wins (fan groups run the full simulator)")
		}
		o.runSamplePhase(ctx, cfgs, pending, q)
	} else if o.opts.Fanout && o.run == nil {
		// Fan-out phase: grouped points run against one shared decode;
		// whatever it could not place (singletons, partial resume groups,
		// in-group failures) drains through the per-run pool below. Test
		// harnesses that substitute o.run bypass it — a fan group runs
		// the real simulator, not the injected stand-in.
		pending = o.runFanPhase(ctx, cfgs, keys, pending, prior, out, &mu, prog, journal, q)
	}

	// Watchers: configs found in flight elsewhere during the store phase
	// ride on plain goroutines — execOne lands in the store's
	// single-flight wait (or inherits the finished result, or becomes
	// the new leader if the other campaign's attempt died) without
	// occupying a pool slot or one of this campaign's workers.
	var watchers sync.WaitGroup
	for _, i := range watcherIdx {
		i := i
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			o.execOne(ctx, i, cfgs, keys, prior, out, &mu, prog, journal)
		}()
	}

	if q != nil {
		// Shared-pool mode: one task per pending config on the
		// campaign's weighted queue. A task shed by a draining pool is
		// recorded as ErrCanceled — same accounting as an unscheduled
		// config below — which leaves it pending in the journal for the
		// next resume.
		var wg sync.WaitGroup
		for _, i := range pending {
			i := i
			wg.Add(1)
			q.Submit(func(shed bool) {
				defer wg.Done()
				if shed || ctx.Err() != nil {
					mu.Lock()
					out.Failures = append(out.Failures, &RunError{
						Index: i, Config: cfgs[i], Key: keys[i], Err: sim.ErrCanceled,
					})
					mu.Unlock()
					prog.RunFailed()
					return
				}
				o.execOne(ctx, i, cfgs, keys, prior, out, &mu, prog, journal)
			})
		}
		wg.Wait()
	} else {
		workers := o.opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					o.execOne(ctx, i, cfgs, keys, prior, out, &mu, prog, journal)
				}
			}()
		}
		scheduled := len(pending)
		for n, i := range pending {
			select {
			case idx <- i:
			case <-ctx.Done():
				scheduled = n
			}
			if scheduled != len(pending) {
				break
			}
		}
		close(idx)
		wg.Wait()
		for _, i := range pending[scheduled:] {
			out.Failures = append(out.Failures, &RunError{
				Index: i, Config: cfgs[i], Key: keys[i], Err: sim.ErrCanceled,
			})
			prog.RunFailed()
		}
	}
	watchers.Wait()
	if heartbeatDone != nil {
		close(heartbeatDone)
		o.logf("%s", prog.Snapshot(time.Now()))
	}
	sort.Slice(out.Failures, func(a, b int) bool {
		return out.Failures[a].Index < out.Failures[b].Index
	})
	return out, nil
}

// execOne runs one pending config end to end — retry ladder, result and
// failure accounting, journal append, result callback — sharing the
// campaign mutex with every other executor of the same campaign. With a
// result store configured, full-fidelity attempts run under its
// single-flight: concurrent identical configs (other campaigns, other
// tenants) collapse onto one computation, and the computing side
// persists its result to the store after the journal append. Sampled
// attempts bypass the store — approximations are never shared.
func (o *Orchestrator) execOne(ctx context.Context, i int, cfgs []sim.Config, keys []string,
	prior []int, out *Outcome, mu *sync.Mutex, prog *telemetry.Progress, journal *Journal) {
	st := o.opts.Store
	sampled := o.plans != nil && o.plans[i] != nil
	var (
		res      *sim.Result
		attempts int
		rerr     *RunError
	)
	via := store.ViaCompute
	if st != nil && !sampled {
		var shared *sim.Result
		var derr error
		shared, via, derr = st.Do(ctx, keys[i], func() (*sim.Result, error) {
			res, attempts, rerr = o.runOne(ctx, i, cfgs[i], keys[i], prior[i], prog)
			if rerr != nil {
				return nil, rerr.Err
			}
			return res, nil
		})
		switch {
		case via == store.ViaCompute:
			// res/attempts/rerr already carry this run's own attempt.
		case derr != nil:
			// Canceled while waiting on another campaign's computation.
			rerr = &RunError{Index: i, Config: cfgs[i], Key: keys[i], Err: sim.ErrCanceled}
		default:
			res, rerr = shared, nil
		}
	} else {
		res, attempts, rerr = o.runOne(ctx, i, cfgs[i], keys[i], prior[i], prog)
	}

	mu.Lock()
	if via == store.ViaCompute {
		out.Ran++
	} else if rerr == nil {
		out.FromStore++
	}
	if rerr != nil {
		out.Failures = append(out.Failures, rerr)
		mu.Unlock()
		prog.RunFailed()
		return
	}
	out.Results[i] = res
	mu.Unlock()
	prog.RunCompleted()
	if o.opts.OnResult != nil {
		o.opts.OnResult(i, keys[i], res, false)
	}
	o.journalOne(journal, i, attempts, cfgs, keys, res, out, mu, prog)
	if st != nil && !sampled && via == store.ViaCompute {
		// Persist for every future campaign, after the journal append so
		// the campaign's own durability is settled first. A failed Put
		// costs only the cache entry — the run already succeeded.
		if err := st.Put(keys[i], res); err != nil {
			o.logf("store: caching result of run %d failed (campaign unaffected): %v", i, err)
		}
	}
}

// journalOne appends one completed result to the resume journal,
// recording an append failure as a journal-only RunError: the run
// itself succeeded and its result is kept in Results[i]; only the
// checkpoint was lost, and exit-code logic and reports stay truthful.
func (o *Orchestrator) journalOne(journal *Journal, i, attempts int, cfgs []sim.Config,
	keys []string, res *sim.Result, out *Outcome, mu *sync.Mutex, prog *telemetry.Progress) {
	if journal == nil {
		return
	}
	if err := journal.Append(keys[i], res); err != nil {
		prog.JournalError()
		mu.Lock()
		out.Failures = append(out.Failures, &RunError{
			Index: i, Config: cfgs[i], Key: keys[i],
			Attempts: attempts, JournalOnly: true,
			Err: fmt.Errorf("journaling result: %w", err),
		})
		mu.Unlock()
	}
}

// runOne executes one config with the per-run deadline, panic capture
// and bounded seed-perturbation retry policy applied. prior counts
// failed attempts already consumed elsewhere (a fan-out in-group
// failure): they advance the backoff ladder and the reported attempt
// count, but not the seed ladder — the first per-run attempt keeps the
// original seed, so a clean fallback stays byte-identical to a
// sequential run. It returns the total attempt count alongside the
// result so journal-only failures can carry it.
func (o *Orchestrator) runOne(ctx context.Context, index int, cfg sim.Config, key string, prior int, prog *telemetry.Progress) (*sim.Result, int, *RunError) {
	runFn := o.run
	if runFn == nil {
		runFn = sim.RunContext
	}
	if fault.Enabled() {
		// Chaos-mode worker faults wrap the real run so an injected panic
		// is recovered by safeCall and an injected wedge is exactly what
		// the watchdog must convert into a typed failure.
		inner := runFn
		runFn = func(ctx context.Context, c sim.Config) (*sim.Result, error) {
			if fault.Fires(fault.SiteWorkerPanic) {
				panic(fmt.Sprintf("%v at %s", fault.ErrInjected, fault.SiteWorkerPanic))
			}
			if d := fault.Delay(fault.SiteWorkerSlow); d > 0 {
				time.Sleep(d)
			}
			if fault.Fires(fault.SiteWorkerHang) {
				fault.Hang()
			}
			return inner(ctx, c)
		}
	}
	// plan, when non-nil, runs this config's attempts in phase-sampled
	// mode. A sampled attempt that fails strips the plan and re-runs the
	// same attempt on the full-ROI path — a free retry with the same
	// seed, so sampling can degrade the budget saving but never the
	// campaign's outcome.
	var plan *phase.Plan
	if o.plans != nil {
		plan = o.plans[index]
	}
	start := time.Now()
	var err error
	attempts := 0
	for attempts <= o.opts.Retries {
		c := cfg
		c.Seed = PerturbSeed(cfg.Seed, attempts)
		if c.Streams == nil {
			c.Streams = o.opts.Streams
		}
		c.Sample = plan
		// ladder is this attempt's rung on the retry/backoff ladder:
		// per-run retries plus any failed in-group fan-out attempt, so
		// a fallback waits out the same backoff a plain retry would.
		ladder := prior + attempts
		if ladder > 0 {
			if attempts > 0 {
				prog.Retried()
				o.logf("retry %d/%d for run %d (%s %s): %v; perturbed seed %d",
					attempts, o.opts.Retries, index, cfg.Mode, cfg.Workload, err, c.Seed)
			} else {
				prog.Retried()
				o.logf("run %d (%s %s) re-enters the backoff ladder at rung %d after an in-group failure",
					index, cfg.Mode, cfg.Workload, ladder)
			}
			if d := backoffDelay(o.opts.Backoff, o.opts.BackoffMax, ladder, cfg.Seed); d > 0 {
				sleep := o.sleep
				if sleep == nil {
					sleep = ctxSleep
				}
				sleep(ctx, d)
				if ctx.Err() != nil {
					err = sim.ErrCanceled
					break
				}
			}
		}
		attempts++

		rctx := ctx
		cancel := func() {}
		if o.opts.Timeout > 0 {
			rctx, cancel = context.WithTimeout(ctx, o.opts.Timeout)
		}
		var res *sim.Result
		res, err = o.guardedCall(runFn, rctx, c)
		cancel()
		if err == nil {
			return res, prior + attempts, nil
		}
		// Whole-campaign cancellation masquerades as a per-run error;
		// never retry it, and report it under its own sentinel.
		if ctx.Err() != nil {
			err = sim.ErrCanceled
			break
		}
		if plan != nil {
			// First sampled failure — whatever the cause (a poisoned
			// plan, a trace too short for a seek, a chaos fault): strip
			// the plan and repeat this attempt on the full-ROI path
			// without consuming retry budget.
			telemetry.Phase.SampledFallbacks.Add(1)
			o.logf("run %d (%s %s p=%g): sampled attempt failed (%v); falling back to the full-ROI path",
				index, cfg.Mode, cfg.Workload, cfg.PInduce, err)
			plan = nil
			attempts--
			continue
		}
		if !sim.Retryable(err) {
			break
		}
	}
	re := &RunError{
		Index: index, Config: cfg, Key: key, Err: err,
		WallTime: time.Since(start), Attempts: prior + attempts,
	}
	var pe *sim.PanicError
	if errors.As(err, &pe) {
		re.Stack = string(pe.Stack)
	}
	return nil, prior + attempts, re
}

// guardedCall runs one attempt under the stuck-run watchdog. With no
// StallGrace the attempt runs inline (no extra goroutine, no overhead);
// with one, the attempt runs in its own goroutine and — once the run's
// context has expired — gets StallGrace longer to return before the
// orchestrator walks away with sim.ErrStalled. The abandoned goroutine
// is leaked deliberately: a truly wedged worker (deadlock, blocked
// syscall) cannot be killed from outside, and leaking it bounded-many
// times (Retries per config) beats wedging the campaign forever.
func (o *Orchestrator) guardedCall(runFn func(context.Context, sim.Config) (*sim.Result, error),
	ctx context.Context, cfg sim.Config) (*sim.Result, error) {
	if o.opts.StallGrace <= 0 {
		return safeCall(runFn, ctx, cfg)
	}
	type attempt struct {
		res *sim.Result
		err error
	}
	// Buffered so the abandoned goroutine's eventual send never blocks.
	ch := make(chan attempt, 1)
	go func() {
		res, err := safeCall(runFn, ctx, cfg)
		ch <- attempt{res, err}
	}()
	select {
	case a := <-ch:
		return a.res, a.err
	case <-ctx.Done():
	}
	grace := time.NewTimer(o.opts.StallGrace)
	defer grace.Stop()
	select {
	case a := <-ch:
		return a.res, a.err
	case <-grace.C:
		telemetry.Degraded.StalledRuns.Add(1)
		return nil, fmt.Errorf("%w (no response %v past its context)",
			sim.ErrStalled, o.opts.StallGrace)
	}
}

// safeCall runs one attempt with panic isolation: a crash inside the
// simulator becomes a *sim.PanicError carrying the goroutine stack.
func safeCall(runFn func(context.Context, sim.Config) (*sim.Result, error),
	ctx context.Context, cfg sim.Config) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &sim.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return runFn(ctx, cfg)
}
