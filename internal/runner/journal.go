package runner

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"os"
	"sync"

	"repro/internal/sim"
)

// ConfigKey returns the deterministic resume key for cfg: the SHA-256
// of the canonical JSON of the normalized config (every default
// resolved). Two configs that would produce identical results hash
// identically, so a resumed campaign recognises its completed runs even
// across processes and flag re-orderings.
func ConfigKey(cfg sim.Config) (string, error) {
	b, err := json.Marshal(cfg.Normalized())
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// journalEntry is one JSONL line: the config key plus the completed
// result (which embeds its config, keeping the file self-describing).
type journalEntry struct {
	Key    string      `json:"key"`
	Result *sim.Result `json:"result"`
}

// Journal is an append-only JSONL checkpoint of completed results. Each
// Append writes one line and flushes it to the OS, so a killed process
// loses at most the result it was formatting; LoadJournal tolerates a
// truncated final line for exactly that case. Safe for concurrent
// Appends.
type Journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// maxEntryBytes bounds one journal line (a Result with samples and
// histograms is tens of KB; 64MB leaves three orders of magnitude).
const maxEntryBytes = 64 << 20

// LoadStats summarises one journal scan so resumes can report exactly
// what they recovered and what they dropped.
type LoadStats struct {
	// Entries counts intact entries loaded.
	Entries int
	// Skipped counts unusable non-final lines — mid-file corruption
	// (bit rot, a concurrent writer, manual editing) — that were
	// dropped while the scan continued.
	Skipped int
	// TruncatedTail reports a benign final-line truncation: the one
	// corruption shape a crash mid-append legitimately produces.
	TruncatedTail bool
}

// LoadJournal reads a journal into a key → result map. A missing file
// yields an empty map. Only a truncated final line (a crash mid-append)
// is benign; a corrupt line anywhere else is skipped — and counted in
// the returned LoadStats — while every intact entry after it is still
// recovered, so one damaged line never silently discards the rest of a
// campaign's completed work.
func LoadJournal(path string) (map[string]*sim.Result, LoadStats, error) {
	done := make(map[string]*sim.Result)
	var st LoadStats
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return done, st, nil
	}
	if err != nil {
		return nil, st, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxEntryBytes)
	// lastBad tracks whether the most recent line failed to parse; if
	// the scan ends there, that failure is reclassified as a benign
	// tail truncation instead of a corrupt entry.
	lastBad := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		lastBad = false
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			st.Skipped++
			lastBad = true
			continue
		}
		if e.Key == "" || e.Result == nil {
			st.Skipped++
			continue
		}
		done[e.Key] = e.Result
		st.Entries++
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return nil, st, err
	}
	if lastBad {
		st.Skipped--
		st.TruncatedTail = true
	}
	return done, st, nil
}

// OpenJournal loads path's existing entries and opens it for appending,
// creating it if absent.
func OpenJournal(path string) (*Journal, map[string]*sim.Result, LoadStats, error) {
	done, st, err := LoadJournal(path)
	if err != nil {
		return nil, nil, st, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, st, err
	}
	return &Journal{f: f, w: bufio.NewWriterSize(f, 256<<10)}, done, st, nil
}

// Append records one completed result and flushes the line.
func (j *Journal) Append(key string, res *sim.Result) error {
	b, err := json.Marshal(journalEntry{Key: key, Result: res})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(b); err != nil {
		return err
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	// Push the line to stable storage so a power loss, not just a
	// process crash, preserves completed work.
	return j.f.Sync()
}

// Close flushes and closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
