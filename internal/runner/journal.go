package runner

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ConfigKey returns the deterministic resume key for cfg: the SHA-256
// of the canonical JSON of the normalized config (every default
// resolved). Two configs that would produce identical results hash
// identically, so a resumed campaign recognises its completed runs even
// across processes and flag re-orderings.
func ConfigKey(cfg sim.Config) (string, error) {
	b, err := json.Marshal(cfg.Normalized())
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// journalEntry is one JSONL line: the config key plus the completed
// result (which embeds its config, keeping the file self-describing).
type journalEntry struct {
	Key    string      `json:"key"`
	Result *sim.Result `json:"result"`
}

// Journal is an append-only checkpoint of completed results: one
// checksummed JSON line per result. Each Append writes one line and
// flushes it to stable storage, so a killed process loses at most the
// result it was formatting; LoadJournal tolerates a truncated final line
// for exactly that case. Safe for concurrent Appends.
type Journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// maxEntryBytes bounds one journal line (a Result with samples and
// histograms is tens of KB; 64MB leaves three orders of magnitude).
const maxEntryBytes = 64 << 20

// crcTable is the Castagnoli polynomial (hardware-accelerated on amd64
// and arm64), shared with the replay arena checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal line framing. A checksummed line is
//
//	!<8 hex chars of crc32c(payload)> <payload JSON>\n
//
// so a scan can verify each entry before trusting it: flipped bits
// anywhere in the payload fail the checksum instead of (best case)
// failing the JSON parse or (worst case) parsing into a silently wrong
// Result. Lines that start with '{' are legacy entries from
// pre-checksum journals; they still load, so an old resume file keeps
// working, and compaction rewrites them checksummed.
const (
	crcSigil     = '!'
	crcHexLen    = 8
	crcPrefixLen = crcHexLen + 2 // sigil + hex + space
)

// frameEntry renders one checksummed journal line (without newline).
func frameEntry(key string, res *sim.Result) ([]byte, error) {
	payload, err := json.Marshal(journalEntry{Key: key, Result: res})
	if err != nil {
		return nil, err
	}
	line := make([]byte, crcPrefixLen+len(payload))
	line[0] = crcSigil
	sum := crc32.Checksum(payload, crcTable)
	hex.Encode(line[1:1+crcHexLen], []byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)})
	line[crcPrefixLen-1] = ' '
	copy(line[crcPrefixLen:], payload)
	return line, nil
}

// parseLine decodes one journal line into e, verifying the checksum on
// framed lines and accepting bare-JSON legacy lines. The bool reports
// whether the line failed its CRC (as opposed to failing to parse).
func parseLine(line []byte, e *journalEntry) (err error, crcFailed bool) {
	if len(line) > 0 && line[0] == crcSigil {
		if len(line) < crcPrefixLen || line[crcPrefixLen-1] != ' ' {
			return fmt.Errorf("malformed checksum frame"), true
		}
		var sum [4]byte
		if _, err := hex.Decode(sum[:], line[1:1+crcHexLen]); err != nil {
			return fmt.Errorf("malformed checksum: %v", err), true
		}
		payload := line[crcPrefixLen:]
		want := uint32(sum[0])<<24 | uint32(sum[1])<<16 | uint32(sum[2])<<8 | uint32(sum[3])
		if got := crc32.Checksum(payload, crcTable); got != want {
			return fmt.Errorf("checksum mismatch: %08x != %08x", got, want), true
		}
		return json.Unmarshal(payload, e), false
	}
	return json.Unmarshal(line, e), false
}

// LoadStats summarises one journal scan so resumes can report exactly
// what they recovered and what they dropped.
type LoadStats struct {
	// Entries counts intact entries loaded.
	Entries int
	// Skipped counts unusable non-final lines — mid-file corruption
	// (bit rot, a concurrent writer, manual editing) — that were
	// dropped while the scan continued.
	Skipped int
	// CRCFailed is the subset of Skipped dropped because a checksummed
	// line's payload no longer matched its CRC — corruption that would
	// previously have gone undetected whenever the damaged JSON still
	// parsed.
	CRCFailed int
	// TruncatedTail reports a benign final-line truncation: the one
	// corruption shape a crash mid-append legitimately produces.
	TruncatedTail bool
}

// LoadJournal reads a journal into a key → result map. A missing file
// yields an empty map. Only a truncated final line (a crash mid-append)
// is benign; a corrupt line anywhere else — bad JSON or a failed
// checksum — is skipped and counted in the returned LoadStats while
// every intact entry after it is still recovered, so one damaged line
// never silently discards the rest of a campaign's completed work.
func LoadJournal(path string) (map[string]*sim.Result, LoadStats, error) {
	done := make(map[string]*sim.Result)
	var st LoadStats
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return done, st, nil
	}
	if err != nil {
		return nil, st, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxEntryBytes)
	// lastBad tracks whether the most recent line failed to load; if the
	// scan ends there, that failure is reclassified as a benign tail
	// truncation instead of a corrupt entry (a truncated checksummed
	// line shows up as a CRC mismatch, so lastCRC reclassifies too).
	lastBad, lastCRC := false, false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		lastBad, lastCRC = false, false
		var e journalEntry
		if err, crcFailed := parseLine(line, &e); err != nil {
			st.Skipped++
			if crcFailed {
				st.CRCFailed++
			}
			lastBad, lastCRC = true, crcFailed
			continue
		}
		if e.Key == "" || e.Result == nil {
			st.Skipped++
			continue
		}
		done[e.Key] = e.Result
		st.Entries++
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return nil, st, err
	}
	if lastBad {
		st.Skipped--
		if lastCRC {
			st.CRCFailed--
		}
		st.TruncatedTail = true
	}
	telemetry.Degraded.JournalLinesSkipped.Add(int64(st.Skipped))
	telemetry.Degraded.JournalCRCFailures.Add(int64(st.CRCFailed))
	return done, st, nil
}

// OpenJournal loads path's existing entries and opens it for appending,
// creating it if absent. A torn final line left by a crash mid-append is
// truncated away first, so the next append starts on a clean line
// boundary instead of gluing onto the debris and corrupting both lines.
func OpenJournal(path string) (*Journal, map[string]*sim.Result, LoadStats, error) {
	done, st, err := LoadJournal(path)
	if err != nil {
		return nil, nil, st, err
	}
	if err := fault.Err(fault.SiteJournalOpen); err != nil {
		return nil, nil, st, err
	}
	if err := trimTornTail(path); err != nil {
		return nil, nil, st, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, st, err
	}
	return &Journal{f: f, w: bufio.NewWriterSize(f, 256<<10)}, done, st, nil
}

// trimTornTail truncates path to its last newline when the file ends
// mid-line — the shape a crash during an append leaves behind. The
// dropped bytes are exactly the entry LoadJournal already classified as
// a benign truncated tail; removing them keeps the file append-safe.
func trimTornTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	if size == 0 {
		return nil
	}
	var last [1]byte
	if _, err := f.ReadAt(last[:], size-1); err != nil {
		return err
	}
	if last[0] == '\n' {
		return nil
	}
	// Scan backwards in chunks for the end of the last complete line.
	buf := make([]byte, 64<<10)
	off := size - 1 // the final byte is already known to be mid-line
	end := int64(0)
scan:
	for off > 0 {
		n := int64(len(buf))
		if n > off {
			n = off
		}
		if _, err := f.ReadAt(buf[:n], off-n); err != nil {
			return err
		}
		for i := n - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				end = off - n + i + 1
				break scan
			}
		}
		off -= n
	}
	if err := f.Truncate(end); err != nil {
		return err
	}
	return f.Sync()
}

// Append records one completed result as a checksummed line and flushes
// it.
func (j *Journal) Append(key string, res *sim.Result) error {
	line, err := frameEntry(key, res)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := fault.Err(fault.SiteJournalAppend); err != nil {
		return err
	}
	if fault.Fires(fault.SiteJournalAppendPartial) {
		// Simulated crash mid-append: half the line reaches the file
		// with no newline — exactly the torn write a power loss
		// produces, which the next LoadJournal must classify as a
		// benign truncated tail.
		j.w.Write(line[:len(line)/2]) //nolint:errcheck // injected crash
		j.w.Flush()                   //nolint:errcheck
		j.f.Sync()                    //nolint:errcheck
		return fmt.Errorf("%w at %s", fault.ErrInjected, fault.SiteJournalAppendPartial)
	}
	if _, err := j.w.Write(line); err != nil {
		return err
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	// Push the line to stable storage so a power loss, not just a
	// process crash, preserves completed work.
	return j.f.Sync()
}

// Close flushes and closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// CompactStats describes one journal compaction.
type CompactStats struct {
	// Load is the scan of the original file; Load.Skipped corrupt lines
	// and superseded duplicate keys are what compaction drops.
	Load LoadStats
	// Entries is the number of unique entries rewritten.
	Entries int
	// BytesBefore and BytesAfter measure the file around the rewrite.
	BytesBefore, BytesAfter int64
}

// String renders the stats as one log line.
func (s CompactStats) String() string {
	line := fmt.Sprintf("journal compacted: %d entries, %d → %d bytes",
		s.Entries, s.BytesBefore, s.BytesAfter)
	if s.Load.Skipped > 0 {
		line += fmt.Sprintf(" (%d corrupt lines dropped", s.Load.Skipped)
		if s.Load.CRCFailed > 0 {
			line += fmt.Sprintf(", %d by checksum", s.Load.CRCFailed)
		}
		line += ")"
	}
	if s.Load.TruncatedTail {
		line += " (truncated final line from an interrupted append dropped)"
	}
	return line
}

// CompactJournal rewrites path to exactly one checksummed line per
// unique config key (the last occurrence wins), dropping corrupt lines,
// superseded duplicates and any torn tail — the growth a long-lived
// resume file accretes across campaigns. The rewrite is atomic:
// entries stream into a temp file in the same directory, the temp file
// is fsynced and renamed over the original, and the directory entry is
// synced, so a crash at any instant leaves either the old journal or
// the new one, never a mix. Entries are written in sorted key order, so
// compacting is deterministic: equal stores compact to byte-identical
// files.
func CompactJournal(path string) (CompactStats, error) {
	var st CompactStats
	fi, err := os.Stat(path)
	if err != nil {
		return st, err
	}
	st.BytesBefore = fi.Size()
	done, load, err := LoadJournal(path)
	if err != nil {
		return st, err
	}
	st.Load = load
	st.Entries = len(done)

	keys := make([]string, 0, len(done))
	for k := range done {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	tmp := path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return st, err
	}
	// Any failure below must leave no temp debris behind.
	fail := func(err error) (CompactStats, error) {
		f.Close()
		os.Remove(tmp)
		return st, err
	}
	w := bufio.NewWriterSize(f, 256<<10)
	for _, k := range keys {
		if err := fault.Err(fault.SiteJournalCompactWrite); err != nil {
			return fail(err)
		}
		line, err := frameEntry(k, done[k])
		if err != nil {
			return fail(err)
		}
		if _, err := w.Write(line); err != nil {
			return fail(err)
		}
		if err := w.WriteByte('\n'); err != nil {
			return fail(err)
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return st, err
	}
	if err := fault.Err(fault.SiteJournalCompactRename); err != nil {
		os.Remove(tmp)
		return st, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return st, err
	}
	// Persist the directory entry so the rename survives a power loss.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync() //nolint:errcheck // advisory: data is already safe in the file
		dir.Close()
	}
	if fi, err := os.Stat(path); err == nil {
		st.BytesAfter = fi.Size()
	}
	return st, nil
}
