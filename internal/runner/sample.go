package runner

import (
	"context"
	"sync"

	"repro/internal/phase"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Sample phase: before the per-run execution starts, the orchestrator
// runs one cheap telemetry-only profile per distinct (workload, budgets,
// seed) among the sample-eligible pending configs, clusters each profile
// into a phase.Plan, and stamps the plan onto every member — so a
// 12-point P_Induce sweep pays one full-detail Isolation profile and
// twelve short sampled runs instead of twelve full-ROI runs. Configs
// that are not sample-eligible (multi-core modes, partitioning,
// telemetry collection, ...) and members of a failed profile simply stay
// on the full-ROI path; sampling never turns a runnable campaign into a
// failed one.
//
// Sampling is mutually exclusive with fan-out: a fan group runs the
// full-ROI simulator in lockstep and would ignore the plans. RunAll
// prefers sampling when both are requested.

// profileEvery picks the profiling telemetry interval for a ROI: about
// 64 intervals, floored so degenerate tiny ROIs still profile.
func profileEvery(roi uint64) uint64 {
	every := roi / 64
	if every < 1024 {
		every = 1024
	}
	return every
}

// profileConfig projects cfg onto its profiling pre-pass: the same
// workload, budgets and seed, but single-core Isolation mode with
// telemetry collection on and everything PInTE-specific stripped — so
// every point of a P_Induce sweep (and its baseline) projects onto the
// same profile and shares one plan.
func profileConfig(cfg sim.Config) sim.Config {
	p := cfg.Normalized()
	p.Mode = sim.Isolation
	p.PInduce = 0
	p.EngineSeed = 0
	p.TelemetryEvery = profileEvery(p.ROIInstrs)
	p.Sample = nil
	return p
}

// runSamplePhase builds o.plans — one *phase.Plan slot per config, nil
// where the config runs the full-ROI path. Profiles run concurrently
// under the campaign's worker budget (or as one shared-pool task each in
// pool mode, so profiling competes fairly with other tenants); each
// failure is logged and counted, and leaves its members unsampled.
func (o *Orchestrator) runSamplePhase(ctx context.Context, cfgs []sim.Config, pending []int, q *Queue) {
	o.plans = make([]*phase.Plan, len(cfgs))

	type group struct {
		profile sim.Config
		members []int
	}
	byKey := make(map[string]*group)
	var order []string
	for _, i := range pending {
		cfg := cfgs[i]
		if cfg.Streams == nil {
			cfg.Streams = o.opts.Streams
		}
		if !sim.SampleEligible(cfg) {
			continue
		}
		p := profileConfig(cfg)
		k, err := ConfigKey(p)
		if err != nil {
			continue // the per-run path surfaces the same error
		}
		g, ok := byKey[k]
		if !ok {
			g = &group{profile: p}
			byKey[k] = g
			order = append(order, k)
		}
		g.members = append(g.members, i)
	}
	if len(order) == 0 {
		return
	}

	if q != nil {
		var wg sync.WaitGroup
		for _, k := range order {
			g := byKey[k]
			wg.Add(1)
			q.Submit(func(shed bool) {
				defer wg.Done()
				if shed || ctx.Err() != nil {
					return // unprofiled members stay on the full path
				}
				o.runProfile(ctx, g.profile, g.members)
			})
		}
		wg.Wait()
		return
	}

	workers := o.opts.Workers
	if workers <= 0 || workers > len(order) {
		workers = len(order)
	}
	var wg sync.WaitGroup
	keysCh := make(chan string)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range keysCh {
				o.runProfile(ctx, byKey[k].profile, byKey[k].members)
			}
		}()
	}
	for _, k := range order {
		if ctx.Err() != nil {
			break // unprofiled members stay on the full path
		}
		keysCh <- k
	}
	close(keysCh)
	wg.Wait()
}

// runProfile executes one telemetry-only profile, clusters it, and
// stamps the resulting plan on every member index. Any failure —
// simulation error, panic, or a series too short to cluster — leaves
// the members on the full-ROI path.
func (o *Orchestrator) runProfile(ctx context.Context, profile sim.Config, members []int) {
	telemetry.Phase.ProfileRuns.Add(1)
	rctx := ctx
	cancel := func() {}
	if o.opts.Timeout > 0 {
		rctx, cancel = context.WithTimeout(ctx, o.opts.Timeout)
	}
	res, err := safeCall(sim.RunContext, rctx, profile)
	cancel()
	var plan *phase.Plan
	if err == nil {
		plan, err = phase.Analyze(res.Telemetry, phase.Options{}, profile.Seed)
	}
	if err != nil {
		telemetry.Phase.ProfileFailures.Add(1)
		o.logf("sampling profile for %s (seed %d) failed; %d run(s) stay on the full-ROI path: %v",
			profile.Workload, profile.Seed, len(members), err)
		return
	}
	telemetry.Phase.PlansBuilt.Add(1)
	telemetry.Phase.PhasesFound.Add(int64(plan.Phases))
	o.logf("sampling plan for %s (seed %d): %s — %d run(s)",
		profile.Workload, profile.Seed, plan, len(members))
	for _, i := range members {
		o.plans[i] = plan
	}
}
