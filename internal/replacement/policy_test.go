package replacement

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func newPolicy(t *testing.T, name string, sets, ways int) Policy {
	t.Helper()
	p := MustNew(name, 42)
	p.Reset(sets, ways)
	return p
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("fifo", 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestNamesConstructible(t *testing.T) {
	for _, n := range Names() {
		p := MustNew(n, 1)
		if p.Name() != n {
			t.Errorf("policy %q reports name %q", n, p.Name())
		}
		p.Reset(4, 8)
	}
}

// TestVictimInRange: for every policy, Victim always returns a legal way.
func TestVictimInRange(t *testing.T) {
	for _, name := range Names() {
		p := newPolicy(t, name, 16, 8)
		rng := rand.New(rand.NewPCG(7, 7))
		for i := 0; i < 10_000; i++ {
			set := rng.IntN(16)
			switch rng.IntN(3) {
			case 0:
				p.OnFill(set, rng.IntN(8))
			case 1:
				p.OnHit(set, rng.IntN(8))
			case 2:
				v := p.Victim(set)
				if v < 0 || v >= 8 {
					t.Fatalf("%s: victim %d out of range", name, v)
				}
			}
		}
	}
}

// TestStackEndExists: after arbitrary activity, at least one way is at
// the stack end (PInTE's BLOCK-SELECT must be able to find a target),
// and the victim is always at the stack end.
func TestStackEndExists(t *testing.T) {
	for _, name := range Names() {
		p := newPolicy(t, name, 8, 8)
		rng := rand.New(rand.NewPCG(9, 9))
		for i := 0; i < 5_000; i++ {
			set := rng.IntN(8)
			if rng.IntN(2) == 0 {
				p.OnFill(set, rng.IntN(8))
			} else {
				p.OnHit(set, rng.IntN(8))
			}
			found := false
			for w := 0; w < 8; w++ {
				if p.AtStackEnd(set, w) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: no way at stack end after op %d", name, i)
			}
			if name == "nmru" {
				continue // nMRU victims are random among non-MRU
			}
			if v := p.Victim(set); !p.AtStackEnd(set, v) {
				t.Fatalf("%s: victim %d not at stack end", name, v)
			}
		}
	}
}

// TestPromoteRemovesFromStackEnd: promoting a block moves it away from
// the eviction end (for policies with more than a two-level order).
func TestPromoteRemovesFromStackEnd(t *testing.T) {
	for _, name := range []string{"lru", "plru", "rrip"} {
		p := newPolicy(t, name, 1, 8)
		for w := 0; w < 8; w++ {
			p.OnFill(0, w)
		}
		v := p.Victim(0)
		p.Promote(0, v)
		if p.AtStackEnd(0, v) {
			t.Errorf("%s: way %d still at stack end after Promote", name, v)
		}
	}
}

func TestLRUExactOrder(t *testing.T) {
	p := newPolicy(t, "lru", 1, 4)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w)
	}
	// Touch order: 0, 2 → LRU order now 1, 3, 0, 2.
	p.OnHit(0, 0)
	p.OnHit(0, 2)
	if v := p.Victim(0); v != 1 {
		t.Fatalf("victim = %d, want 1", v)
	}
	if pos := p.HitPosition(0, 2); pos != 0 {
		t.Errorf("most recent way position = %d, want 0", pos)
	}
	if pos := p.HitPosition(0, 1); pos != 3 {
		t.Errorf("oldest way position = %d, want 3", pos)
	}
}

// TestLRUHitPositionPermutation: positions form a permutation of 0..ways-1.
func TestLRUHitPositionPermutation(t *testing.T) {
	f := func(ops []uint8) bool {
		p := MustNew("lru", 1)
		const ways = 8
		p.Reset(1, ways)
		for w := 0; w < ways; w++ {
			p.OnFill(0, w)
		}
		for _, op := range ops {
			p.OnHit(0, int(op)%ways)
		}
		seen := map[int]bool{}
		for w := 0; w < ways; w++ {
			pos := p.HitPosition(0, w)
			if pos < 0 || pos >= ways || seen[pos] {
				return false
			}
			seen[pos] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPLRUVictimAvoidsRecentlyTouched(t *testing.T) {
	p := newPolicy(t, "plru", 1, 8)
	for w := 0; w < 8; w++ {
		p.OnFill(0, w)
	}
	for i := 0; i < 100; i++ {
		w := i % 8
		p.OnHit(0, w)
		if v := p.Victim(0); v == w {
			t.Fatalf("pLRU victimised the just-touched way %d", w)
		}
	}
}

func TestPLRURequiresPowerOfTwoWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pLRU accepted 6 ways")
		}
	}()
	MustNew("plru", 1).Reset(4, 6)
}

func TestPLRUHitPositionBounds(t *testing.T) {
	p := newPolicy(t, "plru", 2, 16)
	rng := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 5000; i++ {
		set := rng.IntN(2)
		w := rng.IntN(16)
		p.OnHit(set, w)
		if pos := p.HitPosition(set, w); pos != 0 {
			t.Fatalf("just-touched way at position %d, want 0", pos)
		}
		v := p.Victim(set)
		if pos := p.HitPosition(set, v); pos != 15 {
			t.Fatalf("victim way at position %d, want 15", pos)
		}
	}
}

func TestNMRUNeverEvictsMRU(t *testing.T) {
	p := newPolicy(t, "nmru", 1, 8)
	rng := rand.New(rand.NewPCG(11, 11))
	for i := 0; i < 10_000; i++ {
		w := rng.IntN(8)
		p.OnHit(0, w)
		if v := p.Victim(0); v == w {
			t.Fatalf("nMRU victimised the MRU way %d", w)
		}
		if p.AtStackEnd(0, w) {
			t.Fatal("MRU way reported at stack end")
		}
	}
}

func TestNMRUVictimsSpread(t *testing.T) {
	p := newPolicy(t, "nmru", 1, 8)
	p.OnHit(0, 0)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[p.Victim(0)] = true
	}
	if len(seen) < 7 {
		t.Errorf("nMRU victims covered only %d of 7 candidate ways", len(seen))
	}
}

func TestNMRUInvalidateClearsProtection(t *testing.T) {
	p := newPolicy(t, "nmru", 1, 4)
	p.OnHit(0, 2)
	p.OnInvalidate(0, 2)
	if !p.AtStackEnd(0, 2) {
		t.Fatal("invalidated MRU still protected")
	}
}

func TestRRIPInsertionAndPromotion(t *testing.T) {
	p := newPolicy(t, "rrip", 1, 4)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w)
	}
	// All at RRPV 2 — every way is a stack-end candidate.
	for w := 0; w < 4; w++ {
		if !p.AtStackEnd(0, w) {
			t.Fatalf("way %d should be at stack end after fill", w)
		}
	}
	p.OnHit(0, 1) // way 1 → RRPV 0
	if p.AtStackEnd(0, 1) {
		t.Fatal("hit way still at stack end")
	}
	v := p.Victim(0)
	if v == 1 {
		t.Fatal("RRIP victimised the hit way")
	}
	// Victim search ages the set until some way reaches RRPV 3.
	if pos := p.HitPosition(0, v); pos != 3 {
		t.Errorf("victim hit position %d, want 3 (scaled RRPV max)", pos)
	}
}

func TestRRIPVictimTerminates(t *testing.T) {
	p := newPolicy(t, "rrip", 1, 16)
	rng := rand.New(rand.NewPCG(13, 13))
	for i := 0; i < 20_000; i++ {
		switch rng.IntN(3) {
		case 0:
			p.OnFill(0, rng.IntN(16))
		case 1:
			p.OnHit(0, rng.IntN(16))
		case 2:
			if v := p.Victim(0); v < 0 || v >= 16 {
				t.Fatalf("victim %d out of range", v)
			}
		}
	}
}

func TestPLRUInvalidatePointsAtFreedWay(t *testing.T) {
	p := newPolicy(t, "plru", 1, 8)
	for w := 0; w < 8; w++ {
		p.OnFill(0, w)
	}
	for w := 0; w < 8; w++ {
		p.OnInvalidate(0, w)
		if v := p.Victim(0); v != w {
			t.Fatalf("victim after invalidating way %d is %d", w, v)
		}
	}
}
