// Package replacement implements the last-level-cache replacement
// policies the PInTE paper evaluates (LRU, pseudo-LRU, not-MRU, RRIP),
// behind a single interface that also exposes the hook surface PInTE
// needs: stack position queries, promotion, and victim selection.
//
// Positions use the convention 0 = most-recently-used end of the
// replacement stack and ways-1 = eviction end.
package replacement

import "fmt"

// Policy is a per-cache replacement policy instance. Implementations keep
// all per-set state internally; the owning cache calls Reset once with its
// geometry before use. A Policy is not safe for concurrent use.
type Policy interface {
	// Name returns the canonical policy name ("lru", "plru", "nmru",
	// "rrip").
	Name() string

	// Reset (re)initialises state for a cache with the given geometry.
	Reset(sets, ways int)

	// OnFill records that way in set was filled with a new block.
	OnFill(set, way int)

	// OnHit records a demand hit on way in set.
	OnHit(set, way int)

	// Victim selects the way to evict from a full set.
	Victim(set int) int

	// AtStackEnd reports whether way currently sits at the eviction end
	// of set's replacement stack — i.e. whether it is the block the
	// policy would victimise next. PInTE's BLOCK-SELECT state uses
	// this to find injection targets.
	AtStackEnd(set, way int) bool

	// Promote moves way to the most-recently-used end of the stack, as
	// if it had just been inserted. PInTE's PROMOTE state uses this to
	// mimic an adversary's insertion.
	Promote(set, way int)

	// HitPosition returns the stack depth of way at the moment of a
	// hit, in [0, ways-1]; reuse-distance histograms are built from it.
	// For policies without a total order (pLRU, nMRU, RRIP) the value
	// is the policy's natural approximation.
	HitPosition(set, way int) int

	// OnInvalidate records that way in set was invalidated (by
	// back-invalidation, exclusive-hit promotion, or PInTE).
	OnInvalidate(set, way int)
}

// Names lists the policies available through New, in the paper's order.
func Names() []string { return []string{"lru", "plru", "nmru", "rrip"} }

// New builds a policy by name. seed feeds policies that randomise victim
// choice (nMRU); deterministic policies ignore it.
func New(name string, seed uint64) (Policy, error) {
	switch name {
	case "lru":
		return NewLRU(), nil
	case "plru":
		return NewPLRU(), nil
	case "nmru":
		return NewNMRU(seed), nil
	case "rrip":
		return NewRRIP(), nil
	}
	return nil, fmt.Errorf("replacement: unknown policy %q", name)
}

// MustNew is New that panics on unknown names.
func MustNew(name string, seed uint64) Policy {
	p, err := New(name, seed)
	if err != nil {
		panic(err)
	}
	return p
}
