package replacement

// RRIP is static re-reference interval prediction (SRRIP, Jaleel et al.
// ISCA 2010) with 2-bit re-reference prediction values (RRPV). Blocks are
// inserted with a "long" prediction (RRPV max-1), promoted to "near"
// (RRPV 0) on hit, and the victim is any block predicted "distant" (RRPV
// max), ageing the whole set until one exists.
type RRIP struct {
	ways int
	rrpv []uint8
}

// rrpvMax is the distant-future RRPV for 2-bit SRRIP.
const rrpvMax = 3

// NewRRIP returns an SRRIP policy; call Reset before use.
func NewRRIP() *RRIP { return &RRIP{} }

// Name implements Policy.
func (p *RRIP) Name() string { return "rrip" }

// Reset implements Policy.
func (p *RRIP) Reset(sets, ways int) {
	p.ways = ways
	p.rrpv = make([]uint8, sets*ways)
	for i := range p.rrpv {
		p.rrpv[i] = rrpvMax
	}
}

// OnFill implements Policy: insert with long re-reference prediction.
func (p *RRIP) OnFill(set, way int) { p.rrpv[set*p.ways+way] = rrpvMax - 1 }

// OnHit implements Policy: promote to near-immediate.
func (p *RRIP) OnHit(set, way int) { p.rrpv[set*p.ways+way] = 0 }

// Promote implements Policy: same promotion as a fresh insertion.
func (p *RRIP) Promote(set, way int) { p.rrpv[set*p.ways+way] = rrpvMax - 1 }

// OnInvalidate implements Policy: an empty slot is maximally distant.
func (p *RRIP) OnInvalidate(set, way int) { p.rrpv[set*p.ways+way] = rrpvMax }

// Victim implements Policy: the first way at RRPV max, ageing the set
// until one exists.
func (p *RRIP) Victim(set int) int {
	base := set * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] == rrpvMax {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}

// AtStackEnd implements Policy: way holds the set's maximum RRPV (it is a
// victim candidate without further ageing).
func (p *RRIP) AtStackEnd(set, way int) bool {
	base := set * p.ways
	v := p.rrpv[base+way]
	for w := 0; w < p.ways; w++ {
		if p.rrpv[base+w] > v {
			return false
		}
	}
	return true
}

// HitPosition implements Policy: RRPV scaled onto the stack range.
func (p *RRIP) HitPosition(set, way int) int {
	return int(p.rrpv[set*p.ways+way]) * (p.ways - 1) / rrpvMax
}
