package replacement

import "math/bits"

// PLRU is tree-based pseudo-LRU (binary-tree bits per set), the
// implementation style of the patent the paper cites [54]. Ways must be a
// power of two. Each internal tree node holds one bit: 0 means "the LRU
// side is the left subtree", 1 means right. A touch flips the bits along
// the way's path to point away from it; the victim is found by following
// the bits from the root.
type PLRU struct {
	ways   int
	levels int
	// tree holds ways-1 bits per set, packed one set per uint32
	// (supports up to 32 ways).
	tree []uint32
}

// NewPLRU returns a pLRU policy; call Reset before use.
func NewPLRU() *PLRU { return &PLRU{} }

// Name implements Policy.
func (p *PLRU) Name() string { return "plru" }

// Reset implements Policy. It panics if ways is not a power of two or
// exceeds 32, which are structural configuration errors.
func (p *PLRU) Reset(sets, ways int) {
	if ways&(ways-1) != 0 || ways > 32 || ways < 2 {
		panic("replacement: pLRU requires 2..32 power-of-two ways")
	}
	p.ways = ways
	p.levels = bits.TrailingZeros(uint(ways))
	p.tree = make([]uint32, sets)
}

// node indexing: root at 1, children of n at 2n and 2n+1; bit for node n
// stored at position n-1. Leaf for way w is node ways+w.

func (p *PLRU) touch(set, way int) {
	t := p.tree[set]
	node := p.ways + way
	for node > 1 {
		parent := node >> 1
		bit := uint32(1) << (parent - 1)
		if node&1 == 0 {
			// way is in the left subtree: point LRU right.
			t |= bit
		} else {
			t &^= bit
		}
		node = parent
	}
	p.tree[set] = t
}

// OnFill implements Policy.
func (p *PLRU) OnFill(set, way int) { p.touch(set, way) }

// OnHit implements Policy.
func (p *PLRU) OnHit(set, way int) { p.touch(set, way) }

// Promote implements Policy.
func (p *PLRU) Promote(set, way int) { p.touch(set, way) }

// OnInvalidate implements Policy: the tree is pointed toward the freed
// way so it becomes the next victim — the standard hardware behaviour
// (an empty frame should be refilled before live data is evicted).
func (p *PLRU) OnInvalidate(set, way int) {
	t := p.tree[set]
	node := p.ways + way
	for node > 1 {
		parent := node >> 1
		bit := uint32(1) << (parent - 1)
		if node&1 == 0 {
			// way is in the left subtree: point the victim walk left.
			t &^= bit
		} else {
			t |= bit
		}
		node = parent
	}
	p.tree[set] = t
}

// Victim implements Policy: follow the tree bits from the root.
func (p *PLRU) Victim(set int) int {
	t := p.tree[set]
	node := 1
	for node < p.ways {
		bit := (t >> (node - 1)) & 1
		node = node<<1 | int(bit)
	}
	return node - p.ways
}

// AtStackEnd implements Policy: way is the tree's current victim.
func (p *PLRU) AtStackEnd(set, way int) bool { return p.Victim(set) == way }

// HitPosition implements Policy. pLRU has no total order; the
// approximation treats each tree level's bit as one binary digit of the
// position: a way whose entire path agrees with the victim pointer is at
// the eviction end (ways-1); a way just touched is at 0.
func (p *PLRU) HitPosition(set, way int) int {
	t := p.tree[set]
	pos := 0
	node := 1
	for level := 0; level < p.levels; level++ {
		bit := (t >> (node - 1)) & 1
		// Which direction does way lie from this node?
		dir := (way >> (p.levels - 1 - level)) & 1
		pos <<= 1
		if int(bit) == dir {
			pos |= 1
		}
		node = node<<1 | dir
	}
	return pos
}
