package replacement

// LRU is true least-recently-used replacement: a per-block timestamp
// records the last touch; the victim is the oldest block.
type LRU struct {
	ways  int
	age   []uint64 // sets*ways timestamps
	clock uint64
}

// NewLRU returns an LRU policy; call Reset before use.
func NewLRU() *LRU { return &LRU{} }

// Name implements Policy.
func (p *LRU) Name() string { return "lru" }

// Reset implements Policy.
func (p *LRU) Reset(sets, ways int) {
	p.ways = ways
	p.age = make([]uint64, sets*ways)
	p.clock = 1
}

func (p *LRU) touch(set, way int) {
	p.clock++
	p.age[set*p.ways+way] = p.clock
}

// OnFill implements Policy.
func (p *LRU) OnFill(set, way int) { p.touch(set, way) }

// OnHit implements Policy.
func (p *LRU) OnHit(set, way int) { p.touch(set, way) }

// Promote implements Policy.
func (p *LRU) Promote(set, way int) { p.touch(set, way) }

// OnInvalidate implements Policy. The slot keeps its age; the cache
// prefers invalid ways before asking for a victim, so stale ages on
// invalid slots are harmless.
func (p *LRU) OnInvalidate(set, way int) {}

// Victim implements Policy: the way with the oldest timestamp.
func (p *LRU) Victim(set int) int {
	base := set * p.ways
	ages := p.age[base : base+p.ways]
	best, bestAge := 0, ages[0]
	for w, a := range ages[1:] {
		if a < bestAge {
			best, bestAge = w+1, a
		}
	}
	return best
}

// AtStackEnd implements Policy: true for the oldest way. Touched ways
// have unique ages (the clock is monotonic), so a strict compare excludes
// way itself and ties between never-touched (age 0) ways resolve the same
// as an explicit self-skip would.
func (p *LRU) AtStackEnd(set, way int) bool {
	base := set * p.ways
	a := p.age[base+way]
	for _, x := range p.age[base : base+p.ways] {
		if x < a {
			return false
		}
	}
	return true
}

// HitPosition implements Policy: the number of ways younger than way. The
// strict compare never counts way itself (see AtStackEnd).
func (p *LRU) HitPosition(set, way int) int {
	base := set * p.ways
	a := p.age[base+way]
	pos := 0
	for _, x := range p.age[base : base+p.ways] {
		if x > a {
			pos++
		}
	}
	return pos
}

// HitPositionTouch is HitPosition immediately followed by OnHit, fused
// into one pass so the demand-hit path pays a single dynamic call and a
// single walk of the set's ages.
func (p *LRU) HitPositionTouch(set, way int) int {
	base := set * p.ways
	ages := p.age[base : base+p.ways]
	a := ages[way]
	pos := 0
	for _, x := range ages {
		if x > a {
			pos++
		}
	}
	p.clock++
	ages[way] = p.clock
	return pos
}
