package replacement

// LRU is true least-recently-used replacement: a per-block timestamp
// records the last touch; the victim is the oldest block.
type LRU struct {
	ways  int
	age   []uint64 // sets*ways timestamps
	clock uint64
}

// NewLRU returns an LRU policy; call Reset before use.
func NewLRU() *LRU { return &LRU{} }

// Name implements Policy.
func (p *LRU) Name() string { return "lru" }

// Reset implements Policy.
func (p *LRU) Reset(sets, ways int) {
	p.ways = ways
	p.age = make([]uint64, sets*ways)
	p.clock = 1
}

func (p *LRU) touch(set, way int) {
	p.clock++
	p.age[set*p.ways+way] = p.clock
}

// OnFill implements Policy.
func (p *LRU) OnFill(set, way int) { p.touch(set, way) }

// OnHit implements Policy.
func (p *LRU) OnHit(set, way int) { p.touch(set, way) }

// Promote implements Policy.
func (p *LRU) Promote(set, way int) { p.touch(set, way) }

// OnInvalidate implements Policy. The slot keeps its age; the cache
// prefers invalid ways before asking for a victim, so stale ages on
// invalid slots are harmless.
func (p *LRU) OnInvalidate(set, way int) {}

// Victim implements Policy: the way with the oldest timestamp.
func (p *LRU) Victim(set int) int {
	base := set * p.ways
	best, bestAge := 0, p.age[base]
	for w := 1; w < p.ways; w++ {
		if a := p.age[base+w]; a < bestAge {
			best, bestAge = w, a
		}
	}
	return best
}

// AtStackEnd implements Policy: true for the oldest way.
func (p *LRU) AtStackEnd(set, way int) bool {
	base := set * p.ways
	a := p.age[base+way]
	for w := 0; w < p.ways; w++ {
		if w != way && p.age[base+w] < a {
			return false
		}
	}
	return true
}

// HitPosition implements Policy: the number of ways younger than way.
func (p *LRU) HitPosition(set, way int) int {
	base := set * p.ways
	a := p.age[base+way]
	pos := 0
	for w := 0; w < p.ways; w++ {
		if w != way && p.age[base+w] > a {
			pos++
		}
	}
	return pos
}
