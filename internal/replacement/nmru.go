package replacement

import "repro/internal/rng"

// NMRU is not-most-recently-used replacement: it protects only the single
// most recently touched block per set and victimises a uniformly random
// other way. The paper groups it with "recency" policies (sensitive to
// contention frequency rather than data movement).
type NMRU struct {
	ways int
	mru  []int32
	rng  rng.PCG
}

// NewNMRU returns an nMRU policy whose random victim stream is seeded by
// seed; call Reset before use.
func NewNMRU(seed uint64) *NMRU {
	p := &NMRU{}
	p.rng.Seed(seed, 0xda3e39cb94b95bdb)
	return p
}

// Name implements Policy.
func (p *NMRU) Name() string { return "nmru" }

// Reset implements Policy.
func (p *NMRU) Reset(sets, ways int) {
	p.ways = ways
	p.mru = make([]int32, sets)
	for i := range p.mru {
		p.mru[i] = -1
	}
}

// OnFill implements Policy.
func (p *NMRU) OnFill(set, way int) { p.mru[set] = int32(way) }

// OnHit implements Policy.
func (p *NMRU) OnHit(set, way int) { p.mru[set] = int32(way) }

// Promote implements Policy.
func (p *NMRU) Promote(set, way int) { p.mru[set] = int32(way) }

// OnInvalidate implements Policy: an invalidated MRU block loses its
// protection.
func (p *NMRU) OnInvalidate(set, way int) {
	if p.mru[set] == int32(way) {
		p.mru[set] = -1
	}
}

// Victim implements Policy: a uniformly random non-MRU way.
func (p *NMRU) Victim(set int) int {
	mru := int(p.mru[set])
	if p.ways == 1 {
		return 0
	}
	w := p.rng.IntN(p.ways - 1)
	if w >= mru && mru >= 0 {
		w++
	}
	return w
}

// AtStackEnd implements Policy: every non-MRU block is a victim
// candidate, so PInTE may inject on any of them.
func (p *NMRU) AtStackEnd(set, way int) bool { return int(p.mru[set]) != way }

// HitPosition implements Policy. nMRU orders only {MRU, everything else};
// non-MRU hits report the middle of the stack as their position.
func (p *NMRU) HitPosition(set, way int) int {
	if int(p.mru[set]) == way {
		return 0
	}
	return p.ways / 2
}
