package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// CampaignState is a campaign's durable lifecycle state.
type CampaignState string

const (
	// StateActive marks a campaign the scheduler owns — queued,
	// running, or checkpointed by a drain/crash. A restarted server
	// resumes every active campaign from its journal.
	StateActive CampaignState = "active"
	// StateDone marks a campaign whose every run completed; its journal
	// is auto-compacted.
	StateDone CampaignState = "done"
	// StateFailed marks a campaign that finished with hard failures.
	StateFailed CampaignState = "failed"
	// StateCanceled marks a campaign canceled by its owner or killed by
	// its deadline.
	StateCanceled CampaignState = "canceled"
)

// CampaignMeta is one campaign's manifest record: everything a
// restarted server needs to rebuild the identical run list (the
// normalized spec) and account it (tenant, state, sizes).
type CampaignMeta struct {
	ID      string        `json:"id"`
	Tenant  string        `json:"tenant"`
	Spec    SweepSpec     `json:"spec"`
	State   CampaignState `json:"state"`
	Runs    int           `json:"runs"`
	Weight  int           `json:"weight"`
	Created time.Time     `json:"created"`
	// Finished is set when the campaign leaves StateActive; Error
	// summarises a failed campaign.
	Finished time.Time `json:"finished,omitempty"`
	Error    string    `json:"error,omitempty"`
	// Degraded records an admission under load shedding and the
	// fan-group cap it ran with, so a resume keeps the same grouping.
	Degraded    bool `json:"degraded,omitempty"`
	FanMaxGroup int  `json:"fan_max_group,omitempty"`
}

// manifest is the durable index of every campaign the service has
// accepted, serialized as one JSON document.
type manifest struct {
	Campaigns map[string]*CampaignMeta `json:"campaigns"`
}

// Store is the service's durable state: a manifest.json plus one resume
// journal per campaign under journals/. Manifest writes are atomic
// (temp + fsync + rename + directory sync) and roll back in memory on
// failure, so the in-memory view never claims durability it doesn't
// have — a crash at any instant leaves either the old manifest or the
// new one.
type Store struct {
	mu  sync.Mutex
	dir string
	m   manifest
}

// OpenStore opens (creating if needed) the durable store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "journals"), 0o755); err != nil {
		return nil, err
	}
	st := &Store{dir: dir, m: manifest{Campaigns: make(map[string]*CampaignMeta)}}
	b, err := os.ReadFile(st.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(b, &st.m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", st.manifestPath(), err)
	}
	if st.m.Campaigns == nil {
		st.m.Campaigns = make(map[string]*CampaignMeta)
	}
	return st, nil
}

func (st *Store) manifestPath() string { return filepath.Join(st.dir, "manifest.json") }

// JournalPath is where campaign id checkpoints its completed runs.
func (st *Store) JournalPath(id string) string {
	return filepath.Join(st.dir, "journals", id+".journal")
}

// NewID mints a fresh campaign ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // the platform CSPRNG failing is not recoverable
	}
	return "c-" + hex.EncodeToString(b[:])
}

// saveLocked persists the manifest atomically. The caller holds st.mu
// and must roll back its in-memory mutation if this fails.
func (st *Store) saveLocked() error {
	if err := fault.Err(fault.SiteServerManifest); err != nil {
		telemetry.Server.ManifestErrors.Add(1)
		return err
	}
	b, err := json.MarshalIndent(&st.m, "", "  ")
	if err != nil {
		return err
	}
	tmp := st.manifestPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		telemetry.Server.ManifestErrors.Add(1)
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		telemetry.Server.ManifestErrors.Add(1)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		telemetry.Server.ManifestErrors.Add(1)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		telemetry.Server.ManifestErrors.Add(1)
		return err
	}
	if err := os.Rename(tmp, st.manifestPath()); err != nil {
		os.Remove(tmp)
		telemetry.Server.ManifestErrors.Add(1)
		return err
	}
	if dir, err := os.Open(st.dir); err == nil {
		dir.Sync() //nolint:errcheck // advisory: data is already safe in the file
		dir.Close()
	}
	return nil
}

// Put inserts or replaces a campaign's manifest record durably. On a
// failed write the in-memory manifest is rolled back to the prior
// record, so a later retry or read sees the last state that actually
// reached disk.
func (st *Store) Put(meta CampaignMeta) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	old, had := st.m.Campaigns[meta.ID]
	cp := meta
	st.m.Campaigns[meta.ID] = &cp
	if err := st.saveLocked(); err != nil {
		if had {
			st.m.Campaigns[meta.ID] = old
		} else {
			delete(st.m.Campaigns, meta.ID)
		}
		return err
	}
	return nil
}

// SetState transitions a campaign's durable state (with rollback on a
// failed write) and stamps Finished for terminal states.
func (st *Store) SetState(id string, state CampaignState, errMsg string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	cur, ok := st.m.Campaigns[id]
	if !ok {
		return fmt.Errorf("campaign %s not in manifest", id)
	}
	old := *cur
	cur.State = state
	cur.Error = errMsg
	if state != StateActive {
		cur.Finished = time.Now().UTC()
	} else {
		cur.Finished = time.Time{}
	}
	if err := st.saveLocked(); err != nil {
		*cur = old
		return err
	}
	return nil
}

// Delete removes a campaign's manifest record and journal. Only
// finished campaigns should be deleted; the caller enforces that.
func (st *Store) Delete(id string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	old, had := st.m.Campaigns[id]
	if !had {
		return nil
	}
	delete(st.m.Campaigns, id)
	if err := st.saveLocked(); err != nil {
		st.m.Campaigns[id] = old
		return err
	}
	if err := os.Remove(st.JournalPath(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// Get returns a copy of one campaign's record.
func (st *Store) Get(id string) (CampaignMeta, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	m, ok := st.m.Campaigns[id]
	if !ok {
		return CampaignMeta{}, false
	}
	return *m, true
}

// Campaigns returns copies of every record, oldest first (ID tiebreak).
func (st *Store) Campaigns() []CampaignMeta {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]CampaignMeta, 0, len(st.m.Campaigns))
	for _, m := range st.m.Campaigns {
		out = append(out, *m)
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].Created.Equal(out[b].Created) {
			return out[a].Created.Before(out[b].Created)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// TenantJournalBytes sums a tenant's durable-journal footprint for the
// quota check.
func (st *Store) TenantJournalBytes(tenant string) int64 {
	st.mu.Lock()
	ids := make([]string, 0, len(st.m.Campaigns))
	for id, m := range st.m.Campaigns {
		if m.Tenant == tenant {
			ids = append(ids, id)
		}
	}
	st.mu.Unlock()
	var total int64
	for _, id := range ids {
		if fi, err := os.Stat(st.JournalPath(id)); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// CompactCampaign compacts one campaign's journal in place (atomic
// rewrite), counting the auto-compaction. A missing journal — a
// campaign that never completed a run — is not an error.
func (st *Store) CompactCampaign(id string) (bool, error) {
	_, err := runner.CompactJournal(st.JournalPath(id))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err == nil {
		telemetry.Server.AutoCompactions.Add(1)
	}
	return err == nil, err
}

// CompactFinished compacts every finished campaign's journal — the
// restart half of auto-compaction: a server that crashed after a
// campaign completed but before its compaction ran picks the work up
// here. Returns how many journals were compacted; per-journal failures
// are reported through logf and skipped (a journal that cannot be
// compacted still loads fine — compaction is an optimisation, not a
// correctness requirement).
func (st *Store) CompactFinished(logf func(format string, args ...any)) int {
	n := 0
	for _, m := range st.Campaigns() {
		if m.State == StateActive {
			continue
		}
		ok, err := st.CompactCampaign(m.ID)
		if err != nil {
			if logf != nil {
				logf("compacting journal of finished campaign %s: %v", m.ID, err)
			}
			continue
		}
		if ok {
			n++
		}
	}
	return n
}
