package server

import (
	"sort"
	"testing"

	rstore "repro/internal/store"
	"repro/internal/telemetry"
)

// openTestStore opens a result store in a temp dir under a test
// fingerprint and hands it to the caller's Config.
func openTestStore(t *testing.T) *rstore.Store {
	t.Helper()
	st, err := rstore.Open(rstore.Options{Dir: t.TempDir(), Fingerprint: "sim-test", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// byIndex sorts a result stream into canonical config order and returns
// the per-index result fingerprints.
func byIndex(t *testing.T, events []resultEvent) []string {
	t.Helper()
	sort.Slice(events, func(a, b int) bool { return events[a].Index < events[b].Index })
	out := make([]string, len(events))
	for i, ev := range events {
		if ev.Index != i {
			t.Fatalf("stream has gaps: event %d carries index %d", i, ev.Index)
		}
		out[i] = fingerprint(t, ev.Result)
	}
	return out
}

// TestServeDuplicateTenantsComputeOnce is the duplicate-submission
// regression: two tenants submitting the identical campaign must not
// both burn pool workers on the same configs — the store's single-flight
// collapses the duplicates — while both result streams still receive
// the full, byte-identical result set and both campaigns finish done.
// The store put count is the proof of single execution: one Put per
// distinct config, regardless of how the two campaigns raced.
func TestServeDuplicateTenantsComputeOnce(t *testing.T) {
	st := openTestStore(t)
	_, ts := newTestServer(t, Config{Workers: 2, ResultStore: st})

	spec := tinySpec(0.05, 0.3, 0.7) // 4 distinct configs (3 points + baseline)
	before := telemetry.StoreSnapshot()
	a := submitOK(t, ts, "alice", spec)
	b := submitOK(t, ts, "bob", spec)
	waitState(t, ts, a.ID, StateDone)
	waitState(t, ts, b.ID, StateDone)
	after := telemetry.StoreSnapshot()

	evA, finalA := streamResults(t, ts, a.ID)
	evB, finalB := streamResults(t, ts, b.ID)
	if finalA == nil || finalB == nil {
		t.Fatal("a stream ended without its final status line")
	}
	fpA, fpB := byIndex(t, evA), byIndex(t, evB)
	if len(fpA) != len(fpB) || len(fpA) == 0 {
		t.Fatalf("stream sizes diverge: %d vs %d", len(fpA), len(fpB))
	}
	for i := range fpA {
		if fpA[i] != fpB[i] {
			t.Fatalf("tenants diverged at run %d:\nalice %s\nbob   %s", i, fpA[i], fpB[i])
		}
	}
	// Each distinct config was computed (and therefore stored) exactly
	// once across both tenants.
	if d := after["puts"] - before["puts"]; d != int64(len(fpA)) {
		t.Fatalf("puts delta = %d, want %d (each config computed once)", d, len(fpA))
	}
	if d := (after["hits"] - before["hits"]) + (after["singleflight_shared"] - before["singleflight_shared"]); d != int64(len(fpA)) {
		t.Fatalf("hit+shared delta = %d, want %d (the duplicate campaign served entirely without compute)", d, len(fpA))
	}
}

// TestServeStoreAcrossRestart: a campaign resubmitted to a fresh server
// process sharing the same store directory is served from the store —
// zero new computations — with a byte-identical stream.
func TestServeStoreAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := rstore.Open(rstore.Options{Dir: dir, Fingerprint: "sim-test"})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, ResultStore: st})
	spec := tinySpec(0.1, 0.5)
	first := submitOK(t, ts, "alice", spec)
	waitState(t, ts, first.ID, StateDone)
	evFirst, _ := streamResults(t, ts, first.ID)
	ts.Close()
	st.Close()

	st2, err := rstore.Open(rstore.Options{Dir: dir, Fingerprint: "sim-test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	_, ts2 := newTestServer(t, Config{Workers: 2, ResultStore: st2})
	before := telemetry.StoreSnapshot()
	second := submitOK(t, ts2, "carol", spec)
	waitState(t, ts2, second.ID, StateDone)
	after := telemetry.StoreSnapshot()
	evSecond, _ := streamResults(t, ts2, second.ID)

	fpFirst, fpSecond := byIndex(t, evFirst), byIndex(t, evSecond)
	if len(fpFirst) != len(fpSecond) {
		t.Fatalf("stream sizes diverge: %d vs %d", len(fpFirst), len(fpSecond))
	}
	for i := range fpFirst {
		if fpFirst[i] != fpSecond[i] {
			t.Fatalf("restarted service diverged at run %d", i)
		}
	}
	if d := after["hits"] - before["hits"]; d != int64(len(fpFirst)) {
		t.Fatalf("hits delta = %d, want %d (everything from the store)", d, len(fpFirst))
	}
	if d := after["puts"] - before["puts"]; d != 0 {
		t.Fatalf("puts delta = %d, want 0 (nothing recomputed)", d)
	}
}
