package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// tinySpec is a campaign small enough for a unit test: one workload,
// len(points)+1 runs of 50k instructions each.
func tinySpec(points ...float64) SweepSpec {
	if len(points) == 0 {
		points = []float64{0.05, 0.3}
	}
	return SweepSpec{
		Workloads: []string{"453.povray"}, Points: points,
		WarmupInstrs: 20_000, ROIInstrs: 50_000, Seed: 1,
	}
}

// fingerprint is a result's identity with the one non-deterministic
// field (wall time) removed.
func fingerprint(t *testing.T, r *sim.Result) string {
	t.Helper()
	cp := *r
	cp.WallTime = 0
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// submit POSTs a spec and returns the response; the caller checks the
// status code.
func submit(t *testing.T, ts *httptest.Server, tenant string, spec SweepSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/campaigns", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// submitOK submits and decodes a 201 response.
func submitOK(t *testing.T, ts *httptest.Server, tenant string, spec SweepSpec) campaignStatus {
	t.Helper()
	resp := submit(t, ts, tenant, spec)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		t.Fatalf("submit: status %d: %s", resp.StatusCode, buf.String())
	}
	var st campaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// getStatus fetches one campaign's status.
func getStatus(t *testing.T, ts *httptest.Server, id string) (campaignStatus, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st campaignStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

// waitState polls until the campaign reaches want or the deadline hits.
func waitState(t *testing.T, ts *httptest.Server, id string, want CampaignState) campaignStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, code := getStatus(t, ts, id)
		if code == http.StatusOK && st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s: state %q (http %d), want %q", id, st.State, code, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// streamResults reads a campaign's NDJSON result stream to the end and
// returns the events plus the final status line (nil if the stream was
// cut before it).
func streamResults(t *testing.T, ts *httptest.Server, id string) ([]resultEvent, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d", resp.StatusCode)
	}
	var events []resultEvent
	var final map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe map[string]any
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		if _, done := probe["done"]; done {
			final = probe
			break
		}
		var ev resultEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	return events, final
}

// TestServeCampaignLifecycle walks the happy path end to end: submit,
// stream live results, finish done, auto-compact, and replay the
// complete stream from the journal on reconnect with identical results.
func TestServeCampaignLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	compactions := telemetry.Server.AutoCompactions.Load()

	spec := tinySpec()
	st := submitOK(t, ts, "alice", spec)
	if st.Runs != spec.Runs() || st.Runs != 3 {
		t.Fatalf("admitted %d runs, want 3", st.Runs)
	}

	live, final := streamResults(t, ts, st.ID)
	if len(live) != 3 {
		t.Fatalf("live stream delivered %d results, want 3", len(live))
	}
	if final == nil || final["state"] != string(StateDone) {
		t.Fatalf("live stream final line %v, want done/%s", final, StateDone)
	}
	waitState(t, ts, st.ID, StateDone)
	if got := telemetry.Server.AutoCompactions.Load(); got == compactions {
		t.Error("clean completion did not auto-compact the journal")
	}

	// Reconnect after completion: the stream replays from the journal.
	replay, final2 := streamResults(t, ts, st.ID)
	if len(replay) != 3 || final2 == nil || final2["state"] != string(StateDone) {
		t.Fatalf("replay stream: %d results, final %v", len(replay), final2)
	}
	liveByKey := make(map[string]string)
	for _, ev := range live {
		liveByKey[ev.Key] = fingerprint(t, ev.Result)
	}
	for _, ev := range replay {
		if !ev.FromJournal {
			t.Errorf("replayed result %s not marked from_journal", ev.Key)
		}
		if liveByKey[ev.Key] != fingerprint(t, ev.Result) {
			t.Errorf("result %s diverged between live stream and journal replay", ev.Key)
		}
	}
}

// TestServeSampledCampaign runs a campaign submitted with
// "sample": true end to end: the profiling pre-pass and every run flow
// through the shared pool, each streamed result carries its sampling
// stats and error bounds, and the journal replay preserves them.
func TestServeSampledCampaign(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	spec := tinySpec()
	spec.Sample = true
	st := submitOK(t, ts, "alice", spec)

	live, final := streamResults(t, ts, st.ID)
	if len(live) != 3 || final == nil || final["state"] != string(StateDone) {
		t.Fatalf("sampled campaign streamed %d results, final %v", len(live), final)
	}
	for _, ev := range live {
		if ev.Result.Sampled == nil {
			t.Errorf("result %s has no sampling stats", ev.Key)
			continue
		}
		if ev.Result.Sampled.InstrsSkipped == 0 {
			t.Errorf("result %s skipped nothing — sampling did not engage", ev.Key)
		}
	}
	waitState(t, ts, st.ID, StateDone)
	replay, _ := streamResults(t, ts, st.ID)
	for _, ev := range replay {
		if ev.Result.Sampled == nil {
			t.Errorf("journal replay of %s lost its sampling stats", ev.Key)
		}
	}
}

// wedge occupies every pool worker behind a gate, so a test can submit
// campaigns and assert admission and queue state without racing their
// execution. The returned release function frees the workers; it is
// also registered as a cleanup so a failing test cannot deadlock
// shutdown.
func wedge(t *testing.T, s *Server) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	started := make(chan struct{}, s.pool.Workers())
	q := s.pool.NewQueue("test-wedge", 1)
	for i := 0; i < s.pool.Workers(); i++ {
		q.Submit(func(shed bool) {
			if !shed {
				started <- struct{}{}
				<-gate
			}
		})
	}
	for i := 0; i < s.pool.Workers(); i++ {
		<-started
	}
	var once sync.Once
	release = func() {
		once.Do(func() {
			close(gate)
			q.Close()
		})
	}
	t.Cleanup(release)
	return release
}

// waitQueued polls until at least n tasks are queued on the pool.
func waitQueued(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for s.pool.Queued() < n {
		if time.Now().After(deadline) {
			t.Fatalf("pool queued %d tasks, want %d", s.pool.Queued(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeFairCompletion is the fair-scheduling smoke: on a one-worker
// pool, a small campaign submitted after a 3x larger one still finishes
// first, because stride scheduling interleaves their runs instead of
// draining the first queue FIFO.
func TestServeFairCompletion(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, NoFanout: true})
	release := wedge(t, s)

	big := submitOK(t, ts, "alice", tinySpec(0.05, 0.1, 0.3, 0.5, 0.7)) // 6 runs
	small := submitOK(t, ts, "bob", tinySpec(0.5))                      // 2 runs
	waitQueued(t, s, 8)                                                 // both campaigns fully enqueued
	release()

	bigDone := waitState(t, ts, big.ID, StateDone)
	smallDone := waitState(t, ts, small.ID, StateDone)
	if !smallDone.Finished.Before(bigDone.Finished) {
		t.Fatalf("small campaign finished at %s, after the big one at %s: scheduling is not fair",
			smallDone.Finished.Format(time.RFC3339Nano), bigDone.Finished.Format(time.RFC3339Nano))
	}
}

// TestServeQuotaQueuedRuns checks the per-tenant queue quota: an
// over-quota submission is refused 429 with a Retry-After estimate
// while another tenant is still admitted.
func TestServeQuotaQueuedRuns(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Quotas:  Quotas{MaxQueuedRuns: 15},
	})
	release := wedge(t, s) // nothing completes until the checks are done

	first := submitOK(t, ts, "alice", tinySpec(0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95)) // 12 runs

	resp := submit(t, ts, "alice", tinySpec(0.05, 0.1, 0.3, 0.5, 0.7)) // 6 more: over 15
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submission: status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer of seconds", resp.Header.Get("Retry-After"))
	}

	// The quota is per tenant: bob is unaffected by alice's backlog.
	other := submitOK(t, ts, "bob", tinySpec(0.5))
	release()
	waitState(t, ts, other.ID, StateDone)
	waitState(t, ts, first.ID, StateDone)
}

// TestServeQuotaJournalBytes checks the durable-footprint quota: a
// tenant whose stored journals exceed the budget is refused until they
// are deleted.
func TestServeQuotaJournalBytes(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 2,
		Quotas:  Quotas{JournalBytes: 1},
	})
	// Seed a finished campaign with a journal on disk for alice.
	meta := CampaignMeta{
		ID: NewID(), Tenant: "alice", Spec: tinySpec().normalized(),
		State: StateDone, Runs: 3, Weight: 1, Created: time.Now().UTC(),
	}
	if err := s.Store().Put(meta); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Store().JournalPath(meta.ID), []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	resp := submit(t, ts, "alice", tinySpec(0.5))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submission: status %d, want 429", resp.StatusCode)
	}

	// Deleting the finished campaign frees the budget.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/campaigns/"+meta.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete finished campaign: status %d, want 204", dresp.StatusCode)
	}
	ok := submitOK(t, ts, "alice", tinySpec(0.5))
	waitState(t, ts, ok.ID, StateDone)
}

// TestServeDegradedAdmission checks load shedding degrades before it
// refuses: over the service-wide backlog line, a campaign is still
// admitted but runs with capped fan-out groups.
func TestServeDegradedAdmission(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 2,
		Quotas:  Quotas{DegradeQueuedRuns: 1, DegradedMaxGroup: 2},
	})
	degraded := telemetry.Server.DegradedAdmissions.Load()

	st := submitOK(t, ts, "alice", tinySpec(0.05, 0.3, 0.7)) // 4 runs > 1
	if !st.Degraded || st.FanMaxGroup != 2 {
		t.Fatalf("admission degraded=%v fanMaxGroup=%d, want degraded with cap 2", st.Degraded, st.FanMaxGroup)
	}
	if got := telemetry.Server.DegradedAdmissions.Load(); got != degraded+1 {
		t.Errorf("DegradedAdmissions %d, want %d", got, degraded+1)
	}
	waitState(t, ts, st.ID, StateDone)
	events, _ := streamResults(t, ts, st.ID)
	if len(events) != 4 {
		t.Fatalf("degraded campaign delivered %d results, want all 4", len(events))
	}
}

// TestServeDrainCheckpointResume checks the graceful-drain contract and
// the restart half of resume, in process: a drain stops admission
// (503), sheds the queued runs, leaves the campaign active in the
// manifest, and a fresh server over the same store finishes exactly the
// shed remainder.
func TestServeDrainCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	// NoFanout gives one pool task per run, so the queue length below is
	// the run count.
	s, ts := newTestServer(t, Config{Workers: 1, DataDir: dir, NoFanout: true})
	release := wedge(t, s) // hold the worker so the drain sheds a full queue

	st := submitOK(t, ts, "alice", tinySpec(0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95)) // 8 runs
	waitQueued(t, s, 8)

	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(dctx) }()
	for s.pool.Queued() > 0 { // shedding is synchronous inside Drain
		time.Sleep(2 * time.Millisecond)
	}

	resp := submit(t, ts, "alice", tinySpec(0.5))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: status %d, want 503", resp.StatusCode)
	}

	release() // the in-flight task finishes; Drain completes
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	meta, ok := s.Store().Get(st.ID)
	if !ok {
		t.Fatal("campaign vanished from the manifest")
	}
	if meta.State != StateActive {
		t.Fatalf("drained campaign state %q, want it checkpointed active for resume", meta.State)
	}
	s.Close()
	ts.Close()

	s2, ts2 := newTestServer(t, Config{Workers: 2, DataDir: dir})
	if n := s2.Resume(); n != 1 {
		t.Fatalf("resumed %d campaigns, want 1", n)
	}
	waitState(t, ts2, st.ID, StateDone)
	events, final := streamResults(t, ts2, st.ID)
	if len(events) != 8 || final == nil {
		t.Fatalf("resumed campaign delivered %d results (final %v), want all 8", len(events), final)
	}
}

// TestServeCancel checks DELETE on a live campaign cancels it.
func TestServeCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release := wedge(t, s)
	st := submitOK(t, ts, "alice", tinySpec(0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95))

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/campaigns/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d, want 202", resp.StatusCode)
	}
	release() // let the queued tasks observe the canceled context
	got := waitState(t, ts, st.ID, StateCanceled)
	if !strings.Contains(got.Error, "canceled by owner") {
		t.Errorf("canceled campaign error %q", got.Error)
	}
}

// TestServeValidation checks malformed submissions and lookups fail
// with the right statuses before consuming any capacity.
func TestServeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	for name, spec := range map[string]SweepSpec{
		"no workloads":     {},
		"unknown workload": {Workloads: []string{"no.such.trace"}},
		"bad point":        {Workloads: []string{"453.povray"}, Points: []float64{1.5}},
	} {
		resp := submit(t, ts, "alice", spec)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if _, code := getStatus(t, ts, "c-nonexistent"); code != http.StatusNotFound {
		t.Errorf("unknown campaign: status %d, want 404", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil || health["status"] != "ok" {
		t.Errorf("healthz: %v (%v)", health, err)
	}
}

// TestSweepSpecConfigsMatchCLI pins the spec expansion to pintesweep's
// canonical order: baselines first, then the workload-major grid.
func TestSweepSpecConfigsMatchCLI(t *testing.T) {
	spec := SweepSpec{
		Workloads: []string{"453.povray", "450.soplex"}, Points: []float64{0.1, 0.5},
		WarmupInstrs: 1000, ROIInstrs: 2000, Seed: 7,
	}
	cfgs := spec.Configs()
	if len(cfgs) != spec.Runs() || len(cfgs) != 6 {
		t.Fatalf("expanded to %d configs, want 6", len(cfgs))
	}
	for i, want := range []struct {
		mode sim.Mode
		wl   string
		p    float64
	}{
		{sim.Isolation, "453.povray", 0},
		{sim.Isolation, "450.soplex", 0},
		{sim.PInTE, "453.povray", 0.1},
		{sim.PInTE, "453.povray", 0.5},
		{sim.PInTE, "450.soplex", 0.1},
		{sim.PInTE, "450.soplex", 0.5},
	} {
		c := cfgs[i]
		if c.Mode != want.mode || c.Workload != want.wl || c.PInduce != want.p {
			t.Errorf("config %d = %s %s p=%g, want %s %s p=%g",
				i, c.Mode, c.Workload, c.PInduce, want.mode, want.wl, want.p)
		}
	}
}

// TestQuotaDecide unit-tests the pure admission policy.
func TestQuotaDecide(t *testing.T) {
	q := Quotas{MaxQueuedRuns: 10, JournalBytes: 1000, DegradeQueuedRuns: 20, DegradedMaxGroup: 3}

	if d := decide(q, load{}, 5); !d.admit || d.degraded {
		t.Errorf("idle service: %+v, want plain admit", d)
	}
	if d := decide(q, load{tenantQueued: 8, runsPerSec: 2}, 5); d.admit || d.status != 429 || d.retryAfter < time.Second {
		t.Errorf("over queue quota: %+v, want 429 with Retry-After", d)
	}
	if d := decide(q, load{tenantJournalBytes: 2000}, 5); d.admit || d.status != 429 {
		t.Errorf("over journal budget: %+v, want 429", d)
	}
	if d := decide(q, load{totalQueued: 18}, 5); !d.admit || !d.degraded || d.fanMaxGroup != 3 {
		t.Errorf("over degrade line: %+v, want degraded admit with cap 3", d)
	}
	if d := decide(Quotas{}, load{tenantQueued: 1 << 40}, 1<<20); !d.admit || d.degraded {
		t.Errorf("no quotas: %+v, want unconditional admit", d)
	}
	if got := retryEstimate(100, 10); got != 10*time.Second {
		t.Errorf("retryEstimate(100, 10) = %s, want 10s", got)
	}
	if got := retryEstimate(100, 0); got != 5*time.Second {
		t.Errorf("retryEstimate with no rate = %s, want the 5s fallback", got)
	}
}
