// Package server is the pinted campaign service: an HTTP/JSON front
// end that accepts sweep specifications (the same normalized sim.Config
// campaigns pintesweep builds), runs them on one shared bounded worker
// pool under weighted fair scheduling and per-tenant quotas, streams
// per-run results, and survives crashes — every campaign checkpoints to
// a durable per-campaign journal, and a restarted server reloads its
// manifest and resumes every unfinished campaign from where it stopped.
package server

import (
	"fmt"
	"strings"

	pinte "repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SweepSpec is the wire form of a campaign submission: which workloads
// to sweep, at which P_Induce points, under which budgets. Zero fields
// take the same defaults as pintesweep's flags, so the smallest valid
// submission is {"workloads": ["450.soplex"]}.
type SweepSpec struct {
	// Workloads names the trace presets to sweep; the single entry
	// "all" expands to every preset.
	Workloads []string `json:"workloads"`
	// Points are the P_Induce values; empty means the paper's default
	// sweep (pinte.DefaultSweep).
	Points []float64 `json:"points,omitempty"`
	// WarmupInstrs and ROIInstrs bound each run; 0 means the
	// pintesweep defaults (200k warm-up, 1M ROI).
	WarmupInstrs uint64 `json:"warmup_instrs,omitempty"`
	ROIInstrs    uint64 `json:"roi_instrs,omitempty"`
	// Seed is the campaign's base random seed; 0 means 1.
	Seed uint64 `json:"seed,omitempty"`
	// Weight is the campaign's fair-share weight on the shared pool
	// (minimum and default 1): a weight-2 campaign receives twice the
	// worker dispatches of a weight-1 competitor under contention.
	Weight int `json:"weight,omitempty"`
	// DeadlineSeconds bounds the whole campaign's wall-clock time; 0
	// means no campaign deadline. An expired deadline cancels the
	// campaign's remaining runs (completed runs stay journaled).
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	// Sample runs the campaign under phase-aware representative
	// sampling (runner.Options.Sample): one profiling pre-pass per
	// workload, then only the clustered representative windows are
	// simulated per run, with extrapolation error bounds reported in
	// each result's "sampled" block. Approximate by design; results are
	// not byte-comparable with an unsampled campaign, so do not toggle
	// it across resubmissions of the same campaign ID.
	Sample bool `json:"sample,omitempty"`
}

// normalized returns the spec with every default resolved and the
// workload list expanded — the canonical form stored in the manifest,
// so a resumed campaign rebuilds byte-identical configs. Submission
// order is preserved: result indices are part of the stream contract.
func (s SweepSpec) normalized() SweepSpec {
	out := s
	if len(out.Workloads) == 1 && out.Workloads[0] == "all" {
		out.Workloads = trace.Names()
	}
	out.Workloads = append([]string(nil), out.Workloads...)
	if len(out.Points) == 0 {
		out.Points = pinte.DefaultSweep()
	}
	out.Points = append([]float64(nil), out.Points...)
	if out.WarmupInstrs == 0 {
		out.WarmupInstrs = 200_000
	}
	if out.ROIInstrs == 0 {
		out.ROIInstrs = 1_000_000
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Weight < 1 {
		out.Weight = 1
	}
	return out
}

// Validate rejects a spec the simulator could not run, so admission
// fails fast with a 400 instead of burning a worker slot on a config
// that dies with ErrBadConfig.
func (s SweepSpec) Validate() error {
	if len(s.Workloads) == 0 {
		return fmt.Errorf("spec has no workloads")
	}
	known := make(map[string]bool)
	for _, n := range trace.Names() {
		known[n] = true
	}
	if !(len(s.Workloads) == 1 && s.Workloads[0] == "all") {
		var bad []string
		for _, w := range s.Workloads {
			if !known[w] {
				bad = append(bad, w)
			}
		}
		if len(bad) > 0 {
			return fmt.Errorf("unknown workloads: %s", strings.Join(bad, ", "))
		}
	}
	for _, p := range s.Points {
		if p < 0 || p > 1 {
			return fmt.Errorf("P_Induce point %g outside [0, 1]", p)
		}
	}
	if s.DeadlineSeconds < 0 {
		return fmt.Errorf("negative deadline")
	}
	return nil
}

// Configs expands the spec into the campaign's run list in pintesweep's
// canonical order: one isolation baseline per workload first, then the
// PInTE grid — workload-major, point-minor. The order is part of the
// contract: result indices on the stream refer to it, and a resumed
// campaign must rebuild the identical list to match its journal keys.
func (s SweepSpec) Configs() []sim.Config {
	n := s.normalized()
	var cfgs []sim.Config
	for _, w := range n.Workloads {
		cfgs = append(cfgs, sim.Config{
			Workload: w, WarmupInstrs: n.WarmupInstrs, ROIInstrs: n.ROIInstrs, Seed: n.Seed,
		})
	}
	for _, w := range n.Workloads {
		for _, p := range n.Points {
			cfgs = append(cfgs, sim.Config{
				Mode: sim.PInTE, Workload: w, PInduce: p,
				WarmupInstrs: n.WarmupInstrs, ROIInstrs: n.ROIInstrs, Seed: n.Seed,
			})
		}
	}
	return cfgs
}

// Runs is the number of configs the spec expands to, computable without
// materializing them.
func (s SweepSpec) Runs() int {
	n := s.normalized()
	return len(n.Workloads) * (1 + len(n.Points))
}
