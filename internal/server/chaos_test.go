package server

import (
	"net/http"
	"testing"

	"repro/internal/fault"
	"repro/internal/telemetry"
)

// Service-layer chaos: each injected fault must produce a clean typed
// refusal or a recoverable degraded response — never a half-admitted
// campaign, a corrupt manifest, or a wrong stream.

// TestChaosServerAdmitFault injects a failure into the admission check
// itself: the submission is refused 500 (counted as a fault refusal),
// nothing is recorded, and the next submission goes through.
func TestChaosServerAdmitFault(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	if err := fault.Apply("seed=1;server.admit:every=1,limit=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	refused := telemetry.Server.RefusedFault.Load()

	resp := submit(t, ts, "alice", tinySpec(0.5))
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted admission: status %d, want 500", resp.StatusCode)
	}
	if got := telemetry.Server.RefusedFault.Load(); got != refused+1 {
		t.Errorf("RefusedFault %d, want %d", got, refused+1)
	}
	if got := len(s.Store().Campaigns()); got != 0 {
		t.Fatalf("faulted admission left %d campaigns in the manifest", got)
	}

	// The fault's limit is spent: the service has recovered.
	st := submitOK(t, ts, "alice", tinySpec(0.5))
	waitState(t, ts, st.ID, StateDone)
}

// TestChaosServerManifestFault injects a failure into the durable
// manifest write under an admission: the submission fails 500, the
// in-memory manifest rolls back (no ghost campaign), and the retry
// succeeds.
func TestChaosServerManifestFault(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	if err := fault.Apply("seed=1;server.manifest:every=1,limit=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	merrs := telemetry.Server.ManifestErrors.Load()

	resp := submit(t, ts, "alice", tinySpec(0.5))
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted manifest write: status %d, want 500", resp.StatusCode)
	}
	if got := telemetry.Server.ManifestErrors.Load(); got != merrs+1 {
		t.Errorf("ManifestErrors %d, want %d", got, merrs+1)
	}
	if got := len(s.Store().Campaigns()); got != 0 {
		t.Fatalf("failed manifest write left %d ghost campaigns", got)
	}

	st := submitOK(t, ts, "alice", tinySpec(0.5))
	waitState(t, ts, st.ID, StateDone)
	if _, ok := s.Store().Get(st.ID); !ok {
		t.Fatal("recovered submission missing from the manifest")
	}
}

// TestChaosServerStreamWriteFault injects a failure into a result
// stream write: the stream aborts mid-replay, the durable results are
// untouched, and a reconnect replays the complete set.
func TestChaosServerStreamWriteFault(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st := submitOK(t, ts, "alice", tinySpec()) // 3 runs
	waitState(t, ts, st.ID, StateDone)
	werrs := telemetry.Server.StreamWriteErrors.Load()

	// Kill the second write of the replay stream.
	if err := fault.Apply("seed=1;server.stream.write:every=1,after=1,limit=1"); err != nil {
		t.Fatal(err)
	}
	cut, final := streamResults(t, ts, st.ID)
	fault.Disable()
	if len(cut) != 1 || final != nil {
		t.Fatalf("faulted stream delivered %d results (final %v), want it cut after 1", len(cut), final)
	}
	if got := telemetry.Server.StreamWriteErrors.Load(); got != werrs+1 {
		t.Errorf("StreamWriteErrors %d, want %d", got, werrs+1)
	}

	// Reconnect: the full set replays from the journal.
	events, final2 := streamResults(t, ts, st.ID)
	if len(events) != 3 || final2 == nil {
		t.Fatalf("reconnect replayed %d results (final %v), want all 3", len(events), final2)
	}
}

// TestChaosServerDrainWithFaultyManifest drains a server whose manifest
// writes fail: the drain still completes, the campaign's terminal state
// write is lost, and — because the manifest still says active — a
// restart resumes it from its complete journal and re-finalizes.
func TestChaosServerDrainWithFaultyManifest(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 2, DataDir: dir})
	st := submitOK(t, ts, "alice", tinySpec()) // 3 runs
	waitState(t, ts, st.ID, StateDone)

	// Now make the next manifest write fail and cancel a fresh
	// campaign: its terminal state cannot persist, so the manifest
	// keeps it active.
	st2 := submitOK(t, ts, "alice", tinySpec(0.7))
	waitState(t, ts, st2.ID, StateDone)
	if err := fault.Apply("seed=1;server.manifest:every=1"); err != nil {
		t.Fatal(err)
	}
	// A state transition under an injected manifest fault rolls back.
	if err := s.Store().SetState(st2.ID, StateCanceled, "test"); err == nil {
		t.Fatal("SetState under manifest fault unexpectedly succeeded")
	}
	fault.Disable()
	meta, _ := s.Store().Get(st2.ID)
	if meta.State != StateDone {
		t.Fatalf("rolled-back state is %q, want the persisted %q", meta.State, StateDone)
	}
	s.Close()
	ts.Close()

	// A fresh server over the same store sees consistent state.
	s2, ts2 := newTestServer(t, Config{Workers: 2, DataDir: dir})
	if n := s2.Resume(); n != 0 {
		t.Fatalf("resumed %d campaigns, want 0 (both finished)", n)
	}
	events, _ := streamResults(t, ts2, st2.ID)
	if len(events) != 2 {
		t.Fatalf("restarted server replayed %d results, want 2", len(events))
	}
}
