package server

import (
	"strings"
	"testing"
	"time"
)

// TestQuotaDecideBoundaries table-tests the pure admission policy at
// its exact edges: a submission that precisely fills MaxQueuedRuns is
// admitted, one run more is refused; degradation triggers strictly
// above DegradeQueuedRuns, not at it; and the journal-budget refusal
// carries the fixed Retry-After rather than a drain-derived estimate
// that could never come true.
func TestQuotaDecideBoundaries(t *testing.T) {
	cases := []struct {
		name string
		q    Quotas
		l    load
		runs int

		admit       bool
		status      int
		reason      string // substring, "" = don't care
		retryAfter  time.Duration
		degraded    bool
		fanMaxGroup int
	}{
		{
			name:  "queue quota exactly filled admits",
			q:     Quotas{MaxQueuedRuns: 10},
			l:     load{tenantQueued: 5},
			runs:  5,
			admit: true,
		},
		{
			name:       "queue quota one over refuses with drain estimate",
			q:          Quotas{MaxQueuedRuns: 10},
			l:          load{tenantQueued: 5, runsPerSec: 1},
			runs:       6,
			status:     429,
			reason:     "tenant queue quota exceeded",
			retryAfter: time.Second, // need=1 at 1 run/s, floor-clamped
		},
		{
			name:       "journal budget over refuses with fixed honest Retry-After",
			q:          Quotas{JournalBytes: 1000},
			l:          load{tenantJournalBytes: 1001},
			runs:       1,
			status:     429,
			reason:     "delete finished campaigns",
			retryAfter: journalRetryAfter,
		},
		{
			// The pre-fix bug: a huge tenant backlog at a slow measured
			// rate produced a 10-minute drain estimate for a condition
			// that drain cannot clear. The header must not depend on
			// queue state at all.
			name:       "journal Retry-After independent of queue backlog",
			q:          Quotas{JournalBytes: 1000},
			l:          load{tenantJournalBytes: 2000, tenantQueued: 100000, runsPerSec: 0.5},
			runs:       1,
			status:     429,
			reason:     "delete finished campaigns",
			retryAfter: journalRetryAfter,
		},
		{
			name:  "degradation threshold exactly met stays full-fanout",
			q:     Quotas{DegradeQueuedRuns: 20},
			l:     load{totalQueued: 15},
			runs:  5,
			admit: true,
		},
		{
			name:        "degradation one over caps fan groups at default",
			q:           Quotas{DegradeQueuedRuns: 20},
			l:           load{totalQueued: 15},
			runs:        6,
			admit:       true,
			degraded:    true,
			fanMaxGroup: 4,
		},
		{
			name:        "degradation honors explicit group cap",
			q:           Quotas{DegradeQueuedRuns: 20, DegradedMaxGroup: 2},
			l:           load{totalQueued: 21},
			runs:        1,
			admit:       true,
			degraded:    true,
			fanMaxGroup: 2,
		},
		{
			name:  "unlimited quotas admit anything",
			q:     Quotas{},
			l:     load{tenantQueued: 1 << 40, tenantJournalBytes: 1 << 50, totalQueued: 1 << 40},
			runs:  1 << 20,
			admit: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := decide(tc.q, tc.l, tc.runs)
			if d.admit != tc.admit {
				t.Fatalf("admit = %v, want %v (%+v)", d.admit, tc.admit, d)
			}
			if d.status != tc.status {
				t.Errorf("status = %d, want %d", d.status, tc.status)
			}
			if tc.reason != "" && !strings.Contains(d.reason, tc.reason) {
				t.Errorf("reason %q missing %q", d.reason, tc.reason)
			}
			if d.retryAfter != tc.retryAfter {
				t.Errorf("retryAfter = %v, want %v", d.retryAfter, tc.retryAfter)
			}
			if d.degraded != tc.degraded || d.fanMaxGroup != tc.fanMaxGroup {
				t.Errorf("degraded/fanMaxGroup = %v/%d, want %v/%d",
					d.degraded, d.fanMaxGroup, tc.degraded, tc.fanMaxGroup)
			}
		})
	}
}

// TestQuotaRetryEstimateClamps pins the estimate's bounds: 1s floor,
// 10m ceiling, and the cold-service 5s path when no completion rate
// has been measured yet.
func TestQuotaRetryEstimateClamps(t *testing.T) {
	cases := []struct {
		name    string
		backlog int64
		rate    float64
		want    time.Duration
	}{
		{"no backlog", 0, 100, time.Second},
		{"negative backlog", -5, 100, time.Second},
		{"cold service", 50, 0, 5 * time.Second},
		{"sub-second drain floors at 1s", 1, 1000, time.Second},
		{"huge backlog caps at 10m", 1 << 30, 0.1, 10 * time.Minute},
		{"mid-range uninflated", 30, 2, 15 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := retryEstimate(tc.backlog, tc.rate); got != tc.want {
				t.Fatalf("retryEstimate(%d, %v) = %v, want %v", tc.backlog, tc.rate, got, tc.want)
			}
		})
	}
}
