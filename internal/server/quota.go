package server

import (
	"fmt"
	"time"
)

// Quotas bounds what one tenant may hold of the service at once. Zero
// fields mean unlimited — a single-tenant lab deployment needs no
// configuration — but a shared deployment sets all three so one
// tenant's 50k-run campaign cannot starve, flood, or fill the disk
// under everyone else.
type Quotas struct {
	// MaxQueuedRuns caps a tenant's pending (admitted but not yet
	// completed) runs across all its campaigns. A submission that would
	// exceed it is refused 429 with a Retry-After estimate.
	MaxQueuedRuns int
	// MaxConcurrent caps how many pool workers the tenant's runs may
	// occupy simultaneously (enforced by the pool's tenant cap).
	MaxConcurrent int
	// JournalBytes caps the tenant's total durable-journal footprint; a
	// submission from a tenant over budget is refused 429 until its
	// finished campaigns are deleted or compacted below the line.
	JournalBytes int64
	// DegradeQueuedRuns is the service-wide soft limit: when the whole
	// pool's pending-run backlog exceeds it, new campaigns are still
	// admitted but with their fan-out groups capped at DegradedMaxGroup
	// — costing extra decode passes instead of refusing work. 0
	// disables degradation.
	DegradeQueuedRuns int
	// DegradedMaxGroup is the fan-group cap applied under degradation;
	// 0 means 4.
	DegradedMaxGroup int
}

// decision is the outcome of one admission check.
type decision struct {
	// admit reports whether the campaign may start. When false, status
	// and reason describe the refusal and retryAfter estimates when the
	// submitter should try again.
	admit      bool
	status     int
	reason     string
	retryAfter time.Duration
	// degraded marks an admission under load shedding; fanMaxGroup is
	// the group cap the campaign must run with (0 = unlimited).
	degraded    bool
	fanMaxGroup int
}

// load is the live state an admission decision is made against.
type load struct {
	// tenantQueued and totalQueued count pending runs for the
	// submitting tenant and for the whole service.
	tenantQueued int64
	totalQueued  int64
	// tenantJournalBytes is the tenant's durable-store footprint.
	tenantJournalBytes int64
	// runsPerSec is the service's observed completion rate, for
	// Retry-After estimation; 0 when nothing has completed yet.
	runsPerSec float64
}

// journalRetryAfter is the fixed Retry-After for journal-budget
// refusals. Queue drain never frees journal bytes — only deleting
// finished campaigns does — so deriving the header from the completion
// rate would promise a retry that cannot succeed. A flat one-minute
// poll is honest: it assumes nothing about drain, just "check back
// after you've deleted something".
const journalRetryAfter = time.Minute

// retryEstimate guesses how long until backlog runs have drained at
// rate, clamped to [1s, 10m] so the header is always actionable: a cold
// service with no measured rate suggests 5s rather than forever.
func retryEstimate(backlog int64, rate float64) time.Duration {
	if backlog <= 0 {
		return time.Second
	}
	if rate <= 0 {
		return 5 * time.Second
	}
	// Clamp in float seconds before converting: a large backlog at a
	// slow rate overflows int64 nanoseconds and would wrap negative.
	secs := float64(backlog) / rate
	if secs > 600 {
		return 10 * time.Minute
	}
	d := time.Duration(secs * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	return d
}

// decide applies the quota policy to one submission of runs new runs.
// It is a pure function of the quota and the observed load, so the
// policy is unit-testable without a server. Degradation is checked
// before refusal: the service sheds load (smaller fan-out groups) while
// it can, and refuses — 429, with a Retry-After derived from the
// measured completion rate — only when the tenant's own quota is the
// binding constraint.
func decide(q Quotas, l load, runs int) decision {
	if q.MaxQueuedRuns > 0 && l.tenantQueued+int64(runs) > int64(q.MaxQueuedRuns) {
		// Wait for enough of the tenant's own backlog to drain that the
		// submission would fit.
		need := l.tenantQueued + int64(runs) - int64(q.MaxQueuedRuns)
		return decision{
			status:     429,
			reason:     fmt.Sprintf("tenant queue quota exceeded: %d queued + %d submitted > %d", l.tenantQueued, runs, q.MaxQueuedRuns),
			retryAfter: retryEstimate(need, l.runsPerSec),
		}
	}
	if q.JournalBytes > 0 && l.tenantJournalBytes > q.JournalBytes {
		// Deliberately NOT retryEstimate: journal bytes are freed by
		// deleting campaigns, not by queue drain, so a drain-derived
		// estimate would be a promise the service cannot keep.
		return decision{
			status:     429,
			reason:     fmt.Sprintf("tenant journal budget exceeded: %d bytes stored > %d (delete finished campaigns)", l.tenantJournalBytes, q.JournalBytes),
			retryAfter: journalRetryAfter,
		}
	}
	d := decision{admit: true}
	if q.DegradeQueuedRuns > 0 && l.totalQueued+int64(runs) > int64(q.DegradeQueuedRuns) {
		d.degraded = true
		d.fanMaxGroup = q.DegradedMaxGroup
		if d.fanMaxGroup <= 0 {
			d.fanMaxGroup = 4
		}
	}
	return d
}
