package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/sim"
)

// TestMain doubles as the pinted binary for the crash-recovery property
// test: the parent re-execs this test binary with PINTED_CHILD=1 and
// real pinted flags, so the child that gets SIGKILLed is the real
// server — HTTP stack, store, pool and all — not a simulation of it.
func TestMain(m *testing.M) {
	if os.Getenv("PINTED_CHILD") == "1" {
		os.Exit(Main(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// lockedBuf collects a child's stderr across goroutines.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// child is one pinted process under test.
type child struct {
	cmd    *exec.Cmd
	addr   string
	stderr *lockedBuf
}

// startChild launches a pinted child on a free port over dir and waits
// for its address line.
func startChild(t *testing.T, dir string) *child {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-addr", "127.0.0.1:0", "-data", dir, "-workers", "2")
	cmd.Env = append(os.Environ(), "PINTED_CHILD=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	errBuf := &lockedBuf{}
	cmd.Stderr = errBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &child{cmd: cmd, stderr: errBuf}

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := regexp.MustCompile(`listening on (\S+)`).FindStringSubmatch(sc.Text()); m != nil {
				addrc <- m[1]
				break
			}
		}
		// Drain the rest so the child never blocks on a full pipe.
		io.Copy(io.Discard, stdout) //nolint:errcheck
	}()
	select {
	case c.addr = <-addrc:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill() //nolint:errcheck
		t.Fatalf("child did not report a listening address; stderr:\n%s", errBuf.String())
	}
	return c
}

func (c *child) kill(t *testing.T) {
	t.Helper()
	c.cmd.Process.Signal(syscall.SIGKILL) //nolint:errcheck
	c.cmd.Wait()                          //nolint:errcheck
}

func (c *child) url(path string) string { return "http://" + c.addr + path }

// postCampaign submits spec to a child and returns the campaign ID.
func postCampaign(t *testing.T, c *child, spec SweepSpec) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(c.url("/v1/campaigns"), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit to child: status %d: %s", resp.StatusCode, b)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// waitChildState polls a child until the campaign reaches want.
func waitChildState(t *testing.T, c *child, id string, want CampaignState) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(c.url("/v1/campaigns/" + id))
		if err == nil {
			var st struct {
				State CampaignState `json:"state"`
			}
			jerr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if jerr == nil && st.State == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never reached %q; child stderr:\n%s", id, want, c.stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

var resumeLine = regexp.MustCompile(`resume: (\d+) of (\d+) runs already journaled`)

// TestChaosServerCrashRecoveryProperty is the kill -9 property test:
// for a handful of fuzzed kill instants, a pinted child is SIGKILLed
// mid-campaign, restarted over the same store, and must (a) preserve
// every journaled result byte-for-byte, (b) resume exactly the runs
// that were not journaled — the resume log's count must match what the
// parent counted in the journal before restart — and (c) finish with
// results byte-identical to an uninterrupted reference campaign.
func TestChaosServerCrashRecoveryProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	// Big enough that the campaign is still mid-flight for most of the
	// fuzzed kill window, and spread over several workloads so the
	// journal grows in stages (three isolation baselines, then three
	// fan-out groups) — kills land on partially-journaled campaigns, not
	// just empty or complete ones. Under the race detector the children
	// simulate roughly an order of magnitude slower, so the per-run work
	// shrinks to keep the same kill windows meaningful.
	roi := uint64(1_000_000)
	if raceEnabled {
		roi = 150_000
	}
	spec := SweepSpec{
		Workloads:    []string{"453.povray", "450.soplex", "433.milc"},
		Points:       []float64{0.05, 0.2, 0.5, 0.8},
		WarmupInstrs: 50_000,
		ROIInstrs:    roi,
		Seed:         1,
	}
	total := spec.Runs()

	// Uninterrupted reference, computed in-process.
	refOut, err := runner.New(runner.Options{Workers: 2}).RunAll(context.Background(), spec.Configs())
	if err != nil || len(refOut.Failures) != 0 {
		t.Fatalf("reference campaign: err=%v failures=%v", err, refOut.Failures)
	}
	ref := make(map[string]string, total)
	for i, cfg := range spec.Configs() {
		key, kerr := runner.ConfigKey(cfg)
		if kerr != nil {
			t.Fatal(kerr)
		}
		ref[key] = fingerprint(t, refOut.Results[i])
	}

	// The race build's children start and simulate slower; stretch the
	// kill window by the same rough factor so the fuzzed instants still
	// straddle the campaign's journal growth.
	delayScale := time.Duration(1)
	if raceEnabled {
		delayScale = 4
	}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 4; round++ {
		delay := delayScale * (15*time.Millisecond + time.Duration(rng.Int63n(int64(500*time.Millisecond))))
		t.Run(fmt.Sprintf("kill_after_%s", delay.Round(time.Millisecond)), func(t *testing.T) {
			dir := t.TempDir()
			c1 := startChild(t, dir)
			id := postCampaign(t, c1, spec)
			time.Sleep(delay)
			c1.kill(t)

			// What survived the kill? Every journaled entry must already
			// be byte-identical to the reference.
			jpath := filepath.Join(dir, "journals", id+".journal")
			done, _, lerr := runner.LoadJournal(jpath)
			if lerr != nil {
				t.Fatalf("journal after SIGKILL: %v", lerr)
			}
			for key, res := range done {
				want, known := ref[key]
				if !known {
					t.Fatalf("journal holds unknown key %s", key)
				}
				if fingerprint(t, res) != want {
					t.Errorf("journaled result %s diverged from the reference", key)
				}
			}
			journaled := len(done)

			// Was the campaign still mid-flight when the kill landed? A
			// campaign that already persisted a terminal state restarts
			// without a resume pass, so the re-run accounting below only
			// applies to interrupted ones.
			store, serr := OpenStore(dir)
			if serr != nil {
				t.Fatalf("store after SIGKILL: %v", serr)
			}
			meta, ok := store.Get(id)
			if !ok {
				t.Fatal("admitted campaign missing from the manifest after SIGKILL")
			}
			interrupted := meta.State == StateActive
			t.Logf("killed after %s: %d/%d runs journaled, state %q", delay, journaled, total, meta.State)

			// Restart over the same store; the campaign must finish.
			c2 := startChild(t, dir)
			defer c2.kill(t)
			waitChildState(t, c2, id, StateDone)

			// Exact re-run accounting for interrupted campaigns: the
			// resume pass must skip exactly the journaled runs — no
			// double-execution, no dropped work.
			if m := resumeLine.FindStringSubmatch(c2.stderr.String()); m != nil {
				got, _ := strconv.Atoi(m[1])
				if got != journaled {
					t.Errorf("resume skipped %s runs, journal held %d", m[1], journaled)
				}
			} else if interrupted && journaled != 0 {
				t.Errorf("no resume line despite %d journaled runs; stderr:\n%s", journaled, c2.stderr.String())
			}

			// Final results: all present, byte-identical to the reference.
			resp, err := http.Get(c2.url("/v1/campaigns/" + id + "/results"))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 64<<10), 64<<20)
			got := make(map[string]string)
			sawDone := false
			for sc.Scan() {
				var probe map[string]json.RawMessage
				if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
					t.Fatal(err)
				}
				if _, ok := probe["done"]; ok {
					sawDone = true
					break
				}
				var ev struct {
					Key    string      `json:"key"`
					Result *sim.Result `json:"result"`
				}
				if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
					t.Fatal(err)
				}
				got[ev.Key] = fingerprint(t, ev.Result)
			}
			if !sawDone || len(got) != total {
				t.Fatalf("final stream: %d results (done=%v), want %d", len(got), sawDone, total)
			}
			for key, want := range ref {
				if got[key] != want {
					t.Errorf("post-recovery result %s diverged from the uninterrupted reference", key)
				}
			}
		})
	}
}
