//go:build race

package server

// raceEnabled lets timing-sensitive tests scale their workloads down
// under the race detector's ~10x simulation slowdown.
const raceEnabled = true
