package server

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/runner"
	rstore "repro/internal/store"
	"repro/internal/telemetry"
)

// API sketch (all JSON):
//
//	POST   /v1/campaigns           submit a SweepSpec (X-Tenant header);
//	                               201 {id,...} | 400 | 429 + Retry-After | 503
//	GET    /v1/campaigns           list campaigns with live progress
//	GET    /v1/campaigns/{id}      one campaign's manifest record + progress
//	GET    /v1/campaigns/{id}/results
//	                               NDJSON result stream: journaled results
//	                               replay first, then live completions; a
//	                               reconnect replays from the start
//	DELETE /v1/campaigns/{id}      cancel a live campaign (202) or delete a
//	                               finished one (204)
//	GET    /healthz                liveness + drain state
//	GET    /debug/vars             expvar (pinte.server, pinte.campaigns, ...)

// campaignStatus is the wire form of one campaign's state.
type campaignStatus struct {
	CampaignMeta
	Progress *telemetry.Snapshot `json:"progress,omitempty"`
}

func (s *Server) status(meta CampaignMeta) campaignStatus {
	st := campaignStatus{CampaignMeta: meta}
	if snap, ok := telemetry.CampaignProgress(meta.ID); ok {
		st.Progress = &snap
	}
	return st
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client hung up; nothing to do
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// tenant resolves the submitting tenant from the X-Tenant header;
// unauthenticated lab deployments collapse to one "default" tenant.
func tenant(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// Handler builds the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleDelete)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": s.Draining()})
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Admission is itself a fault site: a service-layer failure here
	// (injected in chaos runs) must refuse cleanly, not admit half-way.
	if err := fault.Err(fault.SiteServerAdmit); err != nil {
		telemetry.Server.Submitted.Add(1)
		telemetry.Server.RefusedFault.Add(1)
		writeError(w, http.StatusInternalServerError, "admission failed: %v", err)
		return
	}
	var spec SweepSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	meta, d, err := s.admit(tenant(r), spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "recording campaign: %v", err)
		return
	}
	if !d.admit {
		w.Header().Set("Retry-After", strconv.Itoa(int(d.retryAfter.Round(time.Second)/time.Second)))
		writeError(w, d.status, "%s", d.reason)
		return
	}
	writeJSON(w, http.StatusCreated, s.status(meta))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var out []campaignStatus
	for _, m := range s.store.Campaigns() {
		out = append(out, s.status(m))
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": out})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	meta, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such campaign")
		return
	}
	writeJSON(w, http.StatusOK, s.status(meta))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.Cancel(id) {
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": "canceling"})
		return
	}
	meta, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such campaign")
		return
	}
	if meta.State == StateActive {
		// Active in the manifest but not live: only possible between
		// restart and Resume, or after a failed finalize write.
		writeError(w, http.StatusConflict, "campaign is active but not running; restart the server to resume it first")
		return
	}
	if err := s.store.Delete(id); err != nil {
		writeError(w, http.StatusInternalServerError, "deleting campaign: %v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleResults streams a campaign's results as NDJSON: every already
// recorded event (journal replay included) in order, then live
// completions as they land, then one final status line. Because the
// replay buffer always starts from the journal, a dropped client that
// reconnects — even to a restarted server — sees the complete result
// set again: reconnect is resume.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c, live := s.live(id)
	if !live {
		// Finished campaign: serve the stream straight from its journal.
		meta, ok := s.store.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "no such campaign")
			return
		}
		s.streamFinished(w, meta)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// cond.Wait cannot watch a context, so a watcher goroutine turns
	// client disconnect into a broadcast the wait loop re-checks.
	ctx := r.Context()
	stopWatch := context.AfterFunc(ctx, c.cond.Broadcast)
	defer stopWatch()

	next := 0
	for {
		c.mu.Lock()
		for next >= len(c.events) && !c.finished && ctx.Err() == nil {
			c.cond.Wait()
		}
		events := c.events[next:]
		next = len(c.events)
		finished, final := c.finished, c.final
		c.mu.Unlock()

		if ctx.Err() != nil {
			return
		}
		for _, ev := range events {
			if !s.writeEvent(w, ev) {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if finished && next >= len(events) {
			line, _ := json.Marshal(map[string]any{"done": true, "state": final})
			w.Write(append(line, '\n')) //nolint:errcheck // final line; stream ends either way
			return
		}
	}
}

// streamFinished replays a finished campaign's journal as the same
// NDJSON stream a live campaign serves, in canonical config order.
func (s *Server) streamFinished(w http.ResponseWriter, meta CampaignMeta) {
	done, _, err := runner.LoadJournal(s.store.JournalPath(meta.ID))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "loading journal: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	for i, cfg := range meta.Spec.Configs() {
		key, err := runner.ConfigKey(cfg)
		if err != nil {
			continue
		}
		res, ok := done[key]
		if !ok {
			continue
		}
		if !s.writeEvent(w, resultEvent{Index: i, Key: key, FromJournal: true, Result: res}) {
			return
		}
	}
	line, _ := json.Marshal(map[string]any{"done": true, "state": meta.State})
	w.Write(append(line, '\n')) //nolint:errcheck
}

// writeEvent writes one NDJSON line, reporting false when the stream is
// dead (client gone, or an injected stream fault). A failed stream
// write aborts the response; the durable results are untouched and a
// reconnect replays them.
func (s *Server) writeEvent(w http.ResponseWriter, ev resultEvent) bool {
	if err := fault.Err(fault.SiteServerStreamWrite); err != nil {
		telemetry.Server.StreamWriteErrors.Add(1)
		return false
	}
	line, err := json.Marshal(ev)
	if err != nil {
		telemetry.Server.StreamWriteErrors.Add(1)
		return false
	}
	if _, err := w.Write(append(line, '\n')); err != nil {
		telemetry.Server.StreamWriteErrors.Add(1)
		return false
	}
	return true
}

// Main is the pinted entrypoint, factored out of cmd/pinted so the
// crash-recovery property test can run the real server in a child
// process. It returns the process exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pinted", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "localhost:8322", "listen address (host:port; port 0 picks a free port)")
		data       = fs.String("data", "pinted-data", "durable store directory (manifest + campaign journals)")
		workers    = fs.Int("workers", 0, "shared pool workers (0 = GOMAXPROCS)")
		timeout    = fs.Duration("timeout", 0, "per-run wall-clock budget (0 = unlimited)")
		retries    = fs.Int("retries", 0, "retries for runs that panic, time out or stall")
		backoff    = fs.Duration("backoff", 0, "base retry backoff (doubled per attempt with jitter)")
		stall      = fs.Duration("stall-grace", 0, "stuck-run watchdog grace (0 = wait forever)")
		drainGrace = fs.Duration("drain-grace", time.Minute, "how long a SIGTERM drain waits for in-flight runs")
		quotaRuns  = fs.Int("quota-queued-runs", 0, "per-tenant cap on queued runs (0 = unlimited)")
		quotaConc  = fs.Int("quota-concurrency", 0, "per-tenant cap on concurrent workers (0 = uncapped)")
		quotaBytes = fs.Int64("quota-journal-bytes", 0, "per-tenant durable journal budget in bytes (0 = unlimited)")
		degradeAt  = fs.Int("degrade-queued-runs", 0, "service-wide backlog above which new campaigns run with capped fan-out groups (0 = never degrade)")
		degradeCap = fs.Int("degraded-max-group", 4, "fan-out group cap applied to degraded admissions")
		resStore   = fs.String("result-store", "", "cross-tenant content-addressed result store: dir[,MiB budget] (empty = off)")
	)
	chaos := fault.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logf := func(format string, a ...any) {
		fmt.Fprintf(stderr, "pinted: "+format+"\n", a...)
	}
	if err := fault.Apply(*chaos); err != nil {
		logf("%v", err)
		return 1
	}

	// An unusable result store is a degradation, not a startup failure:
	// the service runs every campaign uncached.
	var resultStore *rstore.Store
	if *resStore != "" {
		dir, budget, err := rstore.ParseFlag(*resStore)
		if err != nil {
			logf("%v", err)
			return 2
		}
		resultStore, err = rstore.Open(rstore.Options{Dir: dir, BudgetBytes: budget, Logf: logf})
		if err != nil {
			logf("result store unavailable, running uncached: %v", err)
		} else {
			defer resultStore.Close()
			st := resultStore.Stats()
			logf("result store %s: %d entries under %s (%d bytes)", dir, st.Entries, st.Fingerprint, st.Bytes)
		}
	}

	s, err := New(Config{
		DataDir:    *data,
		Workers:    *workers,
		RunTimeout: *timeout,
		Retries:    *retries,
		Backoff:    *backoff,
		StallGrace: *stall,
		Quotas: Quotas{
			MaxQueuedRuns:     *quotaRuns,
			MaxConcurrent:     *quotaConc,
			JournalBytes:      *quotaBytes,
			DegradeQueuedRuns: *degradeAt,
			DegradedMaxGroup:  *degradeCap,
		},
		ResultStore: resultStore,
		Logf:        logf,
	})
	if err != nil {
		logf("%v", err)
		return 1
	}
	defer s.Close()
	s.Resume()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("%v", err)
		return 1
	}
	// The address line is machine-readable on stdout: with -addr :0 a
	// harness learns the real port from it.
	fmt.Fprintf(stdout, "pinted: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logf("received %s: draining (grace %s)", sig, *drainGrace)
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			logf("drain: %v", err)
		}
		hs.Shutdown(ctx) //nolint:errcheck // best effort; the pool is already drained
		logf("drained; exiting")
		return 0
	case err := <-errc:
		logf("serve: %v", err)
		return 1
	}
}
