package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runner"
	"repro/internal/sim"
	rstore "repro/internal/store"
	"repro/internal/telemetry"
)

// Config tunes one Server. Zero values mean: GOMAXPROCS workers, no
// quotas, no per-run deadline, no retries, fan-out on.
type Config struct {
	// DataDir roots the durable store (manifest + per-campaign
	// journals). Required.
	DataDir string
	// Workers sizes the shared pool; <= 0 means GOMAXPROCS.
	Workers int
	// Quotas is the per-tenant admission policy.
	Quotas Quotas
	// Per-run orchestrator knobs, applied to every campaign.
	RunTimeout time.Duration
	Retries    int
	Backoff    time.Duration
	StallGrace time.Duration
	// NoFanout disables one-decode fan-out groups (they are on by
	// default: the service exists to run big sweeps cheaply).
	NoFanout bool
	// ResultStore, when non-nil, is the cross-tenant content-addressed
	// result store shared by every campaign: identical configs
	// submitted by any tenants are computed once — finished results hit
	// the store, concurrent duplicates collapse onto one in-flight
	// computation — while each campaign still journals and streams its
	// own copy. Per-tenant admission quotas are unchanged: a tenant's
	// journal bytes count what its campaigns received, however cheaply.
	ResultStore *rstore.Store
	// Logf receives service and campaign log lines; nil means silent.
	Logf func(format string, args ...any)
}

// resultEvent is one line on a campaign's result stream.
type resultEvent struct {
	// Index is the run's position in the spec's canonical config order.
	Index int    `json:"index"`
	Key   string `json:"key"`
	// FromJournal marks a result replayed from the resume journal
	// (after a reconnect or a server restart) rather than computed now.
	FromJournal bool        `json:"from_journal,omitempty"`
	Result      *sim.Result `json:"result"`
}

// campaign is one live campaign: its durable record, its in-memory
// result log (the stream replay buffer), and its cancellation handle.
type campaign struct {
	meta CampaignMeta

	mu       sync.Mutex
	cond     *sync.Cond
	events   []resultEvent
	finished bool
	final    CampaignState // valid once finished

	cancel       context.CancelFunc
	userCanceled atomic.Bool
	done         chan struct{}
}

// record is the orchestrator's OnResult hook: append to the stream
// replay buffer and wake every attached stream.
func (c *campaign) record(index int, key string, res *sim.Result, fromJournal bool) {
	c.mu.Lock()
	c.events = append(c.events, resultEvent{Index: index, Key: key, FromJournal: fromJournal, Result: res})
	c.mu.Unlock()
	c.cond.Broadcast()
}

// finish marks the stream complete with the campaign's final state.
func (c *campaign) finish(state CampaignState) {
	c.mu.Lock()
	c.finished = true
	c.final = state
	c.mu.Unlock()
	c.cond.Broadcast()
	close(c.done)
}

// Server is the campaign service: durable store + shared pool + the
// live-campaign table the HTTP API fronts.
type Server struct {
	cfg   Config
	store *Store
	pool  *runner.Pool

	baseCtx context.Context
	stop    context.CancelFunc

	mu        sync.Mutex
	campaigns map[string]*campaign
	draining  bool

	wg        sync.WaitGroup // one per live campaign goroutine
	start     time.Time
	completed atomic.Int64 // runs completed since start, for Retry-After rate
}

// New opens the durable store and starts the shared pool. The server
// does not resume or listen yet: call Resume, then serve Handler.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("server: DataDir is required")
	}
	store, err := OpenStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		store:     store,
		pool:      runner.NewPool(cfg.Workers),
		baseCtx:   ctx,
		stop:      cancel,
		campaigns: make(map[string]*campaign),
		start:     time.Now(),
	}
	return s, nil
}

// Store exposes the durable store (read paths for the HTTP API).
func (s *Server) Store() *Store { return s.store }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Resume reloads the manifest: finished campaigns get their journals
// auto-compacted, and every active campaign — checkpointed by a drain
// or cut off by a crash — is relaunched against its journal, so a
// restart resumes exactly the runs that never completed. Returns how
// many campaigns were resumed.
func (s *Server) Resume() int {
	if n := s.store.CompactFinished(s.logf); n > 0 {
		s.logf("restart: compacted %d finished campaign journals", n)
	}
	resumed := 0
	for _, m := range s.store.Campaigns() {
		if m.State != StateActive {
			continue
		}
		m := m
		s.mu.Lock()
		c := s.track(m)
		s.mu.Unlock()
		telemetry.Server.ResumedCampaigns.Add(1)
		s.logf("restart: resuming campaign %s (%s, %d runs) from its journal", m.ID, m.Tenant, m.Runs)
		s.launch(c)
		resumed++
	}
	return resumed
}

// track registers a campaign in the live table (caller holds s.mu) and
// applies the tenant's pool cap.
func (s *Server) track(meta CampaignMeta) *campaign {
	c := &campaign{meta: meta, done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	s.campaigns[meta.ID] = c
	if s.cfg.Quotas.MaxConcurrent > 0 {
		s.pool.SetTenantCap(meta.Tenant, s.cfg.Quotas.MaxConcurrent)
	}
	telemetry.Server.ActiveCampaigns.Add(1)
	return c
}

// queuedLocked estimates pending (admitted, not yet completed) runs per
// tenant and in total, from each live campaign's progress snapshot —
// or its full run count while the orchestrator is still starting up.
func (s *Server) queuedLocked() (perTenant map[string]int64, total int64) {
	perTenant = make(map[string]int64)
	for id, c := range s.campaigns {
		rem := int64(c.meta.Runs)
		if snap, ok := telemetry.CampaignProgress(id); ok {
			rem = snap.Total - snap.Completed - snap.Failed - snap.FromJournal
			if rem < 0 {
				rem = 0
			}
		}
		perTenant[c.meta.Tenant] += rem
		total += rem
	}
	return perTenant, total
}

// runsPerSec is the service-wide completion rate since start.
func (s *Server) runsPerSec() float64 {
	el := time.Since(s.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(s.completed.Load()) / el
}

// admit applies admission control to one submission and, when it
// passes, durably records and launches the campaign. The returned
// decision carries refusal details (status, reason, Retry-After)
// otherwise.
func (s *Server) admit(tenant string, spec SweepSpec) (CampaignMeta, decision, error) {
	telemetry.Server.Submitted.Add(1)
	runs := spec.Runs()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		telemetry.Server.RefusedDraining.Add(1)
		return CampaignMeta{}, decision{status: 503, reason: "server is draining", retryAfter: 10 * time.Second}, nil
	}
	perTenant, total := s.queuedLocked()
	d := decide(s.cfg.Quotas, load{
		tenantQueued:       perTenant[tenant],
		totalQueued:        total,
		tenantJournalBytes: s.store.TenantJournalBytes(tenant),
		runsPerSec:         s.runsPerSec(),
	}, runs)
	if !d.admit {
		s.mu.Unlock()
		telemetry.Server.RefusedQuota.Add(1)
		return CampaignMeta{}, d, nil
	}

	meta := CampaignMeta{
		ID:          NewID(),
		Tenant:      tenant,
		Spec:        spec.normalized(),
		State:       StateActive,
		Runs:        runs,
		Weight:      spec.normalized().Weight,
		Created:     time.Now().UTC(),
		Degraded:    d.degraded,
		FanMaxGroup: d.fanMaxGroup,
	}
	// The manifest write happens before the campaign is visible or
	// scheduled: an admission the client saw acknowledged is always
	// resumable after a crash.
	if err := s.store.Put(meta); err != nil {
		s.mu.Unlock()
		return CampaignMeta{}, decision{}, err
	}
	c := s.track(meta)
	s.mu.Unlock()

	telemetry.Server.Admitted.Add(1)
	if d.degraded {
		telemetry.Server.DegradedAdmissions.Add(1)
		s.logf("campaign %s (%s) admitted degraded: fan-out groups capped at %d under load", meta.ID, tenant, d.fanMaxGroup)
	}
	s.launch(c)
	return meta, d, nil
}

// launch starts the campaign's orchestrator goroutine on the shared
// pool.
func (s *Server) launch(c *campaign) {
	cctx, cancel := context.WithCancel(s.baseCtx)
	if d := c.meta.Spec.DeadlineSeconds; d > 0 {
		// The campaign deadline re-arms from launch on a resume: the
		// budget bounds one service's exposure, not cumulative history.
		cctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(d*float64(time.Second)))
	}
	c.cancel = cancel
	cfgs := c.meta.Spec.Configs()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		orc := runner.New(runner.Options{
			Timeout:     s.cfg.RunTimeout,
			Retries:     s.cfg.Retries,
			Backoff:     s.cfg.Backoff,
			StallGrace:  s.cfg.StallGrace,
			Journal:     s.store.JournalPath(c.meta.ID),
			Logf:        s.campaignLogf(c.meta.ID),
			Fanout:      !s.cfg.NoFanout,
			FanMaxGroup: c.meta.FanMaxGroup,
			Sample:      c.meta.Spec.Sample,
			Pool:        s.pool,
			Tenant:      c.meta.Tenant,
			Weight:      c.meta.Weight,
			CampaignID:  c.meta.ID,
			Store:       s.cfg.ResultStore,
			OnResult: func(index int, key string, res *sim.Result, fromJournal bool) {
				if !fromJournal {
					s.completed.Add(1)
				}
				c.record(index, key, res, fromJournal)
			},
		})
		out, err := orc.RunAll(cctx, cfgs)
		s.finalize(c, cctx, out, err)
	}()
}

// campaignLogf prefixes a campaign's orchestrator lines with its ID.
func (s *Server) campaignLogf(id string) func(string, ...any) {
	if s.cfg.Logf == nil {
		return nil
	}
	return func(format string, args ...any) {
		s.logf("campaign %s: "+format, append([]any{id}, args...)...)
	}
}

// finalize classifies a finished campaign run, persists its terminal
// state (or leaves it active when a drain checkpointed it), compacts
// the journal of a cleanly completed campaign, and releases the stream.
func (s *Server) finalize(c *campaign, cctx context.Context, out *runner.Outcome, err error) {
	id := c.meta.ID
	telemetry.UnregisterCampaign(id)

	canceled, hard := 0, 0
	if out != nil {
		for _, f := range out.HardFailures() {
			if errors.Is(f.Err, sim.ErrCanceled) {
				canceled++
			} else {
				hard++
			}
		}
	}
	s.mu.Lock()
	draining := s.draining
	delete(s.campaigns, id)
	s.mu.Unlock()
	telemetry.Server.ActiveCampaigns.Add(-1)

	var state CampaignState
	var msg string
	switch {
	case err != nil:
		// Campaign-level fault: the journal itself was unusable.
		state, msg = StateFailed, err.Error()
	case draining && canceled > 0 && hard == 0 && !c.userCanceled.Load():
		// Drain checkpoint: the shed runs stay pending in the journal
		// and the manifest stays active, so the next start resumes them.
		s.logf("campaign %s: checkpointed by drain with %d runs pending; will resume on restart", id, canceled)
		c.finish(StateActive)
		return
	case c.userCanceled.Load():
		state, msg = StateCanceled, "canceled by owner"
	case canceled > 0 && cctx.Err() != nil:
		state, msg = StateCanceled, "campaign deadline exceeded"
	case hard > 0:
		state, msg = StateFailed, fmt.Sprintf("%d of %d runs failed", hard, c.meta.Runs)
	default:
		state = StateDone
	}

	if serr := s.store.SetState(id, state, msg); serr != nil {
		// The state transition will be retried by the next restart's
		// classification (an active manifest entry with a complete
		// journal resumes to an immediate re-finalize).
		s.logf("campaign %s: persisting final state %s: %v", id, state, serr)
	}
	switch state {
	case StateDone:
		telemetry.Server.CampaignsDone.Add(1)
		if _, cerr := s.store.CompactCampaign(id); cerr != nil {
			s.logf("campaign %s: auto-compacting journal: %v", id, cerr)
		}
		s.logf("campaign %s: done (%d runs)", id, c.meta.Runs)
	case StateFailed:
		telemetry.Server.CampaignsFailed.Add(1)
		s.logf("campaign %s: failed: %s", id, msg)
	case StateCanceled:
		telemetry.Server.CampaignsCanceled.Add(1)
		s.logf("campaign %s: canceled: %s", id, msg)
	}
	c.finish(state)
}

// Cancel cancels a live campaign. It reports whether id was live.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	c, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	c.userCanceled.Store(true)
	c.cancel()
	return true
}

// live returns the live campaign for id, if any.
func (s *Server) live(id string) (*campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// Draining reports whether a drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain is the graceful-shutdown contract: stop admitting (every later
// submission gets 503), shed the pool's queued runs back to their
// campaigns' journals, let in-flight runs finish and checkpoint, and
// wait for every campaign goroutine to persist its outcome — or for
// ctx to expire, whichever is first. Journals are fsynced per append,
// so at Drain's return every completed run is on stable storage.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		telemetry.Server.Drains.Add(1)
		s.logf("drain: admission stopped, shedding queued runs")
	}
	perr := s.pool.Drain(ctx)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		if perr == nil {
			perr = ctx.Err()
		}
	}
	return perr
}

// Close releases the pool and cancels any still-running campaign
// context. Call after Drain (or instead of it for a hard stop).
func (s *Server) Close() {
	s.stop()
	s.pool.Close()
}
