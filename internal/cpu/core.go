// Package cpu provides the interval core timing model that converts an
// instruction trace plus cache-hierarchy latencies into cycles, and the
// multi-core interleaver used for 2nd-Trace (multi-programmed) runs.
//
// The model is deliberately first-order — PInTE's metrics (IPC deltas,
// miss rates, AMAT, reuse) are dominated by miss counts and latencies —
// which is what makes the paper's all-pairs 2nd-Trace baseline tractable
// to reproduce: issue-width throughput, branch mispredict penalties,
// serialised dependent loads, and bounded overlap (MLP) for independent
// misses.
package cpu

import (
	"errors"
	"io"
	"math/bits"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/trace"
)

// Config parameterises one core's timing model.
type Config struct {
	// Width is the issue width in instructions per cycle; 0 means 4.
	Width int
	// MispredictPenalty is the pipeline refill cost in cycles; 0 means 15.
	MispredictPenalty uint64
	// MLP divides the stall of independent (non-dependent) load misses,
	// modelling overlap among outstanding misses; 0 means 2.
	MLP int
}

// Resolved returns the config with its zero-value defaults applied —
// the exact parameters a Core built from it would run with. The fan-out
// follower (internal/sim), which prices instructions from a digest
// without constructing a Core, uses it to mirror the timing model.
func (c Config) Resolved() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Width == 0 {
		c.Width = 4
	}
	if c.MispredictPenalty == 0 {
		c.MispredictPenalty = 15
	}
	if c.MLP == 0 {
		c.MLP = 2
	}
	return c
}

// Stats holds one core's execution counters.
type Stats struct {
	Branches    uint64
	Mispredicts uint64
	Loads       uint64
	Stores      uint64
	LoadStall   uint64 // cycles charged to load misses
}

// BranchAccuracy returns the fraction of branches predicted correctly.
func (s *Stats) BranchAccuracy() float64 {
	if s.Branches == 0 {
		return 1
	}
	return 1 - float64(s.Mispredicts)/float64(s.Branches)
}

// batchSize is how many trace records a core pulls per refill when its
// reader supports batching: large enough to amortise the dispatch, small
// enough (batchSize × 48B ≈ 12KB) to stay cache-resident.
const batchSize = 256

// Core executes a trace against a hierarchy.
type Core struct {
	ID int

	cfg    Config
	reader trace.Reader
	batch  trace.BatchReader // non-nil when reader supports batching
	slice  trace.SliceReader // non-nil when reader hands out decoded views
	hier   *cache.Hierarchy
	bp     branch.Predictor

	Cycles uint64
	Instrs uint64
	Stats  Stats

	widthAcc int
	l1dLat   uint64
	l1iLat   uint64
	// mlpShift replaces the MLP division with a shift when MLP is a
	// power of two (the common configurations: 1, 2, 4, 8); -1 otherwise.
	mlpShift int
	done     bool
	err      error
	rec      trace.Record

	// Fetch-block cache: fetchBlk is the cache block of the previous
	// instruction fetch and fetchGen the L1I generation observed right
	// after it. While both still match, a fetch is a guaranteed L1I hit
	// at the hit latency (zero front-end stall) and — because the fetch
	// path was hit-neutral when the snapshot was taken (see
	// Hierarchy.IfetchFastOK) — the full access walk can be skipped.
	// Only the L1I's own access counters diverge; nothing reads them
	// per-fetch.
	l1i      *cache.Cache
	fetchBlk uint64
	fetchGen uint64

	// dataFast arms the L1D repeat-hit fast path (Hierarchy.FastData):
	// loads and stores that repeat the previous hit in their set settle
	// at the L1D hit latency without walking the access path. Fixed at
	// construction — it depends only on the prefetcher configuration.
	dataFast bool

	// recs[recPos:recLen] is the pending slice of the current batch. On
	// the batch path recs is the core's own refill buffer; on the slice
	// path it aliases an externally-owned decoded batch (a fan-out
	// view), read-only and valid until the next NextSlice call.
	recs   []trace.Record
	recPos int
	recLen int
}

// NewCore builds a core. bp may be nil for a perfect branch predictor.
func NewCore(id int, cfg Config, r trace.Reader, h *cache.Hierarchy, bp branch.Predictor) *Core {
	c := &Core{
		ID:       id,
		cfg:      cfg.withDefaults(),
		reader:   r,
		hier:     h,
		bp:       bp,
		l1dLat:   h.L1D(id).HitLatency(),
		l1iLat:   h.L1I(id).HitLatency(),
		l1i:      h.L1I(id),
		fetchBlk: ^uint64(0),
		dataFast: h.DataFastOK(id),
	}
	if sr, ok := r.(trace.SliceReader); ok {
		// Zero-copy path: the reader owns the decode buffer (one decode
		// shared across a fan-out group); the core just walks its views.
		c.slice = sr
	} else if br, ok := r.(trace.BatchReader); ok {
		c.batch = br
		c.recs = make([]trace.Record, batchSize)
	}
	c.mlpShift = -1
	if mlp := c.cfg.MLP; mlp&(mlp-1) == 0 {
		c.mlpShift = bits.TrailingZeros(uint(mlp))
	}
	return c
}

// Done reports whether the core's trace is exhausted.
func (c *Core) Done() bool { return c.done }

// Err returns the first non-EOF reader error, if any.
func (c *Core) Err() error { return c.err }

// IPC returns instructions per cycle so far.
func (c *Core) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instrs) / float64(c.Cycles)
}

// Rewind restarts the core's trace (used by the 2nd-Trace driver to
// restart a faster co-runner, as ChampSim does). The core's cycle and
// instruction counts keep accumulating.
func (c *Core) Rewind() bool {
	rw, ok := c.reader.(trace.Rewinder)
	if !ok {
		return false
	}
	rw.Rewind()
	c.done = false
	c.recPos, c.recLen = 0, 0 // discard records buffered past the rewind
	return true
}

// SkipInstrs fast-forwards the core's trace by up to n records without
// simulating them: no cycles accrue, no cache or predictor state
// changes, and Instrs stays put — callers account for skipped work
// themselves. Buffered records are consumed first; a reader
// implementing trace.Skipper then seeks directly (O(1) on a recorded
// replay stream); anything else is read and discarded. Returns how
// many records were skipped, short only when the trace ends.
func (c *Core) SkipInstrs(n uint64) uint64 {
	var skipped uint64
	if avail := uint64(c.recLen - c.recPos); avail > 0 {
		take := avail
		if take > n {
			take = n
		}
		c.recPos += int(take)
		skipped += take
	}
	if sk, ok := c.reader.(trace.Skipper); ok && skipped < n && !c.done && c.err == nil {
		got, err := sk.Skip(n - skipped)
		skipped += got
		if err != nil {
			if errors.Is(err, io.EOF) {
				c.done = true
			} else {
				c.err = err
			}
		}
	}
	for skipped < n && !c.done && c.err == nil {
		want := n - skipped
		var m int
		var err error
		switch {
		case c.slice != nil:
			var view []trace.Record
			view, err = c.slice.NextSlice()
			if m = len(view); uint64(m) > want {
				// Keep the view's tail buffered for the next Step.
				c.recs, c.recLen, c.recPos = view, m, int(want)
				m = int(want)
			}
		case c.batch != nil:
			if want > uint64(len(c.recs)) {
				want = uint64(len(c.recs))
			}
			m, err = c.batch.NextBatch(c.recs[:want])
		default:
			err = c.reader.Next(&c.rec)
			if err == nil {
				m = 1
			}
		}
		if m == 0 {
			if err == nil || errors.Is(err, io.EOF) {
				c.done = true
			} else {
				c.err = err
			}
			break
		}
		skipped += uint64(m)
	}
	// The fetch-block memo refers to the instruction before the seek;
	// drop it so the first post-seek fetch walks the hierarchy.
	c.fetchBlk = ^uint64(0)
	return skipped
}

// Step executes up to n instructions and returns how many ran. It stops
// early when the trace ends (Done becomes true) or a read error occurs.
func (c *Core) Step(n uint64) uint64 {
	if c.done || c.err != nil {
		return 0
	}
	if c.batch != nil || c.slice != nil {
		return c.stepBatched(n)
	}
	var executed uint64
	for ; executed < n; executed++ {
		if err := c.reader.Next(&c.rec); err != nil {
			if errors.Is(err, io.EOF) {
				c.done = true
			} else {
				c.err = err
			}
			break
		}
		c.retire(&c.rec)
	}
	return executed
}

// stepBatched is Step over a BatchReader: records are pulled batchSize at
// a time, so the per-instruction cost is one direct retire call instead
// of an interface dispatch plus error check.
func (c *Core) stepBatched(n uint64) uint64 {
	var executed uint64
	for executed < n {
		if c.recPos >= c.recLen {
			var m int
			var err error
			if c.slice != nil {
				var view []trace.Record
				view, err = c.slice.NextSlice()
				if m = len(view); m > 0 {
					c.recs = view
				}
			} else {
				m, err = c.batch.NextBatch(c.recs)
			}
			if m == 0 {
				if err == nil || errors.Is(err, io.EOF) {
					c.done = true
				} else {
					c.err = err
				}
				break
			}
			c.recLen, c.recPos = m, 0
		}
		// Retire the buffered records, at most n in total.
		avail := uint64(c.recLen - c.recPos)
		if rem := n - executed; avail > rem {
			avail = rem
		}
		for i := uint64(0); i < avail; i++ {
			c.retire(&c.recs[c.recPos])
			c.recPos++
		}
		executed += avail
	}
	return executed
}

func (c *Core) retire(rec *trace.Record) {
	// Front-end: instruction fetch. A miss past the L1I stalls the
	// front end for the excess latency. Fetches into the same block as
	// the previous instruction skip the walk while the L1I is unchanged:
	// the block is resident (the previous fetch hit it or filled it), so
	// the fetch hits at the L1I latency and stalls nothing.
	if blk := rec.PC / cache.BlockBytes; blk != c.fetchBlk || c.l1i.Gen() != c.fetchGen {
		il := c.hier.Access(c.ID, rec.PC, rec.PC, cache.Ifetch, c.Cycles)
		if il > c.l1iLat {
			c.Cycles += il - c.l1iLat
		}
		if c.hier.IfetchFastOK(c.ID) {
			c.fetchBlk, c.fetchGen = blk, c.l1i.Gen()
		} else {
			c.fetchBlk = ^uint64(0)
		}
	}

	// Issue-width throughput: one cycle per Width instructions.
	c.widthAcc++
	if c.widthAcc >= c.cfg.Width {
		c.widthAcc = 0
		c.Cycles++
	}

	if rec.IsBranch {
		c.Stats.Branches++
		if c.bp != nil {
			pred := c.bp.Predict(rec.PC)
			c.bp.Update(rec.PC, rec.Taken)
			if pred != rec.Taken {
				c.Stats.Mispredicts++
				c.Cycles += c.cfg.MispredictPenalty
			}
		}
	}

	if rec.Load0 != 0 {
		c.Stats.Loads++
		c.loadStall(rec.PC, rec.Load0, rec.Dependent)
	}
	if rec.Load1 != 0 {
		c.Stats.Loads++
		c.loadStall(rec.PC, rec.Load1, false)
	}
	if rec.Store != 0 {
		c.Stats.Stores++
		// Stores retire through the write buffer: cache state updates
		// but no retirement stall is charged.
		if !(c.dataFast && c.hier.FastData(c.ID, rec.Store, true)) {
			c.hier.Access(c.ID, rec.PC, rec.Store, cache.StoreAccess, c.Cycles)
		}
	}

	c.Instrs++
}

func (c *Core) loadStall(pc, addr uint64, dependent bool) {
	if c.dataFast && c.hier.FastData(c.ID, addr, false) {
		return // repeat L1D hit: settles at the hit latency, no stall
	}
	lat := c.hier.Access(c.ID, pc, addr, cache.Load, c.Cycles)
	if lat <= c.l1dLat {
		return
	}
	stall := lat - c.l1dLat
	if !dependent {
		if c.mlpShift >= 0 {
			stall >>= uint(c.mlpShift)
		} else {
			stall /= uint64(c.cfg.MLP)
		}
	}
	c.Cycles += stall
	c.Stats.LoadStall += stall
}

// ResetStats zeroes the core's event counters while leaving its trace
// position, predictor state and — critically — its clock intact: cycle
// and instruction counts are physical time shared with the DRAM model's
// bank timestamps, so region-of-interest metrics are computed as deltas
// rather than by resetting them.
func (c *Core) ResetStats() {
	c.Stats = Stats{}
}
