package cpu

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/trace"
)

// TestCoreStepNoAllocs guards the allocation-free simulation loop: once
// a core is constructed and warm, stepping through generated
// instructions — trace refills, branch prediction, the full cache walk,
// fills and evictions — must not touch the heap.
func TestCoreStepNoAllocs(t *testing.T) {
	spec := trace.Spec{
		Name:           "alloc-guard",
		MemFrac:        0.4,
		StoreFrac:      0.2,
		SecondLoadFrac: 0.1,
		BranchFrac:     0.15,
		BranchEntropy:  0.4,
		Regions: []trace.Region{
			{SizeBytes: 64 << 10, Weight: 1, Pattern: trace.Sequential},
			{SizeBytes: 256 << 10, Weight: 1, Pattern: trace.Random},
		},
	}
	g := trace.MustGenerator(spec, 1, 0)
	c := NewCore(0, Config{}, g, testHier(1), branch.MustNew("hashed-perceptron"))
	c.Step(20_000) // warm caches, batch buffer and predictor tables
	allocs := testing.AllocsPerRun(20, func() {
		if ran := c.Step(500); ran != 500 {
			t.Fatalf("Step ran %d, want 500", ran)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates %.1f times per 500 instrs, want 0", allocs)
	}
}
