package cpu

import (
	"errors"
	"io"
	"testing"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/trace"
)

// scriptReader replays a fixed record slice; implements Reader+Rewinder.
type scriptReader struct {
	recs []trace.Record
	pos  int
}

func (s *scriptReader) Next(rec *trace.Record) error {
	if s.pos >= len(s.recs) {
		return io.EOF
	}
	*rec = s.recs[s.pos]
	s.pos++
	return nil
}

func (s *scriptReader) Rewind() { s.pos = 0 }

type fixedMem struct{ lat uint64 }

func (m fixedMem) Access(now, addr uint64, isWrite bool) uint64 { return m.lat }

func testHier(cores int) *cache.Hierarchy {
	cfg := cache.HierarchyConfig{
		Cores: cores,
		L1I:   cache.LevelConfig{SizeBytes: 1 << 10, Ways: 2, HitLatency: 4},
		L1D:   cache.LevelConfig{SizeBytes: 1 << 10, Ways: 2, HitLatency: 4},
		L2:    cache.LevelConfig{SizeBytes: 4 << 10, Ways: 4, HitLatency: 10},
		LLC:   cache.LevelConfig{SizeBytes: 16 << 10, Ways: 8, HitLatency: 30},
	}
	return cache.MustNewHierarchy(cfg, fixedMem{lat: 156})
}

func aluRecs(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x1000 + uint64(i%64)*4}
	}
	return recs
}

func TestCoreWidthThroughput(t *testing.T) {
	// 4000 ALU instructions at width 4 ≈ 1000 cycles (plus a few L1I
	// cold misses).
	c := NewCore(0, Config{Width: 4}, &scriptReader{recs: aluRecs(4000)}, testHier(1), nil)
	ran := c.Step(1_000_000)
	if ran != 4000 || !c.Done() {
		t.Fatalf("ran %d, done %v", ran, c.Done())
	}
	// 1000 cycles of width-limited issue plus 4 cold L1I block misses
	// at full memory latency (~196 cycles of front-end stall each).
	if c.Cycles < 1000 || c.Cycles > 2000 {
		t.Fatalf("cycles = %d, want ≈1800 for a 4-wide ALU stream with cold code", c.Cycles)
	}
	if ipc := c.IPC(); ipc < 2.0 || ipc > 4.0 {
		t.Fatalf("IPC = %v, want 2-4 wide", ipc)
	}
}

func TestCoreBranchMispredictPenalty(t *testing.T) {
	// Alternating taken/not-taken on one PC defeats a fresh bimodal
	// predictor roughly half the time.
	recs := make([]trace.Record, 2000)
	for i := range recs {
		recs[i] = trace.Record{
			PC: 0x2000, IsBranch: true, Taken: i%2 == 0, Target: 0x2000,
		}
	}
	run := func(bp branch.Predictor) uint64 {
		c := NewCore(0, Config{Width: 4, MispredictPenalty: 15},
			&scriptReader{recs: recs}, testHier(1), bp)
		c.Step(1_000_000)
		return c.Cycles
	}
	with := run(branch.MustNew("bimodal"))
	without := run(nil) // perfect prediction
	if with <= without {
		t.Fatalf("mispredictions cost nothing: %d vs %d", with, without)
	}
	if with < without+1000*10 {
		t.Fatalf("penalty too small for ~1000 mispredicts: %d vs %d", with, without)
	}
}

func TestCoreDependentLoadSerialises(t *testing.T) {
	mkRecs := func(dep bool) []trace.Record {
		recs := make([]trace.Record, 500)
		for i := range recs {
			recs[i] = trace.Record{
				PC:        0x3000 + uint64(i%8)*4,
				Load0:     1 << 20 << uint(i%20), // all cold misses
				Dependent: dep,
			}
		}
		return recs
	}
	run := func(dep bool) uint64 {
		c := NewCore(0, Config{Width: 4, MLP: 4}, &scriptReader{recs: mkRecs(dep)}, testHier(1), nil)
		c.Step(1_000_000)
		return c.Cycles
	}
	dep := run(true)
	indep := run(false)
	if dep <= indep {
		t.Fatalf("dependent loads (%d cycles) not slower than independent (%d)", dep, indep)
	}
}

func TestCoreStoresDoNotStallRetirement(t *testing.T) {
	recs := make([]trace.Record, 1000)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x4000, Store: uint64(0x100000 + i*4096)}
	}
	c := NewCore(0, Config{Width: 4}, &scriptReader{recs: recs}, testHier(1), nil)
	c.Step(1_000_000)
	// Cold store misses update caches but charge no retirement stall:
	// cycle count stays near the width bound.
	if c.Cycles > 600 {
		t.Fatalf("stores stalled retirement: %d cycles for 1000 instrs", c.Cycles)
	}
	if c.Stats.Stores != 1000 {
		t.Fatalf("stores = %d, want 1000", c.Stats.Stores)
	}
}

func TestCoreStepBounded(t *testing.T) {
	c := NewCore(0, Config{}, &scriptReader{recs: aluRecs(100)}, testHier(1), nil)
	if ran := c.Step(30); ran != 30 {
		t.Fatalf("Step(30) ran %d", ran)
	}
	if c.Done() {
		t.Fatal("done too early")
	}
	if ran := c.Step(1000); ran != 70 {
		t.Fatalf("second Step ran %d, want 70", ran)
	}
	if !c.Done() {
		t.Fatal("not done at EOF")
	}
	if ran := c.Step(10); ran != 0 {
		t.Fatalf("Step after done ran %d", ran)
	}
}

func TestCoreRewind(t *testing.T) {
	c := NewCore(0, Config{}, &scriptReader{recs: aluRecs(50)}, testHier(1), nil)
	c.Step(1000)
	if !c.Rewind() {
		t.Fatal("rewindable reader reported not rewindable")
	}
	if c.Done() {
		t.Fatal("still done after rewind")
	}
	if ran := c.Step(1000); ran != 50 {
		t.Fatalf("ran %d after rewind, want 50", ran)
	}
}

func TestSystemBalancesClocks(t *testing.T) {
	h := testHier(2)
	// Core 0: cheap ALU stream; core 1: expensive dependent misses.
	c0 := NewCore(0, Config{}, &scriptReader{recs: aluRecs(20_000)}, h, nil)
	recs := make([]trace.Record, 2000)
	for i := range recs {
		recs[i] = trace.Record{
			PC:        0x5000,
			Load0:     1<<41 + uint64(i)*4096,
			Dependent: true,
		}
	}
	c1 := NewCore(1, Config{MLP: 1}, &scriptReader{recs: recs}, h, nil)
	sys := NewSystem(c0, c1)
	if err := sys.Run(func(*Core) bool { return c0.Done() && c1.Done() }); err != nil {
		t.Fatal(err)
	}
	// The scheduler advances the laggard: both cores' final clocks
	// should be within a few quanta of each other, not wildly apart —
	// unless one simply ran out of work long before the other.
	if c0.Cycles == 0 || c1.Cycles == 0 {
		t.Fatal("a core never ran")
	}
}

func TestSystemRestartFinished(t *testing.T) {
	h := testHier(2)
	c0 := NewCore(0, Config{}, &scriptReader{recs: aluRecs(10_000)}, h, nil)
	c1 := NewCore(1, Config{}, &scriptReader{recs: aluRecs(100)}, h, nil)
	sys := NewSystem(c0, c1)
	sys.RestartFinished = true
	// RestartFinished rewinds every exhausted trace (including the
	// primary's), so the stop condition must use cumulative counts —
	// Done() is never left true, exactly as in the sim driver.
	if err := sys.Run(func(*Core) bool { return c0.Instrs >= 10_000 }); err != nil {
		t.Fatal(err)
	}
	if c1.Instrs <= 100 {
		t.Fatalf("fast co-runner not restarted: ran %d instrs", c1.Instrs)
	}
	if c0.Instrs < 10_000 {
		t.Fatalf("primary stopped early at %d instrs", c0.Instrs)
	}
}

func TestBranchAccuracyStat(t *testing.T) {
	recs := make([]trace.Record, 4000)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x6000, IsBranch: true, Taken: true, Target: 0x6000}
	}
	c := NewCore(0, Config{}, &scriptReader{recs: recs}, testHier(1), branch.MustNew("bimodal"))
	c.Step(1_000_000)
	if acc := c.Stats.BranchAccuracy(); acc < 0.99 {
		t.Fatalf("accuracy %v on always-taken stream", acc)
	}
}

func TestResetStatsKeepsClock(t *testing.T) {
	c := NewCore(0, Config{}, &scriptReader{recs: aluRecs(1000)}, testHier(1), nil)
	c.Step(500)
	cyc, ins := c.Cycles, c.Instrs
	c.ResetStats()
	if c.Cycles != cyc || c.Instrs != ins {
		t.Fatal("ResetStats must not rewind the clock")
	}
	if c.Stats.Loads != 0 && c.Stats.Branches != 0 {
		t.Fatal("event stats survived reset")
	}
}

// failingReader errors after a few records.
type failingReader struct{ n int }

func (f *failingReader) Next(rec *trace.Record) error {
	if f.n <= 0 {
		return errReader
	}
	f.n--
	rec.Reset()
	rec.PC = 0x1000
	return nil
}

var errReader = errors.New("boom")

func TestCoreReaderErrorPropagates(t *testing.T) {
	c := NewCore(0, Config{}, &failingReader{n: 10}, testHier(1), nil)
	if ran := c.Step(1000); ran != 10 {
		t.Fatalf("ran %d before the error, want 10", ran)
	}
	if !errors.Is(c.Err(), errReader) {
		t.Fatalf("Err() = %v", c.Err())
	}
	if c.Done() {
		t.Fatal("errored core reported Done")
	}
	if c.Step(10) != 0 {
		t.Fatal("errored core kept running")
	}
}

func TestSystemSurfacesCoreError(t *testing.T) {
	h := testHier(2)
	c0 := NewCore(0, Config{}, &scriptReader{recs: aluRecs(1000)}, h, nil)
	c1 := NewCore(1, Config{}, &failingReader{n: 5}, h, nil)
	sys := NewSystem(c0, c1)
	err := sys.Run(func(*Core) bool { return false })
	if !errors.Is(err, errReader) {
		t.Fatalf("system returned %v, want reader error", err)
	}
}

func TestCoreRewindUnsupported(t *testing.T) {
	// A reader without Rewind support: Rewind reports false.
	c := NewCore(0, Config{}, &failingReader{n: 1}, testHier(1), nil)
	if c.Rewind() {
		t.Fatal("non-rewindable reader reported rewindable")
	}
}
