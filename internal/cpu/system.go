package cpu

// DefaultQuantum is the scheduling quantum in instructions: how many a
// core runs per turn, and therefore the granularity at which stop
// conditions are evaluated. The fan-out executor (internal/sim) mirrors
// the same boundaries when replaying a digest, so primary-core record
// consumption matches the sequential path exactly.
const DefaultQuantum = 64

// System interleaves multiple cores that share one hierarchy. The
// scheduler always advances the core with the smallest local clock, which
// reproduces the arrival-order structure of a cycle-interleaved
// multi-core simulation without a global event queue.
type System struct {
	Cores []*Core
	// Quantum is how many instructions a core runs per scheduling turn;
	// 0 means DefaultQuantum.
	Quantum uint64
	// RestartFinished re-winds every core whose trace ends (ChampSim's
	// multi-programmed behaviour: faster traces restart until the
	// slowest finishes). Cores that cannot rewind simply stop. Note
	// that the primary core restarts too, so stop conditions must use
	// cumulative counts (Instrs), never Done().
	RestartFinished bool
}

// NewSystem builds a system over cores.
func NewSystem(cores ...*Core) *System {
	return &System{Cores: cores, Quantum: DefaultQuantum}
}

// next picks the runnable core with the smallest cycle count, or nil.
func (s *System) next() *Core {
	var best *Core
	for _, c := range s.Cores {
		if c.Done() || c.Err() != nil {
			continue
		}
		if best == nil || c.Cycles < best.Cycles {
			best = c
		}
	}
	return best
}

// Run advances the system until stop returns true or no core can run.
// stop is evaluated between quanta with the core that just ran. It
// returns the first core error encountered, if any.
func (s *System) Run(stop func(ran *Core) bool) error {
	q := s.Quantum
	if q == 0 {
		q = DefaultQuantum
	}
	for {
		c := s.next()
		if c == nil {
			return s.firstErr()
		}
		c.Step(q)
		if c.Err() != nil {
			return c.Err()
		}
		if c.Done() && s.RestartFinished {
			c.Rewind()
		}
		if stop(c) {
			return nil
		}
	}
}

func (s *System) firstErr() error {
	for _, c := range s.Cores {
		if err := c.Err(); err != nil {
			return err
		}
	}
	return nil
}
