// Package partition implements dynamic shared-LLC way partitioning — the
// contention-aware architecture class the PInTE paper positions itself as
// enabling (§VII-d): utility-based cache partitioning (UCP, Qureshi &
// Patt MICRO'06) driven by UMON set-sampled shadow tags, and a
// CASHT-style controller driven by the theft counters the cache already
// maintains, "comparable to UCP but at a fraction of the cost".
//
// Controllers observe the shared cache and periodically return fresh
// per-core way masks; the simulation driver applies them with
// cache.SetWayPartition.
package partition

import "fmt"

// UMON is one core's utility monitor: an auxiliary tag directory over a
// sampled subset of sets, managed with true LRU and full associativity,
// counting hits per stack position. Position counters estimate the
// marginal utility of granting the core 1..ways ways (Qureshi & Patt's
// UMON-DSS).
type UMON struct {
	ways     int
	sampling int // observe every sampling-th set
	setBits  uint
	sets     int // sampled sets

	tags  []uint64 // sets*ways, LRU-ordered per set: index 0 = MRU
	valid []bool

	// Hits[p] counts hits at stack position p; Misses counts sampled
	// accesses that missed the shadow directory.
	Hits   []uint64
	Misses uint64
}

// NewUMON builds a monitor for a cache with the given geometry. sampling
// 0 selects every 32nd set, the classic UMON-DSS ratio.
func NewUMON(cacheSets, ways, sampling int) (*UMON, error) {
	if sampling == 0 {
		sampling = 32
	}
	if cacheSets <= 0 || ways <= 0 {
		return nil, fmt.Errorf("partition: UMON geometry %dx%d invalid", cacheSets, ways)
	}
	if cacheSets%sampling != 0 {
		return nil, fmt.Errorf("partition: %d sets not divisible by sampling %d", cacheSets, sampling)
	}
	sets := cacheSets / sampling
	setBits := uint(0)
	for 1<<setBits < cacheSets {
		setBits++
	}
	return &UMON{
		ways:     ways,
		sampling: sampling,
		setBits:  setBits,
		sets:     sets,
		tags:     make([]uint64, sets*ways),
		valid:    make([]bool, sets*ways),
		Hits:     make([]uint64, ways),
	}, nil
}

// Observe feeds one demand access. Addresses whose set is not sampled
// are ignored.
func (u *UMON) Observe(addr uint64) {
	blk := addr / 64
	cacheSet := int(blk & (uint64(1)<<u.setBits - 1))
	if cacheSet%u.sampling != 0 {
		return
	}
	set := cacheSet / u.sampling
	tag := blk >> u.setBits
	base := set * u.ways

	// Search the LRU stack.
	pos := -1
	for w := 0; w < u.ways; w++ {
		if u.valid[base+w] && u.tags[base+w] == tag {
			pos = w
			break
		}
	}
	if pos >= 0 {
		u.Hits[pos]++
	} else {
		u.Misses++
		pos = u.ways - 1 // insert displaces the LRU slot
	}
	// Move to MRU, shifting the intervening entries down.
	copy(u.tags[base+1:base+pos+1], u.tags[base:base+pos])
	copy(u.valid[base+1:base+pos+1], u.valid[base:base+pos])
	u.tags[base] = tag
	u.valid[base] = true
}

// Utility returns the cumulative hits the core would have received with
// n ways, for n in 1..ways (index 0 = 1 way). The LRU stack-inclusion
// property makes the prefix sum exact for this sampled stream.
func (u *UMON) Utility() []uint64 {
	out := make([]uint64, u.ways)
	var cum uint64
	for i := 0; i < u.ways; i++ {
		cum += u.Hits[i]
		out[i] = cum
	}
	return out
}

// Halve decays all counters by half (the standard epoch decay, keeping
// the monitor responsive to phase changes).
func (u *UMON) Halve() {
	for i := range u.Hits {
		u.Hits[i] /= 2
	}
	u.Misses /= 2
}
