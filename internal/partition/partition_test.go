package partition

import (
	"math/rand/v2"
	"testing"

	"repro/internal/cache"
)

func TestNewUMONValidation(t *testing.T) {
	if _, err := NewUMON(0, 16, 0); err == nil {
		t.Error("zero sets accepted")
	}
	if _, err := NewUMON(100, 16, 32); err == nil {
		t.Error("non-divisible sampling accepted")
	}
	if _, err := NewUMON(4096, 16, 0); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
}

func TestUMONStackHitPositions(t *testing.T) {
	// One sampled set (sampling 1 on a 1-set geometry keeps every
	// access observable).
	u, err := NewUMON(1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := func(i int) uint64 { return uint64(i) * 64 }
	// Fill A, B, C, D → all misses.
	for i := 1; i <= 4; i++ {
		u.Observe(a(i))
	}
	if u.Misses != 4 {
		t.Fatalf("misses = %d, want 4", u.Misses)
	}
	// Re-touch D (MRU): position 0.
	u.Observe(a(4))
	if u.Hits[0] != 1 {
		t.Fatalf("hits = %v, want position 0 hit", u.Hits)
	}
	// Touch A (now LRU-most): position 3.
	u.Observe(a(1))
	if u.Hits[3] != 1 {
		t.Fatalf("hits = %v, want position 3 hit", u.Hits)
	}
	// E misses and displaces the LRU; B is gone.
	u.Observe(a(5))
	prevMisses := u.Misses
	u.Observe(a(2))
	if u.Misses != prevMisses+1 {
		t.Fatal("displaced block still hit")
	}
}

func TestUMONUtilityMonotonic(t *testing.T) {
	u, err := NewUMON(64, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 100_000; i++ {
		u.Observe(uint64(rng.IntN(4096)) * 64)
	}
	util := u.Utility()
	for i := 1; i < len(util); i++ {
		if util[i] < util[i-1] {
			t.Fatalf("utility not monotone: %v", util)
		}
	}
	if util[len(util)-1] == 0 {
		t.Fatal("no hits recorded on a reusing stream")
	}
}

func TestUMONSamplingIgnoresOtherSets(t *testing.T) {
	u, err := NewUMON(64, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Set index = block % 64; sampled sets are multiples of 32.
	u.Observe(5 * 64) // set 5: ignored
	if u.Misses != 0 {
		t.Fatal("unsampled set observed")
	}
	u.Observe(32 * 64) // set 32: sampled
	if u.Misses != 1 {
		t.Fatal("sampled set ignored")
	}
}

func TestUMONHalve(t *testing.T) {
	u, _ := NewUMON(1, 4, 1)
	for i := 1; i <= 4; i++ {
		u.Observe(uint64(i) * 64)
	}
	u.Observe(64) // one hit
	u.Halve()
	if u.Misses != 2 {
		t.Fatalf("misses after halve = %d", u.Misses)
	}
}

func TestContiguousMasks(t *testing.T) {
	masks := contiguousMasks([]int{3, 5, 8})
	if masks[0] != 0b111 {
		t.Errorf("mask0 = %#b", masks[0])
	}
	if masks[1] != 0b11111000 {
		t.Errorf("mask1 = %#b", masks[1])
	}
	if masks[2] != 0xFF00 {
		t.Errorf("mask2 = %#x", masks[2])
	}
	// Disjoint and covering.
	if masks[0]&masks[1] != 0 || masks[1]&masks[2] != 0 {
		t.Error("masks overlap")
	}
	if masks[0]|masks[1]|masks[2] != 0xFFFF {
		t.Error("masks do not cover 16 ways")
	}
}

func demoLLC(cores int) *cache.Cache {
	return cache.MustNew(cache.Config{
		Name:      "llc",
		SizeBytes: 64 * 16 * cache.BlockBytes, // 64 sets × 16 ways
		Ways:      16,
		Cores:     cores,
	})
}

func TestNewControllers(t *testing.T) {
	for _, n := range Names() {
		c, err := New(n, 2)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if c.Name() != n {
			t.Errorf("%s reports %s", n, c.Name())
		}
	}
	if _, err := New("static", 2); err == nil {
		t.Error("unknown controller accepted")
	}
}

// validMasks asserts the controller contract: per-core masks, disjoint,
// covering, each non-empty.
func validMasks(t *testing.T, masks []uint64, cores, ways int) {
	t.Helper()
	if len(masks) != cores {
		t.Fatalf("got %d masks for %d cores", len(masks), cores)
	}
	var union uint64
	for i, m := range masks {
		if m == 0 {
			t.Fatalf("core %d got an empty partition", i)
		}
		if union&m != 0 {
			t.Fatalf("mask %d overlaps earlier cores", i)
		}
		union |= m
	}
	if union != uint64(1)<<uint(ways)-1 {
		t.Fatalf("masks do not cover the cache: %#x", union)
	}
}

func TestUCPFavoursTheReuser(t *testing.T) {
	llc := demoLLC(2)
	ctrl, err := New("ucp", 2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Attach(llc)
	rng := rand.New(rand.NewPCG(3, 3))
	// Core 0 reuses a working set sized ~8 ways of the sampled sets;
	// core 1 streams (no reuse).
	for i := 0; i < 400_000; i++ {
		if i%2 == 0 {
			addr := uint64(rng.IntN(64*8)) * cache.BlockBytes
			llc.Lookup(addr, 0, false)
		} else {
			addr := uint64(1)<<30 + uint64(i)*cache.BlockBytes
			llc.Lookup(addr, 1, false)
		}
	}
	masks := ctrl.Reallocate(llc)
	validMasks(t, masks, 2, 16)
	w0 := popcount(masks[0])
	w1 := popcount(masks[1])
	if w0 <= w1 {
		t.Fatalf("UCP gave the streamer %d ways vs %d for the reuser", w1, w0)
	}
}

func popcount(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

func TestTheftControllerShieldsVictim(t *testing.T) {
	llc := demoLLC(2)
	ctrl, err := New("theft", 2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Attach(llc)
	rng := rand.New(rand.NewPCG(4, 4))
	// Core 0 holds a modest set; core 1 floods, stealing from core 0.
	fill := func(addr uint64, core int) {
		if !llc.Lookup(addr, core, false) {
			llc.Fill(addr, core, false, false)
		}
	}
	for i := 0; i < 50_000; i++ {
		fill(uint64(rng.IntN(64*4))*cache.BlockBytes, 0)
		fill(uint64(1)<<30+uint64(i)*cache.BlockBytes, 1)
		fill(uint64(1)<<31+uint64(i)*cache.BlockBytes, 1)
	}
	if llc.Stats.TheftsExperienced[0] == 0 {
		t.Fatal("no thefts against the victim; scenario broken")
	}
	masks := ctrl.Reallocate(llc)
	validMasks(t, masks, 2, 16)
	if popcount(masks[0]) <= popcount(masks[1]) {
		t.Fatalf("theft controller gave the aggressor more ways: %d vs %d",
			popcount(masks[1]), popcount(masks[0]))
	}
}

func TestTheftControllerEvenWithoutContention(t *testing.T) {
	llc := demoLLC(2)
	ctrl, _ := New("theft", 2)
	ctrl.Attach(llc)
	masks := ctrl.Reallocate(llc)
	validMasks(t, masks, 2, 16)
	if popcount(masks[0]) != popcount(masks[1]) {
		t.Fatalf("no-contention allocation uneven: %d vs %d",
			popcount(masks[0]), popcount(masks[1]))
	}
}

func TestUCPMasksValidManyCores(t *testing.T) {
	for cores := 2; cores <= 4; cores++ {
		llc := demoLLC(cores)
		ctrl, err := New("ucp", cores)
		if err != nil {
			t.Fatal(err)
		}
		ctrl.Attach(llc)
		rng := rand.New(rand.NewPCG(uint64(cores), 5))
		for i := 0; i < 50_000; i++ {
			core := rng.IntN(cores)
			addr := uint64(core)<<30 + uint64(rng.IntN(2048))*cache.BlockBytes
			llc.Lookup(addr, core, false)
		}
		validMasks(t, ctrl.Reallocate(llc), cores, 16)
	}
}
