package partition

import (
	"fmt"

	"repro/internal/cache"
)

// Controller periodically recomputes per-core way allocations for a
// shared cache. Attach observes the cache (install monitors);
// Reallocate returns the new per-core way masks.
type Controller interface {
	Name() string
	// Attach installs any monitoring the controller needs. Call once.
	Attach(llc *cache.Cache)
	// Reallocate computes fresh way masks, one per core. Masks are
	// contiguous way ranges (hardware-realistic) and every core gets
	// at least one way.
	Reallocate(llc *cache.Cache) []uint64
}

// New builds a controller by name: "ucp" (utility-based, UMON-driven) or
// "theft" (CASHT-style, driven by the cache's own theft counters).
func New(name string, cores int) (Controller, error) {
	switch name {
	case "ucp":
		return &UCP{cores: cores}, nil
	case "theft":
		return &Theft{cores: cores}, nil
	}
	return nil, fmt.Errorf("partition: unknown controller %q", name)
}

// Names lists available controllers.
func Names() []string { return []string{"ucp", "theft"} }

// contiguousMasks converts a per-core way count allocation into
// contiguous, disjoint way masks covering the cache.
func contiguousMasks(alloc []int) []uint64 {
	masks := make([]uint64, len(alloc))
	start := 0
	for i, n := range alloc {
		masks[i] = (uint64(1)<<uint(n) - 1) << uint(start)
		start += n
	}
	return masks
}

// UCP is utility-based cache partitioning: each core gets a UMON; at
// each Reallocate the greedy lookahead assigns ways to whichever core
// gains the most hits per way.
type UCP struct {
	cores int
	umons []*UMON
}

// Name implements Controller.
func (u *UCP) Name() string { return "ucp" }

// Attach implements Controller: one UMON per core fed by the cache's
// access observer.
func (u *UCP) Attach(llc *cache.Cache) {
	u.umons = make([]*UMON, u.cores)
	for i := range u.umons {
		m, err := NewUMON(llc.Sets(), llc.Ways(), 0)
		if err != nil {
			// Geometry was validated by the cache itself; an error
			// here is a programming bug.
			panic(err)
		}
		u.umons[i] = m
	}
	llc.SetAccessObserver(func(addr uint64, core int, hit bool) {
		if core < len(u.umons) {
			u.umons[core].Observe(addr)
		}
	})
}

// Reallocate implements Controller via greedy lookahead (the UCP paper's
// algorithm restricted to its greedy step, which is exact for concave
// utility curves).
func (u *UCP) Reallocate(llc *cache.Cache) []uint64 {
	ways := llc.Ways()
	utils := make([][]uint64, u.cores)
	for i, m := range u.umons {
		utils[i] = m.Utility()
	}
	alloc := make([]int, u.cores)
	// Every core starts with one way.
	remaining := ways
	for i := range alloc {
		alloc[i] = 1
		remaining--
	}
	gain := func(core int) uint64 {
		have := alloc[core]
		if have >= ways {
			return 0
		}
		cur := utils[core][have-1]
		next := utils[core][have]
		return next - cur
	}
	for ; remaining > 0; remaining-- {
		best, bestGain := -1, uint64(0)
		for c := 0; c < u.cores; c++ {
			if g := gain(c); best < 0 || g > bestGain {
				best, bestGain = c, g
			}
		}
		alloc[best]++
	}
	for _, m := range u.umons {
		m.Halve()
	}
	return contiguousMasks(alloc)
}

// Theft is the CASHT-style controller: instead of shadow tags it reads
// the theft counters the cache already maintains. A core suffering
// thefts is losing useful capacity to its neighbours, so ways shift
// toward cores with high experienced-theft rates and away from cores
// that cause thefts without suffering them (streamers).
type Theft struct {
	cores int
	// prev snapshots cumulative counters so each epoch uses deltas.
	prevExp    []uint64
	prevAcc    []uint64
	prevAlloc  []int
	MinPerCore int // 0 means 1
}

// Name implements Controller.
func (t *Theft) Name() string { return "theft" }

// Attach implements Controller; the theft controller needs no monitors —
// that is its entire cost argument.
func (t *Theft) Attach(llc *cache.Cache) {
	t.prevExp = make([]uint64, t.cores)
	t.prevAcc = make([]uint64, t.cores)
}

// Reallocate implements Controller: ways are distributed proportionally
// to each core's experienced-theft rate this epoch (with a floor), so
// victims regain capacity; with no thefts anywhere the allocation is
// even.
func (t *Theft) Reallocate(llc *cache.Cache) []uint64 {
	ways := llc.Ways()
	minWays := t.MinPerCore
	if minWays == 0 {
		minWays = 1
	}
	rates := make([]float64, t.cores)
	var total float64
	for c := 0; c < t.cores; c++ {
		exp := llc.Stats.TheftsExperienced[c] - t.prevExp[c]
		acc := llc.Stats.Accesses[c] - t.prevAcc[c]
		t.prevExp[c] = llc.Stats.TheftsExperienced[c]
		t.prevAcc[c] = llc.Stats.Accesses[c]
		if acc > 0 {
			rates[c] = float64(exp) / float64(acc)
		}
		total += rates[c]
	}
	alloc := make([]int, t.cores)
	if total == 0 {
		// No thefts this epoch. If a partition is already in force it
		// is the likely reason — keep it (reverting to an even split
		// would reopen the contention it just closed). Before any
		// signal exists, share evenly.
		if t.prevAlloc != nil {
			return contiguousMasks(t.prevAlloc)
		}
		for c := range alloc {
			alloc[c] = ways / t.cores
		}
		for extra := ways - (ways/t.cores)*t.cores; extra > 0; extra-- {
			alloc[extra-1]++
		}
		t.prevAlloc = alloc
		return contiguousMasks(alloc)
	}
	// Proportional target with a floor.
	assigned := 0
	for c := range alloc {
		share := int(rates[c] / total * float64(ways-minWays*t.cores))
		alloc[c] = minWays + share
		assigned += alloc[c]
	}
	// Distribute rounding leftovers to the highest-rate cores.
	leftRates := append([]float64(nil), rates...)
	for assigned < ways {
		best := 0
		for c := range leftRates {
			if leftRates[c] > leftRates[best] {
				best = c
			}
		}
		alloc[best]++
		assigned++
		leftRates[best] /= 2 // spread further leftovers
	}
	// Hysteresis: move at most one way per epoch toward the target.
	// Re-partitioning shifts boundary ways whose resident blocks then
	// get stolen by their new owner; jumping straight to the target
	// every epoch keeps those transient thefts alive and the boundary
	// oscillating.
	if t.prevAlloc != nil {
		stepped := append([]int(nil), t.prevAlloc...)
		give, take := -1, -1
		for c := range alloc {
			if alloc[c] > stepped[c] && (take < 0 || alloc[c]-stepped[c] > alloc[take]-stepped[take]) {
				take = c
			}
			if alloc[c] < stepped[c] && (give < 0 || stepped[c]-alloc[c] > stepped[give]-alloc[give]) {
				give = c
			}
		}
		if give >= 0 && take >= 0 {
			stepped[give]--
			stepped[take]++
		}
		alloc = stepped
	}
	t.prevAlloc = alloc
	return contiguousMasks(alloc)
}
