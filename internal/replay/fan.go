package replay

import (
	"errors"
	"io"
	"sync"

	"repro/internal/trace"
)

// ErrDetached is returned by a FanReader whose view was detached from
// its Fan — either by its own consumer finishing or by an orchestrator
// abandoning a wedged consumer. A detached reader never blocks the
// group's barrier again.
var ErrDetached = errors.New("replay: fan reader detached")

// Fan is the shared-batch mode of a stream: one underlying Source is
// decoded exactly once per batch, and every attached FanReader observes
// the identical decoded records through a read-only view. Readers
// advance in lockstep — a batch is decoded only when every attached
// reader has consumed the previous one — so the Fan doubles as the
// per-batch barrier of a fan-out sweep group.
//
// The decode buffer is owned by the Fan. A published batch stays valid
// until every attached reader has asked for the next one, which is what
// makes the zero-copy views sound. When a reader detaches mid-stream
// (consumer finished, failed, or was abandoned by a watchdog), the next
// decode switches to a fresh buffer: even a leaked goroutine still
// holding the old view can only read stale — never torn — records.
type Fan struct {
	src   trace.Source
	fresh func() (trace.Source, error) // private-source factory for Rewind; may be nil
	batch int

	mu      sync.Mutex
	buf     []trace.Record
	n       int           // records in buf
	gen     uint64        // batches decoded so far; buf holds batch gen while gen > 0
	err     error         // terminal: io.EOF, a read error, or an Abort
	active  int           // attached readers
	ready   chan struct{} // closed (and replaced) when a batch publishes or the fan aborts
	swapped bool          // a reader detached: the next decode must not reuse buf

	readers []*FanReader
}

// NewFan builds a fan over src with n attached readers, decoding
// batchSize records per generation (0 selects the stream chunk size,
// 64Ki records, so each columnar chunk is decoded exactly once). fresh,
// when non-nil, builds a private replacement source for a reader that
// Rewinds — without it a rewound reader fails its subsequent reads.
func NewFan(src trace.Source, n int, batchSize int, fresh func() (trace.Source, error)) *Fan {
	if batchSize <= 0 {
		batchSize = chunkRecs
	}
	f := &Fan{
		src:   src,
		fresh: fresh,
		batch: batchSize,
		ready: make(chan struct{}),
	}
	f.active = n
	for i := 0; i < n; i++ {
		f.readers = append(f.readers, &FanReader{f: f})
	}
	return f
}

// Reader returns the i'th attached reader.
func (f *Fan) Reader(i int) *FanReader { return f.readers[i] }

// Generations reports how many batches have been decoded — the fan's
// decode-pass count, independent of how many readers consumed each.
func (f *Fan) Generations() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}

// Abort terminates the fan: every parked or future read returns err
// (ErrDetached when err is nil). Used by group watchdogs to unwedge
// readers blocked on a sibling that will never arrive at the barrier.
func (f *Fan) Abort(err error) {
	if err == nil {
		err = ErrDetached
	}
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	close(f.ready)
	f.ready = make(chan struct{})
	f.mu.Unlock()
}

// barrierReadyLocked reports whether every attached reader has consumed
// the current batch and parked for the next one — the only state in
// which decoding the next batch cannot invalidate a live view. A raw
// parked count is not enough: after an advance, a reader that parked for
// the previous generation may still be parked (woken but not yet
// scheduled) while the published batch sits unconsumed; counting it
// would let a fast sibling drive the decode straight past it. Callers
// hold f.mu; r.gen and r.parked are only mutated under it.
func (f *Fan) barrierReadyLocked() bool {
	ready := 0
	for _, r := range f.readers {
		if !r.detached && r.parked && r.gen == f.gen {
			ready++
		}
	}
	return ready >= f.active
}

// advanceLocked decodes the next batch (unless the fan is terminal) and
// wakes every parked reader. Callers hold f.mu. Parked flags are not
// reset here: each woken reader retracts its own on re-entry.
func (f *Fan) advanceLocked() {
	if f.err == nil {
		if f.swapped || f.buf == nil {
			// A detached (possibly abandoned) reader may still hold a view
			// of the old buffer; decode into a fresh one so its stale reads
			// can never observe a torn record.
			f.buf = make([]trace.Record, f.batch)
			f.swapped = false
		}
		n, err := f.src.NextBatch(f.buf)
		f.n = n
		if n == 0 {
			if err == nil {
				err = io.EOF
			}
			f.err = err
		} else {
			// Publish the records; a partial-batch error surfaces on the
			// advance after every reader has consumed them.
			if err != nil {
				f.err = err
			}
			f.gen++
		}
	}
	close(f.ready)
	f.ready = make(chan struct{})
}

// FanReader is one attached read-only view of a Fan. It implements
// trace.Source (copying reads) and trace.SliceReader (zero-copy views
// of the shared decode). Safe for use by one consumer goroutine;
// Detach may additionally be called from an orchestrator goroutine.
type FanReader struct {
	f   *Fan
	gen uint64 // batches fully consumed

	// view[pos:] is the unconsumed tail of the current batch for the
	// copying reads (NextBatch / Next).
	view []trace.Record
	pos  int

	// priv replaces the fan after Rewind: a private source serving this
	// reader alone, from the beginning of the stream.
	priv    trace.Source
	privBuf []trace.Record
	privErr error

	// Guarded by f.mu:
	parked   bool
	dead     bool
	detached bool
}

// NextSlice implements trace.SliceReader: it returns the next decoded
// batch as a read-only view, blocking until every attached sibling has
// consumed the previous one (the fan-out barrier).
func (r *FanReader) NextSlice() ([]trace.Record, error) {
	if r.priv != nil || r.privErr != nil {
		return r.privSlice()
	}
	f := r.f
	f.mu.Lock()
	for {
		r.parked = false
		if r.dead {
			f.mu.Unlock()
			return nil, ErrDetached
		}
		if f.gen > r.gen {
			// The published batch is the one this reader wants next: the
			// barrier guarantees no reader lags by more than one batch.
			view := f.buf[:f.n]
			r.gen++
			f.mu.Unlock()
			return view, nil
		}
		if f.err != nil {
			err := f.err
			f.mu.Unlock()
			return nil, err
		}
		// r.gen == f.gen here (a lagging reader took the view branch), so
		// parking always means "consumed the current batch, wants the
		// next" — the invariant barrierReadyLocked counts on.
		r.parked = true
		if f.barrierReadyLocked() {
			f.advanceLocked()
			continue
		}
		ready := f.ready
		f.mu.Unlock()
		<-ready
		f.mu.Lock()
	}
}

// NextBatch implements trace.BatchReader over the shared decode,
// copying records out so consumers with their own buffers (and batch
// sizes that straddle decode boundaries) work unchanged.
func (r *FanReader) NextBatch(recs []trace.Record) (int, error) {
	total := 0
	for total < len(recs) {
		if r.pos >= len(r.view) {
			view, err := r.NextSlice()
			if err != nil {
				if total > 0 {
					return total, nil // the sticky error resurfaces next call
				}
				return 0, err
			}
			r.view, r.pos = view, 0
		}
		n := copy(recs[total:], r.view[r.pos:])
		r.pos += n
		total += n
	}
	return total, nil
}

// Next implements trace.Reader.
func (r *FanReader) Next(rec *trace.Record) error {
	if r.pos < len(r.view) {
		*rec = r.view[r.pos]
		r.pos++
		return nil
	}
	var one [1]trace.Record
	if _, err := r.NextBatch(one[:]); err != nil {
		return err
	}
	*rec = one[0]
	return nil
}

// Rewind implements trace.Rewinder. A shared decode cannot rewind for
// one reader without rewinding all, so the reader detaches from the fan
// and continues alone on a private source built by the fan's fresh
// factory — reading from the beginning, exactly per the Source
// contract. Without a factory the reader fails its subsequent reads.
func (r *FanReader) Rewind() {
	if r.priv != nil {
		r.priv.Rewind()
		return
	}
	if r.privErr != nil {
		return
	}
	r.Detach()
	if r.f.fresh == nil {
		r.privErr = errors.New("replay: fan reader rewound without a private-source factory")
		return
	}
	src, err := r.f.fresh()
	if err != nil {
		r.privErr = err
		return
	}
	r.priv = src
	r.view, r.pos = nil, 0
}

// Detach removes the reader from the fan's barrier: siblings stop
// waiting for it and its own future reads fail with ErrDetached.
// Idempotent, and safe to call from a goroutine other than the
// consumer's — that is how a watchdog abandons a wedged point without
// wedging the group.
func (r *FanReader) Detach() {
	f := r.f
	f.mu.Lock()
	r.parked = false
	r.dead = true
	if !r.detached {
		r.detached = true
		f.active--
		f.swapped = true
		if f.active > 0 && f.barrierReadyLocked() {
			// This reader was the last hold-out; release the barrier.
			f.advanceLocked()
		}
	}
	f.mu.Unlock()
}

// privSlice serves NextSlice from the private post-Rewind source.
func (r *FanReader) privSlice() ([]trace.Record, error) {
	if r.privErr != nil {
		return nil, r.privErr
	}
	if r.privBuf == nil {
		r.privBuf = make([]trace.Record, r.f.batch)
	}
	n, err := r.priv.NextBatch(r.privBuf)
	if n == 0 {
		if err == nil {
			err = io.EOF
		}
		return nil, err
	}
	return r.privBuf[:n], nil
}
