package replay

import (
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Cache is a byte-budgeted pool of recorded streams keyed by
// (spec fingerprint, seed, base). It implements trace.SourceProvider:
// the campaign orchestrator stamps one Cache onto every config, the
// first run that needs a stream records it (concurrent first-users
// block on the stream's recording mutex instead of recording twice —
// map-level singleflight), and every other run replays the shared
// immutable arenas. Safe for concurrent use by parallel workers.
//
// The budget bounds resident arena bytes. When an extension pushes the
// pool past it, whole least-recently-used streams are dropped from the
// pool; in-flight replayers of a dropped stream keep a reference and
// finish unharmed (their arenas are reclaimed when they complete), so
// eviction can never corrupt a running simulation. The stream that is
// currently growing is never evicted by its own growth.
type Cache struct {
	budget int64 // <= 0 means unlimited

	mu      sync.Mutex
	streams map[Key]*entry
	bytes   int64
	tick    uint64

	stats Stats
}

type entry struct {
	stream  *Stream
	lastUse uint64
	// bytes mirrors the stream's arena footprint on the cache side, so
	// eviction never has to lock a victim stream (whose own growth
	// callback may be blocked on the cache mutex).
	bytes int64
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	// Hits counts Source calls served by an already-recorded stream;
	// Misses counts calls that created (and recorded) a new one.
	Hits, Misses int64
	// Evictions counts whole streams dropped to respect the budget.
	Evictions int64
	// CorruptChunks counts sealed arena chunks that failed checksum
	// verification (the damaged stream is dropped from the pool);
	// Fallbacks counts replayers that switched to live regeneration
	// because of one — degraded but never wrong.
	CorruptChunks int64
	Fallbacks     int64
	// Streams and Bytes describe current residency.
	Streams int
	Bytes   int64
	// Records is the total recorded record count across resident
	// streams' published prefixes.
	Records uint64
}

// String renders the snapshot as one log line.
func (s Stats) String() string {
	line := fmt.Sprintf("replay cache: %d streams, %.1f MiB, %d hits, %d misses, %d evictions",
		s.Streams, float64(s.Bytes)/(1<<20), s.Hits, s.Misses, s.Evictions)
	if s.CorruptChunks > 0 || s.Fallbacks > 0 {
		line += fmt.Sprintf(", %d corrupt chunks, %d regeneration fallbacks",
			s.CorruptChunks, s.Fallbacks)
	}
	return line
}

// NewCache builds a cache bounded by budgetBytes (<= 0 means unlimited)
// and publishes its live counters on the expvar page (key
// "pinte.replay", served by the prof package's -debug endpoint).
func NewCache(budgetBytes int64) *Cache {
	c := &Cache{budget: budgetBytes, streams: make(map[Key]*entry)}
	publish(c)
	return c
}

// Source implements trace.SourceProvider: it returns a replayer over
// the stream recorded for (spec, seed, base), recording on first use.
func (c *Cache) Source(spec trace.Spec, seed, base uint64) (trace.Source, error) {
	if err := fault.Err(fault.SiteReplaySource); err != nil {
		return nil, err
	}
	key := Key{Spec: spec.Fingerprint(), Seed: seed, Base: base}
	c.mu.Lock()
	e := c.streams[key]
	if e == nil {
		// Build the recording generator while NOT holding any stream
		// mutex; recording itself happens lazily as replayers read.
		gen, err := trace.NewGenerator(spec, seed, base)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		e = &entry{stream: newStream(key, spec, gen, c)}
		c.streams[key] = e
		c.stats.Misses++
	} else {
		c.stats.Hits++
	}
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()
	return e.stream.NewReplayer(), nil
}

// grew is the stream growth callback: account the new arena and evict
// least-recently-used other streams while over budget. Called with the
// growing stream's mutex held, so it must not touch stream internals.
func (c *Cache) grew(s *Stream, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.streams[s.key]
	if !ok || e.stream != s {
		return // already evicted: its growth is no longer pool-resident
	}
	c.bytes += delta
	e.bytes += delta
	// The evict fault simulates memory pressure: one forced LRU eviction
	// on this growth even while under (or without) a budget.
	force := fault.Fires(fault.SiteReplayEvict)
	if c.budget <= 0 && !force {
		return
	}
	for force || (c.budget > 0 && c.bytes > c.budget) {
		var victim Key
		var victimEntry *entry
		for k, cand := range c.streams {
			if cand.stream == s {
				continue // never evict the stream that is growing
			}
			if victimEntry == nil || cand.lastUse < victimEntry.lastUse {
				victim, victimEntry = k, cand
			}
		}
		if victimEntry == nil {
			return // only the growing stream remains; let it exceed
		}
		c.bytes -= victimEntry.bytes
		delete(c.streams, victim)
		c.stats.Evictions++
		force = false
	}
}

// corrupted drops a stream whose arena failed checksum verification from
// the pool, so future Source calls for its key re-record from scratch
// instead of handing out more replayers over damaged chunks. In-flight
// replayers of the dropped stream fall back to live regeneration on
// their own. Called from the replay read path without the stream mutex.
func (c *Cache) corrupted(s *Stream) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.CorruptChunks++
	if e, ok := c.streams[s.key]; ok && e.stream == s {
		c.bytes -= e.bytes
		delete(c.streams, s.key)
	}
}

// fellBack records one replayer switching to live regeneration.
func (c *Cache) fellBack() {
	c.mu.Lock()
	c.stats.Fallbacks++
	c.mu.Unlock()
}

// Snapshot returns the cache's current counters.
func (c *Cache) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Streams = len(c.streams)
	st.Bytes = c.bytes
	for _, e := range c.streams {
		st.Records += e.stream.Len()
	}
	return st
}

// publish exposes the most recently constructed cache as expvar
// "pinte.replay" through the telemetry package (one cache per process
// is the command-line shape; a later cache replaces an earlier one).
func publish(c *Cache) {
	telemetry.PublishReplay(func() any { return c.Snapshot() })
}
