package replay

import (
	"hash/fnv"
	"sync"
	"testing"

	"repro/internal/trace"
)

func spec(t testing.TB, name string) trace.Spec {
	t.Helper()
	s, err := trace.SpecFor(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestReplayerMatchesGenerator locks the core equivalence claim: a
// replayed stream is record-for-record identical to the generator it
// recorded, across chunk boundaries and for every access shape.
func TestReplayerMatchesGenerator(t *testing.T) {
	const n = chunkRecs + 3*1024 // cross the first arena boundary
	s := spec(t, "450.soplex")
	gen, err := trace.NewGenerator(s, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	src, err := c.Source(s, 42, 0)
	if err != nil {
		t.Fatal(err)
	}

	want := make([]trace.Record, 257) // odd size: batches straddle chunks
	got := make([]trace.Record, 257)
	// First pass records at the frontier; the second replays the packed
	// arenas, so the 32-bit pack/unpack round-trip is what's compared.
	for pass := 0; pass < 2; pass++ {
		gen.Rewind()
		src.(trace.Rewinder).Rewind()
		for read := 0; read < n; read += len(want) {
			if _, err := gen.NextBatch(want); err != nil {
				t.Fatal(err)
			}
			if _, err := src.NextBatch(got); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("pass %d record %d diverged: generated %+v, replayed %+v",
						pass, read+i, want[i], got[i])
				}
			}
		}
	}
}

// TestNextMatchesNextBatch checks the replayer's two read paths yield
// one stream.
func TestNextMatchesNextBatch(t *testing.T) {
	s := spec(t, "433.milc")
	c := NewCache(0)
	a, err := c.Source(s, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Source(s, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]trace.Record, 64)
	var rec trace.Record
	for read := 0; read < 4096; read += len(batch) {
		if _, err := a.NextBatch(batch); err != nil {
			t.Fatal(err)
		}
		for i := range batch {
			if err := b.Next(&rec); err != nil {
				t.Fatal(err)
			}
			if rec != batch[i] {
				t.Fatalf("record %d: Next %+v != NextBatch %+v", read+i, rec, batch[i])
			}
		}
	}
}

// TestReplayerRewind verifies a rewound replayer restarts the stream
// from its first record, as a fresh generator would.
func TestReplayerRewind(t *testing.T) {
	s := spec(t, "470.lbm")
	c := NewCache(0)
	src, err := c.Source(s, 3, 1<<42)
	if err != nil {
		t.Fatal(err)
	}
	first := make([]trace.Record, 512)
	if _, err := src.NextBatch(first); err != nil {
		t.Fatal(err)
	}
	skip := make([]trace.Record, 1024)
	if _, err := src.NextBatch(skip); err != nil {
		t.Fatal(err)
	}
	src.Rewind()
	again := make([]trace.Record, 512)
	if _, err := src.NextBatch(again); err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("record %d changed across rewind", i)
		}
	}
}

// TestCacheCounters pins the hit/miss accounting: same key shares a
// stream, any key component change records anew.
func TestCacheCounters(t *testing.T) {
	s := spec(t, "450.soplex")
	c := NewCache(0)
	for _, k := range []struct {
		seed, base uint64
	}{{1, 0}, {1, 0}, {2, 0}, {1, 4096}} {
		if _, err := c.Source(s, k.seed, k.base); err != nil {
			t.Fatal(err)
		}
	}
	other := spec(t, "433.milc")
	if _, err := c.Source(other, 1, 0); err != nil {
		t.Fatal(err)
	}
	st := c.Snapshot()
	if st.Misses != 4 || st.Hits != 1 {
		t.Fatalf("got %d misses / %d hits, want 4 / 1: %s", st.Misses, st.Hits, st)
	}
	if st.Streams != 4 {
		t.Fatalf("got %d resident streams, want 4", st.Streams)
	}
}

// TestCacheEviction forces the budget: with room for roughly one
// stream, touching a second must evict the least-recently-used one —
// and a live replayer of the evicted stream must keep working.
func TestCacheEviction(t *testing.T) {
	c := NewCache(chunkBytes + chunkBytes/2)
	a, err := c.Source(spec(t, "450.soplex"), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]trace.Record, 256)
	if _, err := a.NextBatch(buf); err != nil { // records stream A's first arena
		t.Fatal(err)
	}
	b, err := c.Source(spec(t, "433.milc"), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.NextBatch(buf); err != nil { // pushes past budget: A evicted
		t.Fatal(err)
	}
	st := c.Snapshot()
	if st.Evictions == 0 {
		t.Fatalf("no eviction under a one-stream budget: %s", st)
	}
	if st.Bytes > chunkBytes+chunkBytes/2 {
		t.Fatalf("resident bytes %d exceed budget: %s", st.Bytes, st)
	}
	// The evicted stream's replayer still reads (and extends privately).
	big := make([]trace.Record, chunkRecs)
	if _, err := a.NextBatch(big); err != nil {
		t.Fatalf("evicted stream's live replayer failed: %v", err)
	}
}

// TestConcurrentFirstUsers exercises the singleflight property: many
// workers cold-starting the same stream record it once and read
// identical sequences. Run under -race by make ci.
func TestConcurrentFirstUsers(t *testing.T) {
	const workers = 8
	const n = chunkRecs + 1024 // every worker crosses an arena boundary
	s := spec(t, "450.soplex")
	c := NewCache(0)
	sums := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src, err := c.Source(s, 9, 0)
			if err != nil {
				t.Error(err)
				return
			}
			h := fnv.New64a()
			buf := make([]trace.Record, 128)
			var scratch [8]byte
			for read := 0; read < n; read += len(buf) {
				if _, err := src.NextBatch(buf); err != nil {
					t.Error(err)
					return
				}
				for i := range buf {
					r := &buf[i]
					for k, v := range []uint64{r.PC, r.Load0, r.Load1, r.Store, r.Target} {
						scratch[0] = byte(k)
						scratch[1] = byte(v)
						scratch[2] = byte(v >> 8)
						scratch[3] = byte(v >> 24)
						scratch[4] = byte(v >> 32)
						scratch[5] = byte(v >> 48)
						h.Write(scratch[:6])
					}
				}
			}
			sums[w] = h.Sum64()
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if sums[w] != sums[0] {
			t.Fatalf("worker %d read a different stream: %x vs %x", w, sums[w], sums[0])
		}
	}
	st := c.Snapshot()
	if st.Misses != 1 || st.Hits != workers-1 {
		t.Fatalf("cold stream recorded more than once: %s", st)
	}
}

// TestReplayHotPathAllocFree pins the steady-state replay path at zero
// allocations: once a stream prefix is recorded, batched reads must
// never touch the heap.
func TestReplayHotPathAllocFree(t *testing.T) {
	s := spec(t, "450.soplex")
	c := NewCache(0)
	src, err := c.Source(s, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]trace.Record, 256)
	for read := 0; read < 8192; read += len(buf) { // warm: record the prefix
		if _, err := src.NextBatch(buf); err != nil {
			t.Fatal(err)
		}
	}
	rw := src.(trace.Rewinder)
	allocs := testing.AllocsPerRun(200, func() {
		rw.Rewind()
		for read := 0; read < 8192; read += len(buf) {
			if _, err := src.NextBatch(buf); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("replay hot path allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkReplayNextBatch measures the steady-state replay read rate —
// the number to compare against BenchmarkTraceGen/NextBatch (~26
// ns/instr): the difference is what the cache saves per replayed
// instruction.
func BenchmarkReplayNextBatch(b *testing.B) {
	s := spec(b, "450.soplex")
	c := NewCache(0)
	src, err := c.Source(s, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]trace.Record, 256)
	for read := 0; read < 2*chunkRecs; read += len(buf) { // record two arenas
		if _, err := src.NextBatch(buf); err != nil {
			b.Fatal(err)
		}
	}
	rw := src.(trace.Rewinder)
	rw.Rewind()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%(2*chunkRecs/len(buf)) == 0 {
			rw.Rewind() // stay inside the recorded arenas
		}
		if _, err := src.NextBatch(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(buf)), "instrs/op")
}

// TestReplayerSkip locks the seek contract phase-sampled runs depend
// on: Skip(n) then read must equal read-and-discard n then read, both
// behind the frontier (O(1) cursor advance) and at it (record-forward,
// keeping the arenas dense for later readers).
func TestReplayerSkip(t *testing.T) {
	const skip, read = chunkRecs + 1000, 2048 // skip crosses an arena boundary
	s := spec(t, "450.soplex")
	c := NewCache(0)

	// Reference: a generator discarded to the same position.
	gen, err := trace.NewGenerator(s, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]trace.Record, read)
	if err := discard(gen, skip); err != nil {
		t.Fatal(err)
	}
	if _, err := gen.NextBatch(want); err != nil {
		t.Fatal(err)
	}

	// Pass 1: skip at the frontier (nothing recorded yet).
	src, err := c.Source(s, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]trace.Record, read)
	if n, err := src.(trace.Skipper).Skip(skip); err != nil || n != skip {
		t.Fatalf("frontier Skip = %d, %v", n, err)
	}
	if _, err := src.NextBatch(got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("frontier-skip record %d diverged: %+v != %+v", i, got[i], want[i])
		}
	}

	// Pass 2: the skip recorded forward, so a second reader replays the
	// same region O(1) behind the frontier.
	src2, err := c.Source(s, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := src2.(trace.Skipper).Skip(skip); err != nil || n != skip {
		t.Fatalf("recorded Skip = %d, %v", n, err)
	}
	got2 := make([]trace.Record, read)
	if _, err := src2.NextBatch(got2); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got2[i] {
			t.Fatalf("replay-skip record %d diverged: %+v != %+v", i, got2[i], want[i])
		}
	}
}
