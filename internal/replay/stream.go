// Package replay records the post-generator instruction stream of a
// workload once and replays it read-only across every simulation that
// shares the stream — the campaign-level analogue of checkpoint-style
// simulation-interval reuse. A P_Induce sweep runs the same workload at
// many injection probabilities; only the injection events differ, so the
// deterministic synthetic generator re-derives an identical instruction
// stream for every point. Recording that stream on first use and
// replaying it for the rest of the campaign removes the generator
// (~26 ns/instruction) from all but one run per stream.
//
// Streams are stored in compact columnar (SoA) chunks — one arena per
// 64Ki records holding the op addresses (packed to 32 bits against the
// stream's address-space base), branch outcome and dependence (MLP)
// hint, 21 bytes per record — and grown at the frontier: a stream is
// keyed by (spec fingerprint, seed, base) only, not by run length, so
// runs with different warm-up/ROI budgets share one stream and simply
// grow the recording as far as any consumer reads. The reader at the
// frontier generates straight into its consumer's batch and packs the
// same records into the arena as a side effect, so the recording run
// pays only the pack — no staging buffer, no decode-back, and no
// overgenerated tail. Published records are immutable; replay behind the
// frontier is lock-free and allocation-free.
package replay

import (
	"hash/crc32"
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Key identifies one recorded stream: everything the generator's output
// depends on. Run length is deliberately absent — streams extend on
// demand — so sweeps with different warm-up/ROI budgets still share.
type Key struct {
	// Spec is the workload spec's content fingerprint
	// (trace.Spec.Fingerprint), never a pointer identity.
	Spec string
	// Seed is the generator seed (already offset per core by the
	// simulator).
	Seed uint64
	// Base is the core's address-space base.
	Base uint64
}

const (
	chunkShift = 16
	chunkRecs  = 1 << chunkShift // records per arena chunk
	chunkMask  = chunkRecs - 1
)

// chunk is one arena of chunkRecs records in columnar layout: 21 bytes
// per record versus 48 for []trace.Record, and a single allocation per
// 64Ki records. Records below the stream's published length are
// immutable; the tail of the last chunk is written only under the
// stream's mutex.
//
// Addresses are packed to 32 bits: code addresses (PC, Target) are
// stored absolute — the generator places code at a fixed sub-4GiB base —
// and data addresses are stored as offsets from the stream's
// address-space base, with 0 reserved for "no operand" exactly as in
// trace.Record (the generator's data regions start 1MiB past the base,
// so a real operand never packs to 0). Recording validates every value
// and panics if a spec's footprint escapes the 32-bit window; presets
// are megabytes, so only a pathological ad-hoc spec can trip it, and
// such a campaign should run with the replay cache off.
type chunk struct {
	pc     [chunkRecs]uint32
	load0  [chunkRecs]uint32
	load1  [chunkRecs]uint32
	store  [chunkRecs]uint32
	target [chunkRecs]uint32
	flags  [chunkRecs]uint8

	// sum is the crc32c of the column data above, computed once when the
	// chunk fills (seals). state tracks the chunk's integrity lifecycle;
	// sum is published by the sealed state store and is immutable after,
	// so readers that observe state >= chunkSealed read a stable sum.
	sum   uint32
	state atomic.Uint32
}

// Chunk integrity states. A chunk under recording is unsealed (its tail
// is still being written; reads below the published length are safe
// without verification because nothing rewrites published records).
// Filling the last record seals it with a checksum; the first reader to
// decode a sealed chunk verifies the whole arena once and promotes it to
// verified — or demotes it to corrupt, after which every reader falls
// back to live regeneration instead of decoding damaged records.
const (
	chunkUnsealed = iota
	chunkSealed
	chunkVerified
	chunkCorrupt
)

// chunkBytes is the accounted size of one arena.
const chunkBytes = int64(unsafe.Sizeof(chunk{}))

// chunkColBytes is the checksummed span: every column, nothing after.
var chunkColBytes = int(unsafe.Offsetof(chunk{}.sum))

// crcTable is the Castagnoli polynomial (hardware-accelerated on amd64
// and arm64), shared with the journal line checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// columnBytes views the chunk's column data as one byte slice for
// checksumming. The arena is a single allocation with the columns laid
// out first, so the view is exactly the packed record data.
func (c *chunk) columnBytes() []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(c)), chunkColBytes)
}

// Flag bits packed into the per-record flags column.
const (
	flagBranch    = 1 << 0
	flagTaken     = 1 << 1
	flagDependent = 1 << 2
)

// boolPat[f] is the in-memory image of trace.Record's three contiguous
// bool fields (plus one padding byte) for flag combination f, letting
// the decode loop write all three with a single 4-byte store. The table
// is built from real Records at init, so it is correct for any byte
// order; the init below proves the layout assumption.
var boolPat [8]uint32

// brShift/tkShift/dpShift are the bit positions of the three bools
// inside that 4-byte image, derived at init from boolPat itself so the
// encode side (record's flags pass) matches the decode table on any
// byte order.
var brShift, tkShift, dpShift uint

func init() {
	var r trace.Record
	if unsafe.Offsetof(r.Taken) != unsafe.Offsetof(r.IsBranch)+1 ||
		unsafe.Offsetof(r.Dependent) != unsafe.Offsetof(r.IsBranch)+2 ||
		unsafe.Offsetof(r.IsBranch)+4 > unsafe.Sizeof(r) {
		panic("replay: trace.Record bool layout changed; update the flags decode")
	}
	for f := range boolPat {
		r = trace.Record{
			IsBranch:  f&flagBranch != 0,
			Taken:     f&flagTaken != 0,
			Dependent: f&flagDependent != 0,
		}
		boolPat[f] = *(*uint32)(unsafe.Pointer(&r.IsBranch))
	}
	for _, f := range [...]int{flagBranch, flagTaken, flagDependent} {
		if bits.OnesCount32(boolPat[f]) != 1 {
			panic("replay: bool true is not a single set bit; update the flags encode")
		}
	}
	brShift = uint(bits.TrailingZeros32(boolPat[flagBranch]))
	tkShift = uint(bits.TrailingZeros32(boolPat[flagTaken]))
	dpShift = uint(bits.TrailingZeros32(boolPat[flagDependent]))
}

// Stream is one recorded instruction stream. The recorded prefix is
// append-only: readers below the published length never synchronise; the
// reader at the frontier records under the stream's mutex (so concurrent
// first-users of a cold stream share one recording instead of recording
// twice) and every later reader replays for free.
type Stream struct {
	key Key
	// spec is the workload spec the stream was recorded from, kept so a
	// corrupt-chunk failover can rebuild an equivalent generator.
	spec trace.Spec

	// mu serialises recording: the generator's state and the tail of
	// the last chunk are only touched with it held.
	mu  sync.Mutex
	gen *trace.Generator

	// chunks is the copy-on-write arena list and n the published record
	// count. Publication order matters: a new chunk's slice pointer is
	// stored before n admits its records, so a reader that observes
	// n >= need and then loads chunks sees every chunk covering need.
	chunks atomic.Pointer[[]*chunk]
	n      atomic.Uint64

	// owner, when non-nil, is the cache accounting this stream's arena
	// bytes and integrity events. Its growth hook is called with mu
	// held; the cache must not call back into the stream.
	owner *Cache

	bytes int64 // accounted arena bytes, guarded by mu
}

// newStream builds an empty recording over gen. owner may be nil.
func newStream(key Key, spec trace.Spec, gen *trace.Generator, owner *Cache) *Stream {
	s := &Stream{key: key, spec: spec, gen: gen, owner: owner}
	empty := make([]*chunk, 0)
	s.chunks.Store(&empty)
	return s
}

// Key returns the stream's identity.
func (s *Stream) Key() Key { return s.key }

// Len returns the number of records recorded so far.
func (s *Stream) Len() uint64 { return s.n.Load() }

// Bytes returns the stream's accounted arena footprint.
func (s *Stream) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// packData packs one data address as a 32-bit offset from the stream's
// base, keeping 0 as "no operand".
func packData(v, base uint64) uint32 {
	if v == 0 {
		return 0
	}
	off := v - base
	if v < base || off == 0 || off>>32 != 0 {
		panic("replay: data address outside the stream's 32-bit window; " +
			"run this spec with the replay cache off")
	}
	return uint32(off)
}

// unpackData widens one packed data address, restoring the stream base
// and keeping 0 as "no operand".
func unpackData(v uint32, base uint64) uint64 {
	if v == 0 {
		return 0
	}
	return base + uint64(v)
}

// record generates the next len(out) records of the stream directly into
// out and packs them into the arena, returning len(out). The caller must
// be positioned exactly at the frontier (pos == Len()); if another
// reader recorded past pos first, record returns 0 and the caller
// re-reads the now-published prefix instead.
func (s *Stream) record(pos uint64, out []trace.Record) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n.Load() != pos {
		return 0
	}
	// The generator never ends a stream (it implements an infinite
	// synthetic workload), so a full batch always arrives.
	n, err := s.gen.NextBatch(out)
	if err != nil || n != len(out) {
		panic("replay: generator ended an infinite stream")
	}
	base := s.key.Base
	chunks := *s.chunks.Load()
	for i := 0; i < len(out); {
		idx := int((pos + uint64(i)) >> chunkShift)
		if idx == len(chunks) {
			grown := make([]*chunk, len(chunks)+1)
			copy(grown, chunks)
			grown[len(chunks)] = new(chunk)
			chunks = grown
			s.chunks.Store(&grown)
			s.bytes += chunkBytes
			if s.owner != nil {
				s.owner.grew(s, chunkBytes)
			}
		}
		c := chunks[idx]
		j := int((pos + uint64(i)) & chunkMask)
		seg := chunkRecs - j
		if seg > len(out)-i {
			seg = len(out) - i
		}
		src := out[i : i+seg : i+seg]
		pc := c.pc[j : j+seg : j+seg]
		l0 := c.load0[j : j+seg : j+seg]
		l1 := c.load1[j : j+seg : j+seg]
		st := c.store[j : j+seg : j+seg]
		tg := c.target[j : j+seg : j+seg]
		fl := c.flags[j : j+seg : j+seg]
		// The bool triple is read as one 4-byte word (layout and 0/1
		// representation asserted at init) and branchlessly recombined
		// into the flags byte via the init-derived bit positions. The
		// 32-bit window check is deferred — hi OR-accumulates every
		// address's high half and is checked once per segment — so the
		// pack loops run branch-free at memory speed.
		var hi uint64
		if base == 0 {
			// Core-0 streams pack data addresses verbatim (0 stays 0):
			// one sequential pass over the batch does the whole record.
			for k := range src {
				rec := &src[k]
				hi |= rec.PC | rec.Load0 | rec.Load1 | rec.Store | rec.Target
				pc[k] = uint32(rec.PC)
				l0[k] = uint32(rec.Load0)
				l1[k] = uint32(rec.Load1)
				st[k] = uint32(rec.Store)
				tg[k] = uint32(rec.Target)
				w := *(*uint32)(unsafe.Pointer(&rec.IsBranch))
				fl[k] = uint8((w>>brShift)&1 | ((w>>tkShift)&1)<<1 | ((w>>dpShift)&1)<<2)
			}
		} else {
			for k := range src {
				rec := &src[k]
				hi |= rec.PC | rec.Target
				pc[k] = uint32(rec.PC)
				l0[k] = packData(rec.Load0, base)
				l1[k] = packData(rec.Load1, base)
				st[k] = packData(rec.Store, base)
				tg[k] = uint32(rec.Target)
				w := *(*uint32)(unsafe.Pointer(&rec.IsBranch))
				fl[k] = uint8((w>>brShift)&1 | ((w>>tkShift)&1)<<1 | ((w>>dpShift)&1)<<2)
			}
		}
		if hi>>32 != 0 {
			panic("replay: address outside the stream's 32-bit window; " +
				"run this spec with the replay cache off")
		}
		i += seg
	}
	// Seal every chunk this extension filled: checksum the columns once,
	// at recording time, so later readers can prove the arena they decode
	// is still the arena that was packed. The sealed-state store
	// publishes sum (release) before n admits readers to the boundary.
	newN := pos + uint64(len(out))
	for idx := int(pos >> chunkShift); uint64(idx+1)<<chunkShift <= newN; idx++ {
		c := chunks[idx]
		if c.state.Load() != chunkUnsealed {
			continue
		}
		c.sum = crc32.Checksum(c.columnBytes(), crcTable)
		if fault.Fires(fault.SiteReplayCorrupt) {
			// Injected bit rot: damage one packed record AFTER the
			// checksum, exactly the corruption shape verification must
			// catch before any consumer decodes it.
			c.pc[0] ^= 1
		}
		c.state.Store(chunkSealed)
	}
	s.n.Store(newN)
	return len(out)
}

// verified reports whether c's records are safe to decode: unsealed
// tails and already-verified chunks pass immediately; the first reader
// of a sealed chunk pays one whole-arena checksum; a chunk that fails
// is marked corrupt exactly once, counted, and reported to the owning
// cache so the damaged stream leaves the pool.
func (s *Stream) verified(c *chunk) bool {
	switch c.state.Load() {
	case chunkUnsealed, chunkVerified:
		return true
	case chunkCorrupt:
		return false
	}
	if crc32.Checksum(c.columnBytes(), crcTable) == c.sum {
		c.state.CompareAndSwap(chunkSealed, chunkVerified)
		return true
	}
	if c.state.CompareAndSwap(chunkSealed, chunkCorrupt) {
		telemetry.Degraded.ReplayCorruptChunks.Add(1)
		if s.owner != nil {
			s.owner.corrupted(s)
		}
	}
	return false
}

// NewReplayer returns an independent reader positioned at the stream's
// start. Replayers are not safe for concurrent use individually, but
// any number may read one stream concurrently.
func (s *Stream) NewReplayer() *Replayer { return &Replayer{s: s, base: s.key.Base} }

// Replayer reads a recorded stream through the trace.Source contract.
// Reads below the recorded frontier copy straight out of the columnar
// arenas — no locks, no allocation, no generator work; the reader at the
// frontier extends the recording with exactly the records its consumer
// asked for.
type Replayer struct {
	s    *Stream
	base uint64
	pos  uint64

	// chunks/limit cache the stream view this replayer has validated;
	// refreshed only when pos reaches limit. Loading n before chunks
	// (in refresh) pairs with the publication order in record.
	chunks []*chunk
	limit  uint64

	// fb, once set, replaces the arenas entirely: a corrupt chunk was
	// detected, so the rest of this replayer's life is served by a fresh
	// generator fast-forwarded to the same position — degraded (the
	// generator costs ~26 ns/instr versus ~4 for arena decode), counted
	// in expvar, and never wrong.
	fb trace.Source
}

// failover abandons the corrupt arenas: a fresh generator re-derives the
// stream from its spec and is advanced to the replayer's position, so
// the consumer's record sequence is unbroken and exactly what a cache-
// free run would have read.
func (r *Replayer) failover() error {
	gen, err := trace.NewGenerator(r.s.spec, r.s.key.Seed, r.s.key.Base)
	if err != nil {
		return err
	}
	var buf [512]trace.Record
	for skip := r.pos; skip > 0; {
		n := uint64(len(buf))
		if n > skip {
			n = skip
		}
		if _, err := gen.NextBatch(buf[:n]); err != nil {
			return err
		}
		skip -= n
	}
	r.fb = gen
	telemetry.Degraded.ReplayFallbacks.Add(1)
	if r.s.owner != nil {
		r.s.owner.fellBack()
	}
	return nil
}

// refresh re-snapshots the published arena view, returning whether it
// now extends past the replayer's position.
func (r *Replayer) refresh() bool {
	r.limit = r.s.n.Load()
	r.chunks = *r.s.chunks.Load()
	return r.pos < r.limit
}

// NextBatch implements trace.BatchReader. It always fills recs
// completely: recorded streams never end (the backing generator is
// infinite), matching the generator's own contract.
func (r *Replayer) NextBatch(recs []trace.Record) (int, error) {
	if r.fb != nil {
		return r.fb.NextBatch(recs)
	}
	out := recs
	pos := r.pos
	for len(out) > 0 {
		if pos >= r.limit {
			r.pos = pos
			if r.refresh() {
				continue
			}
			// At the frontier: generate the rest straight into out,
			// recording it as a side effect. A return of 0 means another
			// reader recorded past us first — loop and replay it.
			n := r.s.record(pos, out)
			pos += uint64(n)
			out = out[n:]
			continue
		}
		c := r.chunks[pos>>chunkShift]
		if !r.s.verified(c) {
			// The arena rotted under us: finish the batch from a fresh
			// generator and serve every later read the same way.
			r.pos = pos
			if err := r.failover(); err != nil {
				return len(recs) - len(out), err
			}
			if _, err := r.fb.NextBatch(out); err != nil {
				return len(recs) - len(out), err
			}
			return len(recs), nil
		}
		j := int(pos & chunkMask)
		seg := chunkRecs - j
		if seg > len(out) {
			seg = len(out)
		}
		if lim := int(r.limit - pos); seg > lim {
			seg = lim
		}
		// Field-at-a-time transpose: each pass streams one column
		// sequentially, and slicing both sides to the same length lets
		// the compiler drop every bounds check.
		dst := out[:seg:seg]
		for k, v := range c.pc[j : j+seg : j+seg] {
			dst[k].PC = uint64(v)
		}
		if base := r.base; base == 0 {
			// Core-0 streams (base 0) pack data addresses verbatim:
			// widening is the whole decode.
			for k, v := range c.load0[j : j+seg : j+seg] {
				dst[k].Load0 = uint64(v)
			}
			for k, v := range c.load1[j : j+seg : j+seg] {
				dst[k].Load1 = uint64(v)
			}
			for k, v := range c.store[j : j+seg : j+seg] {
				dst[k].Store = uint64(v)
			}
		} else {
			for k, v := range c.load0[j : j+seg : j+seg] {
				dst[k].Load0 = unpackData(v, base)
			}
			for k, v := range c.load1[j : j+seg : j+seg] {
				dst[k].Load1 = unpackData(v, base)
			}
			for k, v := range c.store[j : j+seg : j+seg] {
				dst[k].Store = unpackData(v, base)
			}
		}
		for k, v := range c.target[j : j+seg : j+seg] {
			dst[k].Target = uint64(v)
		}
		for k, f := range c.flags[j : j+seg : j+seg] {
			*(*uint32)(unsafe.Pointer(&dst[k].IsBranch)) = boolPat[f&7]
		}
		out = out[seg:]
		pos += uint64(seg)
	}
	r.pos = pos
	return len(recs), nil
}

// Skip implements trace.Skipper: it discards the next n records,
// advancing the cursor in O(1) across the recorded region. Skipped
// records are never decoded, so their chunks need no verification — a
// recorded stream is by construction identical to the generator
// stream, and corruption only matters for records actually consumed.
// At the frontier, Skip records forward through a scratch buffer so
// the arenas stay dense for every later reader; a failed-over replayer
// discards through its generator.
func (r *Replayer) Skip(n uint64) (uint64, error) {
	total := n
	if r.fb != nil {
		return total, discard(r.fb, n)
	}
	var buf [512]trace.Record
	for n > 0 {
		if r.pos >= r.limit {
			if r.refresh() {
				continue
			}
			want := uint64(len(buf))
			if want > n {
				want = n
			}
			// A return of 0 means another reader recorded past us
			// first; the refresh above will pick its records up.
			got := uint64(r.s.record(r.pos, buf[:want]))
			r.pos += got
			n -= got
			continue
		}
		step := r.limit - r.pos
		if step > n {
			step = n
		}
		r.pos += step
		n -= step
	}
	return total, nil
}

// discard reads and drops n records from src.
func discard(src trace.Source, n uint64) error {
	var buf [512]trace.Record
	for n > 0 {
		want := uint64(len(buf))
		if want > n {
			want = n
		}
		got, err := src.NextBatch(buf[:want])
		if err != nil {
			return err
		}
		n -= uint64(got)
	}
	return nil
}

// Next implements trace.Reader.
func (r *Replayer) Next(rec *trace.Record) error {
	if r.fb != nil {
		return r.fb.Next(rec)
	}
	pos := r.pos
	if pos == r.limit {
		var one [1]trace.Record
		if _, err := r.NextBatch(one[:]); err != nil {
			return err
		}
		*rec = one[0]
		return nil
	}
	c := r.chunks[pos>>chunkShift]
	if !r.s.verified(c) {
		if err := r.failover(); err != nil {
			return err
		}
		return r.fb.Next(rec)
	}
	j := pos & chunkMask
	f := c.flags[j]
	*rec = trace.Record{
		PC:        uint64(c.pc[j]),
		Load0:     unpackData(c.load0[j], r.base),
		Load1:     unpackData(c.load1[j], r.base),
		Store:     unpackData(c.store[j], r.base),
		Target:    uint64(c.target[j]),
		IsBranch:  f&flagBranch != 0,
		Taken:     f&flagTaken != 0,
		Dependent: f&flagDependent != 0,
	}
	r.pos = pos + 1
	return nil
}

// Rewind implements trace.Rewinder: the stream restarts from its first
// record, exactly as a fresh generator would. A failed-over replayer
// stays on its generator — the arenas it left were corrupt.
func (r *Replayer) Rewind() {
	if r.fb != nil {
		r.fb.Rewind()
		return
	}
	r.pos = 0
	r.limit = 0
	r.chunks = nil
}
