package replay

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// refGen builds an independent reference generator for comparisons.
func refGen(t *testing.T, s trace.Spec, seed, base uint64) *trace.Generator {
	t.Helper()
	g, err := trace.NewGenerator(s, seed, base)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFanReadersMatchSoloStream drives one fan with three concurrent
// readers, each on a different read path — zero-copy slices, odd-sized
// copying batches that straddle decode boundaries, and single records —
// over a Replayer-backed stream. Every reader must observe the exact
// record sequence a solo generator produces.
func TestFanReadersMatchSoloStream(t *testing.T) {
	const n = 2*chunkRecs + 1024
	s := spec(t, "450.soplex")
	c := NewCache(0)
	src, err := c.Source(s, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	fan := NewFan(src, 3, 0, nil)

	check := func(got []trace.Record, at int, gen *trace.Generator, want []trace.Record) error {
		if _, err := gen.NextBatch(want[:len(got)]); err != nil {
			return err
		}
		for i := range got {
			if got[i] != want[i] {
				return errors.New("record diverged from solo generator")
			}
		}
		_ = at
		return nil
	}

	var wg sync.WaitGroup
	errs := make([]error, 3)

	// Reader 0: zero-copy slices.
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := refGen(t, s, 42, 0)
		want := make([]trace.Record, chunkRecs)
		read := 0
		for read < n {
			view, err := fan.Reader(0).NextSlice()
			if err != nil {
				errs[0] = err
				return
			}
			if errs[0] = check(view, read, gen, want); errs[0] != nil {
				return
			}
			read += len(view)
		}
	}()

	// Reader 1: copying batches sized to straddle every chunk boundary.
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := refGen(t, s, 42, 0)
		got := make([]trace.Record, 257)
		want := make([]trace.Record, 257)
		for read := 0; read < n; read += len(got) {
			if _, err := fan.Reader(1).NextBatch(got); err != nil {
				errs[1] = err
				return
			}
			if errs[1] = check(got, read, gen, want); errs[1] != nil {
				return
			}
		}
	}()

	// Reader 2: single-record reads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := refGen(t, s, 42, 0)
		var got, want trace.Record
		for read := 0; read < n; read++ {
			if err := fan.Reader(2).Next(&got); err != nil {
				errs[2] = err
				return
			}
			if err := gen.Next(&want); err != nil {
				errs[2] = err
				return
			}
			if got != want {
				errs[2] = errors.New("record diverged from solo generator")
				return
			}
		}
	}()

	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("reader %d: %v", i, err)
		}
	}
}

// TestFanBarrierHoldsBackFastReader is the regression test for the
// barrier arithmetic: a fast reader hammering the fan must never drive
// the decode past a slow sibling that is still parked on a batch it has
// not consumed. (The original bug counted parked readers instead of
// readers that had consumed the current batch, so on a single-CPU
// schedule the fast reader advanced the decode straight through the
// slow one's unread generations.)
func TestFanBarrierHoldsBackFastReader(t *testing.T) {
	const batches, bs = 6, 2048
	s := spec(t, "433.milc")
	gen, err := trace.NewGenerator(s, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	fan := NewFan(gen, 2, bs, nil)

	var wg sync.WaitGroup
	var fastErr, slowErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < batches; i++ {
			if _, err := fan.Reader(0).NextSlice(); err != nil {
				fastErr = err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		ref := refGen(t, s, 7, 0)
		want := make([]trace.Record, bs)
		for i := 0; i < batches; i++ {
			time.Sleep(2 * time.Millisecond) // stay behind the fast reader
			view, err := fan.Reader(1).NextSlice()
			if err != nil {
				slowErr = err
				return
			}
			if _, err := ref.NextBatch(want[:len(view)]); err != nil {
				slowErr = err
				return
			}
			for j := range view {
				if view[j] != want[j] {
					slowErr = errors.New("slow reader observed records past its consumption point")
					return
				}
			}
		}
	}()
	wg.Wait()
	if fastErr != nil || slowErr != nil {
		t.Fatalf("fast=%v slow=%v", fastErr, slowErr)
	}
	if g := fan.Generations(); g != batches {
		t.Errorf("fan decoded %d generations, want %d", g, batches)
	}
}

// TestFanDetachMidStream detaches one of three readers mid-stream: the
// survivors must keep receiving the unbroken stream, the detached
// reader's future reads must fail with ErrDetached, and the fan must
// switch decode buffers so the detached reader's stale view is never
// overwritten.
func TestFanDetachMidStream(t *testing.T) {
	const batches, bs = 6, 1024
	s := spec(t, "470.lbm")
	gen, err := trace.NewGenerator(s, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	fan := NewFan(gen, 3, bs, nil)

	var wg sync.WaitGroup
	errs := make([]error, 3)
	var stale []trace.Record
	var staleCopy []trace.Record
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ref := refGen(t, s, 3, 0)
			want := make([]trace.Record, bs)
			total := batches
			if r == 2 {
				total = 2
			}
			var view []trace.Record
			for i := 0; i < total; i++ {
				var err error
				view, err = fan.Reader(r).NextSlice()
				if err != nil {
					errs[r] = err
					return
				}
				if _, err := ref.NextBatch(want[:len(view)]); err != nil {
					errs[r] = err
					return
				}
				for j := range view {
					if view[j] != want[j] {
						errs[r] = errors.New("record diverged")
						return
					}
				}
			}
			if r == 2 {
				// Keep the last view and a copy: after Detach the fan must
				// never mutate it under us.
				stale = view
				staleCopy = append([]trace.Record(nil), view...)
				fan.Reader(2).Detach()
				if _, err := fan.Reader(2).NextSlice(); !errors.Is(err, ErrDetached) {
					errs[r] = errors.New("detached reader read past Detach")
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("reader %d: %v", r, err)
		}
	}
	for i := range stale {
		if stale[i] != staleCopy[i] {
			t.Fatalf("detached reader's stale view was overwritten at record %d", i)
		}
	}
}

// TestFanRewindMidChunk rewinds one reader mid-batch: it must detach
// onto a private source that restarts the stream from record zero while
// its sibling keeps consuming the shared decode undisturbed.
func TestFanRewindMidChunk(t *testing.T) {
	const n = chunkRecs + 512
	s := spec(t, "450.soplex")
	c := NewCache(0)
	src, err := c.Source(s, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() (trace.Source, error) { return c.Source(s, 11, 0) }
	fan := NewFan(src, 2, 0, fresh)

	var wg sync.WaitGroup
	var shareErr, rewErr error

	// Reader 0 consumes the shared stream to the end of the test window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ref := refGen(t, s, 11, 0)
		got := make([]trace.Record, 257)
		want := make([]trace.Record, 257)
		for read := 0; read < n; read += len(got) {
			if _, err := fan.Reader(0).NextBatch(got); err != nil {
				shareErr = err
				return
			}
			if _, err := ref.NextBatch(want); err != nil {
				shareErr = err
				return
			}
			for i := range got {
				if got[i] != want[i] {
					shareErr = errors.New("shared reader diverged after sibling rewind")
					return
				}
			}
		}
	}()

	// Reader 1 reads partway into the first chunk, rewinds, and must see
	// the stream again from record zero on its private source.
	wg.Add(1)
	go func() {
		defer wg.Done()
		got := make([]trace.Record, 300)
		if _, err := fan.Reader(1).NextBatch(got); err != nil {
			rewErr = err
			return
		}
		fan.Reader(1).Rewind()
		ref := refGen(t, s, 11, 0)
		want := make([]trace.Record, 300)
		for read := 0; read < n; read += len(got) {
			if _, err := fan.Reader(1).NextBatch(got); err != nil {
				rewErr = err
				return
			}
			if _, err := ref.NextBatch(want); err != nil {
				rewErr = err
				return
			}
			for i := range got {
				if got[i] != want[i] {
					rewErr = errors.New("rewound reader diverged from stream start")
					return
				}
			}
		}
	}()

	wg.Wait()
	if shareErr != nil || rewErr != nil {
		t.Fatalf("shared=%v rewound=%v", shareErr, rewErr)
	}
}

// TestFanAbortUnparksReaders checks Abort delivers its error to a
// reader parked at the barrier and to all subsequent reads.
func TestFanAbortUnparksReaders(t *testing.T) {
	s := spec(t, "433.milc")
	gen, err := trace.NewGenerator(s, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	fan := NewFan(gen, 2, 1024, nil)

	boom := errors.New("group watchdog fired")
	got := make(chan error, 1)
	go func() {
		_, err := fan.Reader(0).NextSlice() // parks: sibling never arrives
		got <- err
	}()
	time.Sleep(5 * time.Millisecond)
	fan.Abort(boom)
	select {
	case err := <-got:
		if !errors.Is(err, boom) {
			t.Fatalf("parked reader unwound with %v, want the abort error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked reader never unwound after Abort")
	}
	if _, err := fan.Reader(1).NextSlice(); !errors.Is(err, boom) {
		t.Fatalf("post-abort read returned %v, want the abort error", err)
	}
}

// TestChaosFanCorruptChunkFailover shares one Replayer between two fan
// readers and rots a sealed chunk: the replayer's generator failover
// happens under the single shared decode, so both readers must still
// observe the exact solo-generator stream — degraded, counted, never
// wrong, and never diverging between siblings.
func TestChaosFanCorruptChunkFailover(t *testing.T) {
	const n = 2*chunkRecs + 1024
	s := spec(t, "450.soplex")

	fault.Enable(1)
	fault.Set(fault.SiteReplayCorrupt, fault.Spec{Every: 1, After: 1, Limit: 1})
	defer fault.Disable()

	c := NewCache(0)
	src, err := c.Source(s, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Record (and rot) the window, then rewind for the shared replay.
	rec := make([]trace.Record, 1024)
	for read := 0; read < n; read += len(rec) {
		if _, err := src.NextBatch(rec); err != nil {
			t.Fatal(err)
		}
	}
	src.(trace.Rewinder).Rewind()

	corruptBefore := telemetry.Degraded.ReplayCorruptChunks.Load()
	fan := NewFan(src, 2, 0, nil)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ref := refGen(t, s, 42, 0)
			got := make([]trace.Record, 257)
			want := make([]trace.Record, 257)
			for read := 0; read < n; read += len(got) {
				if _, err := fan.Reader(r).NextBatch(got); err != nil {
					errs[r] = err
					return
				}
				if _, err := ref.NextBatch(want); err != nil {
					errs[r] = err
					return
				}
				for i := range got {
					if got[i] != want[i] {
						errs[r] = errors.New("record diverged after corrupt-chunk failover")
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("reader %d: %v", r, err)
		}
	}
	if d := telemetry.Degraded.ReplayCorruptChunks.Load() - corruptBefore; d != 1 {
		t.Errorf("ReplayCorruptChunks advanced by %d, want 1", d)
	}
}
