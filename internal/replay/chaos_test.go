package replay

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// TestCorruptChunkFallsBackToGenerator locks the central degradation
// claim of the replay hardening: when a sealed arena chunk rots, a
// replayer crossing it switches to live regeneration and the records it
// serves are exactly what a cache-free run would have read — degraded,
// counted, never wrong.
func TestCorruptChunkFallsBackToGenerator(t *testing.T) {
	const n = 2*chunkRecs + 1024 // two sealed chunks plus a tail
	s := spec(t, "450.soplex")

	fault.Enable(1)
	// Rot the second chunk sealed: hit 1 is chunk 0, hit 2 fires.
	fault.Set(fault.SiteReplayCorrupt, fault.Spec{Every: 1, After: 1, Limit: 1})
	defer fault.Disable()

	c := NewCache(0)
	src, err := c.Source(s, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(s, 42, 0)
	if err != nil {
		t.Fatal(err)
	}

	corruptBefore := telemetry.Degraded.ReplayCorruptChunks.Load()
	fallbackBefore := telemetry.Degraded.ReplayFallbacks.Load()

	// First pass records (and, via injection, rots chunk 1). The frontier
	// reader generates straight into its batch, so pass one is still
	// correct by construction; the replay pass is the one that must
	// detect the rot and fail over.
	want := make([]trace.Record, 256)
	got := make([]trace.Record, 256)
	for read := 0; read < n; read += len(got) {
		if _, err := src.NextBatch(got); err != nil {
			t.Fatal(err)
		}
	}
	src.(trace.Rewinder).Rewind()
	for read := 0; read < n; read += len(want) {
		if _, err := gen.NextBatch(want); err != nil {
			t.Fatal(err)
		}
		if _, err := src.NextBatch(got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("record %d diverged after fallback: generator %+v, replay %+v",
					read+i, want[i], got[i])
			}
		}
	}

	if d := telemetry.Degraded.ReplayCorruptChunks.Load() - corruptBefore; d != 1 {
		t.Errorf("ReplayCorruptChunks advanced by %d, want 1", d)
	}
	if d := telemetry.Degraded.ReplayFallbacks.Load() - fallbackBefore; d != 1 {
		t.Errorf("ReplayFallbacks advanced by %d, want 1", d)
	}
	st := c.Snapshot()
	if st.CorruptChunks != 1 || st.Fallbacks != 1 {
		t.Errorf("cache stats = %d corrupt / %d fallbacks, want 1/1", st.CorruptChunks, st.Fallbacks)
	}
	// The damaged stream must leave the pool so a later Source re-records.
	if st.Streams != 0 {
		t.Errorf("corrupt stream still resident: %d streams in pool", st.Streams)
	}
	if st.Bytes != 0 {
		t.Errorf("corrupt stream bytes still accounted: %d", st.Bytes)
	}
}

// TestCorruptChunkNextPath exercises the single-record read path's
// verify-and-failover branch, which TestCorruptChunkFallsBackToGenerator
// leaves cold.
func TestCorruptChunkNextPath(t *testing.T) {
	s := spec(t, "433.milc")

	fault.Enable(1)
	fault.Set(fault.SiteReplayCorrupt, fault.Spec{Every: 1, Limit: 1})
	defer fault.Disable()

	c := NewCache(0)
	src, err := c.Source(s, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(s, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Record one full (rotted) chunk plus a little, then replay via Next.
	batch := make([]trace.Record, chunkRecs+64)
	if _, err := src.NextBatch(batch); err != nil {
		t.Fatal(err)
	}
	src.(trace.Rewinder).Rewind()
	var want, got trace.Record
	for i := 0; i < chunkRecs+64; i++ {
		if err := gen.Next(&want); err != nil {
			t.Fatal(err)
		}
		if err := src.(trace.Reader).Next(&got); err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("record %d diverged after fallback: generator %+v, replay %+v", i, want, got)
		}
	}
}

// TestSourceSiteInjectsTypedError checks the stream-acquisition site
// surfaces a clean typed error instead of a broken source.
func TestSourceSiteInjectsTypedError(t *testing.T) {
	fault.Enable(1)
	fault.Set(fault.SiteReplaySource, fault.Spec{Every: 1, Limit: 1})
	defer fault.Disable()

	c := NewCache(0)
	if _, err := c.Source(spec(t, "433.milc"), 1, 0); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Source error = %v, want fault.ErrInjected", err)
	}
	// The budget fired; the next acquisition must succeed untouched.
	src, err := c.Source(spec(t, "433.milc"), 1, 0)
	if err != nil || src == nil {
		t.Fatalf("second Source = (%v, %v), want a working source", src, err)
	}
}

// TestEvictSiteForcesEviction checks the forced-eviction site drops an
// LRU stream even with no byte budget, and that the victim's in-flight
// replayers keep working.
func TestEvictSiteForcesEviction(t *testing.T) {
	sA, sB := spec(t, "450.soplex"), spec(t, "433.milc")
	c := NewCache(0) // unlimited: only injection can evict

	victim, err := c.Source(sA, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]trace.Record, 512)
	if _, err := victim.NextBatch(batch); err != nil {
		t.Fatal(err) // make stream A resident with one arena
	}

	fault.Enable(1)
	fault.Set(fault.SiteReplayEvict, fault.Spec{Every: 1, Limit: 1})
	defer fault.Disable()

	grower, err := c.Source(sB, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grower.NextBatch(batch); err != nil {
		t.Fatal(err) // growth of B fires the site and must evict A
	}

	st := c.Snapshot()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Streams != 1 {
		t.Fatalf("streams resident = %d, want 1 (the grower)", st.Streams)
	}
	// The evicted stream's replayer holds its reference and reads on.
	gen, err := trace.NewGenerator(sA, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]trace.Record, 512)
	victim.(trace.Rewinder).Rewind()
	if _, err := gen.NextBatch(want); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.NextBatch(batch); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != batch[i] {
			t.Fatalf("evicted stream's replayer diverged at %d", i)
		}
	}
}

// TestCorruptStreamReRecordsCleanly checks a Source call after a
// corruption drop gets a fresh, correct recording (injection off by
// then, as after a transient rot).
func TestCorruptStreamReRecordsCleanly(t *testing.T) {
	s := spec(t, "450.soplex")

	fault.Enable(1)
	fault.Set(fault.SiteReplayCorrupt, fault.Spec{Every: 1, Limit: 1})

	c := NewCache(0)
	src, err := c.Source(s, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]trace.Record, chunkRecs) // record+rot chunk 0
	if _, err := src.NextBatch(batch); err != nil {
		t.Fatal(err)
	}
	src.(trace.Rewinder).Rewind()
	if _, err := src.NextBatch(batch); err != nil {
		t.Fatal(err) // trips verification, drops the stream
	}
	fault.Disable()

	fresh, err := c.Source(s, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(s, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]trace.Record, chunkRecs)
	for pass := 0; pass < 2; pass++ { // record pass, then replay pass
		gen.Rewind()
		fresh.(trace.Rewinder).Rewind()
		if _, err := gen.NextBatch(want); err != nil {
			t.Fatal(err)
		}
		if _, err := fresh.NextBatch(batch); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != batch[i] {
				t.Fatalf("pass %d: re-recorded stream diverged at %d", pass, i)
			}
		}
	}
}
