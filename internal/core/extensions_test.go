package core

import (
	"testing"

	"repro/internal/cache"
)

type countMem struct {
	lat      uint64
	accesses int
}

func (m *countMem) Access(now, addr uint64, isWrite bool) uint64 {
	m.accesses++
	return m.lat
}

func TestDRAMContentionValidate(t *testing.T) {
	mem := &countMem{lat: 100}
	bad := []DRAMContentionParams{
		{Probability: -0.1, PenaltyCycles: 10},
		{Probability: 1.5, PenaltyCycles: 10},
		{Probability: 0.5, PenaltyCycles: 0},
	}
	for _, p := range bad {
		if _, err := NewDRAMContention(p, mem); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
	if _, err := NewDRAMContention(DRAMContentionParams{Probability: 0.5, PenaltyCycles: 10}, nil); err == nil {
		t.Error("nil memory accepted")
	}
}

func TestDRAMContentionZeroProbabilityIsTransparent(t *testing.T) {
	mem := &countMem{lat: 100}
	d, err := NewDRAMContention(DRAMContentionParams{Probability: 0, Seed: 1}, mem)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if lat := d.Access(uint64(i), uint64(i)*64, false); lat != 100 {
			t.Fatalf("latency %d inflated at probability 0", lat)
		}
	}
	if d.Stats.Injections != 0 {
		t.Fatal("injections at probability 0")
	}
}

func TestDRAMContentionInflatesAtRate(t *testing.T) {
	mem := &countMem{lat: 100}
	d, err := NewDRAMContention(DRAMContentionParams{
		Probability: 0.5, PenaltyCycles: 40, Seed: 2,
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20_000
	var total uint64
	for i := 0; i < n; i++ {
		total += d.Access(uint64(i), uint64(i)*64, false)
	}
	rate := float64(d.Stats.Injections) / float64(n)
	if rate < 0.45 || rate > 0.55 {
		t.Fatalf("injection rate %v, want ≈0.5", rate)
	}
	if d.Stats.AddedCycles == 0 || total != uint64(n)*100+d.Stats.AddedCycles {
		t.Fatalf("latency accounting inconsistent: total %d, added %d", total, d.Stats.AddedCycles)
	}
	// Penalties bounded by PenaltyCycles per injection.
	if d.Stats.AddedCycles > d.Stats.Injections*40 {
		t.Fatal("penalty exceeded configured maximum")
	}
	if mem.accesses != n {
		t.Fatal("wrapped memory not called for every access")
	}
}

func TestDRAMContentionDeterministic(t *testing.T) {
	run := func() uint64 {
		mem := &countMem{lat: 100}
		d, _ := NewDRAMContention(DRAMContentionParams{
			Probability: 0.3, PenaltyCycles: 20, Seed: 9,
		}, mem)
		var total uint64
		for i := 0; i < 5000; i++ {
			total += d.Access(uint64(i), uint64(i)*64, false)
		}
		return total
	}
	if run() != run() {
		t.Fatal("same seed produced different injected latencies")
	}
}

func TestTickerSweepsSets(t *testing.T) {
	llc := demoCache(t, 8, 4, "lru")
	// Populate every set.
	for i := 0; i < 64; i++ {
		addr := uint64(i) * cache.BlockBytes
		if !llc.Lookup(addr, 0, false) {
			llc.Fill(addr, 0, false, false)
		}
	}
	eng := MustNewEngine(Params{PInduce: 1, Seed: 3})
	tk, err := NewTicker(eng, llc)
	if err != nil {
		t.Fatal(err)
	}
	visited := map[int]bool{}
	eng.Trace = func(ev Event) {
		if ev.State == StateInvalidate {
			visited[ev.Set] = true
		}
	}
	for i := 0; i < 64; i++ {
		tk.Tick()
	}
	if tk.Ticks != 64 {
		t.Fatalf("ticks = %d", tk.Ticks)
	}
	if len(visited) < 6 {
		t.Fatalf("round-robin sweep touched only %d of 8 sets", len(visited))
	}
	if llc.Stats.InducedThefts[0] == 0 {
		t.Fatal("ticker induced no thefts")
	}
}

func TestTickerValidation(t *testing.T) {
	llc := demoCache(t, 2, 2, "lru")
	if _, err := NewTicker(nil, llc); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewTicker(MustNewEngine(Params{PInduce: 1}), nil); err == nil {
		t.Error("nil LLC accepted")
	}
}

func TestTickerSkipsEmptyCache(t *testing.T) {
	// An empty cache holds nothing to steal: the ticker must not burn
	// the engine's eviction budget on vacant frames.
	llc := demoCache(t, 4, 4, "lru")
	eng := MustNewEngine(Params{PInduce: 1, Seed: 5})
	tk, err := NewTicker(eng, llc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tk.Tick()
	}
	if tk.Ticks != 100 {
		t.Fatalf("ticks = %d", tk.Ticks)
	}
	if eng.Stats.Triggers != 0 || eng.Stats.Invalidations != 0 {
		t.Fatalf("engine acted on an empty cache: %+v", eng.Stats)
	}
}

func TestTickerInducesTheftsWithoutDemandAccesses(t *testing.T) {
	// Populate a corner of the cache, then stop all demand traffic;
	// the scheduled flow must still find and steal the resident data —
	// the §IV-E2b remedy for core-bound workloads.
	llc := demoCache(t, 16, 4, "lru")
	for i := 0; i < 8; i++ { // two sets' worth of blocks
		addr := uint64(i%2)*cache.BlockBytes + uint64(i/2)*16*4*cache.BlockBytes
		if !llc.Lookup(addr, 0, false) {
			llc.Fill(addr, 0, false, false)
		}
	}
	eng := MustNewEngine(Params{PInduce: 1, Seed: 6})
	tk, err := NewTicker(eng, llc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tk.Tick()
	}
	if llc.Stats.InducedThefts[0] == 0 {
		t.Fatal("scheduled injection never reached the resident blocks")
	}
}
