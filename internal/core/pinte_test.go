package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/replacement"
)

func demoCache(t testing.TB, sets, ways int, policy string) *cache.Cache {
	t.Helper()
	return cache.MustNew(cache.Config{
		Name:      "llc",
		SizeBytes: sets * ways * cache.BlockBytes,
		Ways:      ways,
		Policy:    replacement.MustNew(policy, 99),
		Cores:     1,
	})
}

// drive performs n demand accesses over a footprint of blocks.
func drive(c *cache.Cache, n, blocks int) {
	for i := 0; i < n; i++ {
		addr := uint64(i%blocks) * cache.BlockBytes
		if !c.Lookup(addr, 0, false) {
			c.Fill(addr, 0, false, false)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	for _, p := range []float64{-0.1, 1.1, math.Inf(1)} {
		if _, err := NewEngine(Params{PInduce: p}); err == nil {
			t.Errorf("PInduce %v accepted", p)
		}
	}
	if _, err := NewEngine(Params{PInduce: 0.5}); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestTriggerRateTracksPInduce(t *testing.T) {
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
		c := demoCache(t, 16, 8, "lru")
		e := MustNewEngine(Params{PInduce: p, Seed: 5})
		c.SetInjector(e)
		drive(c, 20_000, 4096)
		got := e.Stats.TriggerRate()
		if math.Abs(got-p) > 0.02 {
			t.Errorf("PInduce %v: trigger rate %v", p, got)
		}
	}
}

// TestTriggerFiresEndpoints pins the trigger comparison at both
// endpoints of the probability range. The regression it guards: a
// non-strict comparison (draw > p exits, so draw <= p fires) lets an
// exact-zero draw inject a theft even when P_Induce = 0, breaking the
// invariant that a zero-probability engine is bit-identical to no
// engine at all.
func TestTriggerFiresEndpoints(t *testing.T) {
	almostOne := math.Nextafter(1, 0)
	cases := []struct {
		draw, p float64
		want    bool
	}{
		{0, 0, false},         // the off-by-epsilon this fixes
		{almostOne, 0, false}, // P_Induce = 0 never fires
		{0, 1, true},          // P_Induce = 1 always fires...
		{almostOne, 1, true},  // ...for every draw in [0, 1)
		{0.29, 0.3, true},
		{0.3, 0.3, false}, // a draw equal to p sits outside [0, p)
		{0.31, 0.3, false},
	}
	for _, c := range cases {
		if got := triggerFires(c.draw, c.p); got != c.want {
			t.Errorf("triggerFires(%v, %v) = %v, want %v", c.draw, c.p, got, c.want)
		}
	}
}

func TestZeroPInduceIsInert(t *testing.T) {
	c := demoCache(t, 16, 8, "lru")
	e := MustNewEngine(Params{PInduce: 0, Seed: 1})
	c.SetInjector(e)
	drive(c, 10_000, 512)
	if e.Stats.Triggers != 0 || e.Stats.Invalidations != 0 {
		t.Fatalf("engine acted at PInduce 0: %+v", e.Stats)
	}
	if c.Stats.InducedThefts[0] != 0 {
		t.Fatal("cache recorded induced thefts at PInduce 0")
	}
}

func TestInducedTheftsScaleWithPInduce(t *testing.T) {
	rates := make([]float64, 0, 3)
	for _, p := range []float64{0.1, 0.5, 1.0} {
		c := demoCache(t, 16, 8, "lru")
		e := MustNewEngine(Params{PInduce: p, Seed: 7})
		c.SetInjector(e)
		drive(c, 30_000, 4096)
		rates = append(rates, c.Stats.ContentionRate(0))
	}
	if !(rates[0] < rates[1] && rates[1] < rates[2]) {
		t.Fatalf("contention rate not monotonic in PInduce: %v", rates)
	}
}

func TestEvictBudgetBounded(t *testing.T) {
	c := demoCache(t, 4, 8, "lru")
	e := MustNewEngine(Params{PInduce: 1, Seed: 9})
	c.SetInjector(e)
	drive(c, 5_000, 256)
	if e.Stats.Triggers == 0 {
		t.Fatal("no triggers at PInduce 1")
	}
	avg := float64(e.Stats.EvictBudget) / float64(e.Stats.Triggers)
	// Uniform draw over [0, ways] has mean ways/2 = 4.
	if avg < 3 || avg > 5 {
		t.Errorf("mean eviction budget %v, want ≈4", avg)
	}
}

func TestStateMachineShape(t *testing.T) {
	c := demoCache(t, 4, 4, "lru")
	e := MustNewEngine(Params{PInduce: 1, Seed: 11})
	var events []Event
	e.Trace = func(ev Event) { events = append(events, ev) }
	c.SetInjector(e)
	drive(c, 200, 64)

	// Legal transitions per Fig 4.
	legal := map[State][]State{
		StateGenProbability: {StateGenEvictCnt, StateExit},
		StateGenEvictCnt:    {StateBlockSelect, StateExit},
		StateBlockSelect:    {StatePromote, StateBlockSelect, StateExit},
		StatePromote:        {StateInvalidate, StateDecrement},
		StateInvalidate:     {StateDecrement},
		StateDecrement:      {StateBlockSelect, StateExit},
	}
	for i := 0; i+1 < len(events); i++ {
		cur, next := events[i].State, events[i+1].State
		if cur == StateExit {
			continue
		}
		// A new access always starts at GEN-PROBABILITY; accept it as
		// a successor of any terminal position.
		if next == StateGenProbability {
			continue
		}
		ok := false
		for _, s := range legal[cur] {
			if s == next {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("illegal transition %v -> %v at %d", cur, next, i)
		}
	}
	if e.Stats.StateVisits[StateGenProbability] == 0 ||
		e.Stats.StateVisits[StatePromote] == 0 {
		t.Fatalf("state machine did not exercise core states: %v", e.Stats.StateVisits)
	}
}

func TestEngineDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) (Stats, float64) {
		c := demoCache(t, 16, 8, "lru")
		e := MustNewEngine(Params{PInduce: 0.5, Seed: seed})
		c.SetInjector(e)
		drive(c, 20_000, 2048)
		return e.Stats, c.Stats.ContentionRate(0)
	}
	s1, r1 := run(3)
	s2, r2 := run(3)
	if s1 != s2 || r1 != r2 {
		t.Fatal("same seed produced different engine behaviour")
	}
	s3, _ := run(4)
	if s1.Triggers == s3.Triggers && s1.EvictBudget == s3.EvictBudget {
		t.Fatal("different seeds produced identical trigger streams")
	}
}

func TestEngineWorksUnderEveryPolicy(t *testing.T) {
	for _, pol := range replacement.Names() {
		c := demoCache(t, 16, 8, pol)
		e := MustNewEngine(Params{PInduce: 0.8, Seed: 13})
		c.SetInjector(e)
		drive(c, 30_000, 4096)
		if c.Stats.InducedThefts[0] == 0 {
			t.Errorf("%s: no induced thefts at PInduce 0.8", pol)
		}
		if c.Stats.MockThefts[0] == 0 {
			t.Errorf("%s: no mock thefts recorded", pol)
		}
	}
}

// TestInvariantsQuick: under arbitrary access patterns and PInduce, the
// engine never invalidates more blocks than it promotes, and every
// invalidation corresponds to an induced theft in the cache.
func TestInvariantsQuick(t *testing.T) {
	f := func(seed uint64, pRaw uint8, pattern []uint16) bool {
		p := float64(pRaw%101) / 100
		c := cache.MustNew(cache.Config{
			Name:      "llc",
			SizeBytes: 8 * 4 * cache.BlockBytes,
			Ways:      4,
			Cores:     1,
		})
		e := MustNewEngine(Params{PInduce: p, Seed: seed})
		c.SetInjector(e)
		for _, v := range pattern {
			addr := uint64(v%512) * cache.BlockBytes
			if !c.Lookup(addr, 0, v%5 == 0) {
				c.Fill(addr, 0, false, false)
			}
		}
		if e.Stats.Invalidations > e.Stats.Promotions {
			return false
		}
		if c.Stats.InducedThefts[0] != e.Stats.Invalidations {
			return false
		}
		return e.Stats.Triggers <= e.Stats.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDirtyInvalidationReachesSink(t *testing.T) {
	c := demoCache(t, 4, 4, "lru")
	var wb int
	c.SetWritebackSink(func(uint64) { wb++ })
	e := MustNewEngine(Params{PInduce: 1, Seed: 17})
	c.SetInjector(e)
	for i := 0; i < 2_000; i++ {
		addr := uint64(i%64) * cache.BlockBytes
		if !c.Lookup(addr, 0, true) {
			c.Fill(addr, 0, true, false)
		}
	}
	if wb == 0 {
		t.Fatal("dirty PInTE invalidations never reached the writeback sink")
	}
}

func TestDefaultSweepShape(t *testing.T) {
	sw := DefaultSweep()
	if len(sw) != 12 {
		t.Fatalf("sweep has %d points, want 12 (paper)", len(sw))
	}
	for i, p := range sw {
		if p < 0 || p > 1 {
			t.Errorf("sweep[%d] = %v outside [0,1]", i, p)
		}
		if i > 0 && p <= sw[i-1] {
			t.Errorf("sweep not strictly increasing at %d", i)
		}
	}
	// The case-study axis points the paper names (7.5% and 70%).
	has := func(v float64) bool {
		for _, p := range sw {
			if p == v {
				return true
			}
		}
		return false
	}
	if !has(0.075) || !has(0.70) {
		t.Error("sweep missing the paper's named configurations 7.5% / 70%")
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		StateUpdateAccess:   "UPDATE-ACCESS",
		StateGenProbability: "GEN-PROBABILITY",
		StateGenEvictCnt:    "GEN-EVICT-CNT",
		StateBlockSelect:    "BLOCK-SELECT",
		StatePromote:        "PROMOTE",
		StateInvalidate:     "INVALIDATE",
		StateDecrement:      "DECREMENT",
		StateExit:           "EXIT",
	}
	for s, n := range want {
		if s.String() != n {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), n)
		}
	}
}

// TestBudgetDeliveredAcrossPolicies: at full trigger rate on a warm
// cache, the mean number of blocks invalidated per trigger must be near
// the mean drawn budget (ways/2) for every policy — the BLOCK-SELECT
// rescan guarantee. Without the rescan, pLRU and RRIP silently drop most
// of the budget because promotions move the stack end behind the scan
// pointer.
func TestBudgetDeliveredAcrossPolicies(t *testing.T) {
	for _, pol := range replacement.Names() {
		c := demoCache(t, 16, 8, pol)
		e := MustNewEngine(Params{PInduce: 1, Seed: 21})
		c.SetInjector(e)
		drive(c, 30_000, 8192)
		perTrigger := float64(e.Stats.Invalidations) / float64(e.Stats.Triggers)
		// On a miss-every-access stream at P_Induce 1, steady-state
		// delivery is bounded by the refill rate: one fill lands
		// between consecutive triggers, so at most ~1 valid block is
		// available per trigger regardless of the drawn budget. The
		// test asserts delivery sits at that ceiling for every policy;
		// pre-rescan, pLRU managed only ~0.04 per trigger.
		if perTrigger < 0.75 {
			t.Errorf("%s: %.2f invalidations per trigger; budget not delivered", pol, perTrigger)
		}
	}
}

// TestPolicyContentionRatesComparable: at equal P_Induce, the induced
// contention rate must be in the same ballpark for all policies (the
// cross-policy comparability Fig 11 depends on).
func TestPolicyContentionRatesComparable(t *testing.T) {
	rates := map[string]float64{}
	for _, pol := range replacement.Names() {
		c := demoCache(t, 16, 8, pol)
		e := MustNewEngine(Params{PInduce: 0.5, Seed: 23})
		c.SetInjector(e)
		drive(c, 40_000, 8192)
		rates[pol] = c.Stats.ContentionRate(0)
	}
	min, max := 2.0, 0.0
	for _, r := range rates {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if min <= 0 {
		t.Fatalf("a policy induced no contention: %v", rates)
	}
	if max/min > 4 {
		t.Errorf("contention rates differ >4x across policies: %v", rates)
	}
}
