package core

// Extensions beyond the paper's core mechanism. §IV-E2b attributes
// PInTE's error outliers to two structural limitations and sketches the
// remedies this file implements:
//
//   - DRAM-bound workloads ("increasing DRAM access costs could
//     complement this"): DRAMContention injects probabilistic extra
//     latency on memory accesses, standing in for the bandwidth and
//     bank pressure a real co-runner exerts beyond the LLC.
//
//   - Core-bound workloads whose LLC accesses are too rare to trigger
//     injection ("an independent PInTE module could avoid this"):
//     Ticker runs the same Fig 4 flow on a schedule decoupled from the
//     workload's LLC accesses, sweeping sets round-robin.
//
// Both are disabled by default and do not alter any baseline result.

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/rng"
)

// DRAMContentionParams configures injected memory-side contention.
type DRAMContentionParams struct {
	// Probability of adding a penalty to any one memory access, in
	// [0, 1].
	Probability float64
	// PenaltyCycles is the maximum injected delay; each injection
	// draws uniformly from [1, PenaltyCycles].
	PenaltyCycles uint64
	// Seed selects the random stream.
	Seed uint64
}

// Validate reports parameter errors.
func (p DRAMContentionParams) Validate() error {
	if p.Probability < 0 || p.Probability > 1 {
		return fmt.Errorf("pinte: DRAM contention probability %v outside [0, 1]", p.Probability)
	}
	if p.Probability > 0 && p.PenaltyCycles == 0 {
		return fmt.Errorf("pinte: DRAM contention enabled with zero penalty")
	}
	return nil
}

// DRAMContentionStats counts injected memory-side delays.
type DRAMContentionStats struct {
	Accesses    uint64
	Injections  uint64
	AddedCycles uint64
}

// DRAMContention wraps a cache.Memory and probabilistically inflates its
// latencies. It implements cache.Memory.
type DRAMContention struct {
	params DRAMContentionParams
	mem    cache.Memory
	rng    rng.PCG
	Stats  DRAMContentionStats
}

// NewDRAMContention wraps mem.
func NewDRAMContention(p DRAMContentionParams, mem cache.Memory) (*DRAMContention, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if mem == nil {
		return nil, fmt.Errorf("pinte: DRAM contention requires a memory to wrap")
	}
	d := &DRAMContention{params: p, mem: mem}
	d.rng.Seed(p.Seed, 0x6a09e667f3bcc909)
	return d, nil
}

var _ cache.Memory = (*DRAMContention)(nil)

// Access implements cache.Memory.
func (d *DRAMContention) Access(now, addr uint64, isWrite bool) uint64 {
	lat := d.mem.Access(now, addr, isWrite)
	d.Stats.Accesses++
	if d.params.Probability > 0 && d.rng.Float64() <= d.params.Probability {
		add := 1 + uint64(d.rng.Int64N(int64(d.params.PenaltyCycles)))
		d.Stats.Injections++
		d.Stats.AddedCycles += add
		lat += add
	}
	return lat
}

// ResetStats zeroes counters (end-of-warm-up semantics).
func (d *DRAMContention) ResetStats() { d.Stats = DRAMContentionStats{} }

// Ticker drives an Engine on a schedule independent of LLC accesses. The
// simulation driver calls Tick once per primary-core instruction-count
// interval. Each tick samples a few candidate sets and runs the Fig 4
// flow against the most occupied one: an adversary's insertions land
// where data lives, and an empty frame cannot host a theft, so aiming the
// scheduled flow at vacant sets would only burn its eviction budget on
// invalid ways (the Fig 4 PROMOTE→DECREMENT path).
type Ticker struct {
	engine *Engine
	llc    *cache.Cache
	rng    rng.PCG
	// Tries is how many candidate sets each tick samples; 0 means 8.
	Tries int
	// Ticks counts invocations.
	Ticks uint64
}

// NewTicker builds a ticker over llc for engine, drawing candidate sets
// from the engine's seed lineage. The engine should not additionally be
// attached as the LLC's access injector unless combined pressure is
// intended.
func NewTicker(engine *Engine, llc *cache.Cache) (*Ticker, error) {
	if engine == nil || llc == nil {
		return nil, fmt.Errorf("pinte: ticker requires an engine and an LLC")
	}
	t := &Ticker{engine: engine, llc: llc}
	t.rng.Seed(engine.params.Seed, 0xbb67ae8584caa73b)
	return t, nil
}

// validWays counts valid blocks in a set.
func (t *Ticker) validWays(set int) int {
	n := 0
	for w := 0; w < t.llc.Ways(); w++ {
		if t.llc.BlockValid(set, w) {
			n++
		}
	}
	return n
}

// Tick runs the injection flow against the fullest of a few sampled
// sets. The "requester" core id is conventional (0): ownership accounting
// charges invalidations to the block's owner, not the requester.
func (t *Ticker) Tick() {
	tries := t.Tries
	if tries == 0 {
		tries = 8
	}
	best, bestValid := -1, -1
	for i := 0; i < tries; i++ {
		set := t.rng.IntN(t.llc.Sets())
		if v := t.validWays(set); v > bestValid {
			best, bestValid = set, v
		}
		if bestValid == t.llc.Ways() {
			break
		}
	}
	if bestValid > 0 {
		t.engine.OnLLCAccess(t.llc, best, 0)
	}
	t.Ticks++
}
