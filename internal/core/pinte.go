// Package core implements PInTE — Probabilistic Induction of Theft
// Evictions — the PInTE paper's primary contribution. The engine attaches
// to the shared last-level cache and, after every demand LLC access, runs
// the Fig 4 state machine: with probability P_Induce it promotes-then-
// invalidates up to associativity-many blocks at the eviction end of the
// accessed set's replacement stack, mimicking the inter-core evictions
// ("thefts") a co-running workload would cause — without simulating a
// second core.
package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/rng"
)

// State enumerates the Fig 4 flow states. UpdateAccess is performed by
// the cache itself (the normal replacement update of the accessed block);
// the engine takes over from GenProbability.
type State int

const (
	// StateUpdateAccess is the cache's own block update on access.
	StateUpdateAccess State = iota
	// StateGenProbability draws the contention trigger ratio (Eq 2).
	StateGenProbability
	// StateGenEvictCnt draws Blocks_evict in [0, associativity].
	StateGenEvictCnt
	// StateBlockSelect scans ways for a block at the stack's eviction end.
	StateBlockSelect
	// StatePromote moves the selected block to the MRU end, as if the
	// system had inserted a block of its own.
	StatePromote
	// StateInvalidate clears the selected block's valid bit, queueing a
	// writeback if it was dirty.
	StateInvalidate
	// StateDecrement consumes one unit of the eviction budget.
	StateDecrement
	// StateExit terminates the flow for this access.
	StateExit
)

// String returns the paper's name for the state.
func (s State) String() string {
	switch s {
	case StateUpdateAccess:
		return "UPDATE-ACCESS"
	case StateGenProbability:
		return "GEN-PROBABILITY"
	case StateGenEvictCnt:
		return "GEN-EVICT-CNT"
	case StateBlockSelect:
		return "BLOCK-SELECT"
	case StatePromote:
		return "PROMOTE"
	case StateInvalidate:
		return "INVALIDATE"
	case StateDecrement:
		return "DECREMENT"
	case StateExit:
		return "EXIT"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Params configures an engine.
type Params struct {
	// PInduce is the probability of induction in [0, 1] — the paper's
	// proxy for the probability that contention occurs on an access.
	PInduce float64
	// Seed selects the engine's private random stream; reruns with a
	// different seed are the subject of the Fig 3 stability analysis.
	Seed uint64
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.PInduce < 0 || p.PInduce > 1 {
		return fmt.Errorf("pinte: PInduce %v outside [0, 1]", p.PInduce)
	}
	return nil
}

// Stats counts engine activity. Induced thefts and mock thefts are
// recorded by the cache (they belong to cache ownership accounting); the
// engine counts its own flow.
type Stats struct {
	Accesses      uint64 // LLC accesses observed
	Triggers      uint64 // accesses whose trigger ratio passed P_Induce
	EvictBudget   uint64 // sum of Blocks_evict drawn
	Promotions    uint64
	Invalidations uint64 // valid blocks invalidated
	StateVisits   [StateExit + 1]uint64
}

// TriggerRate returns observed triggers per access.
func (s *Stats) TriggerRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Triggers) / float64(s.Accesses)
}

// Event describes one state-machine step for observers.
type Event struct {
	State State
	Set   int
	Way   int
}

// Engine is a PInTE injector. Attach it to an LLC with
// cache.SetInjector. Not safe for concurrent use.
type Engine struct {
	params Params
	// rng is embedded by value so the per-access trigger draw inlines
	// without a pointer chase; streams are bit-identical to the previous
	// math/rand/v2 implementation (see internal/rng).
	rng   rng.PCG
	Stats Stats

	// Trace, when non-nil, observes every state transition; used by the
	// Fig 2 walkthrough example and by tests.
	Trace func(Event)
}

// NewEngine builds an engine; it returns an error for out-of-range
// parameters.
func NewEngine(p Params) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{params: p}
	e.rng.Seed(p.Seed, 0x853c49e6748fea9b)
	return e, nil
}

// MustNewEngine is NewEngine that panics on invalid parameters.
func MustNewEngine(p Params) *Engine {
	e, err := NewEngine(p)
	if err != nil {
		panic(err)
	}
	return e
}

// Params returns the engine's configuration.
func (e *Engine) Params() Params { return e.params }

var _ cache.Injector = (*Engine)(nil)

// triggerFires reports whether a uniform draw in [0, 1) fires induction
// at probability p: strictly draw < p, so the endpoints are exact —
// p = 0 never fires (even on an exact-zero draw) and p = 1 always does
// (every draw is below 1).
func triggerFires(draw, p float64) bool { return draw < p }

// OnLLCAccess implements cache.Injector: it runs the Fig 4 state machine
// once for the accessed set. requester is the accessing core (unused by
// the flow itself — the system acts as the adversary for every core —
// but kept for symmetry with the hook signature).
func (e *Engine) OnLLCAccess(c *cache.Cache, set, requester int) {
	e.Stats.Accesses++
	ways := c.Ways()

	state := StateGenProbability
	budget := 0
	w := 0
	for state != StateExit {
		e.Stats.StateVisits[state]++
		if e.Trace != nil {
			e.Trace(Event{State: state, Set: set, Way: w})
		}
		switch state {
		case StateGenProbability:
			// Eq 2: trigger ratio = random / max-random, i.e. a
			// uniform draw in [0, 1). The comparison must be strict:
			// a non-strict one lets an exact-zero draw trigger at
			// P_Induce = 0, which has to provably never inject.
			if !triggerFires(e.rng.Float64(), e.params.PInduce) {
				state = StateExit
				break
			}
			e.Stats.Triggers++
			state = StateGenEvictCnt

		case StateGenEvictCnt:
			// Blocks_evict bounded between 0 and associativity.
			budget = e.rng.IntN(ways + 1)
			e.Stats.EvictBudget += uint64(budget)
			w = 0
			if budget == 0 {
				state = StateExit
				break
			}
			state = StateBlockSelect

		case StateBlockSelect:
			if c.AtStackEnd(set, w) {
				state = StatePromote
				break
			}
			w++
			if w >= ways {
				// Set exhausted.
				state = StateExit
				break
			}
			// Re-enter BLOCK-SELECT with the next way.

		case StatePromote:
			c.PromoteBlock(set, w)
			e.Stats.Promotions++
			if c.BlockValid(set, w) {
				state = StateInvalidate
			} else {
				state = StateDecrement
			}

		case StateInvalidate:
			c.SysInvalidate(set, w)
			e.Stats.Invalidations++
			state = StateDecrement

		case StateDecrement:
			budget--
			if budget <= 0 {
				state = StateExit
				break
			}
			// Restart the scan: the promotion moved the stack end,
			// and for policies without a total order (pLRU's tree
			// pointer, RRIP's RRPV classes) the new victim may sit
			// at a lower way index than the scan pointer. Continuing
			// from w would silently drop most of the eviction budget
			// — GEN-EVICT-CNT drew "the number of contention events
			// to induce" (§IV-C), so each budget unit gets a fresh
			// BLOCK-SELECT walk.
			w = 0
			state = StateBlockSelect
		}
	}
	e.Stats.StateVisits[StateExit]++
}

// DefaultSweep returns the 12-point P_Induce configuration set used
// throughout the paper's experiments (Fig 3 "12 PInTE configurations",
// §IV-E4 "12 PInTE configurations × 188 traces"). Values are
// probabilities; the paper's case-study axis labels them as percentages
// (e.g. "configuration 7.5" and "70").
func DefaultSweep() []float64 {
	return []float64{0.005, 0.01, 0.025, 0.05, 0.075, 0.10, 0.20, 0.30, 0.50, 0.70, 0.90, 1.0}
}

// ResetStats zeroes the engine's counters (end-of-warm-up semantics);
// the random stream continues where it was.
func (e *Engine) ResetStats() { e.Stats = Stats{} }
