package store

//go:generate go run repro/cmd/simfp -root ../.. -out fingerprint_gen.go

// ldflagsFingerprint, when non-empty, overrides the generated simulator
// fingerprint. Release builds can inject a freshly computed hash
// without regenerating sources:
//
//	go build -ldflags "-X repro/internal/store.ldflagsFingerprint=sim-<hash>"
//
// The default path is the committed fingerprint_gen.go constant, kept
// current by `go generate ./internal/store` and gated by
// `cmd/simfp -check` (run from `make store-check`).
var ldflagsFingerprint string

// Fingerprint returns the simulator fingerprint baked into this build:
// a content hash over every package whose code determines simulation
// results (the sim import closure minus pure observability). Results
// stored under one fingerprint are never served to a build with
// another, so a changed simulator can never satisfy a lookup with a
// stale result — old-fingerprint segments stay on disk for comparison
// until GC reclaims them, but they are never hit.
func Fingerprint() string {
	if ldflagsFingerprint != "" {
		return ldflagsFingerprint
	}
	return genFingerprint
}
