// Package store is the durable, cross-campaign, content-addressed
// result store: every completed simulation result is kept on disk keyed
// by (simulator fingerprint, normalized-config SHA-256), so any run
// ever computed — by any campaign, binary, or pinted tenant sharing the
// store directory — is a cache hit instead of a recomputation.
//
// Layout. Results are CRC-framed records (the resume journal's
// `!<crc32c> <json>` framing) in append-only segment files
// (seg-<seq>.seg) under one directory, plus a small meta.json carrying
// the segment sequence counter and the LRU clock, written with the
// write-temp→fsync→rename discipline of server.Store. There is no
// persistent index: the in-memory index is rebuilt by scanning the
// segments on open (no mmap), with LoadJournal's corruption contract —
// a torn final record (crash mid-append) is trimmed benignly, a corrupt
// record anywhere else is skipped and counted while everything after it
// still loads.
//
// Staleness. Each record embeds the simulator fingerprint of the build
// that wrote it. Only records matching the opening build's fingerprint
// are indexed; older-fingerprint records stay on disk for benchjson-
// style before/after comparison until GC reclaims their segments, but
// they are never served.
//
// GC. A byte budget bounds the directory: when appends push the total
// over budget, whole segments are evicted in LRU-by-last-hit order.
// The currently-writing segment and any segment with an in-flight
// reader are never evicted.
//
// Failure policy. The store degrades to compute-without-cache, it
// never fails a run: an unreadable store opens as empty or not at all
// (the caller runs uncached), a failed append loses only the cache
// entry, and a failed or corrupt read-back counts, drops the index
// entry and reports a miss.
package store

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Record framing, shared with the resume journal:
//
//	!<8 hex chars of crc32c(payload)> <payload JSON>\n
const (
	crcSigil     = '!'
	crcHexLen    = 8
	crcPrefixLen = crcHexLen + 2 // sigil + hex + space
	// maxRecordBytes bounds one record (a Result with samples and
	// histograms is tens of KB).
	maxRecordBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// record is one segment line's payload: the writing build's simulator
// fingerprint, the config key, and the result (which embeds its config,
// keeping segments self-describing for store-verify).
type record struct {
	FP     string      `json:"fp"`
	Key    string      `json:"key"`
	Result *sim.Result `json:"result"`
}

// Options configures Open.
type Options struct {
	// Dir is the store directory, created if absent. Required.
	Dir string
	// BudgetBytes caps the directory's segment bytes; 0 disables GC.
	BudgetBytes int64
	// Fingerprint overrides the build fingerprint (tests simulate a
	// simulator change with it); empty means Fingerprint().
	Fingerprint string
	// SegmentBytes is the roll threshold for the writing segment;
	// <= 0 means 1 MiB. Smaller segments give GC finer granularity.
	SegmentBytes int64
	// Logf receives degradation notices; nil means silent.
	Logf func(format string, args ...any)
}

// segment is one on-disk segment file and its in-memory bookkeeping.
type segment struct {
	name    string // base name, e.g. seg-00000012.seg
	path    string
	seq     uint64
	size    int64
	lastHit int64 // logical LRU clock value of the most recent hit
	refs    int   // in-flight readers; > 0 pins the segment against GC
	keys    []string
	rd      *os.File // lazily opened read handle
}

// loc addresses one indexed record.
type loc struct {
	seg *segment
	off int64
	n   int
}

// meta is the small durable side file: the segment sequence counter and
// each segment's last-hit clock, so LRU order survives restarts.
type meta struct {
	Seq     uint64           `json:"seq"`
	Clock   int64            `json:"clock"`
	LastHit map[string]int64 `json:"last_hit,omitempty"`
}

// Store is a durable content-addressed result store. All methods are
// safe for concurrent use, and all are safe on a nil receiver (a nil
// *Store is the "no cache" configuration: every Get misses, every Put
// is dropped, Do computes directly).
type Store struct {
	dir    string
	fp     string
	budget int64
	segMax int64
	logf   func(string, ...any)

	mu    sync.Mutex
	segs  []*segment // open order == seq order; last is the writing segment
	index map[string]loc
	w     *os.File // append handle of the writing segment
	clock int64

	fmu     sync.Mutex
	flights map[string]*flight

	closed bool
}

// Open opens (or creates) the store rooted at opts.Dir, rebuilding the
// index from the segment files. A corrupt record is skipped and
// counted; a torn final record is trimmed. Open failures are counted in
// the open_errors expvar so callers can degrade to running uncached.
func Open(opts Options) (*Store, error) {
	s, err := open(opts)
	if err != nil {
		telemetry.StoreC.OpenErrors.Add(1)
		return nil, err
	}
	telemetry.PublishStoreGauges(s.gauges)
	return s, nil
}

func open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: Dir is required")
	}
	if err := fault.Err(fault.SiteStoreOpen); err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", opts.Dir, err)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     opts.Dir,
		fp:      opts.Fingerprint,
		budget:  opts.BudgetBytes,
		segMax:  opts.SegmentBytes,
		logf:    opts.Logf,
		index:   make(map[string]loc),
		flights: make(map[string]*flight),
	}
	if s.fp == "" {
		s.fp = Fingerprint()
	}
	if s.segMax <= 0 {
		s.segMax = 1 << 20
	}

	var m meta
	if b, err := os.ReadFile(filepath.Join(s.dir, "meta.json")); err == nil {
		// A corrupt meta costs only LRU order and restarts the sequence
		// above the scanned segments; the records themselves are intact.
		json.Unmarshal(b, &m) //nolint:errcheck
	}
	s.clock = m.Clock

	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.seg"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(names)
	for _, path := range names {
		seg := &segment{name: filepath.Base(path), path: path}
		fmt.Sscanf(seg.name, "seg-%d.seg", &seg.seq) //nolint:errcheck // unparsable names sort first and stay seq 0
		if lh, ok := m.LastHit[seg.name]; ok {
			seg.lastHit = lh
		}
		last := path == names[len(names)-1]
		if err := s.scanSegment(seg, last); err != nil {
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	// Resume appends into the last segment when it has room; otherwise
	// (or with no segments at all) the first Put rolls a fresh one.
	if n := len(s.segs); n > 0 && s.segs[n-1].size < s.segMax {
		w, err := os.OpenFile(s.segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		s.w = w
	}
	if m.Seq > 0 {
		// Never reuse a sequence number, even after eviction.
		for _, seg := range s.segs {
			if seg.seq > m.Seq {
				m.Seq = seg.seq
			}
		}
	}
	s.gcLocked()
	return s, nil
}

// scanSegment rebuilds seg's index contribution. Records under other
// fingerprints are counted stale and kept un-indexed; corrupt records
// are skipped and counted; a torn tail on the final segment is trimmed
// so the next append starts on a clean line boundary.
func (s *Store) scanSegment(seg *segment, last bool) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 256<<10)
	var off int64
	// lastBad remembers a trailing failed record so it can be
	// reclassified as a benign torn tail instead of corruption.
	lastBad := false
	goodEnd := int64(0)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) == 0 && err != nil {
			break
		}
		n := len(line)
		complete := n > 0 && line[n-1] == '\n'
		if complete {
			line = line[:n-1]
		}
		var rec record
		if !complete || parseRecord(line, &rec) != nil || rec.Key == "" || rec.Result == nil {
			if last && (err != nil || !complete) {
				lastBad = true
			} else {
				telemetry.StoreC.CorruptRecords.Add(1)
			}
			off += int64(n)
			if err != nil {
				break
			}
			continue
		}
		if rec.FP == s.fp {
			s.index[rec.Key] = loc{seg: seg, off: off, n: n - 1}
			seg.keys = append(seg.keys, rec.Key)
		} else {
			telemetry.StoreC.StaleSkipped.Add(1)
		}
		off += int64(n)
		goodEnd = off
		lastBad = false
		if err != nil {
			break
		}
	}
	seg.size = off
	if lastBad {
		telemetry.StoreC.TornTails.Add(1)
		if err := os.Truncate(seg.path, goodEnd); err != nil {
			return fmt.Errorf("store: trimming torn tail of %s: %w", seg.name, err)
		}
		seg.size = goodEnd
	}
	return nil
}

// frameRecord renders one checksummed segment line (without newline).
func frameRecord(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, crcPrefixLen+len(payload))
	line[0] = crcSigil
	sum := crc32.Checksum(payload, crcTable)
	hex.Encode(line[1:1+crcHexLen], []byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)})
	line[crcPrefixLen-1] = ' '
	copy(line[crcPrefixLen:], payload)
	return line, nil
}

// parseRecord decodes one framed line, verifying the checksum.
func parseRecord(line []byte, rec *record) error {
	if len(line) < crcPrefixLen || line[0] != crcSigil || line[crcPrefixLen-1] != ' ' {
		return fmt.Errorf("malformed record frame")
	}
	var sum [4]byte
	if _, err := hex.Decode(sum[:], line[1:1+crcHexLen]); err != nil {
		return fmt.Errorf("malformed checksum: %v", err)
	}
	payload := line[crcPrefixLen:]
	want := uint32(sum[0])<<24 | uint32(sum[1])<<16 | uint32(sum[2])<<8 | uint32(sum[3])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return fmt.Errorf("checksum mismatch: %08x != %08x", got, want)
	}
	return json.Unmarshal(payload, rec)
}

// testReadHook, when non-nil, runs between a reader pinning its
// segment and the actual read; the GC property tests use it to hold a
// reader active while evictions run.
var testReadHook func()

// Get returns the stored result for key under the current fingerprint.
// A read-back failure (I/O or checksum) counts, drops the entry, and
// reports a miss — the caller recomputes.
func (s *Store) Get(key string) (*sim.Result, bool) {
	return s.get(key, true)
}

// Lookup is Get without miss accounting, for re-checks on paths whose
// admission-time miss was already counted (the fan-out group start).
func (s *Store) Lookup(key string) (*sim.Result, bool) {
	return s.get(key, false)
}

func (s *Store) get(key string, countMiss bool) (*sim.Result, bool) {
	if s == nil {
		if countMiss {
			telemetry.StoreC.Misses.Add(1)
		}
		return nil, false
	}
	s.mu.Lock()
	l, ok := s.index[key]
	if !ok || s.closed {
		s.mu.Unlock()
		if countMiss {
			telemetry.StoreC.Misses.Add(1)
		}
		return nil, false
	}
	seg := l.seg
	seg.refs++ // pin against GC for the duration of the read
	s.clock++
	seg.lastHit = s.clock
	rd, rdErr := s.reader(seg)
	s.mu.Unlock()

	if testReadHook != nil {
		testReadHook()
	}
	res, err := readRecord(rd, rdErr, l, key, s.fp)

	s.mu.Lock()
	seg.refs--
	if err != nil {
		delete(s.index, key)
	}
	s.mu.Unlock()

	if err != nil {
		telemetry.StoreC.ReadErrors.Add(1)
		s.logfSafe("store: reading %s from %s failed (recomputing): %v", key[:8], seg.name, err)
		if countMiss {
			telemetry.StoreC.Misses.Add(1)
		}
		return nil, false
	}
	telemetry.StoreC.Hits.Add(1)
	return res, true
}

// reader returns seg's lazily opened read handle (caller holds s.mu).
func (s *Store) reader(seg *segment) (*os.File, error) {
	if seg.rd != nil {
		return seg.rd, nil
	}
	f, err := os.Open(seg.path)
	if err != nil {
		return nil, err
	}
	seg.rd = f
	return f, nil
}

// readRecord reads and verifies one pinned record; it runs without the
// store lock (ReadAt is safe for concurrent use).
func readRecord(rd *os.File, rdErr error, l loc, key, fp string) (*sim.Result, error) {
	if rdErr != nil {
		return nil, rdErr
	}
	if err := fault.Err(fault.SiteStoreRead); err != nil {
		return nil, err
	}
	buf := make([]byte, l.n)
	if _, err := rd.ReadAt(buf, l.off); err != nil {
		return nil, err
	}
	var rec record
	if err := parseRecord(buf, &rec); err != nil {
		return nil, err
	}
	if rec.Key != key || rec.FP != fp {
		return nil, fmt.Errorf("record identity mismatch (index drift)")
	}
	return rec.Result, nil
}

// Put durably appends one result under the current fingerprint. An
// append failure is counted and returned; the caller's run already
// succeeded, so the only loss is the cache entry.
func (s *Store) Put(key string, res *sim.Result) error {
	if s == nil {
		return nil
	}
	err := s.put(key, res)
	if err != nil {
		telemetry.StoreC.PutErrors.Add(1)
		return err
	}
	telemetry.StoreC.Puts.Add(1)
	return nil
}

func (s *Store) put(key string, res *sim.Result) error {
	line, err := frameRecord(record{FP: s.fp, Key: key, Result: res})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if len(line) > maxRecordBytes {
		return fmt.Errorf("store: record for %s exceeds %d bytes", key, maxRecordBytes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if err := fault.Err(fault.SiteStoreAppend); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.w == nil || s.writing().size+int64(len(line))+1 > s.segMax {
		if err := s.rollLocked(); err != nil {
			return err
		}
	}
	seg := s.writing()
	off := seg.size
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("store: appending to %s: %w", seg.name, err)
	}
	// Push the record to stable storage, matching the journal's
	// per-append durability.
	if err := s.w.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	seg.size = off + int64(len(line)) + 1
	s.index[key] = loc{seg: seg, off: off, n: len(line)}
	seg.keys = append(seg.keys, key)
	s.clock++
	seg.lastHit = s.clock
	s.gcLocked()
	return nil
}

// writing returns the current writing segment (caller holds s.mu; s.w
// is non-nil).
func (s *Store) writing() *segment { return s.segs[len(s.segs)-1] }

// rollLocked closes the writing segment and starts the next one,
// fsyncing the directory so the new file survives a power loss.
func (s *Store) rollLocked() error {
	if s.w != nil {
		s.w.Close() //nolint:errcheck // records are already synced per append
		s.w = nil
	}
	seq := uint64(1)
	for _, seg := range s.segs {
		if seg.seq >= seq {
			seq = seg.seq + 1
		}
	}
	name := fmt.Sprintf("seg-%08d.seg", seq)
	path := filepath.Join(s.dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if dir, derr := os.Open(s.dir); derr == nil {
		dir.Sync() //nolint:errcheck // advisory
		dir.Close()
	}
	s.clock++
	s.segs = append(s.segs, &segment{name: name, path: path, seq: seq, lastHit: s.clock})
	s.w = f
	return nil
}

// gcLocked evicts whole segments in LRU-by-last-hit order until the
// directory fits the byte budget. The writing segment and any segment
// with an in-flight reader are never evicted (caller holds s.mu).
func (s *Store) gcLocked() {
	if s.budget <= 0 {
		return
	}
	total := int64(0)
	for _, seg := range s.segs {
		total += seg.size
	}
	for total > s.budget {
		var victim *segment
		vi := -1
		for i, seg := range s.segs {
			if seg.refs > 0 || (s.w != nil && i == len(s.segs)-1) {
				continue
			}
			if victim == nil || seg.lastHit < victim.lastHit {
				victim, vi = seg, i
			}
		}
		if victim == nil {
			return // everything left is pinned or being written
		}
		for _, k := range victim.keys {
			if l, ok := s.index[k]; ok && l.seg == victim {
				delete(s.index, k)
			}
		}
		if victim.rd != nil {
			victim.rd.Close() //nolint:errcheck
		}
		os.Remove(victim.path) //nolint:errcheck // already out of the index; debris is re-scanned harmlessly
		s.segs = append(s.segs[:vi], s.segs[vi+1:]...)
		total -= victim.size
		telemetry.StoreC.Evictions.Add(1)
		telemetry.StoreC.EvictedBytes.Add(victim.size)
		s.logfSafe("store: evicted %s (%d bytes, LRU) to fit %d-byte budget", victim.name, victim.size, s.budget)
	}
}

// Stats is one size snapshot of the store.
type Stats struct {
	Fingerprint string
	Entries     int // indexed entries under the current fingerprint
	Segments    int
	Bytes       int64
}

// Stats snapshots the store's size.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Fingerprint: s.fp, Entries: len(s.index), Segments: len(s.segs)}
	for _, seg := range s.segs {
		st.Bytes += seg.size
	}
	return st
}

// gauges feeds the "pinte.store" expvar's size fields.
func (s *Store) gauges() map[string]int64 {
	st := s.Stats()
	return map[string]int64{
		"bytes":    st.Bytes,
		"segments": int64(st.Segments),
		"entries":  int64(st.Entries),
	}
}

// Keys returns the indexed config keys under the current fingerprint,
// sorted (store-verify samples from it).
func (s *Store) Keys() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FingerprintID returns the fingerprint this store serves.
func (s *Store) FingerprintID() string {
	if s == nil {
		return ""
	}
	return s.fp
}

// Close persists meta.json (write-temp→fsync→rename, like the service
// manifest) and closes every file handle.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	if s.w != nil {
		if err := s.w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.w = nil
	}
	m := meta{Clock: s.clock, LastHit: make(map[string]int64, len(s.segs))}
	for _, seg := range s.segs {
		m.LastHit[seg.name] = seg.lastHit
		if seg.seq > m.Seq {
			m.Seq = seg.seq
		}
		if seg.rd != nil {
			seg.rd.Close() //nolint:errcheck
			seg.rd = nil
		}
	}
	if err := s.saveMeta(m); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// saveMeta writes meta.json atomically.
func (s *Store) saveMeta(m meta) error {
	b, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, "meta.json.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "meta.json")); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(s.dir); err == nil {
		dir.Sync() //nolint:errcheck // advisory
		dir.Close()
	}
	return nil
}

func (s *Store) logfSafe(format string, args ...any) {
	if s != nil && s.logf != nil {
		s.logf(format, args...)
	}
}

// ParseFlag parses a -result-store value of the form "dir" or
// "dir,MiB" into a directory and a byte budget (0 = unlimited).
func ParseFlag(v string) (dir string, budget int64, err error) {
	dir, mib, found := strings.Cut(v, ",")
	if dir == "" {
		return "", 0, fmt.Errorf("store: empty directory in -result-store %q", v)
	}
	if found {
		var n int64
		if _, err := fmt.Sscanf(strings.TrimSpace(mib), "%d", &n); err != nil || n < 0 {
			return "", 0, fmt.Errorf("store: bad MiB budget in -result-store %q", v)
		}
		budget = n << 20
	}
	return dir, budget, nil
}
