package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// fakeResult fabricates a distinct, self-consistent result for key i.
// Store unit tests never run the simulator; byte-identity of the
// round-trip is what is under test.
func fakeResult(i int) *sim.Result {
	return &sim.Result{
		Config:   sim.Config{Workload: fmt.Sprintf("bench-%03d", i), Seed: uint64(i)},
		Instrs:   uint64(1000 + i),
		Cycles:   uint64(2000 + i),
		IPC:      0.5 + float64(i)/1000,
		MissRate: float64(i%100) / 100,
		ReuseHist: []uint64{
			uint64(i), uint64(i * 2), uint64(i * 3),
		},
	}
}

func fakeKey(i int) string { return fmt.Sprintf("%064x", i) }

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func openT(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// storeDelta snapshots the global store counters and returns a diff
// function, so tests assert deltas instead of absolute process totals.
func storeDelta() func() map[string]int64 {
	before := telemetry.StoreSnapshot()
	return func() map[string]int64 {
		after := telemetry.StoreSnapshot()
		out := make(map[string]int64, len(after))
		for k, v := range after {
			out[k] = v - before[k]
		}
		return out
	}
}

func TestPutGetReopenByteIdentical(t *testing.T) {
	dir := t.TempDir()
	const n = 20
	s := openT(t, Options{Dir: dir, Fingerprint: "sim-test"})
	want := make([][]byte, n)
	for i := 0; i < n; i++ {
		res := fakeResult(i)
		want[i] = mustJSON(t, res)
		if err := s.Put(fakeKey(i), res); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	check := func(s *Store, phase string) {
		t.Helper()
		for i := 0; i < n; i++ {
			res, ok := s.Get(fakeKey(i))
			if !ok {
				t.Fatalf("%s: Get %d missed", phase, i)
			}
			if got := mustJSON(t, res); string(got) != string(want[i]) {
				t.Fatalf("%s: entry %d not byte-identical:\n got %s\nwant %s", phase, i, got, want[i])
			}
		}
	}
	check(s, "warm")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := openT(t, Options{Dir: dir, Fingerprint: "sim-test"})
	if st := s2.Stats(); st.Entries != n {
		t.Fatalf("reopen: %d entries, want %d", st.Entries, n)
	}
	check(s2, "reopen")
	// A second value under the same key must shadow the first, across a
	// reopen too.
	upd := fakeResult(999)
	if err := s2.Put(fakeKey(0), upd); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openT(t, Options{Dir: dir, Fingerprint: "sim-test"})
	res, ok := s3.Get(fakeKey(0))
	if !ok || res.Instrs != upd.Instrs {
		t.Fatalf("updated entry not served after reopen: ok=%v res=%+v", ok, res)
	}
}

func TestFingerprintIsolation(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir, Fingerprint: "sim-old"})
	const n = 5
	for i := 0; i < n; i++ {
		if err := s.Put(fakeKey(i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// A "changed simulator" build must see zero entries — and count the
	// stale records it skipped.
	diff := storeDelta()
	s2 := openT(t, Options{Dir: dir, Fingerprint: "sim-new"})
	if st := s2.Stats(); st.Entries != 0 {
		t.Fatalf("new fingerprint indexed %d stale entries", st.Entries)
	}
	for i := 0; i < n; i++ {
		if _, ok := s2.Get(fakeKey(i)); ok {
			t.Fatalf("stale hit for key %d under new fingerprint", i)
		}
	}
	if d := diff(); d["stale_skipped"] != n || d["hits"] != 0 {
		t.Fatalf("delta = %v, want stale_skipped=%d hits=0", d, n)
	}
	// Records under both fingerprints can coexist in one directory.
	if err := s2.Put(fakeKey(0), fakeResult(100)); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	// Reverting to the old build finds its records again.
	s3 := openT(t, Options{Dir: dir, Fingerprint: "sim-old"})
	if st := s3.Stats(); st.Entries != n {
		t.Fatalf("old fingerprint sees %d entries, want %d", st.Entries, n)
	}
	res, ok := s3.Get(fakeKey(0))
	if !ok || res.Instrs != fakeResult(0).Instrs {
		t.Fatalf("old-fingerprint record lost: ok=%v", ok)
	}
}

func TestTornTailRecoversBenignly(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir, Fingerprint: "sim-test"})
	for i := 0; i < 3; i++ {
		if err := s.Put(fakeKey(i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	// Simulate a crash mid-append: a partial frame with no newline.
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`!deadbeef {"fp":"sim-test","key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	diff := storeDelta()
	s2 := openT(t, Options{Dir: dir, Fingerprint: "sim-test"})
	if d := diff(); d["torn_tails"] != 1 || d["corrupt_records"] != 0 {
		t.Fatalf("delta = %v, want torn_tails=1 corrupt_records=0", d)
	}
	if st := s2.Stats(); st.Entries != 3 {
		t.Fatalf("torn tail cost entries: %d, want 3", st.Entries)
	}
	// The tail must be physically trimmed so the next append lands on a
	// clean boundary and a further reopen is quiet.
	if err := s2.Put(fakeKey(3), fakeResult(3)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	diff = storeDelta()
	s3 := openT(t, Options{Dir: dir, Fingerprint: "sim-test"})
	if d := diff(); d["torn_tails"] != 0 || d["corrupt_records"] != 0 {
		t.Fatalf("reopen after trim not clean: %v", d)
	}
	if st := s3.Stats(); st.Entries != 4 {
		t.Fatalf("entries after trim+append = %d, want 4", st.Entries)
	}
}

func TestCorruptRecordSkipsAndCounts(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir, Fingerprint: "sim-test"})
	for i := 0; i < 3; i++ {
		if err := s.Put(fakeKey(i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the middle record; its CRC now fails but
	// the line structure (newlines) survives, so records after it load.
	lines := strings.SplitAfter(string(b), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected >=3 records in %s", segs[0])
	}
	mid := []byte(lines[1])
	mid[len(mid)/2] ^= 0xff
	lines[1] = string(mid)
	if err := os.WriteFile(segs[0], []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	diff := storeDelta()
	s2 := openT(t, Options{Dir: dir, Fingerprint: "sim-test"})
	if d := diff(); d["corrupt_records"] != 1 {
		t.Fatalf("delta = %v, want corrupt_records=1", d)
	}
	if st := s2.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (one corrupt dropped)", st.Entries)
	}
	// Records on both sides of the corruption still serve.
	if _, ok := s2.Get(fakeKey(0)); !ok {
		t.Fatal("record before corruption lost")
	}
	if _, ok := s2.Get(fakeKey(2)); !ok {
		t.Fatal("record after corruption lost")
	}
	if _, ok := s2.Get(fakeKey(1)); ok {
		t.Fatal("corrupt record served")
	}
}

func TestGCEnforcesBudgetLRU(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so each Put rolls quickly; budget of ~4 segments.
	res := fakeResult(0)
	recBytes := len(mustJSON(t, record{FP: "sim-test", Key: fakeKey(0), Result: res})) + crcPrefixLen + 1
	segBytes := int64(recBytes + 1) // one record per segment
	budget := 4 * segBytes
	diff := storeDelta()
	s := openT(t, Options{Dir: dir, Fingerprint: "sim-test", SegmentBytes: segBytes, BudgetBytes: budget})
	const n = 12
	for i := 0; i < n; i++ {
		if err := s.Put(fakeKey(i), fakeResult(0)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Bytes > budget {
		t.Fatalf("store %d bytes over %d budget", st.Bytes, budget)
	}
	d := diff()
	if d["evictions"] == 0 || d["evicted_bytes"] == 0 {
		t.Fatalf("no evictions recorded: %v", d)
	}
	// The most recent keys survive; the oldest were evicted.
	if _, ok := s.Get(fakeKey(n - 1)); !ok {
		t.Fatal("newest key evicted")
	}
	if _, ok := s.Get(fakeKey(0)); ok {
		t.Fatal("oldest key survived a full-budget sweep")
	}
	// LRU, not FIFO: touch an old survivor, fill past budget again, and
	// the untouched peers go first.
	keys := s.Keys()
	if len(keys) == 0 {
		t.Fatal("no keys left")
	}
	oldest := keys[0]
	if _, ok := s.Get(oldest); !ok {
		t.Fatalf("survivor %s unreadable", oldest[:8])
	}
	if err := s.Put(fakeKey(n), fakeResult(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(oldest); !ok {
		t.Fatal("recently-hit segment evicted before colder peers")
	}
}

func TestGCNeverEvictsSegmentWithActiveReader(t *testing.T) {
	dir := t.TempDir()
	res := fakeResult(0)
	recBytes := len(mustJSON(t, record{FP: "sim-test", Key: fakeKey(0), Result: res})) + crcPrefixLen + 1
	segBytes := int64(recBytes + 1)
	s := openT(t, Options{Dir: dir, Fingerprint: "sim-test", SegmentBytes: segBytes, BudgetBytes: 3 * segBytes})
	if err := s.Put(fakeKey(0), fakeResult(0)); err != nil {
		t.Fatal(err)
	}

	readerIn := make(chan struct{})
	readerGo := make(chan struct{})
	testReadHook = func() {
		close(readerIn)
		<-readerGo
	}
	defer func() { testReadHook = nil }()

	readDone := make(chan bool)
	go func() {
		_, ok := s.Get(fakeKey(0))
		readDone <- ok
	}()
	<-readerIn
	testReadHook = nil

	// While the reader is parked mid-read, drive enough Puts that GC
	// must evict everything evictable — the pinned segment has the
	// lowest lastHit but must survive.
	for i := 1; i < 10; i++ {
		if err := s.Put(fakeKey(i), fakeResult(0)); err != nil {
			t.Fatal(err)
		}
	}
	close(readerGo)
	if ok := <-readDone; !ok {
		t.Fatal("active reader lost its segment to GC")
	}
}

func TestSingleFlightCollapsesDuplicates(t *testing.T) {
	s := openT(t, Options{Dir: t.TempDir(), Fingerprint: "sim-test"})
	const n = 16
	var computes atomic.Int64
	block := make(chan struct{})
	diff := storeDelta()
	var wg sync.WaitGroup
	results := make([]*sim.Result, n)
	vias := make([]Via, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, via, err := s.Do(context.Background(), fakeKey(0), func() (*sim.Result, error) {
				computes.Add(1)
				<-block // hold all duplicates in flight
				return fakeResult(7), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], vias[i] = res, via
		}(i)
	}
	// Wait for the leader to be computing so every other goroutine piles
	// onto its flight, then release.
	for computes.Load() == 0 {
		runtime.Gosched()
	}
	close(block)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	leaders, sharers := 0, 0
	for i := range vias {
		switch vias[i] {
		case ViaCompute:
			leaders++
		case ViaFlight, ViaHit:
			sharers++
		}
		if results[i] == nil || results[i].Instrs != fakeResult(7).Instrs {
			t.Fatalf("caller %d got wrong result %+v", i, results[i])
		}
	}
	if leaders != 1 || sharers != n-1 {
		t.Fatalf("leaders=%d sharers=%d, want 1/%d", leaders, sharers, n-1)
	}
	if d := diff(); d["singleflight_shared"] != n-1 {
		t.Fatalf("delta = %v, want singleflight_shared=%d", d, n-1)
	}
}

func TestSingleFlightPanickedLeaderWakesWaiters(t *testing.T) {
	s := openT(t, Options{Dir: t.TempDir(), Fingerprint: "sim-test"})
	var attempts atomic.Int64
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})

	// Leader: panics mid-compute.
	leaderDone := make(chan any, 1)
	go func() {
		defer func() { leaderDone <- recover() }()
		s.Do(context.Background(), fakeKey(0), func() (*sim.Result, error) {
			attempts.Add(1)
			close(leaderIn)
			<-leaderGo
			panic("chaos: leader dies")
		})
	}()
	<-leaderIn

	// Waiter: must not inherit the panic — it wakes into its own attempt
	// and succeeds.
	diff := storeDelta()
	waiterParked := make(chan struct{})
	testWaitHook = func() {
		if waiterParked != nil {
			close(waiterParked)
			waiterParked = nil
		}
	}
	defer func() { testWaitHook = nil }()
	waiterDone := make(chan error, 1)
	parked := waiterParked
	go func() {
		res, _, err := s.Do(context.Background(), fakeKey(0), func() (*sim.Result, error) {
			attempts.Add(1)
			return fakeResult(1), nil
		})
		if err == nil && (res == nil || res.Instrs != fakeResult(1).Instrs) {
			err = fmt.Errorf("wrong result %+v", res)
		}
		waiterDone <- err
	}()
	<-parked // the waiter is on the leader's flight before the panic
	close(leaderGo)
	if r := <-leaderDone; r == nil {
		t.Fatal("leader panic swallowed — it must propagate to the caller's recovery")
	}
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter after panicked leader: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2 (leader + woken waiter)", got)
	}
	if d := diff(); d["singleflight_retries"] != 1 {
		t.Fatalf("delta = %v, want singleflight_retries=1", d)
	}
}

func TestSingleFlightWaiterHonorsContext(t *testing.T) {
	s := openT(t, Options{Dir: t.TempDir(), Fingerprint: "sim-test"})
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	go func() {
		s.Do(context.Background(), fakeKey(0), func() (*sim.Result, error) {
			close(leaderIn)
			<-leaderGo
			return fakeResult(0), nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := s.Do(ctx, fakeKey(0), func() (*sim.Result, error) {
		t.Error("canceled waiter must not compute")
		return nil, nil
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(leaderGo)
}

func TestNilStoreIsNoCache(t *testing.T) {
	var s *Store
	if _, ok := s.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put("k", fakeResult(0)); err != nil {
		t.Fatal(err)
	}
	res, via, err := s.Do(context.Background(), "k", func() (*sim.Result, error) { return fakeResult(3), nil })
	if err != nil || via != ViaCompute || res.Instrs != fakeResult(3).Instrs {
		t.Fatalf("nil Do: res=%+v via=%v err=%v", res, via, err)
	}
	if s.InFlight("k") {
		t.Fatal("nil store reports in-flight")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatal("nil stats")
	}
	if s.Keys() != nil || s.FingerprintID() != "" {
		t.Fatal("nil accessors")
	}
}

func TestParseFlag(t *testing.T) {
	cases := []struct {
		in     string
		dir    string
		budget int64
		err    bool
	}{
		{"cache", "cache", 0, false},
		{"/tmp/s,64", "/tmp/s", 64 << 20, false},
		{"/tmp/s, 8", "/tmp/s", 8 << 20, false},
		{",64", "", 0, true},
		{"d,notanum", "", 0, true},
		{"d,-3", "", 0, true},
	}
	for _, c := range cases {
		dir, budget, err := ParseFlag(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseFlag(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if err == nil && (dir != c.dir || budget != c.budget) {
			t.Errorf("ParseFlag(%q) = (%q, %d), want (%q, %d)", c.in, dir, budget, c.dir, c.budget)
		}
	}
}

func TestFingerprintIsGenerated(t *testing.T) {
	fp := Fingerprint()
	if !strings.HasPrefix(fp, "sim-") || len(fp) != len("sim-")+16 {
		t.Fatalf("fingerprint %q is not sim-<16 hex>", fp)
	}
	if fp == "sim-bootstrap" {
		t.Fatal("fingerprint_gen.go still holds the bootstrap placeholder; run go generate ./internal/store")
	}
}
