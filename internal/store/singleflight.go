package store

import (
	"context"
	"sync"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// flight is one in-progress computation of a config key. Waiters block
// on done; the leader fills res/ok before closing it. ok stays false
// when the leader failed or panicked, waking waiters into their own
// attempts instead of handing them a result that does not exist.
type flight struct {
	done chan struct{}
	res  *sim.Result
	ok   bool
}

// Via reports how Do satisfied a request.
type Via int

const (
	// ViaCompute: this caller was the leader and ran compute itself.
	ViaCompute Via = iota
	// ViaFlight: another caller's in-flight computation was shared.
	ViaFlight
	// ViaHit: the store already held the result.
	ViaHit
)

// testWaitHook, when non-nil, runs just before a duplicate caller
// parks on an existing flight; tests use it to sequence waiters
// deterministically against their leader.
var testWaitHook func()

// Do returns the result for key, computing it at most once across all
// concurrent callers of this store: the first caller for a key becomes
// the leader and runs compute; every concurrent duplicate — another
// campaign, another pinted tenant — blocks on the leader instead of
// burning a worker on the same simulation. A leader that fails or
// panics is chaos-safe: its waiters wake into their own attempts (one
// of them becomes the next leader) rather than inheriting the failure.
//
// Do does not write the store; the leader's caller persists the result
// itself (journal first, then Put) so durability ordering matches the
// campaign journal. On a nil store Do degrades to calling compute.
func (s *Store) Do(ctx context.Context, key string, compute func() (*sim.Result, error)) (*sim.Result, Via, error) {
	if s == nil {
		res, err := compute()
		return res, ViaCompute, err
	}
	for {
		// The store may have gained the entry since the caller's initial
		// lookup (a leader finished and Put); misses here are not counted
		// — the caller already counted its original miss.
		if res, ok := s.get(key, false); ok {
			return res, ViaHit, nil
		}
		s.fmu.Lock()
		if f, ok := s.flights[key]; ok {
			s.fmu.Unlock()
			if testWaitHook != nil {
				testWaitHook()
			}
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ViaFlight, ctx.Err()
			}
			if f.ok {
				telemetry.StoreC.SingleFlightShared.Add(1)
				return f.res, ViaFlight, nil
			}
			// Leader failed or panicked: retry, possibly becoming the new
			// leader ourselves.
			telemetry.StoreC.SingleFlightRetries.Add(1)
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.flights[key] = f
		s.fmu.Unlock()

		var (
			res *sim.Result
			err error
		)
		func() {
			// The deferred unwind runs even when compute panics, so
			// waiters are always released; the panic itself propagates to
			// the caller's recovery (the runner's safeCall).
			defer func() {
				s.fmu.Lock()
				delete(s.flights, key)
				s.fmu.Unlock()
				close(f.done)
			}()
			res, err = compute()
			if err == nil {
				f.res, f.ok = res, true
			}
		}()
		return res, ViaCompute, err
	}
}

// BeginFlights claims leadership of every key not already in flight, in
// one atomic sweep — the fan-out path's single-flight: a group about to
// execute claims its points so concurrent campaigns running the same
// configs wait instead of recomputing, and points another campaign
// already claimed are reported unclaimed so the caller can defer them
// to a waiting path. The returned finish must be called exactly once
// (deferred, so a panicking group still releases its waiters): claimed
// keys present in results are published to their waiters, the rest wake
// into their own attempts. On a nil store nothing is claimed.
func (s *Store) BeginFlights(keys []string) (claimed map[string]bool, finish func(results map[string]*sim.Result)) {
	if s == nil {
		return nil, func(map[string]*sim.Result) {}
	}
	claimed = make(map[string]bool, len(keys))
	var ck []string
	var fl []*flight
	s.fmu.Lock()
	for _, k := range keys {
		if claimed[k] {
			continue
		}
		if _, ok := s.flights[k]; ok {
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.flights[k] = f
		claimed[k] = true
		ck = append(ck, k)
		fl = append(fl, f)
	}
	s.fmu.Unlock()
	var once sync.Once
	finish = func(results map[string]*sim.Result) {
		once.Do(func() {
			s.fmu.Lock()
			for _, k := range ck {
				delete(s.flights, k)
			}
			s.fmu.Unlock()
			for j, f := range fl {
				if res, ok := results[ck[j]]; ok && res != nil {
					f.res, f.ok = res, true
				}
				close(f.done)
			}
		})
	}
	return claimed, finish
}

// InFlight reports whether key currently has a leader computing it.
// The campaign service uses it at admission time to label collapsed
// duplicates; the answer is advisory (it can change immediately).
func (s *Store) InFlight(key string) bool {
	if s == nil {
		return false
	}
	s.fmu.Lock()
	defer s.fmu.Unlock()
	_, ok := s.flights[key]
	return ok
}
