package store

import (
	"errors"
	"testing"

	"repro/internal/fault"
)

// TestChaosStoreOpen: an injected open failure yields a typed error and
// the open_errors counter — the caller's contract is to log it and run
// without a cache, never to fail the campaign.
func TestChaosStoreOpen(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	fault.Set(fault.SiteStoreOpen, fault.Spec{Every: 1, Limit: 1})

	diff := storeDelta()
	_, err := Open(Options{Dir: t.TempDir(), Fingerprint: "sim-test"})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want wrapped fault.ErrInjected", err)
	}
	if d := diff(); d["open_errors"] != 1 {
		t.Fatalf("delta = %v, want open_errors=1", d)
	}
	// The fire budget is spent; the retry (a fresh process) opens fine.
	s, err := Open(Options{Dir: t.TempDir(), Fingerprint: "sim-test"})
	if err != nil {
		t.Fatalf("second open: %v", err)
	}
	s.Close()
}

// TestChaosStoreAppend: an injected append failure is typed and
// counted, loses only the cache entry, and leaves the store serving —
// earlier entries still hit and later appends still land.
func TestChaosStoreAppend(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	s := openT(t, Options{Dir: t.TempDir(), Fingerprint: "sim-test"})
	if err := s.Put(fakeKey(0), fakeResult(0)); err != nil {
		t.Fatal(err)
	}

	fault.Set(fault.SiteStoreAppend, fault.Spec{Every: 1, Limit: 1})
	diff := storeDelta()
	err := s.Put(fakeKey(1), fakeResult(1))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want wrapped fault.ErrInjected", err)
	}
	if d := diff(); d["put_errors"] != 1 || d["puts"] != 0 {
		t.Fatalf("delta = %v, want put_errors=1 puts=0", d)
	}
	if _, ok := s.Get(fakeKey(0)); !ok {
		t.Fatal("pre-fault entry lost")
	}
	if _, ok := s.Get(fakeKey(1)); ok {
		t.Fatal("failed append served")
	}
	if err := s.Put(fakeKey(2), fakeResult(2)); err != nil {
		t.Fatalf("append after fault: %v", err)
	}
	if _, ok := s.Get(fakeKey(2)); !ok {
		t.Fatal("post-fault append missing")
	}
}

// TestChaosStoreRead: an injected read-back failure degrades the hit to
// a counted miss and drops the index entry, so the caller recomputes;
// the rest of the store keeps serving.
func TestChaosStoreRead(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	s := openT(t, Options{Dir: t.TempDir(), Fingerprint: "sim-test"})
	for i := 0; i < 2; i++ {
		if err := s.Put(fakeKey(i), fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}

	fault.Set(fault.SiteStoreRead, fault.Spec{Every: 1, Limit: 1})
	diff := storeDelta()
	if _, ok := s.Get(fakeKey(0)); ok {
		t.Fatal("faulted read served a result")
	}
	d := diff()
	if d["read_errors"] != 1 || d["misses"] != 1 || d["hits"] != 0 {
		t.Fatalf("delta = %v, want read_errors=1 misses=1 hits=0", d)
	}
	// The entry was dropped — the caller recomputes and may Put again.
	if _, ok := s.Get(fakeKey(0)); ok {
		t.Fatal("dropped entry still indexed")
	}
	if _, ok := s.Get(fakeKey(1)); !ok {
		t.Fatal("unrelated entry lost to a read fault")
	}
	if err := s.Put(fakeKey(0), fakeResult(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(fakeKey(0)); !ok {
		t.Fatal("re-put after read fault missed")
	}
}
