package trace

import (
	"fmt"
	"io"

	"repro/internal/rng"
)

// Pattern describes how a memory region is walked.
type Pattern int

const (
	// Sequential walks the region one 64-bit word at a time.
	Sequential Pattern = iota
	// Strided walks the region with a fixed stride.
	Strided
	// Random picks uniformly-distributed addresses within the region.
	Random
	// PointerChase performs a deterministic pseudo-random walk where each
	// address depends on the previous one; the core model serialises
	// these loads (no memory-level parallelism).
	PointerChase
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	case Random:
		return "random"
	case PointerChase:
		return "pointer-chase"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Class is the behavioural class the PInTE paper assigns to a workload.
// It drives preset parameterisation and is used by experiment reports to
// annotate rows the same way the paper does.
type Class int

const (
	// CoreBound workloads fit in the private caches; LLC access is rare
	// (the paper marks these with '*': high MR error, low AMAT).
	CoreBound Class = iota
	// LLCBound workloads have working sets near LLC capacity (paper '+':
	// they become DRAM-bound under contention, high IPC error).
	LLCBound
	// DRAMBound workloads miss past the LLC even in isolation (the
	// paper's underlined / disagreement cases).
	DRAMBound
	// Balanced workloads exercise the whole hierarchy moderately.
	Balanced
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case CoreBound:
		return "core-bound"
	case LLCBound:
		return "llc-bound"
	case DRAMBound:
		return "dram-bound"
	case Balanced:
		return "balanced"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Region is one logical data structure the synthetic workload touches.
type Region struct {
	SizeBytes uint64  // region footprint; rounded up to a 64-byte block
	Weight    float64 // relative probability an access lands here
	Pattern   Pattern
	Stride    uint64 // bytes; used by Strided (0 means 64)
}

// BranchKind selects how a synthetic branch decides its direction.
type BranchKind int

const (
	// BiasedBranch is taken with a fixed per-branch probability.
	BiasedBranch BranchKind = iota
	// LoopBranch is taken N-1 out of every N executions.
	LoopBranch
	// CorrelatedBranch depends on recent global history; simple
	// predictors (bimodal) cannot learn it but history-based ones can.
	CorrelatedBranch
)

// Spec parameterises a synthetic workload. The zero value is not useful;
// use a preset from Presets or fill in at least one Region.
type Spec struct {
	Name  string
	Suite string // "SPEC2006", "SPEC2017" or "" for ad-hoc workloads
	Class Class

	// MemFrac is the fraction of instructions carrying a memory operand.
	MemFrac float64
	// StoreFrac is the probability a memory instruction writes
	// (possibly in addition to a load).
	StoreFrac float64
	// SecondLoadFrac is the probability a load instruction carries a
	// second independent source operand.
	SecondLoadFrac float64

	// BranchFrac is the fraction of instructions that are branches.
	BranchFrac float64
	// BranchEntropy in [0,1]: 0 = fully biased/predictable branches,
	// 1 = coin flips. Intermediate values mix biased, loop and
	// correlated branches.
	BranchEntropy float64

	Regions []Region

	// PhasePeriod, when non-zero, alternates the workload between two
	// phases every PhasePeriod instructions: odd phases rotate the
	// region weights, modelling simpoint-style phase behaviour.
	PhasePeriod uint64

	// MLP is the memory-level-parallelism hint consumed by the core
	// timing model (how many independent misses overlap). 0 means 2.
	MLP int

	// CodeBytes is the static code footprint (instruction side).
	// 0 means 16KB, which fits L1I.
	CodeBytes uint64
}

// Footprint returns the total data footprint of the spec in bytes.
func (s *Spec) Footprint() uint64 {
	var total uint64
	for _, r := range s.Regions {
		total += r.SizeBytes
	}
	return total
}

// Validate reports structural problems with the spec.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("trace: spec has no name")
	}
	if len(s.Regions) == 0 {
		return fmt.Errorf("trace: spec %s has no regions", s.Name)
	}
	var w float64
	for i, r := range s.Regions {
		if r.SizeBytes == 0 {
			return fmt.Errorf("trace: spec %s region %d has zero size", s.Name, i)
		}
		if r.Weight < 0 {
			return fmt.Errorf("trace: spec %s region %d has negative weight", s.Name, i)
		}
		w += r.Weight
	}
	if w <= 0 {
		return fmt.Errorf("trace: spec %s has zero total region weight", s.Name)
	}
	if s.MemFrac < 0 || s.MemFrac > 1 {
		return fmt.Errorf("trace: spec %s MemFrac %v out of [0,1]", s.Name, s.MemFrac)
	}
	if s.BranchFrac < 0 || s.BranchFrac+s.MemFrac > 1 {
		return fmt.Errorf("trace: spec %s MemFrac+BranchFrac exceeds 1", s.Name)
	}
	return nil
}

const blockBytes = 64

// Full-period LCG constants for the pointer-chase walk (period 2^k for
// any power-of-two modulus: multiplier ≡ 1 mod 4, increment odd).
const (
	ptrChaseA = 0xd1342543de82ef95 // ≡ 1 mod 4
	ptrChaseC = 0x9e3779b97f4a7c15 // odd
)

// Generator produces a deterministic synthetic instruction stream from a
// Spec. It implements Reader and Rewinder. Two generators built with the
// same spec, seed and base address produce identical streams.
type Generator struct {
	spec Spec
	seed uint64
	base uint64 // address-space base (per-core offset in multi-core runs)

	// rng is embedded by value: the generator draws one or more uniforms
	// per instruction, so the state must live in the generator's own
	// cache lines and the draw methods must inline (see internal/rng).
	// The streams are bit-identical to the math/rand/v2 PCG this code
	// used previously — fixed seeds keep producing identical workloads.
	rng     rng.PCG
	issued  uint64
	regions []regionState
	cumW    []float64 // cumulative region weights for current phase
	cumWAlt []float64 // cumulative weights for the odd phase
	phase   uint64
	// phaseLeft counts down to the next phase flip (0 = no phasing), so
	// the per-record path needs no modulo on issued.
	phaseLeft uint64

	// instruction side
	codeBlocks int
	// codeMask is codeBlocks-1 when codeBlocks is a power of two (the
	// default 16KB code footprint gives 512 blocks), letting the
	// per-branch successor computation use a mask instead of a modulo;
	// -1 otherwise.
	codeMask int
	curBlock int
	blockPos int
	blockLen int

	branches []branchState
	history  uint64
}

type regionState struct {
	base   uint64
	size   uint64 // bytes, multiple of 8
	cursor uint64 // byte offset within region
	ptr    uint64 // pointer-chase state: current word index
	words  uint64 // pointer-chase node count (power of two)
}

type branchState struct {
	kind   BranchKind
	bias   float64 // BiasedBranch
	period uint32  // LoopBranch
	count  uint32
	histK  uint // CorrelatedBranch: which history bit decides
}

// NewGenerator builds a generator for spec. The seed selects the random
// stream; base offsets every generated address (use distinct bases for
// co-running cores so they do not share data).
func NewGenerator(spec Spec, seed uint64, base uint64) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{spec: spec, seed: seed, base: base}
	g.Rewind()
	return g, nil
}

// MustGenerator is NewGenerator that panics on an invalid spec; intended
// for preset specs that are validated by construction.
func MustGenerator(spec Spec, seed uint64, base uint64) *Generator {
	g, err := NewGenerator(spec, seed, base)
	if err != nil {
		panic(err)
	}
	return g
}

// Spec returns the generator's workload spec.
func (g *Generator) Spec() Spec { return g.spec }

// Rewind restarts the stream from the beginning; the regenerated stream is
// identical to the original.
func (g *Generator) Rewind() {
	spec := &g.spec
	g.rng.Seed(g.seed, 0x9e3779b97f4a7c15)
	g.issued = 0
	g.phase = 0
	g.phaseLeft = spec.PhasePeriod
	g.history = 0

	// Lay regions out contiguously with a guard gap so that distinct
	// regions never share a cache block.
	g.regions = g.regions[:0]
	next := g.base + 1<<20 // leave page zero unused
	for _, r := range spec.Regions {
		size := (r.SizeBytes + blockBytes - 1) / blockBytes * blockBytes
		g.regions = append(g.regions, regionState{base: next, size: size})
		next += size + 1<<20
	}
	// Pointer-chase regions walk a full-period permutation of their
	// nodes, so the node count is rounded up to a power of two (the
	// footprint grows by at most 2×; presets account for this).
	for i := range g.regions {
		if spec.Regions[i].Pattern == PointerChase {
			words := uint64(1)
			for words < g.regions[i].size/8 {
				words <<= 1
			}
			g.regions[i].words = words
			g.regions[i].size = words * 8
			g.regions[i].ptr = words / 2
		}
	}

	g.cumW = cumulative(spec.Regions, 0)
	g.cumWAlt = cumulative(spec.Regions, 1)

	code := spec.CodeBytes
	if code == 0 {
		code = 16 << 10
	}
	g.codeBlocks = int(code / 32) // ~8 instructions of 4 bytes per block
	if g.codeBlocks < 2 {
		g.codeBlocks = 2
	}
	g.codeMask = -1
	if g.codeBlocks&(g.codeBlocks-1) == 0 {
		g.codeMask = g.codeBlocks - 1
	}
	g.curBlock = 0
	g.blockPos = 0
	g.blockLen = g.nextBlockLen()

	// A fixed population of static branches with deterministic kinds.
	g.branches = g.branches[:0]
	for i := 0; i < numBranches; i++ {
		g.branches = append(g.branches, g.makeBranch(i))
	}
}

// numBranches is the static branch population; a power of two so the
// per-branch selection is a mask, not a division.
const numBranches = 64

// cumulative builds the cumulative weight table; rotation != 0 rotates the
// weights by one region, providing the alternate phase's mixture.
func cumulative(regions []Region, rotation int) []float64 {
	cum := make([]float64, len(regions))
	var total float64
	for i := range regions {
		total += regions[(i+rotation)%len(regions)].Weight
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

func (g *Generator) makeBranch(i int) branchState {
	e := g.spec.BranchEntropy
	r := g.rng.Float64()
	switch {
	case r < e*0.5:
		// Hard branch: close to a coin flip.
		return branchState{kind: BiasedBranch, bias: 0.35 + 0.3*g.rng.Float64()}
	case r < e:
		// History-correlated branch.
		return branchState{kind: CorrelatedBranch, histK: uint(1 + i%8)}
	case r < e+0.3:
		// Loop branch with a modest trip count.
		return branchState{kind: LoopBranch, period: uint32(4 + g.rng.IntN(28))}
	default:
		// Strongly biased branch.
		bias := 0.02 + 0.03*g.rng.Float64()
		if i%2 == 0 {
			bias = 1 - bias
		}
		return branchState{kind: BiasedBranch, bias: bias}
	}
}

func (g *Generator) nextBlockLen() int {
	return 4 + g.rng.IntN(8)
}

// Next implements Reader. It never returns an error other than io.EOF,
// and only when the generator was wrapped by a Limiter.
func (g *Generator) Next(rec *Record) error {
	rec.Reset()
	g.gen(rec)
	return nil
}

// NextBatch implements BatchReader: it fills every record of recs in one
// tight loop, amortising the per-record interface dispatch the core
// timing loop would otherwise pay on each instruction. The records (and
// the random stream consumed to produce them) are identical to len(recs)
// successive Next calls. The whole batch is zeroed with one vectorised
// clear instead of a per-record Reset.
func (g *Generator) NextBatch(recs []Record) (int, error) {
	clear(recs)
	for i := range recs {
		g.gen(&recs[i])
	}
	return len(recs), nil
}

// gen produces one record into rec, which must be zeroed; it is the
// single source of truth shared by Next and NextBatch, so the two entry
// points cannot drift.
func (g *Generator) gen(rec *Record) {
	spec := &g.spec

	rec.PC = codeBase + uint64(g.curBlock)*32 + uint64(g.blockPos)*4
	g.blockPos++

	endOfBlock := g.blockPos >= g.blockLen
	r := g.rng.Float64()
	switch {
	case endOfBlock:
		g.emitBranch(rec)
	case r < spec.MemFrac:
		g.emitMem(rec)
	default:
		// plain ALU instruction
	}

	g.issued++
	if g.phaseLeft != 0 {
		g.phaseLeft--
		if g.phaseLeft == 0 {
			g.phase++
			g.phaseLeft = spec.PhasePeriod
		}
	}
}

// codeBase keeps instruction addresses far from data regions.
const codeBase = 0x40000000

func (g *Generator) emitBranch(rec *Record) {
	bi := g.curBlock & (numBranches - 1)
	b := &g.branches[bi]
	taken := false
	switch b.kind {
	case BiasedBranch:
		taken = g.rng.Float64() < b.bias
	case LoopBranch:
		// count cycles 1..period; the branch falls through exactly once
		// per period (same stream as the former count%period test).
		if b.count++; b.count == b.period {
			b.count = 0
		} else {
			taken = true
		}
	case CorrelatedBranch:
		taken = (g.history>>b.histK)&1 == 1
	}
	g.history = g.history<<1 | b2u(taken)

	rec.IsBranch = true
	rec.Taken = taken
	if taken {
		// Jump to a deterministic successor block derived from the
		// branch's own state, keeping the code footprint stable.
		next := g.curBlock*7 + 3 + int(b2u(taken))
		if g.codeMask >= 0 {
			g.curBlock = next & g.codeMask
		} else {
			g.curBlock = next % g.codeBlocks
		}
	} else {
		if g.curBlock++; g.curBlock == g.codeBlocks {
			g.curBlock = 0
		}
	}
	rec.Target = codeBase + uint64(g.curBlock)*32
	g.blockPos = 0
	g.blockLen = g.nextBlockLen()
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (g *Generator) emitMem(rec *Record) {
	spec := &g.spec
	ri := g.pickRegion()
	addr, dep := g.nextAddr(ri)
	if g.rng.Float64() < spec.StoreFrac {
		rec.Store = addr
		// Stores to pointer-chase regions still read the pointer.
		if dep {
			rec.Load0 = addr
			rec.Dependent = true
		}
		return
	}
	rec.Load0 = addr
	rec.Dependent = dep
	if !dep && g.rng.Float64() < spec.SecondLoadFrac {
		ri2 := g.pickRegion()
		addr2, dep2 := g.nextAddr(ri2)
		if !dep2 {
			rec.Load1 = addr2
		}
	}
}

func (g *Generator) pickRegion() int {
	cum := g.cumW
	if g.phase%2 == 1 {
		cum = g.cumWAlt
	}
	r := g.rng.Float64()
	for i, c := range cum {
		if r <= c {
			return i
		}
	}
	return len(cum) - 1
}

// nextAddr produces the next address within region ri and reports whether
// the access is dependent (pointer chase).
func (g *Generator) nextAddr(ri int) (addr uint64, dependent bool) {
	rs := &g.regions[ri]
	spec := &g.spec.Regions[ri]
	switch spec.Pattern {
	case Sequential:
		// The cursor wraps at most once per step, so the modulo only
		// runs on the wrapping step (strides can exceed the region).
		if rs.cursor += 8; rs.cursor >= rs.size {
			rs.cursor %= rs.size
		}
		return rs.base + rs.cursor, false
	case Strided:
		stride := spec.Stride
		if stride == 0 {
			stride = blockBytes
		}
		if rs.cursor += stride; rs.cursor >= rs.size {
			rs.cursor %= rs.size
		}
		return rs.base + rs.cursor, false
	case Random:
		off := uint64(g.rng.Int64N(int64(rs.size/8))) * 8
		return rs.base + off, false
	case PointerChase:
		// Full-period LCG over the region's 2^k nodes: every node is
		// visited exactly once per period (the linked list covers the
		// whole region) in a hard-to-prefetch order, and each address
		// depends on the previous one, so the loads serialise.
		rs.ptr = (rs.ptr*ptrChaseA + ptrChaseC) & (rs.words - 1)
		return rs.base + rs.ptr*8, true
	}
	return rs.base, false
}

// Limiter wraps a Reader and ends the stream after N records. It forwards
// Rewind to the wrapped reader when supported and resets its own count.
type Limiter struct {
	R Reader
	N uint64

	seen uint64
}

// Limit wraps r so that it ends after n records.
func Limit(r Reader, n uint64) *Limiter { return &Limiter{R: r, N: n} }

// Next implements Reader.
func (l *Limiter) Next(rec *Record) error {
	if l.seen >= l.N {
		return io.EOF
	}
	if err := l.R.Next(rec); err != nil {
		return err
	}
	l.seen++
	return nil
}

// NextBatch implements BatchReader. It delegates to the wrapped reader's
// NextBatch when available and otherwise loops Next, clamping the batch
// to the records remaining before the limit.
func (l *Limiter) NextBatch(recs []Record) (int, error) {
	if l.seen >= l.N {
		return 0, io.EOF
	}
	if rem := l.N - l.seen; uint64(len(recs)) > rem {
		recs = recs[:rem]
	}
	if br, ok := l.R.(BatchReader); ok {
		n, err := br.NextBatch(recs)
		l.seen += uint64(n)
		if n > 0 {
			// Defer any error to the next call (contract: n > 0 implies
			// a nil error); the wrapped reader will return it again.
			return n, nil
		}
		return 0, err
	}
	n := 0
	for i := range recs {
		if err := l.R.Next(&recs[i]); err != nil {
			if n == 0 {
				return 0, err
			}
			break
		}
		n++
	}
	l.seen += uint64(n)
	return n, nil
}

// Rewind implements Rewinder.
func (l *Limiter) Rewind() {
	l.seen = 0
	if rw, ok := l.R.(Rewinder); ok {
		rw.Rewind()
	}
}
