// Package trace defines the instruction-trace model that drives the
// simulator, a compact binary on-disk trace format, and a deterministic
// synthetic workload generator with presets that stand in for the SPEC
// CPU 2006/2017 simpoint traces used by the PInTE paper.
//
// The real DPC-3 trace set (188 one-billion-instruction simpoints) is not
// redistributable, so each SPEC benchmark row in the paper's Table II has
// a named synthetic preset tuned to land in the same behavioural class
// (core-bound, LLC-bound, DRAM-bound, streaming, pointer-chasing).
package trace

import "errors"

// Record is one retired instruction as seen by the simulator. It mirrors
// the information a ChampSim-style trace carries: the instruction PC,
// branch behaviour, and up to two source memory operands plus one
// destination memory operand.
//
// Address fields hold byte addresses; zero means "no operand" (the
// generator never emits address zero).
type Record struct {
	PC     uint64 // instruction address
	Load0  uint64 // first source memory address, 0 if none
	Load1  uint64 // second source memory address, 0 if none
	Store  uint64 // destination memory address, 0 if none
	Target uint64 // branch target, 0 if not a branch

	IsBranch bool
	Taken    bool
	// Dependent marks a load whose address depends on the previous
	// load's data (pointer chasing). The core model serialises such
	// loads instead of overlapping them.
	Dependent bool
}

// HasMem reports whether the record carries any memory operand.
func (r *Record) HasMem() bool {
	return r.Load0 != 0 || r.Load1 != 0 || r.Store != 0
}

// Loads returns the number of source memory operands.
func (r *Record) Loads() int {
	n := 0
	if r.Load0 != 0 {
		n++
	}
	if r.Load1 != 0 {
		n++
	}
	return n
}

// Reset zeroes the record in place so it can be reused across Next calls.
func (r *Record) Reset() {
	*r = Record{}
}

// Reader yields a stream of instruction records. Next fills rec and
// returns nil, or returns io.EOF when the stream is exhausted. A Reader
// is not safe for concurrent use.
type Reader interface {
	Next(rec *Record) error
}

// Rewinder is implemented by readers that can restart their stream from
// the beginning. The multi-programmed driver uses it to restart a faster
// trace while a slower co-runner finishes, matching ChampSim behaviour.
type Rewinder interface {
	Rewind()
}

// BatchReader is implemented by readers that can fill many records per
// call. The core timing loop pulls records through this interface when
// available, amortising one dynamic dispatch over the whole batch — the
// hottest call edge in the simulator.
//
// NextBatch fills recs[:n] and returns n. The contract is strict so
// drivers stay branch-light: either n > 0 and the error is nil (a
// partial batch is allowed; any underlying error is deferred to the next
// call), or n == 0 and the error is non-nil (io.EOF at end of stream).
// A batched and a record-at-a-time traversal of the same reader yield
// identical record sequences.
type BatchReader interface {
	Reader
	NextBatch(recs []Record) (int, error)
}

// ErrCorrupt is returned by the file reader when a trace file fails
// structural validation.
var ErrCorrupt = errors.New("trace: corrupt trace file")
