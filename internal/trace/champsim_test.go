package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// rawChampSim builds one raw 64-byte ChampSim record.
func rawChampSim(ip uint64, branch, taken bool, destMem, srcMem []uint64) []byte {
	buf := make([]byte, champSimRecordSize)
	binary.LittleEndian.PutUint64(buf[0:8], ip)
	if branch {
		buf[8] = 1
	}
	if taken {
		buf[9] = 1
	}
	for i, d := range destMem {
		if i >= 2 {
			break
		}
		binary.LittleEndian.PutUint64(buf[16+8*i:], d)
	}
	for i, s := range srcMem {
		if i >= 4 {
			break
		}
		binary.LittleEndian.PutUint64(buf[32+8*i:], s)
	}
	return buf
}

func TestChampSimDecodeBasics(t *testing.T) {
	var raw bytes.Buffer
	raw.Write(rawChampSim(0x1000, false, false, nil, []uint64{0xAAA0}))
	raw.Write(rawChampSim(0x1004, false, false, []uint64{0xBBB0}, nil))
	raw.Write(rawChampSim(0x1008, true, true, nil, nil))
	raw.Write(rawChampSim(0x2000, false, false, nil, []uint64{0xCCC0, 0xDDD0}))

	r := NewChampSimReader(&raw)
	var recs []Record
	var rec Record
	for {
		err := r.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 4 {
		t.Fatalf("decoded %d records, want 4", len(recs))
	}
	if recs[0].Load0 != 0xAAA0 || recs[0].HasMem() != true {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[1].Store != 0xBBB0 {
		t.Errorf("record 1 store = %#x", recs[1].Store)
	}
	if !recs[2].IsBranch || !recs[2].Taken {
		t.Errorf("record 2 branch flags = %+v", recs[2])
	}
	if recs[2].Target != 0x2000 {
		t.Errorf("taken branch target = %#x, want next ip 0x2000", recs[2].Target)
	}
	if recs[3].Load0 != 0xCCC0 || recs[3].Load1 != 0xDDD0 {
		t.Errorf("record 3 loads = %#x/%#x", recs[3].Load0, recs[3].Load1)
	}
}

func TestChampSimTruncatedRecord(t *testing.T) {
	raw := rawChampSim(0x1000, false, false, nil, nil)
	r := NewChampSimReader(bytes.NewReader(raw[:40]))
	var rec Record
	if err := r.Next(&rec); err == nil || err == io.EOF {
		t.Fatalf("truncated record not detected: %v", err)
	}
}

func TestChampSimWriterRoundTrip(t *testing.T) {
	g := MustGenerator(testSpec(), 77, 0)
	orig := collect(t, g, 5000)

	var buf bytes.Buffer
	w := NewChampSimWriter(&buf)
	for i := range orig {
		if err := w.Write(&orig[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 5000 {
		t.Fatalf("writer count = %d", w.Count())
	}
	if buf.Len() != 5000*champSimRecordSize {
		t.Fatalf("encoded %d bytes, want %d", buf.Len(), 5000*champSimRecordSize)
	}

	r := NewChampSimReader(&buf)
	var rec Record
	for i := range orig {
		if err := r.Next(&rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		// The format drops Dependent and synthesises Target; compare
		// the surviving fields.
		if rec.PC != orig[i].PC || rec.Load0 != orig[i].Load0 ||
			rec.Load1 != orig[i].Load1 || rec.Store != orig[i].Store ||
			rec.IsBranch != orig[i].IsBranch || rec.Taken != orig[i].Taken {
			t.Fatalf("record %d: got %+v want %+v", i, rec, orig[i])
		}
	}
	if err := r.Next(&rec); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestChampSimThirdSourceFillsLoad1(t *testing.T) {
	var raw bytes.Buffer
	// Sources: slot0 and slot2 populated, slot1 zero.
	rec := rawChampSim(0x3000, false, false, nil, []uint64{0x10, 0, 0x30})
	raw.Write(rec)
	r := NewChampSimReader(&raw)
	var out Record
	if err := r.Next(&out); err != nil {
		t.Fatal(err)
	}
	if out.Load0 != 0x10 || out.Load1 != 0x30 {
		t.Fatalf("loads = %#x/%#x, want 0x10/0x30", out.Load0, out.Load1)
	}
}

func TestOpenChampSimXZRejected(t *testing.T) {
	if _, err := OpenChampSim("/nonexistent/trace.xz"); err == nil {
		t.Fatal("xz path accepted")
	}
}
