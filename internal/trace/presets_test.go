package trace

import (
	"strings"
	"testing"
)

func TestPresetCountsMatchPaper(t *testing.T) {
	if got := len(NamesBySuite("SPEC2006")); got != 29 {
		t.Errorf("SPEC2006 presets: got %d, want 29 (Table II rows)", got)
	}
	if got := len(NamesBySuite("SPEC2017")); got != 20 {
		t.Errorf("SPEC2017 presets: got %d, want 20 (Table II rows)", got)
	}
	if got := len(Names()); got != 49 {
		t.Errorf("total presets: got %d, want 49", got)
	}
}

func TestPresetsValidateAndGenerate(t *testing.T) {
	for _, name := range Names() {
		p := MustLookup(name)
		if err := p.Spec.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		g, err := NewGenerator(p.Spec, 1, 0)
		if err != nil {
			t.Errorf("%s: generator: %v", name, err)
			continue
		}
		var rec Record
		for i := 0; i < 1000; i++ {
			if err := g.Next(&rec); err != nil {
				t.Errorf("%s: Next: %v", name, err)
				break
			}
		}
	}
}

func TestPresetClassesHaveExpectedFootprints(t *testing.T) {
	const (
		l2Size  = 512 << 10
		llcSize = 4 << 20
	)
	for _, name := range Names() {
		p := MustLookup(name)
		fp := p.Spec.Footprint()
		switch p.Spec.Class {
		case CoreBound:
			// Hot+warm regions must fit private caches; a low-weight
			// spill region may exceed them.
			hot := p.Spec.Regions[0].SizeBytes + p.Spec.Regions[1].SizeBytes
			if hot > l2Size {
				t.Errorf("%s: core-bound hot set %d exceeds L2 %d", name, hot, l2Size)
			}
		case LLCBound:
			if fp < l2Size || fp > llcSize {
				t.Errorf("%s: llc-bound footprint %d outside (L2, LLC]", name, fp)
			}
		case DRAMBound:
			if fp <= llcSize {
				t.Errorf("%s: dram-bound footprint %d does not exceed LLC %d", name, fp, llcSize)
			}
		}
	}
}

func TestPresetAnnotationsMatchPaperTables(t *testing.T) {
	// Spot-check the paper's Table II key and §V-B/§V-C lists.
	checks := []struct {
		name string
		get  func(Preset) bool
	}{
		{"429.mcf", func(p Preset) bool { return p.HighIPCError && p.Disagreement }},
		{"456.hmmer", func(p Preset) bool { return p.HighMRError && p.Sensitivity == "high" }},
		{"462.libquantum", func(p Preset) bool { return p.HighAMATIPCError }},
		{"602.gcc", func(p Preset) bool { return p.HighAMATIPCError && p.Disagreement }},
		{"450.soplex", func(p Preset) bool { return p.Sensitivity == "high" }},
		{"627.cam4", func(p Preset) bool { return p.Sensitivity == "mixed" }},
		{"648.exchange2", func(p Preset) bool { return p.Sensitivity == "low" }},
	}
	for _, c := range checks {
		if !c.get(MustLookup(c.name)) {
			t.Errorf("%s: annotation mismatch with paper tables", c.name)
		}
	}
	// High-sensitivity benchmarks are 12% of the paper's set (6 of ~49).
	high := 0
	for _, n := range Names() {
		if MustLookup(n).Sensitivity == "high" {
			high++
		}
	}
	if high != 6 {
		t.Errorf("high-sensitivity presets: got %d, want 6 (paper §V-B)", high)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("999.nonesuch"); err == nil {
		t.Fatal("unknown preset accepted")
	} else if !strings.Contains(err.Error(), "nonesuch") {
		t.Errorf("error should name the preset: %v", err)
	}
}

func TestNamesSortedAndUnique(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("names not sorted/unique at %d: %s vs %s", i, names[i-1], names[i])
		}
	}
}
