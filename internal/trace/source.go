package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Source is the instruction-stream contract a simulated core consumes:
// batched reads plus the ability to restart the stream from the
// beginning (the multi-programmed driver rewinds finished co-runners).
// Two Sources for the same (spec, seed, base) must yield identical
// record sequences, whether the records are generated live or replayed
// from a recording.
type Source interface {
	BatchReader
	Rewinder
}

// SliceReader is the zero-copy variant of BatchReader: NextSlice
// returns a read-only view of the source's next decoded batch instead
// of copying records into a caller buffer. The returned slice is valid
// until the next NextSlice call on the same reader; callers must not
// mutate it (fan-out readers share one decode across many consumers).
// A return of (nil, io.EOF) ends the stream; an empty slice with a
// non-EOF error reports a read failure, exactly as BatchReader does.
type SliceReader interface {
	NextSlice() ([]Record, error)
}

// Skipper is an optional Source extension: Skip discards the next n
// records more cheaply than reading them — a replayer advances its
// cursor in O(1) within the recorded region. It returns the count
// actually skipped (always n for infinite synthetic streams). Phase-
// sampled simulation probes for it to seek to interval boundaries;
// sources without it are skipped by reading and discarding.
type Skipper interface {
	Skip(n uint64) (uint64, error)
}

// SourceProvider resolves the instruction stream for one core of a
// simulation. The synthetic generator is the default provider; a
// record/replay cache (internal/replay) substitutes recorded streams so
// a sweep generates each workload stream once and replays it read-only
// across every sweep point. Implementations must be safe for concurrent
// use by parallel simulation workers, and every returned Source must
// read the stream from its beginning.
type SourceProvider interface {
	Source(spec Spec, seed, base uint64) (Source, error)
}

// Generate is the pass-through SourceProvider: it builds a fresh
// Generator per call, exactly what a simulation does when no replay
// cache is attached.
type Generate struct{}

// Source implements SourceProvider.
func (Generate) Source(spec Spec, seed, base uint64) (Source, error) {
	return NewGenerator(spec, seed, base)
}

// Fingerprint returns a stable content hash of the spec: the SHA-256 of
// its canonical JSON encoding. Two specs with equal contents fingerprint
// identically regardless of where they are allocated, so the hash is
// safe to use in memo and stream-cache keys where a pointer identity
// would collide across allocations reusing the same address.
func (s *Spec) Fingerprint() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data (numbers, strings, slices); Marshal cannot
		// fail on it short of memory corruption.
		panic("trace: marshal spec: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
