package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"
)

// File format
//
// A trace file is a stream of variable-length records preceded by a fixed
// header. All multi-byte integers are unsigned varints (binary.PutUvarint)
// except the header fields, which are fixed-width little-endian.
//
//	header:
//	  magic   [8]byte  "PINTETRC"
//	  version uint32   currently 1
//	  count   uint64   number of records (0 if unknown/streamed)
//	records, repeated:
//	  flags   byte     bit0 branch, bit1 taken, bit2 dependent,
//	                   bit3 has load0, bit4 has load1, bit5 has store
//	  pcDelta uvarint  zig-zag delta from previous PC
//	  load0   uvarint  present iff bit3
//	  load1   uvarint  present iff bit4
//	  store   uvarint  present iff bit5
//	  target  uvarint  present iff branch
//
// Files whose name ends in ".gz" are transparently (de)compressed.

const (
	fileMagic   = "PINTETRC"
	fileVersion = 1
)

const (
	flagBranch = 1 << iota
	flagTaken
	flagDependent
	flagLoad0
	flagLoad1
	flagStore
)

// Writer serialises records into the binary trace format.
type Writer struct {
	w      *bufio.Writer
	gz     *gzip.Writer
	closer io.Closer
	prevPC uint64
	count  uint64
	buf    []byte
	err    error
}

// NewWriter writes a trace to w. The header is written with a zero record
// count; use WriteFile when an exact count is desired (the reader does not
// require one).
func NewWriter(w io.Writer) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 64)}
	if err := tw.writeHeader(0); err != nil {
		return nil, err
	}
	return tw, nil
}

func (w *Writer) writeHeader(count uint64) error {
	var hdr [20]byte
	copy(hdr[:8], fileMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], fileVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], count)
	_, err := w.w.Write(hdr[:])
	return err
}

func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write appends one record to the trace.
func (w *Writer) Write(rec *Record) error {
	if w.err != nil {
		return w.err
	}
	var flags byte
	if rec.IsBranch {
		flags |= flagBranch
	}
	if rec.Taken {
		flags |= flagTaken
	}
	if rec.Dependent {
		flags |= flagDependent
	}
	if rec.Load0 != 0 {
		flags |= flagLoad0
	}
	if rec.Load1 != 0 {
		flags |= flagLoad1
	}
	if rec.Store != 0 {
		flags |= flagStore
	}
	b := append(w.buf[:0], flags)
	b = binary.AppendUvarint(b, zigzag(int64(rec.PC)-int64(w.prevPC)))
	if rec.Load0 != 0 {
		b = binary.AppendUvarint(b, rec.Load0)
	}
	if rec.Load1 != 0 {
		b = binary.AppendUvarint(b, rec.Load1)
	}
	if rec.Store != 0 {
		b = binary.AppendUvarint(b, rec.Store)
	}
	if rec.IsBranch {
		b = binary.AppendUvarint(b, rec.Target)
	}
	w.buf = b
	w.prevPC = rec.PC
	w.count++
	if _, err := w.w.Write(b); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Count reports the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes buffered data. It does not close the underlying writer
// unless the Writer was created by CreateFile.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			return err
		}
	}
	if w.closer != nil {
		return w.closer.Close()
	}
	return nil
}

// CreateFile creates path and returns a Writer for it. A ".gz" suffix
// enables gzip compression.
func CreateFile(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	var sink io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		sink = gz
	}
	tw, err := NewWriter(sink)
	if err != nil {
		f.Close()
		return nil, err
	}
	tw.gz = gz
	tw.closer = f
	return tw, nil
}

// FileReader decodes the binary trace format. It implements Reader.
type FileReader struct {
	r      *bufio.Reader
	closer io.Closer
	prevPC uint64
	count  uint64 // declared count from header, 0 if unknown
	read   uint64
}

// NewFileReader reads a trace from r.
func NewFileReader(r io.Reader) (*FileReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:8]) != fileMagic {
		return nil, ErrCorrupt
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d: %w", v, ErrCorrupt)
	}
	return &FileReader{
		r:     br,
		count: binary.LittleEndian.Uint64(hdr[12:20]),
	}, nil
}

// OpenFile opens a trace file written by CreateFile.
func OpenFile(path string) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var src io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		src = gz
	}
	fr, err := NewFileReader(src)
	if err != nil {
		f.Close()
		return nil, err
	}
	fr.closer = f
	return fr, nil
}

// Next decodes the next record. It returns io.EOF at end of stream.
func (fr *FileReader) Next(rec *Record) error {
	flags, err := fr.r.ReadByte()
	if err != nil {
		if err == io.EOF && fr.count != 0 && fr.read != fr.count {
			return ErrCorrupt
		}
		return err
	}
	rec.Reset()
	delta, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return corrupt(err)
	}
	rec.PC = uint64(int64(fr.prevPC) + unzigzag(delta))
	fr.prevPC = rec.PC
	if flags&flagLoad0 != 0 {
		if rec.Load0, err = binary.ReadUvarint(fr.r); err != nil {
			return corrupt(err)
		}
	}
	if flags&flagLoad1 != 0 {
		if rec.Load1, err = binary.ReadUvarint(fr.r); err != nil {
			return corrupt(err)
		}
	}
	if flags&flagStore != 0 {
		if rec.Store, err = binary.ReadUvarint(fr.r); err != nil {
			return corrupt(err)
		}
	}
	if flags&flagBranch != 0 {
		rec.IsBranch = true
		rec.Taken = flags&flagTaken != 0
		if rec.Target, err = binary.ReadUvarint(fr.r); err != nil {
			return corrupt(err)
		}
	}
	rec.Dependent = flags&flagDependent != 0
	fr.read++
	return nil
}

// Close closes the underlying file, if any.
func (fr *FileReader) Close() error {
	if fr.closer != nil {
		return fr.closer.Close()
	}
	return nil
}

func corrupt(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrCorrupt
	}
	return err
}

// WriteAll drains src into a new trace file at path and returns the number
// of records written.
func WriteAll(path string, src Reader) (uint64, error) {
	w, err := CreateFile(path)
	if err != nil {
		return 0, err
	}
	var rec Record
	for {
		err := src.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			w.Close()
			return w.Count(), err
		}
		if err := w.Write(&rec); err != nil {
			w.Close()
			return w.Count(), err
		}
	}
	return w.Count(), w.Close()
}
