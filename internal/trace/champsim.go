package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"
)

// ChampSim trace interop.
//
// The paper's experiments run on ChampSim, whose input traces are streams
// of fixed 64-byte records (one per retired instruction):
//
//	offset  size  field
//	0       8     ip            uint64
//	8       1     is_branch     bool
//	9       1     branch_taken  bool
//	10      2     destination_registers [2]uint8
//	12      4     source_registers      [4]uint8
//	16      16    destination_memory    [2]uint64
//	32      32    source_memory         [4]uint64
//
// ChampSimReader adapts that format to this simulator's Reader interface
// so real DPC-3 traces (when available to the user) can drive the same
// experiments as the synthetic presets. Records with more than two source
// memory operands keep the first two (this simulator models at most two
// loads per instruction); extra destination operands keep the first.
// Dependent-load information does not exist in ChampSim traces, so
// imported records are never marked Dependent.

// champSimRecordSize is the fixed on-disk record size.
const champSimRecordSize = 64

// ChampSimReader decodes ChampSim input traces. It implements Reader.
type ChampSimReader struct {
	r      *bufio.Reader
	closer io.Closer
	buf    [champSimRecordSize]byte
	// prevBranchPC backfills branch targets: ChampSim traces carry no
	// explicit target, so the next instruction's ip serves as the
	// taken target, mirroring how ChampSim itself infers it.
	pending    Record
	hasPending bool
	count      uint64
}

// NewChampSimReader wraps r, which must yield raw 64-byte records.
func NewChampSimReader(r io.Reader) *ChampSimReader {
	return &ChampSimReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// OpenChampSim opens a ChampSim trace file; ".gz" enables gzip. (The
// original DPC-3 traces use xz, which the Go standard library cannot
// decode — decompress those externally first.)
func OpenChampSim(path string) (*ChampSimReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var src io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		src = gz
	}
	if strings.HasSuffix(path, ".xz") {
		f.Close()
		return nil, fmt.Errorf("trace: %s: xz is not supported by the standard library; decompress first", path)
	}
	cr := NewChampSimReader(src)
	cr.closer = f
	return cr, nil
}

// decodeOne reads one raw record into rec, without target backfill.
func (c *ChampSimReader) decodeOne(rec *Record) error {
	if _, err := io.ReadFull(c.r, c.buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("trace: champsim record truncated: %w", ErrCorrupt)
		}
		return err
	}
	rec.Reset()
	rec.PC = binary.LittleEndian.Uint64(c.buf[0:8])
	rec.IsBranch = c.buf[8] != 0
	rec.Taken = c.buf[9] != 0
	if d := binary.LittleEndian.Uint64(c.buf[16:24]); d != 0 {
		rec.Store = d
	}
	if s := binary.LittleEndian.Uint64(c.buf[32:40]); s != 0 {
		rec.Load0 = s
	}
	if s := binary.LittleEndian.Uint64(c.buf[40:48]); s != 0 {
		if rec.Load0 == 0 {
			rec.Load0 = s
		} else {
			rec.Load1 = s
		}
	}
	// Third/fourth source operands and second destination are dropped;
	// scan remaining source slots only to fill Load1 if still free.
	if rec.Load1 == 0 {
		for off := 48; off < 64; off += 8 {
			if s := binary.LittleEndian.Uint64(c.buf[off : off+8]); s != 0 && s != rec.Load0 {
				rec.Load1 = s
				break
			}
		}
	}
	c.count++
	return nil
}

// Next implements Reader. Branch records are emitted with Target set to
// the following instruction's PC when the branch was taken.
func (c *ChampSimReader) Next(rec *Record) error {
	if !c.hasPending {
		if err := c.decodeOne(&c.pending); err != nil {
			return err
		}
		c.hasPending = true
	}
	cur := c.pending
	// Peek the successor to backfill a taken branch's target.
	err := c.decodeOne(&c.pending)
	switch {
	case err == nil:
		if cur.IsBranch && cur.Taken {
			cur.Target = c.pending.PC
		}
	case err == io.EOF:
		c.hasPending = false
	default:
		return err
	}
	*rec = cur
	return nil
}

// Count reports how many raw records have been decoded so far.
func (c *ChampSimReader) Count() uint64 { return c.count }

// Close closes the underlying file, if any.
func (c *ChampSimReader) Close() error {
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}

// ChampSimWriter encodes Records into the ChampSim fixed-record format,
// for feeding this repository's synthetic workloads into a real ChampSim.
type ChampSimWriter struct {
	w     *bufio.Writer
	buf   [champSimRecordSize]byte
	count uint64
}

// NewChampSimWriter writes ChampSim records to w.
func NewChampSimWriter(w io.Writer) *ChampSimWriter {
	return &ChampSimWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write encodes one record.
func (c *ChampSimWriter) Write(rec *Record) error {
	for i := range c.buf {
		c.buf[i] = 0
	}
	binary.LittleEndian.PutUint64(c.buf[0:8], rec.PC)
	if rec.IsBranch {
		c.buf[8] = 1
	}
	if rec.Taken {
		c.buf[9] = 1
	}
	if rec.Store != 0 {
		binary.LittleEndian.PutUint64(c.buf[16:24], rec.Store)
	}
	if rec.Load0 != 0 {
		binary.LittleEndian.PutUint64(c.buf[32:40], rec.Load0)
	}
	if rec.Load1 != 0 {
		binary.LittleEndian.PutUint64(c.buf[40:48], rec.Load1)
	}
	c.count++
	if _, err := c.w.Write(c.buf[:]); err != nil {
		return err
	}
	return nil
}

// Count reports the number of records written.
func (c *ChampSimWriter) Count() uint64 { return c.count }

// Flush drains buffered output.
func (c *ChampSimWriter) Flush() error { return c.w.Flush() }
