package trace

import (
	"io"
	"math"
	"testing"
	"testing/quick"
)

func testSpec() Spec {
	return Spec{
		Name:           "test",
		MemFrac:        0.3,
		StoreFrac:      0.25,
		SecondLoadFrac: 0.1,
		BranchFrac:     0.15,
		BranchEntropy:  0.4,
		MLP:            2,
		Regions: []Region{
			{SizeBytes: 16 << 10, Weight: 0.5, Pattern: Random},
			{SizeBytes: 1 << 20, Weight: 0.3, Pattern: Strided, Stride: 64},
			{SizeBytes: 256 << 10, Weight: 0.2, Pattern: PointerChase},
		},
	}
}

func collect(t *testing.T, g *Generator, n int) []Record {
	t.Helper()
	out := make([]Record, n)
	for i := range out {
		if err := g.Next(&out[i]); err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
	}
	return out
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := MustGenerator(testSpec(), 7, 0)
	g2 := MustGenerator(testSpec(), 7, 0)
	a := collect(t, g1, 5000)
	b := collect(t, g2, 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorRewindReproduces(t *testing.T) {
	g := MustGenerator(testSpec(), 7, 0)
	a := collect(t, g, 3000)
	g.Rewind()
	b := collect(t, g, 3000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs after rewind", i)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a := collect(t, MustGenerator(testSpec(), 1, 0), 2000)
	b := collect(t, MustGenerator(testSpec(), 2, 0), 2000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorMixFractions(t *testing.T) {
	spec := testSpec()
	recs := collect(t, MustGenerator(spec, 3, 0), 200_000)
	var mem, branch int
	for i := range recs {
		if recs[i].HasMem() {
			mem++
		}
		if recs[i].IsBranch {
			branch++
		}
	}
	memFrac := float64(mem) / float64(len(recs))
	// Block-ending branches occur roughly every blockLen instructions,
	// independent of BranchFrac (the knob is advisory); just require a
	// plausible presence of both kinds.
	if memFrac < spec.MemFrac*0.6 || memFrac > spec.MemFrac*1.2 {
		t.Errorf("memory fraction %.3f far from configured %.3f", memFrac, spec.MemFrac)
	}
	if branch == 0 {
		t.Error("no branches generated")
	}
}

func TestGeneratorAddressesInRegions(t *testing.T) {
	spec := testSpec()
	g := MustGenerator(spec, 5, 0)
	lo := uint64(1 << 20) // regions start after the base gap
	var hi uint64 = 1<<20 + 64<<20
	recs := collect(t, g, 50_000)
	for i := range recs {
		for _, a := range []uint64{recs[i].Load0, recs[i].Load1, recs[i].Store} {
			if a == 0 {
				continue
			}
			if a < lo || a > hi {
				t.Fatalf("record %d address %#x outside plausible data range", i, a)
			}
		}
	}
}

func TestGeneratorBaseOffsetsAddresses(t *testing.T) {
	const base = 1 << 42
	g0 := MustGenerator(testSpec(), 9, 0)
	g1 := MustGenerator(testSpec(), 9, base)
	a := collect(t, g0, 10_000)
	b := collect(t, g1, 10_000)
	for i := range a {
		if a[i].Load0 != 0 && b[i].Load0 != a[i].Load0+base {
			t.Fatalf("record %d: base not applied: %#x vs %#x", i, a[i].Load0, b[i].Load0)
		}
	}
}

func TestPointerChaseCoversRegion(t *testing.T) {
	spec := Spec{
		Name:    "chase",
		MemFrac: 1.0,
		Regions: []Region{{SizeBytes: 64 << 10, Weight: 1, Pattern: PointerChase}},
	}
	g := MustGenerator(spec, 11, 0)
	// 64KB = 8192 words (already a power of two). The full-period walk
	// must visit a large share of distinct blocks, not collapse into a
	// short cycle.
	blocks := map[uint64]bool{}
	var rec Record
	for i := 0; i < 8192*2; i++ {
		if err := g.Next(&rec); err != nil {
			t.Fatal(err)
		}
		if rec.Load0 != 0 {
			blocks[rec.Load0/64] = true
			if !rec.Dependent {
				t.Fatal("pointer-chase load not marked dependent")
			}
		}
	}
	if len(blocks) < 500 {
		t.Fatalf("pointer chase visited only %d distinct blocks; orbit collapsed", len(blocks))
	}
}

func TestPointerChaseFullPeriodProperty(t *testing.T) {
	// The LCG constants must give a full period for any power-of-two
	// modulus: every word index is visited exactly once per period.
	const words = 1 << 12
	seen := make([]bool, words)
	x := uint64(1)
	for i := 0; i < words; i++ {
		x = (x*ptrChaseA + ptrChaseC) & (words - 1)
		if seen[x] {
			t.Fatalf("index %d revisited at step %d: not full period", x, i)
		}
		seen[x] = true
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no name", func(s *Spec) { s.Name = "" }},
		{"no regions", func(s *Spec) { s.Regions = nil }},
		{"zero region size", func(s *Spec) { s.Regions[0].SizeBytes = 0 }},
		{"negative weight", func(s *Spec) { s.Regions[0].Weight = -1 }},
		{"memfrac > 1", func(s *Spec) { s.MemFrac = 1.5 }},
		{"mem+branch > 1", func(s *Spec) { s.MemFrac = 0.9; s.BranchFrac = 0.2 }},
	}
	for _, tc := range cases {
		spec := testSpec()
		tc.mut(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid spec", tc.name)
		}
	}
	spec := testSpec()
	if err := spec.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestZeroWeightRegionNeverAccessed(t *testing.T) {
	spec := Spec{
		Name:    "zw",
		MemFrac: 0.5,
		Regions: []Region{
			{SizeBytes: 4 << 10, Weight: 1, Pattern: Random},
			{SizeBytes: 4 << 20, Weight: 0, Pattern: Random},
		},
	}
	g := MustGenerator(spec, 1, 0)
	recs := collect(t, g, 20_000)
	// Region 1 starts after region 0 (4KB) plus the 1MB gap on each
	// side; any address beyond ~2.1MB would be region 1.
	limit := uint64(1<<20 + 4<<10 + 1<<20)
	for i := range recs {
		if recs[i].Load0 > limit {
			t.Fatalf("zero-weight region accessed at %#x", recs[i].Load0)
		}
	}
}

func TestLimiter(t *testing.T) {
	g := MustGenerator(testSpec(), 13, 0)
	lim := Limit(g, 100)
	var rec Record
	n := 0
	for {
		err := lim.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n > 100 {
			t.Fatal("limiter exceeded bound")
		}
	}
	if n != 100 {
		t.Fatalf("limiter yielded %d records, want 100", n)
	}
	lim.Rewind()
	if err := lim.Next(&rec); err != nil {
		t.Fatalf("after rewind: %v", err)
	}
}

func TestGeneratorPhaseShiftsMixture(t *testing.T) {
	spec := Spec{
		Name:        "phased",
		MemFrac:     0.5,
		PhasePeriod: 10_000,
		Regions: []Region{
			{SizeBytes: 8 << 10, Weight: 0.9, Pattern: Random},
			{SizeBytes: 8 << 20, Weight: 0.1, Pattern: Random},
		},
	}
	g := MustGenerator(spec, 17, 0)
	bigStart := uint64(1<<20 + 8<<10 + 1<<20)
	countBig := func(n int) int {
		recs := collect(t, g, n)
		big := 0
		for i := range recs {
			if recs[i].Load0 >= bigStart {
				big++
			}
		}
		return big
	}
	phase0 := countBig(10_000)
	phase1 := countBig(10_000)
	if phase1 <= phase0 {
		t.Errorf("odd phase should favour the rotated (large) region: %d vs %d", phase1, phase0)
	}
}

func TestCumulativeNormalised(t *testing.T) {
	f := func(w1, w2, w3 uint8) bool {
		regions := []Region{
			{SizeBytes: 1, Weight: float64(w1)},
			{SizeBytes: 1, Weight: float64(w2)},
			{SizeBytes: 1, Weight: float64(w3)},
		}
		if w1 == 0 && w2 == 0 && w3 == 0 {
			return true // invalid by Validate; skip
		}
		cum := cumulative(regions, 0)
		if math.Abs(cum[len(cum)-1]-1) > 1e-9 {
			return false
		}
		for i := 1; i < len(cum); i++ {
			if cum[i] < cum[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
