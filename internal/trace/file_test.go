package trace

import (
	"bytes"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, recs []Record) []Record {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []Record
	var rec Record
	for {
		err := r.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
	return out
}

func TestFileRoundTrip(t *testing.T) {
	recs := []Record{
		{PC: 0x1000},
		{PC: 0x1004, Load0: 0xdead40, Dependent: true},
		{PC: 0x1008, Load0: 0xbeef00, Load1: 0xcafe40, Store: 0xf00d80},
		{PC: 0x100c, IsBranch: true, Taken: true, Target: 0x2000},
		{PC: 0x2000, IsBranch: true, Taken: false, Target: 0x3000},
		{PC: 0x0800}, // backwards PC delta
		{PC: 0x0800, Store: 1 << 50},
	}
	got := roundTrip(t, recs)
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestFileRoundTripGeneratorStream(t *testing.T) {
	g := MustGenerator(testSpec(), 21, 0)
	recs := collect(t, g, 20_000)
	got := roundTrip(t, recs)
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestFileRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	f := func(n uint8) bool {
		recs := make([]Record, int(n)+1)
		pc := uint64(0x4000)
		for i := range recs {
			pc += uint64(rng.IntN(16)) * 4
			recs[i] = Record{PC: pc}
			switch rng.IntN(4) {
			case 0:
				recs[i].Load0 = rng.Uint64() >> 8 << 3
				recs[i].Dependent = rng.IntN(2) == 0
			case 1:
				recs[i].Store = rng.Uint64() >> 8 << 3
			case 2:
				recs[i].IsBranch = true
				recs[i].Taken = rng.IntN(2) == 0
				recs[i].Target = pc + 64
			}
			// Zero-address operands mean "absent"; ensure non-zero.
			if recs[i].Load0 == 0 && rng.IntN(4) == 0 {
				recs[i].Load0 = 8
			}
		}
		got := roundTrip(t, recs)
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFileOnDiskGzip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"plain.trc", "packed.trc.gz"} {
		path := filepath.Join(dir, name)
		g := MustGenerator(testSpec(), 31, 0)
		n, err := WriteAll(path, Limit(g, 5000))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != 5000 {
			t.Fatalf("%s: wrote %d records, want 5000", name, n)
		}
		r, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		g2 := MustGenerator(testSpec(), 31, 0)
		var got, want Record
		for i := 0; i < 5000; i++ {
			if err := r.Next(&got); err != nil {
				t.Fatalf("%s: record %d: %v", name, i, err)
			}
			if err := g2.Next(&want); err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s: record %d mismatch", name, i)
			}
		}
		if err := r.Next(&got); err != io.EOF {
			t.Fatalf("%s: expected EOF, got %v", name, err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFileRejectsBadHeader(t *testing.T) {
	if _, err := NewFileReader(bytes.NewReader([]byte("NOTATRACEFILE0000000"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[8] = 99 // corrupt version
	if _, err := NewFileReader(bytes.NewReader(b)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestFileTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{PC: 0x1000, Load0: 0xffffffffff}
	for i := 0; i < 10; i++ {
		rec.PC += 4
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	r, err := NewFileReader(bytes.NewReader(b[:len(b)-3]))
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	var lastErr error
	for i := 0; i < 11; i++ {
		if lastErr = r.Next(&got); lastErr != nil {
			break
		}
	}
	if lastErr == nil || lastErr == io.EOF {
		t.Fatalf("truncated body not detected: %v", lastErr)
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "nope.trc")); !os.IsNotExist(err) {
		t.Fatalf("expected not-exist error, got %v", err)
	}
}
