package trace

import (
	"io"
	"testing"
)

// TestNextBatchMatchesNext verifies the BatchReader contract: batched and
// record-at-a-time traversal of the same spec+seed produce identical
// record sequences, for batch sizes that do and do not divide the total.
func TestNextBatchMatchesNext(t *testing.T) {
	spec := MustLookup("450.soplex").Spec
	const total = 10_000
	for _, bs := range []int{1, 7, 64, 256, 1000} {
		one := MustGenerator(spec, 42, 0)
		bat := MustGenerator(spec, 42, 0)
		buf := make([]Record, bs)
		var ref Record
		seen := 0
		for seen < total {
			n, err := bat.NextBatch(buf)
			if err != nil || n != bs {
				t.Fatalf("batch %d: NextBatch = (%d, %v), want (%d, nil)", bs, n, err, bs)
			}
			for i := 0; i < n && seen < total; i++ {
				if err := one.Next(&ref); err != nil {
					t.Fatal(err)
				}
				if buf[i] != ref {
					t.Fatalf("batch %d record %d: %+v != %+v", bs, seen, buf[i], ref)
				}
				seen++
			}
		}
	}
}

// TestLimiterNextBatch checks clamping at the limit and the
// (n > 0 implies nil error) contract for both delegation paths.
func TestLimiterNextBatch(t *testing.T) {
	spec := MustLookup("429.mcf").Spec

	// Delegating path: the wrapped reader is itself a BatchReader.
	l := Limit(MustGenerator(spec, 1, 0), 100)
	buf := make([]Record, 64)
	var got int
	for {
		n, err := l.NextBatch(buf)
		if n > 0 && err != nil {
			t.Fatalf("NextBatch returned n=%d with err=%v", n, err)
		}
		if n == 0 {
			if err != io.EOF {
				t.Fatalf("NextBatch end: err = %v, want io.EOF", err)
			}
			break
		}
		got += n
	}
	if got != 100 {
		t.Fatalf("limited batch read yielded %d records, want 100", got)
	}

	// Fallback path: wrap a Reader that hides its batching ability.
	type plain struct{ Reader }
	l = Limit(plain{MustGenerator(spec, 1, 0)}, 100)
	got = 0
	for {
		n, err := l.NextBatch(buf)
		if n == 0 {
			if err != io.EOF {
				t.Fatalf("fallback end: err = %v, want io.EOF", err)
			}
			break
		}
		got += n
	}
	if got != 100 {
		t.Fatalf("fallback batch read yielded %d records, want 100", got)
	}

	// Rewind restores the full budget.
	l.Rewind()
	if n, err := l.NextBatch(buf); n != 64 || err != nil {
		t.Fatalf("after Rewind: NextBatch = (%d, %v), want (64, nil)", n, err)
	}
}

// BenchmarkTraceGen measures record generation throughput through both
// entry points; the batched path is the one the core timing loop uses.
func BenchmarkTraceGen(b *testing.B) {
	spec := MustLookup("450.soplex").Spec
	b.Run("Next", func(b *testing.B) {
		g := MustGenerator(spec, 1, 0)
		b.ReportAllocs()
		var rec Record
		for i := 0; i < b.N; i++ {
			if err := g.Next(&rec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NextBatch", func(b *testing.B) {
		g := MustGenerator(spec, 1, 0)
		buf := make([]Record, 256)
		b.ReportAllocs()
		for done := 0; done < b.N; done += len(buf) {
			if _, err := g.NextBatch(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}
