package trace

import (
	"fmt"
	"sort"
)

// This file defines the synthetic stand-ins for the 49 SPEC CPU 2006/2017
// benchmarks that appear in the PInTE paper's Table II. Each preset is
// parameterised so the synthetic workload lands in the behavioural class
// the paper observes for that benchmark:
//
//   - core-bound:   working set fits the private caches; LLC traffic is
//     rare and dominated by L2 spills (paper's '*' rows).
//   - llc-bound:    working set is near LLC capacity; contention pushes
//     the workload to DRAM (paper's '+' rows).
//   - dram-bound:   misses past the LLC even in isolation, streaming or
//     pointer-chasing (paper's underlined / disagreement rows).
//   - balanced:     moderate pressure at every level, often phased.

const (
	kb = 1 << 10
	mb = 1 << 20
)

// Preset bundles a spec with the paper's per-benchmark annotations so
// experiment reports can mark rows the way Table II and Figure 8 do.
type Preset struct {
	Spec Spec

	// HighAMATIPCError marks benchmarks the paper underlines in Table
	// II (DRAM dependency beyond LLC: AMAT and IPC error >= 10%).
	HighAMATIPCError bool
	// HighMRError marks the paper's '*' rows (core-bound).
	HighMRError bool
	// HighIPCError marks the paper's '+' rows (LLC-bound).
	HighIPCError bool
	// Disagreement marks §V-C blue-border benchmarks where PInTE and
	// 2nd-Trace sensitivity classifications disagree.
	Disagreement bool
	// Sensitivity is the paper's §V-B classification at 5% TPL:
	// "high", "low" or "mixed".
	Sensitivity string
}

// presets maps benchmark name to its preset. Populated by init from the
// declaration tables below.
var presets = map[string]Preset{}

// Names returns all preset benchmark names, sorted.
func Names() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NamesBySuite returns preset names belonging to suite ("SPEC2006" or
// "SPEC2017"), sorted.
func NamesBySuite(suite string) []string {
	var names []string
	for n, p := range presets {
		if p.Spec.Suite == suite {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Lookup returns the preset for a benchmark name.
func Lookup(name string) (Preset, error) {
	p, ok := presets[name]
	if !ok {
		return Preset{}, fmt.Errorf("trace: unknown benchmark preset %q", name)
	}
	return p, nil
}

// MustLookup is Lookup that panics on unknown names.
func MustLookup(name string) Preset {
	p, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return p
}

// SpecFor returns the workload spec for a benchmark name.
func SpecFor(name string) (Spec, error) {
	p, err := Lookup(name)
	return p.Spec, err
}

// register validates and installs a preset; it panics on invalid specs so
// that preset errors fail fast at package init.
func register(p Preset) {
	if err := p.Spec.Validate(); err != nil {
		panic(err)
	}
	if _, dup := presets[p.Spec.Name]; dup {
		panic("trace: duplicate preset " + p.Spec.Name)
	}
	presets[p.Spec.Name] = p
}

// Shorthand builders. `v` perturbs sizes/fractions slightly so that
// same-class benchmarks still behave distinctly; it is a small integer
// unique per benchmark within its class.

// coreBound: private-cache resident. spill adds a low-weight cold region
// that produces occasional L2 spills into the LLC (the paper's
// explanation for imagick/leela/tonto/hmmer MR error).
func coreBound(name, suite string, v int, spill bool) Spec {
	hot := uint64(12+4*(v%4)) * kb   // fits L1D
	warm := uint64(96+32*(v%3)) * kb // fits L2
	s := Spec{
		Name:           name,
		Suite:          suite,
		Class:          CoreBound,
		MemFrac:        0.26 + 0.02*float64(v%4),
		StoreFrac:      0.28,
		SecondLoadFrac: 0.15,
		BranchFrac:     0.16,
		BranchEntropy:  0.25 + 0.1*float64(v%3),
		MLP:            4,
		Regions: []Region{
			{SizeBytes: hot, Weight: 0.75, Pattern: Random},
			{SizeBytes: warm, Weight: 0.24, Pattern: Strided, Stride: 64},
		},
	}
	if spill {
		s.Regions = append(s.Regions,
			Region{SizeBytes: uint64(2+v%2) * mb, Weight: 0.01, Pattern: Sequential})
		s.StoreFrac = 0.5 // spills show up as LLC writebacks
	}
	return s
}

// llcBound: working set comparable to the 4MB LLC; performance collapses
// when contention steals its blocks.
func llcBound(name, suite string, v int) Spec {
	main := uint64(2500+400*(v%4)) * kb
	return Spec{
		Name:           name,
		Suite:          suite,
		Class:          LLCBound,
		MemFrac:        0.34 + 0.02*float64(v%3),
		StoreFrac:      0.22,
		SecondLoadFrac: 0.2,
		BranchFrac:     0.14,
		BranchEntropy:  0.35,
		MLP:            2,
		Regions: []Region{
			{SizeBytes: 24 * kb, Weight: 0.35, Pattern: Random},
			{SizeBytes: main, Weight: 0.6, Pattern: Random},
			{SizeBytes: 256 * kb, Weight: 0.05, Pattern: Strided, Stride: 64 * uint64(1+v%2)},
		},
	}
}

// dramStream: streaming far past LLC capacity (lbm, libquantum, bwaves…).
// Strides vary across benchmarks (unit, double, triple block) the way
// SPEC fp kernels mix array strides; multi-block strides are what an
// IP-stride prefetcher catches and a next-line prefetcher does not.
func dramStream(name, suite string, v int) Spec {
	big := uint64(48+16*(v%3)) * mb
	return Spec{
		Name:           name,
		Suite:          suite,
		Class:          DRAMBound,
		MemFrac:        0.4 + 0.02*float64(v%3),
		StoreFrac:      0.3,
		SecondLoadFrac: 0.25,
		BranchFrac:     0.08,
		BranchEntropy:  0.1,
		MLP:            6,
		Regions: []Region{
			{SizeBytes: big, Weight: 0.85, Pattern: Strided, Stride: 64 * uint64(1+v%3)},
			{SizeBytes: 64 * kb, Weight: 0.15, Pattern: Random},
		},
	}
}

// dramPointer: large pointer-chasing working set (mcf, omnetpp-like but
// far beyond LLC). MLP 1: dependent loads serialise.
func dramPointer(name, suite string, v int) Spec {
	big := uint64(64+32*(v%2)) * mb
	return Spec{
		Name:           name,
		Suite:          suite,
		Class:          DRAMBound,
		MemFrac:        0.36 + 0.02*float64(v%2),
		StoreFrac:      0.12,
		SecondLoadFrac: 0,
		BranchFrac:     0.18,
		BranchEntropy:  0.5,
		MLP:            1,
		Regions: []Region{
			{SizeBytes: big, Weight: 0.7, Pattern: PointerChase},
			{SizeBytes: 32 * kb, Weight: 0.3, Pattern: Random},
		},
	}
}

// llcPointer: pointer chasing within an LLC-sized heap (omnetpp, astar,
// xalancbmk, soplex — the '+' class that turns DRAM-bound under theft).
func llcPointer(name, suite string, v int) Spec {
	// Pointer-chase node counts round up to powers of two, so the heap
	// is split into a 2MB main arena plus a smaller secondary one;
	// total footprint stays comfortably inside the 4MB LLC but far
	// above the 512KB L2 — the workload lives off LLC hits and turns
	// DRAM-bound when thefts steal them.
	second := uint64(256<<(v%2)) * kb
	return Spec{
		Name:           name,
		Suite:          suite,
		Class:          LLCBound,
		MemFrac:        0.32,
		StoreFrac:      0.18,
		SecondLoadFrac: 0,
		BranchFrac:     0.18,
		BranchEntropy:  0.45 + 0.05*float64(v%3),
		MLP:            1,
		Regions: []Region{
			{SizeBytes: 2 * mb, Weight: 0.55 + 0.03*float64(v%3), Pattern: PointerChase},
			{SizeBytes: second, Weight: 0.12, Pattern: PointerChase},
			{SizeBytes: 20 * kb, Weight: 0.3, Pattern: Random},
		},
	}
}

// balanced: moderate pressure everywhere with phase behaviour (gcc,
// bzip2, cam4, pop2 — the paper's "mixed" sensitivity group).
func balanced(name, suite string, v int) Spec {
	return Spec{
		Name:           name,
		Suite:          suite,
		Class:          Balanced,
		MemFrac:        0.3,
		StoreFrac:      0.25,
		SecondLoadFrac: 0.15,
		BranchFrac:     0.17,
		BranchEntropy:  0.4,
		MLP:            2,
		PhasePeriod:    200_000,
		Regions: []Region{
			{SizeBytes: 24 * kb, Weight: 0.4, Pattern: Random},
			{SizeBytes: uint64(1200+300*(v%3)) * kb, Weight: 0.35, Pattern: Random},
			{SizeBytes: uint64(12+4*(v%3)) * mb, Weight: 0.25, Pattern: Strided, Stride: 128},
		},
	}
}

type presetDecl struct {
	name  string
	build func(name, suite string, v int) Spec
	v     int
}

func init() {
	cb := func(name, suite string, v int) Spec { return coreBound(name, suite, v, false) }
	cbSpill := func(name, suite string, v int) Spec { return coreBound(name, suite, v, true) }

	spec2006 := []presetDecl{
		{"400.perlbench", cb, 0},
		{"401.bzip2", balanced, 0},
		{"403.gcc", balanced, 1},
		{"410.bwaves", dramStream, 0},
		{"416.gamess", cb, 1},
		{"429.mcf", dramPointer, 0},
		{"433.milc", llcBound, 0},
		{"434.zeusmp", dramStream, 1},
		{"435.gromacs", cb, 2},
		{"436.cactusADM", dramStream, 2},
		{"437.leslie3d", dramStream, 3},
		{"444.namd", cb, 3},
		{"445.gobmk", cb, 4},
		{"447.dealII", cb, 5},
		{"450.soplex", llcPointer, 0},
		{"453.povray", cb, 6},
		{"454.calculix", cb, 7},
		{"456.hmmer", cbSpill, 0},
		{"458.sjeng", cb, 8},
		{"459.GemsFDTD", dramStream, 4},
		{"462.libquantum", dramStream, 5},
		{"464.h264ref", cb, 9},
		{"465.tonto", cbSpill, 1},
		{"470.lbm", dramStream, 6},
		{"471.omnetpp", llcPointer, 1},
		{"473.astar", llcPointer, 2},
		{"481.wrf", dramStream, 7},
		{"482.sphinx3", llcBound, 1},
		{"483.xalancbmk", llcPointer, 3},
	}
	spec2017 := []presetDecl{
		{"600.perlbench", cb, 10},
		{"602.gcc", dramPointer, 1},
		{"603.bwaves", dramStream, 8},
		{"605.mcf", llcPointer, 4},
		{"607.cactuBSSN", dramStream, 9},
		{"619.lbm", dramStream, 10},
		{"620.omnetpp", llcPointer, 5},
		{"621.wrf", dramStream, 11},
		{"623.xalancbmk", llcPointer, 6},
		{"625.x264", cb, 11},
		{"627.cam4", balanced, 2},
		{"628.pop2", balanced, 3},
		{"631.deepsjeng", cb, 12},
		{"638.imagick", cbSpill, 2},
		{"641.leela", cbSpill, 3},
		{"644.nab", cb, 13},
		{"648.exchange2", cb, 14},
		{"649.fotonik3d", dramStream, 12},
		{"654.roms", dramStream, 13},
		{"657.xz", balanced, 4},
	}

	for _, d := range spec2006 {
		register(annotate(Preset{Spec: d.build(d.name, "SPEC2006", d.v)}))
	}
	for _, d := range spec2017 {
		register(annotate(Preset{Spec: d.build(d.name, "SPEC2017", d.v)}))
	}
}

// Paper annotation tables (Table II key, §V-B, §V-C).
var (
	highAMATIPC = set("462.libquantum", "482.sphinx3", "602.gcc")
	highMR      = set("456.hmmer", "465.tonto", "638.imagick", "641.leela")
	highIPC     = set("429.mcf", "433.milc", "450.soplex", "471.omnetpp",
		"473.astar", "483.xalancbmk", "605.mcf")
	disagree = set("429.mcf", "433.milc", "437.leslie3d", "462.libquantum",
		"473.astar", "481.wrf", "483.xalancbmk", "602.gcc")
	highSens = set("450.soplex", "456.hmmer", "470.lbm", "471.omnetpp",
		"482.sphinx3", "619.lbm")
	mixedSens = set("401.bzip2", "403.gcc", "459.GemsFDTD", "464.h264ref",
		"605.mcf", "621.wrf", "623.xalancbmk", "627.cam4", "628.pop2")
)

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func annotate(p Preset) Preset {
	n := p.Spec.Name
	p.HighAMATIPCError = highAMATIPC[n]
	p.HighMRError = highMR[n]
	p.HighIPCError = highIPC[n]
	p.Disagreement = disagree[n]
	switch {
	case highSens[n]:
		p.Sensitivity = "high"
	case mixedSens[n]:
		p.Sensitivity = "mixed"
	default:
		p.Sensitivity = "low"
	}
	return p
}
