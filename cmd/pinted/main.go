// Command pinted is the PInTE campaign service: a long-running HTTP
// daemon that accepts sweep submissions from many tenants, runs them on
// one shared worker pool under weighted fair scheduling, admission
// control and per-tenant quotas, streams per-run results as NDJSON, and
// checkpoints every completed run to a durable journal — kill -9 the
// process at any instant and the next start resumes every unfinished
// campaign exactly where it stopped.
//
// Usage:
//
//	pinted -addr localhost:8322 -data /var/lib/pinted
//	curl -XPOST -H 'X-Tenant: alice' -d '{"workloads":["450.soplex"]}' localhost:8322/v1/campaigns
//	curl localhost:8322/v1/campaigns/<id>/results
//
// SIGTERM drains gracefully: admission stops (503), queued runs are
// shed back to their journals, in-flight runs finish and checkpoint,
// then the process exits; the shed runs resume on the next start.
package main

import (
	"os"

	"repro/internal/server"
)

func main() {
	os.Exit(server.Main(os.Args[1:], os.Stdout, os.Stderr))
}
