// Command pintesweep sweeps P_Induce for one or more workloads and emits
// a CSV of contention rate, weighted IPC, miss rate and AMAT per point —
// the raw material of a contention-sensitivity study.
//
// The sweep is fault tolerant: a run that fails (bad config, panic,
// per-run timeout) costs only its own row — every completed point is
// still emitted and the failures are reported on stderr with a non-zero
// exit. SIGINT/SIGTERM cancels the campaign cleanly. With -resume, each
// completed run is checkpointed to a JSONL journal and an interrupted
// sweep picks up where it left off, re-running only the missing configs.
//
// With -progress the campaign logs periodic heartbeats (completed,
// failed, run rate, ETA) to stderr; the same live snapshot is served as
// expvar "pinte.campaign" under -debug's /debug/vars endpoint.
//
// Usage:
//
//	pintesweep -workloads 450.soplex,433.milc
//	pintesweep -workloads all -points 0.01,0.1,0.5 > sweep.csv
//	pintesweep -workloads all -resume sweep.journal -timeout 5m > sweep.csv
//	pintesweep -workloads all -progress -debug localhost:6060 > sweep.csv
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	pinte "repro/internal/core"
	"repro/internal/fault"
	"repro/internal/prof"
	"repro/internal/replay"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// openResultStore opens the -result-store directory, or returns nil (no
// caching) when the flag is empty. A malformed flag is a usage error; an
// unusable directory is a degradation — the sweep runs uncached rather
// than failing before it starts.
func openResultStore(spec string) *store.Store {
	if spec == "" {
		return nil
	}
	dir, budget, err := store.ParseFlag(spec)
	if err != nil {
		log.Fatal(err)
	}
	st, err := store.Open(store.Options{Dir: dir, BudgetBytes: budget, Logf: log.Printf})
	if err != nil {
		log.Printf("result store unavailable, running uncached: %v", err)
		return nil
	}
	s := st.Stats()
	log.Printf("result store %s: %d entries under %s (%d bytes)", dir, s.Entries, s.Fingerprint, s.Bytes)
	return st
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pintesweep: ")

	var (
		workloads = flag.String("workloads", "", "comma-separated presets, or \"all\"")
		points    = flag.String("points", "", "comma-separated P_Induce values (default: the paper's 12)")
		warmup    = flag.Uint64("warmup", 200_000, "warm-up instructions")
		roi       = flag.Uint64("roi", 1_000_000, "region-of-interest instructions")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "per-run wall-clock budget (0 = unlimited)")
		retries   = flag.Int("retries", 0, "retries for runs that panic, time out or stall (seed is perturbed)")
		backoff   = flag.Duration("backoff", 0, "base delay before each retry, doubled per attempt with jitter (0 = retry immediately)")
		stall     = flag.Duration("stall-grace", 0, "abandon a run this long after its deadline if it ignores cancellation (0 = wait forever)")
		resume    = flag.String("resume", "", "JSONL journal path: checkpoint completed runs and skip them on restart")
		compact   = flag.String("journal-compact", "", "compact this resume journal in place (drop corrupt lines and superseded entries) and exit")
		progress  = flag.Bool("progress", false, "log periodic campaign heartbeats (completed/failed/rate/ETA) to stderr")
		progEvery = flag.Duration("progress-every", 2*time.Second, "heartbeat period when -progress is set")
		replayMiB = flag.Int64("replay-cache", 0, "record/replay stream cache budget in MiB: each workload stream is generated once and replayed across all its sweep points (0 = off, regenerate per run)")
		fanout    = flag.Bool("fanout", true, "run sweep points sharing a (workload, seed) stream in lockstep over one trace decode (results are byte-identical; failed points fall back to per-run execution)")
		sample    = flag.Bool("sample", false, "phase-aware representative sampling: profile each workload once, cluster its execution phases, and simulate only one representative window per phase (approximate — extrapolated metrics carry error bounds; overrides -fanout)")
		resStore  = flag.String("result-store", "", "durable cross-campaign result store: dir[,MiB budget]; configs already simulated by ANY past run of ANY binary sharing the directory are served from it instead of re-simulated (empty = off)")
	)
	profOpts := prof.Flags(nil)
	chaos := fault.Flag(nil)
	flag.Parse()

	if err := fault.Apply(*chaos); err != nil {
		log.Fatal(err)
	}
	if *compact != "" {
		st, err := runner.CompactJournal(*compact)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("%s", st)
		return
	}
	if *workloads == "" {
		log.Fatal("missing -workloads (comma-separated, or \"all\")")
	}
	var names []string
	if *workloads == "all" {
		names = trace.Names()
	} else {
		names = strings.Split(*workloads, ",")
	}
	sweep := pinte.DefaultSweep()
	if *points != "" {
		sweep = nil
		for _, tok := range strings.Split(*points, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				log.Fatalf("bad -points value %q: %v", tok, err)
			}
			sweep = append(sweep, v)
		}
	}

	// Isolation baselines first, then the sweep grid — via the shared
	// campaign spec, so the CLI and the pinted service expand the exact
	// same submission to the exact same config list (and journal keys).
	spec := server.SweepSpec{
		Workloads: names, Points: sweep,
		WarmupInstrs: *warmup, ROIInstrs: *roi, Seed: *seed,
		Sample: *sample,
	}
	cfgs := spec.Configs()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	heartbeat := time.Duration(0)
	if *progress {
		heartbeat = *progEvery
	}
	var streams trace.SourceProvider
	var streamCache *replay.Cache
	if *replayMiB > 0 {
		streamCache = replay.NewCache(*replayMiB << 20)
		streams = streamCache
	}
	resultStore := openResultStore(*resStore)
	defer resultStore.Close()
	orc := runner.New(runner.Options{
		Workers:    *workers,
		Timeout:    *timeout,
		Retries:    *retries,
		Backoff:    *backoff,
		StallGrace: *stall,
		Journal:    *resume,
		Logf:       log.Printf,
		Progress:   heartbeat,
		Streams:    streams,
		Fanout:     *fanout && !*sample, // sampling supersedes fan-out; don't warn on the default
		Sample:     *sample,
		Store:      resultStore,
	})
	stopProf, err := profOpts.Start()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	out, err := orc.RunAll(ctx, cfgs)
	if perr := stopProf(); perr != nil {
		log.Print(perr) // profile flush failure shouldn't mask the sweep's outcome
	}
	if err != nil {
		log.Fatal(err) // campaign-level fault (unusable journal)
	}
	if streamCache != nil && *progress {
		log.Printf("%s", streamCache.Snapshot())
	}
	if *sample {
		ph := telemetry.PhaseSnapshot()
		if tot := ph["instrs_simulated"] + ph["instrs_skipped"]; tot > 0 {
			log.Printf("sampling: %d plans over %d profile(s); %d of %d instrs simulated in detail (%.1fx cut); %d fallback(s) to full-ROI runs",
				ph["plans_built"], ph["profile_runs"], ph["instrs_simulated"], tot,
				float64(tot)/float64(ph["instrs_simulated"]), ph["sampled_fallbacks"])
		}
	}
	if fault.Enabled() {
		log.Printf("%s", fault.Summary())
	}
	results := out.Results

	isoIPC := make(map[string]float64, len(names))
	for i, w := range names {
		if results[i] != nil {
			isoIPC[w] = results[i].IPC
		}
	}

	cw := csv.NewWriter(os.Stdout)
	if err := cw.Write([]string{
		"workload", "p_induce", "contention_rate", "ipc", "weighted_ipc",
		"llc_miss_rate", "amat", "occupancy_frac",
		"realized_p_induce", "p_induce_err",
	}); err != nil {
		log.Fatal(err)
	}
	emitted := 0
	i := len(names)
	for _, w := range names {
		for _, p := range sweep {
			r := results[i]
			i++
			if r == nil {
				continue // failed run: reported below, row withheld
			}
			wipc := 0.0
			if isoIPC[w] > 0 {
				wipc = r.IPC / isoIPC[w]
			}
			// P_Induce audit columns: what the engine actually rolled
			// versus what the config asked for.
			realized, perr := 0.0, 0.0
			if r.Engine != nil {
				realized = r.Engine.TriggerRate()
				perr = realized - p
			}
			rec := []string{
				w,
				fmt.Sprintf("%.4f", p),
				fmt.Sprintf("%.5f", r.ContentionRate),
				fmt.Sprintf("%.5f", r.IPC),
				fmt.Sprintf("%.5f", wipc),
				fmt.Sprintf("%.5f", r.MissRate),
				fmt.Sprintf("%.3f", r.AMAT),
				fmt.Sprintf("%.4f", r.OccupancyFrac),
				fmt.Sprintf("%.5f", realized),
				fmt.Sprintf("%+.5f", perr),
			}
			if err := cw.Write(rec); err != nil {
				log.Fatal(err)
			}
			emitted++
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		log.Fatal(err)
	}

	// Journal-only failures kept their results (rows above are complete);
	// warn but don't fail the sweep. Hard failures cost rows: exit 1.
	if jf := out.JournalFailures(); len(jf) > 0 {
		log.Printf("warning: %d results were computed but could not be journaled; "+
			"the CSV is complete but -resume would re-run them", len(jf))
		for _, f := range jf {
			log.Printf("  %v", f)
		}
	}
	if hard := out.HardFailures(); len(hard) > 0 {
		log.Printf("%d of %d runs failed (%d rows emitted, %d resumed from journal, wall %s):",
			len(hard), len(cfgs), emitted, out.FromJournal,
			time.Since(start).Round(time.Millisecond))
		for _, f := range hard {
			log.Printf("  %v", f)
		}
		if *resume != "" {
			log.Printf("completed runs are journaled; rerun with -resume %s to finish the sweep", *resume)
		}
		os.Exit(1)
	}
}
