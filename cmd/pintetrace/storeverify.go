package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/store"
)

// cmdStoreVerify is the result store's integrity gate: it proves that
// what the cache would serve is what the simulator would compute today.
//
// Two independent halves, each optional:
//
//   - goldens (-goldens <dir>): re-run the sim.GoldenConfigs matrix live
//     and compare WallTime-zeroed bytes against the committed golden
//     files — the same invariant TestGoldenDeterminism locks, runnable
//     against an installed binary without the test harness.
//
//   - store (-store <dir[,MiB]>): sample entries from a live store
//     (deterministically, under -seed), re-run each entry's embedded
//     config through the simulator, and compare WallTime-zeroed bytes.
//     Each sampled entry's key is also recomputed from its config: a
//     mismatch means the store is serving a result under the wrong
//     address, which no amount of byte equality excuses.
//
// Any divergence is a non-zero exit: a store that fails verification
// was written by a different simulator than the fingerprint claims (or
// rotted on disk past the CRC's reach) and must not serve campaigns.
func cmdStoreVerify(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("store-verify", flag.ExitOnError)
	storeFlag := fs.String("store", "", "result store to audit: dir[,MiB budget]")
	sample := fs.Int("sample", 16, "store entries to re-simulate (0 = every entry)")
	seed := fs.Uint64("seed", 1, "sampling seed (same seed, same entries)")
	goldens := fs.String("goldens", "", "golden directory to replay (e.g. internal/sim/testdata)")
	fs.Parse(args)
	if *storeFlag == "" && *goldens == "" {
		log.Fatal("store-verify: nothing to verify (need -store and/or -goldens)")
	}

	failures := 0
	if *goldens != "" {
		failures += verifyGoldens(ctx, *goldens)
	}
	if *storeFlag != "" {
		failures += verifyStore(ctx, *storeFlag, *sample, *seed)
	}
	if failures > 0 {
		log.Fatalf("store-verify: %d mismatch(es)", failures)
	}
	fmt.Println("store-verify: ok")
}

func verifyGoldens(ctx context.Context, dir string) (failures int) {
	cfgs := sim.GoldenConfigs()
	names := make([]string, 0, len(cfgs))
	for name := range cfgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if ctx.Err() != nil {
			log.Fatal(ctx.Err())
		}
		path := filepath.Join(dir, "golden_"+name+".json")
		want, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("store-verify: reading golden: %v", err)
		}
		res, err := sim.RunContext(ctx, cfgs[name])
		if err != nil {
			log.Fatalf("store-verify: golden %q failed to run: %v", name, err)
		}
		got, err := sim.GoldenBytes(res)
		if err != nil {
			log.Fatalf("store-verify: golden %q: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			failures++
			log.Printf("FAIL golden %q: live simulation diverged from %s", name, path)
			continue
		}
		fmt.Printf("ok   golden %q\n", name)
	}
	return failures
}

func verifyStore(ctx context.Context, spec string, sample int, seed uint64) (failures int) {
	dir, budget, err := store.ParseFlag(spec)
	if err != nil {
		log.Fatal(err)
	}
	st, err := store.Open(store.Options{Dir: dir, BudgetBytes: budget, Logf: log.Printf})
	if err != nil {
		log.Fatalf("store-verify: opening store: %v", err)
	}
	defer st.Close()

	keys := st.Keys()
	stats := st.Stats()
	if len(keys) == 0 {
		fmt.Printf("ok   store %s: empty under %s (nothing to verify)\n", dir, stats.Fingerprint)
		return 0
	}
	// Deterministic sample: a fixed seed audits the same entries on every
	// CI run, so a failure reproduces locally with the same flags.
	if sample > 0 && sample < len(keys) {
		rnd := rand.New(rand.NewSource(int64(seed)))
		perm := rnd.Perm(len(keys))[:sample]
		sort.Ints(perm)
		picked := make([]string, sample)
		for i, p := range perm {
			picked[i] = keys[p]
		}
		keys = picked
	}

	for _, key := range keys {
		if ctx.Err() != nil {
			log.Fatal(ctx.Err())
		}
		res, ok := st.Get(key)
		if !ok {
			failures++
			log.Printf("FAIL store %s: indexed entry unreadable", key[:12])
			continue
		}
		wantKey, err := runner.ConfigKey(res.Config)
		if err != nil {
			failures++
			log.Printf("FAIL store %s: cached config is unhashable: %v", key[:12], err)
			continue
		}
		if wantKey != key {
			failures++
			log.Printf("FAIL store %s: entry filed under wrong key (config hashes to %s)", key[:12], wantKey[:12])
			continue
		}
		live, err := sim.RunContext(ctx, res.Config)
		if err != nil {
			failures++
			log.Printf("FAIL store %s: cached config no longer runs: %v", key[:12], err)
			continue
		}
		cachedB, err := sim.GoldenBytes(res)
		if err != nil {
			log.Fatalf("store-verify: %v", err)
		}
		liveB, err := sim.GoldenBytes(live)
		if err != nil {
			log.Fatalf("store-verify: %v", err)
		}
		if !bytes.Equal(cachedB, liveB) {
			failures++
			log.Printf("FAIL store %s: cached result diverges from live simulation (%s %s p=%g seed=%d)",
				key[:12], res.Config.Mode, res.Config.Workload, res.Config.PInduce, res.Config.Seed)
			continue
		}
		fmt.Printf("ok   store %s (%s %s)\n", key[:12], res.Config.Mode, res.Config.Workload)
	}
	fmt.Printf("store %s: %d of %d entries verified under %s\n", dir, len(keys), stats.Entries, stats.Fingerprint)
	return failures
}
