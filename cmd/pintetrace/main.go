// Command pintetrace generates, inspects and converts instruction
// traces, and compacts campaign resume journals.
//
//	pintetrace gen -workload 429.mcf -n 1000000 -o mcf.trc.gz
//	pintetrace info mcf.trc.gz
//	pintetrace convert -to champsim mcf.trc.gz mcf.champsim
//	pintetrace convert -from champsim mcf.champsim mcf.trc.gz
//	pintetrace compact sweep.journal
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pintetrace: ")
	if len(os.Args) < 2 {
		usage()
	}
	// SIGINT/SIGTERM stops a long generation or conversion at the next
	// record boundary, leaving a truncated-but-valid output file.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	switch os.Args[1] {
	case "gen":
		cmdGen(ctx, os.Args[2:])
	case "info":
		cmdInfo(ctx, os.Args[2:])
	case "convert":
		cmdConvert(ctx, os.Args[2:])
	case "compact":
		cmdCompact(os.Args[2:])
	case "store-verify":
		cmdStoreVerify(ctx, os.Args[2:])
	default:
		usage()
	}
}

// ctxReader threads cancellation into record pumps: Next fails with the
// context's cause once ctx is done, checked every few thousand records.
type ctxReader struct {
	ctx context.Context
	r   trace.Reader
	n   uint64
}

func (c *ctxReader) Next(rec *trace.Record) error {
	if c.n++; c.n&0xFFF == 0 {
		select {
		case <-c.ctx.Done():
			return fmt.Errorf("interrupted after %d records: %w", c.n-1, c.ctx.Err())
		default:
		}
		// Chaos mode (-chaos trace.read:...) fails the pump with a typed
		// error at the same cadence as the cancellation check.
		if err := fault.Err(fault.SiteTraceRead); err != nil {
			return fmt.Errorf("after %d records: %w", c.n-1, err)
		}
	}
	return c.r.Next(rec)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pintetrace gen -workload <preset> [-n N] [-seed S] -o <file[.gz]>
  pintetrace info <file>
  pintetrace convert -to champsim <in.trc[.gz]> <out>
  pintetrace convert -from champsim <in> <out.trc[.gz]>
  pintetrace compact <journal>
  pintetrace store-verify [-store <dir[,MiB]>] [-sample N] [-seed S] [-goldens <dir>]`)
	os.Exit(2)
}

// cmdCompact rewrites a campaign resume journal atomically, dropping
// corrupt lines and superseded duplicate entries.
func cmdCompact(args []string) {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	chaos := fault.Flag(fs)
	fs.Parse(args)
	if err := fault.Apply(*chaos); err != nil {
		log.Fatal(err)
	}
	if len(fs.Args()) != 1 {
		usage()
	}
	st, err := runner.CompactJournal(fs.Args()[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(st)
}

func cmdGen(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	workload := fs.String("workload", "", "benchmark preset")
	n := fs.Uint64("n", 1_000_000, "instructions to generate")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("o", "", "output trace path (.gz compresses)")
	chaos := fault.Flag(fs)
	fs.Parse(args)
	if err := fault.Apply(*chaos); err != nil {
		log.Fatal(err)
	}
	if *workload == "" || *out == "" {
		usage()
	}
	spec, err := trace.SpecFor(*workload)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := trace.NewGenerator(spec, *seed, 0)
	if err != nil {
		log.Fatal(err)
	}
	wrote, err := trace.WriteAll(*out, &ctxReader{ctx: ctx, r: trace.Limit(gen, *n)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d records to %s\n", wrote, *out)
}

func cmdInfo(ctx context.Context, args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := trace.OpenFile(args[0])
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r := &ctxReader{ctx: ctx, r: f}

	var (
		rec      trace.Record
		n        uint64
		loads    uint64
		deps     uint64
		stores   uint64
		branches uint64
		taken    uint64
		blocks   = map[uint64]bool{}
		minA     = ^uint64(0)
		maxA     uint64
	)
	for {
		err := r.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		n++
		for _, a := range []uint64{rec.Load0, rec.Load1} {
			if a == 0 {
				continue
			}
			loads++
			track(a, blocks, &minA, &maxA)
		}
		if rec.Dependent {
			deps++
		}
		if rec.Store != 0 {
			stores++
			track(rec.Store, blocks, &minA, &maxA)
		}
		if rec.IsBranch {
			branches++
			if rec.Taken {
				taken++
			}
		}
	}
	if n == 0 {
		log.Fatal("empty trace")
	}
	fmt.Printf("records        %d\n", n)
	fmt.Printf("loads          %d (%.1f%% dependent)\n", loads, pct(deps, loads))
	fmt.Printf("stores         %d\n", stores)
	fmt.Printf("branches       %d (%.1f%% taken)\n", branches, pct(taken, branches))
	fmt.Printf("touched blocks %d (%.1f KB footprint)\n", len(blocks), float64(len(blocks))*64/1024)
	fmt.Printf("address range  %#x .. %#x\n", minA, maxA)
}

func track(a uint64, blocks map[uint64]bool, minA, maxA *uint64) {
	blocks[a/64] = true
	if a < *minA {
		*minA = a
	}
	if a > *maxA {
		*maxA = a
	}
}

func pct(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

func cmdConvert(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	to := fs.String("to", "", "target format: champsim")
	from := fs.String("from", "", "source format: champsim")
	chaos := fault.Flag(fs)
	fs.Parse(args)
	if err := fault.Apply(*chaos); err != nil {
		log.Fatal(err)
	}
	rest := fs.Args()
	if len(rest) != 2 || (*to == "") == (*from == "") {
		usage()
	}
	in, out := rest[0], rest[1]
	switch {
	case *to == "champsim":
		src, err := trace.OpenFile(in)
		if err != nil {
			log.Fatal(err)
		}
		defer src.Close()
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		w := trace.NewChampSimWriter(f)
		n, err := pump(&ctxReader{ctx: ctx, r: src}, w.Write)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("converted %d records to ChampSim format\n", n)
	case *from == "champsim":
		src, err := trace.OpenChampSim(in)
		if err != nil {
			log.Fatal(err)
		}
		defer src.Close()
		n, err := trace.WriteAll(out, &ctxReader{ctx: ctx, r: src})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("converted %d records from ChampSim format\n", n)
	default:
		log.Fatalf("unsupported format %q", *to+*from)
	}
}

func pump(src trace.Reader, write func(*trace.Record) error) (uint64, error) {
	var rec trace.Record
	var n uint64
	for {
		err := src.Next(&rec)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := write(&rec); err != nil {
			return n, err
		}
		n++
	}
}
