// Command pintesim runs a single simulation and prints its metrics.
//
// SIGINT/SIGTERM cancels the run; -timeout bounds its wall-clock time.
// With -resume, the run is checkpointed to (and, when already present,
// recalled from) a JSONL journal shared with pintesweep.
//
// Usage:
//
//	pintesim -workload 450.soplex
//	pintesim -workload 450.soplex -mode pinte -pinduce 0.3
//	pintesim -workload 450.soplex -mode 2nd-trace -adversary 470.lbm
//	pintesim -workload 450.soplex -timeout 2m -resume runs.journal
//	pintesim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/prof"
	"repro/internal/replay"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// openResultStore opens the -result-store directory, or returns nil (no
// caching) when the flag is empty. A malformed flag is a usage error; an
// unusable directory is a degradation — the run executes uncached.
func openResultStore(spec string) *store.Store {
	if spec == "" {
		return nil
	}
	dir, budget, err := store.ParseFlag(spec)
	if err != nil {
		log.Fatal(err)
	}
	st, err := store.Open(store.Options{Dir: dir, BudgetBytes: budget, Logf: log.Printf})
	if err != nil {
		log.Printf("result store unavailable, running uncached: %v", err)
		return nil
	}
	return st
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pintesim: ")

	var (
		workload  = flag.String("workload", "", "benchmark preset name")
		mode      = flag.String("mode", "isolation", "isolation, pinte or 2nd-trace")
		adversary = flag.String("adversary", "", "co-runner preset (2nd-trace mode)")
		pinduce   = flag.Float64("pinduce", 0.1, "P_Induce (pinte mode)")
		policy    = flag.String("policy", "lru", "LLC replacement policy: lru, plru, nmru, rrip")
		inclusion = flag.String("inclusion", "no", "LLC inclusion: no, in, ex")
		prefetchC = flag.String("prefetch", "000", "prefetch permutation: 000, NN0, NNN, NNI")
		predictor = flag.String("branch", "hashed-perceptron", "branch predictor")
		warmup    = flag.Uint64("warmup", 200_000, "warm-up instructions")
		roi       = flag.Uint64("roi", 1_000_000, "region-of-interest instructions")
		sample    = flag.Uint64("sample", 50_000, "sampling interval in instructions")
		seed      = flag.Uint64("seed", 1, "random seed")
		list      = flag.Bool("list", false, "list benchmark presets and exit")
		samples   = flag.Bool("samples", false, "print per-interval samples")
		telem     = flag.Uint64("telemetry", 0, "collect telemetry every N instructions and print the interval series plus P_Induce audit (0 = off)")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the run (0 = unlimited)")
		retries   = flag.Int("retries", 0, "retries if the run panics, times out or stalls (seed is perturbed)")
		backoff   = flag.Duration("backoff", 0, "base delay before each retry, doubled per attempt with jitter (0 = retry immediately)")
		stall     = flag.Duration("stall-grace", 0, "abandon the run this long after its deadline if it ignores cancellation (0 = wait forever)")
		resume    = flag.String("resume", "", "JSONL journal path: recall the run if journaled, checkpoint it otherwise")
		compact   = flag.String("journal-compact", "", "compact this resume journal in place (drop corrupt lines and superseded entries) and exit")
		replayMiB = flag.Int64("replay-cache", 0, "record/replay stream cache budget in MiB (0 = off); a single run only benefits when a co-runner rewinds, but the flag keeps pintesim flag-compatible with pintesweep")
		resStore  = flag.String("result-store", "", "durable cross-campaign result store: dir[,MiB budget]; a config already simulated by ANY past run of ANY binary sharing the directory is served from it instead of re-simulated (empty = off)")
	)
	profOpts := prof.Flags(nil)
	chaos := fault.Flag(nil)
	flag.Parse()

	if err := fault.Apply(*chaos); err != nil {
		log.Fatal(err)
	}
	if *compact != "" {
		st, err := runner.CompactJournal(*compact)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("%s", st)
		return
	}
	if *list {
		for _, n := range trace.Names() {
			p := trace.MustLookup(n)
			fmt.Printf("%-16s %-9s %-11s footprint %8.1f KB\n",
				n, p.Spec.Suite, p.Spec.Class, float64(p.Spec.Footprint())/1024)
		}
		return
	}
	if *workload == "" {
		log.Fatal("missing -workload (use -list to see presets)")
	}

	cfg := sim.Config{
		Workload:       *workload,
		Adversary:      *adversary,
		PInduce:        *pinduce,
		Branch:         *predictor,
		WarmupInstrs:   *warmup,
		ROIInstrs:      *roi,
		SampleEvery:    *sample,
		TelemetryEvery: *telem,
		Seed:           *seed,
	}
	switch *mode {
	case "isolation":
		cfg.Mode = sim.Isolation
	case "pinte":
		cfg.Mode = sim.PInTE
	case "2nd-trace":
		cfg.Mode = sim.SecondTrace
		if *adversary == "" {
			log.Fatal("2nd-trace mode requires -adversary")
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	cfg.Hier.LLC.Policy = *policy
	incl, err := cache.ParseInclusion(*inclusion)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Hier.Inclusion = incl
	cfg.Hier.Prefetch = *prefetchC

	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	stopProf, err := profOpts.Start()
	if err != nil {
		log.Fatal(err)
	}
	var streams trace.SourceProvider
	if *replayMiB > 0 {
		streams = replay.NewCache(*replayMiB << 20)
	}
	resultStore := openResultStore(*resStore)
	defer resultStore.Close()
	orc := runner.New(runner.Options{
		Workers:    1,
		Timeout:    *timeout,
		Retries:    *retries,
		Backoff:    *backoff,
		StallGrace: *stall,
		Journal:    *resume,
		Logf:       log.Printf,
		Streams:    streams,
		Store:      resultStore,
	})
	out, err := orc.RunAll(ctx, []sim.Config{cfg})
	if perr := stopProf(); perr != nil {
		log.Print(perr) // profile flush failure shouldn't mask the run's outcome
	}
	if err != nil {
		log.Fatal(err)
	}
	if hard := out.HardFailures(); len(hard) > 0 {
		f := hard[0]
		if f.Stack != "" {
			log.Printf("run panicked; recovered stack:\n%s", f.Stack)
		}
		log.Fatal(f)
	}
	// A journal-only failure still produced a result; report it below
	// after warning that the checkpoint was lost.
	for _, f := range out.JournalFailures() {
		log.Printf("warning: %v (result shown below was not checkpointed)", f)
	}
	res := out.Results[0]
	if out.FromJournal > 0 {
		fmt.Printf("(recalled from journal %s; wall time below is the original run's)\n", *resume)
	}
	if out.FromStore > 0 {
		fmt.Printf("(served from result store %s; wall time below is the original run's)\n", *resStore)
	}

	fmt.Printf("workload        %s (%s)\n", *workload, *mode)
	fmt.Printf("instructions    %d in %d cycles\n", res.Instrs, res.Cycles)
	fmt.Printf("IPC             %.4f\n", res.IPC)
	fmt.Printf("LLC miss rate   %.2f%%\n", 100*res.MissRate)
	fmt.Printf("AMAT            %.1f cycles\n", res.AMAT)
	fmt.Printf("contention rate %.2f%%\n", 100*res.ContentionRate)
	fmt.Printf("branch accuracy %.2f%%\n", 100*res.BranchAccuracy)
	fmt.Printf("LLC occupancy   %.1f%%\n", 100*res.OccupancyFrac)
	fmt.Printf("L2/LLC MPKI     %.2f / %.2f\n", res.L2MPKI, res.LLCMPKI)
	if res.Engine != nil {
		fmt.Printf("PInTE engine    accesses %d, trigger rate %.3f, invalidations %d\n",
			res.Engine.Accesses, res.Engine.TriggerRate(), res.Engine.Invalidations)
	}
	fmt.Printf("wall time       %s\n", res.WallTime.Round(0))

	if *samples {
		fmt.Println("\ninstrs       IPC      MR     AMAT   interf   theft   occ")
		for _, s := range res.Samples {
			fmt.Printf("%9d  %6.3f  %5.1f%%  %6.1f  %5.1f%%  %5.1f%%  %4.1f%%\n",
				s.Instrs, s.IPC, 100*s.MissRate, s.AMAT,
				100*s.InterferenceRate, 100*s.TheftRate, 100*s.OccupancyFrac)
		}
	}

	if res.Telemetry != nil {
		fmt.Printf("\ntelemetry (every %d instrs)\n", res.Telemetry.Every)
		fmt.Println("end_instrs     IPC   L1D-MPKI  L2-MPKI  LLC-MPKI   occ    eng-acc  trig   rate")
		for _, iv := range res.Telemetry.Intervals {
			fmt.Printf("%10d  %6.3f  %8.2f  %7.2f  %8.2f  %4.1f%%  %8d  %5d  %.3f\n",
				iv.EndInstrs, iv.IPC, iv.L1DMPKI, iv.L2MPKI, iv.LLCMPKI,
				100*iv.LLCOccupancyFrac, iv.EngineAccesses, iv.EngineTriggers,
				iv.TriggerRate())
		}
		if res.Engine != nil {
			acc, trig := res.Telemetry.TriggerTotals()
			aud := telemetry.NewAudit(cfg.PInduce, acc, trig, res.Telemetry)
			verdict := "CALIBRATED"
			if !aud.Calibrated {
				verdict = "OUT OF TOLERANCE"
			}
			fmt.Printf("\nP_Induce audit  configured %.4f, realized %.5f over %d accesses "+
				"(err %+.5f, z=%.2f, interval range [%.4f, %.4f]) — %s\n",
				aud.Configured, aud.Realized, aud.Accesses, aud.Error, aud.Z,
				aud.MinIntervalRate, aud.MaxIntervalRate, verdict)
		}
	}
}
