// Command pintereport regenerates the PInTE paper's tables and figures
// from the bundled simulator.
//
// Usage:
//
//	pintereport -exp table2 -scale small
//	pintereport -exp all -scale tiny -csv out/
//
// Experiments: table1, fig1, fig2, fig3, table2, fig5, fig6, fig7, fig8,
// fig9, fig10, fig11, or "all". Scales: tiny, small, full.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/expt"
	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pintereport: ")

	var (
		expID    = flag.String("exp", "all", "experiment id or \"all\"")
		scale    = flag.String("scale", "small", "scale: tiny, small or full")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		workers  = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		listOnly = flag.Bool("list", false, "list experiment ids and exit")
		compact  = flag.String("journal-compact", "", "compact this resume journal in place (drop corrupt lines and superseded entries) and exit")
	)
	chaos := fault.Flag(nil)
	flag.Parse()

	if err := fault.Apply(*chaos); err != nil {
		log.Fatal(err)
	}
	if *compact != "" {
		st, err := runner.CompactJournal(*compact)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("%s", st)
		return
	}
	if *listOnly {
		for _, id := range expt.IDs() {
			fmt.Println(id)
		}
		return
	}

	sc, err := expt.ByName(*scale)
	if err != nil {
		log.Fatal(err)
	}
	sc.Workers = *workers

	// SIGINT/SIGTERM cancels the in-flight experiment campaign between
	// simulations instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runner := expt.NewRunner(sc).WithContext(ctx)

	ids := []string{*expID}
	if *expID == "all" {
		ids = expt.IDs()
	}

	for _, id := range ids {
		start := time.Now()
		tables, err := expt.RunExperiment(id, runner)
		if err != nil {
			if errors.Is(err, sim.ErrCanceled) {
				log.Fatalf("%s: interrupted; completed experiments were already printed", id)
			}
			log.Fatalf("%s: %v", id, err)
		}
		if err := report.RenderAll(os.Stdout, tables); err != nil {
			log.Fatalf("%s: rendering: %v", id, err)
		}
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, tables); err != nil {
				log.Fatalf("%s: writing CSV: %v", id, err)
			}
		}
	}
}

func writeCSVs(dir string, tables []*report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range tables {
		name := strings.ReplaceAll(t.ID, "/", "_") + ".csv"
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
