// Command benchjson converts `go test -bench` output on stdin into the
// repo's benchmark-trajectory JSON format (BENCH_<date>.json). The raw
// text is echoed to stdout unchanged so the tool can sit at the end of
// a pipe without hiding the live benchmark progress.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -out BENCH_2026-08-06.json
//
// With -baseline it also prints a per-benchmark speedup table against an
// earlier report and exits nonzero when any shared benchmark regressed
// more than -tolerance (fractional ns/op increase).
//
// With -history it reads no stdin at all: it aggregates the committed
// BENCH_*.json reports (the positional arguments, or every BENCH_*.json
// in the current directory) into a per-benchmark trajectory table —
// one column per report date, one row per benchmark, and the newest
// measurement's speedup against the benchmark's first appearance:
//
//	benchjson -history
//	benchjson -history BENCH_2026-08-06.json BENCH_2026-08-08_fanout.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Report is the file-level envelope. Notes carries free-form context
// such as a before/after comparison against an earlier entry.
type Report struct {
	Date       string   `json:"date"`
	Commit     string   `json:"commit,omitempty"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Notes      string   `json:"notes,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkTable2-8  1  957000000 ns/op  12345 B/op  678 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		out      = flag.String("out", "", "output JSON path (default BENCH_<today>.json)")
		commit   = flag.String("commit", "", "git commit to record in the report")
		notes    = flag.String("notes", "", "free-form notes to embed in the report")
		baseline = flag.String("baseline", "", "earlier BENCH_*.json to compare against")
		tol      = flag.Float64("tolerance", 1.0,
			"fractional ns/op regression vs -baseline that fails the run "+
				"(generous by default: 1x-benchtime wall-clock numbers swing "+
				"with host load; tighten alongside longer -benchtime runs)")
		history = flag.Bool("history", false,
			"aggregate committed BENCH_*.json reports (args, or the current "+
				"directory's) into a per-benchmark trajectory table and exit")
	)
	flag.Parse()
	if *history {
		if err := runHistory(flag.Args()); err != nil {
			log.Fatal(err)
		}
		return
	}
	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	}

	rep := Report{
		Date:      time.Now().Format("2006-01-02"),
		Commit:    *commit,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Notes:     *notes,
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass-through
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		r := Result{Name: m[1], Procs: 1}
		if m[2] != "" {
			r.Procs, _ = strconv.Atoi(m[2])
		}
		r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		if m[5] != "" {
			v, _ := strconv.ParseInt(m[5], 10, 64)
			r.BytesPerOp = &v
		}
		if m[6] != "" {
			v, _ := strconv.ParseInt(m[6], 10, 64)
			r.AllocsPerOp = &v
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d benchmarks to %s", len(rep.Benchmarks), path)

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		table, regressed := compareBaseline(base, &rep, *tol)
		fmt.Print(table)
		if len(regressed) > 0 {
			log.Fatalf("%d benchmark(s) more than %.0f%% slower than %s: %s",
				len(regressed), *tol*100, *baseline, strings.Join(regressed, ", "))
		}
	}
}
