package main

import (
	"strings"
	"testing"
)

func TestHistoryLabel(t *testing.T) {
	cases := map[string]string{
		"BENCH_2026-08-06.json":                "2026-08-06",
		"BENCH_2026-08-06_replay.json":         "2026-08-06_replay",
		"reports/BENCH_2026-08-08_fanout.json": "2026-08-08_fanout",
		"whatever.json":                        "whatever",
	}
	for in, want := range cases {
		if got := historyLabel(in); got != want {
			t.Errorf("historyLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFmtNs(t *testing.T) {
	cases := map[float64]string{
		12:     "12ns",
		4_500:  "4.5us",
		7.2e6:  "7.2ms",
		1.23e9: "1.23s",
		9.57e8: "957.0ms",
	}
	for in, want := range cases {
		if got := fmtNs(in); got != want {
			t.Errorf("fmtNs(%g) = %q, want %q", in, got, want)
		}
	}
}

// TestHistoryTable locks the trajectory semantics: columns sorted by
// report date, per-benchmark speedup computed first-vs-newest, absences
// rendered as "-" and never counted as a measurement.
func TestHistoryTable(t *testing.T) {
	// Deliberately out of order: the table must sort by date.
	entries := []historyEntry{
		{label: "2026-08-08", rep: &Report{Date: "2026-08-08", Benchmarks: []Result{
			{Name: "BenchmarkSweep", NsPerOp: 1e8},
			{Name: "BenchmarkNew", NsPerOp: 5e6},
		}}},
		{label: "2026-08-06", rep: &Report{Date: "2026-08-06", Benchmarks: []Result{
			{Name: "BenchmarkSweep", NsPerOp: 1e9},
			{Name: "BenchmarkRetired", NsPerOp: 2e6},
		}}},
	}
	got := historyTable(entries)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 5 { // header count + column header + 3 benchmarks
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), got)
	}
	header := lines[1]
	if i6, i8 := strings.Index(header, "2026-08-06"), strings.Index(header, "2026-08-08"); i6 < 0 || i8 < 0 || i6 > i8 {
		t.Fatalf("columns not in date order: %q", header)
	}
	find := func(name string) string {
		t.Helper()
		for _, l := range lines {
			if strings.HasPrefix(l, name) {
				return l
			}
		}
		t.Fatalf("no row for %s in:\n%s", name, got)
		return ""
	}
	sweep := find("BenchmarkSweep")
	if !strings.Contains(sweep, "1.00s") || !strings.Contains(sweep, "100.0ms") || !strings.Contains(sweep, "10.00x") {
		t.Errorf("sweep trajectory wrong: %q", sweep)
	}
	// A benchmark seen only once has no trajectory: cell filled, speedup "-".
	if neu := find("BenchmarkNew"); !strings.Contains(neu, "5.0ms") || !strings.HasSuffix(strings.TrimRight(neu, " "), "-") {
		t.Errorf("single-appearance row should end with '-': %q", neu)
	}
	if ret := find("BenchmarkRetired"); !strings.Contains(ret, "2.0ms") || strings.Count(ret, "-") < 2 {
		t.Errorf("retired row should carry '-' for the missing column and speedup: %q", ret)
	}
}
