package main

import (
	"strings"
	"testing"
)

func rep(pairs ...any) *Report {
	r := &Report{Date: "2026-01-01", Commit: "abc1234"}
	for i := 0; i < len(pairs); i += 2 {
		r.Benchmarks = append(r.Benchmarks, Result{
			Name:       pairs[i].(string),
			Iterations: 1000,
			NsPerOp:    pairs[i+1].(float64),
		})
	}
	return r
}

func TestCompareBaselineFlagsRegressions(t *testing.T) {
	base := rep("BenchmarkA", 100.0, "BenchmarkB", 100.0, "BenchmarkGone", 50.0)
	cur := rep(
		"BenchmarkA", 40.0, // 2.5x speedup
		"BenchmarkB", 200.0, // 2x slowdown: past a 0.5 tolerance
		"BenchmarkNew", 10.0, // no baseline entry: reported, never fails
	)
	table, regressed := compareBaseline(base, cur, 0.5)
	if len(regressed) != 1 || regressed[0] != "BenchmarkB" {
		t.Fatalf("regressed = %v, want [BenchmarkB]", regressed)
	}
	for _, want := range []string{"2.50x", "0.50x", "REGRESSED", "NEW", "RETIRED"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if strings.Count(table, "REGRESSED") != 1 {
		t.Errorf("only BenchmarkB should be marked:\n%s", table)
	}
}

// TestCompareBaselineReportsNewBenchmarks pins the freshly-added-
// benchmark contract: a benchmark missing from the baseline (the usual
// state right after a perf PR adds one) is reported as NEW on its own
// line and can neither regress nor disappear from the table, no matter
// how slow its first recorded run is.
func TestCompareBaselineReportsNewBenchmarks(t *testing.T) {
	base := rep("BenchmarkOld", 100.0)
	cur := rep("BenchmarkOld", 100.0, "BenchmarkSweepFanout", 9e9)
	table, regressed := compareBaseline(base, cur, 0.0)
	if len(regressed) != 0 {
		t.Fatalf("a NEW benchmark was gated as a regression: %v", regressed)
	}
	line := ""
	for _, l := range strings.Split(table, "\n") {
		if strings.Contains(l, "BenchmarkSweepFanout") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("NEW benchmark dropped from the table:\n%s", table)
	}
	if !strings.Contains(line, "NEW") {
		t.Errorf("missing NEW marker: %q", line)
	}
}

// TestCompareBaselineSkipsOneShots pins the 1x-run rule: a single
// iteration of a sub-millisecond benchmark measures harness overhead,
// so it's reported but never gated — in either direction.
func TestCompareBaselineSkipsOneShots(t *testing.T) {
	base := rep("BenchmarkMicro", 60.0, "BenchmarkSweep", 4e8)
	cur := rep("BenchmarkMicro", 6000.0, "BenchmarkSweep", 9e8)
	cur.Benchmarks[0].Iterations = 1 // 1x run: 100x "slower", meaningless
	cur.Benchmarks[1].Iterations = 1 // 1x run of a 0.9s op: trustworthy
	table, regressed := compareBaseline(base, cur, 0.5)
	if len(regressed) != 1 || regressed[0] != "BenchmarkSweep" {
		t.Fatalf("regressed = %v, want [BenchmarkSweep]:\n%s", regressed, table)
	}
	if !strings.Contains(table, "1-shot") {
		t.Errorf("one-shot micro comparison not annotated:\n%s", table)
	}
}

func TestCompareBaselineTolerance(t *testing.T) {
	base := rep("BenchmarkA", 100.0)
	cur := rep("BenchmarkA", 140.0) // 40% slower
	if _, regressed := compareBaseline(base, cur, 0.5); len(regressed) != 0 {
		t.Errorf("40%% slowdown failed a 50%% tolerance: %v", regressed)
	}
	if _, regressed := compareBaseline(base, cur, 0.25); len(regressed) != 1 {
		t.Error("40% slowdown passed a 25% tolerance")
	}
}
